module mgpucompress

go 1.22
