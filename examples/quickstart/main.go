// Quickstart: compress cache lines with the three hardware codecs and the
// paper's adaptive controller, then run one multi-GPU benchmark under
// adaptive compression and print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math/rand"

	"mgpucompress/internal/comp"
	"mgpucompress/internal/core"
	"mgpucompress/internal/runner"
	"mgpucompress/internal/workloads"
)

func main() {
	log.SetFlags(0)
	metricsOut := flag.String("metrics-out", "", "write the adaptive run's metric snapshot as JSON to this file")
	simCores := flag.Int("sim-cores", 1, "engine workers advancing partitions in parallel (results are byte-identical for any value)")
	flag.Parse()

	if *simCores < 1 {
		log.Fatalf("-sim-cores must be at least 1 (got %d)", *simCores)
	}

	// --- 1. Compress single cache lines -----------------------------------
	lines := map[string][]byte{
		"zeros":             make([]byte, comp.LineSize),
		"low dynamic range": ldrLine(),
		"narrow words":      narrowLine(),
		"random":            randomLine(),
	}
	fmt.Println("compressed size in bits per 64-byte (512-bit) line:")
	fmt.Printf("%-18s %8s %8s %10s\n", "line", "FPC", "BDI", "C-Pack+Z")
	for _, name := range []string{"zeros", "low dynamic range", "narrow words", "random"} {
		line := lines[name]
		fmt.Printf("%-18s", name)
		for _, c := range comp.AllCompressors() {
			enc := c.Compress(line)
			// Round-trip to demonstrate the decoders.
			back, err := c.Decompress(enc)
			if err != nil || len(back) != comp.LineSize {
				log.Fatalf("%v round trip failed: %v", c.Algorithm(), err)
			}
			fmt.Printf(" %8d", enc.Bits)
		}
		fmt.Println()
	}

	// --- 2. The adaptive controller ---------------------------------------
	fmt.Println("\nadaptive controller (λ=6) over a phase change:")
	adaptive := core.NewAdaptive(core.Config{Lambda: 6, SampleCount: 7, RunLength: 20})
	feed := func(line []byte, n int) {
		for i := 0; i < n; i++ {
			adaptive.Process(line)
		}
		alg, sampling := adaptive.Selected()
		fmt.Printf("  after %2d transfers: selected %-8v (sampling=%v)\n", n, alg, sampling)
	}
	feed(ldrLine(), 7)    // BDI territory
	feed(ldrLine(), 20)   // running phase
	feed(randomLine(), 7) // resample on incompressible data -> bypass
	feed(randomLine(), 20)

	// --- 3. A full multi-GPU simulation -----------------------------------
	fmt.Println("\nmatrix transpose on the simulated 4-GPU system:")
	for _, policy := range []core.PolicyID{core.PolicyNone, core.PolicyAdaptive} {
		m, err := runner.Run("MT", runner.Options{
			Scale:    workloads.ScaleTiny,
			Policy:   policy,
			Lambda:   6,
			SimCores: *simCores,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s exec %8d cycles   fabric %8d bytes   ratio %.2f\n",
			policy, m.ExecCycles, m.FabricBytes, m.CompressionRatio())
		if *metricsOut != "" && policy == core.PolicyAdaptive {
			if err := m.WriteMetricsFile(*metricsOut); err != nil {
				log.Fatal(err)
			}
		}
	}
}

func ldrLine() []byte {
	line := make([]byte, comp.LineSize)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(line[i*8:], 1<<42+uint64(i*5))
	}
	return line
}

func narrowLine() []byte {
	line := make([]byte, comp.LineSize)
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(line[i*4:], uint32(i%11))
	}
	return line
}

func randomLine() []byte {
	line := make([]byte, comp.LineSize)
	rand.New(rand.NewSource(1)).Read(line)
	return line
}
