// Custom workload: build your own multi-GPU kernel against the platform's
// wavefront-operation API and measure how inter-GPU compression treats its
// traffic. The example implements a 1D Jacobi (3-point stencil) iteration —
// a workload the paper does not include — with halo exchange between
// GPU-striped partitions.
//
//	go run ./examples/custom_workload
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"mgpucompress/internal/core"
	"mgpucompress/internal/gpu"
	"mgpucompress/internal/mem"
	"mgpucompress/internal/platform"
)

const (
	cells        = 4096 // 32-bit cells
	cellsPerLine = mem.LineSize / 4
	iterations   = 4
)

func main() {
	log.SetFlags(0)
	for _, policy := range []string{"none", "bdi", "adaptive"} {
		run(policy)
	}
}

func run(policy string) {
	cfg := platform.DefaultConfig()
	if policy != "none" {
		id, err := core.ParsePolicy(policy)
		if err != nil {
			log.Fatal(err)
		}
		newPolicy, err := core.PolicyFactory(id, 6)
		if err != nil {
			log.Fatal(err)
		}
		cfg.NewPolicy = func(int) core.Policy { return newPolicy() }
	}
	p, _ := platform.Build(cfg)

	// Two ping-pong buffers striped across the four GPUs.
	bufA := p.Space.AllocStriped(cells * 4)
	bufB := p.Space.AllocStriped(cells * 4)

	// Smooth initial condition: low dynamic range, so halo traffic is
	// compressible (BDI territory).
	init := make([]byte, cells*4)
	for i := 0; i < cells; i++ {
		binary.LittleEndian.PutUint32(init[i*4:], uint32(1<<20+i/4))
	}
	bufA.Write(0, init)

	src, dst := bufA, bufB
	for it := 0; it < iterations; it++ {
		if err := p.Driver.Launch(jacobiKernel(src, dst)); err != nil {
			log.Fatal(err)
		}
		src, dst = dst, src
	}

	// Verify against a host-side reference.
	ref := make([]uint32, cells)
	for i := range ref {
		ref[i] = uint32(1<<20 + i/4)
	}
	for it := 0; it < iterations; it++ {
		next := make([]uint32, cells)
		for i := range ref {
			next[i] = jacobiCell(ref, i)
		}
		ref = next
	}
	got := src.Read(0, cells*4)
	for i := range ref {
		if v := binary.LittleEndian.Uint32(got[i*4:]); v != ref[i] {
			log.Fatalf("cell %d = %d, want %d", i, v, ref[i])
		}
	}

	fmt.Printf("%-9s exec %8d cycles  fabric %8d bytes  bus util %.0f%%\n",
		policy, p.ExecCycles(), p.Bus.TotalBytes(), 100*p.Bus.Utilization(p.ExecCycles()))
}

func jacobiCell(cur []uint32, i int) uint32 {
	l, r := uint32(0), uint32(0)
	if i > 0 {
		l = cur[i-1]
	}
	if i < len(cur)-1 {
		r = cur[i+1]
	}
	return (l + 2*cur[i] + r) / 4
}

// jacobiKernel updates every cell from src into dst: each workgroup owns a
// run of lines and reads one halo line on each side.
func jacobiKernel(src, dst mem.Buffer) *gpu.Kernel {
	const linesPerWG = 4
	lines := cells / cellsPerLine
	k := &gpu.Kernel{
		Name:          "jacobi3",
		NumWorkgroups: lines / linesPerWG,
		Args:          make([]byte, 48),
		Program: func(wg int) [][]gpu.Op {
			first := wg * linesPerWG
			lo := first - 1
			if lo < 0 {
				lo = 0
			}
			hi := first + linesPerWG // exclusive owned range; +1 halo below
			if hi >= lines {
				hi = lines - 1
			}
			collected := map[int][]byte{}
			var read func(l int) []gpu.Op
			read = func(l int) []gpu.Op {
				if l > hi {
					return compute(collected, first, linesPerWG, dst)
				}
				return []gpu.Op{gpu.ReadOp{
					Addr: src.Addr(uint64(l) * mem.LineSize),
					N:    mem.LineSize,
					Then: func(data []byte) []gpu.Op {
						collected[l] = append([]byte(nil), data...)
						return read(l + 1)
					},
				}}
			}
			return [][]gpu.Op{read(lo)}
		},
	}
	return k
}

func compute(lines map[int][]byte, first, count int, dst mem.Buffer) []gpu.Op {
	cell := func(i int) uint32 {
		if i < 0 || i >= cells {
			return 0
		}
		data, ok := lines[i/cellsPerLine]
		if !ok {
			return 0
		}
		return binary.LittleEndian.Uint32(data[i%cellsPerLine*4:])
	}
	ops := []gpu.Op{gpu.ComputeOp{Cycles: count * cellsPerLine / 8}}
	for s := 0; s < count; s++ {
		out := make([]byte, mem.LineSize)
		for e := 0; e < cellsPerLine; e++ {
			i := (first+s)*cellsPerLine + e
			var v uint32
			switch {
			case i == 0:
				v = (2*cell(0) + cell(1)) / 4
			case i == cells-1:
				v = (cell(i-1) + 2*cell(i)) / 4
			default:
				v = (cell(i-1) + 2*cell(i) + cell(i+1)) / 4
			}
			binary.LittleEndian.PutUint32(out[e*4:], v)
		}
		ops = append(ops, gpu.WriteOp{
			Addr: dst.Addr(uint64(first+s) * mem.LineSize),
			Data: out,
		})
	}
	return ops
}
