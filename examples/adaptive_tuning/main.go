// Adaptive tuning: sweep the penalty-function λ (Eq. 1 of the paper) on one
// benchmark and print the bandwidth/performance trade-off, reproducing the
// reasoning behind the paper's choice of λ=6.
//
//	go run ./examples/adaptive_tuning -bench SC -scale 2
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"mgpucompress/internal/core"
	"mgpucompress/internal/runner"
	"mgpucompress/internal/workloads"
)

func main() {
	log.SetFlags(0)
	bench := flag.String("bench", "SC", "benchmark: AES|BS|FIR|GD|KM|MT|SC")
	scale := flag.Int("scale", 2, "input scale")
	flag.Parse()
	name := strings.ToUpper(*bench)

	base, err := runner.Run(name, runner.Options{
		Scale: workloads.Scale(*scale),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s without compression: %d cycles, %d fabric bytes\n\n",
		name, base.ExecCycles, base.FabricBytes)

	fmt.Printf("%8s %16s %16s %16s %12s\n",
		"λ", "traffic (norm)", "exec (norm)", "energy (norm)", "ratio")
	for _, lambda := range []float64{0, 1, 2, 4, 6, 8, 12, 16, 24, 32, 64} {
		m, err := runner.Run(name, runner.Options{
			Scale:  workloads.Scale(*scale),
			Policy: core.PolicyAdaptive,
			Lambda: lambda,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8g %16.3f %16.3f %16.3f %12.2f\n",
			lambda,
			float64(m.FabricBytes)/float64(base.FabricBytes),
			float64(m.ExecCycles)/float64(base.ExecCycles),
			m.TotalEnergyPJ()/base.TotalEnergyPJ(),
			m.CompressionRatio())
	}
	fmt.Println("\nsmall λ chases compression ratio; large λ chases codec latency.")
	fmt.Println("The paper selects λ=6 as the balance point (Sec. VII-A2).")
}
