// Trace replay: run a captured memory-access trace through the compressed
// multi-GPU system. Supply your own trace file, or let the example generate
// a synthetic producer/consumer trace to demonstrate the format:
//
//	go run ./examples/trace_replay                 # synthetic demo
//	go run ./examples/trace_replay -file app.trace # your own capture
//
// Trace format: one op per line — `G` starts a workgroup, `R <hexoff>`
// reads a 64-byte line, `W <hexoff> <hexbytes>` writes, `C <n>` computes.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"mgpucompress/internal/core"
	"mgpucompress/internal/platform"
	"mgpucompress/internal/workloads"
)

func main() {
	log.SetFlags(0)
	file := flag.String("file", "", "trace file (empty = generate a demo trace)")
	flag.Parse()

	var traceText string
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			log.Fatal(err)
		}
		traceText = string(data)
	} else {
		traceText = demoTrace()
		fmt.Println("generated a synthetic producer/consumer trace; first lines:")
		for i, l := range strings.SplitN(traceText, "\n", 8)[:7] {
			fmt.Printf("  %d: %s\n", i+1, l)
		}
		fmt.Println()
	}

	for _, policy := range []string{"none", "adaptive"} {
		rp, err := workloads.ParseTrace(strings.NewReader(traceText))
		if err != nil {
			log.Fatal(err)
		}
		cfg := platform.DefaultConfig()
		if policy != "none" {
			id, err := core.ParsePolicy(policy)
			if err != nil {
				log.Fatal(err)
			}
			newPolicy, err := core.PolicyFactory(id, 6)
			if err != nil {
				log.Fatal(err)
			}
			cfg.NewPolicy = func(int) core.Policy { return newPolicy() }
		}
		p, _ := platform.Build(cfg)
		if err := rp.Setup(p); err != nil {
			log.Fatal(err)
		}
		if err := rp.Run(p); err != nil {
			log.Fatal(err)
		}
		if err := rp.Verify(p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %d workgroups   exec %8d cycles   fabric %8d bytes\n",
			policy, rp.Workgroups(), p.ExecCycles(), p.Bus.TotalBytes())
	}
}

// demoTrace emits a producer/consumer pattern: each workgroup reads a chunk
// of "sensor" data and writes a compressible summary elsewhere.
func demoTrace() string {
	rng := rand.New(rand.NewSource(9))
	var sb strings.Builder
	for wg := 0; wg < 16; wg++ {
		fmt.Fprintln(&sb, "G")
		base := wg * 16 * 64
		for i := 0; i < 16; i++ {
			fmt.Fprintf(&sb, "R %x\n", base+i*64)
		}
		fmt.Fprintf(&sb, "C %d\n", 20+rng.Intn(10))
		// Summary line: small counters — highly compressible.
		var payload strings.Builder
		for i := 0; i < 16; i++ {
			fmt.Fprintf(&payload, "%02x000000", rng.Intn(64))
		}
		fmt.Fprintf(&sb, "W %x %s\n", 0x100000+wg*64, payload.String())
	}
	return sb.String()
}
