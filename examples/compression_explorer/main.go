// Compression explorer: feed arbitrary binary data through the hardware
// codecs line by line and report what each would achieve on an inter-GPU
// link — the characterization methodology of the paper's Sec. IV applied
// to your own data.
//
//	go run ./examples/compression_explorer -file /path/to/data
//	go run ./examples/compression_explorer            # built-in demo inputs
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"mgpucompress/internal/comp"
	"mgpucompress/internal/stats"
)

func main() {
	log.SetFlags(0)
	file := flag.String("file", "", "binary file to characterize (64-byte lines)")
	flag.Parse()

	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			log.Fatal(err)
		}
		characterize(*file, data)
		return
	}
	for name, data := range demos() {
		characterize(name, data)
		fmt.Println()
	}
}

func characterize(name string, data []byte) {
	lines := len(data) / comp.LineSize
	if lines == 0 {
		log.Fatalf("%s: need at least %d bytes", name, comp.LineSize)
	}
	codecs := comp.ExtendedCompressors()
	totals := make(map[comp.Algorithm]int)
	hists := make(map[comp.Algorithm]*comp.PatternHistogram)
	for _, c := range codecs {
		hists[c.Algorithm()] = &comp.PatternHistogram{}
	}
	for i := 0; i < lines; i++ {
		line := data[i*comp.LineSize : (i+1)*comp.LineSize]
		for _, c := range codecs {
			enc := c.Compress(line)
			totals[c.Algorithm()] += enc.WireBytes()
			hists[c.Algorithm()].Add(enc.Patterns)
		}
	}
	raw := lines * comp.LineSize
	fmt.Printf("%s: %d lines, byte entropy %.3f\n", name, lines, stats.ByteEntropy(data))
	fmt.Printf("  %-9s %8s %8s %8s   %s\n", "codec", "bytes", "ratio", "latency", "top patterns")
	for _, c := range codecs {
		alg := c.Algorithm()
		cost := c.Cost()
		fmt.Printf("  %-9s %8d %8.2f %5d cy  ", alg, totals[alg],
			float64(raw)/float64(totals[alg]), cost.CompressionCycles+cost.DecompressionCycles)
		for _, t := range hists[alg].Top(3) {
			fmt.Printf(" (%d) %.0f%%", t.Pattern, t.Share*100)
		}
		fmt.Println()
	}
}

func demos() map[string][]byte {
	rng := rand.New(rand.NewSource(7))
	out := make(map[string][]byte)

	// Pointer array: classic low-dynamic-range data.
	ptrs := make([]byte, 64*comp.LineSize)
	base := uint64(0x00007F3A12340000)
	for i := 0; i < len(ptrs)/8; i++ {
		binary.LittleEndian.PutUint64(ptrs[i*8:], base+uint64(i)*48)
	}
	out["pointer array"] = ptrs

	// Sensor time series: DC offset plus small noise.
	sensor := make([]byte, 64*comp.LineSize)
	for i := 0; i < len(sensor)/4; i++ {
		binary.LittleEndian.PutUint32(sensor[i*4:], 0x00410000+uint32(rng.Intn(4096)))
	}
	out["sensor samples"] = sensor

	// Sparse activations: mostly zeros.
	sparse := make([]byte, 64*comp.LineSize)
	for i := 0; i < len(sparse)/4; i++ {
		if rng.Intn(10) == 0 {
			binary.LittleEndian.PutUint32(sparse[i*4:], uint32(rng.Intn(100)))
		}
	}
	out["sparse activations"] = sparse

	// Encrypted blob: incompressible.
	random := make([]byte, 64*comp.LineSize)
	rng.Read(random)
	out["ciphertext"] = random
	return out
}
