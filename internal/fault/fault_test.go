package fault

import (
	"strings"
	"testing"

	"mgpucompress/internal/metrics"
	"mgpucompress/internal/sim"
)

// injMsg is a minimal injectable, corruptible message.
type injMsg struct {
	sim.MsgMeta
	payload []byte
}

func (m *injMsg) Meta() *sim.MsgMeta { return &m.MsgMeta }
func (m *injMsg) FaultInjectable()   {}
func (m *injMsg) CorruptCopy(pick uint64) (sim.Msg, bool) {
	if len(m.payload) == 0 {
		return nil, false
	}
	c := *m
	c.payload = append([]byte(nil), m.payload...)
	bit := pick % uint64(len(c.payload)*8)
	c.payload[bit/8] ^= 1 << (bit % 8)
	return &c, true
}

// plainMsg is ordinary control traffic: no Injectable marker.
type plainMsg struct{ sim.MsgMeta }

func (m *plainMsg) Meta() *sim.MsgMeta { return &m.MsgMeta }

func testPorts() (*sim.Port, *sim.Port) {
	return sim.NewPort(nil, "A.out", 0), sim.NewPort(nil, "B.in", 0)
}

func newInj(src, dst *sim.Port, payload []byte) *injMsg {
	m := &injMsg{payload: payload}
	m.Src, m.Dst, m.Bytes = src, dst, len(payload)
	return m
}

func TestParsePresets(t *testing.T) {
	for _, s := range []string{"", "off", "OFF"} {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if p.Enabled() {
			t.Errorf("Parse(%q) enabled", s)
		}
		if p.Canonical() != "" {
			t.Errorf("Parse(%q).Canonical() = %q, want empty", s, p.Canonical())
		}
	}
	for _, s := range []string{"light", "aggressive"} {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !p.Enabled() {
			t.Errorf("preset %q not enabled", s)
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Error("unknown preset accepted")
	}
	names := PresetNames()
	if strings.Join(names, ",") != "aggressive,light,off" {
		t.Errorf("PresetNames() = %v", names)
	}
}

func TestParseCanonicalRoundTrip(t *testing.T) {
	for _, s := range []string{
		"light",
		"aggressive",
		"corrupt=0.25,drop=0.125,delay=0.5,delaycycles=32",
		"corrupt=0.1,drop=0,delay=0,delaycycles=0,timeout=512,attempts=4,degradek=2",
	} {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		canon := p.Canonical()
		q, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(Canonical %q): %v", canon, err)
		}
		if q != p {
			t.Errorf("round trip of %q: %+v != %+v", s, q, p)
		}
		if q.Canonical() != canon {
			t.Errorf("Canonical not a fixed point: %q vs %q", q.Canonical(), canon)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"corrupt=2",        // out of range
		"drop=-0.1",        // negative rate
		"corrupt=x",        // bad float
		"delaycycles=-5",   // negative cycles
		"frob=1",           // unknown key
		"corrupt",          // not k=v
		"attempts=-1",      // negative attempts
		"timeout=-1",       // negative timeout
		"degradek=-2",      // negative threshold
		"corrupt=0.1,,x=1", // malformed tail
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestEffectiveDefaults(t *testing.T) {
	var p Profile
	if p.Timeout() != DefaultTimeoutCycles || p.Attempts() != DefaultMaxAttempts || p.Degrade() != DefaultDegradeK {
		t.Errorf("zero profile defaults: %d/%d/%d", p.Timeout(), p.Attempts(), p.Degrade())
	}
	p = Profile{TimeoutCycles: 100, MaxAttempts: 2, DegradeK: 7}
	if p.Timeout() != 100 || p.Attempts() != 2 || p.Degrade() != 7 {
		t.Errorf("explicit knobs not honoured: %d/%d/%d", p.Timeout(), p.Attempts(), p.Degrade())
	}
}

// TestApplyDeterminism: two injectors with the same (profile, seed) hand the
// same traffic identical fates, and a different seed diverges.
func TestApplyDeterminism(t *testing.T) {
	src, dst := testPorts()
	prof := Profile{CorruptRate: 0.2, DropRate: 0.2, DelayRate: 0.2, DelayCycles: 64}
	run := func(seed int64) (fates []string, corrupted, dropped, delayed uint64) {
		inj := NewInjector(prof, seed)
		for k := 0; k < 400; k++ {
			out := inj.Apply(newInj(src, dst, []byte{0xAA, 0xBB, 0xCC, 0xDD}))
			switch {
			case out.Msg == nil:
				fates = append(fates, "drop")
			case out.Delay > 0:
				fates = append(fates, "delay")
			default:
				fates = append(fates, "pass")
			}
		}
		return fates, inj.Corrupted, inj.Dropped, inj.Delayed
	}
	f1, c1, dr1, dl1 := run(42)
	f2, c2, dr2, dl2 := run(42)
	if c1 != c2 || dr1 != dr2 || dl1 != dl2 {
		t.Fatalf("same seed, different counters: (%d,%d,%d) vs (%d,%d,%d)", c1, dr1, dl1, c2, dr2, dl2)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("same seed, delivery %d fate %q vs %q", i, f1[i], f2[i])
		}
	}
	if c1 == 0 || dr1 == 0 || dl1 == 0 {
		t.Fatalf("rates 0.2 over 400 deliveries injected nothing: %d/%d/%d", c1, dr1, dl1)
	}
	f3, _, _, _ := run(43)
	same := true
	for i := range f1 {
		if f1[i] != f3[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fault sequences")
	}
}

// TestNonInjectablePassThrough: control traffic is never touched and never
// advances a link's PRNG stream, so its presence cannot perturb the faults
// injected into guarded traffic.
func TestNonInjectablePassThrough(t *testing.T) {
	src, dst := testPorts()
	prof := Profile{CorruptRate: 1, DropRate: 0.3, DelayRate: 0.3, DelayCycles: 8}

	run := func(interleave bool) []bool {
		inj := NewInjector(prof, 7)
		var drops []bool
		for k := 0; k < 100; k++ {
			if interleave {
				m := &plainMsg{}
				m.Src, m.Dst = src, dst
				out := inj.Apply(m)
				if out.Msg != m || out.Delay != 0 {
					t.Fatal("non-injectable message perturbed")
				}
			}
			out := inj.Apply(newInj(src, dst, []byte{1, 2, 3, 4}))
			drops = append(drops, out.Msg == nil)
		}
		if inj.Injected() != inj.Corrupted+inj.Dropped+inj.Delayed {
			t.Fatal("Injected() is not the sum of its parts")
		}
		return drops
	}
	plain := run(false)
	mixed := run(true)
	for i := range plain {
		if plain[i] != mixed[i] {
			t.Fatalf("interleaved control traffic changed fault %d", i)
		}
	}
}

// TestCorruptionClonesPayload: the delivered message is a modified copy; the
// sender's original — held for retransmission — stays intact.
func TestCorruptionClonesPayload(t *testing.T) {
	src, dst := testPorts()
	inj := NewInjector(Profile{CorruptRate: 1}, 1)
	orig := newInj(src, dst, []byte{0x55, 0x55, 0x55, 0x55})
	want := append([]byte(nil), orig.payload...)
	out := inj.Apply(orig)
	if out.Msg == nil || out.Msg == sim.Msg(orig) {
		t.Fatal("corruption did not produce a distinct copy")
	}
	if string(orig.payload) != string(want) {
		t.Fatal("original payload mutated")
	}
	got := out.Msg.(*injMsg).payload
	diff := 0
	for i := range got {
		for b := 0; b < 8; b++ {
			if (got[i]^want[i])>>b&1 == 1 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1", diff)
	}
	if inj.Corrupted != 1 {
		t.Fatalf("Corrupted = %d", inj.Corrupted)
	}
}

// TestPerLinkStreams: faults on one link are independent of traffic on
// another — each (src, dst) pair owns a private stream.
func TestPerLinkStreams(t *testing.T) {
	srcA, dstA := sim.NewPort(nil, "A", 0), sim.NewPort(nil, "B", 0)
	srcC, dstC := sim.NewPort(nil, "C", 0), sim.NewPort(nil, "D", 0)
	prof := Profile{DropRate: 0.5}

	fates := func(withOther bool) []bool {
		inj := NewInjector(prof, 11)
		var out []bool
		for k := 0; k < 200; k++ {
			if withOther {
				inj.Apply(newInj(srcC, dstC, []byte{9}))
			}
			o := inj.Apply(newInj(srcA, dstA, []byte{1}))
			out = append(out, o.Msg == nil)
		}
		return out
	}
	solo := fates(false)
	mixed := fates(true)
	for i := range solo {
		if solo[i] != mixed[i] {
			t.Fatalf("traffic on C->D changed fault %d on A->B", i)
		}
	}
}

func TestRegisterMetrics(t *testing.T) {
	src, dst := testPorts()
	inj := NewInjector(Profile{DropRate: 1}, 3)
	reg := metrics.NewRegistry()
	inj.RegisterMetrics(reg, "fault")
	inj.Apply(newInj(src, dst, []byte{1}))
	snap := reg.Snapshot()
	want := map[string]uint64{
		"fault/injected": 1, "fault/dropped": 1, "fault/corrupted": 0, "fault/delayed": 0,
	}
	found := 0
	for _, m := range snap {
		if v, ok := want[m.Path]; ok {
			found++
			if uint64(m.Value) != v {
				t.Errorf("%s = %v, want %d", m.Path, m.Value, v)
			}
		}
	}
	if found != len(want) {
		t.Errorf("found %d of %d fault metrics in snapshot", found, len(want))
	}
}
