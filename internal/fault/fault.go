package fault

import (
	"hash/fnv"
	"math/rand"

	"mgpucompress/internal/metrics"
	"mgpucompress/internal/sim"
)

// Injectable marks wire messages that sit under a retry protocol and may
// therefore be dropped, delayed, or corrupted. The interface is structural
// on purpose: the rdma package implements it without importing this one.
type Injectable interface {
	sim.Msg
	// FaultInjectable is a marker; it does nothing.
	FaultInjectable()
}

// Corruptible is implemented by payload-bearing injectable messages. The
// injector never mutates the original message — the sender still holds it
// for retransmission — so corruption produces a modified copy.
type Corruptible interface {
	Injectable
	// CorruptCopy returns a copy of the message with one payload bit,
	// chosen by pick, flipped. It reports false when the message carries no
	// payload bits.
	CorruptCopy(pick uint64) (sim.Msg, bool)
}

// Outcome is the injector's verdict on one delivery.
type Outcome struct {
	// Msg is the message to deliver: the original, or a corrupted copy.
	// Nil means the message was dropped.
	Msg sim.Msg
	// Delay, when nonzero, postpones delivery by that many cycles.
	Delay sim.Time
}

// Injector applies a Profile to fabric deliveries. Each (src, dst) port
// pair owns a private PRNG stream seeded from (seed, src name, dst name):
// deliveries on one link are totally ordered by the single-goroutine sim
// engine, so the draw sequence — and with it every fault — is deterministic
// and independent of what other links carry.
//
// The injector is not safe for concurrent use; like every component it is
// owned by one simulation's goroutine.
type Injector struct {
	profile Profile
	seed    int64
	links   map[linkKey]*rand.Rand

	// Counters, exposed via RegisterMetrics.
	Corrupted uint64
	Dropped   uint64
	Delayed   uint64
}

type linkKey struct{ src, dst string }

// NewInjector builds an injector for the profile. The seed is the job's
// sweep-derived seed (never wall clock).
func NewInjector(p Profile, seed int64) *Injector {
	return &Injector{profile: p, seed: seed, links: make(map[linkKey]*rand.Rand)}
}

// Profile returns the injector's profile.
func (i *Injector) Profile() Profile { return i.profile }

// Injected is the total number of fault events across all kinds.
func (i *Injector) Injected() uint64 { return i.Corrupted + i.Dropped + i.Delayed }

func (i *Injector) link(src, dst string) *rand.Rand {
	k := linkKey{src, dst}
	if r, ok := i.links[k]; ok {
		return r
	}
	h := fnv.New64a()
	h.Write([]byte(src))
	h.Write([]byte{0})
	h.Write([]byte(dst))
	r := rand.New(rand.NewSource(i.seed ^ int64(h.Sum64()&(1<<63-1))))
	i.links[k] = r
	return r
}

// Apply decides the fate of one delivery. Non-injectable messages pass
// through untouched and consume no randomness. For injectable ones, four
// draws are taken from the link's stream in a fixed order regardless of
// outcome, so the stream position depends only on the link's delivery
// sequence, never on which faults happened to fire.
func (i *Injector) Apply(msg sim.Msg) Outcome {
	if _, ok := msg.(Injectable); !ok {
		return Outcome{Msg: msg}
	}
	rng := i.link(msg.Meta().Src.Name(), msg.Meta().Dst.Name())
	fDrop := rng.Float64()
	fDelay := rng.Float64()
	fCorrupt := rng.Float64()
	pick := rng.Uint64()

	if fDrop < i.profile.DropRate {
		i.Dropped++
		return Outcome{}
	}
	out := Outcome{Msg: msg}
	if fDelay < i.profile.DelayRate && i.profile.DelayCycles > 0 {
		i.Delayed++
		out.Delay = sim.Time(i.profile.DelayCycles)
	}
	if fCorrupt < i.profile.CorruptRate {
		if c, ok := msg.(Corruptible); ok {
			if bad, ok := c.CorruptCopy(pick); ok {
				i.Corrupted++
				out.Msg = bad
			}
		}
	}
	return out
}

// RegisterMetrics exposes the injector's counters under prefix
// (conventionally "fault"). Call it only when the profile is enabled:
// registering the paths changes snapshot bytes, and a disabled profile must
// leave snapshots byte-identical to a build without fault injection.
func (i *Injector) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.CounterFunc(prefix+"/injected", func() uint64 { return i.Injected() })
	reg.CounterFunc(prefix+"/corrupted", func() uint64 { return i.Corrupted })
	reg.CounterFunc(prefix+"/dropped", func() uint64 { return i.Dropped })
	reg.CounterFunc(prefix+"/delayed", func() uint64 { return i.Delayed })
}
