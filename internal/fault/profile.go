// Package fault is the deterministic fault-injection engine for the
// inter-GPU fabric. It perturbs message delivery — corrupting payload bits,
// dropping messages, and adding delay — at configurable per-link rates, with
// every decision drawn from per-link PRNG streams seeded from the job's
// sweep-derived seed. Faults are therefore a pure function of the (profile,
// seed, traffic) triple: two runs of the same job inject byte-identical
// fault sequences, so faulty runs are as reproducible as clean ones.
//
// Only messages that opt in via the Injectable marker (the RDMA wire
// messages, which sit under a CRC/NACK/retry protocol) are ever touched;
// control traffic such as kernel launches has no recovery path and is never
// injected.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Profile describes the fault rates on every fabric link plus the recovery
// knobs of the RDMA guard protocol that accompanies them. The zero value is
// "off": no injection, no guard, no behavioural change anywhere.
type Profile struct {
	// CorruptRate is the per-delivery probability of flipping one payload
	// bit of a corruptible message.
	CorruptRate float64
	// DropRate is the per-delivery probability of losing the message.
	DropRate float64
	// DelayRate is the per-delivery probability of late delivery.
	DelayRate float64
	// DelayCycles is how late a delayed message arrives.
	DelayCycles int

	// TimeoutCycles is the RDMA guard's base retransmit timeout; attempt n
	// waits TimeoutCycles<<(n-1) (exponential backoff). 0 = default 4096.
	TimeoutCycles int
	// MaxAttempts bounds transmissions per request (initial send included)
	// before the engine gives up with a hard error. 0 = default 10.
	MaxAttempts int
	// DegradeK is the number of consecutive codec-attributed integrity
	// failures after which the adaptive controller degrades to bypass for
	// its next running phase. 0 = default 3.
	DegradeK int
}

// Guard protocol defaults, applied by the consumers of a Profile when the
// corresponding field is zero.
const (
	DefaultTimeoutCycles = 4096
	DefaultMaxAttempts   = 10
	DefaultDegradeK      = 3
)

// Enabled reports whether the profile injects any faults. A disabled
// profile must leave the simulated system byte-identical to one that never
// heard of this package.
func (p Profile) Enabled() bool {
	return p.CorruptRate > 0 || p.DropRate > 0 || p.DelayRate > 0
}

// Validate reports the first out-of-range field.
func (p Profile) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"corrupt", p.CorruptRate}, {"drop", p.DropRate}, {"delay", p.DelayRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s rate %g outside [0,1]", r.name, r.v)
		}
	}
	if p.DelayCycles < 0 {
		return fmt.Errorf("fault: negative delay cycles %d", p.DelayCycles)
	}
	if p.TimeoutCycles < 0 {
		return fmt.Errorf("fault: negative timeout %d", p.TimeoutCycles)
	}
	if p.MaxAttempts < 0 {
		return fmt.Errorf("fault: negative max attempts %d", p.MaxAttempts)
	}
	if p.DegradeK < 0 {
		return fmt.Errorf("fault: negative degrade threshold %d", p.DegradeK)
	}
	return nil
}

// Timeout returns the effective base timeout.
func (p Profile) Timeout() int {
	if p.TimeoutCycles > 0 {
		return p.TimeoutCycles
	}
	return DefaultTimeoutCycles
}

// Attempts returns the effective transmission bound.
func (p Profile) Attempts() int {
	if p.MaxAttempts > 0 {
		return p.MaxAttempts
	}
	return DefaultMaxAttempts
}

// Degrade returns the effective consecutive-failure threshold.
func (p Profile) Degrade() int {
	if p.DegradeK > 0 {
		return p.DegradeK
	}
	return DefaultDegradeK
}

// Canonical returns the profile's canonical textual form: "" when disabled,
// otherwise a fixed-order k=v list that round-trips through Parse. The
// canonical form is what enters sweep.JobKey, so spelling a profile two ways
// ("light" vs its explicit rates) lands on one fingerprint.
func (p Profile) Canonical() string {
	if !p.Enabled() {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "corrupt=%g,drop=%g,delay=%g,delaycycles=%d",
		p.CorruptRate, p.DropRate, p.DelayRate, p.DelayCycles)
	if p.TimeoutCycles != 0 {
		fmt.Fprintf(&b, ",timeout=%d", p.TimeoutCycles)
	}
	if p.MaxAttempts != 0 {
		fmt.Fprintf(&b, ",attempts=%d", p.MaxAttempts)
	}
	if p.DegradeK != 0 {
		fmt.Fprintf(&b, ",degradek=%d", p.DegradeK)
	}
	return b.String()
}

// presets are the named profiles accepted by Parse.
var presets = map[string]Profile{
	"off": {},
	"light": {
		CorruptRate: 0.01, DropRate: 0.005, DelayRate: 0.02, DelayCycles: 64,
	},
	"aggressive": {
		CorruptRate: 0.05, DropRate: 0.02, DelayRate: 0.05, DelayCycles: 128,
	},
}

// PresetNames lists the named profiles for usage strings.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Parse turns a -fault-profile flag value into a Profile. It accepts a
// preset name (off, light, aggressive), the empty string (off), or an
// explicit comma-separated k=v list, e.g.
//
//	corrupt=0.05,drop=0.02,delay=0.1,delaycycles=128,timeout=4096,attempts=10,degradek=3
func Parse(s string) (Profile, error) {
	s = strings.TrimSpace(s)
	if p, ok := presets[strings.ToLower(s)]; ok || s == "" {
		return p, nil
	}
	var p Profile
	for _, field := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return Profile{}, fmt.Errorf("fault: %q is not a preset (%s) or k=v pair",
				field, strings.Join(PresetNames(), "|"))
		}
		k = strings.ToLower(strings.TrimSpace(k))
		v = strings.TrimSpace(v)
		var err error
		switch k {
		case "corrupt":
			p.CorruptRate, err = strconv.ParseFloat(v, 64)
		case "drop":
			p.DropRate, err = strconv.ParseFloat(v, 64)
		case "delay":
			p.DelayRate, err = strconv.ParseFloat(v, 64)
		case "delaycycles":
			p.DelayCycles, err = strconv.Atoi(v)
		case "timeout":
			p.TimeoutCycles, err = strconv.Atoi(v)
		case "attempts":
			p.MaxAttempts, err = strconv.Atoi(v)
		case "degradek":
			p.DegradeK, err = strconv.Atoi(v)
		default:
			return Profile{}, fmt.Errorf("fault: unknown profile key %q", k)
		}
		if err != nil {
			return Profile{}, fmt.Errorf("fault: bad value for %s: %w", k, err)
		}
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}
