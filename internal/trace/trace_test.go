package trace

import (
	"strings"
	"testing"
)

func TestLogRecordAndCap(t *testing.T) {
	l := &Log{Cap: 2}
	for i := 0; i < 5; i++ {
		l.Record(Transfer{Start: 0, End: 1, Src: "a", Dst: "b", Bytes: 10, Kind: "X"})
	}
	if len(l.Transfers()) != 2 {
		t.Errorf("kept %d transfers, want cap 2", len(l.Transfers()))
	}
	if l.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", l.Dropped())
	}
}

func TestUtilizationTimeline(t *testing.T) {
	l := &Log{}
	// Busy 0-10, idle 10-20, busy 20-30.
	l.Record(Transfer{Start: 0, End: 10, Src: "a", Dst: "b", Bytes: 200})
	l.Record(Transfer{Start: 20, End: 30, Src: "a", Dst: "b", Bytes: 200})
	bins := l.UtilizationTimeline(10)
	if len(bins) != 3 {
		t.Fatalf("got %d bins: %v", len(bins), bins)
	}
	if bins[0] != 1.0 || bins[1] != 0.0 || bins[2] != 1.0 {
		t.Errorf("bins = %v, want [1 0 1]", bins)
	}
}

func TestUtilizationPartialWindows(t *testing.T) {
	l := &Log{}
	l.Record(Transfer{Start: 5, End: 15, Src: "a", Dst: "b", Bytes: 200})
	bins := l.UtilizationTimeline(10)
	if len(bins) != 2 {
		t.Fatalf("bins: %v", bins)
	}
	if bins[0] != 0.5 || bins[1] != 0.5 {
		t.Errorf("bins = %v, want [0.5 0.5]", bins)
	}
}

func TestPairsSortedByBytes(t *testing.T) {
	l := &Log{}
	l.Record(Transfer{Src: "a", Dst: "b", Bytes: 100, End: 1})
	l.Record(Transfer{Src: "c", Dst: "d", Bytes: 500, End: 1})
	l.Record(Transfer{Src: "a", Dst: "b", Bytes: 100, End: 1})
	pairs := l.Pairs()
	if len(pairs) != 2 {
		t.Fatalf("pairs: %v", pairs)
	}
	if pairs[0].Src != "c" || pairs[0].Bytes != 500 {
		t.Errorf("top pair = %+v", pairs[0])
	}
	if pairs[1].Transfers != 2 || pairs[1].Bytes != 200 {
		t.Errorf("second pair = %+v", pairs[1])
	}
}

func TestKindsAggregation(t *testing.T) {
	l := &Log{}
	l.Record(Transfer{Kind: "Read", Bytes: 16, End: 1})
	l.Record(Transfer{Kind: "DataReady", Bytes: 68, End: 1})
	l.Record(Transfer{Kind: "Read", Bytes: 16, End: 1})
	kinds := l.Kinds()
	if len(kinds) != 2 || kinds[0].Kind != "DataReady" {
		t.Errorf("kinds = %v", kinds)
	}
	if kinds[1].Transfers != 2 || kinds[1].Bytes != 32 {
		t.Errorf("Read kind = %+v", kinds[1])
	}
}

func TestSummaryAndCSV(t *testing.T) {
	l := &Log{}
	l.Record(Transfer{Start: 0, End: 4, Src: "GPU0", Dst: "GPU1", Bytes: 80, Kind: "Read"})
	s := l.Summary(10, 5)
	for _, want := range []string{"fabric trace: 1 transfers", "GPU0", "Read", "utilization"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	csv := l.CSV()
	if !strings.Contains(csv, "0,4,GPU0,GPU1,80,Read") {
		t.Errorf("csv malformed:\n%s", csv)
	}
}

func TestEmptyLog(t *testing.T) {
	l := &Log{}
	if l.UtilizationTimeline(10) != nil {
		t.Error("empty timeline not nil")
	}
	if len(l.Pairs()) != 0 || len(l.Kinds()) != 0 {
		t.Error("empty aggregates not empty")
	}
	if !strings.Contains(l.Summary(10, 3), "0 transfers") {
		t.Error("empty summary")
	}
}
