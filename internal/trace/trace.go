// Package trace records inter-GPU fabric activity for offline analysis:
// who talked to whom, when, and how the link's utilization evolved — the
// visibility a simulator needs when the answer to "why is this slow?" is a
// timeline rather than a single number.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"mgpucompress/internal/sim"
)

// Transfer is one completed fabric transmission.
type Transfer struct {
	Start sim.Time `json:"start"`
	End   sim.Time `json:"end"`
	Src   string   `json:"src"`
	Dst   string   `json:"dst"`
	Bytes int      `json:"bytes"`
	Kind  string   `json:"kind"` // message type name
}

// Log accumulates transfers. A zero Log is ready to use; Cap bounds memory
// for long runs (0 = unbounded).
type Log struct {
	Cap       int
	transfers []Transfer
	dropped   uint64
}

// Record appends a transfer, dropping it if the log is full.
func (l *Log) Record(t Transfer) {
	if l.Cap > 0 && len(l.transfers) >= l.Cap {
		l.dropped++
		return
	}
	l.transfers = append(l.transfers, t)
}

// Transfers returns the recorded transfers in completion order.
func (l *Log) Transfers() []Transfer { return l.transfers }

// Dropped returns how many transfers did not fit under Cap.
func (l *Log) Dropped() uint64 { return l.dropped }

// logJSON is the exported wire form of a Log.
type logJSON struct {
	Cap       int        `json:"cap,omitempty"`
	Transfers []Transfer `json:"transfers"`
	Dropped   uint64     `json:"dropped,omitempty"`
}

// MarshalJSON exports the full transfer list and the drop accounting, so a
// capped log round-trips without losing how much it dropped.
func (l Log) MarshalJSON() ([]byte, error) {
	return json.Marshal(logJSON{Cap: l.Cap, Transfers: l.transfers, Dropped: l.dropped})
}

// UnmarshalJSON restores a marshaled log.
func (l *Log) UnmarshalJSON(b []byte) error {
	var w logJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	l.Cap, l.transfers, l.dropped = w.Cap, w.Transfers, w.Dropped
	return nil
}

// UtilizationTimeline bins the busy time of the link into windows of bin
// cycles, returning per-bin utilization in [0, 1]. For a crossbar the
// values can exceed 1 (multiple links busy).
func (l *Log) UtilizationTimeline(bin sim.Time) []float64 {
	if bin == 0 || len(l.transfers) == 0 {
		return nil
	}
	var end sim.Time
	for _, t := range l.transfers {
		if t.End > end {
			end = t.End
		}
	}
	bins := make([]float64, int((end-1)/bin)+1)
	for _, t := range l.transfers {
		for b := t.Start / bin; b <= (t.End-1)/bin && int(b) < len(bins); b++ {
			winStart := b * bin
			winEnd := winStart + bin
			s, e := t.Start, t.End
			if s < winStart {
				s = winStart
			}
			if e > winEnd {
				e = winEnd
			}
			if e > s {
				bins[b] += float64(e-s) / float64(bin)
			}
		}
	}
	return bins
}

// PairStat summarizes one (src, dst) flow.
type PairStat struct {
	Src, Dst  string
	Transfers uint64
	Bytes     uint64
}

// Pairs returns per-(src,dst) totals sorted by bytes descending.
func (l *Log) Pairs() []PairStat {
	agg := map[[2]string]*PairStat{}
	for _, t := range l.transfers {
		key := [2]string{t.Src, t.Dst}
		ps := agg[key]
		if ps == nil {
			ps = &PairStat{Src: t.Src, Dst: t.Dst}
			agg[key] = ps
		}
		ps.Transfers++
		ps.Bytes += uint64(t.Bytes)
	}
	out := make([]PairStat, 0, len(agg))
	for _, ps := range agg {
		out = append(out, *ps)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Src+out[i].Dst < out[j].Src+out[j].Dst
	})
	return out
}

// KindStat summarizes one message type.
type KindStat struct {
	Kind      string
	Transfers uint64
	Bytes     uint64
}

// Kinds returns per-message-type totals sorted by bytes descending.
func (l *Log) Kinds() []KindStat {
	agg := map[string]*KindStat{}
	for _, t := range l.transfers {
		ks := agg[t.Kind]
		if ks == nil {
			ks = &KindStat{Kind: t.Kind}
			agg[t.Kind] = ks
		}
		ks.Transfers++
		ks.Bytes += uint64(t.Bytes)
	}
	out := make([]KindStat, 0, len(agg))
	for _, ks := range agg {
		out = append(out, *ks)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Summary renders a human-readable report: utilization timeline (coarse
// sparkline), busiest flows and the message-type mix.
func (l *Log) Summary(bin sim.Time, topPairs int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fabric trace: %d transfers", len(l.transfers))
	if l.dropped > 0 {
		fmt.Fprintf(&sb, " (+%d dropped beyond cap)", l.dropped)
	}
	sb.WriteString("\n")
	if bins := l.UtilizationTimeline(bin); len(bins) > 0 {
		fmt.Fprintf(&sb, "utilization per %d-cycle window:\n  ", bin)
		for _, u := range bins {
			sb.WriteByte(sparkChar(u))
		}
		sb.WriteString("\n")
	}
	sb.WriteString("busiest flows:\n")
	for i, ps := range l.Pairs() {
		if i >= topPairs {
			break
		}
		fmt.Fprintf(&sb, "  %-24s -> %-24s %8d msgs %10d B\n", ps.Src, ps.Dst, ps.Transfers, ps.Bytes)
	}
	sb.WriteString("message mix:\n")
	for _, ks := range l.Kinds() {
		fmt.Fprintf(&sb, "  %-20s %8d msgs %10d B\n", ks.Kind, ks.Transfers, ks.Bytes)
	}
	return sb.String()
}

func sparkChar(u float64) byte {
	levels := " .:-=+*#%@"
	idx := int(u * float64(len(levels)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(levels) {
		idx = len(levels) - 1
	}
	return levels[idx]
}

// CSV renders the raw transfer log as CSV for external tooling.
func (l *Log) CSV() string {
	var sb strings.Builder
	sb.WriteString("start,end,src,dst,bytes,kind\n")
	for _, t := range l.transfers {
		fmt.Fprintf(&sb, "%d,%d,%s,%s,%d,%s\n", t.Start, t.End, t.Src, t.Dst, t.Bytes, t.Kind)
	}
	return sb.String()
}
