package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"mgpucompress/internal/sim"
)

// Span is one timed interval on a named track: a fabric transfer, an
// adaptive controller phase, a kernel launch, a workload stage. Spans
// generalize Transfer — a Transfer is a span on the "fabric" track — and
// are the unit the Chrome trace-event exporter consumes.
type Span struct {
	// Track groups spans onto one timeline row (a Perfetto "thread"), e.g.
	// "fabric", "kernel", "ctrl2".
	Track string `json:"track"`
	// Name labels the interval ("run:BDI", "fir_transpose", ...).
	Name string `json:"name"`
	// Cat is the span category ("transfer", "phase", "kernel", "stage").
	Cat   string   `json:"cat,omitempty"`
	Start sim.Time `json:"start"`
	End   sim.Time `json:"end"`
	// Args carries span details into the trace viewer. Only json.Marshal
	// iterates this map, and Go marshals map keys sorted, so Args never
	// introduces iteration-order nondeterminism.
	Args map[string]string `json:"args,omitempty"`
}

// Recorder accumulates spans in record order. A zero Recorder is ready to
// use; Cap bounds memory for long runs (0 = unbounded), and the Dropped
// count survives JSON round trips just like Log's. Record is safe for
// concurrent use: span sources live on different simulation partitions
// (controller phases, RDMA guards), which the engine may advance on
// several cores.
type Recorder struct {
	Cap     int
	mu      sync.Mutex
	spans   []Span
	dropped uint64
}

// Record appends a span, dropping it if the recorder is full.
func (r *Recorder) Record(s Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.Cap > 0 && len(r.spans) >= r.Cap {
		r.dropped++
		return
	}
	r.spans = append(r.spans, s)
}

// Spans returns the recorded spans in record order. Call it only after the
// simulation has quiesced.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spans
}

// Dropped returns how many spans did not fit under Cap.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// recorderJSON is the exported wire form of a Recorder.
type recorderJSON struct {
	Cap     int    `json:"cap,omitempty"`
	Spans   []Span `json:"spans"`
	Dropped uint64 `json:"dropped,omitempty"`
}

// MarshalJSON preserves the spans and the drop accounting.
func (r *Recorder) MarshalJSON() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return json.Marshal(recorderJSON{Cap: r.Cap, Spans: r.spans, Dropped: r.dropped})
}

// UnmarshalJSON restores a marshaled recorder.
func (r *Recorder) UnmarshalJSON(b []byte) error {
	var w recorderJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	r.Cap, r.spans, r.dropped = w.Cap, w.Spans, w.Dropped
	return nil
}

// Spans converts the transfer log into fabric-track spans, in record order.
func (l *Log) Spans() []Span {
	out := make([]Span, 0, len(l.transfers))
	for _, t := range l.transfers {
		out = append(out, Span{
			Track: "fabric",
			Name:  t.Kind,
			Cat:   "transfer",
			Start: t.Start,
			End:   t.End,
			Args: map[string]string{
				"src":   t.Src,
				"dst":   t.Dst,
				"bytes": strconv.Itoa(t.Bytes),
			},
		})
	}
	return out
}

// Summary condenses a span set to the numbers a live stream carries per
// completed job: how many spans on how many tracks, their summed duration,
// and the timeline extent. It is a pure function of the spans, so equal
// jobs summarize identically.
type Summary struct {
	Spans      int      `json:"spans"`
	Tracks     int      `json:"tracks"`
	TotalTicks uint64   `json:"total_ticks"`
	MaxEnd     sim.Time `json:"max_end"`
}

// Summarize folds the spans into a Summary.
func Summarize(spans []Span) Summary {
	s := Summary{Spans: len(spans)}
	tracks := make(map[string]bool)
	for _, sp := range spans {
		tracks[sp.Track] = true
		s.TotalTicks += uint64(sp.End - sp.Start)
		if sp.End > s.MaxEnd {
			s.MaxEnd = sp.End
		}
	}
	s.Tracks = len(tracks)
	return s
}

// Process is one timeline process in a Chrome trace: a named span set. A
// single simulation exports one process; a sweep exports one per job.
type Process struct {
	Name  string
	Spans []Span
}

// chromeEvent is one entry of the Chrome trace-event format ("X" complete
// events plus "M" metadata), loadable in Perfetto and chrome://tracing.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   uint64            `json:"ts"`
	Dur  uint64            `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// ExportChrome writes the processes as Chrome trace-event JSON. One
// simulated cycle maps to one microsecond of trace time (ts/dur are µs in
// the format), so a 1 GHz-cycle timeline reads as milliseconds-per-1000
// cycles in the viewer. Output bytes are a pure function of the input:
// tracks are numbered in sorted-name order and events keep record order, so
// equal runs export identical files.
func ExportChrome(w io.Writer, procs []Process) error {
	var events []chromeEvent
	for pid, proc := range procs {
		name := proc.Name
		if name == "" {
			name = fmt.Sprintf("process %d", pid)
		}
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]string{"name": name},
		})
		tracks := make(map[string]int)
		var trackNames []string
		for _, s := range proc.Spans {
			if _, ok := tracks[s.Track]; !ok {
				tracks[s.Track] = 0
				trackNames = append(trackNames, s.Track)
			}
		}
		sort.Strings(trackNames)
		for tid, t := range trackNames {
			tracks[t] = tid
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]string{"name": t},
			})
		}
		for _, s := range proc.Spans {
			dur := uint64(s.End - s.Start)
			if dur == 0 {
				dur = 1 // zero-width spans vanish in viewers
			}
			events = append(events, chromeEvent{
				Name: s.Name,
				Cat:  s.Cat,
				Ph:   "X",
				Ts:   uint64(s.Start),
				Dur:  dur,
				Pid:  pid,
				Tid:  tracks[s.Track],
				Args: s.Args,
			})
		}
	}
	b, err := json.MarshalIndent(chromeFile{TraceEvents: events}, "", " ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}
