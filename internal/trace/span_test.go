package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

func TestRecorderJSONRoundTrip(t *testing.T) {
	r := &Recorder{Cap: 2}
	r.Record(Span{Track: "kernel", Name: "fir", Cat: "kernel", Start: 10, End: 90})
	r.Record(Span{Track: "ctrl0", Name: "sampling", Cat: "phase", Start: 0, End: 64,
		Args: map[string]string{"selected": "BDI"}})
	r.Record(Span{Track: "kernel", Name: "overflow", Start: 90, End: 91})
	if r.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", r.Dropped())
	}

	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var got Recorder
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Dropped() != 1 {
		t.Errorf("dropped lost in round trip: %d", got.Dropped())
	}
	if got.Cap != 2 || !reflect.DeepEqual(got.Spans(), r.Spans()) {
		t.Errorf("round trip mismatch:\n  %+v\n  %+v", got.Spans(), r.Spans())
	}
}

func TestLogJSONRoundTripPreservesDropped(t *testing.T) {
	l := Log{Cap: 1}
	l.Record(Transfer{Start: 1, End: 5, Src: "GPU0", Dst: "GPU1", Bytes: 64, Kind: "ReadReq"})
	l.Record(Transfer{Start: 5, End: 9, Src: "GPU1", Dst: "GPU0", Bytes: 64, Kind: "ReadRsp"})
	l.Record(Transfer{Start: 9, End: 13, Src: "GPU0", Dst: "GPU1", Bytes: 64, Kind: "ReadReq"})
	if l.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", l.Dropped())
	}

	b, err := json.Marshal(&l)
	if err != nil {
		t.Fatal(err)
	}
	var got Log
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Dropped() != 2 {
		t.Errorf("Dropped accounting lost in export: got %d, want 2", got.Dropped())
	}
	if got.Cap != 1 || !reflect.DeepEqual(got.Transfers(), l.Transfers()) {
		t.Errorf("round trip mismatch:\n  %+v\n  %+v", got, l)
	}
}

func TestTransferJSONRoundTrip(t *testing.T) {
	in := Transfer{Start: 3, End: 17, Src: "GPU2.RDMA", Dst: "Host.RDMA", Bytes: 256, Kind: "WriteReq"}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"start"`, `"end"`, `"src"`, `"dst"`, `"bytes"`, `"kind"`} {
		if !bytes.Contains(b, []byte(key)) {
			t.Errorf("marshal lacks %s field: %s", key, b)
		}
	}
	var out Transfer
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip = %+v, want %+v", out, in)
	}
}

func TestLogSpans(t *testing.T) {
	var l Log
	l.Record(Transfer{Start: 2, End: 8, Src: "GPU0", Dst: "GPU1", Bytes: 128, Kind: "ReadReq"})
	spans := l.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	s := spans[0]
	if s.Track != "fabric" || s.Name != "ReadReq" || s.Cat != "transfer" ||
		s.Start != 2 || s.End != 8 {
		t.Errorf("span = %+v", s)
	}
	want := map[string]string{"src": "GPU0", "dst": "GPU1", "bytes": "128"}
	if !reflect.DeepEqual(s.Args, want) {
		t.Errorf("args = %v, want %v", s.Args, want)
	}
}

func TestExportChrome(t *testing.T) {
	procs := []Process{{
		Name: "wl=FIR",
		Spans: []Span{
			{Track: "kernel", Name: "fir", Cat: "kernel", Start: 0, End: 100},
			{Track: "ctrl0", Name: "sampling", Cat: "phase", Start: 0, End: 64},
			{Track: "fabric", Name: "ReadReq", Cat: "transfer", Start: 5, End: 5}, // zero width
		},
	}}
	var buf bytes.Buffer
	if err := ExportChrome(&buf, procs); err != nil {
		t.Fatal(err)
	}

	var file struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   *uint64           `json:"ts"`
			Dur  uint64            `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	// 1 process_name + 3 thread_name metadata events + 3 X events.
	if len(file.TraceEvents) != 7 {
		t.Fatalf("events = %d, want 7", len(file.TraceEvents))
	}
	if e := file.TraceEvents[0]; e.Ph != "M" || e.Name != "process_name" || e.Args["name"] != "wl=FIR" {
		t.Errorf("first event = %+v, want process_name metadata", e)
	}
	// Tracks get tids in sorted-name order: ctrl0=0, fabric=1, kernel=2.
	tids := map[string]int{}
	for _, e := range file.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			tids[e.Args["name"]] = e.Tid
		}
	}
	want := map[string]int{"ctrl0": 0, "fabric": 1, "kernel": 2}
	if !reflect.DeepEqual(tids, want) {
		t.Errorf("track tids = %v, want %v", tids, want)
	}
	for _, e := range file.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		if e.Ts == nil {
			t.Errorf("X event %q lacks ts field (must be emitted even at 0)", e.Name)
		}
		if e.Dur == 0 {
			t.Errorf("X event %q has zero dur; viewers drop it", e.Name)
		}
		if e.Name == "fir" && e.Tid != 2 {
			t.Errorf("kernel span tid = %d, want 2", e.Tid)
		}
	}

	var buf2 bytes.Buffer
	if err := ExportChrome(&buf2, procs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("ExportChrome is not deterministic for equal input")
	}
}

func TestSummarize(t *testing.T) {
	spans := []Span{
		{Track: "kernel", Name: "k0", Start: 10, End: 30},
		{Track: "kernel", Name: "k1", Start: 40, End: 45},
		{Track: "fabric", Name: "wr", Start: 0, End: 100},
	}
	s := Summarize(spans)
	if s.Spans != 3 || s.Tracks != 2 {
		t.Fatalf("Summarize = %+v, want 3 spans on 2 tracks", s)
	}
	if s.TotalTicks != 20+5+100 || s.MaxEnd != 100 {
		t.Fatalf("Summarize = %+v, want total 125 max_end 100", s)
	}
	if z := Summarize(nil); z != (Summary{}) {
		t.Fatalf("Summarize(nil) = %+v, want zero", z)
	}
}
