package cache

import (
	"bytes"
	"math/rand"
	"testing"

	"mgpucompress/internal/mem"
	"mgpucompress/internal/sim"
)

// collector records responses arriving at a port.
type collector struct {
	sim.ComponentBase
	port  *sim.Port
	reads map[uint64]*mem.DataReady
	acks  map[uint64]*mem.WriteACK
	times map[uint64]sim.Time
}

func newCollector(name string) *collector {
	c := &collector{
		ComponentBase: sim.NewComponentBase(name),
		reads:         make(map[uint64]*mem.DataReady),
		acks:          make(map[uint64]*mem.WriteACK),
		times:         make(map[uint64]sim.Time),
	}
	c.port = sim.NewPort(c, name+".port", 0)
	return c
}

func (c *collector) Handle(sim.Event) error { return nil }

func (c *collector) NotifyRecv(now sim.Time, p *sim.Port) {
	for {
		m := p.Retrieve(now)
		if m == nil {
			return
		}
		switch rsp := m.(type) {
		case *mem.DataReady:
			c.reads[rsp.RspTo] = rsp
			c.times[rsp.RspTo] = now
		case *mem.WriteACK:
			c.acks[rsp.RspTo] = rsp
			c.times[rsp.RspTo] = now
		}
	}
}

func (c *collector) NotifyPortFree(sim.Time, *sim.Port) {}

type bench struct {
	engine *sim.Engine
	space  *mem.Space
	cache  *Cache
	dram   *mem.DRAM
	cu     *collector
}

func newBench(t *testing.T, cfg Config) *bench {
	t.Helper()
	engine := sim.NewEngine()
	part := engine.Partition(0)
	space := mem.NewSpace(4)
	dcfg := mem.DefaultDRAMConfig()
	dcfg.AccessLatency = 100
	dram := mem.NewDRAM("DRAM", part, space, dcfg)
	c := New("L1", part, space, cfg)
	cu := newCollector("CU")

	top := sim.NewDirectConnection("top", part, 1)
	top.Plug(cu.port)
	top.Plug(c.Top)
	bottom := sim.NewDirectConnection("bottom", part, 1)
	bottom.Plug(c.Bottom)
	bottom.Plug(dram.Top)
	c.Router = func(uint64) *sim.Port { return dram.Top }

	return &bench{engine: engine, space: space, cache: c, dram: dram, cu: cu}
}

func (b *bench) read(t *testing.T, addr uint64, n int) *mem.ReadReq {
	t.Helper()
	r := mem.NewReadReq(b.cu.port, b.cache.Top, addr, n)
	if !b.cu.port.Send(b.engine.Now(), r) {
		t.Fatal("send rejected")
	}
	return r
}

func (b *bench) write(t *testing.T, addr uint64, data []byte) *mem.WriteReq {
	t.Helper()
	w := mem.NewWriteReq(b.cu.port, b.cache.Top, addr, data)
	if !b.cu.port.Send(b.engine.Now(), w) {
		t.Fatal("send rejected")
	}
	return w
}

func TestCacheMissThenHit(t *testing.T) {
	b := newBench(t, L1Config())
	b.space.Write(0x1000, []byte{42, 43, 44})

	r1 := b.read(t, 0x1000, 64)
	if err := b.engine.Run(); err != nil {
		t.Fatal(err)
	}
	rsp1, ok := b.cu.reads[r1.ID]
	if !ok {
		t.Fatal("no response to first read")
	}
	if rsp1.Data[0] != 42 || rsp1.Data[2] != 44 {
		t.Errorf("data = %v", rsp1.Data[:3])
	}
	missTime := b.cu.times[r1.ID]
	if b.cache.Misses != 1 || b.cache.Hits != 0 {
		t.Errorf("counters hits=%d misses=%d", b.cache.Hits, b.cache.Misses)
	}

	start := b.engine.Now()
	r2 := b.read(t, 0x1008, 8) // same line
	if err := b.engine.Run(); err != nil {
		t.Fatal(err)
	}
	if b.cache.Hits != 1 {
		t.Errorf("second access not a hit (hits=%d)", b.cache.Hits)
	}
	hitLatency := b.cu.times[r2.ID] - start
	if missTime < 100 {
		t.Errorf("miss served in %d cycles, faster than DRAM latency", missTime)
	}
	if hitLatency > 10 {
		t.Errorf("hit served in %d cycles, slower than expected", hitLatency)
	}
}

func TestCacheCoalescesSameLineMisses(t *testing.T) {
	b := newBench(t, L1Config())
	r1 := b.read(t, 0x2000, 64)
	r2 := b.read(t, 0x2020, 32) // same line, still in flight
	r3 := b.read(t, 0x2000, 4)
	if err := b.engine.Run(); err != nil {
		t.Fatal(err)
	}
	for _, r := range []*mem.ReadReq{r1, r2, r3} {
		if _, ok := b.cu.reads[r.ID]; !ok {
			t.Fatalf("request %d got no response", r.ID)
		}
	}
	if b.cache.Misses != 1 {
		t.Errorf("misses = %d, want 1", b.cache.Misses)
	}
	if b.cache.Coalesced != 2 {
		t.Errorf("coalesced = %d, want 2", b.cache.Coalesced)
	}
	if b.dram.Reads != 1 {
		t.Errorf("DRAM saw %d reads, want 1", b.dram.Reads)
	}
}

func TestCacheWriteThrough(t *testing.T) {
	b := newBench(t, L1Config())
	data := []byte{7, 7, 7, 7}
	w := b.write(t, 0x3000, data)
	if err := b.engine.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.cu.acks[w.ID]; !ok {
		t.Fatal("write not acknowledged")
	}
	if got := b.space.Read(0x3000, 4); !bytes.Equal(got, data) {
		t.Errorf("memory = %v", got)
	}
	if b.dram.Writes != 1 {
		t.Errorf("DRAM writes = %d, want 1 (write-through)", b.dram.Writes)
	}
	// no-write-allocate: the line must not be cached.
	if b.cache.Contains(0x3000) {
		t.Error("write allocated a line in a no-write-allocate cache")
	}
}

func TestCacheReadAfterWriteSeesData(t *testing.T) {
	b := newBench(t, L1Config())
	w := b.write(t, 0x4000, []byte{1, 2, 3, 4})
	if err := b.engine.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.cu.acks[w.ID]; !ok {
		t.Fatal("no ack")
	}
	r := b.read(t, 0x4000, 4)
	if err := b.engine.Run(); err != nil {
		t.Fatal(err)
	}
	if got := b.cu.reads[r.ID].Data; !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Errorf("read-after-write = %v", got)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	cfg := L1Config()
	cfg.SizeBytes = 4 * 64 // 4 lines
	cfg.Ways = 2           // 2 sets × 2 ways
	b := newBench(t, cfg)

	// Fill set 0 (lines with even line index) beyond capacity.
	addrs := []uint64{0 * 64, 2 * 64, 4 * 64} // all map to set 0
	for _, a := range addrs {
		b.read(t, a, 64)
		if err := b.engine.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if b.cache.Contains(0) {
		t.Error("LRU line not evicted")
	}
	if !b.cache.Contains(2*64) || !b.cache.Contains(4*64) {
		t.Error("recently used lines evicted")
	}
}

func TestCacheInvalidate(t *testing.T) {
	b := newBench(t, L1Config())
	b.read(t, 0x5000, 64)
	if err := b.engine.Run(); err != nil {
		t.Fatal(err)
	}
	if !b.cache.Contains(0x5000) {
		t.Fatal("line not cached")
	}
	b.cache.Invalidate()
	if b.cache.Contains(0x5000) {
		t.Error("line survived invalidation")
	}
	before := b.cache.Misses
	b.read(t, 0x5000, 64)
	if err := b.engine.Run(); err != nil {
		t.Fatal(err)
	}
	if b.cache.Misses != before+1 {
		t.Error("post-invalidate access did not miss")
	}
}

func TestCacheUncacheableBypass(t *testing.T) {
	cfg := L1Config()
	cfg.Cacheable = func(addr uint64) bool { return addr < 0x10000 }
	b := newBench(t, cfg)

	r := b.read(t, 0x20000, 64) // uncacheable
	if err := b.engine.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.cu.reads[r.ID]; !ok {
		t.Fatal("no response to bypassed read")
	}
	if b.cache.Contains(0x20000) {
		t.Error("uncacheable line was cached")
	}
	if b.cache.Bypassed != 1 {
		t.Errorf("bypassed = %d, want 1", b.cache.Bypassed)
	}
	// Bypassed reads never hit, even when repeated.
	b.read(t, 0x20000, 64)
	if err := b.engine.Run(); err != nil {
		t.Fatal(err)
	}
	if b.cache.Hits != 0 {
		t.Error("bypassed read produced a hit")
	}
}

func TestCacheManyRandomAccessesAllComplete(t *testing.T) {
	b := newBench(t, L1Config())
	rng := rand.New(rand.NewSource(5))
	var reads []*mem.ReadReq
	var writes []*mem.WriteReq
	for i := 0; i < 500; i++ {
		addr := uint64(rng.Intn(64)) * 64
		if rng.Intn(3) == 0 {
			data := make([]byte, 64)
			rng.Read(data)
			writes = append(writes, b.write(t, addr, data))
		} else {
			reads = append(reads, b.read(t, addr, 64))
		}
		if rng.Intn(4) == 0 {
			if err := b.engine.Run(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := b.engine.Run(); err != nil {
		t.Fatal(err)
	}
	for _, r := range reads {
		if _, ok := b.cu.reads[r.ID]; !ok {
			t.Fatalf("read %d lost", r.ID)
		}
	}
	for _, w := range writes {
		if _, ok := b.cu.acks[w.ID]; !ok {
			t.Fatalf("write %d lost", w.ID)
		}
	}
	if b.cache.Hits == 0 || b.cache.Misses == 0 {
		t.Errorf("degenerate mix: hits=%d misses=%d", b.cache.Hits, b.cache.Misses)
	}
}

func TestCacheMSHRLimitEventuallyDrains(t *testing.T) {
	cfg := L1Config()
	cfg.MaxMSHR = 2
	b := newBench(t, cfg)
	var reads []*mem.ReadReq
	for i := 0; i < 20; i++ {
		reads = append(reads, b.read(t, uint64(i)*64, 64))
	}
	if err := b.engine.Run(); err != nil {
		t.Fatal(err)
	}
	for _, r := range reads {
		if _, ok := b.cu.reads[r.ID]; !ok {
			t.Fatalf("read %d starved under MSHR pressure", r.ID)
		}
	}
}

// Two-level stack: CU-side collector -> L1 -> L2 -> DRAM. L1 misses that
// hit in L2 must be much faster than DRAM accesses, and data stays correct
// through both levels.
func TestTwoLevelCacheStack(t *testing.T) {
	engine := sim.NewEngine()
	part := engine.Partition(0)
	space := mem.NewSpace(4)
	dcfg := mem.DefaultDRAMConfig()
	dcfg.AccessLatency = 200
	dram := mem.NewDRAM("DRAM", part, space, dcfg)
	l2 := New("L2", part, space, L2Config())
	l1 := New("L1", part, space, L1Config())
	cu := newCollector("CU")

	top := sim.NewDirectConnection("top", part, 1)
	top.Plug(cu.port)
	top.Plug(l1.Top)
	mid := sim.NewDirectConnection("mid", part, 1)
	mid.Plug(l1.Bottom)
	mid.Plug(l2.Top)
	bot := sim.NewDirectConnection("bot", part, 1)
	bot.Plug(l2.Bottom)
	bot.Plug(dram.Top)
	l1.Router = func(uint64) *sim.Port { return l2.Top }
	l2.Router = func(uint64) *sim.Port { return dram.Top }

	space.Write(0x7000, []byte{9, 8, 7})

	send := func(addr uint64) (*mem.ReadReq, sim.Time) {
		start := engine.Now()
		r := mem.NewReadReq(cu.port, l1.Top, addr, 64)
		cu.port.Send(start, r)
		if err := engine.Run(); err != nil {
			t.Fatal(err)
		}
		return r, cu.times[r.ID] - start
	}

	// Cold: misses both levels, pays DRAM.
	r1, coldLat := send(0x7000)
	if got := cu.reads[r1.ID].Data[0]; got != 9 {
		t.Fatalf("cold read data = %d", got)
	}
	if coldLat < 200 {
		t.Errorf("cold latency %d below DRAM latency", coldLat)
	}
	if l1.Misses != 1 || l2.Misses != 1 || dram.Reads != 1 {
		t.Errorf("cold counters: l1=%d l2=%d dram=%d", l1.Misses, l2.Misses, dram.Reads)
	}

	// Evict from L1 only: invalidate L1 and re-read -> L2 hit, no DRAM.
	l1.Invalidate()
	_, l2Lat := send(0x7000)
	if l2.Hits != 1 {
		t.Errorf("L2 hits = %d, want 1", l2.Hits)
	}
	if dram.Reads != 1 {
		t.Errorf("DRAM reads = %d, want still 1", dram.Reads)
	}
	if l2Lat >= coldLat {
		t.Errorf("L2-hit latency %d not below cold %d", l2Lat, coldLat)
	}

	// Warm: L1 hit, fastest of all.
	_, l1Lat := send(0x7000)
	if l1.Hits != 1 {
		t.Errorf("L1 hits = %d, want 1", l1.Hits)
	}
	if l1Lat >= l2Lat {
		t.Errorf("L1-hit latency %d not below L2-hit %d", l1Lat, l2Lat)
	}

	// Write through both levels.
	w := mem.NewWriteReq(cu.port, l1.Top, 0x7000, []byte{42})
	cu.port.Send(engine.Now(), w)
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := cu.acks[w.ID]; !ok {
		t.Fatal("write not acked through the stack")
	}
	if dram.Writes != 1 {
		t.Errorf("DRAM writes = %d, want 1 (write-through both levels)", dram.Writes)
	}
	r4, _ := send(0x7000)
	if got := cu.reads[r4.ID].Data[0]; got != 42 {
		t.Errorf("read after write = %d, want 42", got)
	}
}
