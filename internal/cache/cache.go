// Package cache implements the set-associative caches of the simulated GPU
// (L1 vector/scalar/instruction caches and the L2 banks of Table VII).
//
// Caches are timing models: data always lives in the mem.Space backing
// store (the platform is write-through end to end), so a cache holds tags
// and LRU state only. Hits respond after the hit latency with data read
// from the space; misses allocate an MSHR, fetch the line from the next
// level, and coalesce duplicate requests. Requests that the cacheable
// predicate rejects (remote addresses at L1, which the paper routes to the
// RDMA engine instead of caching) are forwarded without allocation.
package cache

import (
	"fmt"

	"mgpucompress/internal/mem"
	"mgpucompress/internal/metrics"
	"mgpucompress/internal/sim"
)

// Config sizes a cache.
type Config struct {
	SizeBytes  int
	Ways       int
	LineSize   int
	HitLatency sim.Time
	// IssueWidth is the number of requests the cache can start per cycle.
	IssueWidth int
	// MaxMSHR bounds outstanding misses; when full the cache stops
	// dequeuing, which back-pressures the upper level.
	MaxMSHR         int
	PortBufferBytes int
	// Cacheable decides whether an address may allocate in this cache.
	// Nil means everything is cacheable. Non-cacheable requests are
	// forwarded to the bottom router untouched.
	Cacheable func(addr uint64) bool
}

// L1Config returns the Table VII L1 vector cache: 16 KB, 4-way.
func L1Config() Config {
	return Config{
		SizeBytes:       16 * 1024,
		Ways:            4,
		LineSize:        mem.LineSize,
		HitLatency:      1,
		IssueWidth:      4,
		MaxMSHR:         16,
		PortBufferBytes: 4 * 1024,
	}
}

// L2Config returns one Table VII L2 bank: 256 KB, 16-way.
func L2Config() Config {
	return Config{
		SizeBytes:       256 * 1024,
		Ways:            16,
		LineSize:        mem.LineSize,
		HitLatency:      20,
		IssueWidth:      4,
		MaxMSHR:         32,
		PortBufferBytes: 8 * 1024,
	}
}

type set struct {
	tags []uint64 // line-aligned addresses; LRU order, front = most recent
}

type mshrEntry struct {
	lineAddr uint64
	waiters  []*mem.ReadReq
}

type pendingWrite struct {
	orig *mem.WriteReq
}

// Cache is a set-associative, write-through, no-write-allocate cache.
type Cache struct {
	sim.ComponentBase
	part   *sim.Partition
	ticker *sim.Ticker
	cfg    Config
	space  *mem.Space

	// Top receives requests from the level above; Bottom talks to the
	// level below through the router.
	Top    *sim.Port
	Bottom *sim.Port

	// Router maps an address to the bottom-level destination port (L2
	// bank, DRAM channel, or the RDMA engine).
	Router func(addr uint64) *sim.Port

	sets     []set
	numSets  int
	mshr     map[uint64]*mshrEntry // keyed by bottom ReadReq ID
	mshrLine map[uint64]*mshrEntry // keyed by line address
	writes   map[uint64]pendingWrite
	// passthrough tracks forwarded non-cacheable reads by bottom ID.
	passthrough map[uint64]*mem.ReadReq

	// Stats
	Hits, Misses, Coalesced uint64
	WritesSeen              uint64
	Bypassed                uint64
}

// RegisterMetrics exposes the cache counters under prefix (e.g.
// "gpu0/l1_2"). The closures read the same fields the stats aggregation
// reads, keeping one source of truth per counter.
func (c *Cache) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.CounterFunc(prefix+"/hits", func() uint64 { return c.Hits })
	reg.CounterFunc(prefix+"/misses", func() uint64 { return c.Misses })
	reg.CounterFunc(prefix+"/coalesced", func() uint64 { return c.Coalesced })
	reg.CounterFunc(prefix+"/writes_seen", func() uint64 { return c.WritesSeen })
	reg.CounterFunc(prefix+"/bypassed", func() uint64 { return c.Bypassed })
}

// New builds a cache bound to the functional space.
func New(name string, part *sim.Partition, space *mem.Space, cfg Config) *Cache {
	if cfg.LineSize == 0 {
		cfg.LineSize = mem.LineSize
	}
	if cfg.IssueWidth <= 0 {
		cfg.IssueWidth = 4
	}
	numSets := cfg.SizeBytes / cfg.Ways / cfg.LineSize
	if numSets <= 0 {
		panic(fmt.Sprintf("cache %s: bad geometry %d/%d/%d", name, cfg.SizeBytes, cfg.Ways, cfg.LineSize))
	}
	c := &Cache{
		ComponentBase: sim.NewComponentBase(name),
		part:          part,
		cfg:           cfg,
		space:         space,
		numSets:       numSets,
		sets:          make([]set, numSets),
		mshr:          make(map[uint64]*mshrEntry),
		mshrLine:      make(map[uint64]*mshrEntry),
		writes:        make(map[uint64]pendingWrite),
		passthrough:   make(map[uint64]*mem.ReadReq),
	}
	c.Top = sim.NewPort(c, name+".Top", cfg.PortBufferBytes)
	c.Bottom = sim.NewPort(c, name+".Bottom", cfg.PortBufferBytes)
	c.ticker = sim.NewTicker(part, c)
	return c
}

func (c *Cache) lineAddr(addr uint64) uint64 { return addr &^ uint64(c.cfg.LineSize-1) }

func (c *Cache) setOf(lineAddr uint64) *set {
	return &c.sets[(lineAddr/uint64(c.cfg.LineSize))%uint64(c.numSets)]
}

// lookup reports whether the line is present and refreshes LRU order.
func (c *Cache) lookup(lineAddr uint64) bool {
	s := c.setOf(lineAddr)
	for i, t := range s.tags {
		if t == lineAddr {
			copy(s.tags[1:i+1], s.tags[:i])
			s.tags[0] = lineAddr
			return true
		}
	}
	return false
}

// install inserts the line, evicting the LRU victim if needed (write-through
// caches discard victims silently).
func (c *Cache) install(lineAddr uint64) {
	s := c.setOf(lineAddr)
	for i, t := range s.tags {
		if t == lineAddr {
			copy(s.tags[1:i+1], s.tags[:i])
			s.tags[0] = lineAddr
			return
		}
	}
	if len(s.tags) < c.cfg.Ways {
		s.tags = append(s.tags, 0)
	}
	copy(s.tags[1:], s.tags)
	s.tags[0] = lineAddr
}

// Invalidate drops every tag. The platform invalidates L1 caches at kernel
// boundaries, the GCN behavior that keeps non-coherent L1s correct.
func (c *Cache) Invalidate() {
	for i := range c.sets {
		c.sets[i].tags = c.sets[i].tags[:0]
	}
}

// Contains reports whether the line holding addr is cached (for tests).
func (c *Cache) Contains(addr uint64) bool {
	la := c.lineAddr(addr)
	s := c.setOf(la)
	for _, t := range s.tags {
		if t == la {
			return true
		}
	}
	return false
}

// NotifyRecv implements sim.Component.
func (c *Cache) NotifyRecv(now sim.Time, _ *sim.Port) { c.ticker.TickNow(now) }

// NotifyPortFree implements sim.Component.
func (c *Cache) NotifyPortFree(now sim.Time, _ *sim.Port) { c.ticker.TickNow(now) }

// hitRspEvent delivers a hit response after the hit latency.
type hitRspEvent struct {
	sim.EventBase
	rsp sim.Msg
}

// Handle implements sim.Handler.
func (c *Cache) Handle(e sim.Event) error {
	switch evt := e.(type) {
	case *sim.TickEvent:
		c.tick(e.Time())
		return nil
	case hitRspEvent:
		if !c.Top.Send(e.Time(), evt.rsp) {
			return fmt.Errorf("%s: hit response rejected", c.Name())
		}
		return nil
	default:
		return fmt.Errorf("%s: unexpected event %T", c.Name(), e)
	}
}

func (c *Cache) tick(now sim.Time) {
	progress := false
	// Responses from below first: they free MSHRs.
	for i := 0; i < c.cfg.IssueWidth; i++ {
		if !c.processBottom(now) {
			break
		}
		progress = true
	}
	for i := 0; i < c.cfg.IssueWidth; i++ {
		if !c.processTop(now) {
			break
		}
		progress = true
	}
	if progress {
		c.ticker.TickLater(now)
	}
}

func (c *Cache) processTop(now sim.Time) bool {
	msg := c.Top.Peek()
	if msg == nil {
		return false
	}
	switch req := msg.(type) {
	case *mem.ReadReq:
		return c.handleRead(now, req)
	case *mem.WriteReq:
		return c.handleWrite(now, req)
	default:
		panic(fmt.Sprintf("%s: unexpected top message %T", c.Name(), msg))
	}
}

func (c *Cache) handleRead(now sim.Time, req *mem.ReadReq) bool {
	if c.cfg.Cacheable != nil && !c.cfg.Cacheable(req.Addr) {
		// Forward without allocation (e.g. remote address at L1 → RDMA).
		dst := c.Router(req.Addr)
		fwd := mem.NewReadReq(c.Bottom, dst, req.Addr, req.N)
		c.part.AssignMsgID(fwd)
		if !c.Bottom.Send(now, fwd) {
			return false
		}
		c.Top.Retrieve(now)
		c.Bypassed++
		c.passthrough[fwd.ID] = req
		return true
	}

	la := c.lineAddr(req.Addr)
	if c.lookup(la) {
		c.Hits++
		c.Top.Retrieve(now)
		data := c.space.Read(req.Addr, req.N)
		rsp := mem.NewDataReady(c.Top, req.Src, req.ID, req.Addr, data)
		c.part.AssignMsgID(rsp)
		c.part.Schedule(hitRspEvent{
			EventBase: sim.NewEventBase(now+c.cfg.HitLatency, c),
			rsp:       rsp,
		})
		return true
	}

	if entry, ok := c.mshrLine[la]; ok {
		// Coalesce with the outstanding fetch.
		c.Coalesced++
		c.Top.Retrieve(now)
		entry.waiters = append(entry.waiters, req)
		return true
	}

	if len(c.mshrLine) >= c.cfg.MaxMSHR {
		return false // back-pressure
	}
	dst := c.Router(la)
	fetch := mem.NewReadReq(c.Bottom, dst, la, c.cfg.LineSize)
	c.part.AssignMsgID(fetch)
	if !c.Bottom.Send(now, fetch) {
		return false
	}
	c.Misses++
	c.Top.Retrieve(now)
	entry := &mshrEntry{lineAddr: la, waiters: []*mem.ReadReq{req}}
	c.mshr[fetch.ID] = entry
	c.mshrLine[la] = entry
	return true
}

func (c *Cache) handleWrite(now sim.Time, req *mem.WriteReq) bool {
	// Write-through, no-write-allocate: always forward; keep the tag if
	// present (the line stays valid because data lives in the space).
	dst := c.Router(req.Addr)
	fwd := mem.NewWriteReq(c.Bottom, dst, req.Addr, req.Data)
	c.part.AssignMsgID(fwd)
	if !c.Bottom.Send(now, fwd) {
		return false
	}
	c.WritesSeen++
	c.Top.Retrieve(now)
	c.writes[fwd.ID] = pendingWrite{orig: req}
	return true
}

func (c *Cache) processBottom(now sim.Time) bool {
	msg := c.Bottom.Peek()
	if msg == nil {
		return false
	}
	switch rsp := msg.(type) {
	case *mem.DataReady:
		if orig, ok := c.passthrough[rsp.RspTo]; ok {
			up := mem.NewDataReady(c.Top, orig.Src, orig.ID, orig.Addr, rsp.Data)
			c.part.AssignMsgID(up)
			if !c.Top.Send(now, up) {
				return false
			}
			c.Bottom.Retrieve(now)
			delete(c.passthrough, rsp.RspTo)
			return true
		}
		entry, ok := c.mshr[rsp.RspTo]
		if !ok {
			panic(fmt.Sprintf("%s: fill for unknown request %d", c.Name(), rsp.RspTo))
		}
		// Deliver to the first waiter; requeue the rest as hits next tick.
		// All waiters must receive a response before the MSHR retires.
		if len(entry.waiters) > 0 {
			w := entry.waiters[0]
			data := c.space.Read(w.Addr, w.N)
			up := mem.NewDataReady(c.Top, w.Src, w.ID, w.Addr, data)
			c.part.AssignMsgID(up)
			if !c.Top.Send(now, up) {
				return false
			}
			entry.waiters = entry.waiters[1:]
		}
		if len(entry.waiters) > 0 {
			return true // stay on this fill next iteration
		}
		c.install(entry.lineAddr)
		c.Bottom.Retrieve(now)
		delete(c.mshr, rsp.RspTo)
		delete(c.mshrLine, entry.lineAddr)
		return true
	case *mem.WriteACK:
		pw, ok := c.writes[rsp.RspTo]
		if !ok {
			panic(fmt.Sprintf("%s: ack for unknown write %d", c.Name(), rsp.RspTo))
		}
		up := mem.NewWriteACK(c.Top, pw.orig.Src, pw.orig.ID, pw.orig.Addr)
		c.part.AssignMsgID(up)
		if !c.Top.Send(now, up) {
			return false
		}
		c.Bottom.Retrieve(now)
		delete(c.writes, rsp.RspTo)
		return true
	default:
		panic(fmt.Sprintf("%s: unexpected bottom message %T", c.Name(), msg))
	}
}
