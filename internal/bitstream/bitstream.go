// Package bitstream provides MSB-first bit-level writers and readers used by
// the hardware compression codecs to produce bit-accurate encodings: the
// compressed size the paper reports for each pattern (Table II) is exactly
// the number of bits written here.
package bitstream

import "fmt"

// Writer accumulates bits MSB-first into a byte slice.
type Writer struct {
	buf  []byte
	bits int // total bits written
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// WriteBits appends the low n bits of v, most significant bit first.
// n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n int) {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("bitstream: WriteBits n=%d out of range", n))
	}
	if n < 64 {
		v &= (uint64(1) << uint(n)) - 1
	}
	for n > 0 {
		bitPos := w.bits % 8
		if bitPos == 0 {
			w.buf = append(w.buf, 0)
		}
		space := 8 - bitPos
		take := space
		if n < take {
			take = n
		}
		chunk := byte(v >> uint(n-take))
		w.buf[len(w.buf)-1] |= chunk << uint(space-take)
		w.bits += take
		n -= take
	}
}

// WriteBytes appends whole bytes (8 bits each, in order).
func (w *Writer) WriteBytes(p []byte) {
	for _, b := range p {
		w.WriteBits(uint64(b), 8)
	}
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.bits }

// Bytes returns the packed buffer. The final byte is zero-padded on the
// right. The returned slice aliases the writer's storage.
func (w *Writer) Bytes() []byte { return w.buf }

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf []byte
	pos int // bit position
}

// NewReader reads from buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// ReadBits reads n bits (MSB-first) and returns them in the low bits of the
// result. It returns an error if the stream is exhausted.
func (r *Reader) ReadBits(n int) (uint64, error) {
	if n < 0 || n > 64 {
		return 0, fmt.Errorf("bitstream: ReadBits n=%d out of range", n)
	}
	if r.pos+n > len(r.buf)*8 {
		return 0, fmt.Errorf("bitstream: read of %d bits at position %d overruns %d-bit stream",
			n, r.pos, len(r.buf)*8)
	}
	var v uint64
	for n > 0 {
		byteIdx := r.pos / 8
		bitPos := r.pos % 8
		avail := 8 - bitPos
		take := avail
		if n < take {
			take = n
		}
		chunk := (r.buf[byteIdx] >> uint(avail-take)) & byte((uint(1)<<uint(take))-1)
		v = v<<uint(take) | uint64(chunk)
		r.pos += take
		n -= take
	}
	return v, nil
}

// ReadBytes reads n whole bytes.
func (r *Reader) ReadBytes(n int) ([]byte, error) {
	out := make([]byte, n)
	for i := range out {
		v, err := r.ReadBits(8)
		if err != nil {
			return nil, err
		}
		out[i] = byte(v)
	}
	return out, nil
}

// Pos returns the current bit position.
func (r *Reader) Pos() int { return r.pos }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return len(r.buf)*8 - r.pos }

// SignExtend interprets the low n bits of v as a two's-complement signed
// number and returns it widened to int64.
func SignExtend(v uint64, n int) int64 {
	if n <= 0 || n >= 64 {
		return int64(v)
	}
	shift := uint(64 - n)
	return int64(v<<shift) >> shift
}

// FitsSigned reports whether x is representable as an n-bit two's-complement
// integer.
func FitsSigned(x int64, n int) bool {
	if n >= 64 {
		return true
	}
	min := int64(-1) << uint(n-1)
	max := -min - 1
	return x >= min && x <= max
}
