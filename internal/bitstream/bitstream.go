// Package bitstream provides MSB-first bit-level writers and readers used by
// the hardware compression codecs to produce bit-accurate encodings: the
// compressed size the paper reports for each pattern (Table II) is exactly
// the number of bits written here.
//
// Both directions have a word-level fast path: the Writer shifts whole
// fields into a 64-bit accumulator and flushes it eight bytes at a time, and
// the Reader serves most calls from a single unaligned 64-bit load. The
// bit-by-bit formulation the codecs were originally verified against is
// retained in reference_test.go, and differential fuzz tests pin the fast
// paths to it bit for bit.
package bitstream

import (
	"encoding/binary"
	"fmt"
)

// Writer accumulates bits MSB-first. Pending bits live right-aligned in a
// 64-bit accumulator and are flushed to the byte buffer eight bytes at a
// time, so a WriteBits call is a shift and an or in the common case. The
// zero Writer is ready to use, and Reset makes one reusable without
// reallocating its buffer — the codec hot paths hold one Writer per codec
// instance for the lifetime of the codec.
type Writer struct {
	buf []byte
	acc uint64 // pending bits, right-aligned (earlier bits more significant)
	n   int    // number of pending bits in acc, always in [0, 64)
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// Reset clears the writer for reuse, keeping the buffer capacity.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.acc = 0
	w.n = 0
}

// flushAcc appends the full 64-bit accumulator to the buffer. Callers
// guarantee w.n == 64 conceptually (the accumulator holds exactly 8 bytes).
func (w *Writer) flushAcc() {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], w.acc)
	w.buf = append(w.buf, b[:]...)
	w.acc = 0
	w.n = 0
}

// flushWholeBytes moves the pending whole bytes (w.n must be a multiple of
// 8) from the accumulator into the buffer.
func (w *Writer) flushWholeBytes() {
	for w.n > 0 {
		w.n -= 8
		w.buf = append(w.buf, byte(w.acc>>uint(w.n)))
	}
	w.acc = 0
}

// WriteBits appends the low n bits of v, most significant bit first.
// n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n int) {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("bitstream: WriteBits n=%d out of range", n))
	}
	if n < 64 {
		v &= (uint64(1) << uint(n)) - 1
	}
	if w.n+n < 64 {
		w.acc = w.acc<<uint(n) | v
		w.n += n
		return
	}
	// Fill the accumulator to exactly 64 bits, flush, keep the remainder.
	hi := 64 - w.n
	w.acc = w.acc<<uint(hi) | v>>uint(n-hi)
	rem := n - hi // in [0, 63]
	w.n = 64
	w.flushAcc()
	w.acc = v & (uint64(1)<<uint(rem) - 1)
	w.n = rem
}

// WriteBytes appends whole bytes (8 bits each, in order). When the writer is
// byte-aligned the bytes are block-copied instead of looping WriteBits.
func (w *Writer) WriteBytes(p []byte) {
	if w.n%8 == 0 {
		if w.n > 0 {
			w.flushWholeBytes()
		}
		w.buf = append(w.buf, p...)
		return
	}
	for _, b := range p {
		w.WriteBits(uint64(b), 8)
	}
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return len(w.buf)*8 + w.n }

// AppendTo appends the packed bitstream to dst and returns the extended
// slice. The final byte is zero-padded on the right. The writer state is
// unchanged, so writing may continue afterwards.
func (w *Writer) AppendTo(dst []byte) []byte {
	dst = append(dst, w.buf...)
	if w.n > 0 {
		pend := w.acc << uint(64-w.n) // left-align the pending bits
		for i := 0; i < (w.n+7)/8; i++ {
			dst = append(dst, byte(pend>>uint(56-8*i)))
		}
	}
	return dst
}

// Bytes returns the packed buffer. The final byte is zero-padded on the
// right. The returned slice is freshly allocated and does not alias the
// writer's storage, so it stays valid across Reset.
func (w *Writer) Bytes() []byte {
	if w.Len() == 0 {
		return w.buf[:0]
	}
	return w.AppendTo(make([]byte, 0, (w.Len()+7)/8))
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf []byte
	pos int // bit position
}

// NewReader reads from buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Reset makes the reader consume buf from the start, for reuse.
func (r *Reader) Reset(buf []byte) {
	r.buf = buf
	r.pos = 0
}

// ReadBits reads n bits (MSB-first) and returns them in the low bits of the
// result. It returns an error if the stream is exhausted.
func (r *Reader) ReadBits(n int) (uint64, error) {
	if n < 0 || n > 64 {
		return 0, fmt.Errorf("bitstream: ReadBits n=%d out of range", n)
	}
	if r.pos+n > len(r.buf)*8 {
		return 0, fmt.Errorf("bitstream: read of %d bits at position %d overruns %d-bit stream",
			n, r.pos, len(r.buf)*8)
	}
	byteIdx := r.pos >> 3
	bit := r.pos & 7
	// Fast path: the whole field sits inside one 64-bit load.
	if byteIdx+8 <= len(r.buf) && bit+n <= 64 {
		v := binary.BigEndian.Uint64(r.buf[byteIdx:])
		r.pos += n
		return v << uint(bit) >> uint(64-n), nil
	}
	// Tail path: assemble byte by byte (also covers bit+n > 64).
	var v uint64
	pos := r.pos
	for n > 0 {
		byteIdx := pos / 8
		bitPos := pos % 8
		avail := 8 - bitPos
		take := avail
		if n < take {
			take = n
		}
		chunk := (r.buf[byteIdx] >> uint(avail-take)) & byte((uint(1)<<uint(take))-1)
		v = v<<uint(take) | uint64(chunk)
		pos += take
		n -= take
	}
	r.pos = pos
	return v, nil
}

// ReadBytes reads n whole bytes.
func (r *Reader) ReadBytes(n int) ([]byte, error) {
	out := make([]byte, n)
	for i := range out {
		v, err := r.ReadBits(8)
		if err != nil {
			return nil, err
		}
		out[i] = byte(v)
	}
	return out, nil
}

// Pos returns the current bit position.
func (r *Reader) Pos() int { return r.pos }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return len(r.buf)*8 - r.pos }

// SignExtend interprets the low n bits of v as a two's-complement signed
// number and returns it widened to int64.
func SignExtend(v uint64, n int) int64 {
	if n <= 0 || n >= 64 {
		return int64(v)
	}
	shift := uint(64 - n)
	return int64(v<<shift) >> shift
}

// FitsSigned reports whether x is representable as an n-bit two's-complement
// integer.
func FitsSigned(x int64, n int) bool {
	if n >= 64 {
		return true
	}
	min := int64(-1) << uint(n-1)
	max := -min - 1
	return x >= min && x <= max
}
