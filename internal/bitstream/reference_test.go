package bitstream

import (
	"bytes"
	"math/rand"
	"testing"
)

// This file retains the original bit-by-bit Writer/Reader formulation as a
// reference implementation. The production fast paths (accumulator writer,
// 64-bit-load reader) are pinned to it by the differential tests and fuzz
// targets below: any divergence in packed bytes, bit counts, or read values
// is a bug in the fast path, never in the reference.

// refWriter is the pre-optimization Writer: one append/or per partial byte.
type refWriter struct {
	buf  []byte
	bits int
}

func (w *refWriter) WriteBits(v uint64, n int) {
	if n < 64 {
		v &= (uint64(1) << uint(n)) - 1
	}
	for n > 0 {
		bitPos := w.bits % 8
		if bitPos == 0 {
			w.buf = append(w.buf, 0)
		}
		space := 8 - bitPos
		take := space
		if n < take {
			take = n
		}
		chunk := byte(v >> uint(n-take))
		w.buf[len(w.buf)-1] |= chunk << uint(space-take)
		w.bits += take
		n -= take
	}
}

func (w *refWriter) WriteBytes(p []byte) {
	for _, b := range p {
		w.WriteBits(uint64(b), 8)
	}
}

// refReadBits is the pre-optimization Reader loop.
func refReadBits(buf []byte, pos, n int) (uint64, int) {
	var v uint64
	for n > 0 {
		byteIdx := pos / 8
		bitPos := pos % 8
		avail := 8 - bitPos
		take := avail
		if n < take {
			take = n
		}
		chunk := (buf[byteIdx] >> uint(avail-take)) & byte((uint(1)<<uint(take))-1)
		v = v<<uint(take) | uint64(chunk)
		pos += take
		n -= take
	}
	return v, pos
}

// fieldSequence derives a deterministic (width, value) sequence from raw
// fuzz bytes: each input byte yields one field.
func fieldSequence(data []byte) (widths []int, values []uint64) {
	rng := rand.New(rand.NewSource(int64(len(data)) + 7))
	for _, b := range data {
		n := int(b%64) + 1 // width in [1, 64]
		v := rng.Uint64()
		if n < 64 {
			v &= (1 << uint(n)) - 1
		}
		widths = append(widths, n)
		values = append(values, v)
	}
	return widths, values
}

// FuzzWriteBitsDifferential: for any field sequence, the accumulator writer
// produces byte-identical output and bit counts to the naive reference.
func FuzzWriteBitsDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 7, 8, 31, 32, 63, 64, 255})
	f.Add(bytes.Repeat([]byte{3}, 100))
	f.Add([]byte{63, 63, 63, 0, 0, 0, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			return
		}
		widths, values := fieldSequence(data)
		fast := NewWriter()
		ref := &refWriter{}
		for i := range widths {
			fast.WriteBits(values[i], widths[i])
			ref.WriteBits(values[i], widths[i])
			if fast.Len() != ref.bits {
				t.Fatalf("after field %d: Len = %d, reference %d", i, fast.Len(), ref.bits)
			}
		}
		if got := fast.Bytes(); !bytes.Equal(got, ref.buf) {
			t.Fatalf("packed bytes diverge:\n fast %x\n ref  %x", got, ref.buf)
		}
	})
}

// FuzzReadBitsDifferential: for any buffer and read-width schedule, the
// fast reader returns the same values and positions as the reference.
func FuzzReadBitsDifferential(f *testing.F) {
	f.Add([]byte{0xDE, 0xAD, 0xBE, 0xEF}, []byte{3, 16, 1, 4})
	f.Add(bytes.Repeat([]byte{0xA5}, 64), []byte{64, 64, 64})
	f.Add([]byte{0xFF}, []byte{1, 1, 1, 1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, buf, schedule []byte) {
		if len(buf) > 4096 || len(schedule) > 4096 {
			return
		}
		r := NewReader(buf)
		pos := 0
		for i, b := range schedule {
			n := int(b % 65)
			if pos+n > len(buf)*8 {
				if _, err := r.ReadBits(n); err == nil {
					t.Fatalf("read %d: overrun not detected", i)
				}
				return
			}
			got, err := r.ReadBits(n)
			if err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
			want, newPos := refReadBits(buf, pos, n)
			if got != want || r.Pos() != newPos {
				t.Fatalf("read %d (n=%d at %d): got %#x pos %d, reference %#x pos %d",
					i, n, pos, got, r.Pos(), want, newPos)
			}
			pos = newPos
		}
	})
}

// TestWriteBytesMatchesReference covers the aligned-copy fast path against
// the byte-by-byte reference at every pre-alignment.
func TestWriteBytesMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	payload := make([]byte, 64)
	rng.Read(payload)
	for lead := 0; lead <= 16; lead++ {
		fast := NewWriter()
		ref := &refWriter{}
		fast.WriteBits(0x5A5A, lead)
		ref.WriteBits(0x5A5A, lead)
		fast.WriteBytes(payload)
		ref.WriteBytes(payload)
		fast.WriteBits(1, 3)
		ref.WriteBits(1, 3)
		if fast.Len() != ref.bits {
			t.Fatalf("lead %d: Len = %d, reference %d", lead, fast.Len(), ref.bits)
		}
		if got := fast.Bytes(); !bytes.Equal(got, ref.buf) {
			t.Fatalf("lead %d: bytes diverge:\n fast %x\n ref  %x", lead, got, ref.buf)
		}
	}
}

// TestWriterResetReuse: a Reset writer produces identical output to a fresh
// one, with no stale state bleeding through.
func TestWriterResetReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	w := NewWriter()
	for trial := 0; trial < 50; trial++ {
		w.Reset()
		fresh := NewWriter()
		for i := 0; i < 20; i++ {
			n := rng.Intn(64) + 1
			v := rng.Uint64()
			w.WriteBits(v, n)
			fresh.WriteBits(v, n)
		}
		if w.Len() != fresh.Len() || !bytes.Equal(w.Bytes(), fresh.Bytes()) {
			t.Fatalf("trial %d: reused writer diverged from fresh writer", trial)
		}
	}
}

// TestAppendToDoesNotDisturbState: AppendTo mid-stream must match the final
// prefix and leave subsequent writes intact.
func TestAppendToDoesNotDisturbState(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b10110, 5)
	mid := w.AppendTo(nil)
	if len(mid) != 1 || mid[0] != 0b10110000 {
		t.Fatalf("mid snapshot = %08b", mid)
	}
	w.WriteBits(0xFFF, 12)
	ref := &refWriter{}
	ref.WriteBits(0b10110, 5)
	ref.WriteBits(0xFFF, 12)
	if !bytes.Equal(w.Bytes(), ref.buf) {
		t.Fatalf("writes after AppendTo diverged: %x vs %x", w.Bytes(), ref.buf)
	}
}
