package bitstream

import (
	"fmt"
	"math/rand"
	"testing"
)

// Benchmarks for the two hot primitives. Run with -benchmem: every case in
// this file must report 0 allocs/op in steady state (the Writer is Reset,
// never reallocated).

var benchWidths = []int{1, 7, 8, 32, 64}

func BenchmarkWriteBits(b *testing.B) {
	for _, n := range benchWidths {
		b.Run(fmt.Sprintf("width%d", n), func(b *testing.B) {
			w := NewWriter()
			// Prime the buffer so steady state never grows it.
			for i := 0; i < 512; i++ {
				w.WriteBits(0xA5A5A5A5A5A5A5A5, n)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Reset()
				for j := 0; j < 512; j++ {
					w.WriteBits(0xA5A5A5A5A5A5A5A5, n)
				}
			}
			b.SetBytes(int64(512*n) / 8)
		})
	}
}

func BenchmarkReadBits(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	buf := make([]byte, 4096+8)
	rng.Read(buf)
	for _, n := range benchWidths {
		b.Run(fmt.Sprintf("width%d", n), func(b *testing.B) {
			r := NewReader(buf)
			reads := (4096 * 8) / n
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Reset(buf)
				for j := 0; j < reads; j++ {
					if _, err := r.ReadBits(n); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.SetBytes(int64(reads*n) / 8)
		})
	}
}

func BenchmarkWriteBytesAligned(b *testing.B) {
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i)
	}
	w := NewWriter()
	w.WriteBytes(payload)
	b.ReportAllocs()
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		w.WriteBytes(payload)
	}
}

func BenchmarkWriteBytesUnaligned(b *testing.B) {
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i)
	}
	w := NewWriter()
	w.WriteBits(1, 3)
	w.WriteBytes(payload)
	b.ReportAllocs()
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		w.WriteBits(1, 3)
		w.WriteBytes(payload)
	}
}
