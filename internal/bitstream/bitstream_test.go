package bitstream

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTripSimple(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b101, 3)
	w.WriteBits(0xABCD, 16)
	w.WriteBits(1, 1)
	w.WriteBits(0, 4)
	if w.Len() != 24 {
		t.Fatalf("Len = %d, want 24", w.Len())
	}
	r := NewReader(w.Bytes())
	checks := []struct {
		n    int
		want uint64
	}{{3, 0b101}, {16, 0xABCD}, {1, 1}, {4, 0}}
	for i, c := range checks {
		got, err := r.ReadBits(c.n)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got != c.want {
			t.Errorf("read %d: got %#x, want %#x", i, got, c.want)
		}
	}
}

func TestWriterMSBFirstLayout(t *testing.T) {
	w := NewWriter()
	w.WriteBits(1, 1)    // 1.......
	w.WriteBits(0, 2)    // 100.....
	w.WriteBits(0b11, 2) // 10011...
	got := w.Bytes()
	if len(got) != 1 || got[0] != 0b10011000 {
		t.Fatalf("layout = %08b, want 10011000", got[0])
	}
}

func TestWriteBytesReadBytes(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b1, 1) // force unaligned
	payload := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	w.WriteBytes(payload)
	r := NewReader(w.Bytes())
	if _, err := r.ReadBits(1); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadBytes(4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("ReadBytes = %x, want %x", got, payload)
	}
}

func TestReaderOverrunErrors(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBits(1); err == nil {
		t.Error("reading past end did not error")
	}
}

func TestReadBitsRangeErrors(t *testing.T) {
	r := NewReader(make([]byte, 16))
	if _, err := r.ReadBits(-1); err == nil {
		t.Error("ReadBits(-1) did not error")
	}
	if _, err := r.ReadBits(65); err == nil {
		t.Error("ReadBits(65) did not error")
	}
}

// Property: any sequence of (value, width) writes reads back identically.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count%64) + 1
		type field struct {
			v uint64
			n int
		}
		fields := make([]field, n)
		w := NewWriter()
		for i := range fields {
			width := rng.Intn(64) + 1
			v := rng.Uint64()
			if width < 64 {
				v &= (1 << uint(width)) - 1
			}
			fields[i] = field{v, width}
			w.WriteBits(v, width)
		}
		r := NewReader(w.Bytes())
		for _, f := range fields {
			got, err := r.ReadBits(f.n)
			if err != nil || got != f.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSignExtend(t *testing.T) {
	cases := []struct {
		v    uint64
		n    int
		want int64
	}{
		{0xF, 4, -1},
		{0x7, 4, 7},
		{0x8, 4, -8},
		{0xFF, 8, -1},
		{0x7F, 8, 127},
		{0x80, 8, -128},
		{0xFFFF, 16, -1},
		{0, 16, 0},
		{0xFFFFFFFF, 32, -1},
	}
	for _, c := range cases {
		if got := SignExtend(c.v, c.n); got != c.want {
			t.Errorf("SignExtend(%#x, %d) = %d, want %d", c.v, c.n, got, c.want)
		}
	}
}

func TestFitsSigned(t *testing.T) {
	cases := []struct {
		x    int64
		n    int
		want bool
	}{
		{7, 4, true},
		{8, 4, false},
		{-8, 4, true},
		{-9, 4, false},
		{127, 8, true},
		{128, 8, false},
		{-128, 8, true},
		{-129, 8, false},
		{0, 1, true},
		{1, 1, false},
		{-1, 1, true},
		{1 << 40, 64, true},
	}
	for _, c := range cases {
		if got := FitsSigned(c.x, c.n); got != c.want {
			t.Errorf("FitsSigned(%d, %d) = %v, want %v", c.x, c.n, got, c.want)
		}
	}
}

// Property: SignExtend is the inverse of truncation for values that fit.
func TestSignExtendInverseProperty(t *testing.T) {
	f := func(x int32, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		if !FitsSigned(int64(x), n) {
			return true // vacuous
		}
		truncated := uint64(x) & ((1 << uint(n)) - 1)
		if n == 64 {
			truncated = uint64(x)
		}
		return SignExtend(truncated, n) == int64(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestReaderPosAndRemaining(t *testing.T) {
	r := NewReader([]byte{0xFF, 0x00})
	if r.Pos() != 0 || r.Remaining() != 16 {
		t.Errorf("fresh reader pos/remaining = %d/%d", r.Pos(), r.Remaining())
	}
	if _, err := r.ReadBits(5); err != nil {
		t.Fatal(err)
	}
	if r.Pos() != 5 || r.Remaining() != 11 {
		t.Errorf("after 5 bits: pos/remaining = %d/%d", r.Pos(), r.Remaining())
	}
}
