package comp

import (
	"encoding/binary"
	"fmt"

	"mgpucompress/internal/bitstream"
)

// bdi implements Base-Delta-Immediate compression (Pekhimenko et al.) per
// the paper's Table II. BDI works at line granularity: the line is viewed as
// equal-size values (8, 4, or 2 bytes) and each value is stored as a small
// signed delta against either an explicit base (the first value that is not
// representable as an immediate) or the implicit zero base. A per-value mask
// bit selects the base. The encodings and their exact sizes are:
//
//	0000 zero block                      ->   0 + 4 bits
//	0001 repeated 64-bit words           ->  64 + 4 bits
//	0010 base 8 B, delta 1 B (pattern 3) -> 128 + 12 bits
//	0011 base 8 B, delta 2 B (pattern 4) -> 192 + 12 bits
//	0100 base 8 B, delta 4 B (pattern 5) -> 320 + 12 bits
//	0101 base 4 B, delta 1 B (pattern 6) -> 160 + 20 bits
//	0110 base 4 B, delta 2 B (pattern 7) -> 288 + 20 bits
//	0111 base 2 B, delta 1 B (pattern 8) -> 272 + 36 bits
//
// The metadata is the 4-bit prefix plus one mask bit per value. The encoder
// evaluates every applicable configuration and keeps the smallest.
type bdi struct {
	w    bitstream.Writer // encode scratch, reused across lines
	plan bdiPlan          // winning-config scratch, reused across lines
}

// NewBDI returns the BDI codec.
func NewBDI() Compressor { return &bdi{} }

func (*bdi) Algorithm() Algorithm { return BDI }

func (*bdi) Cost() Cost { return bdiCost }

// bdiConfig describes one base-delta configuration.
type bdiConfig struct {
	pattern   int // Table II pattern number
	prefix    uint64
	baseBytes int
	deltaByte int
}

var bdiConfigs = []bdiConfig{
	{pattern: 3, prefix: 0b0010, baseBytes: 8, deltaByte: 1},
	{pattern: 4, prefix: 0b0011, baseBytes: 8, deltaByte: 2},
	{pattern: 5, prefix: 0b0100, baseBytes: 8, deltaByte: 4},
	{pattern: 6, prefix: 0b0101, baseBytes: 4, deltaByte: 1},
	{pattern: 7, prefix: 0b0110, baseBytes: 4, deltaByte: 2},
	{pattern: 8, prefix: 0b0111, baseBytes: 2, deltaByte: 1},
}

func (c bdiConfig) totalBits() int {
	nVals := LineSize / c.baseBytes
	return 4 + c.baseBytes*8 + nVals + nVals*c.deltaByte*8
}

const (
	bdiZeroBlock = 0b0000
	bdiRepeated  = 0b0001
)

// bdiMaxVals is the largest value count of any configuration (2-byte base).
const bdiMaxVals = LineSize / 2

// bdiPlan is the result of trying one configuration on a line. The arrays
// are sized for the widest configuration so a plan needs no allocation;
// only the first nVals entries are meaningful.
type bdiPlan struct {
	cfg    bdiConfig
	base   uint64
	nVals  int
	mask   [bdiMaxVals]bool  // per value: true = explicit base, false = zero base
	deltas [bdiMaxVals]int64 // signed deltas
}

// tryBDIConfig attempts to encode the line with cfg, filling plan. The base
// is the first value that is not representable as an immediate (delta from
// zero); values before it use the zero base.
func tryBDIConfig(line []byte, cfg bdiConfig, plan *bdiPlan) bool {
	nVals := LineSize / cfg.baseBytes
	deltaBits := cfg.deltaByte * 8
	*plan = bdiPlan{cfg: cfg, nVals: nVals}
	valueBits := cfg.baseBytes * 8
	haveBase := false
	for i := 0; i < nVals; i++ {
		v := readUint(line, i*cfg.baseBytes, cfg.baseBytes)
		// All delta arithmetic happens at the value width, wrapping, as a
		// hardware subtractor would.
		if d := bitstream.SignExtend(v, valueBits); bitstream.FitsSigned(d, deltaBits) {
			plan.deltas[i] = d // immediate: delta from the zero base
			continue
		}
		if !haveBase {
			haveBase = true
			plan.base = v
			plan.mask[i] = true
			plan.deltas[i] = 0
			continue
		}
		d := bitstream.SignExtend(v-plan.base, valueBits)
		if !bitstream.FitsSigned(d, deltaBits) {
			return false
		}
		plan.mask[i] = true
		plan.deltas[i] = d
	}
	return true
}

// bdiFeasible is the size-only twin of tryBDIConfig: the same scan without
// recording the plan, so CompressedBits and the encoder's config selection
// agree by construction. The scan is specialized per value width so the
// selection loop — which runs on every sampled line for every candidate
// codec — stays free of the generic readUint dispatch.
func bdiFeasible(line []byte, cfg bdiConfig) bool {
	deltaBits := cfg.deltaByte * 8
	switch cfg.baseBytes {
	case 8:
		return bdiFeasible64(line, deltaBits)
	case 4:
		return bdiFeasible32(line, deltaBits)
	default:
		return bdiFeasible16(line, deltaBits)
	}
}

func bdiFeasible64(line []byte, deltaBits int) bool {
	haveBase := false
	var base uint64
	for i := 0; i < LineSize; i += 8 {
		v := binary.LittleEndian.Uint64(line[i:])
		if bitstream.FitsSigned(int64(v), deltaBits) {
			continue
		}
		if !haveBase {
			haveBase, base = true, v
			continue
		}
		if !bitstream.FitsSigned(int64(v-base), deltaBits) {
			return false
		}
	}
	return true
}

func bdiFeasible32(line []byte, deltaBits int) bool {
	haveBase := false
	var base uint32
	for i := 0; i < LineSize; i += 4 {
		v := binary.LittleEndian.Uint32(line[i:])
		if bitstream.FitsSigned(int64(int32(v)), deltaBits) {
			continue
		}
		if !haveBase {
			haveBase, base = true, v
			continue
		}
		if !bitstream.FitsSigned(int64(int32(v-base)), deltaBits) {
			return false
		}
	}
	return true
}

func bdiFeasible16(line []byte, deltaBits int) bool {
	haveBase := false
	var base uint16
	for i := 0; i < LineSize; i += 2 {
		v := binary.LittleEndian.Uint16(line[i:])
		if bitstream.FitsSigned(int64(int16(v)), deltaBits) {
			continue
		}
		if !haveBase {
			haveBase, base = true, v
			continue
		}
		if !bitstream.FitsSigned(int64(int16(v-base)), deltaBits) {
			return false
		}
	}
	return true
}

func readUint(line []byte, off, size int) uint64 {
	switch size {
	case 2:
		return uint64(binary.LittleEndian.Uint16(line[off:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(line[off:]))
	case 8:
		return binary.LittleEndian.Uint64(line[off:])
	default:
		panic(fmt.Sprintf("comp: bad BDI value size %d", size))
	}
}

func (b *bdi) Compress(line []byte) Encoded {
	return b.CompressInto(make([]byte, 0, LineSize), line)
}

func (b *bdi) CompressInto(dst, line []byte) Encoded {
	checkLine(line)
	w := &b.w
	w.Reset()
	if isZeroLine(line) {
		w.WriteBits(bdiZeroBlock, 4)
		e := Encoded{Alg: BDI, Bits: w.Len(), Data: w.AppendTo(dst)}
		e.Patterns[1]++
		return e
	}
	w64 := words64(line)
	repeated := true
	for _, v := range w64[1:] {
		if v != w64[0] {
			repeated = false
			break
		}
	}
	if repeated {
		w.WriteBits(bdiRepeated, 4)
		w.WriteBits(w64[0], 64)
		e := Encoded{Alg: BDI, Bits: w.Len(), Data: w.AppendTo(dst)}
		e.Patterns[2]++
		return e
	}

	bestBits := LineBits
	var bestCfg bdiConfig
	found := false
	for _, cfg := range bdiConfigs {
		if cfg.totalBits() >= bestBits {
			continue // cannot improve; configs checked in pattern order
		}
		if bdiFeasible(line, cfg) {
			bestCfg = cfg
			bestBits = cfg.totalBits()
			found = true
		}
	}
	if !found {
		return rawEncodedInto(BDI, dst, line, 9)
	}

	best := &b.plan
	if !tryBDIConfig(line, bestCfg, best) {
		panic(fmt.Sprintf("comp: BDI config %04b feasible but plan failed", bestCfg.prefix))
	}
	w.WriteBits(best.cfg.prefix, 4)
	w.WriteBits(best.base, best.cfg.baseBytes*8)
	for _, m := range best.mask[:best.nVals] {
		if m {
			w.WriteBits(1, 1)
		} else {
			w.WriteBits(0, 1)
		}
	}
	deltaBits := best.cfg.deltaByte * 8
	for _, d := range best.deltas[:best.nVals] {
		w.WriteBits(uint64(d)&((1<<uint(deltaBits))-1), deltaBits)
	}
	if w.Len() != best.cfg.totalBits() {
		panic(fmt.Sprintf("comp: BDI size mismatch: wrote %d, expected %d", w.Len(), best.cfg.totalBits()))
	}
	e := Encoded{Alg: BDI, Bits: w.Len(), Data: w.AppendTo(dst)}
	e.Patterns[best.cfg.pattern]++
	return e
}

func (b *bdi) CompressedBits(line []byte) int {
	checkLine(line)
	if isZeroLine(line) {
		return 4
	}
	w64 := words64(line)
	repeated := true
	for _, v := range w64[1:] {
		if v != w64[0] {
			repeated = false
			break
		}
	}
	if repeated {
		return 68
	}
	best := LineBits
	for _, cfg := range bdiConfigs {
		if cfg.totalBits() >= best {
			continue
		}
		if bdiFeasible(line, cfg) {
			best = cfg.totalBits()
		}
	}
	return best
}

func (b *bdi) Decompress(enc Encoded) ([]byte, error) {
	if enc.Alg != BDI {
		return nil, fmt.Errorf("comp: BDI decompressor fed %v data", enc.Alg)
	}
	if enc.Uncompressed {
		if len(enc.Data) != LineSize {
			return nil, fmt.Errorf("comp: raw BDI line has %d bytes", len(enc.Data))
		}
		return append([]byte(nil), enc.Data...), nil
	}
	r := bitstream.NewReader(enc.Data)
	prefix, err := r.ReadBits(4)
	if err != nil {
		return nil, err
	}
	line := make([]byte, LineSize)
	switch prefix {
	case bdiZeroBlock:
		if enc.Bits != 4 {
			return nil, fmt.Errorf("comp: BDI zero block with %d bits", enc.Bits)
		}
		return line, nil
	case bdiRepeated:
		if enc.Bits != 68 {
			return nil, fmt.Errorf("comp: BDI repeated block with %d bits", enc.Bits)
		}
		v, err := r.ReadBits(64)
		if err != nil {
			return nil, err
		}
		for i := 0; i < 8; i++ {
			binary.LittleEndian.PutUint64(line[i*8:], v)
		}
		return line, nil
	}
	var cfg bdiConfig
	ok := false
	for _, c := range bdiConfigs {
		if c.prefix == prefix {
			cfg, ok = c, true
			break
		}
	}
	if !ok {
		return nil, fmt.Errorf("comp: invalid BDI prefix %04b", prefix)
	}
	base, err := r.ReadBits(cfg.baseBytes * 8)
	if err != nil {
		return nil, err
	}
	nVals := LineSize / cfg.baseBytes
	var maskArr [bdiMaxVals]bool
	mask := maskArr[:nVals]
	for i := range mask {
		bit, err := r.ReadBits(1)
		if err != nil {
			return nil, err
		}
		mask[i] = bit == 1
	}
	deltaBits := cfg.deltaByte * 8
	for i := 0; i < nVals; i++ {
		raw, err := r.ReadBits(deltaBits)
		if err != nil {
			return nil, err
		}
		d := bitstream.SignExtend(raw, deltaBits)
		var v uint64
		if mask[i] {
			v = base + uint64(d)
		} else {
			v = uint64(d)
		}
		writeUint(line, i*cfg.baseBytes, cfg.baseBytes, v)
	}
	if r.Pos() != enc.Bits {
		return nil, fmt.Errorf("comp: BDI consumed %d bits, encoding says %d", r.Pos(), enc.Bits)
	}
	return line, nil
}

func writeUint(line []byte, off, size int, v uint64) {
	switch size {
	case 2:
		binary.LittleEndian.PutUint16(line[off:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(line[off:], uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(line[off:], v)
	}
}
