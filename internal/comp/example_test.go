package comp_test

import (
	"encoding/binary"
	"fmt"

	"mgpucompress/internal/comp"
)

// Compress a low-dynamic-range cache line with BDI and get it back.
func ExampleCompressor() {
	line := make([]byte, comp.LineSize)
	base := uint64(1 << 40)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(line[i*8:], base+uint64(i*3))
	}

	bdi := comp.NewBDI()
	enc := bdi.Compress(line)
	fmt.Printf("compressed %d bits -> %d bits (ratio %.2f)\n",
		comp.LineBits, enc.Bits, enc.Ratio())

	back, err := bdi.Decompress(enc)
	if err != nil {
		panic(err)
	}
	fmt.Printf("round trip ok: %v\n", binary.LittleEndian.Uint64(back) == base)
	// Output:
	// compressed 512 bits -> 140 bits (ratio 3.66)
	// round trip ok: true
}

// Every codec ships a zero line in a handful of bits.
func ExampleAllCompressors() {
	zero := make([]byte, comp.LineSize)
	for _, c := range comp.AllCompressors() {
		fmt.Printf("%-9s %d bits\n", c.Algorithm(), c.Compress(zero).Bits)
	}
	// Output:
	// FPC       3 bits
	// BDI       4 bits
	// C-Pack+Z  2 bits
}

// Table III costs drive the penalty function.
func ExampleCostOf() {
	c := comp.CostOf(comp.BDI)
	fmt.Printf("BDI: %d-cycle compress, %d-cycle decompress, %.1f pJ per block\n",
		c.CompressionCycles, c.DecompressionCycles, c.BlockEnergyPJ())
	// Output:
	// BDI: 2-cycle compress, 1-cycle decompress, 1.4 pJ per block
}
