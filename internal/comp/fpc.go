package comp

import (
	"fmt"

	"mgpucompress/internal/bitstream"
)

// fpc implements Frequent Pattern Compression (Alameldeen & Wood) as
// specified by the paper's Table II. FPC works word-by-word on 32-bit words
// with a 3-bit prefix per word:
//
//	000  zero block (whole 512-bit line; emitted alone)
//	001  zero word
//	010  word with repeated bytes          -> 8 data bits
//	011  4-bit sign-extended               -> 4 data bits
//	100  one byte sign-extended            -> 8 data bits
//	101  halfword sign-extended            -> 16 data bits
//	110  halfword padded with zero halfword-> 16 data bits (high half kept)
//	111  two halfwords, each a byte
//	     sign-extended                     -> 16 data bits
//
// The paper's encoding assigns all eight prefixes to compressed patterns and
// lists "uncompressed" (pattern 9) only at line granularity, so a line in
// which any word matches no pattern ships uncompressed. This matches the
// ratios the paper reports (e.g. FPC ≈ 1.00 on FIR while C-Pack+Z still
// compresses it).
type fpc struct {
	w bitstream.Writer // encode scratch, reused across lines
}

// NewFPC returns the FPC codec.
func NewFPC() Compressor { return &fpc{} }

func (*fpc) Algorithm() Algorithm { return FPC }

func (*fpc) Cost() Cost { return fpcCost }

// FPC prefixes, by Table II pattern number (index 1..8).
const (
	fpcZeroBlock       = 0b000 // pattern 1
	fpcZeroWord        = 0b001 // pattern 2
	fpcRepeatedBytes   = 0b010 // pattern 3
	fpcSignExt4        = 0b011 // pattern 4
	fpcSignExt8        = 0b100 // pattern 5
	fpcSignExt16       = 0b101 // pattern 6
	fpcHalfZeroPadded  = 0b110 // pattern 7
	fpcTwoHalfSignExt8 = 0b111 // pattern 8
)

// classifyFPCWord returns the Table II pattern number (2..8) for a single
// 32-bit word, or 9 if no pattern matches. Classification order follows the
// table, which also minimizes encoded size for overlapping patterns.
func classifyFPCWord(w uint32) int {
	switch {
	case w == 0:
		return 2
	case isRepeatedBytes(w):
		return 3
	case bitstream.FitsSigned(int64(int32(w)), 4):
		return 4
	case bitstream.FitsSigned(int64(int32(w)), 8):
		return 5
	case bitstream.FitsSigned(int64(int32(w)), 16):
		return 6
	case w&0xFFFF == 0: // high halfword significant, low halfword zero
		return 7
	case fitsTwoHalfSignExt(w):
		return 8
	default:
		return 9
	}
}

func isRepeatedBytes(w uint32) bool {
	b := byte(w)
	return w == uint32(b)|uint32(b)<<8|uint32(b)<<16|uint32(b)<<24
}

func fitsTwoHalfSignExt(w uint32) bool {
	lo := int64(int16(w))
	hi := int64(int16(w >> 16))
	return bitstream.FitsSigned(lo, 8) && bitstream.FitsSigned(hi, 8)
}

// fpcDataBits[p] is the data-bit count following the 3-bit prefix for word
// pattern p (Table II).
var fpcDataBits = [MaxPattern + 1]int{2: 0, 3: 8, 4: 4, 5: 8, 6: 16, 7: 16, 8: 16}

func (f *fpc) Compress(line []byte) Encoded {
	return f.CompressInto(make([]byte, 0, LineSize), line)
}

func (f *fpc) CompressInto(dst, line []byte) Encoded {
	checkLine(line)
	w := &f.w
	w.Reset()
	if isZeroLine(line) {
		w.WriteBits(fpcZeroBlock, 3)
		e := Encoded{Alg: FPC, Bits: w.Len(), Data: w.AppendTo(dst)}
		e.Patterns[1]++
		return e
	}

	ws := words32(line)
	var patterns [16]int
	for i, word := range ws {
		p := classifyFPCWord(word)
		if p == 9 {
			// One incompressible word forces the raw line (see doc above).
			// Table VI counts each word of an uncompressed line as a
			// pattern-9 detection.
			e := rawEncodedInto(FPC, dst, line, 9)
			e.Patterns[9] = 16
			return e
		}
		patterns[i] = p
	}

	var hist PatternHistogram
	for i, word := range ws {
		p := patterns[i]
		hist[p]++
		switch p {
		case 2:
			w.WriteBits(fpcZeroWord, 3)
		case 3:
			w.WriteBits(fpcRepeatedBytes, 3)
			w.WriteBits(uint64(word&0xFF), 8)
		case 4:
			w.WriteBits(fpcSignExt4, 3)
			w.WriteBits(uint64(word&0xF), 4)
		case 5:
			w.WriteBits(fpcSignExt8, 3)
			w.WriteBits(uint64(word&0xFF), 8)
		case 6:
			w.WriteBits(fpcSignExt16, 3)
			w.WriteBits(uint64(word&0xFFFF), 16)
		case 7:
			w.WriteBits(fpcHalfZeroPadded, 3)
			w.WriteBits(uint64(word>>16), 16)
		case 8:
			w.WriteBits(fpcTwoHalfSignExt8, 3)
			w.WriteBits(uint64(word>>16)&0xFF, 8)
			w.WriteBits(uint64(word)&0xFF, 8)
		}
	}
	if w.Len() >= LineBits {
		e := rawEncodedInto(FPC, dst, line, 9)
		e.Patterns[9] = 16
		return e
	}
	return Encoded{Alg: FPC, Bits: w.Len(), Data: w.AppendTo(dst), Patterns: hist}
}

func (f *fpc) CompressedBits(line []byte) int {
	checkLine(line)
	if isZeroLine(line) {
		return 3
	}
	ws := words32(line)
	bits := 0
	for _, word := range ws {
		p := classifyFPCWord(word)
		if p == 9 {
			return LineBits
		}
		bits += 3 + fpcDataBits[p]
	}
	if bits >= LineBits {
		return LineBits
	}
	return bits
}

func (f *fpc) Decompress(enc Encoded) ([]byte, error) {
	if enc.Alg != FPC {
		return nil, fmt.Errorf("comp: FPC decompressor fed %v data", enc.Alg)
	}
	if enc.Uncompressed {
		if len(enc.Data) != LineSize {
			return nil, fmt.Errorf("comp: raw FPC line has %d bytes", len(enc.Data))
		}
		return append([]byte(nil), enc.Data...), nil
	}
	r := bitstream.NewReader(enc.Data)
	first, err := r.ReadBits(3)
	if err != nil {
		return nil, err
	}
	line := make([]byte, LineSize)
	if first == fpcZeroBlock {
		if enc.Bits != 3 {
			return nil, fmt.Errorf("comp: FPC zero block with %d bits", enc.Bits)
		}
		return line, nil
	}
	word := 0
	prefix := first
	for {
		var v uint32
		switch prefix {
		case fpcZeroWord:
			v = 0
		case fpcRepeatedBytes:
			b, err := r.ReadBits(8)
			if err != nil {
				return nil, err
			}
			v = uint32(b) | uint32(b)<<8 | uint32(b)<<16 | uint32(b)<<24
		case fpcSignExt4:
			b, err := r.ReadBits(4)
			if err != nil {
				return nil, err
			}
			v = uint32(int32(bitstream.SignExtend(b, 4)))
		case fpcSignExt8:
			b, err := r.ReadBits(8)
			if err != nil {
				return nil, err
			}
			v = uint32(int32(bitstream.SignExtend(b, 8)))
		case fpcSignExt16:
			b, err := r.ReadBits(16)
			if err != nil {
				return nil, err
			}
			v = uint32(int32(bitstream.SignExtend(b, 16)))
		case fpcHalfZeroPadded:
			b, err := r.ReadBits(16)
			if err != nil {
				return nil, err
			}
			v = uint32(b) << 16
		case fpcTwoHalfSignExt8:
			hi, err := r.ReadBits(8)
			if err != nil {
				return nil, err
			}
			lo, err := r.ReadBits(8)
			if err != nil {
				return nil, err
			}
			hiV := uint32(uint16(bitstream.SignExtend(hi, 8)))
			loV := uint32(uint16(bitstream.SignExtend(lo, 8)))
			v = hiV<<16 | loV
		case fpcZeroBlock:
			return nil, fmt.Errorf("comp: FPC zero-block prefix inside line at word %d", word)
		default:
			return nil, fmt.Errorf("comp: invalid FPC prefix %03b", prefix)
		}
		putWord32(line, word, v)
		word++
		if word == 16 {
			break
		}
		prefix, err = r.ReadBits(3)
		if err != nil {
			return nil, err
		}
	}
	if r.Pos() != enc.Bits {
		return nil, fmt.Errorf("comp: FPC consumed %d bits, encoding says %d", r.Pos(), enc.Bits)
	}
	return line, nil
}

func putWord32(line []byte, i int, v uint32) {
	line[i*4+0] = byte(v)
	line[i*4+1] = byte(v >> 8)
	line[i*4+2] = byte(v >> 16)
	line[i*4+3] = byte(v >> 24)
}
