package comp

// Cost captures the hardware cost of a codec at 7 nm / 1 GHz, reproducing
// Table III of the paper. Energies are derived as power × latency (at 1 GHz
// a cycle is 1 ns, so mW × cycles = pJ), which reconstructs the paper's
// combined per-block energy column to within rounding.
type Cost struct {
	CompressionCycles   int
	DecompressionCycles int
	AreaUM2             float64 // total compressor+decompressor area, µm²
	CompressorMW        float64
	DecompressorMW      float64
}

// CompressionEnergyPJ is the energy to compress one 512-bit block, in pJ.
func (c Cost) CompressionEnergyPJ() float64 {
	return c.CompressorMW * float64(c.CompressionCycles)
}

// DecompressionEnergyPJ is the energy to decompress one 512-bit block.
func (c Cost) DecompressionEnergyPJ() float64 {
	return c.DecompressorMW * float64(c.DecompressionCycles)
}

// BlockEnergyPJ is the combined compression+decompression energy per block
// (the last column of Table III).
func (c Cost) BlockEnergyPJ() float64 {
	return c.CompressionEnergyPJ() + c.DecompressionEnergyPJ()
}

// Table III of the paper.
var (
	fpcCost = Cost{
		CompressionCycles:   3,
		DecompressionCycles: 5,
		AreaUM2:             4428,
		CompressorMW:        4.6, // Das et al. report combined power; split equally
		DecompressorMW:      4.6,
	}
	bdiCost = Cost{
		CompressionCycles:   2,
		DecompressionCycles: 1,
		AreaUM2:             162,
		CompressorMW:        0.6,
		DecompressorMW:      0.2,
	}
	cpackCost = Cost{
		CompressionCycles:   16,
		DecompressionCycles: 9,
		AreaUM2:             766,
		CompressorMW:        1.8,
		DecompressorMW:      1.3,
	}
)

// CostOf returns the Table III cost for alg. None has zero cost.
func CostOf(alg Algorithm) Cost {
	switch alg {
	case FPC:
		return fpcCost
	case BDI:
		return bdiCost
	case CPackZ:
		return cpackCost
	case BPC:
		return bpcCost
	default:
		return Cost{}
	}
}

// DataPattern names the common data patterns of Sec. III-A.
type DataPattern int

// The five pattern classes discussed in Sec. III-A.
const (
	ZeroWordBlock DataPattern = iota
	RepeatedWord
	NarrowWord
	LowDynamicRange
	SpatialSimilarity
	numDataPatterns
)

// String returns the paper's name for the data pattern.
func (p DataPattern) String() string {
	switch p {
	case ZeroWordBlock:
		return "Zero Word/Block"
	case RepeatedWord:
		return "Repeated Word"
	case NarrowWord:
		return "Narrow Word"
	case LowDynamicRange:
		return "Low Dynamic Range"
	case SpatialSimilarity:
		return "Spatial Similarity"
	default:
		return "Unknown"
	}
}

// Support describes how well a codec exploits a data pattern (Table I).
type Support int

// Support levels used in Table I.
const (
	No Support = iota
	Partial
	Yes
)

// String renders the Table I cell text.
func (s Support) String() string {
	switch s {
	case Yes:
		return "Yes"
	case Partial:
		return "Partial"
	default:
		return "No"
	}
}

// SupportedPatterns reproduces Table I: which data patterns each algorithm
// exploits.
func SupportedPatterns(alg Algorithm) map[DataPattern]Support {
	switch alg {
	case FPC:
		return map[DataPattern]Support{
			ZeroWordBlock:     Yes,
			RepeatedWord:      Yes,
			NarrowWord:        Yes,
			LowDynamicRange:   No,
			SpatialSimilarity: No,
		}
	case BDI:
		return map[DataPattern]Support{
			ZeroWordBlock:     Yes,
			RepeatedWord:      Yes,
			NarrowWord:        Partial,
			LowDynamicRange:   Yes,
			SpatialSimilarity: No,
		}
	case CPackZ:
		return map[DataPattern]Support{
			ZeroWordBlock:     Yes,
			RepeatedWord:      Yes,
			NarrowWord:        Partial,
			LowDynamicRange:   No,
			SpatialSimilarity: Yes,
		}
	default:
		return map[DataPattern]Support{}
	}
}

// AllDataPatterns lists the Sec. III-A pattern classes in table order.
func AllDataPatterns() []DataPattern {
	out := make([]DataPattern, 0, int(numDataPatterns))
	for p := ZeroWordBlock; p < numDataPatterns; p++ {
		out = append(out, p)
	}
	return out
}
