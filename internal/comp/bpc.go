package comp

import (
	"encoding/binary"
	"fmt"

	"mgpucompress/internal/bitstream"
)

// bpc implements Bit-Plane Compression (Kim et al., ISCA 2016) as an
// EXTENSION beyond the paper's three codecs. The paper's related-work
// section singles BPC out as orthogonal to its approach — "a general
// approach to pre-code the data and improve compressibility by reducing
// data entropy" — so this package provides it for the extended-candidate
// experiments in the benchmark harness.
//
// The algorithm, adapted from 128-byte DRAM blocks to this system's
// 64-byte lines (16 × 32-bit words):
//
//  1. Delta transform: keep word 0 as the base; form 15 deltas
//     d[j] = w[j+1] − w[j], each a 33-bit signed value.
//
//  2. Bit-plane transform (DBP): transpose the 15×33 delta matrix into 33
//     planes of 15 bits; plane k holds bit k of every delta.
//
//  3. XOR transform (DBX): DBX[k] = DBP[k] ^ DBP[k+1] for k < 32 and
//     DBX[32] = DBP[32], concentrating runs of equal planes into zeros.
//
//  4. Symbol encoding per plane (prefix-free):
//
//     run of 2..33 all-zero planes   '01'    + 5-bit run length   (pattern 1)
//     single all-zero plane          '001'                        (pattern 2)
//     all-ones plane                 '0001'                       (pattern 3)
//     single-one plane               '00001' + 4-bit position     (pattern 4)
//     raw plane                      '1'     + 15 bits            (pattern 5)
//
// The base word uses an FPC-style header: zero ('00'), 8-bit
// sign-extended ('01'+8), 16-bit sign-extended ('10'+16), raw ('11'+32).
// If the total does not beat 512 bits the line ships raw (pattern 9).
//
// Hardware cost: Kim et al. report a 9-cycle compressor / 6-cycle
// decompressor pipeline at well under a mW per lane in 28 nm; the numbers
// below are scaled estimates in the spirit of Table III and are clearly
// extension-grade rather than paper-reproduced.
type bpc struct {
	w bitstream.Writer // encode scratch, reused across lines
}

// NewBPC returns the Bit-Plane Compression codec (extension).
func NewBPC() Compressor { return &bpc{} }

// BPC is the wire identifier for the extension codec.
const BPC = bpcWireValue

func (*bpc) Algorithm() Algorithm { return BPC }

var bpcCost = Cost{
	CompressionCycles:   9,
	DecompressionCycles: 6,
	AreaUM2:             680,
	CompressorMW:        1.2,
	DecompressorMW:      0.8,
}

func (*bpc) Cost() Cost { return bpcCost }

const (
	bpcPlanes    = 33 // 33-bit deltas
	bpcPlaneBits = 15 // 15 deltas per line
)

// bpcTransform produces the 33 DBX planes plus the base word.
func bpcTransform(line []byte) (base uint32, dbx [bpcPlanes]uint16) {
	var w [16]uint32
	for i := range w {
		w[i] = binary.LittleEndian.Uint32(line[i*4:])
	}
	base = w[0]
	var deltas [bpcPlaneBits]int64
	for j := 0; j < bpcPlaneBits; j++ {
		deltas[j] = int64(w[j+1]) - int64(w[j])
	}
	// DBX[k] = DBP[k] ^ DBP[k+1] is bit k of delta ^ (delta >> 1), so the
	// XOR transform folds into the deltas before the transpose, and the OR
	// across all folded deltas flags which planes are non-zero: only those
	// need the 15-element bit gather (on compressible data most planes are
	// zero, which is the whole point of the transform).
	var x [bpcPlaneBits]uint64
	var or uint64
	for j := 0; j < bpcPlaneBits; j++ {
		d := uint64(deltas[j])
		x[j] = d ^ d>>1
		or |= x[j]
	}
	for k := 0; k < bpcPlanes-1; k++ {
		if or>>uint(k)&1 == 0 {
			continue
		}
		var plane uint16
		for j := 0; j < bpcPlaneBits; j++ {
			plane |= uint16(x[j]>>uint(k)&1) << uint(j)
		}
		dbx[k] = plane
	}
	// The last plane has no successor: it is DBP[32] itself.
	last := bpcPlanes - 1
	var plane uint16
	for j := 0; j < bpcPlaneBits; j++ {
		plane |= uint16(uint64(deltas[j])>>uint(last)&1) << uint(j)
	}
	dbx[last] = plane
	return base, dbx
}

// bpcInverse reconstructs the line from the base word and DBX planes.
func bpcInverse(base uint32, dbx [bpcPlanes]uint16) []byte {
	var dbp [bpcPlanes]uint16
	dbp[bpcPlanes-1] = dbx[bpcPlanes-1]
	for k := bpcPlanes - 2; k >= 0; k-- {
		dbp[k] = dbx[k] ^ dbp[k+1]
	}
	var deltas [bpcPlaneBits]int64
	for j := 0; j < bpcPlaneBits; j++ {
		var v uint64
		for k := 0; k < bpcPlanes; k++ {
			v |= uint64((dbp[k]>>uint(j))&1) << uint(k)
		}
		deltas[j] = bitstream.SignExtend(v, bpcPlanes)
	}
	line := make([]byte, LineSize)
	binary.LittleEndian.PutUint32(line, base)
	w := base
	for j := 0; j < bpcPlaneBits; j++ {
		w = uint32(int64(w) + deltas[j])
		binary.LittleEndian.PutUint32(line[(j+1)*4:], w)
	}
	return line
}

const bpcAllOnes = uint16(1<<bpcPlaneBits) - 1

func isPow2u16(v uint16) bool { return v != 0 && v&(v-1) == 0 }

func (b *bpc) Compress(line []byte) Encoded {
	return b.CompressInto(make([]byte, 0, LineSize), line)
}

func (b *bpc) CompressInto(dst, line []byte) Encoded {
	checkLine(line)
	base, dbx := bpcTransform(line)

	w := &b.w
	w.Reset()
	var hist PatternHistogram

	// Base word header.
	switch {
	case base == 0:
		w.WriteBits(0b00, 2)
	case bitstream.FitsSigned(int64(int32(base)), 8):
		w.WriteBits(0b01, 2)
		w.WriteBits(uint64(base&0xFF), 8)
	case bitstream.FitsSigned(int64(int32(base)), 16):
		w.WriteBits(0b10, 2)
		w.WriteBits(uint64(base&0xFFFF), 16)
	default:
		w.WriteBits(0b11, 2)
		w.WriteBits(uint64(base), 32)
	}

	for k := 0; k < bpcPlanes; {
		plane := dbx[k]
		switch {
		case plane == 0:
			run := 1
			for k+run < bpcPlanes && dbx[k+run] == 0 {
				run++
			}
			if run >= 2 {
				if run > 33 {
					run = 33
				}
				w.WriteBits(0b01, 2)
				w.WriteBits(uint64(run-2), 5)
				hist[1]++
			} else {
				w.WriteBits(0b001, 3)
				hist[2]++
			}
			k += run
		case plane == bpcAllOnes:
			w.WriteBits(0b0001, 4)
			hist[3]++
			k++
		case isPow2u16(plane):
			pos := 0
			for plane>>uint(pos)&1 == 0 {
				pos++
			}
			w.WriteBits(0b00001, 5)
			w.WriteBits(uint64(pos), 4)
			hist[4]++
			k++
		default:
			w.WriteBits(0b1, 1)
			w.WriteBits(uint64(plane), bpcPlaneBits)
			hist[5]++
			k++
		}
	}
	if w.Len() >= LineBits {
		return rawEncodedInto(BPC, dst, line, 9)
	}
	return Encoded{Alg: BPC, Bits: w.Len(), Data: w.AppendTo(dst), Patterns: hist}
}

func (b *bpc) CompressedBits(line []byte) int {
	checkLine(line)
	base, dbx := bpcTransform(line)

	var bits int
	switch {
	case base == 0:
		bits = 2
	case bitstream.FitsSigned(int64(int32(base)), 8):
		bits = 2 + 8
	case bitstream.FitsSigned(int64(int32(base)), 16):
		bits = 2 + 16
	default:
		bits = 2 + 32
	}

	for k := 0; k < bpcPlanes; {
		plane := dbx[k]
		switch {
		case plane == 0:
			run := 1
			for k+run < bpcPlanes && dbx[k+run] == 0 {
				run++
			}
			if run >= 2 {
				bits += 2 + 5
			} else {
				bits += 3
			}
			k += run
		case plane == bpcAllOnes:
			bits += 4
			k++
		case isPow2u16(plane):
			bits += 5 + 4
			k++
		default:
			bits += 1 + bpcPlaneBits
			k++
		}
	}
	if bits >= LineBits {
		return LineBits
	}
	return bits
}

func (b *bpc) Decompress(enc Encoded) ([]byte, error) {
	if enc.Alg != BPC {
		return nil, fmt.Errorf("comp: BPC decompressor fed %v data", enc.Alg)
	}
	if enc.Uncompressed {
		if len(enc.Data) != LineSize {
			return nil, fmt.Errorf("comp: raw BPC line has %d bytes", len(enc.Data))
		}
		return append([]byte(nil), enc.Data...), nil
	}
	r := bitstream.NewReader(enc.Data)

	baseKind, err := r.ReadBits(2)
	if err != nil {
		return nil, err
	}
	var base uint32
	switch baseKind {
	case 0b00:
		base = 0
	case 0b01:
		v, err := r.ReadBits(8)
		if err != nil {
			return nil, err
		}
		base = uint32(int32(bitstream.SignExtend(v, 8)))
	case 0b10:
		v, err := r.ReadBits(16)
		if err != nil {
			return nil, err
		}
		base = uint32(int32(bitstream.SignExtend(v, 16)))
	default:
		v, err := r.ReadBits(32)
		if err != nil {
			return nil, err
		}
		base = uint32(v)
	}

	var dbx [bpcPlanes]uint16
	for k := 0; k < bpcPlanes; {
		bit, err := r.ReadBits(1)
		if err != nil {
			return nil, err
		}
		if bit == 1 { // raw plane
			v, err := r.ReadBits(bpcPlaneBits)
			if err != nil {
				return nil, err
			}
			dbx[k] = uint16(v)
			k++
			continue
		}
		bit, err = r.ReadBits(1)
		if err != nil {
			return nil, err
		}
		if bit == 1 { // '01': zero run
			rl, err := r.ReadBits(5)
			if err != nil {
				return nil, err
			}
			run := int(rl) + 2
			if k+run > bpcPlanes {
				return nil, fmt.Errorf("comp: BPC zero run of %d overflows planes", run)
			}
			k += run
			continue
		}
		bit, err = r.ReadBits(1)
		if err != nil {
			return nil, err
		}
		if bit == 1 { // '001': single zero plane
			k++
			continue
		}
		bit, err = r.ReadBits(1)
		if err != nil {
			return nil, err
		}
		if bit == 1 { // '0001': all ones
			dbx[k] = bpcAllOnes
			k++
			continue
		}
		bit, err = r.ReadBits(1)
		if err != nil {
			return nil, err
		}
		if bit != 1 {
			return nil, fmt.Errorf("comp: invalid BPC symbol prefix")
		}
		pos, err := r.ReadBits(4)
		if err != nil {
			return nil, err
		}
		if int(pos) >= bpcPlaneBits {
			return nil, fmt.Errorf("comp: BPC one-bit position %d out of range", pos)
		}
		dbx[k] = 1 << uint(pos)
		k++
	}
	if r.Pos() != enc.Bits {
		return nil, fmt.Errorf("comp: BPC consumed %d bits, encoding says %d", r.Pos(), enc.Bits)
	}
	return bpcInverse(base, dbx), nil
}
