package comp

import (
	"fmt"
	"math/rand"
	"testing"
)

// Per-codec benchmarks over entropy-graded lines: "zero" (best case),
// "patterned" (the Sec. III-A families the codecs target), and "random"
// (incompressible, exercises the raw fallback). Run with -benchmem;
// CompressInto and CompressedBits must report 0 allocs/op.

func benchLines(grade string) [][]byte {
	rng := rand.New(rand.NewSource(7))
	lines := make([][]byte, 64)
	for i := range lines {
		switch grade {
		case "zero":
			lines[i] = make([]byte, LineSize)
		case "patterned":
			lines[i] = patternedLine(rng)
		case "random":
			lines[i] = randomLine(rng)
		default:
			panic("unknown grade " + grade)
		}
	}
	return lines
}

var benchGrades = []string{"zero", "patterned", "random"}

// BenchmarkCompressAlloc measures the allocating convenience API, which by
// contract returns freshly allocated Data (1 alloc/op by design). The
// steady-state paths are BenchmarkCompressInto and BenchmarkCompressedBits.
func BenchmarkCompressAlloc(b *testing.B) {
	for _, c := range ExtendedCompressors() {
		for _, grade := range benchGrades {
			lines := benchLines(grade)
			b.Run(fmt.Sprintf("%v/%s", c.Algorithm(), grade), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(LineSize)
				for i := 0; i < b.N; i++ {
					c.Compress(lines[i%len(lines)])
				}
			})
		}
	}
}

func BenchmarkCompressInto(b *testing.B) {
	for _, c := range ExtendedCompressors() {
		for _, grade := range benchGrades {
			lines := benchLines(grade)
			b.Run(fmt.Sprintf("%v/%s", c.Algorithm(), grade), func(b *testing.B) {
				buf := make([]byte, 0, LineSize)
				b.ReportAllocs()
				b.SetBytes(LineSize)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					enc := c.CompressInto(buf[:0], lines[i%len(lines)])
					buf = enc.Data
				}
			})
		}
	}
}

func BenchmarkCompressedBits(b *testing.B) {
	for _, c := range ExtendedCompressors() {
		for _, grade := range benchGrades {
			lines := benchLines(grade)
			b.Run(fmt.Sprintf("%v/%s", c.Algorithm(), grade), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(LineSize)
				sink := 0
				for i := 0; i < b.N; i++ {
					sink += c.CompressedBits(lines[i%len(lines)])
				}
				benchSink = sink
			})
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	for _, c := range ExtendedCompressors() {
		for _, grade := range benchGrades {
			lines := benchLines(grade)
			encs := make([]Encoded, len(lines))
			for i, line := range lines {
				encs[i] = c.Compress(line)
			}
			b.Run(fmt.Sprintf("%v/%s", c.Algorithm(), grade), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(LineSize)
				for i := 0; i < b.N; i++ {
					if _, err := c.Decompress(encs[i%len(encs)]); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// benchSink defeats dead-code elimination of the size-only loop.
var benchSink int
