package comp

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// lineOf builds a 64-byte line from 32-bit words, repeating the given words.
func lineOf32(words ...uint32) []byte {
	line := make([]byte, LineSize)
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(line[i*4:], words[i%len(words)])
	}
	return line
}

func lineOf64(words ...uint64) []byte {
	line := make([]byte, LineSize)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(line[i*8:], words[i%len(words)])
	}
	return line
}

func randomLine(rng *rand.Rand) []byte {
	line := make([]byte, LineSize)
	rng.Read(line)
	return line
}

// patternedLine generates lines in the pattern families of Sec. III-A, so
// property tests cover the paths the codecs are designed for and not just
// random (incompressible) data.
func patternedLine(rng *rand.Rand) []byte {
	switch rng.Intn(8) {
	case 0: // zero line
		return make([]byte, LineSize)
	case 1: // repeated 64-bit word
		return lineOf64(rng.Uint64())
	case 2: // narrow 32-bit words
		line := make([]byte, LineSize)
		for i := 0; i < 16; i++ {
			binary.LittleEndian.PutUint32(line[i*4:], uint32(rng.Intn(256)))
		}
		return line
	case 3: // low dynamic range around a large base
		line := make([]byte, LineSize)
		base := rng.Uint64()
		for i := 0; i < 8; i++ {
			binary.LittleEndian.PutUint64(line[i*8:], base+uint64(rng.Intn(256))-128)
		}
		return line
	case 4: // small signed values (FPC territory)
		line := make([]byte, LineSize)
		for i := 0; i < 16; i++ {
			binary.LittleEndian.PutUint32(line[i*4:], uint32(int32(rng.Intn(65536)-32768)))
		}
		return line
	case 5: // spatially similar words (C-Pack territory)
		line := make([]byte, LineSize)
		seed := rng.Uint32()
		for i := 0; i < 16; i++ {
			binary.LittleEndian.PutUint32(line[i*4:], seed&0xFFFFFF00|uint32(rng.Intn(256)))
		}
		return line
	case 6: // sparse: mostly zeros with a few random words
		line := make([]byte, LineSize)
		for i := 0; i < 3; i++ {
			binary.LittleEndian.PutUint32(line[rng.Intn(16)*4:], rng.Uint32())
		}
		return line
	default:
		return randomLine(rng)
	}
}

func TestCodecRoundTripOnPatternedData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range AllCompressors() {
		c := c
		t.Run(c.Algorithm().String(), func(t *testing.T) {
			for i := 0; i < 5000; i++ {
				line := patternedLine(rng)
				enc := c.Compress(line)
				if enc.Bits <= 0 || enc.Bits > LineBits {
					t.Fatalf("iteration %d: Bits = %d out of range", i, enc.Bits)
				}
				got, err := c.Decompress(enc)
				if err != nil {
					t.Fatalf("iteration %d: decompress: %v (line %x)", i, err, line)
				}
				if !bytes.Equal(got, line) {
					t.Fatalf("iteration %d: round trip mismatch:\n in %x\nout %x", i, line, got)
				}
			}
		})
	}
}

func TestCodecRoundTripOnRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, c := range AllCompressors() {
		c := c
		t.Run(c.Algorithm().String(), func(t *testing.T) {
			for i := 0; i < 2000; i++ {
				line := randomLine(rng)
				enc := c.Compress(line)
				got, err := c.Decompress(enc)
				if err != nil {
					t.Fatalf("iteration %d: %v", i, err)
				}
				if !bytes.Equal(got, line) {
					t.Fatalf("iteration %d: round trip mismatch", i)
				}
			}
		})
	}
}

func TestCodecBitsMatchesBitstreamLength(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, c := range AllCompressors() {
		for i := 0; i < 2000; i++ {
			line := patternedLine(rng)
			enc := c.Compress(line)
			if want := (enc.Bits + 7) / 8; len(enc.Data) != want {
				t.Fatalf("%v: data length %d bytes for %d bits, want %d",
					c.Algorithm(), len(enc.Data), enc.Bits, want)
			}
			if enc.WireBytes() != (enc.Bits+7)/8 {
				t.Fatalf("%v: WireBytes inconsistent", c.Algorithm())
			}
		}
	}
}

func TestZeroLineEncodedSizes(t *testing.T) {
	zero := make([]byte, LineSize)
	// Table II: FPC zero block = 3 bits, BDI = 4 bits, C-Pack+Z = 2 bits.
	wants := map[Algorithm]int{FPC: 3, BDI: 4, CPackZ: 2}
	for _, c := range AllCompressors() {
		enc := c.Compress(zero)
		if enc.Bits != wants[c.Algorithm()] {
			t.Errorf("%v zero line = %d bits, want %d", c.Algorithm(), enc.Bits, wants[c.Algorithm()])
		}
		if enc.Patterns[1] != 1 {
			t.Errorf("%v zero line pattern histogram = %v, want pattern 1", c.Algorithm(), enc.Patterns)
		}
	}
}

func TestFPCEncodedSizesPerTableII(t *testing.T) {
	cases := []struct {
		name     string
		word     uint32
		pattern  int
		wordBits int // data+metadata bits per word
	}{
		{"repeated bytes", 0xABABABAB, 3, 11},
		{"4-bit positive", 0x00000007, 4, 7},
		{"4-bit negative", 0xFFFFFFF8, 4, 7},
		{"one byte sign-extended", 0x0000007F, 5, 11},
		{"one byte negative", 0xFFFFFF80, 5, 11},
		{"halfword sign-extended", 0x00007FFF, 6, 19},
		{"halfword negative", 0xFFFF8000, 6, 19},
		{"halfword zero-padded", 0x12340000, 7, 19},
		{"two halfwords byte sign-ext", 0x007F0011, 8, 19},
	}
	f := NewFPC()
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			line := lineOf32(c.word)
			enc := f.Compress(line)
			if enc.Uncompressed {
				t.Fatalf("line of %08x unexpectedly uncompressed", c.word)
			}
			if want := 16 * c.wordBits; enc.Bits != want {
				t.Errorf("Bits = %d, want %d (16 words × %d)", enc.Bits, want, c.wordBits)
			}
			if got := enc.Patterns[c.pattern]; got != 16 {
				t.Errorf("pattern %d count = %d, want 16 (hist %v)", c.pattern, got, enc.Patterns)
			}
			got, err := f.Decompress(enc)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, line) {
				t.Errorf("round trip mismatch for %08x", c.word)
			}
		})
	}
}

func TestFPCZeroWordsInsideNonzeroLine(t *testing.T) {
	// 15 zero words (3 bits each) + one 4-bit word (7 bits) = 52 bits.
	f := NewFPC()
	line := make([]byte, LineSize)
	binary.LittleEndian.PutUint32(line[0:], 5)
	enc := f.Compress(line)
	if enc.Bits != 15*3+7 {
		t.Errorf("Bits = %d, want 52", enc.Bits)
	}
	if enc.Patterns[2] != 15 || enc.Patterns[4] != 1 {
		t.Errorf("hist = %v, want 15× zero word + 1× 4-bit", enc.Patterns)
	}
	got, err := f.Decompress(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, line) {
		t.Error("round trip mismatch")
	}
}

func TestFPCIncompressibleWordForcesRawLine(t *testing.T) {
	f := NewFPC()
	line := lineOf32(3)                                  // all compressible...
	binary.LittleEndian.PutUint32(line[20:], 0xDEADBEEF) // ...except one
	enc := f.Compress(line)
	if !enc.Uncompressed {
		t.Fatal("line with incompressible word was not sent raw")
	}
	if enc.Bits != LineBits {
		t.Errorf("raw line Bits = %d, want %d", enc.Bits, LineBits)
	}
	if enc.Patterns[9] != 16 {
		t.Errorf("pattern 9 count = %d, want 16", enc.Patterns[9])
	}
	got, err := f.Decompress(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, line) {
		t.Error("raw round trip mismatch")
	}
}

func TestFPCClassifyWord(t *testing.T) {
	cases := []struct {
		w    uint32
		want int
	}{
		{0, 2},
		{0x11111111, 3},
		{0xFFFFFFFF, 3}, // repeated bytes beats 4-bit sign-extension order? No: order checks repeated first
		{7, 4},
		{0xFFFFFFF8, 4},
		{100, 5},
		{0x7FFF, 6},
		{0xFFFF8000, 6},
		{0xABCD0000, 7},
		{0x00110022, 8},
		{0xDEADBEEF, 9},
		{0x00010001, 8}, // two halfwords, each value 1
	}
	for _, c := range cases {
		if got := classifyFPCWord(c.w); got != c.want {
			t.Errorf("classifyFPCWord(%08x) = %d, want %d", c.w, got, c.want)
		}
	}
}

func TestBDIEncodedSizesPerTableII(t *testing.T) {
	b := NewBDI()

	t.Run("repeated words = 68 bits", func(t *testing.T) {
		enc := b.Compress(lineOf64(0xDEADBEEFCAFEF00D))
		if enc.Bits != 68 {
			t.Errorf("Bits = %d, want 68", enc.Bits)
		}
		if enc.Patterns[2] != 1 {
			t.Errorf("pattern hist = %v, want pattern 2", enc.Patterns)
		}
	})

	t.Run("base8 delta1 = 140 bits", func(t *testing.T) {
		base := uint64(0x1122334455667788)
		line := make([]byte, LineSize)
		for i := 0; i < 8; i++ {
			binary.LittleEndian.PutUint64(line[i*8:], base+uint64(i*3))
		}
		enc := b.Compress(line)
		if enc.Bits != 140 {
			t.Errorf("Bits = %d, want 140 (128 data + 12 metadata)", enc.Bits)
		}
		if enc.Patterns[3] != 1 {
			t.Errorf("pattern hist = %v, want pattern 3", enc.Patterns)
		}
	})

	t.Run("base8 delta2 = 204 bits", func(t *testing.T) {
		base := uint64(0x1122334455667788)
		line := make([]byte, LineSize)
		for i := 0; i < 8; i++ {
			binary.LittleEndian.PutUint64(line[i*8:], base+uint64(i*1000))
		}
		enc := b.Compress(line)
		if enc.Bits != 204 {
			t.Errorf("Bits = %d, want 204 (192 data + 12 metadata)", enc.Bits)
		}
		if enc.Patterns[4] != 1 {
			t.Errorf("pattern hist = %v, want pattern 4", enc.Patterns)
		}
	})

	t.Run("base8 delta4 = 332 bits", func(t *testing.T) {
		base := uint64(0x1122334455667788)
		line := make([]byte, LineSize)
		for i := 0; i < 8; i++ {
			binary.LittleEndian.PutUint64(line[i*8:], base+uint64(i*100000000))
		}
		enc := b.Compress(line)
		if enc.Bits != 332 {
			t.Errorf("Bits = %d, want 332 (320 data + 12 metadata)", enc.Bits)
		}
		if enc.Patterns[5] != 1 {
			t.Errorf("pattern hist = %v, want pattern 5", enc.Patterns)
		}
	})

	t.Run("base4 delta1 = 180 bits", func(t *testing.T) {
		line := make([]byte, LineSize)
		base := uint32(0x11223344)
		for i := 0; i < 16; i++ {
			binary.LittleEndian.PutUint32(line[i*4:], base+uint32(i))
		}
		enc := b.Compress(line)
		if enc.Bits != 180 {
			t.Errorf("Bits = %d, want 180 (160 data + 20 metadata)", enc.Bits)
		}
		if enc.Patterns[6] != 1 {
			t.Errorf("pattern hist = %v, want pattern 6", enc.Patterns)
		}
	})

	t.Run("base2 delta1 = 308 bits", func(t *testing.T) {
		line := make([]byte, LineSize)
		base := uint16(0x7700)
		for i := 0; i < 32; i++ {
			v := base + uint16(i)
			if i%2 == 1 {
				v = uint16(i) // immediates via zero base
			}
			binary.LittleEndian.PutUint16(line[i*2:], v)
		}
		enc := b.Compress(line)
		if enc.Bits != 308 {
			t.Errorf("Bits = %d, want 308 (272 data + 36 metadata)", enc.Bits)
		}
		if enc.Patterns[8] != 1 {
			t.Errorf("pattern hist = %v, want pattern 8", enc.Patterns)
		}
	})

	t.Run("random line is uncompressed", func(t *testing.T) {
		rng := rand.New(rand.NewSource(9))
		enc := b.Compress(randomLine(rng))
		if !enc.Uncompressed {
			t.Skip("random line happened to be compressible")
		}
		if enc.Bits != LineBits || enc.Patterns[9] != 1 {
			t.Errorf("raw encoding inconsistent: %d bits, hist %v", enc.Bits, enc.Patterns)
		}
	})
}

func TestBDIPicksSmallestConfig(t *testing.T) {
	// A line that is encodable with base8 delta4 (332) AND base4 delta2
	// (308): BDI must pick base4 delta2.
	line := make([]byte, LineSize)
	base := uint32(0x20000000)
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(line[i*4:], base+uint32(i*100))
	}
	enc := NewBDI().Compress(line)
	if enc.Bits != 180 {
		// base4 delta1 fits too (deltas up to 1500 don't fit 1 byte though)
		t.Logf("hist: %v", enc.Patterns)
		if enc.Bits != 308 {
			t.Errorf("Bits = %d, want the smallest applicable config", enc.Bits)
		}
	}
}

func TestBDIMixedNarrowAndBase(t *testing.T) {
	// Half the words are narrow (immediates from the zero base), half are
	// clustered around a large base: the combination is BDI's specialty.
	line := make([]byte, LineSize)
	base := uint64(0xAABBCCDD00112233)
	for i := 0; i < 8; i++ {
		if i%2 == 0 {
			binary.LittleEndian.PutUint64(line[i*8:], uint64(i))
		} else {
			binary.LittleEndian.PutUint64(line[i*8:], base+uint64(i))
		}
	}
	b := NewBDI()
	enc := b.Compress(line)
	if enc.Uncompressed {
		t.Fatal("mixed narrow+base line not compressed")
	}
	if enc.Patterns[3] != 1 {
		t.Errorf("expected base8 delta1 (pattern 3), hist %v", enc.Patterns)
	}
	got, err := b.Decompress(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, line) {
		t.Error("round trip mismatch")
	}
}

func TestCPackZEncodedSizesPerTableII(t *testing.T) {
	c := NewCPackZ()

	t.Run("all distinct random words = raw", func(t *testing.T) {
		// 16 new words would cost 16×34 = 544 > 512, so the line ships raw.
		rng := rand.New(rand.NewSource(7))
		line := make([]byte, LineSize)
		for i := 0; i < 16; i++ {
			binary.LittleEndian.PutUint32(line[i*4:], rng.Uint32()|0xFF000000)
		}
		enc := c.Compress(line)
		if !enc.Uncompressed {
			t.Fatalf("expected raw fallback, got %d bits", enc.Bits)
		}
		if enc.Patterns[8] != 16 {
			t.Errorf("hist = %v, want 16× pattern 8", enc.Patterns)
		}
	})

	t.Run("full matches", func(t *testing.T) {
		// One new word then 15 full matches: 34 + 15×8 = 154 bits.
		line := lineOf32(0xCAFEBABE)
		enc := c.Compress(line)
		if enc.Bits != 154 {
			t.Errorf("Bits = %d, want 154", enc.Bits)
		}
		if enc.Patterns[3] != 1 || enc.Patterns[4] != 15 {
			t.Errorf("hist = %v, want 1 new + 15 full matches", enc.Patterns)
		}
	})

	t.Run("narrow words", func(t *testing.T) {
		// 16 narrow words: 16×12 = 192 bits.
		line := lineOf32(0x00000042, 0x00000017)
		enc := c.Compress(line)
		if enc.Bits != 192 {
			t.Errorf("Bits = %d, want 192", enc.Bits)
		}
		if enc.Patterns[6] != 16 {
			t.Errorf("hist = %v, want 16 narrow", enc.Patterns)
		}
	})

	t.Run("three-byte matches", func(t *testing.T) {
		// First word new (34), rest share the upper 3 bytes: 15×16 = 240.
		line := make([]byte, LineSize)
		for i := 0; i < 16; i++ {
			binary.LittleEndian.PutUint32(line[i*4:], 0xAABBCC00|uint32(i*7+1))
		}
		enc := c.Compress(line)
		if want := 34 + 15*16; enc.Bits != want {
			t.Errorf("Bits = %d, want %d", enc.Bits, want)
		}
		if enc.Patterns[3] != 1 || enc.Patterns[7] != 15 {
			t.Errorf("hist = %v, want 1 new + 15 three-byte matches", enc.Patterns)
		}
	})

	t.Run("halfword matches", func(t *testing.T) {
		// First word new, rest share only the upper halfword:
		// 34 + 15×24 = 394.
		line := make([]byte, LineSize)
		for i := 0; i < 16; i++ {
			binary.LittleEndian.PutUint32(line[i*4:], 0xAABB0000|uint32(i)<<8|0x44)
		}
		enc := c.Compress(line)
		if want := 34 + 15*24; enc.Bits != want {
			t.Errorf("Bits = %d, want %d (hist %v)", enc.Bits, want, enc.Patterns)
		}
		if enc.Patterns[3] != 1 || enc.Patterns[5] != 15 {
			t.Errorf("hist = %v, want 1 new + 15 halfword matches", enc.Patterns)
		}
	})

	t.Run("zero words mixed with data", func(t *testing.T) {
		// Alternating zero and a repeated word: 8×2 + 34 + 7×8 = 106.
		line := lineOf32(0, 0x12345678)
		enc := c.Compress(line)
		if want := 8*2 + 34 + 7*8; enc.Bits != want {
			t.Errorf("Bits = %d, want %d", enc.Bits, want)
		}
	})
}

func TestCPackZDictionaryReconstruction(t *testing.T) {
	// Words deliberately exercise insert-then-match across the dictionary.
	rng := rand.New(rand.NewSource(11))
	c := NewCPackZ()
	for trial := 0; trial < 500; trial++ {
		vocab := make([]uint32, rng.Intn(6)+1)
		for i := range vocab {
			vocab[i] = rng.Uint32()
		}
		line := make([]byte, LineSize)
		for i := 0; i < 16; i++ {
			w := vocab[rng.Intn(len(vocab))]
			switch rng.Intn(4) {
			case 0:
				w = w&0xFFFFFF00 | uint32(rng.Intn(256)) // 3-byte variant
			case 1:
				w = w&0xFFFF0000 | uint32(rng.Intn(65536)) // halfword variant
			}
			binary.LittleEndian.PutUint32(line[i*4:], w)
		}
		enc := c.Compress(line)
		got, err := c.Decompress(enc)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(got, line) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}

func TestDecompressRejectsWrongAlgorithm(t *testing.T) {
	line := lineOf32(7)
	for _, c := range AllCompressors() {
		enc := c.Compress(line)
		for _, other := range AllCompressors() {
			if other.Algorithm() == c.Algorithm() {
				continue
			}
			if _, err := other.Decompress(enc); err == nil {
				t.Errorf("%v decompressor accepted %v data", other.Algorithm(), c.Algorithm())
			}
		}
	}
}

func TestCompressPanicsOnWrongLineSize(t *testing.T) {
	for _, c := range AllCompressors() {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v accepted a short line", c.Algorithm())
				}
			}()
			c.Compress(make([]byte, 32))
		}()
	}
}

func TestCostTableIII(t *testing.T) {
	cases := []struct {
		alg          Algorithm
		comp, decomp int
		area         float64
		energyPJ     float64 // paper's combined column
		tolerance    float64
	}{
		{FPC, 3, 5, 4428, 36.9, 0.2},
		{BDI, 2, 1, 162, 1.3, 0.15},
		{CPackZ, 16, 9, 766, 40.0, 0.6},
	}
	for _, c := range cases {
		cost := CostOf(c.alg)
		if cost.CompressionCycles != c.comp || cost.DecompressionCycles != c.decomp {
			t.Errorf("%v latency = %d/%d, want %d/%d", c.alg,
				cost.CompressionCycles, cost.DecompressionCycles, c.comp, c.decomp)
		}
		if cost.AreaUM2 != c.area {
			t.Errorf("%v area = %v, want %v", c.alg, cost.AreaUM2, c.area)
		}
		got := cost.BlockEnergyPJ()
		if got < c.energyPJ-c.tolerance || got > c.energyPJ+c.tolerance {
			t.Errorf("%v block energy = %.2f pJ, want %.1f ± %.2f", c.alg, got, c.energyPJ, c.tolerance)
		}
	}
	if (CostOf(None) != Cost{}) {
		t.Error("None has nonzero cost")
	}
}

func TestSupportedPatternsTableI(t *testing.T) {
	checks := []struct {
		alg     Algorithm
		pattern DataPattern
		want    Support
	}{
		{FPC, ZeroWordBlock, Yes},
		{FPC, NarrowWord, Yes},
		{FPC, LowDynamicRange, No},
		{FPC, SpatialSimilarity, No},
		{BDI, LowDynamicRange, Yes},
		{BDI, NarrowWord, Partial},
		{BDI, SpatialSimilarity, No},
		{CPackZ, SpatialSimilarity, Yes},
		{CPackZ, NarrowWord, Partial},
		{CPackZ, LowDynamicRange, No},
	}
	for _, c := range checks {
		if got := SupportedPatterns(c.alg)[c.pattern]; got != c.want {
			t.Errorf("SupportedPatterns(%v)[%v] = %v, want %v", c.alg, c.pattern, got, c.want)
		}
	}
	if len(AllDataPatterns()) != 5 {
		t.Errorf("AllDataPatterns returned %d patterns, want 5", len(AllDataPatterns()))
	}
}

func TestPatternHistogramTopMatchesTableVIFormat(t *testing.T) {
	var h PatternHistogram
	h[2] = 86
	h[9] = 12
	h[1] = 1
	h[3] = 1
	top := h.Top(3)
	if len(top) != 3 {
		t.Fatalf("Top(3) returned %d entries", len(top))
	}
	if top[0].Pattern != 2 || top[1].Pattern != 9 {
		t.Errorf("Top order = %v, want patterns 2, 9 first", top)
	}
	if top[0].Share < 0.85 || top[0].Share > 0.87 {
		t.Errorf("top share = %v, want ~0.86", top[0].Share)
	}
	sum := 0.0
	for p := 1; p <= MaxPattern; p++ {
		if h[p] > 0 {
			sum += float64(h[p])
		}
	}
	if sum != float64(h.Total()) {
		t.Error("Total inconsistent with entries")
	}
}

func TestPatternHistogramAdd(t *testing.T) {
	var a, b PatternHistogram
	a[1], a[5] = 3, 7
	b[5], b[9] = 2, 4
	a.Add(b)
	if a[1] != 3 || a[5] != 9 || a[9] != 4 {
		t.Errorf("Add result = %v", a)
	}
}

func TestEncodedRatio(t *testing.T) {
	e := Encoded{Bits: 128}
	if e.Ratio() != 4.0 {
		t.Errorf("Ratio = %v, want 4.0", e.Ratio())
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[Algorithm]string{None: "None", FPC: "FPC", BDI: "BDI", CPackZ: "C-Pack+Z"}
	for alg, want := range names {
		if alg.String() != want {
			t.Errorf("%d.String() = %q, want %q", alg, alg.String(), want)
		}
	}
	if Algorithm(200).String() != "Algorithm(200)" {
		t.Errorf("unknown algorithm string = %q", Algorithm(200).String())
	}
}

func TestNewCompressor(t *testing.T) {
	for _, alg := range []Algorithm{FPC, BDI, CPackZ} {
		c := NewCompressor(alg)
		if c == nil || c.Algorithm() != alg {
			t.Errorf("NewCompressor(%v) wrong", alg)
		}
	}
	if NewCompressor(None) != nil {
		t.Error("NewCompressor(None) should be nil")
	}
}

// BDI should beat FPC and C-Pack+Z on low-dynamic-range data (Table I).
func TestRelativeStrengthLowDynamicRange(t *testing.T) {
	line := make([]byte, LineSize)
	base := uint64(0x4045000000000000) // a double-precision-like value
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(line[i*8:], base+uint64(i*17))
	}
	fpcBits := NewFPC().Compress(line).Bits
	bdiBits := NewBDI().Compress(line).Bits
	if bdiBits >= fpcBits {
		t.Errorf("BDI (%d bits) should beat FPC (%d bits) on low-dynamic-range data", bdiBits, fpcBits)
	}
}

// C-Pack+Z should beat BDI on spatially-similar but not low-dynamic-range
// data (Table I).
func TestRelativeStrengthSpatialSimilarity(t *testing.T) {
	line := make([]byte, LineSize)
	words := []uint32{0xAABB1234, 0xAABB9876, 0xCCDD1111, 0xCCDD2222}
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(line[i*4:], words[i%4])
	}
	cpBits := NewCPackZ().Compress(line).Bits
	bdiBits := NewBDI().Compress(line).Bits
	if cpBits >= bdiBits {
		t.Errorf("C-Pack+Z (%d bits) should beat BDI (%d bits) on spatially similar data", cpBits, bdiBits)
	}
}
