package comp

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The golden vectors below pin the exact bit-level output of every codec for
// every Table II pattern row. Each fixture is a hand-built 64-byte line that
// exercises one pattern; the committed .golden file records the encoded bits,
// pattern histogram, and payload hex. Any change to an encoder's wire format
// — intentional or not — shows up as a golden diff, and the analytic `bits`
// field cross-checks the sizes Table II specifies independently of the
// fixtures themselves.

var updateGolden = flag.Bool("update", false, "rewrite Table II golden files")

// line32 builds a 64-byte line from 16 little-endian 32-bit words.
func line32(ws ...uint32) []byte {
	if len(ws) != 16 {
		panic("line32 wants 16 words")
	}
	line := make([]byte, LineSize)
	for i, w := range ws {
		putWord32(line, i, w)
	}
	return line
}

// line64 builds a line from 8 little-endian 64-bit values.
func line64(vs ...uint64) []byte {
	if len(vs) != 8 {
		panic("line64 wants 8 values")
	}
	line := make([]byte, LineSize)
	for i, v := range vs {
		writeUint(line, i*8, 8, v)
	}
	return line
}

// line16 builds a line from 32 little-endian 16-bit values.
func line16(vs ...uint16) []byte {
	if len(vs) != 32 {
		panic("line16 wants 32 values")
	}
	line := make([]byte, LineSize)
	for i, v := range vs {
		writeUint(line, i*2, 2, uint64(v))
	}
	return line
}

// rep32 repeats pairs of words to fill 16 slots: rep32(a, b) = a b a b ...
func rep32(a, b uint32) []byte {
	ws := make([]uint32, 16)
	for i := range ws {
		if i%2 == 0 {
			ws[i] = a
		} else {
			ws[i] = b
		}
	}
	return line32(ws...)
}

// entropyWords are 16 distinct high-entropy constants with pairwise-distinct
// upper halfwords and upper 24-bit prefixes, so no codec finds anything to
// exploit: FPC classifies them pattern 9, BDI finds no feasible base, and
// C-Pack+Z sees 16 dictionary misses (16 x 34 bits > 512 -> raw).
var entropyWords = []uint32{
	0x9E3779B9, 0x85EBCA6B, 0xC2B2AE35, 0x27D4EB2F,
	0x165667B1, 0xD3A2646D, 0xFD7046C5, 0xB55A4F09,
	0x2BCE6273, 0x369DEA0F, 0x7F4A7C15, 0x4CF5AD43,
	0x61C88647, 0xEB64A923, 0x516789F3, 0x38495AB5,
}

type goldenCase struct {
	name    string
	alg     Algorithm
	pattern int // Table II pattern row this fixture targets
	bits    int // analytic encoded size per Table II
	line    []byte
}

func goldenCases() []goldenCase {
	const bdiBase = 0x1122334455667700 // no 1/2/4-byte view of this base is an immediate
	bdiVals := func(deltas ...uint64) []byte {
		vs := make([]uint64, 8)
		for i, d := range deltas {
			vs[i] = bdiBase + d
		}
		return line64(vs...)
	}
	bdi32 := func(deltas ...uint32) []byte {
		ws := make([]uint32, 16)
		for i, d := range deltas {
			ws[i] = 0x10000000 + d
		}
		return line32(ws...)
	}
	b2 := make([]uint16, 32)
	for i := range b2 {
		b2[i] = 0x4000 + uint16(i)
	}
	cpzHalf := make([]uint32, 16)
	cpz3B := make([]uint32, 16)
	cpzHalf[0], cpz3B[0] = 0xDEADBEEF, 0xDEADBEEF
	for k := 1; k < 16; k++ {
		cpzHalf[k] = 0xDEAD0000 + uint32(k)*0x0111 // shares only the upper halfword
		cpz3B[k] = 0xDEADBE00 + uint32(k)          // shares the upper three bytes
	}
	cpzNew := make([]uint32, 16)
	copy(cpzNew, entropyWords[:8]) // 8 misses + 8 zero words stays under a line
	full := make([]uint32, 16)
	for i := range full {
		full[i] = 0xDEADBEEF
	}

	return []goldenCase{
		// FPC: one fixture per prefix row, plus the uncompressed fallback.
		{"fpc_zero_block", FPC, 1, 3, make([]byte, LineSize)},
		{"fpc_zero_word", FPC, 2, 80, rep32(0, 1)},
		{"fpc_repeated_bytes", FPC, 3, 176, rep32(0x41414141, 0xA5A5A5A5)},
		{"fpc_signext4", FPC, 4, 112, rep32(7, 0xFFFFFFF8)},
		{"fpc_signext8", FPC, 5, 176, rep32(0x75, 0xFFFFFF86)},
		{"fpc_signext16", FPC, 6, 304, rep32(0x1234, 0xFFFFEDCC)},
		{"fpc_half_zero_padded", FPC, 7, 304, rep32(0x12340000, 0xABCD0000)},
		{"fpc_two_half_signext8", FPC, 8, 304, rep32(0x007F0012, 0xFFC0FFFE)},
		{"fpc_uncompressed", FPC, 9, LineBits, line32(entropyWords...)},

		// BDI: zero block, repeated, the six base-delta configurations, raw.
		{"bdi_zero_block", BDI, 1, 4, make([]byte, LineSize)},
		{"bdi_repeated64", BDI, 2, 68, line64(0xDEADBEEFCAFEBABE, 0xDEADBEEFCAFEBABE,
			0xDEADBEEFCAFEBABE, 0xDEADBEEFCAFEBABE, 0xDEADBEEFCAFEBABE, 0xDEADBEEFCAFEBABE,
			0xDEADBEEFCAFEBABE, 0xDEADBEEFCAFEBABE)},
		{"bdi_base8_delta1", BDI, 3, 140, bdiVals(0, 1, 5, 17, 33, 65, 100, 127)},
		{"bdi_base8_delta2", BDI, 4, 204, bdiVals(0, 300, 1000, 5000, 10000, 20000, 30000, 32000)},
		{"bdi_base8_delta4", BDI, 5, 332, bdiVals(0, 40000, 100000, 1<<20, 1<<25, 1<<30,
			(1<<64)-(1<<20), 123456)},
		{"bdi_base4_delta1", BDI, 6, 180, bdi32(0, 3, 7, 12, 21, 34, 55, 89,
			2, 5, 9, 14, 23, 36, 57, 91)},
		{"bdi_base4_delta2", BDI, 7, 308, bdi32(0, 300, 700, 1200, 2100, 3400, 5500, 8900,
			200, 500, 900, 1400, 2300, 3600, 5700, 9100)},
		{"bdi_base2_delta1", BDI, 8, 308, line16(b2...)},
		{"bdi_uncompressed", BDI, 9, LineBits, line32(entropyWords...)},

		// C-Pack+Z: zero block, zero word, the dictionary rows, raw.
		{"cpz_zero_block", CPackZ, 1, 2, make([]byte, LineSize)},
		{"cpz_zero_word", CPackZ, 2, 64, line32(0xDEADBEEF, 0, 0, 0, 0, 0, 0, 0,
			0, 0, 0, 0, 0, 0, 0, 0)},
		{"cpz_new_word", CPackZ, 3, 288, line32(cpzNew...)},
		{"cpz_full_match", CPackZ, 4, 154, line32(full...)},
		{"cpz_half_match", CPackZ, 5, 394, line32(cpzHalf...)},
		{"cpz_narrow", CPackZ, 6, 192, line32(0x01, 0x05, 0x0B, 0x11, 0x17, 0x1F, 0x25, 0x2F,
			0x35, 0x3B, 0x41, 0x4B, 0x51, 0x5B, 0x61, 0x7F)},
		{"cpz_3byte_match", CPackZ, 7, 274, line32(cpz3B...)},
		{"cpz_uncompressed", CPackZ, 8, LineBits, line32(entropyWords...)},
	}
}

// renderGolden is the canonical textual form committed under testdata/golden.
func renderGolden(e Encoded) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "alg: %v\n", e.Alg)
	fmt.Fprintf(&sb, "bits: %d\n", e.Bits)
	fmt.Fprintf(&sb, "uncompressed: %v\n", e.Uncompressed)
	var parts []string
	for p, n := range e.Patterns {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%d:%d", p, n))
		}
	}
	fmt.Fprintf(&sb, "patterns: %s\n", strings.Join(parts, " "))
	fmt.Fprintf(&sb, "data: %s\n", hex.EncodeToString(e.Data))
	return sb.String()
}

// TestTableIIGoldenVectors encodes one fixture per Table II pattern row per
// codec, checks the analytic bit count and pattern attribution, round-trips
// the encoding, and compares the full bit-exact output against the committed
// golden file. Run with -update to regenerate the fixtures.
func TestTableIIGoldenVectors(t *testing.T) {
	codecs := map[Algorithm]Compressor{FPC: NewFPC(), BDI: NewBDI(), CPackZ: NewCPackZ()}
	covered := map[Algorithm]map[int]bool{FPC: {}, BDI: {}, CPackZ: {}}
	for _, tc := range goldenCases() {
		covered[tc.alg][tc.pattern] = true
		t.Run(tc.name, func(t *testing.T) {
			enc := codecs[tc.alg].Compress(tc.line)
			if enc.Bits != tc.bits {
				t.Errorf("Bits = %d, want %d per Table II", enc.Bits, tc.bits)
			}
			if enc.Patterns[tc.pattern] == 0 {
				t.Errorf("pattern %d not detected; histogram %v", tc.pattern, enc.Patterns)
			}
			if got := codecs[tc.alg].CompressedBits(tc.line); got != enc.Bits {
				t.Errorf("CompressedBits = %d, Compress wrote %d", got, enc.Bits)
			}
			dec, err := Decode(enc)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if string(dec) != string(tc.line) {
				t.Fatal("decode did not round-trip the fixture line")
			}

			got := renderGolden(enc)
			path := filepath.Join("testdata", "golden", tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("encoding diverged from golden file %s:\ngot:\n%swant:\n%s", path, got, want)
			}
		})
	}

	// Every Table II row must have at least one fixture: FPC and BDI rows
	// 1..9, C-Pack+Z rows 1..8 (its raw fallback is row 8).
	for alg, last := range map[Algorithm]int{FPC: 9, BDI: 9, CPackZ: 8} {
		for p := 1; p <= last; p++ {
			if !covered[alg][p] {
				t.Errorf("%v pattern row %d has no golden fixture", alg, p)
			}
		}
	}
}
