package comp

import (
	"bytes"
	"testing"
)

// Native fuzz targets. Run as regular tests with the seed corpus under
// `go test`, or explore with `go test -fuzz=FuzzCodecRoundTrip ./internal/comp`.

func seedCorpus(f *testing.F) {
	f.Helper()
	f.Add(make([]byte, LineSize))
	ramp := make([]byte, LineSize)
	for i := range ramp {
		ramp[i] = byte(i)
	}
	f.Add(ramp)
	rep := bytes.Repeat([]byte{0xDE, 0xAD, 0xBE, 0xEF}, LineSize/4)
	f.Add(rep)
	narrow := make([]byte, LineSize)
	for i := 0; i < LineSize; i += 4 {
		narrow[i] = byte(i)
	}
	f.Add(narrow)
	ones := bytes.Repeat([]byte{0xFF}, LineSize)
	f.Add(ones)
}

// FuzzCodecRoundTrip: any 64-byte line round-trips through every codec.
func FuzzCodecRoundTrip(f *testing.F) {
	seedCorpus(f)
	codecs := ExtendedCompressors()
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < LineSize {
			return
		}
		line := data[:LineSize]
		for _, c := range codecs {
			enc := c.Compress(line)
			if enc.Bits <= 0 || enc.Bits > LineBits {
				t.Fatalf("%v: Bits = %d", c.Algorithm(), enc.Bits)
			}
			got, err := c.Decompress(enc)
			if err != nil {
				t.Fatalf("%v: %v", c.Algorithm(), err)
			}
			if !bytes.Equal(got, line) {
				t.Fatalf("%v: round trip mismatch", c.Algorithm())
			}
		}
	})
}

// FuzzDecompressGarbage: arbitrary bitstreams never panic any decoder and
// never yield a wrong-sized line.
func FuzzDecompressGarbage(f *testing.F) {
	seedCorpus(f)
	codecs := ExtendedCompressors()
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, c := range codecs {
			for _, bits := range []int{1, 7, len(data) * 8, 512} {
				enc := Encoded{Alg: c.Algorithm(), Bits: bits, Data: data}
				out, err := c.Decompress(enc)
				if err == nil && len(out) != LineSize {
					t.Fatalf("%v: garbage decoded to %d bytes", c.Algorithm(), len(out))
				}
			}
		}
	})
}
