package comp

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

// Decompressors face bitstreams produced by a remote GPU; a link error or a
// protocol bug must surface as an error, never a panic or a silent wrong
// answer of the wrong shape. These tests attack the decoders directly.

func TestDecompressTruncatedStreamErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, c := range AllCompressors() {
		c := c
		t.Run(c.Algorithm().String(), func(t *testing.T) {
			for i := 0; i < 300; i++ {
				line := patternedLine(rng)
				enc := c.Compress(line)
				if enc.Uncompressed || len(enc.Data) < 2 {
					continue
				}
				trunc := enc
				trunc.Data = enc.Data[:len(enc.Data)/2]
				if out, err := c.Decompress(trunc); err == nil {
					// A truncated stream may still decode if the tail was
					// padding; then it must decode to the original.
					if !bytes.Equal(out, line) {
						t.Fatalf("truncated stream decoded to wrong data")
					}
				}
			}
		})
	}
}

func TestDecompressRandomGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, c := range AllCompressors() {
		for i := 0; i < 2000; i++ {
			n := rng.Intn(70)
			garbage := make([]byte, n)
			rng.Read(garbage)
			enc := Encoded{
				Alg:  c.Algorithm(),
				Bits: rng.Intn(520),
				Data: garbage,
			}
			out, err := c.Decompress(enc) // must not panic
			if err == nil && len(out) != LineSize {
				t.Fatalf("%v: garbage decoded to %d bytes", c.Algorithm(), len(out))
			}
		}
	}
}

func TestDecompressBitFlippedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, c := range AllCompressors() {
		for i := 0; i < 500; i++ {
			line := patternedLine(rng)
			enc := c.Compress(line)
			if enc.Uncompressed || len(enc.Data) == 0 {
				continue
			}
			flipped := enc
			flipped.Data = append([]byte(nil), enc.Data...)
			bit := rng.Intn(enc.Bits)
			flipped.Data[bit/8] ^= 1 << uint(7-bit%8)
			out, err := c.Decompress(flipped) // error or wrong data, never panic
			if err == nil && len(out) != LineSize {
				t.Fatalf("%v: flipped stream produced %d bytes", c.Algorithm(), len(out))
			}
		}
	}
}

func TestDecompressBitsFieldMismatchErrors(t *testing.T) {
	line := lineOf32(7)
	for _, c := range AllCompressors() {
		enc := c.Compress(line)
		if enc.Uncompressed {
			continue
		}
		bad := enc
		bad.Bits = enc.Bits + 8
		if _, err := c.Decompress(bad); err == nil {
			t.Errorf("%v: inflated Bits field accepted", c.Algorithm())
		}
	}
}

// Differential property: the encoded size always equals the sum of the
// per-pattern sizes from Table II.
func TestEncodedSizeMatchesPatternAccounting(t *testing.T) {
	fpcBits := map[int]int{2: 3, 3: 11, 4: 7, 5: 11, 6: 19, 7: 19, 8: 19}
	cpackBits := map[int]int{2: 2, 3: 34, 4: 8, 5: 24, 6: 12, 7: 16}
	bdiBits := map[int]int{1: 4, 2: 68, 3: 140, 4: 204, 5: 332, 6: 180, 7: 308, 8: 308, 9: 512}

	rng := rand.New(rand.NewSource(24))
	for i := 0; i < 3000; i++ {
		line := patternedLine(rng)

		if enc := NewFPC().Compress(line); !enc.Uncompressed {
			want := 0
			if enc.Patterns[1] == 1 {
				want = 3
			} else {
				for p, bits := range fpcBits {
					want += int(enc.Patterns[p]) * bits
				}
			}
			if enc.Bits != want {
				t.Fatalf("FPC size %d != pattern accounting %d (hist %v)", enc.Bits, want, enc.Patterns)
			}
		}

		if enc := NewCPackZ().Compress(line); !enc.Uncompressed {
			want := 0
			if enc.Patterns[1] == 1 {
				want = 2
			} else {
				for p, bits := range cpackBits {
					want += int(enc.Patterns[p]) * bits
				}
			}
			if enc.Bits != want {
				t.Fatalf("C-Pack+Z size %d != pattern accounting %d (hist %v)", enc.Bits, want, enc.Patterns)
			}
		}

		if enc := NewBDI().Compress(line); !enc.Uncompressed {
			want := 0
			for p, bits := range bdiBits {
				want += int(enc.Patterns[p]) * bits
			}
			if enc.Bits != want {
				t.Fatalf("BDI size %d != pattern accounting %d (hist %v)", enc.Bits, want, enc.Patterns)
			}
		}
	}
}

// Property: compression never inflates beyond the raw line, for any input.
func TestNeverInflatesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		line := patternedLine(rng)
		for _, c := range AllCompressors() {
			if c.Compress(line).Bits > LineBits {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: compression is deterministic — same line, same bitstream.
func TestDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		line := patternedLine(rng)
		for _, c := range AllCompressors() {
			a := c.Compress(line)
			b := c.Compress(line)
			if a.Bits != b.Bits || !bytes.Equal(a.Data, b.Data) || a.Patterns != b.Patterns {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: compressing a line must not mutate it.
func TestCompressDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for i := 0; i < 500; i++ {
		line := patternedLine(rng)
		orig := append([]byte(nil), line...)
		for _, c := range AllCompressors() {
			c.Compress(line)
			if !bytes.Equal(line, orig) {
				t.Fatalf("%v mutated its input", c.Algorithm())
			}
		}
	}
}

// Exhaustive-ish FPC word classification: every classified word must decode
// back to itself through a single-word line round trip, across boundary
// values of every pattern.
func TestFPCWordClassificationBoundaries(t *testing.T) {
	words := []uint32{
		0, 1, 7, 8, 0xF, 0x10, 0x7F, 0x80, 0xFF, 0x100,
		0x7FFF, 0x8000, 0xFFFF, 0x10000, 0x12340000, 0xFFFF0000, 0x00010000,
		0xFFFFFFF8, 0xFFFFFFF7, 0xFFFFFF80, 0xFFFFFF7F, 0xFFFF8000, 0xFFFF7FFF,
		0xFFFFFFFF, 0xAAAAAAAA, 0x55555555, 0x7F7F7F7F, 0x80808080,
		0x00110022, 0x007F0080, 0xDEADBEEF, 0x7F800000,
	}
	f := NewFPC()
	for _, w := range words {
		p := classifyFPCWord(w)
		if p < 2 || p > 9 {
			t.Fatalf("classifyFPCWord(%#x) = %d out of range", w, p)
		}
		if p == 9 {
			continue
		}
		// Build a line whose first word is w and the rest are zeros.
		line := make([]byte, LineSize)
		binary.LittleEndian.PutUint32(line, w)
		enc := f.Compress(line)
		got, err := f.Decompress(enc)
		if err != nil {
			t.Fatalf("word %#x (pattern %d): %v", w, p, err)
		}
		if binary.LittleEndian.Uint32(got) != w {
			t.Fatalf("word %#x (pattern %d) round trip -> %#x", w, p, binary.LittleEndian.Uint32(got))
		}
	}
}

// Exhaustive 16-bit FPC sweep: every word in [0, 65536) classifies and, when
// compressible, round-trips.
func TestFPCExhaustiveLow16(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep")
	}
	f := NewFPC()
	line := make([]byte, LineSize)
	for w := uint32(0); w < 1<<16; w += 1 {
		binary.LittleEndian.PutUint32(line, w)
		enc := f.Compress(line)
		got, err := f.Decompress(enc)
		if err != nil {
			t.Fatalf("word %#x: %v", w, err)
		}
		if binary.LittleEndian.Uint32(got) != w {
			t.Fatalf("word %#x round trip failed", w)
		}
	}
}

// BDI must produce the same result regardless of where the explicit base
// value appears in the line (the base is data-derived, not positional).
func TestBDIBasePositionInvariance(t *testing.T) {
	b := NewBDI()
	base := uint64(0x7000000000000000)
	for pos := 0; pos < 8; pos++ {
		line := make([]byte, LineSize)
		for i := 0; i < 8; i++ {
			v := uint64(i) // small immediates
			if i == pos {
				v = base // the single large value
			}
			binary.LittleEndian.PutUint64(line[i*8:], v)
		}
		enc := b.Compress(line)
		if enc.Uncompressed {
			t.Fatalf("pos %d: line not compressed", pos)
		}
		if enc.Patterns[3] != 1 {
			t.Errorf("pos %d: expected base8-delta1, hist %v", pos, enc.Patterns)
		}
		got, err := b.Decompress(enc)
		if err != nil || !bytes.Equal(got, line) {
			t.Fatalf("pos %d: round trip failed: %v", pos, err)
		}
	}
}

// C-Pack+Z dictionary is bounded at 16 entries even on adversarial input.
func TestCPackZDictionaryBound(t *testing.T) {
	// All 16 words distinct and non-matching: dictionary exactly fills.
	line := make([]byte, LineSize)
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(line[i*4:], 0x01000000*uint32(i+1)+0x00BEEF00)
	}
	c := NewCPackZ()
	enc := c.Compress(line)
	// 16 distinct new words cost 544 bits -> raw fallback.
	if !enc.Uncompressed {
		t.Fatalf("16 distinct words should overflow to raw (got %d bits)", enc.Bits)
	}
	got, err := c.Decompress(enc)
	if err != nil || !bytes.Equal(got, line) {
		t.Fatal("raw round trip failed")
	}
}
