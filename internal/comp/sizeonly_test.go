package comp

import (
	"bytes"
	"math/rand"
	"testing"
)

// The adaptive controller's sampling phase runs on CompressedBits instead of
// Compress (see internal/core), which is only sound if the two agree bit for
// bit on every line — including the fallback to LineBits. These tests pin
// that equivalence.

func checkSizeAgreement(t *testing.T, c Compressor, line []byte) {
	t.Helper()
	enc := c.Compress(line)
	got := c.CompressedBits(line)
	if got != enc.Bits {
		t.Fatalf("%v: CompressedBits = %d, Compress().Bits = %d", c.Algorithm(), got, enc.Bits)
	}
	if enc.Uncompressed != (got == LineBits) {
		t.Fatalf("%v: Uncompressed=%v but CompressedBits=%d", c.Algorithm(), enc.Uncompressed, got)
	}
}

func TestCompressedBitsMatchesCompress(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	codecs := ExtendedCompressors()
	lines := [][]byte{
		make([]byte, LineSize),
		lineOf64(0x0102030405060708),
		lineOf32(0x7F, 0x80, 0xFFFFFFFF, 0),
		bytes.Repeat([]byte{0xAB}, LineSize),
	}
	for i := 0; i < 2000; i++ {
		lines = append(lines, patternedLine(rng), randomLine(rng))
	}
	for _, c := range codecs {
		for _, line := range lines {
			checkSizeAgreement(t, c, line)
		}
	}
}

// FuzzCompressedBits extends the equivalence over the shared fuzz corpus.
func FuzzCompressedBits(f *testing.F) {
	seedCorpus(f)
	codecs := ExtendedCompressors()
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < LineSize {
			return
		}
		line := data[:LineSize]
		for _, c := range codecs {
			checkSizeAgreement(t, c, line)
		}
	})
}

// TestCompressIntoMatchesCompress: the append-style encoder yields the same
// encoding as Compress, reuses the destination buffer, and the scratch state
// does not leak between lines.
func TestCompressIntoMatchesCompress(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	codecs := ExtendedCompressors()
	var buf []byte
	for i := 0; i < 2000; i++ {
		line := patternedLine(rng)
		if i%3 == 0 {
			line = randomLine(rng)
		}
		for _, c := range codecs {
			want := c.Compress(line)
			got := c.CompressInto(buf[:0], line)
			buf = got.Data
			if got.Bits != want.Bits || got.Uncompressed != want.Uncompressed ||
				got.Patterns != want.Patterns || !bytes.Equal(got.Data, want.Data) {
				t.Fatalf("%v line %d: CompressInto diverges from Compress", c.Algorithm(), i)
			}
			back, err := c.Decompress(got)
			if err != nil {
				t.Fatalf("%v line %d: %v", c.Algorithm(), i, err)
			}
			if !bytes.Equal(back, line) {
				t.Fatalf("%v line %d: CompressInto round trip mismatch", c.Algorithm(), i)
			}
		}
	}
}

// TestDecode: the shared stateless decoder matches per-instance Decompress.
func TestDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, c := range ExtendedCompressors() {
		for i := 0; i < 100; i++ {
			line := patternedLine(rng)
			enc := c.Compress(line)
			got, err := Decode(enc)
			if err != nil {
				t.Fatalf("%v: %v", c.Algorithm(), err)
			}
			if !bytes.Equal(got, line) {
				t.Fatalf("%v: Decode mismatch", c.Algorithm())
			}
		}
	}
	if _, err := Decode(Encoded{Alg: None}); err == nil {
		t.Fatal("Decode(None) should fail")
	}
}
