package comp

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBPCRoundTripPatterned(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	c := NewBPC()
	for i := 0; i < 5000; i++ {
		line := patternedLine(rng)
		enc := c.Compress(line)
		if enc.Bits <= 0 || enc.Bits > LineBits {
			t.Fatalf("iteration %d: Bits = %d", i, enc.Bits)
		}
		got, err := c.Decompress(enc)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if !bytes.Equal(got, line) {
			t.Fatalf("iteration %d: round trip mismatch\n in %x\nout %x", i, line, got)
		}
	}
}

func TestBPCRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	c := NewBPC()
	for i := 0; i < 3000; i++ {
		line := randomLine(rng)
		enc := c.Compress(line)
		got, err := c.Decompress(enc)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if !bytes.Equal(got, line) {
			t.Fatalf("iteration %d: round trip mismatch", i)
		}
	}
}

func TestBPCZeroLine(t *testing.T) {
	c := NewBPC()
	enc := c.Compress(make([]byte, LineSize))
	// base zero (2 bits) + one 33-plane zero run ('01'+5 = 7 bits ... the
	// run caps at 33) = 9 bits.
	if enc.Bits != 9 {
		t.Errorf("zero line = %d bits, want 9", enc.Bits)
	}
	got, err := c.Decompress(enc)
	if err != nil || !bytes.Equal(got, make([]byte, LineSize)) {
		t.Fatal("zero line round trip failed")
	}
}

func TestBPCLinearRampCompressesHard(t *testing.T) {
	// Equal deltas: all DBX planes are zero except where the delta's bit
	// pattern sits, BPC's showcase input.
	line := make([]byte, LineSize)
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(line[i*4:], 1000+uint32(i)*4)
	}
	c := NewBPC()
	enc := c.Compress(line)
	if enc.Bits > 80 {
		t.Errorf("linear ramp = %d bits, want very small", enc.Bits)
	}
	got, err := c.Decompress(enc)
	if err != nil || !bytes.Equal(got, line) {
		t.Fatal("ramp round trip failed")
	}
}

// The paper's related work says bit-plane pre-coding improves inherent
// compressibility: on a noisy ramp BPC should beat all three base codecs.
func TestBPCBeatsBaseCodecsOnNoisyRamp(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	line := make([]byte, LineSize)
	v := uint32(1 << 20)
	for i := 0; i < 16; i++ {
		v += 100 + uint32(rng.Intn(4)) // nearly-constant delta
		binary.LittleEndian.PutUint32(line[i*4:], v)
	}
	bpcBits := NewBPC().Compress(line).Bits
	for _, c := range AllCompressors() {
		if got := c.Compress(line).Bits; bpcBits >= got {
			t.Errorf("BPC (%d bits) should beat %v (%d bits) on noisy ramp", bpcBits, c.Algorithm(), got)
		}
	}
}

func TestBPCTransformInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		line := patternedLine(rng)
		base, dbx := bpcTransform(line)
		return bytes.Equal(bpcInverse(base, dbx), line)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBPCGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	c := NewBPC()
	for i := 0; i < 2000; i++ {
		garbage := make([]byte, rng.Intn(70))
		rng.Read(garbage)
		enc := Encoded{Alg: BPC, Bits: rng.Intn(520), Data: garbage}
		out, err := c.Decompress(enc)
		if err == nil && len(out) != LineSize {
			t.Fatalf("garbage decoded to %d bytes", len(out))
		}
	}
}

func TestBPCInExtendedSet(t *testing.T) {
	ext := ExtendedCompressors()
	if len(ext) != 4 {
		t.Fatalf("ExtendedCompressors has %d codecs", len(ext))
	}
	if ext[3].Algorithm() != BPC {
		t.Error("BPC missing from extended set")
	}
	if len(AllCompressors()) != 3 {
		t.Error("AllCompressors must stay at the paper's three codecs")
	}
	if NewCompressor(BPC) == nil {
		t.Error("NewCompressor(BPC) is nil")
	}
	if BPC.String() != "BPC" {
		t.Errorf("BPC name = %q", BPC.String())
	}
	if CostOf(BPC).CompressionCycles == 0 {
		t.Error("BPC has no cost model")
	}
}

func TestBPCWrongAlgorithmRejected(t *testing.T) {
	enc := NewFPC().Compress(lineOf32(7))
	if _, err := NewBPC().Decompress(enc); err == nil {
		t.Error("BPC accepted FPC data")
	}
}
