package comp

import (
	"fmt"

	"mgpucompress/internal/bitstream"
)

// cpackZ implements C-Pack (Chen et al.) extended with zero-block detection
// (the C-Pack+Z variant of Sardashti & Wood used by the paper), per
// Table II. The codec processes 32-bit words against a 16-entry dictionary
// that starts empty for every line and is rebuilt on the fly during
// decompression, so it never travels with the data:
//
//	00             zero block (whole line)        ->  0 +  2 bits
//	01             zero word                      ->  0 +  2 bits
//	10   + N32     new word, inserted into dict   -> 32 +  2 bits
//	1100 + D4      full word match                ->  4 +  4 bits
//	1101 + D4 N16  halfword match (upper 16 bits) -> 20 +  4 bits
//	1110 + N8      narrow word (upper 24 zero)    ->  8 +  4 bits
//	1111 + D4 N8   three-byte match (upper 24)    -> 12 +  4 bits
//
// Per word the encoder picks the cheapest applicable encoding (zero 2b <
// full match 8b < narrow 12b < 3-byte match 16b < halfword match 24b < new
// word 34b). Only unmatched ("new") words enter the dictionary, which is
// what lets the decompressor reconstruct it deterministically.
type cpackZ struct {
	w bitstream.Writer // encode scratch, reused across lines
}

// NewCPackZ returns the C-Pack+Z codec.
func NewCPackZ() Compressor { return &cpackZ{} }

func (*cpackZ) Algorithm() Algorithm { return CPackZ }

func (*cpackZ) Cost() Cost { return cpackCost }

const cpackDictEntries = 16

// cpack token encodings.
const (
	cpackZeroBlock = 0b00
	cpackZeroWord  = 0b01
	cpackNewWord   = 0b10
	cpackFullMatch = 0b1100
	cpackHalfMatch = 0b1101
	cpackNarrow    = 0b1110
	cpack3BMatch   = 0b1111
)

// cpackMatch describes the best dictionary match for a word.
type cpackMatch struct {
	index int
	kind  int // 0 none, 2 halfword (16 bits), 3 three bytes (24), 4 full word
}

// findMatch scans the dictionary for the longest prefix match on the most
// significant bytes of the word, preferring the lowest index on ties (the
// hardware compares all entries in parallel and a priority encoder picks
// one).
func findMatch(dict []uint32, w uint32) cpackMatch {
	best := cpackMatch{index: -1}
	for i, e := range dict {
		var kind int
		switch {
		case e == w:
			// A full match cannot be beaten, and the lowest index wins
			// ties, so the scan can stop here.
			return cpackMatch{index: i, kind: 4}
		case e>>8 == w>>8:
			kind = 3
		case e>>16 == w>>16:
			kind = 2
		default:
			continue
		}
		if kind > best.kind {
			best = cpackMatch{index: i, kind: kind}
		}
	}
	return best
}

// cpackWordPlan is the chosen encoding for one word.
type cpackWordPlan struct {
	pattern int // Table II pattern number
	bits    int
	match   cpackMatch
}

// planWord picks the cheapest encoding for w given the dictionary.
func planWord(dict []uint32, w uint32) cpackWordPlan {
	if w == 0 {
		return cpackWordPlan{pattern: 2, bits: 2}
	}
	m := findMatch(dict, w)
	narrow := w>>8 == 0 // upper 24 bits zero
	switch {
	case m.kind == 4:
		return cpackWordPlan{pattern: 4, bits: 8, match: m}
	case narrow:
		return cpackWordPlan{pattern: 6, bits: 12}
	case m.kind == 3:
		return cpackWordPlan{pattern: 7, bits: 16, match: m}
	case m.kind == 2:
		return cpackWordPlan{pattern: 5, bits: 24, match: m}
	default:
		return cpackWordPlan{pattern: 3, bits: 34}
	}
}

func (c *cpackZ) Compress(line []byte) Encoded {
	return c.CompressInto(make([]byte, 0, LineSize), line)
}

func (c *cpackZ) CompressInto(dst, line []byte) Encoded {
	checkLine(line)
	w := &c.w
	w.Reset()
	if isZeroLine(line) {
		w.WriteBits(cpackZeroBlock, 2)
		e := Encoded{Alg: CPackZ, Bits: w.Len(), Data: w.AppendTo(dst)}
		e.Patterns[1]++
		return e
	}
	ws := words32(line)
	var hist PatternHistogram
	var dictArr [cpackDictEntries]uint32
	dict := dictArr[:0]
	for _, word := range ws {
		plan := planWord(dict, word)
		hist[plan.pattern]++
		switch plan.pattern {
		case 2:
			w.WriteBits(cpackZeroWord, 2)
		case 3:
			w.WriteBits(cpackNewWord, 2)
			w.WriteBits(uint64(word), 32)
			if len(dict) < cpackDictEntries {
				dict = append(dict, word)
			}
		case 4:
			w.WriteBits(cpackFullMatch, 4)
			w.WriteBits(uint64(plan.match.index), 4)
		case 5:
			w.WriteBits(cpackHalfMatch, 4)
			w.WriteBits(uint64(plan.match.index), 4)
			w.WriteBits(uint64(word&0xFFFF), 16)
		case 6:
			w.WriteBits(cpackNarrow, 4)
			w.WriteBits(uint64(word&0xFF), 8)
		case 7:
			w.WriteBits(cpack3BMatch, 4)
			w.WriteBits(uint64(plan.match.index), 4)
			w.WriteBits(uint64(word&0xFF), 8)
		}
	}
	if w.Len() >= LineBits {
		e := rawEncodedInto(CPackZ, dst, line, 8)
		e.Patterns[8] = 16
		return e
	}
	return Encoded{Alg: CPackZ, Bits: w.Len(), Data: w.AppendTo(dst), Patterns: hist}
}

func (c *cpackZ) CompressedBits(line []byte) int {
	checkLine(line)
	if isZeroLine(line) {
		return 2
	}
	ws := words32(line)
	var dictArr [cpackDictEntries]uint32
	dict := dictArr[:0]
	bits := 0
	for _, word := range ws {
		plan := planWord(dict, word)
		bits += plan.bits
		if plan.pattern == 3 && len(dict) < cpackDictEntries {
			dict = append(dict, word)
		}
	}
	if bits >= LineBits {
		return LineBits
	}
	return bits
}

func (c *cpackZ) Decompress(enc Encoded) ([]byte, error) {
	if enc.Alg != CPackZ {
		return nil, fmt.Errorf("comp: C-Pack+Z decompressor fed %v data", enc.Alg)
	}
	if enc.Uncompressed {
		if len(enc.Data) != LineSize {
			return nil, fmt.Errorf("comp: raw C-Pack+Z line has %d bytes", len(enc.Data))
		}
		return append([]byte(nil), enc.Data...), nil
	}
	r := bitstream.NewReader(enc.Data)
	line := make([]byte, LineSize)
	var dictArr [cpackDictEntries]uint32
	dict := dictArr[:0]
	for word := 0; word < 16; word++ {
		t2, err := r.ReadBits(2)
		if err != nil {
			return nil, err
		}
		var v uint32
		switch t2 {
		case cpackZeroBlock:
			if word == 0 && enc.Bits == 2 {
				return line, nil
			}
			return nil, fmt.Errorf("comp: C-Pack+Z zero-block token inside line at word %d", word)
		case cpackZeroWord:
			v = 0
		case cpackNewWord:
			raw, err := r.ReadBits(32)
			if err != nil {
				return nil, err
			}
			v = uint32(raw)
			if len(dict) < cpackDictEntries {
				dict = append(dict, v)
			}
		default: // 11: read 2 more bits to disambiguate
			lo, err := r.ReadBits(2)
			if err != nil {
				return nil, err
			}
			tok := 0b1100 | lo
			switch tok {
			case cpackFullMatch:
				idx, err := r.ReadBits(4)
				if err != nil {
					return nil, err
				}
				if int(idx) >= len(dict) {
					return nil, fmt.Errorf("comp: C-Pack+Z index %d beyond dictionary of %d", idx, len(dict))
				}
				v = dict[idx]
			case cpackHalfMatch:
				idx, err := r.ReadBits(4)
				if err != nil {
					return nil, err
				}
				low, err := r.ReadBits(16)
				if err != nil {
					return nil, err
				}
				if int(idx) >= len(dict) {
					return nil, fmt.Errorf("comp: C-Pack+Z index %d beyond dictionary of %d", idx, len(dict))
				}
				v = dict[idx]&0xFFFF0000 | uint32(low)
			case cpackNarrow:
				b, err := r.ReadBits(8)
				if err != nil {
					return nil, err
				}
				v = uint32(b)
			case cpack3BMatch:
				idx, err := r.ReadBits(4)
				if err != nil {
					return nil, err
				}
				b, err := r.ReadBits(8)
				if err != nil {
					return nil, err
				}
				if int(idx) >= len(dict) {
					return nil, fmt.Errorf("comp: C-Pack+Z index %d beyond dictionary of %d", idx, len(dict))
				}
				v = dict[idx]&0xFFFFFF00 | uint32(b)
			}
		}
		putWord32(line, word, v)
	}
	if r.Pos() != enc.Bits {
		return nil, fmt.Errorf("comp: C-Pack+Z consumed %d bits, encoding says %d", r.Pos(), enc.Bits)
	}
	return line, nil
}
