// Package comp implements the three hardware memory-compression algorithms
// the paper adopts for inter-GPU link compression — FPC, BDI, and C-Pack+Z —
// as bit-accurate encoders and decoders following Table II, plus their
// latency/energy/area costs from Table III.
//
// All codecs operate on one cache line of 64 bytes (512 bits), the transfer
// granularity of the simulated multi-GPU system. Compress returns the exact
// encoded bitstream; the reported size in bits equals the "Total Data Size
// (data + metadata)" column of Table II summed over the detected patterns.
// If an encoding does not save space, the codec falls back to shipping the
// line uncompressed (pattern 9 for FPC/BDI, pattern 8 for C-Pack+Z), and the
// message-level Comp Alg field (see internal/rdma) distinguishes compressed
// from uncompressed payloads.
package comp

import (
	"encoding/binary"
	"fmt"
)

// LineSize is the cache-line (and inter-GPU transfer) granularity in bytes.
const LineSize = 64

// LineBits is the line size in bits.
const LineBits = LineSize * 8

// Algorithm identifies a compression algorithm. The numeric values are the
// ones carried in the 4-bit "Comp Alg" field of inter-GPU messages; 0 is
// reserved for "not compressed" so receivers can bypass the decompressor.
type Algorithm uint8

// Wire values of the Comp Alg message field. BPC is an extension codec
// (see bpc.go); the paper's system uses only the first four values.
const (
	None Algorithm = iota
	FPC
	BDI
	CPackZ
	bpcWireValue // reserved for the BPC extension; declared in bpc.go
	numAlgorithms
)

// NumAlgorithms is the number of wire-encodable algorithms including None.
const NumAlgorithms = int(numAlgorithms)

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case None:
		return "None"
	case FPC:
		return "FPC"
	case BDI:
		return "BDI"
	case CPackZ:
		return "C-Pack+Z"
	case BPC:
		return "BPC"
	default:
		return fmt.Sprintf("Algorithm(%d)", uint8(a))
	}
}

// MaxPattern is the largest pattern number any codec reports (Table II).
const MaxPattern = 9

// PatternHistogram counts, per Table II pattern number (index 1..9), how
// often each pattern was detected. Index 0 is unused.
type PatternHistogram [MaxPattern + 1]uint64

// Add accumulates another histogram.
func (h *PatternHistogram) Add(o PatternHistogram) {
	for i := range h {
		h[i] += o[i]
	}
}

// Total returns the total number of detections.
func (h *PatternHistogram) Total() uint64 {
	var t uint64
	for _, n := range h {
		t += n
	}
	return t
}

// Top returns the top-k (pattern, share) pairs by count, matching the
// presentation of Table VI. Patterns with zero count are omitted.
func (h *PatternHistogram) Top(k int) []PatternShare {
	total := h.Total()
	var out []PatternShare
	used := make(map[int]bool)
	for len(out) < k {
		best, bestN := 0, uint64(0)
		for p := 1; p <= MaxPattern; p++ {
			if !used[p] && h[p] > bestN {
				best, bestN = p, h[p]
			}
		}
		if best == 0 {
			break
		}
		used[best] = true
		share := 0.0
		if total > 0 {
			share = float64(bestN) / float64(total)
		}
		out = append(out, PatternShare{Pattern: best, Share: share})
	}
	return out
}

// PatternShare is one entry of a Table VI cell: a pattern number and the
// fraction of detections it accounts for.
type PatternShare struct {
	Pattern int
	Share   float64
}

// Encoded is the result of compressing one line.
type Encoded struct {
	Alg Algorithm
	// Bits is the exact compressed size in bits, including per-pattern
	// metadata (prefixes, masks, dictionary indices) but excluding
	// message headers. For an uncompressed fallback it is LineBits.
	Bits int
	// Data is the packed bitstream, zero-padded to a whole byte.
	Data []byte
	// Uncompressed is set when the codec fell back to raw encoding.
	Uncompressed bool
	// Patterns records the detected patterns for Table VI.
	Patterns PatternHistogram
}

// WireBytes is the payload size on the fabric: compressed bits rounded up
// to whole bytes (the message header reserves alignment bits, Sec. VI-B).
func (e Encoded) WireBytes() int { return (e.Bits + 7) / 8 }

// Ratio is the compression ratio for this line (original/compressed), as
// defined in Sec. IV-B.
func (e Encoded) Ratio() float64 { return float64(LineBits) / float64(e.Bits) }

// Compressor compresses and decompresses single cache lines.
//
// Each instance owns reusable encode scratch (a bitstream.Writer and, for
// some codecs, plan buffers), so Compress, CompressInto, and CompressedBits
// are not safe for concurrent use on one instance — give each goroutine its
// own codec (AllCompressors returns fresh instances). Decompress is
// stateless and safe to share.
type Compressor interface {
	// Algorithm returns the wire identifier.
	Algorithm() Algorithm
	// Compress encodes a LineSize-byte line into freshly allocated storage,
	// so the result outlives any further use of the codec.
	Compress(line []byte) Encoded
	// CompressInto encodes like Compress but appends the packed bytes to
	// dst (pass buf[:0] to reuse a buffer); the returned Encoded.Data is
	// the extended slice. Steady-state compression through CompressInto
	// does not allocate.
	CompressInto(dst, line []byte) Encoded
	// CompressedBits returns exactly Compress(line).Bits — including the
	// uncompressed fallback to LineBits — without materializing any
	// bitstream. Size-only consumers (the controller's sampling phase,
	// ratio statistics) run on this path.
	CompressedBits(line []byte) int
	// Decompress reconstructs the original line from enc.Data/enc.Bits.
	Decompress(enc Encoded) ([]byte, error)
	// Cost returns the hardware cost parameters (Table III).
	Cost() Cost
}

// NewCompressor returns the codec for alg, or nil for None.
func NewCompressor(alg Algorithm) Compressor {
	switch alg {
	case FPC:
		return NewFPC()
	case BDI:
		return NewBDI()
	case CPackZ:
		return NewCPackZ()
	case BPC:
		return NewBPC()
	default:
		return nil
	}
}

// AllCompressors returns one instance of each codec the paper evaluates, in
// wire order. The BPC extension is deliberately excluded so reproductions
// match the paper; use ExtendedCompressors for the extension experiments.
func AllCompressors() []Compressor {
	return []Compressor{NewFPC(), NewBDI(), NewCPackZ()}
}

// ExtendedCompressors returns the paper's codecs plus the BPC extension.
func ExtendedCompressors() []Compressor {
	return append(AllCompressors(), NewBPC())
}

func checkLine(line []byte) {
	if len(line) != LineSize {
		panic(fmt.Sprintf("comp: line must be %d bytes, got %d", LineSize, len(line)))
	}
}

func words32(line []byte) [16]uint32 {
	var w [16]uint32
	for i := range w {
		w[i] = binary.LittleEndian.Uint32(line[i*4:])
	}
	return w
}

func words64(line []byte) [8]uint64 {
	var w [8]uint64
	for i := range w {
		w[i] = binary.LittleEndian.Uint64(line[i*8:])
	}
	return w
}

func isZeroLine(line []byte) bool {
	var or uint64
	for i := 0; i < LineSize; i += 8 {
		or |= binary.LittleEndian.Uint64(line[i:])
	}
	return or == 0
}

// rawEncodedInto builds the uncompressed fallback, appending the raw line
// to dst.
func rawEncodedInto(alg Algorithm, dst, line []byte, pattern int) Encoded {
	e := Encoded{
		Alg:          alg,
		Bits:         LineBits,
		Data:         append(dst, line...),
		Uncompressed: true,
	}
	e.Patterns[pattern]++
	return e
}

// decoders are package-shared instances used only for Decompress, which
// never touches per-codec scratch, so sharing them across goroutines is
// safe.
var decoders = [NumAlgorithms]Compressor{
	FPC:    NewFPC(),
	BDI:    NewBDI(),
	CPackZ: NewCPackZ(),
	BPC:    NewBPC(),
}

// Decode decompresses enc with a shared stateless decoder for enc.Alg,
// sparing receive paths a codec allocation per message.
func Decode(enc Encoded) ([]byte, error) {
	if int(enc.Alg) >= len(decoders) || decoders[enc.Alg] == nil {
		return nil, fmt.Errorf("comp: no decoder for algorithm %v", enc.Alg)
	}
	return decoders[enc.Alg].Decompress(enc)
}
