package workloads

import (
	"math"
	"testing"
)

// GD's block sparsity: a meaningful fraction of batch lines must be
// entirely zero (the compressible part) and the rest dense floats.
func TestGDBatchBlockSparsity(t *testing.T) {
	gd := NewGD(ScaleTiny)
	p := testPlatform(nil)
	if err := gd.Setup(p); err != nil {
		t.Fatal(err)
	}
	zeroLines, denseLines := 0, 0
	for _, x := range gd.initX {
		for i := 0; i < len(x); i += wordsPerLine {
			allZero := true
			anyZero := false
			for e := 0; e < wordsPerLine; e++ {
				if x[i+e] == 0 {
					anyZero = true
				} else {
					allZero = false
				}
			}
			if allZero {
				zeroLines++
			} else {
				denseLines++
				if anyZero {
					t.Fatalf("line %d mixes zeros and values: block sparsity broken", i/wordsPerLine)
				}
			}
		}
	}
	frac := float64(zeroLines) / float64(zeroLines+denseLines)
	if frac < 0.15 || frac > 0.4 {
		t.Errorf("zero-line fraction = %.2f, want ≈0.25", frac)
	}
}

// Weight updates must actually move the weights (the gradient step is not a
// no-op) while staying finite.
func TestGDWeightsMoveAndStayFinite(t *testing.T) {
	gd := NewGD(ScaleTiny)
	p := testPlatform(nil)
	if err := gd.Setup(p); err != nil {
		t.Fatal(err)
	}
	if err := gd.Run(p); err != nil {
		t.Fatal(err)
	}
	raw := gd.weights.Read(0, gd.m*4)
	moved := 0
	for j := 0; j < gd.m; j++ {
		got := math.Float32frombits(readU32(raw[j*4:]))
		if math.IsNaN(float64(got)) || math.IsInf(float64(got), 0) {
			t.Fatalf("w[%d] = %v not finite", j, got)
		}
		if got != gd.initW[j] {
			moved++
		}
	}
	if moved < gd.m/4 {
		t.Errorf("only %d/%d weights moved", moved, gd.m)
	}
}

// Four kernels launch for two iterations (grad + reduce each).
func TestGDKernelCount(t *testing.T) {
	gd := NewGD(ScaleTiny)
	p := testPlatform(nil)
	if err := gd.Setup(p); err != nil {
		t.Fatal(err)
	}
	if err := gd.Run(p); err != nil {
		t.Fatal(err)
	}
	if got := int(p.Driver.KernelsLaunched); got != 2*gd.iterations {
		t.Errorf("launched %d kernels, want %d", got, 2*gd.iterations)
	}
}
