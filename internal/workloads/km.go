package workloads

import (
	"fmt"

	"mgpucompress/internal/gpu"
	"mgpucompress/internal/mem"
	"mgpucompress/internal/platform"
)

// KM implements the Table IV KMeans benchmark: iterative clustering of
// sparse quantized feature vectors. Each point line holds 13 features of
// which most are zero; the nonzero slots of a point repeat one value drawn
// from a small quantization vocabulary (a scaled one-hot encoding). Zero
// words plus within-line repeats are C-Pack+Z's best case (full matches at
// 8 bits beat FPC's 19-bit halfwords), reproducing the Table V ordering
// C-Pack+Z 7.8 > FPC 5.6 >> BDI 1.4 — BDI sees only whole-line immediates
// and lands near base4-delta2.
type KM struct {
	seeded
	scale Scale

	n           int // points
	k           int // centroids
	d           int // features per point (words 0..d-1 of its line)
	iterations  int
	pointsPerWG int

	points      mem.Buffer // one line per point
	centroids   mem.Buffer // one line per centroid
	assignments mem.Buffer // one word per point
	partials    mem.Buffer // [wg][k] partial-sum lines

	initPoints    [][]int32 // [point][feature]
	initCentroids [][]int32
}

// NewKM builds the KMeans benchmark.
func NewKM(scale Scale) *KM { return &KM{scale: scale} }

// Abbrev implements Workload.
func (m *KM) Abbrev() string { return "KM" }

// Name implements Workload.
func (m *KM) Name() string { return "KMeans" }

// Description implements Workload.
func (m *KM) Description() string {
	return "An important clustering algorithm widely used in unsupervised machine learning applications."
}

// Setup implements Workload.
func (m *KM) Setup(p *platform.Platform) error {
	r := m.rng(0x6B17)
	m.n = 512 * int(m.scale)
	m.k = 8
	m.d = 13
	m.iterations = 2
	m.pointsPerWG = 16

	// Quantization vocabulary: halfword-range levels spread far apart.
	// Each point is "two-hot": two levels, each repeated in ~2 of its 13
	// slots, the rest zero. Zero words plus within-line repeats are
	// C-Pack+Z's best case; FPC encodes the levels as sign-extended
	// halfwords; and the two distant levels leave BDI only its worst
	// applicable config (base4-delta2).
	vocab := make([]int32, 8)
	for i := range vocab {
		vocab[i] = int32(300 + i*4000 + r.Intn(512))
	}

	m.points = p.Space.AllocStriped(uint64(m.n * mem.LineSize))
	m.initPoints = make([][]int32, m.n)
	for i := 0; i < m.n; i++ {
		line := make([]byte, mem.LineSize)
		feats := make([]int32, m.d)
		lvl1 := vocab[r.Intn(len(vocab))]
		lvl2 := vocab[r.Intn(len(vocab))]
		for c := 0; c < 4; c++ {
			f := r.Intn(m.d)
			if c < 2 {
				feats[f] = lvl1
			} else {
				feats[f] = lvl2
			}
		}
		for f := 0; f < m.d; f++ {
			putU32(line[f*4:], uint32(feats[f]))
		}
		m.initPoints[i] = feats
		m.points.Write(uint64(i)*mem.LineSize, line)
	}

	m.centroids = p.Space.AllocStriped(uint64(m.k * mem.LineSize))
	m.initCentroids = make([][]int32, m.k)
	for c := 0; c < m.k; c++ {
		line := make([]byte, mem.LineSize)
		feats := make([]int32, m.d)
		for f := 0; f < m.d; f++ {
			feats[f] = vocab[r.Intn(len(vocab))]
			putU32(line[f*4:], uint32(feats[f]))
		}
		m.initCentroids[c] = feats
		m.centroids.Write(uint64(c)*mem.LineSize, line)
	}

	m.assignments = p.Space.AllocStriped(uint64(lineAlignedLen(m.n * 4)))
	m.partials = p.Space.AllocStriped(uint64(m.numWGs() * m.k * mem.LineSize))
	return nil
}

func (m *KM) numWGs() int { return m.n / m.pointsPerWG }

// Run implements Workload.
func (m *KM) Run(p *platform.Platform) error {
	for it := 0; it < m.iterations; it++ {
		if err := m.runAssignKernel(p); err != nil {
			return fmt.Errorf("KM iteration %d assign: %w", it, err)
		}
		if err := m.runUpdateKernel(p); err != nil {
			return fmt.Errorf("KM iteration %d update: %w", it, err)
		}
	}
	return nil
}

// runAssignKernel: each workgroup reads the centroid table and its chunk of
// points, assigns each point to the nearest centroid, and writes one
// assignment line plus k partial-sum lines.
func (m *KM) runAssignKernel(p *platform.Platform) error {
	k := &gpu.Kernel{
		Name:          "km_assign",
		NumWorkgroups: m.numWGs(),
		Args: argsBlock(
			[]uint64{m.points.Base(), m.centroids.Base(), m.assignments.Base(), m.partials.Base()},
			[]uint32{uint32(m.n), uint32(m.k), uint32(m.d)},
		),
		Program: func(wg int) [][]gpu.Op {
			cents := make([][]int32, m.k)
			// Read the centroid table first.
			var readCentroids func(c int) []gpu.Op
			var readPoints func(i int, assigns []uint32, sums [][]int32, counts []int32) []gpu.Op

			finish := func(assigns []uint32, sums [][]int32, counts []int32) []gpu.Op {
				ops := []gpu.Op{gpu.ComputeOp{Cycles: m.pointsPerWG * m.k}}
				assignLine := make([]byte, mem.LineSize)
				for e, a := range assigns {
					putU32(assignLine[e*4:], a)
				}
				ops = append(ops, gpu.WriteOp{
					Addr: m.assignments.Addr(uint64(wg*m.pointsPerWG) * 4),
					Data: assignLine,
				})
				for c := 0; c < m.k; c++ {
					line := make([]byte, mem.LineSize)
					for f := 0; f < m.d; f++ {
						putU32(line[f*4:], uint32(sums[c][f]))
					}
					putU32(line[13*4:], uint32(counts[c]))
					ops = append(ops, gpu.WriteOp{
						Addr: m.partials.Addr(uint64(wg*m.k+c) * mem.LineSize),
						Data: line,
					})
				}
				return ops
			}

			readPoints = func(i int, assigns []uint32, sums [][]int32, counts []int32) []gpu.Op {
				if i == m.pointsPerWG {
					return finish(assigns, sums, counts)
				}
				pt := wg*m.pointsPerWG + i
				return []gpu.Op{gpu.ReadOp{
					Addr: m.points.Addr(uint64(pt) * mem.LineSize),
					N:    mem.LineSize,
					Then: func(line []byte) []gpu.Op {
						best, bestDist := 0, int64(1)<<62
						for c := 0; c < m.k; c++ {
							var dist int64
							for f := 0; f < m.d; f++ {
								diff := int64(int32(readU32(line[f*4:]))) - int64(cents[c][f])
								dist += diff * diff
							}
							if dist < bestDist {
								best, bestDist = c, dist
							}
						}
						assigns[i] = uint32(best)
						for f := 0; f < m.d; f++ {
							sums[best][f] += int32(readU32(line[f*4:]))
						}
						counts[best]++
						return readPoints(i+1, assigns, sums, counts)
					},
				}}
			}

			readCentroids = func(c int) []gpu.Op {
				if c == m.k {
					assigns := make([]uint32, m.pointsPerWG)
					sums := make([][]int32, m.k)
					for i := range sums {
						sums[i] = make([]int32, m.d)
					}
					counts := make([]int32, m.k)
					return readPoints(0, assigns, sums, counts)
				}
				return []gpu.Op{gpu.ReadOp{
					Addr: m.centroids.Addr(uint64(c) * mem.LineSize),
					N:    mem.LineSize,
					Then: func(line []byte) []gpu.Op {
						feats := make([]int32, m.d)
						for f := 0; f < m.d; f++ {
							feats[f] = int32(readU32(line[f*4:]))
						}
						cents[c] = feats
						return readCentroids(c + 1)
					},
				}}
			}
			return [][]gpu.Op{readCentroids(0)}
		},
	}
	return p.Driver.Launch(k)
}

// runUpdateKernel: workgroup c gathers every partial-sum line for centroid
// c and writes the averaged centroid.
func (m *KM) runUpdateKernel(p *platform.Platform) error {
	numWGs := m.numWGs()
	k := &gpu.Kernel{
		Name:          "km_update",
		NumWorkgroups: m.k,
		Args: argsBlock(
			[]uint64{m.centroids.Base(), m.partials.Base()},
			[]uint32{uint32(m.k), uint32(numWGs)},
		),
		Program: func(c int) [][]gpu.Op {
			sums := make([]int64, m.d)
			var count int64
			var gather func(wg int) []gpu.Op
			gather = func(wg int) []gpu.Op {
				if wg == numWGs {
					line := make([]byte, mem.LineSize)
					for f := 0; f < m.d; f++ {
						v := int64(0)
						if count > 0 {
							v = sums[f] / count
						}
						putU32(line[f*4:], uint32(int32(v)))
					}
					return []gpu.Op{
						gpu.ComputeOp{Cycles: 8},
						gpu.WriteOp{Addr: m.centroids.Addr(uint64(c) * mem.LineSize), Data: line},
					}
				}
				return []gpu.Op{gpu.ReadOp{
					Addr: m.partials.Addr(uint64(wg*m.k+c) * mem.LineSize),
					N:    mem.LineSize,
					Then: func(line []byte) []gpu.Op {
						for f := 0; f < m.d; f++ {
							sums[f] += int64(int32(readU32(line[f*4:])))
						}
						count += int64(int32(readU32(line[13*4:])))
						return gather(wg + 1)
					},
				}}
			}
			return [][]gpu.Op{gather(0)}
		},
	}
	return p.Driver.Launch(k)
}

// Verify implements Workload.
func (m *KM) Verify(p *platform.Platform) error {
	cents := make([][]int32, m.k)
	for c := range cents {
		cents[c] = append([]int32(nil), m.initCentroids[c]...)
	}
	var lastAssign []uint32
	for it := 0; it < m.iterations; it++ {
		assigns := make([]uint32, m.n)
		sums := make([][]int64, m.k)
		counts := make([]int64, m.k)
		for c := range sums {
			sums[c] = make([]int64, m.d)
		}
		for i := 0; i < m.n; i++ {
			best, bestDist := 0, int64(1)<<62
			for c := 0; c < m.k; c++ {
				var dist int64
				for f := 0; f < m.d; f++ {
					diff := int64(m.initPoints[i][f]) - int64(cents[c][f])
					dist += diff * diff
				}
				if dist < bestDist {
					best, bestDist = c, dist
				}
			}
			assigns[i] = uint32(best)
			for f := 0; f < m.d; f++ {
				sums[best][f] += int64(m.initPoints[i][f])
			}
			counts[best]++
		}
		for c := 0; c < m.k; c++ {
			for f := 0; f < m.d; f++ {
				if counts[c] > 0 {
					cents[c][f] = int32(sums[c][f] / counts[c])
				} else {
					cents[c][f] = 0
				}
			}
		}
		lastAssign = assigns
	}
	raw := m.assignments.Read(0, m.n*4)
	for i := 0; i < m.n; i++ {
		if got := readU32(raw[i*4:]); got != lastAssign[i] {
			return fmt.Errorf("KM: assignment[%d] = %d, want %d", i, got, lastAssign[i])
		}
	}
	for c := 0; c < m.k; c++ {
		line := m.centroids.Read(uint64(c)*mem.LineSize, mem.LineSize)
		for f := 0; f < m.d; f++ {
			if got := int32(readU32(line[f*4:])); got != cents[c][f] {
				return fmt.Errorf("KM: centroid[%d][%d] = %d, want %d", c, f, got, cents[c][f])
			}
		}
	}
	return nil
}
