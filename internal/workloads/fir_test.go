package workloads

import (
	"testing"

	"mgpucompress/internal/mem"
	"mgpucompress/internal/platform"
)

// Impulse-response test: replace the FIR input with a unit impulse and the
// output must reproduce the tap coefficients — the canonical filter
// identity, checked through the full simulated pipeline.
func TestFIRImpulseResponse(t *testing.T) {
	f := NewFIR(ScaleTiny)
	p := testPlatform(nil)
	if err := f.Setup(p); err != nil {
		t.Fatal(err)
	}
	// Overwrite the input with an impulse at sample 0.
	zero := make([]byte, f.n*8)
	f.input.Write(0, zero)
	one := make([]byte, 8)
	one[0] = 1
	f.input.Write(0, one)

	if err := f.Run(p); err != nil {
		t.Fatal(err)
	}
	// y[i] = taps[i] for i < numTaps, 0 after.
	for wg := 0; wg < f.numWGs && wg < 2; wg++ {
		g, outLine := f.outputSlot(p, wg)
		got := f.outputs[g].Read(uint64(outLine)*mem.LineSize, f.linesPerWG*mem.LineSize)
		for s := 0; s < f.linesPerWG; s++ {
			for e := 0; e < firSamplesPerLine; e++ {
				i := (wg*f.linesPerWG+s)*firSamplesPerLine + e
				var want uint64
				if i < f.numTaps {
					want = uint64(f.taps[i])
				}
				var gotV uint64
				for b := 0; b < 8; b++ {
					gotV |= uint64(got[(s*firSamplesPerLine+e)*8+b]) << (8 * b)
				}
				if gotV != want {
					t.Fatalf("impulse response y[%d] = %#x, want %#x (tap)", i, gotV, want)
				}
			}
		}
	}
}

// The FIR sensor samples must be the BDI-friendly / FPC-hostile pattern the
// benchmark is designed around.
func TestFIRInputPattern(t *testing.T) {
	f := NewFIR(ScaleTiny)
	p := testPlatform(nil)
	if err := f.Setup(p); err != nil {
		t.Fatal(err)
	}
	raw := f.input.Read(0, 64)
	for i := 0; i < 8; i++ {
		var v uint64
		for b := 0; b < 8; b++ {
			v |= uint64(raw[i*8+b]) << (8 * b)
		}
		if v>>16 != firDC>>16 {
			t.Errorf("sample %d = %#x does not share the DC prefix %#x", i, v, firDC)
		}
	}
}

func TestFIRTwoKernelsLaunched(t *testing.T) {
	f := NewFIR(ScaleTiny)
	p := testPlatform(nil)
	if err := f.Setup(p); err != nil {
		t.Fatal(err)
	}
	if err := f.Run(p); err != nil {
		t.Fatal(err)
	}
	if got := p.Driver.KernelsLaunched; got != 2 {
		t.Errorf("FIR launched %d kernels, want 2 (setup + filter)", got)
	}
}

func testPlatformGPU1() *platform.Platform {
	cfg := platform.DefaultConfig()
	cfg.CUsPerGPU = 1
	p, _ := platform.Build(cfg)
	return p
}

// FIR must verify even with a single CU per GPU (different workgroup→GPU
// mapping than the default test platform).
func TestFIRSingleCUPerGPU(t *testing.T) {
	f := NewFIR(ScaleTiny)
	p := testPlatformGPU1()
	if err := f.Setup(p); err != nil {
		t.Fatal(err)
	}
	if err := f.Run(p); err != nil {
		t.Fatal(err)
	}
	if err := f.Verify(p); err != nil {
		t.Fatal(err)
	}
}
