package workloads

import (
	"fmt"
	"math/rand"

	"mgpucompress/internal/gpu"
	"mgpucompress/internal/mem"
	"mgpucompress/internal/platform"
)

// FIR implements the Table IV Finite Impulse Response filter. The signal is
// a stream of 64-bit fixed-point sensor samples riding on a large DC
// offset — the low-dynamic-range pattern BDI exploits (Table V shows BDI
// 2.41 vs FPC 1.00 on FIR). The benchmark has two phases, visible as the
// two regimes of Fig. 1c/1d: a setup kernel over tagged index metadata
// (compressible by FPC/C-Pack+Z but not BDI) followed by the filter kernel
// over the DC-offset samples (compressible by BDI, not FPC).
type FIR struct {
	seeded
	scale Scale

	numTaps    int
	taps       []int64
	n          int // samples
	input      mem.Buffer
	indexTab   mem.Buffer
	outputs    []mem.Buffer
	tabLines   int
	linesPerWG int
	numWGs     int
}

// NewFIR builds the FIR benchmark.
func NewFIR(scale Scale) *FIR { return &FIR{scale: scale} }

// Abbrev implements Workload.
func (f *FIR) Abbrev() string { return "FIR" }

// Name implements Workload.
func (f *FIR) Name() string { return "Finite Impulse Response Filter" }

// Description implements Workload.
func (f *FIR) Description() string {
	return "A fundamental algorithm from the digital signal processing domain which has adjacent access pattern."
}

const firSamplesPerLine = mem.LineSize / 8

// firDC is the sensor DC offset: samples vary only in their low 2 bytes.
const firDC = uint64(0x4012340000560000)

func firSample(r *rand.Rand) uint64 {
	return firDC + uint64(r.Intn(32768))
}

// Setup implements Workload.
func (f *FIR) Setup(p *platform.Platform) error {
	r := f.rng(0xF17)
	f.numTaps = 16
	f.taps = make([]int64, f.numTaps)
	for i := range f.taps {
		f.taps[i] = int64(r.Intn(17) - 8)
	}

	f.n = 2048 * int(f.scale)
	f.linesPerWG = 4
	f.numWGs = f.n / firSamplesPerLine / f.linesPerWG

	f.input = p.Space.AllocStriped(uint64(f.n * 8))
	raw := make([]byte, f.n*8)
	for i := 0; i < f.n; i++ {
		putU64(raw[i*8:], firSample(r))
	}
	f.input.Write(0, raw)

	// Index/tag table for the setup phase: word pairs of (small counter,
	// tag<<16) where the tags come from two distant families. FPC encodes
	// both word classes (4-bit / halfword-padded) and C-Pack+Z partially
	// matches the tags, but BDI finds no single base that covers both tag
	// families — the Fig. 1c phase-1 behaviour (FPC and C-Pack+Z compress,
	// BDI cannot).
	// The table is metadata: its size is scale-independent, like the
	// launch/setup structures of a real runtime. 128 lines puts the
	// Fig. 1c phase flip inside the paper's 500-transfer window.
	f.tabLines = 128
	f.indexTab = p.Space.AllocStriped(uint64(f.tabLines * mem.LineSize))
	tab := make([]byte, f.tabLines*mem.LineSize)
	for w := 0; w < len(tab)/4; w++ {
		switch w % 4 {
		case 0, 2:
			putU32(tab[w*4:], uint32(w%16))
		case 1:
			putU32(tab[w*4:], uint32(0x2A00+w%64)<<16)
		case 3:
			putU32(tab[w*4:], uint32(0x0700+w%32)<<16)
		}
	}
	f.indexTab.Write(0, tab)

	perGPU := f.gpuPartitionLines(p) * mem.LineSize
	f.outputs = f.outputs[:0]
	for g := range p.GPUs {
		f.outputs = append(f.outputs, p.Space.AllocOnGPU(g, uint64(perGPU)))
	}
	return nil
}

func (f *FIR) gpuPartitionLines(p *platform.Platform) int {
	totalCUs := p.TotalCUs()
	cusPerGPU := len(p.GPUs[0].CUs)
	return (f.numWGs+totalCUs-1)/totalCUs*cusPerGPU*f.linesPerWG + f.linesPerWG
}

func (f *FIR) outputSlot(p *platform.Platform, wg int) (int, int) {
	totalCUs := p.TotalCUs()
	cusPerGPU := len(p.GPUs[0].CUs)
	cu := wg % totalCUs
	g := cu / cusPerGPU
	rank := wg/totalCUs*cusPerGPU + (cu - g*cusPerGPU)
	return g, rank * f.linesPerWG
}

// Run implements Workload.
func (f *FIR) Run(p *platform.Platform) error {
	if err := f.runSetupKernel(p); err != nil {
		return err
	}
	return f.runFilterKernel(p)
}

// runSetupKernel streams the index table, bumping each counter word —
// phase 1 of Fig. 1c.
func (f *FIR) runSetupKernel(p *platform.Platform) error {
	linesPerWG := 4
	numWGs := (f.tabLines + linesPerWG - 1) / linesPerWG
	k := &gpu.Kernel{
		Name:          "fir_setup",
		NumWorkgroups: numWGs,
		Args:          argsBlock([]uint64{f.indexTab.Base()}, []uint32{uint32(f.tabLines)}),
		Program: func(wg int) [][]gpu.Op {
			var ops []gpu.Op
			for s := 0; s < linesPerWG; s++ {
				line := wg*linesPerWG + s
				if line >= f.tabLines {
					break
				}
				addr := f.indexTab.Addr(uint64(line) * mem.LineSize)
				ops = append(ops, gpu.ReadOp{
					Addr: addr,
					N:    mem.LineSize,
					Then: func(data []byte) []gpu.Op {
						out := append([]byte(nil), data...)
						for w := 0; w < mem.LineSize/4; w += 2 {
							putU32(out[w*4:], readU32(out[w*4:])+1)
						}
						return []gpu.Op{
							gpu.ComputeOp{Cycles: 4},
							gpu.WriteOp{Addr: addr, Data: out},
						}
					},
				})
			}
			return [][]gpu.Op{ops}
		},
	}
	return p.Driver.Launch(k)
}

// runFilterKernel is the FIR filter proper — phase 2 of Fig. 1c.
func (f *FIR) runFilterKernel(p *platform.Platform) error {
	k := &gpu.Kernel{
		Name:          "fir_filter",
		NumWorkgroups: f.numWGs,
		Args: argsBlock(
			[]uint64{f.input.Base(), f.outputs[0].Base()},
			[]uint32{uint32(f.n), uint32(f.numTaps)},
		),
		Program: func(wg int) [][]gpu.Op {
			g, outLine := f.outputSlot(p, wg)
			out := f.outputs[g]
			firstLine := wg * f.linesPerWG
			// Read the chunk plus two halo lines before it, then compute
			// all outputs and write them to the GPU-local partition.
			var lineIdx []int
			for l := firstLine - 2; l < firstLine+f.linesPerWG; l++ {
				if l >= 0 {
					lineIdx = append(lineIdx, l)
				}
			}
			collected := make(map[int][]byte, len(lineIdx))
			var build func(i int) []gpu.Op
			build = func(i int) []gpu.Op {
				if i == len(lineIdx) {
					return f.computeAndWrite(collected, firstLine, out, outLine)
				}
				l := lineIdx[i]
				return []gpu.Op{gpu.ReadOp{
					Addr: f.input.Addr(uint64(l) * mem.LineSize),
					N:    mem.LineSize,
					Then: func(data []byte) []gpu.Op {
						collected[l] = append([]byte(nil), data...)
						return build(i + 1)
					},
				}}
			}
			return [][]gpu.Op{build(0)}
		},
	}
	return p.Driver.Launch(k)
}

func (f *FIR) computeAndWrite(lines map[int][]byte, firstLine int, out mem.Buffer, outLine int) []gpu.Op {
	sample := func(i int) uint64 {
		if i < 0 {
			return 0
		}
		l := i / firSamplesPerLine
		data, ok := lines[l]
		if !ok {
			return 0
		}
		e := i % firSamplesPerLine
		var v uint64
		for b := 0; b < 8; b++ {
			v |= uint64(data[e*8+b]) << (8 * b)
		}
		return v
	}
	ops := []gpu.Op{gpu.ComputeOp{Cycles: 8 * f.linesPerWG * firSamplesPerLine / 4}}
	for s := 0; s < f.linesPerWG; s++ {
		lineData := make([]byte, mem.LineSize)
		for e := 0; e < firSamplesPerLine; e++ {
			i := (firstLine+s)*firSamplesPerLine + e
			var acc uint64
			for t := 0; t < f.numTaps; t++ {
				acc += uint64(f.taps[t]) * sample(i-t)
			}
			putU64(lineData[e*8:], acc)
		}
		ops = append(ops, gpu.WriteOp{
			Addr: out.Addr(uint64(outLine+s) * mem.LineSize),
			Data: lineData,
		})
	}
	return ops
}

// Verify implements Workload.
func (f *FIR) Verify(p *platform.Platform) error {
	raw := f.input.Read(0, f.n*8)
	x := make([]uint64, f.n)
	for i := range x {
		for b := 0; b < 8; b++ {
			x[i] |= uint64(raw[i*8+b]) << (8 * b)
		}
	}
	for wg := 0; wg < f.numWGs; wg++ {
		g, outLine := f.outputSlot(p, wg)
		got := f.outputs[g].Read(uint64(outLine)*mem.LineSize, f.linesPerWG*mem.LineSize)
		for s := 0; s < f.linesPerWG; s++ {
			for e := 0; e < firSamplesPerLine; e++ {
				i := (wg*f.linesPerWG+s)*firSamplesPerLine + e
				var want uint64
				for t := 0; t < f.numTaps; t++ {
					if i-t >= 0 {
						want += uint64(f.taps[t]) * x[i-t]
					}
				}
				var gotV uint64
				for b := 0; b < 8; b++ {
					gotV |= uint64(got[(s*firSamplesPerLine+e)*8+b]) << (8 * b)
				}
				if gotV != want {
					return fmt.Errorf("FIR: y[%d] = %#x, want %#x", i, gotV, want)
				}
			}
		}
	}
	return nil
}
