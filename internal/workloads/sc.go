package workloads

import (
	"fmt"

	"mgpucompress/internal/gpu"
	"mgpucompress/internal/mem"
	"mgpucompress/internal/platform"
)

// SC implements the Table IV Simple Convolution benchmark: a 3×3 integer
// blur over an image with zero-padded margins. The image is partitioned
// across GPUs, and reading the halo pixels outside a tile's boundary is
// exactly the inter-GPU exchange the paper describes. Pixels are smooth
// 18-bit luminance values, so neighboring words share their upper bytes:
// BDI compresses them best (2.69 in Table V), C-Pack+Z partially matches
// them (1.82), and FPC — with no applicable word pattern — ships nearly
// everything raw (1.03). The zero margin lines add fully-compressible
// transfers, and a metadata staging kernel gives SC the phase structure of
// Fig. 1a/1b (C-Pack+Z wins the first phase, BDI the second).
type SC struct {
	seeded
	scale Scale

	w, h       int // image dimensions, excluding padding
	pw         int // padded width (one 16-pixel line of margin each side)
	stage      mem.Buffer
	image      mem.Buffer // padded (h+2) × pw pixels
	outputs    []mem.Buffer
	stageLines int
	rowsPerWG  int
	numWGs     int
}

// NewSC builds the Simple Convolution benchmark.
func NewSC(scale Scale) *SC { return &SC{scale: scale} }

// Abbrev implements Workload.
func (s *SC) Abbrev() string { return "SC" }

// Name implements Workload.
func (s *SC) Name() string { return "Simple Convolution" }

// Description implements Workload.
func (s *SC) Description() string {
	return "An important operation in convolutional neural networks and image processing applications."
}

const pixPerLine = mem.LineSize / 4

// scWeights is the 3×3 blur kernel.
var scWeights = [3][3]int32{{1, 2, 1}, {2, 4, 2}, {1, 2, 1}}

// scPixel is the luminance at unpadded coordinates (x, y): a smooth ramp
// with mild texture, offset so values exceed FPC's halfword range.
func scPixel(x, y int) int32 {
	return 1<<18 + int32(x*3+y*5) + int32((x*x+y*y)%17)
}

// Setup implements Workload.
func (s *SC) Setup(p *platform.Platform) error {
	s.w = 64 * int(s.scale)
	s.h = 64 * int(s.scale)
	s.pw = s.w + 2*pixPerLine
	s.rowsPerWG = 2
	s.numWGs = s.h / s.rowsPerWG

	// Padded image: one zero margin line left and right, one zero row above
	// and below.
	s.image = p.Space.AllocStriped(uint64((s.h + 2) * s.pw * 4))
	row := make([]byte, s.pw*4)
	for y := 0; y < s.h; y++ {
		for i := range row {
			row[i] = 0
		}
		for x := 0; x < s.w; x++ {
			putU32(row[(pixPerLine+x)*4:], uint32(scPixel(x, y)))
		}
		s.image.Write(uint64((y+1)*s.pw)*4, row)
	}

	// Metadata staging table (phase 1): per-tile descriptors where one
	// halfword-range descriptor word repeats ten times (C-Pack+Z inserts
	// it once and full-matches the rest at 8 bits, beating FPC's 19-bit
	// halfword encoding), plus a counter, two distant tag families that
	// defeat BDI's single base, and reserved zeros. This is the Fig. 1a
	// phase-1 behaviour: C-Pack+Z best, FPC second, BDI raw — before the
	// flip to BDI in the pixel phase. Like any launch metadata, the table
	// size does not scale with the image.
	s.stageLines = 128
	s.stage = p.Space.AllocStriped(uint64(s.stageLines * mem.LineSize))
	tab := make([]byte, s.stageLines*mem.LineSize)
	for l := 0; l < s.stageLines; l++ {
		desc := uint32(0x1200 + l%64) // tile descriptor, beyond byte range
		for w := 0; w < 10; w++ {
			putU32(tab[(l*16+w)*4:], desc)
		}
		putU32(tab[(l*16+10)*4:], uint32(l%(s.h/s.rowsPerWG)))
		putU32(tab[(l*16+11)*4:], uint32(0x5C00+l%16)<<16)
		putU32(tab[(l*16+12)*4:], uint32(0x0300+l%8)<<16)
		// words 13..15 stay zero (reserved fields)
	}
	s.stage.Write(0, tab)

	perGPU := s.gpuPartitionBytes(p)
	s.outputs = s.outputs[:0]
	for g := range p.GPUs {
		s.outputs = append(s.outputs, p.Space.AllocOnGPU(g, perGPU))
	}
	return nil
}

func (s *SC) rowBytes() int { return s.w * 4 }

func (s *SC) gpuPartitionBytes(p *platform.Platform) uint64 {
	totalCUs := p.TotalCUs()
	cusPerGPU := len(p.GPUs[0].CUs)
	maxRanks := (s.numWGs+totalCUs-1)/totalCUs*cusPerGPU + 1
	return uint64(maxRanks * s.rowsPerWG * s.rowBytes())
}

func (s *SC) outputSlot(p *platform.Platform, wg int) (gpuIdx int, byteOff uint64) {
	totalCUs := p.TotalCUs()
	cusPerGPU := len(p.GPUs[0].CUs)
	cu := wg % totalCUs
	g := cu / cusPerGPU
	rank := wg/totalCUs*cusPerGPU + (cu - g*cusPerGPU)
	return g, uint64(rank * s.rowsPerWG * s.rowBytes())
}

// paddedAddr returns the address of padded pixel (px, py) where px is in
// [0, pw) and py in [0, h+2).
func (s *SC) paddedAddr(px, py int) uint64 {
	return s.image.Addr(uint64(py*s.pw+px) * 4)
}

// Run implements Workload.
func (s *SC) Run(p *platform.Platform) error {
	if err := s.runStageKernel(p); err != nil {
		return err
	}
	return s.runConvKernel(p)
}

// runStageKernel streams the tile-descriptor table (phase 1 of Fig. 1a).
func (s *SC) runStageKernel(p *platform.Platform) error {
	linesPerWG := 4
	numWGs := (s.stageLines + linesPerWG - 1) / linesPerWG
	k := &gpu.Kernel{
		Name:          "sc_stage",
		NumWorkgroups: numWGs,
		Args:          argsBlock([]uint64{s.stage.Base()}, []uint32{uint32(s.stageLines)}),
		Program: func(wg int) [][]gpu.Op {
			var ops []gpu.Op
			for i := 0; i < linesPerWG; i++ {
				line := wg*linesPerWG + i
				if line >= s.stageLines {
					break
				}
				addr := s.stage.Addr(uint64(line) * mem.LineSize)
				ops = append(ops, gpu.ReadOp{
					Addr: addr,
					N:    mem.LineSize,
					Then: func(data []byte) []gpu.Op {
						out := append([]byte(nil), data...)
						putU32(out[10*4:], readU32(out[10*4:])+1) // visit counter
						return []gpu.Op{
							gpu.ComputeOp{Cycles: 2},
							gpu.WriteOp{Addr: addr, Data: out},
						}
					},
				})
			}
			return [][]gpu.Op{ops}
		},
	}
	return p.Driver.Launch(k)
}

// runConvKernel is the convolution (phase 2). Each workgroup produces
// rowsPerWG output rows; for every output line it gathers the 3×3 halo of
// input lines (9 reads, many remote) and writes one GPU-local output line.
func (s *SC) runConvKernel(p *platform.Platform) error {
	linesPerRow := s.w / pixPerLine
	k := &gpu.Kernel{
		Name:          "sc_conv3x3",
		NumWorkgroups: s.numWGs,
		Args: argsBlock(
			[]uint64{s.image.Base(), s.outputs[0].Base()},
			[]uint32{uint32(s.w), uint32(s.h), 3},
		),
		Program: func(wg int) [][]gpu.Op {
			g, outOff := s.outputSlot(p, wg)
			out := s.outputs[g]
			var ops []gpu.Op
			for r := 0; r < s.rowsPerWG; r++ {
				y := wg*s.rowsPerWG + r
				for lx := 0; lx < linesPerRow; lx++ {
					ops = append(ops, s.convLineOps(y, lx, out,
						outOff+uint64((r*linesPerRow+lx)*mem.LineSize))...)
				}
			}
			return [][]gpu.Op{ops}
		},
	}
	return p.Driver.Launch(k)
}

// convLineOps reads the 9 input lines around output line (y, lx) and
// computes the 16 output pixels.
func (s *SC) convLineOps(y, lx int, out mem.Buffer, outOff uint64) []gpu.Op {
	// Padded coordinates: output pixel (x, y) reads padded rows y..y+2 and
	// padded columns (pixPerLine+x-1)..(pixPerLine+x+1).
	baseCol := pixPerLine + lx*pixPerLine // padded column of output pixel 0
	neighbors := make(map[[2]int][]byte, 9)
	var reads [][2]int
	for dy := 0; dy < 3; dy++ {
		for dl := -1; dl <= 1; dl++ {
			reads = append(reads, [2]int{y + dy, baseCol/pixPerLine + dl})
		}
	}
	var build func(i int) []gpu.Op
	build = func(i int) []gpu.Op {
		if i == len(reads) {
			lineOut := make([]byte, mem.LineSize)
			px := func(col, row int) int32 {
				key := [2]int{row, col / pixPerLine}
				data := neighbors[key]
				e := col % pixPerLine
				return int32(readU32(data[e*4:]))
			}
			for e := 0; e < pixPerLine; e++ {
				var acc int32
				for ky := 0; ky < 3; ky++ {
					for kx := -1; kx <= 1; kx++ {
						acc += scWeights[ky][kx+1] * px(baseCol+e+kx, y+ky)
					}
				}
				putU32(lineOut[e*4:], uint32(acc))
			}
			return []gpu.Op{
				gpu.ComputeOp{Cycles: 18},
				gpu.WriteOp{Addr: out.Addr(outOff), Data: lineOut},
			}
		}
		key := reads[i]
		return []gpu.Op{gpu.ReadOp{
			Addr: s.paddedAddr(key[1]*pixPerLine, key[0]),
			N:    mem.LineSize,
			Then: func(data []byte) []gpu.Op {
				neighbors[key] = append([]byte(nil), data...)
				return build(i + 1)
			},
		}}
	}
	return build(0)
}

// Verify implements Workload.
func (s *SC) Verify(p *platform.Platform) error {
	padded := func(x, y int) int32 {
		if x < 0 || x >= s.w || y < 0 || y >= s.h {
			return 0
		}
		return scPixel(x, y)
	}
	linesPerRow := s.w / pixPerLine
	for wg := 0; wg < s.numWGs; wg++ {
		g, outOff := s.outputSlot(p, wg)
		got := s.outputs[g].Read(outOff, s.rowsPerWG*s.rowBytes())
		for r := 0; r < s.rowsPerWG; r++ {
			y := wg*s.rowsPerWG + r
			for x := 0; x < s.w; x++ {
				var want int32
				for ky := -1; ky <= 1; ky++ {
					for kx := -1; kx <= 1; kx++ {
						want += scWeights[ky+1][kx+1] * padded(x+kx, y+ky)
					}
				}
				gotV := int32(readU32(got[(r*linesPerRow*pixPerLine+x)*4:]))
				if gotV != want {
					return fmt.Errorf("SC: out(%d,%d) = %d, want %d", x, y, gotV, want)
				}
			}
		}
	}
	return nil
}
