package workloads

import (
	"testing"

	"mgpucompress/internal/mem"
)

// Transposing twice is the identity: run MT, then transpose the output back
// with a second platform run and compare against the original input.
func TestMTDoubleTransposeIsIdentity(t *testing.T) {
	mt := NewMT(ScaleTiny)
	p := testPlatform(nil)
	if err := mt.Setup(p); err != nil {
		t.Fatal(err)
	}
	if err := mt.Run(p); err != nil {
		t.Fatal(err)
	}
	// Second transpose: output -> input roles swapped on the same platform.
	back := &MT{scale: mt.scale, n: mt.n, input: mt.output, output: mt.input, init: nil}
	if err := back.Run(p); err != nil {
		t.Fatal(err)
	}
	raw := mt.input.Read(0, mt.n*mt.n*4)
	for i := 0; i < mt.n*mt.n; i++ {
		if got := int32(readU32(raw[i*4:])); got != mt.init[i] {
			t.Fatalf("element %d = %d after double transpose, want %d", i, got, mt.init[i])
		}
	}
}

// Every element must be read exactly once and written exactly once: remote
// reads ≈ remote writes and DRAM traffic is bounded.
func TestMTAccessCounts(t *testing.T) {
	mt := NewMT(ScaleTiny)
	p := testPlatform(nil)
	if err := mt.Setup(p); err != nil {
		t.Fatal(err)
	}
	if err := mt.Run(p); err != nil {
		t.Fatal(err)
	}
	var reads, writes uint64
	for _, dev := range p.GPUs {
		for _, cu := range dev.CUs {
			reads += cu.MemReadsIssued
			writes += cu.MemWritesIssued
		}
	}
	lines := uint64(mt.n * mt.n * 4 / mem.LineSize)
	if reads != lines {
		t.Errorf("CU reads = %d, want exactly %d (one per line)", reads, lines)
	}
	if writes != lines {
		t.Errorf("CU writes = %d, want exactly %d", writes, lines)
	}
}

// The matrix values must stay in the byte range that produces the paper's
// Table V MT ratios.
func TestMTValueRange(t *testing.T) {
	mt := NewMT(ScaleTiny)
	p := testPlatform(nil)
	if err := mt.Setup(p); err != nil {
		t.Fatal(err)
	}
	for _, v := range mt.init {
		if v < 0 || v > 127 {
			t.Fatalf("matrix value %d outside byte range", v)
		}
	}
}
