package workloads

import (
	"fmt"
	"math"

	"mgpucompress/internal/gpu"
	"mgpucompress/internal/mem"
	"mgpucompress/internal/platform"
)

// GD implements the Table IV Gradient Descent benchmark (developed from
// scratch by the paper's authors): data is partitioned into mini-batches
// distributed among the GPUs; each iteration computes per-batch gradients
// in parallel and then the GPUs communicate to average the results. The
// data is single-precision floating point with ReLU-style block sparsity:
// about a quarter of the cache lines are entirely zero and the rest hold
// dense float32 values, so every codec compresses only the zero lines and
// Table V's tight 1.2–1.4 cluster (with FPC slightly ahead) emerges.
type GD struct {
	seeded
	scale Scale

	m          int // features
	rows       int // rows per mini-batch
	iterations int
	linesPerWG int

	weights mem.Buffer
	batches []mem.Buffer // one per GPU
	grads   []mem.Buffer // one per GPU

	initW []float32
	initX [][]float32 // [gpu][row*m+j]
}

// NewGD builds the Gradient Descent benchmark.
func NewGD(scale Scale) *GD { return &GD{scale: scale} }

// Abbrev implements Workload.
func (g *GD) Abbrev() string { return "GD" }

// Name implements Workload.
func (g *GD) Name() string { return "Gradient Descent" }

// Description implements Workload.
func (g *GD) Description() string {
	return "Important algorithm with gather pattern used in optimization problems such as neural networks training."
}

const wordsPerLine = mem.LineSize / 4

// Setup implements Workload.
func (g *GD) Setup(p *platform.Platform) error {
	r := g.rng(0x6D)
	g.m = 1024 * int(g.scale)
	g.rows = 4
	g.iterations = 2
	g.linesPerWG = 4

	g.weights = p.Space.AllocStriped(uint64(g.m * 4))
	g.initW = make([]float32, g.m)
	raww := make([]byte, g.m*4)
	for j := range g.initW {
		g.initW[j] = float32(r.Intn(2001)-1000) / 1000
		putU32(raww[j*4:], math.Float32bits(g.initW[j]))
	}
	g.weights.Write(0, raww)

	numGPUs := len(p.GPUs)
	g.batches = g.batches[:0]
	g.grads = g.grads[:0]
	g.initX = make([][]float32, numGPUs)
	for gp := 0; gp < numGPUs; gp++ {
		batch := p.Space.AllocOnGPU(gp, uint64(g.rows*g.m*4))
		grad := p.Space.AllocOnGPU(gp, uint64(g.m*4))
		g.batches = append(g.batches, batch)
		g.grads = append(g.grads, grad)
		x := make([]float32, g.rows*g.m)
		raw := make([]byte, len(x)*4)
		for i := 0; i < len(x); i += wordsPerLine {
			// ReLU-style block sparsity: ~25% of lines are entirely zero.
			if r.Intn(100) < 25 {
				continue
			}
			for e := 0; e < wordsPerLine; e++ {
				v := r.Intn(2000) - 1000
				if v >= 0 {
					v++ // dense lines stay dense: no exact zeros
				}
				x[i+e] = float32(v) / 1000
			}
		}
		for i, v := range x {
			putU32(raw[i*4:], math.Float32bits(v))
		}
		batch.Write(0, raw)
		g.initX[gp] = x
	}
	return nil
}

func (g *GD) featureLines() int { return g.m / wordsPerLine }

// Run implements Workload.
func (g *GD) Run(p *platform.Platform) error {
	for it := 0; it < g.iterations; it++ {
		if err := g.runGradKernel(p); err != nil {
			return fmt.Errorf("GD iteration %d grad: %w", it, err)
		}
		if err := g.runReduceKernel(p); err != nil {
			return fmt.Errorf("GD iteration %d reduce: %w", it, err)
		}
	}
	return nil
}

// runGradKernel computes grad_b[j] = Σ_i x_b[i][j] · w[j] for each batch b.
// Workgroup w handles batch w % numGPUs, feature chunk w / numGPUs.
func (g *GD) runGradKernel(p *platform.Platform) error {
	numGPUs := len(p.GPUs)
	chunks := g.featureLines() / g.linesPerWG
	k := &gpu.Kernel{
		Name:          "gd_grad",
		NumWorkgroups: chunks * numGPUs,
		Args: argsBlock(
			[]uint64{g.weights.Base(), g.batches[0].Base(), g.grads[0].Base()},
			[]uint32{uint32(g.m), uint32(g.rows)},
		),
		Program: func(wg int) [][]gpu.Op {
			b := wg % numGPUs
			chunk := wg / numGPUs
			firstLine := chunk * g.linesPerWG
			var ops []gpu.Op
			for s := 0; s < g.linesPerWG; s++ {
				line := firstLine + s
				j0 := line * wordsPerLine
				gradAddr := g.grads[b].Addr(uint64(line) * mem.LineSize)
				ops = append(ops, gpu.ReadOp{
					Addr: g.weights.Addr(uint64(line) * mem.LineSize),
					N:    mem.LineSize,
					Then: func(wline []byte) []gpu.Op {
						// Gather the batch rows for this feature range.
						acc := make([]float32, wordsPerLine)
						var rowOps func(row int) []gpu.Op
						rowOps = func(row int) []gpu.Op {
							if row == g.rows {
								out := make([]byte, mem.LineSize)
								for e := 0; e < wordsPerLine; e++ {
									putU32(out[e*4:], math.Float32bits(acc[e]))
								}
								return []gpu.Op{
									gpu.ComputeOp{Cycles: 4},
									gpu.WriteOp{Addr: gradAddr, Data: out},
								}
							}
							return []gpu.Op{gpu.ReadOp{
								Addr: g.batches[b].Addr(uint64(row*g.m+j0) * 4),
								N:    mem.LineSize,
								Then: func(xline []byte) []gpu.Op {
									for e := 0; e < wordsPerLine; e++ {
										x := math.Float32frombits(readU32(xline[e*4:]))
										w := math.Float32frombits(readU32(wline[e*4:]))
										acc[e] += float32(x * w)
									}
									return rowOps(row + 1)
								},
							}}
						}
						return rowOps(0)
					},
				})
			}
			return [][]gpu.Op{ops}
		},
	}
	return p.Driver.Launch(k)
}

// runReduceKernel averages the per-GPU gradients and applies a scaled
// update: w[j] -= (Σ_b grad_b[j]) / numGPUs / 1024, all in float32.
func (g *GD) runReduceKernel(p *platform.Platform) error {
	numGPUs := len(p.GPUs)
	chunks := g.featureLines() / g.linesPerWG
	k := &gpu.Kernel{
		Name:          "gd_reduce",
		NumWorkgroups: chunks,
		Args: argsBlock(
			[]uint64{g.weights.Base(), g.grads[0].Base()},
			[]uint32{uint32(g.m), uint32(numGPUs)},
		),
		Program: func(wg int) [][]gpu.Op {
			firstLine := wg * g.linesPerWG
			var ops []gpu.Op
			for s := 0; s < g.linesPerWG; s++ {
				line := firstLine + s
				wAddr := g.weights.Addr(uint64(line) * mem.LineSize)
				ops = append(ops, gpu.ReadOp{
					Addr: wAddr,
					N:    mem.LineSize,
					Then: func(wline []byte) []gpu.Op {
						sum := make([]float32, wordsPerLine)
						var gatherOps func(b int) []gpu.Op
						gatherOps = func(b int) []gpu.Op {
							if b == numGPUs {
								out := make([]byte, mem.LineSize)
								for e := 0; e < wordsPerLine; e++ {
									w := math.Float32frombits(readU32(wline[e*4:]))
									w -= sum[e] / float32(numGPUs) / 1024
									putU32(out[e*4:], math.Float32bits(w))
								}
								return []gpu.Op{
									gpu.ComputeOp{Cycles: 6},
									gpu.WriteOp{Addr: wAddr, Data: out},
								}
							}
							return []gpu.Op{gpu.ReadOp{
								Addr: g.grads[b].Addr(uint64(line) * mem.LineSize),
								N:    mem.LineSize,
								Then: func(gline []byte) []gpu.Op {
									for e := 0; e < wordsPerLine; e++ {
										sum[e] += math.Float32frombits(readU32(gline[e*4:]))
									}
									return gatherOps(b + 1)
								},
							}}
						}
						return gatherOps(0)
					},
				})
			}
			return [][]gpu.Op{ops}
		},
	}
	return p.Driver.Launch(k)
}

// Verify implements Workload.
func (g *GD) Verify(p *platform.Platform) error {
	numGPUs := len(g.batches)
	w := append([]float32(nil), g.initW...)
	for it := 0; it < g.iterations; it++ {
		grads := make([][]float32, numGPUs)
		for b := 0; b < numGPUs; b++ {
			grads[b] = make([]float32, g.m)
			for j := 0; j < g.m; j++ {
				var acc float32
				for row := 0; row < g.rows; row++ {
					acc += float32(g.initX[b][row*g.m+j] * w[j])
				}
				grads[b][j] = acc
			}
		}
		for j := 0; j < g.m; j++ {
			var sum float32
			for b := 0; b < numGPUs; b++ {
				sum += grads[b][j]
			}
			w[j] -= sum / float32(numGPUs) / 1024
		}
	}
	raw := g.weights.Read(0, g.m*4)
	for j := 0; j < g.m; j++ {
		if got := math.Float32frombits(readU32(raw[j*4:])); math.Float32bits(got) != math.Float32bits(w[j]) {
			return fmt.Errorf("GD: w[%d] = %g, want %g", j, got, w[j])
		}
	}
	return nil
}
