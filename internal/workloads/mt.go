package workloads

import (
	"fmt"

	"mgpucompress/internal/gpu"
	"mgpucompress/internal/mem"
	"mgpucompress/internal/platform"
)

// MT implements the Table IV Matrix Transpose benchmark: a tiled transpose
// of an N×N matrix of byte-range values stored as int32 (image-like data).
// Every element is read once and written once, which reproduces the equal
// remote read/write counts of Table V, and the one-byte value range gives
// the close FPC ≈ 3.1 / BDI ≈ 2.84 / C-Pack+Z ≈ 2.69 ratio ordering: FPC
// stores one sign-extended byte per word (11 bits), BDI uses base4-delta1
// (180 bits/line), and C-Pack+Z uses narrow words (12 bits).
type MT struct {
	seeded
	scale Scale

	n      int // matrix dimension
	input  mem.Buffer
	output mem.Buffer
	init   []int32
}

// NewMT builds the Matrix Transpose benchmark.
func NewMT(scale Scale) *MT { return &MT{scale: scale} }

// Abbrev implements Workload.
func (t *MT) Abbrev() string { return "MT" }

// Name implements Workload.
func (t *MT) Name() string { return "Matrix Transpose" }

// Description implements Workload.
func (t *MT) Description() string {
	return "A fundamental matrix operation that is used in many scientific and engineering applications."
}

const mtTile = 16 // 16×16 elements; one tile row is exactly one line

// Setup implements Workload.
func (t *MT) Setup(p *platform.Platform) error {
	r := t.rng(0x47)
	t.n = 64 * int(t.scale)
	t.input = p.Space.AllocStriped(uint64(t.n * t.n * 4))
	t.output = p.Space.AllocStriped(uint64(t.n * t.n * 4))
	t.init = make([]int32, t.n*t.n)
	raw := make([]byte, t.n*t.n*4)
	for i := range t.init {
		t.init[i] = int32(r.Intn(128)) // unsigned-byte pixels widened to int32
		putU32(raw[i*4:], uint32(t.init[i]))
	}
	t.input.Write(0, raw)
	return nil
}

func (t *MT) elemOff(row, col int) uint64 { return uint64(row*t.n+col) * 4 }

// Run implements Workload: one workgroup per 16×16 tile reads the tile's 16
// lines, transposes in local memory, and writes 16 lines of the transposed
// tile.
func (t *MT) Run(p *platform.Platform) error {
	tiles := t.n / mtTile
	k := &gpu.Kernel{
		Name:          "matrix_transpose",
		NumWorkgroups: tiles * tiles,
		Args: argsBlock(
			[]uint64{t.input.Base(), t.output.Base()},
			[]uint32{uint32(t.n)},
		),
		Program: func(wg int) [][]gpu.Op {
			tr, tc := wg/tiles, wg%tiles
			tile := make([][]byte, mtTile)
			var readRows func(i int) []gpu.Op
			readRows = func(i int) []gpu.Op {
				if i == mtTile {
					ops := []gpu.Op{gpu.ComputeOp{Cycles: 16}}
					for j := 0; j < mtTile; j++ {
						// Output line j of the transposed tile: column j of
						// the input tile.
						line := make([]byte, mem.LineSize)
						for e := 0; e < mtTile; e++ {
							copy(line[e*4:e*4+4], tile[e][j*4:j*4+4])
						}
						ops = append(ops, gpu.WriteOp{
							Addr: t.output.Addr(t.elemOff(tc*mtTile+j, tr*mtTile)),
							Data: line,
						})
					}
					return ops
				}
				return []gpu.Op{gpu.ReadOp{
					Addr: t.input.Addr(t.elemOff(tr*mtTile+i, tc*mtTile)),
					N:    mem.LineSize,
					Then: func(data []byte) []gpu.Op {
						tile[i] = append([]byte(nil), data...)
						return readRows(i + 1)
					},
				}}
			}
			return [][]gpu.Op{readRows(0)}
		},
	}
	return p.Driver.Launch(k)
}

// Verify implements Workload.
func (t *MT) Verify(p *platform.Platform) error {
	raw := t.output.Read(0, t.n*t.n*4)
	for r := 0; r < t.n; r++ {
		for c := 0; c < t.n; c++ {
			got := int32(readU32(raw[(r*t.n+c)*4:]))
			want := t.init[c*t.n+r]
			if got != want {
				return fmt.Errorf("MT: out[%d][%d] = %d, want %d", r, c, got, want)
			}
		}
	}
	return nil
}
