package workloads

import (
	"testing"

	"mgpucompress/internal/comp"
	"mgpucompress/internal/core"
	"mgpucompress/internal/platform"
	"mgpucompress/internal/rdma"
	"mgpucompress/internal/stats"
)

func adaptivePolicyFactory() func(int) core.Policy {
	return func(int) core.Policy { return core.NewAdaptive(core.Config{Lambda: 6}) }
}

func testPlatform(newPolicy func(int) core.Policy) *platform.Platform {
	cfg := platform.DefaultConfig()
	cfg.CUsPerGPU = 2
	cfg.NewPolicy = newPolicy
	p, _ := platform.Build(cfg)
	return p
}

// runAndVerify executes a workload end to end and checks its output.
func runAndVerify(t *testing.T, w Workload, newPolicy func(int) core.Policy) *platform.Platform {
	t.Helper()
	p := testPlatform(newPolicy)
	if err := w.Setup(p); err != nil {
		t.Fatalf("%s setup: %v", w.Abbrev(), err)
	}
	if err := w.Run(p); err != nil {
		t.Fatalf("%s run: %v", w.Abbrev(), err)
	}
	if err := w.Verify(p); err != nil {
		t.Fatalf("%s verify: %v", w.Abbrev(), err)
	}
	return p
}

func TestAllWorkloadsRunAndVerifyUncompressed(t *testing.T) {
	for _, w := range All(ScaleTiny) {
		w := w
		t.Run(w.Abbrev(), func(t *testing.T) {
			p := runAndVerify(t, w, nil)
			if p.Bus.TotalBytes() == 0 {
				t.Error("no fabric traffic")
			}
			if p.ExecCycles() == 0 {
				t.Error("zero execution time")
			}
		})
	}
}

// Compression must never change results: run every workload under every
// static codec and the adaptive policy and verify outputs.
func TestAllWorkloadsCorrectUnderEveryPolicy(t *testing.T) {
	policies := map[string]func(int) core.Policy{
		"FPC":      func(int) core.Policy { return core.NewStatic(comp.FPC) },
		"BDI":      func(int) core.Policy { return core.NewStatic(comp.BDI) },
		"CPackZ":   func(int) core.Policy { return core.NewStatic(comp.CPackZ) },
		"Adaptive": func(int) core.Policy { return core.NewAdaptive(core.Config{Lambda: 6}) },
	}
	for name, newPolicy := range policies {
		name, newPolicy := name, newPolicy
		t.Run(name, func(t *testing.T) {
			for _, w := range All(ScaleTiny) {
				w := w
				t.Run(w.Abbrev(), func(t *testing.T) {
					runAndVerify(t, w, newPolicy)
				})
			}
		})
	}
}

func TestWorkloadMetadata(t *testing.T) {
	all := All(ScaleTiny)
	if len(all) != 7 {
		t.Fatalf("expected 7 benchmarks, got %d", len(all))
	}
	wantOrder := []string{"AES", "BS", "FIR", "GD", "KM", "MT", "SC"}
	for i, w := range all {
		if w.Abbrev() != wantOrder[i] {
			t.Errorf("benchmark %d = %s, want %s", i, w.Abbrev(), wantOrder[i])
		}
		if w.Name() == "" || w.Description() == "" {
			t.Errorf("%s missing metadata", w.Abbrev())
		}
	}
	if _, err := ByAbbrev("KM", ScaleTiny); err != nil {
		t.Error(err)
	}
	if _, err := ByAbbrev("NOPE", ScaleTiny); err == nil {
		t.Error("unknown abbreviation accepted")
	}
}

func TestBSLaunchesManyKernels(t *testing.T) {
	// The paper singles out BS for its very large kernel count
	// (log²n stages).
	bs := NewBS(ScaleTiny)
	p := testPlatform(nil)
	if err := bs.Setup(p); err != nil {
		t.Fatal(err)
	}
	if err := bs.Run(p); err != nil {
		t.Fatal(err)
	}
	if bs.KernelCount() < 50 {
		t.Errorf("BS launched %d kernels, want ≥50 (log²n)", bs.KernelCount())
	}
	other := NewMT(ScaleTiny)
	p2 := testPlatform(nil)
	if err := other.Setup(p2); err != nil {
		t.Fatal(err)
	}
	if err := other.Run(p2); err != nil {
		t.Fatal(err)
	}
	if got := p2.Driver.KernelsLaunched; got != 1 {
		t.Errorf("MT launched %d kernels, want 1", got)
	}
}

// entropyRecorder measures the entropy of the payloads on the wire.
type entropyRecorder struct {
	traffic stats.Traffic
}

func (r *entropyRecorder) RemoteRead(int)  { r.traffic.RemoteReads++ }
func (r *entropyRecorder) RemoteWrite(int) { r.traffic.RemoteWrites++ }
func (r *entropyRecorder) Payload(line []byte, d core.Decision) {
	r.traffic.AddLine(line, d.WireBytes(), d.Alg != comp.None)
}
func (r *entropyRecorder) Header(n int) { r.traffic.HeaderBytes += uint64(n) }

func runWithRecorder(t *testing.T, w Workload) *entropyRecorder {
	t.Helper()
	rec := &entropyRecorder{}
	cfg := platform.DefaultConfig()
	cfg.CUsPerGPU = 2
	cfg.NewRecorder = func(int) rdma.Recorder { return rec }
	p, _ := platform.Build(cfg)
	if err := w.Setup(p); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(p); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(p); err != nil {
		t.Fatal(err)
	}
	return rec
}

// The entropy ordering of Table V: BS < KM < MT < GD/FIR/SC < AES.
func TestWorkloadEntropyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("entropy characterization is slow")
	}
	entropy := map[string]float64{}
	for _, abbrev := range []string{"AES", "BS", "MT"} {
		w, err := ByAbbrev(abbrev, ScaleTiny)
		if err != nil {
			t.Fatal(err)
		}
		rec := runWithRecorder(t, w)
		entropy[abbrev] = rec.traffic.Entropy()
	}
	if entropy["AES"] < 0.8 {
		t.Errorf("AES entropy = %.2f, want ≈1 (paper: 0.96)", entropy["AES"])
	}
	if entropy["BS"] > 0.2 {
		t.Errorf("BS entropy = %.2f, want ≈0 (paper: 0.02)", entropy["BS"])
	}
	if !(entropy["BS"] < entropy["MT"] && entropy["MT"] < entropy["AES"]) {
		t.Errorf("entropy ordering violated: %v", entropy)
	}
}

// Reads must dominate writes for the read-heavy benchmarks, and be roughly
// equal for MT (Table V).
func TestWorkloadReadWriteShape(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization is slow")
	}
	aes := runWithRecorder(t, NewAES(ScaleTiny))
	if aes.traffic.RemoteReads < 5*aes.traffic.RemoteWrites {
		t.Errorf("AES reads/writes = %d/%d, want read-dominated",
			aes.traffic.RemoteReads, aes.traffic.RemoteWrites)
	}
	mt := runWithRecorder(t, NewMT(ScaleTiny))
	ratio := float64(mt.traffic.RemoteReads) / float64(mt.traffic.RemoteWrites)
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("MT reads/writes = %d/%d, want ≈1",
			mt.traffic.RemoteReads, mt.traffic.RemoteWrites)
	}
}
