package workloads

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mgpucompress/internal/gpu"
	"mgpucompress/internal/mem"
	"mgpucompress/internal/platform"
)

// Replay is a trace-driven workload: it executes a memory-access trace
// through the simulated multi-GPU system, so the compression study can be
// applied to traffic captured from any real application — the same
// methodology the paper uses with its OpenCL benchmarks, opened up to
// arbitrary inputs.
//
// Trace format (text, one operation per line, '#' comments):
//
//	G                  start a new workgroup (the first G is implicit)
//	R <offset>         read the 64-byte line at the hex/dec offset
//	W <offset> <hex>   write hex-encoded bytes (≤64) at the offset
//	C <cycles>         compute for the given number of cycles
//
// Offsets are logical positions in one shared buffer striped across the
// GPUs, so a trace captured on any machine exercises remote traffic here.
// Workgroups are dispatched round-robin across all CUs of all GPUs and may
// run concurrently; writes to the same line from different workgroups race
// exactly as they would on hardware.
type Replay struct {
	ops  [][]traceOp // per workgroup
	size uint64

	buf mem.Buffer
	// Initial contents, applied at Setup.
	initial map[uint64][]byte
}

type traceOp struct {
	kind   byte // 'R', 'W', 'C'
	offset uint64
	data   []byte
	cycles int
}

// ParseTrace reads a trace from r.
func ParseTrace(r io.Reader) (*Replay, error) {
	rp := &Replay{initial: make(map[uint64][]byte)}
	var cur []traceOp
	flush := func() {
		if len(cur) > 0 {
			rp.ops = append(rp.ops, cur)
			cur = nil
		}
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch strings.ToUpper(fields[0]) {
		case "G":
			flush()
		case "R":
			if len(fields) != 2 {
				return nil, fmt.Errorf("workloads: trace line %d: R needs an offset", lineNo)
			}
			off, err := parseOffset(fields[1])
			if err != nil {
				return nil, fmt.Errorf("workloads: trace line %d: %v", lineNo, err)
			}
			rp.noteExtent(off + mem.LineSize)
			cur = append(cur, traceOp{kind: 'R', offset: off})
		case "W":
			if len(fields) != 3 {
				return nil, fmt.Errorf("workloads: trace line %d: W needs offset and data", lineNo)
			}
			off, err := parseOffset(fields[1])
			if err != nil {
				return nil, fmt.Errorf("workloads: trace line %d: %v", lineNo, err)
			}
			data, err := hex.DecodeString(fields[2])
			if err != nil {
				return nil, fmt.Errorf("workloads: trace line %d: bad hex data: %v", lineNo, err)
			}
			if len(data) == 0 || len(data) > mem.LineSize {
				return nil, fmt.Errorf("workloads: trace line %d: write of %d bytes", lineNo, len(data))
			}
			rp.noteExtent(off + uint64(len(data)))
			cur = append(cur, traceOp{kind: 'W', offset: off, data: data})
		case "C":
			if len(fields) != 2 {
				return nil, fmt.Errorf("workloads: trace line %d: C needs a cycle count", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("workloads: trace line %d: bad cycle count", lineNo)
			}
			cur = append(cur, traceOp{kind: 'C', cycles: n})
		default:
			return nil, fmt.Errorf("workloads: trace line %d: unknown op %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	if len(rp.ops) == 0 {
		return nil, fmt.Errorf("workloads: empty trace")
	}
	return rp, nil
}

func parseOffset(s string) (uint64, error) {
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 64)
	if err != nil {
		return 0, fmt.Errorf("bad offset %q: %v", s, err)
	}
	return v, nil
}

func (rp *Replay) noteExtent(end uint64) {
	if end > rp.size {
		rp.size = end
	}
}

// SetInitial preloads bytes at a logical offset before the replay starts
// (e.g. the application's input data, so read traffic carries real values).
func (rp *Replay) SetInitial(offset uint64, data []byte) {
	rp.initial[offset] = append([]byte(nil), data...)
	rp.noteExtent(offset + uint64(len(data)))
}

// Abbrev implements Workload.
func (rp *Replay) Abbrev() string { return "TRACE" }

// Name implements Workload.
func (rp *Replay) Name() string { return "Trace Replay" }

// Description implements Workload.
func (rp *Replay) Description() string {
	return "Replays a captured memory-access trace through the multi-GPU system."
}

// Workgroups returns the number of workgroups in the trace.
func (rp *Replay) Workgroups() int { return len(rp.ops) }

// Setup implements Workload.
func (rp *Replay) Setup(p *platform.Platform) error {
	size := rp.size
	if size == 0 {
		size = mem.LineSize
	}
	rp.buf = p.Space.AllocStriped(size + mem.LineSize)
	for off, data := range rp.initial {
		rp.buf.Write(off, data)
	}
	return nil
}

// Run implements Workload: one wavefront per traced workgroup.
func (rp *Replay) Run(p *platform.Platform) error {
	k := &gpu.Kernel{
		Name:          "trace_replay",
		NumWorkgroups: len(rp.ops),
		Args:          argsBlock([]uint64{rp.buf.Base()}, []uint32{uint32(len(rp.ops))}),
		Program: func(wg int) [][]gpu.Op {
			var ops []gpu.Op
			for _, op := range rp.ops[wg] {
				switch op.kind {
				case 'R':
					ops = append(ops, gpu.ReadOp{Addr: rp.buf.Addr(op.offset), N: mem.LineSize})
				case 'W':
					ops = append(ops, gpu.WriteOp{Addr: rp.buf.Addr(op.offset), Data: op.data})
				case 'C':
					ops = append(ops, gpu.ComputeOp{Cycles: op.cycles})
				}
			}
			return [][]gpu.Op{ops}
		},
	}
	return p.Driver.Launch(k)
}

// Verify implements Workload: replay every workgroup's writes in program
// order into a shadow image and compare the bytes each single-writer line
// should hold. Lines written by multiple workgroups race by design (as on
// real hardware) and are skipped.
func (rp *Replay) Verify(p *platform.Platform) error {
	writers := map[uint64]map[int]bool{} // line index -> writing WGs
	shadow := map[uint64]*[mem.LineSize]byte{}
	mask := map[uint64]*[mem.LineSize]bool{}
	for wg, ops := range rp.ops {
		for _, op := range ops {
			if op.kind != 'W' {
				continue
			}
			for i := range op.data {
				pos := op.offset + uint64(i)
				line := pos / mem.LineSize
				if writers[line] == nil {
					writers[line] = map[int]bool{}
					shadow[line] = &[mem.LineSize]byte{}
					mask[line] = &[mem.LineSize]bool{}
				}
				writers[line][wg] = true
				shadow[line][pos%mem.LineSize] = op.data[i]
				mask[line][pos%mem.LineSize] = true
			}
		}
	}
	for line, wgs := range writers {
		if len(wgs) != 1 {
			continue // cross-workgroup race: unverifiable by design
		}
		got := rp.buf.Read(line*mem.LineSize, mem.LineSize)
		for i := 0; i < mem.LineSize; i++ {
			if mask[line][i] && got[i] != shadow[line][i] {
				return fmt.Errorf("TRACE: line %d byte %d holds %#x, want %#x",
					line, i, got[i], shadow[line][i])
			}
		}
	}
	return nil
}
