package workloads

import (
	"testing"
)

// Every assignment written by the device must point at the centroid that is
// genuinely nearest under the final-iteration centroids.
func TestKMAssignmentsAreNearest(t *testing.T) {
	km := NewKM(ScaleTiny)
	p := testPlatform(nil)
	if err := km.Setup(p); err != nil {
		t.Fatal(err)
	}
	if err := km.Run(p); err != nil {
		t.Fatal(err)
	}
	// Recompute the centroids the last assign kernel saw (after
	// iterations-1 updates) on the host.
	cents := make([][]int64, km.k)
	for c := range cents {
		cents[c] = make([]int64, km.d)
		for f := 0; f < km.d; f++ {
			cents[c][f] = int64(km.initCentroids[c][f])
		}
	}
	for it := 0; it < km.iterations-1; it++ {
		sums := make([][]int64, km.k)
		counts := make([]int64, km.k)
		for c := range sums {
			sums[c] = make([]int64, km.d)
		}
		for i := 0; i < km.n; i++ {
			best := nearest(km.initPoints[i], cents)
			for f := 0; f < km.d; f++ {
				sums[best][f] += int64(km.initPoints[i][f])
			}
			counts[best]++
		}
		for c := 0; c < km.k; c++ {
			for f := 0; f < km.d; f++ {
				if counts[c] > 0 {
					cents[c][f] = sums[c][f] / counts[c]
				} else {
					cents[c][f] = 0
				}
			}
		}
	}
	raw := km.assignments.Read(0, km.n*4)
	for i := 0; i < km.n; i++ {
		got := int(readU32(raw[i*4:]))
		want := nearest(km.initPoints[i], cents)
		if got != want {
			t.Fatalf("point %d assigned to %d, nearest is %d", i, got, want)
		}
	}
}

func nearest(point []int32, cents [][]int64) int {
	best, bestDist := 0, int64(1)<<62
	for c := range cents {
		var dist int64
		for f := range point {
			diff := int64(point[f]) - cents[c][f]
			dist += diff * diff
		}
		if dist < bestDist {
			best, bestDist = c, dist
		}
	}
	return best
}

// KM points must be the two-hot sparse layout that produces the Table V
// ratios: at most two distinct nonzero values per point, all in the
// halfword range.
func TestKMPointLayout(t *testing.T) {
	km := NewKM(ScaleTiny)
	p := testPlatform(nil)
	if err := km.Setup(p); err != nil {
		t.Fatal(err)
	}
	for i, feats := range km.initPoints {
		distinct := map[int32]bool{}
		zeros := 0
		for _, v := range feats {
			if v == 0 {
				zeros++
				continue
			}
			if v < 256 || v > 32767 {
				t.Fatalf("point %d value %d outside halfword range", i, v)
			}
			distinct[v] = true
		}
		if len(distinct) > 2 {
			t.Fatalf("point %d has %d distinct levels, want ≤2", i, len(distinct))
		}
		if zeros < km.d/2 {
			t.Fatalf("point %d has only %d zeros of %d", i, zeros, km.d)
		}
	}
}
