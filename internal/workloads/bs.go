package workloads

import (
	"fmt"
	"sort"

	"mgpucompress/internal/gpu"
	"mgpucompress/internal/mem"
	"mgpucompress/internal/platform"
)

// BS implements the Table IV Bitonic Sort benchmark. Bitonic sort launches
// log²(n) kernels over a modest input — the structure the paper highlights:
// a very large number of kernel launches whose zero-heavy metadata and
// sparse data make BS the most compressible benchmark (entropy 0.02). The
// input models a sparse key array: mostly zeros with a scattering of small
// keys, sorted in ascending order.
type BS struct {
	seeded
	scale Scale

	n       int // element count, power of two
	data    mem.Buffer
	initial []uint32
	kernels int
}

// NewBS builds the Bitonic Sort benchmark.
func NewBS(scale Scale) *BS { return &BS{scale: scale} }

// Abbrev implements Workload.
func (b *BS) Abbrev() string { return "BS" }

// Name implements Workload.
func (b *BS) Name() string { return "Bitonic Sort" }

// Description implements Workload.
func (b *BS) Description() string {
	return "Sorting algorithm with a irregular access pattern, suits the GPU's massively parallel architecture."
}

const elemsPerLine = mem.LineSize / 4

// Setup implements Workload.
func (b *BS) Setup(p *platform.Platform) error {
	b.n = 1024 * int(b.scale)
	if b.n&(b.n-1) != 0 {
		// Round up to a power of two.
		v := 1
		for v < b.n {
			v <<= 1
		}
		b.n = v
	}
	r := b.rng(0xB5)
	b.initial = make([]uint32, b.n)
	// Very sparse keys (~5% nonzero) arranged in small runs of equal
	// values, with each key a bucket tag shifted into the upper halfword —
	// the zero-dominated, metadata-like content the paper reports for BS
	// (entropy 0.02). All-zero lines favor C-Pack+Z (2 bits) over FPC
	// (3 bits); on the sparse lines C-Pack+Z full-matches the repeated
	// keys, FPC uses its halfword-padded pattern, and BDI — faced with
	// multiple distant bases — ships many of them raw. Together this
	// reproduces the Table V ordering C-Pack+Z 37 > FPC 32 >> BDI 10.
	vocab := make([]uint32, 24)
	for i := range vocab {
		vocab[i] = uint32(256+r.Intn(3840)) << 16
	}
	for i := 0; i < b.n; {
		if r.Intn(1000) < 18 {
			key := vocab[r.Intn(len(vocab))]
			run := 2 + r.Intn(3)
			for j := 0; j < run && i < b.n; j++ {
				b.initial[i] = key
				i++
			}
		} else {
			i++
		}
	}
	b.data = p.Space.AllocStriped(uint64(b.n * 4))
	raw := make([]byte, b.n*4)
	for i, v := range b.initial {
		putU32(raw[i*4:], v)
	}
	b.data.Write(0, raw)
	return nil
}

// Run implements Workload: the classic bitonic network, one kernel per
// (k, j) stage pair.
func (b *BS) Run(p *platform.Platform) error {
	b.kernels = 0
	for k := 2; k <= b.n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			if err := b.launchStage(p, k, j); err != nil {
				return fmt.Errorf("BS stage k=%d j=%d: %w", k, j, err)
			}
			b.kernels++
		}
	}
	return nil
}

// KernelCount returns the number of kernels the last Run launched.
func (b *BS) KernelCount() int { return b.kernels }

func (b *BS) launchStage(p *platform.Platform, k, j int) error {
	lines := b.n / elemsPerLine
	// Owner lines: for j spanning lines, only the lower line of each pair
	// runs the exchange; for intra-line j, every line runs it.
	lineJ := j / elemsPerLine
	var owners []int
	for la := 0; la < lines; la++ {
		if lineJ == 0 || la&lineJ == 0 {
			owners = append(owners, la)
		}
	}
	linesPerWG := 4
	numWGs := (len(owners) + linesPerWG - 1) / linesPerWG

	kern := &gpu.Kernel{
		Name:          fmt.Sprintf("bitonic_k%d_j%d", k, j),
		NumWorkgroups: numWGs,
		Args: argsBlock(
			[]uint64{b.data.Base()},
			[]uint32{uint32(b.n), uint32(k), uint32(j)},
		),
		Program: func(wg int) [][]gpu.Op {
			var ops []gpu.Op
			for s := 0; s < linesPerWG; s++ {
				idx := wg*linesPerWG + s
				if idx >= len(owners) {
					break
				}
				la := owners[idx]
				if lineJ == 0 {
					ops = append(ops, b.intraLineOps(la, k, j)...)
				} else {
					ops = append(ops, b.crossLineOps(la, la^lineJ, k, j)...)
				}
			}
			return [][]gpu.Op{ops}
		},
	}
	return p.Driver.Launch(kern)
}

// intraLineOps exchanges partners that live within one line.
func (b *BS) intraLineOps(la, k, j int) []gpu.Op {
	addr := b.data.Addr(uint64(la) * mem.LineSize)
	return []gpu.Op{gpu.ReadOp{
		Addr: addr,
		N:    mem.LineSize,
		Then: func(data []byte) []gpu.Op {
			out := append([]byte(nil), data...)
			for e := 0; e < elemsPerLine; e++ {
				i := la*elemsPerLine + e
				partner := i ^ j
				if partner <= i || partner/elemsPerLine != la {
					continue
				}
				pe := partner % elemsPerLine
				a := readU32(out[e*4:])
				c := readU32(out[pe*4:])
				if (i&k == 0) == (a > c) {
					putU32(out[e*4:], c)
					putU32(out[pe*4:], a)
				}
			}
			return []gpu.Op{
				gpu.ComputeOp{Cycles: 8},
				gpu.WriteOp{Addr: addr, Data: out},
			}
		},
	}}
}

// crossLineOps exchanges partners split across two lines.
func (b *BS) crossLineOps(la, lb, k, j int) []gpu.Op {
	addrA := b.data.Addr(uint64(la) * mem.LineSize)
	addrB := b.data.Addr(uint64(lb) * mem.LineSize)
	return []gpu.Op{gpu.ReadOp{
		Addr: addrA,
		N:    mem.LineSize,
		Then: func(dataA []byte) []gpu.Op {
			a := append([]byte(nil), dataA...)
			return []gpu.Op{gpu.ReadOp{
				Addr: addrB,
				N:    mem.LineSize,
				Then: func(dataB []byte) []gpu.Op {
					bb := append([]byte(nil), dataB...)
					for e := 0; e < elemsPerLine; e++ {
						i := la*elemsPerLine + e
						va := readU32(a[e*4:])
						vb := readU32(bb[e*4:])
						if (i&k == 0) == (va > vb) {
							putU32(a[e*4:], vb)
							putU32(bb[e*4:], va)
						}
					}
					return []gpu.Op{
						gpu.ComputeOp{Cycles: 8},
						gpu.WriteOp{Addr: addrA, Data: a},
						gpu.WriteOp{Addr: addrB, Data: bb},
					}
				},
			}}
		},
	}}
}

// Verify implements Workload.
func (b *BS) Verify(p *platform.Platform) error {
	raw := b.data.Read(0, b.n*4)
	got := make([]uint32, b.n)
	for i := range got {
		got[i] = readU32(raw[i*4:])
	}
	want := append([]uint32(nil), b.initial...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("BS: element %d = %d, want %d", i, got[i], want[i])
		}
	}
	return nil
}
