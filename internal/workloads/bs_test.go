package workloads

import (
	"math/bits"
	"testing"
)

// Bitonic sort launches exactly log(n)·(log(n)+1)/2 kernels.
func TestBSKernelCountFormula(t *testing.T) {
	bs := NewBS(ScaleTiny)
	p := testPlatform(nil)
	if err := bs.Setup(p); err != nil {
		t.Fatal(err)
	}
	if err := bs.Run(p); err != nil {
		t.Fatal(err)
	}
	logN := bits.Len(uint(bs.n)) - 1
	want := logN * (logN + 1) / 2
	if bs.KernelCount() != want {
		t.Errorf("kernel count = %d, want %d for n=%d", bs.KernelCount(), want, bs.n)
	}
	if got := int(p.Driver.KernelsLaunched); got != want {
		t.Errorf("driver launches = %d, want %d", got, want)
	}
}

// The result must be a permutation of the input (no elements invented or
// lost), beyond being sorted.
func TestBSOutputIsPermutation(t *testing.T) {
	bs := NewBS(ScaleTiny)
	p := testPlatform(nil)
	if err := bs.Setup(p); err != nil {
		t.Fatal(err)
	}
	wantCounts := map[uint32]int{}
	for _, v := range bs.initial {
		wantCounts[v]++
	}
	if err := bs.Run(p); err != nil {
		t.Fatal(err)
	}
	raw := bs.data.Read(0, bs.n*4)
	gotCounts := map[uint32]int{}
	prev := uint32(0)
	for i := 0; i < bs.n; i++ {
		v := readU32(raw[i*4:])
		gotCounts[v]++
		if v < prev {
			t.Fatalf("output not sorted at %d: %d < %d", i, v, prev)
		}
		prev = v
	}
	for v, n := range wantCounts {
		if gotCounts[v] != n {
			t.Fatalf("value %d appears %d times, want %d", v, gotCounts[v], n)
		}
	}
}

// The input must be the sparse zero-heavy distribution the paper describes
// (entropy 0.02) — most elements zero, nonzeros from a small key set in the
// upper halfword.
func TestBSInputDistribution(t *testing.T) {
	bs := NewBS(ScaleSmall)
	p := testPlatform(nil)
	if err := bs.Setup(p); err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, v := range bs.initial {
		if v == 0 {
			zeros++
			continue
		}
		if v&0xFFFF != 0 {
			t.Fatalf("key %#x has nonzero low halfword", v)
		}
	}
	frac := float64(zeros) / float64(bs.n)
	if frac < 0.85 {
		t.Errorf("zero fraction = %.2f, want ≫ 0.85", frac)
	}
}

// The element count is forced to a power of two (bitonic requirement).
func TestBSPowerOfTwoSize(t *testing.T) {
	for _, scale := range []Scale{1, 3, 5} {
		bs := NewBS(scale)
		p := testPlatform(nil)
		if err := bs.Setup(p); err != nil {
			t.Fatal(err)
		}
		if bs.n&(bs.n-1) != 0 {
			t.Errorf("scale %d: n=%d not a power of two", scale, bs.n)
		}
	}
}
