package workloads

import (
	"testing"

	"mgpucompress/internal/mem"
)

// The zero margins must surround the image exactly: one padded row above
// and below, one padded line left and right.
func TestSCMarginsAreZero(t *testing.T) {
	sc := NewSC(ScaleTiny)
	p := testPlatform(nil)
	if err := sc.Setup(p); err != nil {
		t.Fatal(err)
	}
	// Top and bottom padded rows.
	for _, py := range []int{0, sc.h + 1} {
		row := sc.image.Read(uint64(py*sc.pw)*4, sc.pw*4)
		for i, b := range row {
			if b != 0 {
				t.Fatalf("padded row %d byte %d nonzero", py, i)
			}
		}
	}
	// Left and right margin lines of an interior row.
	py := sc.h / 2
	left := sc.image.Read(uint64(py*sc.pw)*4, pixPerLine*4)
	right := sc.image.Read(uint64(py*sc.pw+pixPerLine+sc.w)*4, pixPerLine*4)
	for i := range left {
		if left[i] != 0 || right[i] != 0 {
			t.Fatalf("margin byte %d of row %d nonzero", i, py)
		}
	}
	// And the interior must not be zero.
	inner := sc.image.Read(uint64(py*sc.pw+pixPerLine)*4, 4)
	if readU32(inner) == 0 {
		t.Error("interior pixel is zero")
	}
}

// Border output pixels must incorporate the zero padding: the blur of a
// corner pixel uses 4 zero neighbors.
func TestSCBorderPixelsUseZeroPadding(t *testing.T) {
	sc := NewSC(ScaleTiny)
	p := testPlatform(nil)
	if err := sc.Setup(p); err != nil {
		t.Fatal(err)
	}
	if err := sc.Run(p); err != nil {
		t.Fatal(err)
	}
	// Corner (0,0): neighbors (-1,·) and (·,-1) are zero.
	want := 4*scPixel(0, 0) + 2*scPixel(1, 0) + 2*scPixel(0, 1) + scPixel(1, 1)
	g, outOff := sc.outputSlot(p, 0)
	got := int32(readU32(sc.outputs[g].Read(outOff, 4)))
	if got != want {
		t.Errorf("corner output = %d, want %d", got, want)
	}
}

// Conservation under a box blur: the sum of all outputs equals the sum of
// inputs weighted by how many taps see each pixel (16 for interior pixels).
func TestSCInteriorWeightSum(t *testing.T) {
	sc := NewSC(ScaleTiny)
	p := testPlatform(nil)
	if err := sc.Setup(p); err != nil {
		t.Fatal(err)
	}
	if err := sc.Run(p); err != nil {
		t.Fatal(err)
	}
	// Check one interior pixel against the 16×-center identity for a
	// uniform region: use the kernel weights directly instead.
	x, y := sc.w/2, sc.h/2
	var want int32
	for ky := -1; ky <= 1; ky++ {
		for kx := -1; kx <= 1; kx++ {
			want += scWeights[ky+1][kx+1] * scPixel(x+kx, y+ky)
		}
	}
	wg := y / sc.rowsPerWG
	r := y % sc.rowsPerWG
	g, outOff := sc.outputSlot(p, wg)
	lineOff := outOff + uint64((r*(sc.w/pixPerLine)+x/pixPerLine)*mem.LineSize)
	got := int32(readU32(sc.outputs[g].Read(lineOff+uint64(x%pixPerLine)*4, 4)))
	if got != want {
		t.Errorf("interior output(%d,%d) = %d, want %d", x, y, got, want)
	}
}

// The stage table must be the BDI-hostile / C-Pack+Z-friendly mix of
// Fig. 1a's first phase.
func TestSCStageTablePattern(t *testing.T) {
	sc := NewSC(ScaleTiny)
	p := testPlatform(nil)
	if err := sc.Setup(p); err != nil {
		t.Fatal(err)
	}
	line := sc.stage.Read(0, mem.LineSize)
	desc := readU32(line)
	if desc < 256 || desc > 0xFFFF {
		t.Errorf("descriptor %#x not in halfword range", desc)
	}
	for w := 1; w < 10; w++ {
		if readU32(line[w*4:]) != desc {
			t.Errorf("descriptor word %d differs: C-Pack+Z full-match setup broken", w)
		}
	}
	tagA, tagB := readU32(line[11*4:]), readU32(line[12*4:])
	if tagA&0xFFFF != 0 || tagB&0xFFFF != 0 {
		t.Error("tags must be halfword-shifted")
	}
	if tagA>>24 == tagB>>24 {
		t.Error("tag families must be distant (BDI-hostile)")
	}
}
