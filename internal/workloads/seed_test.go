package workloads

import (
	"bytes"
	"testing"

	"mgpucompress/internal/mem"
)

// aesInputBytes generates AES at ScaleTiny under the given seed steps and
// returns the raw plaintext input buffer it wrote to device memory.
func aesInputBytes(t *testing.T, seed int64, setSeed bool) []byte {
	t.Helper()
	a := NewAES(ScaleTiny)
	if setSeed {
		var s Seeder = a // every benchmark must satisfy the interface
		s.SetSeed(seed)
	}
	p := testPlatform(nil)
	if err := a.Setup(p); err != nil {
		t.Fatalf("setup: %v", err)
	}
	return a.input.Read(0, a.totalLines*mem.LineSize)
}

// TestSameSeedByteIdentical: two generations under the same non-zero seed
// must produce byte-identical device inputs — the property the sweep cache
// relies on when it treats a JobKey fingerprint as naming one simulation.
func TestSameSeedByteIdentical(t *testing.T) {
	first := aesInputBytes(t, 12345, true)
	second := aesInputBytes(t, 12345, true)
	if !bytes.Equal(first, second) {
		t.Fatal("same seed produced different input bytes")
	}
	other := aesInputBytes(t, 54321, true)
	if bytes.Equal(first, other) {
		t.Fatal("different seeds produced identical input bytes")
	}
}

// TestZeroSeedIsDefaultStream: SetSeed(0) must reduce to the historical
// fixed-salt stream, so pre-seed artifacts stay reproducible.
func TestZeroSeedIsDefaultStream(t *testing.T) {
	def := aesInputBytes(t, 0, false)
	zero := aesInputBytes(t, 0, true)
	if !bytes.Equal(def, zero) {
		t.Fatal("SetSeed(0) changed the default input stream")
	}
}

// TestAllWorkloadsImplementSeeder keeps the Seeder guarantee in the
// package doc honest for every Table IV benchmark.
func TestAllWorkloadsImplementSeeder(t *testing.T) {
	for _, w := range All(ScaleTiny) {
		if _, ok := w.(Seeder); !ok {
			t.Errorf("%s does not implement Seeder", w.Abbrev())
		}
	}
}
