// Package workloads implements the seven multi-GPU benchmarks of Table IV
// (AES, BS, FIR, GD, KM, MT, SC) on top of the simulated platform. Each
// benchmark performs its real computation — outputs are verified against a
// host-side reference — while its memory traffic flows through the caches,
// RDMA engines and the fabric, so the bytes crossing the inter-GPU links
// carry the value distributions that drive the paper's compression results.
//
// The paper's exact OpenCL inputs are unpublished; inputs here are synthetic
// but follow the data-pattern families the paper attributes to each
// benchmark (Secs. IV-B and VII-A): random ciphertext-like data for AES,
// sparse near-zero data for BS, DC-offset sensor samples for FIR, sparse
// float gradients for GD, narrow quantized features for KM, byte-range
// pixels for MT, and smooth low-dynamic-range images with zero margins for
// SC. DESIGN.md documents each substitution.
package workloads

import (
	"fmt"
	"math/rand"

	"mgpucompress/internal/mem"
	"mgpucompress/internal/platform"
)

// Workload is one multi-GPU benchmark.
type Workload interface {
	// Abbrev returns the Table IV abbreviation (AES, BS, ...).
	Abbrev() string
	// Name returns the full benchmark name.
	Name() string
	// Description matches Table IV.
	Description() string
	// Setup allocates and initializes device buffers.
	Setup(p *platform.Platform) error
	// Run launches the benchmark's kernels to completion.
	Run(p *platform.Platform) error
	// Verify checks the computation's output against a host reference.
	Verify(p *platform.Platform) error
}

// Scale selects the input size. Test uses a small scale so the full suite
// runs in seconds; benchmarks use larger scales.
type Scale int

// Predefined scales.
const (
	ScaleTiny  Scale = 1 // unit tests
	ScaleSmall Scale = 4 // experiment default
	ScaleLarge Scale = 16
)

// All returns the seven benchmarks of Table IV at the given scale, in the
// paper's order.
func All(scale Scale) []Workload {
	return []Workload{
		NewAES(scale),
		NewBS(scale),
		NewFIR(scale),
		NewGD(scale),
		NewKM(scale),
		NewMT(scale),
		NewSC(scale),
	}
}

// ByAbbrev returns the workload with the given abbreviation.
func ByAbbrev(abbrev string, scale Scale) (Workload, error) {
	for _, w := range All(scale) {
		if w.Abbrev() == abbrev {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q", abbrev)
}

// gpuOfWG returns the GPU a workgroup lands on under the driver's
// round-robin-over-all-CUs dispatch. Workloads use it to place per-GPU
// output partitions locally.
func gpuOfWG(p *platform.Platform, wg int) int {
	totalCUs := p.TotalCUs()
	cusPerGPU := len(p.GPUs[0].CUs)
	return (wg % totalCUs) / cusPerGPU
}

// argsBlock builds a kernel argument block the way an OpenCL runtime lays
// one out: 64-bit buffer pointers, 32-bit sizes, and alignment padding.
// Most of the bytes are zero (small sizes, page-aligned pointers), which is
// the launch-metadata compressibility the paper highlights for BS.
func argsBlock(ptrs []uint64, sizes []uint32) []byte {
	out := make([]byte, 0, len(ptrs)*8+len(sizes)*8)
	for _, p := range ptrs {
		var b [8]byte
		putU64(b[:], p)
		out = append(out, b[:]...)
	}
	for _, s := range sizes {
		var b [8]byte // 32-bit value in an 8-byte aligned slot
		putU32(b[:], s)
		out = append(out, b[:]...)
	}
	return out
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func putU32(b []byte, v uint32) {
	for i := 0; i < 4; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func readU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// lineAlignedLen rounds n up to whole cache lines.
func lineAlignedLen(n int) int {
	if r := n % mem.LineSize; r != 0 {
		return n + mem.LineSize - r
	}
	return n
}

// Seeder is implemented by workloads whose input generation can be rebased
// onto the sweep-derived per-job seed (sweep.JobKey.Seed, plumbed through
// runner.Options.Seed). All Table IV benchmarks implement it.
type Seeder interface {
	// SetSeed rebases the workload's random streams. Zero keeps the
	// workload's fixed default stream, preserving historical artifacts.
	SetSeed(seed int64)
}

// seeded is embedded by every benchmark: it carries the per-job seed and
// hands out deterministic rand streams. There is deliberately no
// package-global rand state anywhere in this package — every stream is an
// explicit rand.New(rand.NewSource(...)), which is what the wallclock
// analyzer enforces.
type seeded struct {
	seed int64
}

// SetSeed implements Seeder.
func (s *seeded) SetSeed(seed int64) { s.seed = seed }

// rng returns the workload's deterministic random source. The per-workload
// salt domain-separates benchmarks sharing one job seed; with the zero
// seed the stream reduces to the historical fixed-salt stream, so default
// artifacts are unchanged.
func (s *seeded) rng(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(s.seed ^ salt))
}
