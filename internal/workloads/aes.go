package workloads

import (
	"bytes"
	"crypto/aes"
	"fmt"

	"mgpucompress/internal/gpu"
	"mgpucompress/internal/mem"
	"mgpucompress/internal/platform"
)

// AES implements the Table IV AES benchmark: 256-bit AES encryption over a
// large input. The plaintext is high-entropy binary data (matching the
// paper's observation that AES inter-GPU traffic is "almost random",
// entropy 0.96), striped across the four GPUs; each workgroup encrypts a
// contiguous chunk and writes the ciphertext into a partition local to its
// GPU, so remote reads dominate remote writes as in Table V.
type AES struct {
	seeded
	scale Scale

	key        []byte
	input      mem.Buffer
	outputs    []mem.Buffer // one per GPU
	totalLines int
	linesPerWG int
	numWGs     int
	wavesPerWG int
}

// NewAES builds the AES benchmark.
func NewAES(scale Scale) *AES { return &AES{scale: scale} }

// Abbrev implements Workload.
func (a *AES) Abbrev() string { return "AES" }

// Name implements Workload.
func (a *AES) Name() string { return "Advanced Encryption Standard" }

// Description implements Workload.
func (a *AES) Description() string {
	return "256-bit encryption AES involves a large number of bitwise and shifting operations."
}

// Setup implements Workload.
func (a *AES) Setup(p *platform.Platform) error {
	r := a.rng(0xAE5)
	a.key = make([]byte, 32)
	r.Read(a.key)

	a.totalLines = 256 * int(a.scale)
	a.linesPerWG = 4
	a.numWGs = a.totalLines / a.linesPerWG
	a.wavesPerWG = 2

	a.input = p.Space.AllocStriped(uint64(a.totalLines * mem.LineSize))
	plaintext := make([]byte, a.totalLines*mem.LineSize)
	r.Read(plaintext)
	a.input.Write(0, plaintext)

	perGPU := a.gpuPartitionLines(p) * mem.LineSize
	a.outputs = a.outputs[:0]
	for g := range p.GPUs {
		a.outputs = append(a.outputs, p.Space.AllocOnGPU(g, uint64(perGPU)))
	}
	return nil
}

// gpuPartitionLines returns the output partition size per GPU in lines.
func (a *AES) gpuPartitionLines(p *platform.Platform) int {
	totalCUs := p.TotalCUs()
	cusPerGPU := len(p.GPUs[0].CUs)
	maxRanks := (a.numWGs + totalCUs - 1) / totalCUs * cusPerGPU
	return maxRanks * a.linesPerWG
}

// outputSlot returns (gpu, line offset) for workgroup wg's output.
func (a *AES) outputSlot(p *platform.Platform, wg int) (int, int) {
	totalCUs := p.TotalCUs()
	cusPerGPU := len(p.GPUs[0].CUs)
	cu := wg % totalCUs
	g := cu / cusPerGPU
	rank := wg/totalCUs*cusPerGPU + (cu - g*cusPerGPU)
	return g, rank * a.linesPerWG
}

// Run implements Workload.
func (a *AES) Run(p *platform.Platform) error {
	block, err := aes.NewCipher(a.key)
	if err != nil {
		return err
	}
	k := &gpu.Kernel{
		Name:          "aes256_encrypt",
		NumWorkgroups: a.numWGs,
		Args: argsBlock(
			[]uint64{a.input.Base(), a.outputs[0].Base()},
			[]uint32{uint32(a.totalLines * mem.LineSize), 256},
		),
		Program: func(wg int) [][]gpu.Op {
			g, outLine := a.outputSlot(p, wg)
			out := a.outputs[g]
			streams := make([][]gpu.Op, a.wavesPerWG)
			perWave := a.linesPerWG / a.wavesPerWG
			for w := 0; w < a.wavesPerWG; w++ {
				var ops []gpu.Op
				for i := 0; i < perWave; i++ {
					line := wg*a.linesPerWG + w*perWave + i
					dst := out.Addr(uint64(outLine+w*perWave+i) * mem.LineSize)
					ops = append(ops, gpu.ReadOp{
						Addr: a.input.Addr(uint64(line) * mem.LineSize),
						N:    mem.LineSize,
						Then: func(data []byte) []gpu.Op {
							ct := make([]byte, mem.LineSize)
							for b := 0; b < mem.LineSize; b += aes.BlockSize {
								block.Encrypt(ct[b:b+aes.BlockSize], data[b:b+aes.BlockSize])
							}
							return []gpu.Op{
								// ~14 rounds of SubBytes/ShiftRows/MixColumns
								// per block, 4 blocks per line.
								gpu.ComputeOp{Cycles: 80},
								gpu.WriteOp{Addr: dst, Data: ct},
							}
						},
					})
				}
				streams[w] = ops
			}
			return streams
		},
	}
	return p.Driver.Launch(k)
}

// Verify implements Workload.
func (a *AES) Verify(p *platform.Platform) error {
	block, err := aes.NewCipher(a.key)
	if err != nil {
		return err
	}
	for wg := 0; wg < a.numWGs; wg++ {
		g, outLine := a.outputSlot(p, wg)
		for i := 0; i < a.linesPerWG; i++ {
			in := a.input.Read(uint64(wg*a.linesPerWG+i)*mem.LineSize, mem.LineSize)
			want := make([]byte, mem.LineSize)
			for b := 0; b < mem.LineSize; b += aes.BlockSize {
				block.Encrypt(want[b:b+aes.BlockSize], in[b:b+aes.BlockSize])
			}
			got := a.outputs[g].Read(uint64(outLine+i)*mem.LineSize, mem.LineSize)
			if !bytes.Equal(got, want) {
				return fmt.Errorf("AES: workgroup %d line %d ciphertext mismatch", wg, i)
			}
		}
	}
	return nil
}
