package workloads

import (
	"crypto/aes"
	"testing"

	"mgpucompress/internal/mem"
	"mgpucompress/internal/stats"
)

// The device ciphertext must decrypt back to the plaintext under the same
// key — a stronger end-to-end check than comparing against re-encryption.
func TestAESCiphertextDecrypts(t *testing.T) {
	a := NewAES(ScaleTiny)
	p := testPlatform(nil)
	if err := a.Setup(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Run(p); err != nil {
		t.Fatal(err)
	}
	block, err := aes.NewCipher(a.key)
	if err != nil {
		t.Fatal(err)
	}
	for wg := 0; wg < a.numWGs; wg += 7 { // sample
		g, outLine := a.outputSlot(p, wg)
		for i := 0; i < a.linesPerWG; i++ {
			ct := a.outputs[g].Read(uint64(outLine+i)*mem.LineSize, mem.LineSize)
			pt := make([]byte, mem.LineSize)
			for b := 0; b < mem.LineSize; b += aes.BlockSize {
				block.Decrypt(pt[b:b+aes.BlockSize], ct[b:b+aes.BlockSize])
			}
			want := a.input.Read(uint64(wg*a.linesPerWG+i)*mem.LineSize, mem.LineSize)
			for j := range pt {
				if pt[j] != want[j] {
					t.Fatalf("wg %d line %d byte %d: decrypt mismatch", wg, i, j)
				}
			}
		}
	}
}

// AES-256 requires a 32-byte key.
func TestAESKeyLength(t *testing.T) {
	a := NewAES(ScaleTiny)
	p := testPlatform(nil)
	if err := a.Setup(p); err != nil {
		t.Fatal(err)
	}
	if len(a.key) != 32 {
		t.Errorf("key length %d, want 32 (AES-256)", len(a.key))
	}
}

// Ciphertext entropy must be ≈1 — the property behind AES's Table V row.
func TestAESCiphertextEntropy(t *testing.T) {
	a := NewAES(ScaleTiny)
	p := testPlatform(nil)
	if err := a.Setup(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Run(p); err != nil {
		t.Fatal(err)
	}
	var all []byte
	for wg := 0; wg < a.numWGs; wg++ {
		g, outLine := a.outputSlot(p, wg)
		all = append(all, a.outputs[g].Read(uint64(outLine)*mem.LineSize,
			a.linesPerWG*mem.LineSize)...)
	}
	if e := stats.ByteEntropy(all); e < 0.97 {
		t.Errorf("ciphertext entropy = %.3f, want ≈1", e)
	}
}

// Output partitions must be local to the GPU that computes them (the
// write-locality that makes AES read-dominated in Table V).
func TestAESOutputLocality(t *testing.T) {
	a := NewAES(ScaleTiny)
	p := testPlatform(nil)
	if err := a.Setup(p); err != nil {
		t.Fatal(err)
	}
	for wg := 0; wg < a.numWGs; wg++ {
		g, outLine := a.outputSlot(p, wg)
		addr := a.outputs[g].Addr(uint64(outLine) * mem.LineSize)
		if owner := p.Space.GPUOf(addr); owner != g {
			t.Fatalf("wg %d writes to GPU %d memory but runs on GPU %d", wg, owner, g)
		}
		if got := gpuOfWG(p, wg); got != g {
			t.Fatalf("outputSlot GPU %d disagrees with gpuOfWG %d", g, got)
		}
	}
}
