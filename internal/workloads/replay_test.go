package workloads

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

const sampleTrace = `
# two workgroups copying and transforming data
R 0
C 10
W 1000 deadbeef00112233

G
R 40
W 1040 cafebabe
C 5
W 1050 0102030405060708
`

func TestParseTrace(t *testing.T) {
	rp, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if rp.Workgroups() != 2 {
		t.Fatalf("workgroups = %d, want 2", rp.Workgroups())
	}
	if rp.ops[0][0].kind != 'R' || rp.ops[0][1].kind != 'C' || rp.ops[0][2].kind != 'W' {
		t.Errorf("wg0 ops = %+v", rp.ops[0])
	}
	if rp.ops[1][1].offset != 0x1040 {
		t.Errorf("wg1 write offset = %#x", rp.ops[1][1].offset)
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []string{
		"",                                 // empty
		"R",                                // missing offset
		"R zz",                             // bad offset
		"W 10",                             // missing data
		"W 10 xyz",                         // bad hex
		"W 10 " + strings.Repeat("ab", 65), // too long
		"C -1",                             // bad cycles
		"Q 10",                             // unknown op
	}
	for _, c := range cases {
		if _, err := ParseTrace(strings.NewReader(c)); err == nil {
			t.Errorf("trace %q accepted", c)
		}
	}
}

func TestReplayRunsAndVerifies(t *testing.T) {
	rp, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	input := make([]byte, 128)
	for i := range input {
		input[i] = byte(i + 1)
	}
	rp.SetInitial(0, input)
	p := testPlatform(nil)
	if err := rp.Setup(p); err != nil {
		t.Fatal(err)
	}
	if err := rp.Run(p); err != nil {
		t.Fatal(err)
	}
	if err := rp.Verify(p); err != nil {
		t.Fatal(err)
	}
	// Spot-check the written bytes landed.
	if got := rp.buf.Read(0x1000, 4); !bytes.Equal(got, []byte{0xde, 0xad, 0xbe, 0xef}) {
		t.Errorf("write at 0x1000 = %x", got)
	}
	if got := rp.buf.Read(0x1040, 4); !bytes.Equal(got, []byte{0xca, 0xfe, 0xba, 0xbe}) {
		t.Errorf("write at 0x1040 = %x", got)
	}
	// Initial data must have been readable.
	if got := rp.buf.Read(0, 4); !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Errorf("initial data = %x", got)
	}
}

func TestReplayOverlappingWritesWithinWG(t *testing.T) {
	// Sequential overlapping writes in one workgroup must verify against
	// the in-order result.
	trace := `
W 0 1111111111111111
W 4 22222222
`
	rp, err := ParseTrace(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	p := testPlatform(nil)
	if err := rp.Setup(p); err != nil {
		t.Fatal(err)
	}
	if err := rp.Run(p); err != nil {
		t.Fatal(err)
	}
	if err := rp.Verify(p); err != nil {
		t.Fatal(err)
	}
	want := []byte{0x11, 0x11, 0x11, 0x11, 0x22, 0x22, 0x22, 0x22}
	if got := rp.buf.Read(0, 8); !bytes.Equal(got, want) {
		t.Errorf("memory = %x, want %x", got, want)
	}
}

func TestReplayUnderCompression(t *testing.T) {
	// A larger synthetic trace with compressible writes, run under the
	// adaptive policy.
	var sb strings.Builder
	for wg := 0; wg < 8; wg++ {
		fmt.Fprintf(&sb, "G\n")
		for i := 0; i < 16; i++ {
			off := wg*4096 + i*64
			fmt.Fprintf(&sb, "R %x\n", off)
			fmt.Fprintf(&sb, "W %x %s\n", 0x40000+off, strings.Repeat("07000000", 16))
		}
	}
	rp, err := ParseTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	p := testPlatform(adaptivePolicyFactory())
	if err := rp.Setup(p); err != nil {
		t.Fatal(err)
	}
	if err := rp.Run(p); err != nil {
		t.Fatal(err)
	}
	if err := rp.Verify(p); err != nil {
		t.Fatal(err)
	}
	if p.Bus.TotalBytes() == 0 {
		t.Error("no traffic")
	}
}
