package rdma

import (
	"fmt"

	"mgpucompress/internal/comp"
	"mgpucompress/internal/core"
	"mgpucompress/internal/mem"
	"mgpucompress/internal/metrics"
	"mgpucompress/internal/sim"
	"mgpucompress/internal/stats"
	"mgpucompress/internal/trace"
)

// Recorder observes traffic at the compression points. The experiment
// runner implements it to build Tables V/VI and Figures 1/5/6/7.
type Recorder interface {
	// RemoteRead is called when a read request leaves gpu for a remote
	// owner.
	RemoteRead(gpu int)
	// RemoteWrite is called when a write request leaves gpu.
	RemoteWrite(gpu int)
	// Payload is called for every payload-bearing transfer entering the
	// fabric, with the original bytes and the policy's decision.
	Payload(line []byte, d core.Decision)
	// Header is called with the header bytes of every wire message.
	Header(bytes int)
}

// NopRecorder discards all observations.
type NopRecorder struct{}

// RemoteRead implements Recorder.
func (NopRecorder) RemoteRead(int) {}

// RemoteWrite implements Recorder.
func (NopRecorder) RemoteWrite(int) {}

// Payload implements Recorder.
func (NopRecorder) Payload([]byte, core.Decision) {}

// Header implements Recorder.
func (NopRecorder) Header(int) {}

// Engine is the per-GPU RDMA engine. It faces three ways:
//
//   - ToL1 receives remote-destined mem.ReadReq/mem.WriteReq from the GPU's
//     L1 caches and returns their responses;
//   - ToFabric is plugged into the inter-GPU bus;
//   - ToL2 issues incoming remote requests into the GPU's own L2 banks.
//
// Outgoing payloads are compressed by the policy; incoming payloads are
// decompressed (with the codec's latency) unless Comp Alg is 0.
type Engine struct {
	sim.ComponentBase
	part   *sim.Partition
	ticker *sim.Ticker

	GPU    int
	Policy core.Policy
	Rec    Recorder

	// Guard, when non-nil, enables the reliability protocol layered over
	// the Fig. 4 wire messages: CRC32C trailers on payload-bearing
	// messages, NACKs on CRC failure, and bounded retransmission with
	// exponential backoff driven by per-request timeouts. It exists to
	// recover from injected fabric faults (internal/fault); with no guard
	// the engine behaves exactly as before — any loss or corruption is a
	// hard error.
	Guard *GuardConfig
	// Spans, when non-nil alongside Guard, records every retransmission as
	// a trace span on this engine's track.
	Spans *trace.Recorder

	ToL1     *sim.Port
	ToFabric *sim.Port
	ToL2     *sim.Port

	// OwnerOf maps an address to its owning GPU.
	OwnerOf func(addr uint64) int
	// RemotePort maps a GPU ID to its RDMA fabric port.
	RemotePort func(gpu int) *sim.Port
	// L2Router maps a local address to the L2 bank port serving it.
	L2Router func(addr uint64) *sim.Port

	// outQueue holds wire messages that did not fit in the fabric's 4 KB
	// per-endpoint output buffer. The fabric enforces the paper's buffer
	// bound; this queue models the engine's internal pipeline registers
	// upstream of it and is drained strictly in order.
	outQueue []sim.Msg

	// request tracking
	pendingReads  map[uint64]*pendingRead  // wire ReadReq ID -> original local request
	pendingWrites map[uint64]*pendingWrite // wire WriteReq ID -> original
	// incoming remote requests forwarded into local L2
	serviceReads  map[uint64]*ReadReq  // local L2 ReadReq ID -> wire request
	serviceWrites map[uint64]*WriteReq // local L2 WriteReq ID -> wire request

	// Stats
	ReadsSent    uint64
	WritesSent   uint64
	ReadsServed  uint64
	WritesServed uint64
	// ReadLatency records, per completed remote read, the cycles from the
	// request leaving this engine to the decompressed data reaching the
	// requesting L1 — the end-to-end remote access latency.
	ReadLatency stats.Histogram

	// Guard stats (all zero while Guard is nil).
	Retries       uint64 // retransmissions (timeout- and NACK-triggered)
	CRCErrors     uint64 // incoming payloads that failed the CRC32C check
	NACKsSent     uint64 // NACKs emitted for rejected payloads
	StaleDrops    uint64 // duplicate/late responses dropped after completion
	TimeoutsFired uint64 // retransmissions triggered by timeout (subset of Retries)
}

// GuardConfig parameterizes the reliability protocol.
type GuardConfig struct {
	// TimeoutCycles is the base retransmit timeout; attempt n waits
	// TimeoutCycles<<(n-1).
	TimeoutCycles sim.Time
	// MaxAttempts bounds transmissions per request, the initial send
	// included; exhausting it is a hard simulation error, never silent
	// data loss.
	MaxAttempts int
}

type pendingRead struct {
	req      *mem.ReadReq
	issued   sim.Time
	wire     *ReadReq
	attempts int
}

type pendingWrite struct {
	req      *mem.WriteReq
	wire     *WriteReq
	attempts int
}

// RegisterMetrics exposes the engine's counters under prefix (e.g.
// "gpu2/rdma", "host/rdma"), plus the output-queue depth and the remote
// read-latency distribution.
func (e *Engine) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.CounterFunc(prefix+"/reads_sent", func() uint64 { return e.ReadsSent })
	reg.CounterFunc(prefix+"/writes_sent", func() uint64 { return e.WritesSent })
	reg.CounterFunc(prefix+"/reads_served", func() uint64 { return e.ReadsServed })
	reg.CounterFunc(prefix+"/writes_served", func() uint64 { return e.WritesServed })
	reg.GaugeFunc(prefix+"/queue_depth", func() float64 { return float64(len(e.outQueue)) })
	reg.DistributionFunc(prefix+"/read_latency", func() metrics.DistValue {
		return metrics.DistValue{
			Count: uint64(e.ReadLatency.Count()),
			Sum:   e.ReadLatency.Sum(),
			Min:   e.ReadLatency.Min(),
			Max:   e.ReadLatency.Max(),
		}
	})
}

// RegisterGuardMetrics exposes the reliability-protocol counters under
// prefix. It is a separate registration from RegisterMetrics on purpose:
// snapshot bytes include every registered path, so the guard paths must
// only exist when the fault layer is enabled, keeping fault-free snapshots
// byte-identical to builds predating the guard.
func (e *Engine) RegisterGuardMetrics(reg *metrics.Registry, prefix string) {
	reg.CounterFunc(prefix+"/retries", func() uint64 { return e.Retries })
	reg.CounterFunc(prefix+"/crc_errors", func() uint64 { return e.CRCErrors })
	reg.CounterFunc(prefix+"/nacks", func() uint64 { return e.NACKsSent })
	reg.CounterFunc(prefix+"/stale_drops", func() uint64 { return e.StaleDrops })
	reg.CounterFunc(prefix+"/timeouts", func() uint64 { return e.TimeoutsFired })
}

// New creates an RDMA engine for the given GPU index.
func New(name string, part *sim.Partition, gpu int, policy core.Policy, rec Recorder) *Engine {
	if rec == nil {
		rec = NopRecorder{}
	}
	e := &Engine{
		ComponentBase: sim.NewComponentBase(name),
		part:          part,
		GPU:           gpu,
		Policy:        policy,
		Rec:           rec,
		pendingReads:  make(map[uint64]*pendingRead),
		pendingWrites: make(map[uint64]*pendingWrite),
		serviceReads:  make(map[uint64]*ReadReq),
		serviceWrites: make(map[uint64]*WriteReq),
	}
	e.ToL1 = sim.NewPort(e, name+".ToL1", 8*1024)
	e.ToFabric = sim.NewPort(e, name+".ToFabric", 4*1024) // paper: 4 KB input buffer
	e.ToL2 = sim.NewPort(e, name+".ToL2", 8*1024)
	e.ticker = sim.NewTicker(part, e)
	return e
}

// NotifyRecv implements sim.Component.
func (e *Engine) NotifyRecv(now sim.Time, _ *sim.Port) { e.ticker.TickNow(now) }

// NotifyPortFree implements sim.Component.
func (e *Engine) NotifyPortFree(now sim.Time, _ *sim.Port) { e.ticker.TickNow(now) }

// delayedSendEvent enqueues a wire message for the fabric after the
// compression latency has elapsed.
type delayedSendEvent struct {
	sim.EventBase
	msg sim.Msg
}

// delayedDeliverEvent finishes decompression of an incoming payload.
type delayedDeliverEvent struct {
	sim.EventBase
	deliver func(now sim.Time) error
}

// retryTimeoutEvent fires when a guarded request has waited long enough for
// its response. The attempt number pins the event to one transmission: a
// retransmission in the meantime (e.g. NACK-triggered) bumps the pending
// entry's attempt count, turning the old timeout into a no-op.
type retryTimeoutEvent struct {
	sim.EventBase
	id      uint64
	attempt int
	write   bool
}

// Handle implements sim.Handler.
func (e *Engine) Handle(ev sim.Event) error {
	switch evt := ev.(type) {
	case *sim.TickEvent:
		return e.tick(ev.Time())
	case delayedSendEvent:
		e.outQueue = append(e.outQueue, evt.msg)
		e.drainOutQueue(ev.Time())
		return nil
	case delayedDeliverEvent:
		return evt.deliver(ev.Time())
	case retryTimeoutEvent:
		return e.handleTimeout(ev.Time(), evt)
	default:
		return fmt.Errorf("%s: unexpected event %T", e.Name(), ev)
	}
}

func (e *Engine) tick(now sim.Time) error {
	e.drainOutQueue(now)
	for i := 0; i < 8; i++ {
		progress := false
		if msg := e.ToL1.Retrieve(now); msg != nil {
			if err := e.handleLocal(now, msg); err != nil {
				return err
			}
			progress = true
		}
		if msg := e.ToFabric.Retrieve(now); msg != nil {
			if err := e.handleWire(now, msg); err != nil {
				return err
			}
			progress = true
		}
		if msg := e.ToL2.Retrieve(now); msg != nil {
			if err := e.handleL2Response(now, msg); err != nil {
				return err
			}
			progress = true
		}
		if !progress {
			break
		}
	}
	if e.ToL1.Buffered() > 0 || e.ToFabric.Buffered() > 0 || e.ToL2.Buffered() > 0 {
		e.ticker.TickLater(now)
	}
	return nil
}

func (e *Engine) drainOutQueue(now sim.Time) {
	for len(e.outQueue) > 0 {
		msg := e.outQueue[0]
		if !e.ToFabric.Send(now, msg) {
			return // fabric output buffer full; retry on NotifyPortFree
		}
		e.outQueue = e.outQueue[1:]
	}
}

// handleLocal processes a request from this GPU's L1s destined for a remote
// GPU.
func (e *Engine) handleLocal(now sim.Time, msg sim.Msg) error {
	switch req := msg.(type) {
	case *mem.ReadReq:
		owner := e.OwnerOf(req.Addr)
		wire := &ReadReq{Addr: req.Addr, N: req.N}
		wire.Src, wire.Dst = e.ToFabric, e.RemotePort(owner)
		wire.Bytes = ReadReqHeaderBytes
		e.part.AssignMsgID(wire)
		e.pendingReads[wire.ID] = &pendingRead{req: req, issued: now, wire: wire, attempts: 1}
		e.ReadsSent++
		e.Rec.RemoteRead(e.GPU)
		e.Rec.Header(ReadReqHeaderBytes)
		e.outQueue = append(e.outQueue, wire)
		e.drainOutQueue(now)
		e.scheduleTimeout(now, wire.ID, 1, false)
		return nil
	case *mem.WriteReq:
		owner := e.OwnerOf(req.Addr)
		payload, d := e.compress(req.Data)
		wire := &WriteReq{Addr: req.Addr, Payload: payload}
		wire.Src, wire.Dst = e.ToFabric, e.RemotePort(owner)
		wire.Bytes = WriteReqHeaderBytes + payload.WireBytes()
		if e.Guard != nil {
			wire.Payload.CRC = PayloadCRC(wire.Payload)
			wire.Bytes += CRCTrailerBytes
		}
		e.part.AssignMsgID(wire)
		e.pendingWrites[wire.ID] = &pendingWrite{req: req, wire: wire, attempts: 1}
		e.WritesSent++
		e.Rec.RemoteWrite(e.GPU)
		e.Rec.Header(WriteReqHeaderBytes)
		e.scheduleSend(now, wire, d.CompressionCycles)
		e.scheduleTimeout(now, wire.ID, 1, true)
		return nil
	default:
		return fmt.Errorf("%s: unexpected local message %T", e.Name(), msg)
	}
}

// compress runs the policy over a payload. Payloads that are not a whole
// cache line bypass the codecs (they cannot be encoded by the line-based
// algorithms) and ship raw.
func (e *Engine) compress(data []byte) (Payload, core.Decision) {
	if len(data) != comp.LineSize || e.Policy == nil {
		d := core.Decision{Alg: comp.None}
		p := Payload{Alg: comp.None, Raw: data, RawLen: len(data)}
		if e.Policy != nil {
			// Still record the transfer so traffic accounting is complete.
			e.Rec.Payload(data, core.Decision{Alg: comp.None, Enc: comp.Encoded{
				Alg: comp.None, Bits: len(data) * 8, Data: data, Uncompressed: true,
			}})
		}
		return p, d
	}
	if obs, ok := e.Policy.(core.CongestionObserver); ok {
		// Feed the dynamic-λ extension its local congestion signal: the
		// depth of this engine's fabric output queue.
		obs.ObserveCongestion(len(e.outQueue))
	}
	d := e.Policy.Process(data)
	e.Rec.Payload(data, d)
	if d.Alg == comp.None {
		return Payload{Alg: comp.None, Raw: d.Enc.Data, RawLen: len(data)}, d
	}
	return Payload{Alg: d.Alg, Enc: d.Enc, RawLen: len(data)}, d
}

// scheduleSend queues the wire message after the compression latency.
func (e *Engine) scheduleSend(now sim.Time, msg sim.Msg, compressionCycles int) {
	if compressionCycles <= 0 {
		e.outQueue = append(e.outQueue, msg)
		e.drainOutQueue(now)
		return
	}
	e.part.Schedule(delayedSendEvent{
		EventBase: sim.NewEventBase(now+sim.Time(compressionCycles), e),
		msg:       msg,
	})
}

// handleWire processes a message arriving from the fabric.
func (e *Engine) handleWire(now sim.Time, msg sim.Msg) error {
	switch wire := msg.(type) {
	case *ReadReq:
		// A remote GPU wants our data: forward into the local L2.
		e.ReadsServed++
		local := mem.NewReadReq(e.ToL2, e.L2Router(wire.Addr), wire.Addr, wire.N)
		e.part.AssignMsgID(local)
		e.serviceReads[local.ID] = wire
		if !e.ToL2.Send(now, local) {
			return fmt.Errorf("%s: L2 rejected forwarded read", e.Name())
		}
		return nil
	case *WriteReq:
		if e.Guard != nil && PayloadCRC(wire.Payload) != wire.Payload.CRC {
			// Reject the corrupt payload; the writer retransmits on NACK
			// (or, failing that, on timeout) and attributes the failure to
			// the codec named in the header.
			e.CRCErrors++
			e.sendNACK(now, wire.Meta().Src, wire.ID, wire.Payload.Alg)
			return nil
		}
		// Decompress (if needed), then forward the write into local L2.
		e.WritesServed++
		latency := decompressionCycles(wire.Payload.Alg)
		deliver := func(now sim.Time) error {
			data, err := wire.Payload.Decode()
			if err != nil {
				return fmt.Errorf("%s: write payload: %w", e.Name(), err)
			}
			local := mem.NewWriteReq(e.ToL2, e.L2Router(wire.Addr), wire.Addr, data)
			e.part.AssignMsgID(local)
			e.serviceWrites[local.ID] = wire
			if !e.ToL2.Send(now, local) {
				return fmt.Errorf("%s: L2 rejected forwarded write", e.Name())
			}
			return nil
		}
		return e.afterDecompression(now, latency, deliver)
	case *DataReady:
		// Response to one of our outgoing reads.
		pr, ok := e.pendingReads[wire.RspTo]
		if !ok {
			if e.Guard != nil {
				// Duplicate response: a timeout retransmitted the request
				// and both replies arrived. The first one won.
				e.StaleDrops++
				return nil
			}
			return fmt.Errorf("%s: DataReady for unknown request %d", e.Name(), wire.RspTo)
		}
		if e.Guard != nil && PayloadCRC(wire.Payload) != wire.Payload.CRC {
			// Corrupt response: discard it, tell the responder (which
			// compressed the payload) so it can attribute the failure, and
			// retransmit our request.
			e.CRCErrors++
			e.sendNACK(now, wire.Meta().Src, wire.RspTo, wire.Payload.Alg)
			return e.retransmitRead(now, wire.RspTo)
		}
		orig := pr.req
		delete(e.pendingReads, wire.RspTo)
		latency := decompressionCycles(wire.Payload.Alg)
		deliver := func(now sim.Time) error {
			data, err := wire.Payload.Decode()
			if err != nil {
				return fmt.Errorf("%s: read payload: %w", e.Name(), err)
			}
			e.ReadLatency.Add(float64(now - pr.issued))
			rsp := mem.NewDataReady(e.ToL1, orig.Src, orig.ID, orig.Addr, data)
			e.part.AssignMsgID(rsp)
			if !e.ToL1.Send(now, rsp) {
				return fmt.Errorf("%s: L1 rejected response", e.Name())
			}
			return nil
		}
		return e.afterDecompression(now, latency, deliver)
	case *WriteACK:
		pw, ok := e.pendingWrites[wire.RspTo]
		if !ok {
			if e.Guard != nil {
				e.StaleDrops++
				return nil
			}
			return fmt.Errorf("%s: WriteACK for unknown request %d", e.Name(), wire.RspTo)
		}
		delete(e.pendingWrites, wire.RspTo)
		if e.Guard != nil && pw.wire.Payload.Alg != comp.None {
			// A compressed write completed cleanly: reset the controller's
			// consecutive-failure count.
			e.observeIntegrity(true)
		}
		orig := pw.req
		ack := mem.NewWriteACK(e.ToL1, orig.Src, orig.ID, orig.Addr)
		e.part.AssignMsgID(ack)
		if !e.ToL1.Send(now, ack) {
			return fmt.Errorf("%s: L1 rejected ack", e.Name())
		}
		return nil
	case *NACK:
		if e.Guard == nil {
			return fmt.Errorf("%s: unexpected NACK without guard", e.Name())
		}
		if wire.Alg != comp.None {
			// The rejected payload was compressed by this engine's policy:
			// a codec-attributed integrity failure.
			e.observeIntegrity(false)
		}
		if pw, ok := e.pendingWrites[wire.RspTo]; ok {
			return e.retransmitWrite(now, wire.RspTo, pw)
		}
		// Read-path NACK: informational only — the requester already
		// retransmitted its ReadReq, and this engine kept no state for the
		// rejected DataReady.
		return nil
	default:
		return fmt.Errorf("%s: unexpected wire message %T", e.Name(), msg)
	}
}

// sendNACK rejects payload RspTo back to its sender, naming the Comp Alg of
// the rejected payload for failure attribution.
func (e *Engine) sendNACK(now sim.Time, dst *sim.Port, rspTo uint64, alg comp.Algorithm) {
	n := &NACK{RspTo: rspTo, Alg: alg}
	n.Src, n.Dst = e.ToFabric, dst
	n.Bytes = NACKHeaderBytes
	e.part.AssignMsgID(n)
	e.NACKsSent++
	e.outQueue = append(e.outQueue, n)
	e.drainOutQueue(now)
}

// observeIntegrity feeds the policy's integrity signal (when it cares).
func (e *Engine) observeIntegrity(ok bool) {
	if obs, has := e.Policy.(core.IntegrityObserver); has {
		obs.ObserveIntegrity(ok)
	}
}

// scheduleTimeout arms the retransmit timer for transmission `attempt` of a
// guarded request, with exponential backoff. No-op without a guard.
func (e *Engine) scheduleTimeout(now sim.Time, id uint64, attempt int, write bool) {
	if e.Guard == nil {
		return
	}
	shift := attempt - 1
	if shift > 10 {
		shift = 10 // backoff cap; MaxAttempts bounds attempts anyway
	}
	e.part.Schedule(retryTimeoutEvent{
		EventBase: sim.NewEventBase(now+e.Guard.TimeoutCycles<<shift, e),
		id:        id,
		attempt:   attempt,
		write:     write,
	})
}

// handleTimeout retransmits a request whose response never arrived. A stale
// timeout — the request completed, or a NACK already retransmitted it — is
// a no-op.
func (e *Engine) handleTimeout(now sim.Time, evt retryTimeoutEvent) error {
	if e.Guard == nil {
		return nil
	}
	if evt.write {
		pw, ok := e.pendingWrites[evt.id]
		if !ok || pw.attempts != evt.attempt {
			return nil
		}
		e.TimeoutsFired++
		return e.retransmitWrite(now, evt.id, pw)
	}
	pr, ok := e.pendingReads[evt.id]
	if !ok || pr.attempts != evt.attempt {
		return nil
	}
	e.TimeoutsFired++
	return e.retransmitRead(now, evt.id)
}

// retransmitRead re-sends the wire ReadReq for a still-pending read.
// Retransmissions appear in the fabric byte counters and the guard stats,
// not in the logical traffic/* accounting: they are transport overhead, not
// new transfers.
func (e *Engine) retransmitRead(now sim.Time, id uint64) error {
	pr := e.pendingReads[id]
	if pr.attempts >= e.Guard.MaxAttempts {
		return fmt.Errorf("%s: remote read %#x: retry budget exhausted after %d attempts",
			e.Name(), pr.wire.Addr, pr.attempts)
	}
	pr.attempts++
	e.Retries++
	e.recordRetrySpan(now, "retry:read", pr.wire.Addr, pr.attempts)
	e.outQueue = append(e.outQueue, pr.wire)
	e.drainOutQueue(now)
	e.scheduleTimeout(now, id, pr.attempts, false)
	return nil
}

// retransmitWrite re-sends the wire WriteReq for a still-pending write. The
// payload was already encoded and checksummed on first send, so the
// retransmission costs no additional compression latency.
func (e *Engine) retransmitWrite(now sim.Time, id uint64, pw *pendingWrite) error {
	if pw.attempts >= e.Guard.MaxAttempts {
		return fmt.Errorf("%s: remote write %#x: retry budget exhausted after %d attempts",
			e.Name(), pw.wire.Addr, pw.attempts)
	}
	pw.attempts++
	e.Retries++
	e.recordRetrySpan(now, "retry:write", pw.wire.Addr, pw.attempts)
	e.outQueue = append(e.outQueue, pw.wire)
	e.drainOutQueue(now)
	e.scheduleTimeout(now, id, pw.attempts, true)
	return nil
}

// recordRetrySpan marks one retransmission on the trace timeline.
func (e *Engine) recordRetrySpan(now sim.Time, name string, addr uint64, attempt int) {
	if e.Spans == nil {
		return
	}
	e.Spans.Record(trace.Span{
		Track: e.Name(), Name: fmt.Sprintf("%s @%#x #%d", name, addr, attempt),
		Cat: "fault", Start: now, End: now + 1,
	})
}

func (e *Engine) afterDecompression(now sim.Time, cycles int, deliver func(sim.Time) error) error {
	if cycles <= 0 {
		return deliver(now)
	}
	e.part.Schedule(delayedDeliverEvent{
		EventBase: sim.NewEventBase(now+sim.Time(cycles), e),
		deliver:   deliver,
	})
	return nil
}

func decompressionCycles(alg comp.Algorithm) int {
	return comp.CostOf(alg).DecompressionCycles
}

// handleL2Response turns local L2 responses into wire responses for the
// requesting GPU.
func (e *Engine) handleL2Response(now sim.Time, msg sim.Msg) error {
	switch rsp := msg.(type) {
	case *mem.DataReady:
		wireReq, ok := e.serviceReads[rsp.RspTo]
		if !ok {
			return fmt.Errorf("%s: L2 data for unknown request %d", e.Name(), rsp.RspTo)
		}
		delete(e.serviceReads, rsp.RspTo)
		payload, d := e.compress(rsp.Data)
		out := &DataReady{RspTo: wireReq.ID, Addr: rsp.Addr, Payload: payload}
		out.Src, out.Dst = e.ToFabric, wireReq.Src
		out.Bytes = DataReadyHeaderBytes + payload.WireBytes()
		if e.Guard != nil {
			out.Payload.CRC = PayloadCRC(out.Payload)
			out.Bytes += CRCTrailerBytes
		}
		e.part.AssignMsgID(out)
		e.Rec.Header(DataReadyHeaderBytes)
		e.scheduleSend(now, out, d.CompressionCycles)
		return nil
	case *mem.WriteACK:
		wireReq, ok := e.serviceWrites[rsp.RspTo]
		if !ok {
			return fmt.Errorf("%s: L2 ack for unknown request %d", e.Name(), rsp.RspTo)
		}
		delete(e.serviceWrites, rsp.RspTo)
		out := &WriteACK{RspTo: wireReq.ID}
		out.Src, out.Dst = e.ToFabric, wireReq.Src
		out.Bytes = WriteACKHeaderBytes
		e.part.AssignMsgID(out)
		e.Rec.Header(WriteACKHeaderBytes)
		e.outQueue = append(e.outQueue, out)
		e.drainOutQueue(now)
		return nil
	default:
		return fmt.Errorf("%s: unexpected L2 message %T", e.Name(), msg)
	}
}
