package rdma

import (
	"fmt"

	"mgpucompress/internal/comp"
	"mgpucompress/internal/core"
	"mgpucompress/internal/mem"
	"mgpucompress/internal/metrics"
	"mgpucompress/internal/sim"
	"mgpucompress/internal/stats"
)

// Recorder observes traffic at the compression points. The experiment
// runner implements it to build Tables V/VI and Figures 1/5/6/7.
type Recorder interface {
	// RemoteRead is called when a read request leaves gpu for a remote
	// owner.
	RemoteRead(gpu int)
	// RemoteWrite is called when a write request leaves gpu.
	RemoteWrite(gpu int)
	// Payload is called for every payload-bearing transfer entering the
	// fabric, with the original bytes and the policy's decision.
	Payload(line []byte, d core.Decision)
	// Header is called with the header bytes of every wire message.
	Header(bytes int)
}

// NopRecorder discards all observations.
type NopRecorder struct{}

// RemoteRead implements Recorder.
func (NopRecorder) RemoteRead(int) {}

// RemoteWrite implements Recorder.
func (NopRecorder) RemoteWrite(int) {}

// Payload implements Recorder.
func (NopRecorder) Payload([]byte, core.Decision) {}

// Header implements Recorder.
func (NopRecorder) Header(int) {}

// Engine is the per-GPU RDMA engine. It faces three ways:
//
//   - ToL1 receives remote-destined mem.ReadReq/mem.WriteReq from the GPU's
//     L1 caches and returns their responses;
//   - ToFabric is plugged into the inter-GPU bus;
//   - ToL2 issues incoming remote requests into the GPU's own L2 banks.
//
// Outgoing payloads are compressed by the policy; incoming payloads are
// decompressed (with the codec's latency) unless Comp Alg is 0.
type Engine struct {
	sim.ComponentBase
	engine *sim.Engine
	ticker *sim.Ticker

	GPU    int
	Policy core.Policy
	Rec    Recorder

	ToL1     *sim.Port
	ToFabric *sim.Port
	ToL2     *sim.Port

	// OwnerOf maps an address to its owning GPU.
	OwnerOf func(addr uint64) int
	// RemotePort maps a GPU ID to its RDMA fabric port.
	RemotePort func(gpu int) *sim.Port
	// L2Router maps a local address to the L2 bank port serving it.
	L2Router func(addr uint64) *sim.Port

	// outQueue holds wire messages that did not fit in the fabric's 4 KB
	// per-endpoint output buffer. The fabric enforces the paper's buffer
	// bound; this queue models the engine's internal pipeline registers
	// upstream of it and is drained strictly in order.
	outQueue []sim.Msg

	// request tracking
	pendingReads  map[uint64]pendingRead   // wire ReadReq ID -> original local request
	pendingWrites map[uint64]*mem.WriteReq // wire WriteReq ID -> original
	// incoming remote requests forwarded into local L2
	serviceReads  map[uint64]*ReadReq  // local L2 ReadReq ID -> wire request
	serviceWrites map[uint64]*WriteReq // local L2 WriteReq ID -> wire request

	// Stats
	ReadsSent    uint64
	WritesSent   uint64
	ReadsServed  uint64
	WritesServed uint64
	// ReadLatency records, per completed remote read, the cycles from the
	// request leaving this engine to the decompressed data reaching the
	// requesting L1 — the end-to-end remote access latency.
	ReadLatency stats.Histogram
}

type pendingRead struct {
	req    *mem.ReadReq
	issued sim.Time
}

// RegisterMetrics exposes the engine's counters under prefix (e.g.
// "gpu2/rdma", "host/rdma"), plus the output-queue depth and the remote
// read-latency distribution.
func (e *Engine) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.CounterFunc(prefix+"/reads_sent", func() uint64 { return e.ReadsSent })
	reg.CounterFunc(prefix+"/writes_sent", func() uint64 { return e.WritesSent })
	reg.CounterFunc(prefix+"/reads_served", func() uint64 { return e.ReadsServed })
	reg.CounterFunc(prefix+"/writes_served", func() uint64 { return e.WritesServed })
	reg.GaugeFunc(prefix+"/queue_depth", func() float64 { return float64(len(e.outQueue)) })
	reg.DistributionFunc(prefix+"/read_latency", func() metrics.DistValue {
		return metrics.DistValue{
			Count: uint64(e.ReadLatency.Count()),
			Sum:   e.ReadLatency.Sum(),
			Min:   e.ReadLatency.Min(),
			Max:   e.ReadLatency.Max(),
		}
	})
}

// New creates an RDMA engine for the given GPU index.
func New(name string, engine *sim.Engine, gpu int, policy core.Policy, rec Recorder) *Engine {
	if rec == nil {
		rec = NopRecorder{}
	}
	e := &Engine{
		ComponentBase: sim.NewComponentBase(name),
		engine:        engine,
		GPU:           gpu,
		Policy:        policy,
		Rec:           rec,
		pendingReads:  make(map[uint64]pendingRead),
		pendingWrites: make(map[uint64]*mem.WriteReq),
		serviceReads:  make(map[uint64]*ReadReq),
		serviceWrites: make(map[uint64]*WriteReq),
	}
	e.ToL1 = sim.NewPort(e, name+".ToL1", 8*1024)
	e.ToFabric = sim.NewPort(e, name+".ToFabric", 4*1024) // paper: 4 KB input buffer
	e.ToL2 = sim.NewPort(e, name+".ToL2", 8*1024)
	e.ticker = sim.NewTicker(engine, e)
	return e
}

// NotifyRecv implements sim.Component.
func (e *Engine) NotifyRecv(now sim.Time, _ *sim.Port) { e.ticker.TickNow(now) }

// NotifyPortFree implements sim.Component.
func (e *Engine) NotifyPortFree(now sim.Time, _ *sim.Port) { e.ticker.TickNow(now) }

// delayedSendEvent enqueues a wire message for the fabric after the
// compression latency has elapsed.
type delayedSendEvent struct {
	sim.EventBase
	msg sim.Msg
}

// delayedDeliverEvent finishes decompression of an incoming payload.
type delayedDeliverEvent struct {
	sim.EventBase
	deliver func(now sim.Time) error
}

// Handle implements sim.Handler.
func (e *Engine) Handle(ev sim.Event) error {
	switch evt := ev.(type) {
	case *sim.TickEvent:
		return e.tick(ev.Time())
	case delayedSendEvent:
		e.outQueue = append(e.outQueue, evt.msg)
		e.drainOutQueue(ev.Time())
		return nil
	case delayedDeliverEvent:
		return evt.deliver(ev.Time())
	default:
		return fmt.Errorf("%s: unexpected event %T", e.Name(), ev)
	}
}

func (e *Engine) tick(now sim.Time) error {
	e.drainOutQueue(now)
	for i := 0; i < 8; i++ {
		progress := false
		if msg := e.ToL1.Retrieve(now); msg != nil {
			if err := e.handleLocal(now, msg); err != nil {
				return err
			}
			progress = true
		}
		if msg := e.ToFabric.Retrieve(now); msg != nil {
			if err := e.handleWire(now, msg); err != nil {
				return err
			}
			progress = true
		}
		if msg := e.ToL2.Retrieve(now); msg != nil {
			if err := e.handleL2Response(now, msg); err != nil {
				return err
			}
			progress = true
		}
		if !progress {
			break
		}
	}
	if e.ToL1.Buffered() > 0 || e.ToFabric.Buffered() > 0 || e.ToL2.Buffered() > 0 {
		e.ticker.TickLater(now)
	}
	return nil
}

func (e *Engine) drainOutQueue(now sim.Time) {
	for len(e.outQueue) > 0 {
		msg := e.outQueue[0]
		if !e.ToFabric.Send(now, msg) {
			return // fabric output buffer full; retry on NotifyPortFree
		}
		e.outQueue = e.outQueue[1:]
	}
}

// handleLocal processes a request from this GPU's L1s destined for a remote
// GPU.
func (e *Engine) handleLocal(now sim.Time, msg sim.Msg) error {
	switch req := msg.(type) {
	case *mem.ReadReq:
		owner := e.OwnerOf(req.Addr)
		wire := &ReadReq{Addr: req.Addr, N: req.N}
		wire.Src, wire.Dst = e.ToFabric, e.RemotePort(owner)
		wire.Bytes = ReadReqHeaderBytes
		sim.AssignMsgID(wire)
		e.pendingReads[wire.ID] = pendingRead{req: req, issued: now}
		e.ReadsSent++
		e.Rec.RemoteRead(e.GPU)
		e.Rec.Header(ReadReqHeaderBytes)
		e.outQueue = append(e.outQueue, wire)
		e.drainOutQueue(now)
		return nil
	case *mem.WriteReq:
		owner := e.OwnerOf(req.Addr)
		payload, d := e.compress(req.Data)
		wire := &WriteReq{Addr: req.Addr, Payload: payload}
		wire.Src, wire.Dst = e.ToFabric, e.RemotePort(owner)
		wire.Bytes = WriteReqHeaderBytes + payload.WireBytes()
		sim.AssignMsgID(wire)
		e.pendingWrites[wire.ID] = req
		e.WritesSent++
		e.Rec.RemoteWrite(e.GPU)
		e.Rec.Header(WriteReqHeaderBytes)
		e.scheduleSend(now, wire, d.CompressionCycles)
		return nil
	default:
		return fmt.Errorf("%s: unexpected local message %T", e.Name(), msg)
	}
}

// compress runs the policy over a payload. Payloads that are not a whole
// cache line bypass the codecs (they cannot be encoded by the line-based
// algorithms) and ship raw.
func (e *Engine) compress(data []byte) (Payload, core.Decision) {
	if len(data) != comp.LineSize || e.Policy == nil {
		d := core.Decision{Alg: comp.None}
		p := Payload{Alg: comp.None, Raw: data, RawLen: len(data)}
		if e.Policy != nil {
			// Still record the transfer so traffic accounting is complete.
			e.Rec.Payload(data, core.Decision{Alg: comp.None, Enc: comp.Encoded{
				Alg: comp.None, Bits: len(data) * 8, Data: data, Uncompressed: true,
			}})
		}
		return p, d
	}
	if obs, ok := e.Policy.(core.CongestionObserver); ok {
		// Feed the dynamic-λ extension its local congestion signal: the
		// depth of this engine's fabric output queue.
		obs.ObserveCongestion(len(e.outQueue))
	}
	d := e.Policy.Process(data)
	e.Rec.Payload(data, d)
	if d.Alg == comp.None {
		return Payload{Alg: comp.None, Raw: d.Enc.Data, RawLen: len(data)}, d
	}
	return Payload{Alg: d.Alg, Enc: d.Enc, RawLen: len(data)}, d
}

// scheduleSend queues the wire message after the compression latency.
func (e *Engine) scheduleSend(now sim.Time, msg sim.Msg, compressionCycles int) {
	if compressionCycles <= 0 {
		e.outQueue = append(e.outQueue, msg)
		e.drainOutQueue(now)
		return
	}
	e.engine.Schedule(delayedSendEvent{
		EventBase: sim.NewEventBase(now+sim.Time(compressionCycles), e),
		msg:       msg,
	})
}

// handleWire processes a message arriving from the fabric.
func (e *Engine) handleWire(now sim.Time, msg sim.Msg) error {
	switch wire := msg.(type) {
	case *ReadReq:
		// A remote GPU wants our data: forward into the local L2.
		e.ReadsServed++
		local := mem.NewReadReq(e.ToL2, e.L2Router(wire.Addr), wire.Addr, wire.N)
		sim.AssignMsgID(local)
		e.serviceReads[local.ID] = wire
		if !e.ToL2.Send(now, local) {
			return fmt.Errorf("%s: L2 rejected forwarded read", e.Name())
		}
		return nil
	case *WriteReq:
		// Decompress (if needed), then forward the write into local L2.
		e.WritesServed++
		latency := decompressionCycles(wire.Payload.Alg)
		deliver := func(now sim.Time) error {
			data, err := wire.Payload.Decode()
			if err != nil {
				return fmt.Errorf("%s: write payload: %w", e.Name(), err)
			}
			local := mem.NewWriteReq(e.ToL2, e.L2Router(wire.Addr), wire.Addr, data)
			sim.AssignMsgID(local)
			e.serviceWrites[local.ID] = wire
			if !e.ToL2.Send(now, local) {
				return fmt.Errorf("%s: L2 rejected forwarded write", e.Name())
			}
			return nil
		}
		return e.afterDecompression(now, latency, deliver)
	case *DataReady:
		// Response to one of our outgoing reads.
		pr, ok := e.pendingReads[wire.RspTo]
		if !ok {
			return fmt.Errorf("%s: DataReady for unknown request %d", e.Name(), wire.RspTo)
		}
		orig := pr.req
		delete(e.pendingReads, wire.RspTo)
		latency := decompressionCycles(wire.Payload.Alg)
		deliver := func(now sim.Time) error {
			data, err := wire.Payload.Decode()
			if err != nil {
				return fmt.Errorf("%s: read payload: %w", e.Name(), err)
			}
			e.ReadLatency.Add(float64(now - pr.issued))
			rsp := mem.NewDataReady(e.ToL1, orig.Src, orig.ID, orig.Addr, data)
			sim.AssignMsgID(rsp)
			if !e.ToL1.Send(now, rsp) {
				return fmt.Errorf("%s: L1 rejected response", e.Name())
			}
			return nil
		}
		return e.afterDecompression(now, latency, deliver)
	case *WriteACK:
		orig, ok := e.pendingWrites[wire.RspTo]
		if !ok {
			return fmt.Errorf("%s: WriteACK for unknown request %d", e.Name(), wire.RspTo)
		}
		delete(e.pendingWrites, wire.RspTo)
		ack := mem.NewWriteACK(e.ToL1, orig.Src, orig.ID, orig.Addr)
		sim.AssignMsgID(ack)
		if !e.ToL1.Send(now, ack) {
			return fmt.Errorf("%s: L1 rejected ack", e.Name())
		}
		return nil
	default:
		return fmt.Errorf("%s: unexpected wire message %T", e.Name(), msg)
	}
}

func (e *Engine) afterDecompression(now sim.Time, cycles int, deliver func(sim.Time) error) error {
	if cycles <= 0 {
		return deliver(now)
	}
	e.engine.Schedule(delayedDeliverEvent{
		EventBase: sim.NewEventBase(now+sim.Time(cycles), e),
		deliver:   deliver,
	})
	return nil
}

func decompressionCycles(alg comp.Algorithm) int {
	return comp.CostOf(alg).DecompressionCycles
}

// handleL2Response turns local L2 responses into wire responses for the
// requesting GPU.
func (e *Engine) handleL2Response(now sim.Time, msg sim.Msg) error {
	switch rsp := msg.(type) {
	case *mem.DataReady:
		wireReq, ok := e.serviceReads[rsp.RspTo]
		if !ok {
			return fmt.Errorf("%s: L2 data for unknown request %d", e.Name(), rsp.RspTo)
		}
		delete(e.serviceReads, rsp.RspTo)
		payload, d := e.compress(rsp.Data)
		out := &DataReady{RspTo: wireReq.ID, Addr: rsp.Addr, Payload: payload}
		out.Src, out.Dst = e.ToFabric, wireReq.Src
		out.Bytes = DataReadyHeaderBytes + payload.WireBytes()
		sim.AssignMsgID(out)
		e.Rec.Header(DataReadyHeaderBytes)
		e.scheduleSend(now, out, d.CompressionCycles)
		return nil
	case *mem.WriteACK:
		wireReq, ok := e.serviceWrites[rsp.RspTo]
		if !ok {
			return fmt.Errorf("%s: L2 ack for unknown request %d", e.Name(), rsp.RspTo)
		}
		delete(e.serviceWrites, rsp.RspTo)
		out := &WriteACK{RspTo: wireReq.ID}
		out.Src, out.Dst = e.ToFabric, wireReq.Src
		out.Bytes = WriteACKHeaderBytes
		sim.AssignMsgID(out)
		e.Rec.Header(WriteACKHeaderBytes)
		e.outQueue = append(e.outQueue, out)
		e.drainOutQueue(now)
		return nil
	default:
		return fmt.Errorf("%s: unexpected L2 message %T", e.Name(), msg)
	}
}
