package rdma

import (
	"bytes"
	"strings"
	"testing"

	"mgpucompress/internal/comp"
	"mgpucompress/internal/core"
	"mgpucompress/internal/fabric"
	"mgpucompress/internal/fault"
	"mgpucompress/internal/mem"
	"mgpucompress/internal/sim"
	"mgpucompress/internal/trace"
)

// newGuardedTestbed mirrors newTestbed with the reliability guard armed on
// both RDMA engines and, when the profile is enabled, a fault injector on
// the bus.
func newGuardedTestbed(t *testing.T, policy func(int) core.Policy, prof fault.Profile, seed int64) *testbed {
	t.Helper()
	tb := &testbed{engine: sim.NewEngine(), rec: &recorder{}}
	tb.part = tb.engine.Partition(0)
	tb.space = mem.NewSpace(2)
	fcfg := fabric.DefaultConfig()
	if prof.Enabled() {
		fcfg.Fault = fault.NewInjector(prof, seed)
	}
	tb.bus = fabric.NewBus("bus", tb.part, fcfg)

	for g := 0; g < 2; g++ {
		g := g
		tb.drams[g] = mem.NewDRAM("DRAM", tb.part, tb.space, mem.DefaultDRAMConfig())
		tb.l1s[g] = newL1Stub("L1")
		tb.rdmas[g] = New("RDMA", tb.part, g, policy(g), tb.rec)
		tb.rdmas[g].OwnerOf = tb.space.GPUOf
		tb.rdmas[g].L2Router = func(uint64) *sim.Port { return tb.drams[g].Top }
		tb.rdmas[g].RemotePort = func(gpu int) *sim.Port { return tb.rdmas[gpu].ToFabric }
		tb.rdmas[g].Guard = &GuardConfig{
			TimeoutCycles: sim.Time(prof.Timeout()),
			MaxAttempts:   prof.Attempts(),
		}

		l1conn := sim.NewDirectConnection("l1conn", tb.part, 1)
		l1conn.Plug(tb.l1s[g].port)
		l1conn.Plug(tb.rdmas[g].ToL1)
		l2conn := sim.NewDirectConnection("l2conn", tb.part, 1)
		l2conn.Plug(tb.rdmas[g].ToL2)
		l2conn.Plug(tb.drams[g].Top)
		tb.bus.Attach(tb.rdmas[g].ToFabric, tb.part)
	}
	return tb
}

func (tb *testbed) guardStats() (crc, retries, nacks, timeouts, stale uint64) {
	for _, e := range tb.rdmas {
		crc += e.CRCErrors
		retries += e.Retries
		nacks += e.NACKsSent
		timeouts += e.TimeoutsFired
		stale += e.StaleDrops
	}
	return
}

// TestGuardCleanFabricIsTransparent: with the guard on but no faults, every
// transfer completes with zero guard events — the CRC protocol is pure
// overhead, never behaviour.
func TestGuardCleanFabricIsTransparent(t *testing.T) {
	tb := newGuardedTestbed(t, func(int) core.Policy { return core.NewStatic(comp.BDI) }, fault.Profile{}, 0)
	addr := remoteAddr(tb.space)
	want := compressibleLine()
	tb.space.Write(addr, want)

	r := mem.NewReadReq(tb.l1s[0].port, tb.rdmas[0].ToL1, addr, comp.LineSize)
	tb.l1s[0].port.Send(0, r)
	w := mem.NewWriteReq(tb.l1s[0].port, tb.rdmas[0].ToL1, addr+64, want)
	tb.l1s[0].port.Send(0, w)
	if err := tb.engine.Run(); err != nil {
		t.Fatal(err)
	}
	if rsp := tb.l1s[0].reads[r.ID]; rsp == nil || !bytes.Equal(rsp.Data, want) {
		t.Error("guarded read failed")
	}
	if _, ok := tb.l1s[0].acks[w.ID]; !ok {
		t.Error("guarded write not acked")
	}
	crc, retries, nacks, timeouts, stale := tb.guardStats()
	if crc+retries+nacks+timeouts+stale != 0 {
		t.Errorf("clean fabric produced guard events: crc=%d retries=%d nacks=%d timeouts=%d stale=%d",
			crc, retries, nacks, timeouts, stale)
	}
}

// TestGuardCRCTrailerCharged: the guard adds exactly CRCTrailerBytes to each
// payload-bearing wire message and nothing else.
func TestGuardCRCTrailerCharged(t *testing.T) {
	run := func(guarded bool) uint64 {
		var tb *testbed
		if guarded {
			tb = newGuardedTestbed(t, func(int) core.Policy { return core.NewStatic(comp.BDI) }, fault.Profile{}, 0)
		} else {
			tb = newTestbed(t, func(int) core.Policy { return core.NewStatic(comp.BDI) })
		}
		addr := remoteAddr(tb.space)
		tb.space.Write(addr, compressibleLine())
		r := mem.NewReadReq(tb.l1s[0].port, tb.rdmas[0].ToL1, addr, comp.LineSize)
		tb.l1s[0].port.Send(0, r)
		if err := tb.engine.Run(); err != nil {
			t.Fatal(err)
		}
		return tb.bus.BytesSent
	}
	plain, guarded := run(false), run(true)
	// One read = ReadReq (no payload) + DataReady (one CRC trailer).
	if guarded != plain+CRCTrailerBytes {
		t.Errorf("guarded read traffic %d, want %d + %d", guarded, plain, CRCTrailerBytes)
	}
}

// TestGuardRecoversFromCorruption: under a seeded corrupting fabric, every
// transfer still completes with correct data — corrupt payloads are NACKed
// and retransmitted, never silently accepted.
func TestGuardRecoversFromCorruption(t *testing.T) {
	prof := fault.Profile{CorruptRate: 0.3, TimeoutCycles: 512}
	tb := newGuardedTestbed(t, func(int) core.Policy { return core.NewStatic(comp.BDI) }, prof, 1)
	addr := remoteAddr(tb.space)
	want := compressibleLine()
	var reads []*mem.ReadReq
	var writes []*mem.WriteReq
	for i := 0; i < 40; i++ {
		lineAddr := addr + uint64(i%16)*64
		if i%2 == 0 {
			tb.space.Write(lineAddr, want)
			r := mem.NewReadReq(tb.l1s[0].port, tb.rdmas[0].ToL1, lineAddr, comp.LineSize)
			tb.l1s[0].port.Send(tb.engine.Now(), r)
			reads = append(reads, r)
		} else {
			w := mem.NewWriteReq(tb.l1s[0].port, tb.rdmas[0].ToL1, lineAddr, want)
			tb.l1s[0].port.Send(tb.engine.Now(), w)
			writes = append(writes, w)
		}
	}
	if err := tb.engine.Run(); err != nil {
		t.Fatal(err)
	}
	for _, r := range reads {
		rsp, ok := tb.l1s[0].reads[r.ID]
		if !ok {
			t.Fatalf("read %d lost under corruption", r.ID)
		}
		if !bytes.Equal(rsp.Data, want) {
			t.Fatalf("read %d returned corrupt data", r.ID)
		}
	}
	for _, w := range writes {
		if _, ok := tb.l1s[0].acks[w.ID]; !ok {
			t.Fatalf("write %d lost under corruption", w.ID)
		}
		if got := tb.space.Read(w.Addr, comp.LineSize); !bytes.Equal(got, want) {
			t.Fatalf("write %d stored corrupt data", w.ID)
		}
	}
	crc, retries, nacks, _, _ := tb.guardStats()
	if crc == 0 || retries == 0 || nacks == 0 {
		t.Errorf("corrupting fabric produced no guard events: crc=%d retries=%d nacks=%d", crc, retries, nacks)
	}
}

// TestGuardRecoversFromDrops: dropped messages are recovered by timeout
// retransmission.
func TestGuardRecoversFromDrops(t *testing.T) {
	prof := fault.Profile{DropRate: 0.25, TimeoutCycles: 256}
	tb := newGuardedTestbed(t, func(int) core.Policy { return core.NewStatic(comp.BDI) }, prof, 2)
	addr := remoteAddr(tb.space)
	want := compressibleLine()
	var reads []*mem.ReadReq
	var writes []*mem.WriteReq
	for i := 0; i < 30; i++ {
		lineAddr := addr + uint64(i%8)*64
		if i%2 == 0 {
			tb.space.Write(lineAddr, want)
			r := mem.NewReadReq(tb.l1s[0].port, tb.rdmas[0].ToL1, lineAddr, comp.LineSize)
			tb.l1s[0].port.Send(tb.engine.Now(), r)
			reads = append(reads, r)
		} else {
			w := mem.NewWriteReq(tb.l1s[0].port, tb.rdmas[0].ToL1, lineAddr, want)
			tb.l1s[0].port.Send(tb.engine.Now(), w)
			writes = append(writes, w)
		}
	}
	if err := tb.engine.Run(); err != nil {
		t.Fatal(err)
	}
	for _, r := range reads {
		if rsp := tb.l1s[0].reads[r.ID]; rsp == nil || !bytes.Equal(rsp.Data, want) {
			t.Fatalf("read %d lost or corrupt under drops", r.ID)
		}
	}
	for _, w := range writes {
		if _, ok := tb.l1s[0].acks[w.ID]; !ok {
			t.Fatalf("write %d lost under drops", w.ID)
		}
	}
	_, retries, _, timeouts, _ := tb.guardStats()
	if timeouts == 0 || retries == 0 {
		t.Errorf("dropping fabric fired no timeouts: retries=%d timeouts=%d", retries, timeouts)
	}
}

// TestGuardFaultsAreDeterministic: two runs with the same profile and seed
// produce identical guard counters and identical timing.
func TestGuardFaultsAreDeterministic(t *testing.T) {
	prof := fault.Profile{CorruptRate: 0.2, DropRate: 0.1, DelayRate: 0.2, DelayCycles: 32, TimeoutCycles: 256}
	run := func() (stats [5]uint64, end sim.Time) {
		tb := newGuardedTestbed(t, func(int) core.Policy { return core.NewStatic(comp.BDI) }, prof, 9)
		addr := remoteAddr(tb.space)
		want := compressibleLine()
		for i := 0; i < 30; i++ {
			lineAddr := addr + uint64(i%8)*64
			tb.space.Write(lineAddr, want)
			if i%2 == 0 {
				tb.l1s[0].port.Send(tb.engine.Now(), mem.NewReadReq(tb.l1s[0].port, tb.rdmas[0].ToL1, lineAddr, comp.LineSize))
			} else {
				tb.l1s[0].port.Send(tb.engine.Now(), mem.NewWriteReq(tb.l1s[0].port, tb.rdmas[0].ToL1, lineAddr, want))
			}
		}
		if err := tb.engine.Run(); err != nil {
			t.Fatal(err)
		}
		stats[0], stats[1], stats[2], stats[3], stats[4] = tb.guardStats()
		return stats, tb.engine.Now()
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 {
		t.Errorf("same seed, different guard stats: %v vs %v", s1, s2)
	}
	if t1 != t2 {
		t.Errorf("same seed, different end times: %d vs %d", t1, t2)
	}
}

// TestGuardExhaustionIsHardError: when every transmission is corrupted, the
// engine gives up after MaxAttempts with an explicit error — corruption is
// never silently absorbed.
func TestGuardExhaustionIsHardError(t *testing.T) {
	prof := fault.Profile{CorruptRate: 1, TimeoutCycles: 128, MaxAttempts: 3}
	tb := newGuardedTestbed(t, func(int) core.Policy { return core.NewStatic(comp.BDI) }, prof, 3)
	addr := remoteAddr(tb.space)
	w := mem.NewWriteReq(tb.l1s[0].port, tb.rdmas[0].ToL1, addr, compressibleLine())
	tb.l1s[0].port.Send(0, w)
	err := tb.engine.Run()
	if err == nil {
		t.Fatal("fully corrupting fabric did not surface an error")
	}
	if !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Errorf("unexpected error: %v", err)
	}
	if _, ok := tb.l1s[0].acks[w.ID]; ok {
		t.Error("exhausted write was acked")
	}
}

// TestGuardRetrySpansRecorded: retransmissions appear on the trace timeline
// under the "fault" category.
func TestGuardRetrySpansRecorded(t *testing.T) {
	prof := fault.Profile{DropRate: 0.4, TimeoutCycles: 128, MaxAttempts: 20}
	tb := newGuardedTestbed(t, func(int) core.Policy { return core.NewStatic(comp.BDI) }, prof, 5)
	spans := &trace.Recorder{}
	for _, e := range tb.rdmas {
		e.Spans = spans
	}
	addr := remoteAddr(tb.space)
	for i := 0; i < 20; i++ {
		tb.l1s[0].port.Send(tb.engine.Now(), mem.NewWriteReq(tb.l1s[0].port, tb.rdmas[0].ToL1, addr+uint64(i%4)*64, compressibleLine()))
	}
	if err := tb.engine.Run(); err != nil {
		t.Fatal(err)
	}
	_, retries, _, _, _ := tb.guardStats()
	if retries == 0 {
		t.Skip("seed produced no retries")
	}
	n := 0
	for _, s := range spans.Spans() {
		if s.Cat == "fault" && strings.HasPrefix(s.Name, "retry:") {
			n++
		}
	}
	if uint64(n) != retries {
		t.Errorf("%d retry spans for %d retries", n, retries)
	}
}

// Stale / duplicate handling, white-box.

func TestStaleResponsesDroppedOnlyWithGuard(t *testing.T) {
	mk := func(guard bool) *Engine {
		e := New("R", sim.NewEngine().Partition(0), 0, nil, nil)
		if guard {
			e.Guard = &GuardConfig{TimeoutCycles: 128, MaxAttempts: 3}
		}
		return e
	}
	stale := &DataReady{RspTo: 999}
	ack := &WriteACK{RspTo: 998}

	g := mk(true)
	if err := g.handleWire(0, stale); err != nil {
		t.Errorf("guarded stale DataReady: %v", err)
	}
	if err := g.handleWire(0, ack); err != nil {
		t.Errorf("guarded stale WriteACK: %v", err)
	}
	if g.StaleDrops != 2 {
		t.Errorf("StaleDrops = %d, want 2", g.StaleDrops)
	}

	u := mk(false)
	if err := u.handleWire(0, stale); err == nil {
		t.Error("unguarded stale DataReady accepted")
	}
	if err := u.handleWire(0, ack); err == nil {
		t.Error("unguarded stale WriteACK accepted")
	}
	if err := u.handleWire(0, &NACK{RspTo: 1}); err == nil {
		t.Error("NACK without guard accepted")
	}
}

// integrityPolicy records the integrity signal an engine feeds its policy.
type integrityPolicy struct {
	core.Uncompressed
	signals []bool
}

func (p *integrityPolicy) ObserveIntegrity(ok bool) { p.signals = append(p.signals, ok) }

// TestNACKFeedsIntegritySignal: a codec-attributed NACK reaches the policy
// as ObserveIntegrity(false); a raw-payload NACK carries no codec blame.
func TestNACKFeedsIntegritySignal(t *testing.T) {
	pol := &integrityPolicy{}
	e := New("R", sim.NewEngine().Partition(0), 0, pol, nil)
	e.Guard = &GuardConfig{TimeoutCycles: 128, MaxAttempts: 3}

	if err := e.handleWire(0, &NACK{RspTo: 77, Alg: comp.BDI}); err != nil {
		t.Fatal(err)
	}
	if len(pol.signals) != 1 || pol.signals[0] {
		t.Errorf("codec NACK signals = %v, want [false]", pol.signals)
	}
	if err := e.handleWire(0, &NACK{RspTo: 78, Alg: comp.None}); err != nil {
		t.Fatal(err)
	}
	if len(pol.signals) != 1 {
		t.Errorf("raw-payload NACK blamed the codec: %v", pol.signals)
	}
}
