package rdma

import (
	"bytes"
	"encoding/binary"
	"testing"

	"mgpucompress/internal/comp"
	"mgpucompress/internal/core"
	"mgpucompress/internal/fabric"
	"mgpucompress/internal/mem"
	"mgpucompress/internal/sim"
)

// l1stub plays the role of a GPU's L1 complex: it fires remote requests at
// the RDMA engine and records responses.
type l1stub struct {
	sim.ComponentBase
	port  *sim.Port
	reads map[uint64]*mem.DataReady
	acks  map[uint64]*mem.WriteACK
	times map[uint64]sim.Time
}

func newL1Stub(name string) *l1stub {
	s := &l1stub{
		ComponentBase: sim.NewComponentBase(name),
		reads:         make(map[uint64]*mem.DataReady),
		acks:          make(map[uint64]*mem.WriteACK),
		times:         make(map[uint64]sim.Time),
	}
	s.port = sim.NewPort(s, name+".port", 0)
	return s
}

func (s *l1stub) Handle(sim.Event) error { return nil }

func (s *l1stub) NotifyRecv(now sim.Time, p *sim.Port) {
	for {
		m := p.Retrieve(now)
		if m == nil {
			return
		}
		switch rsp := m.(type) {
		case *mem.DataReady:
			s.reads[rsp.RspTo] = rsp
			s.times[rsp.RspTo] = now
		case *mem.WriteACK:
			s.acks[rsp.RspTo] = rsp
			s.times[rsp.RspTo] = now
		}
	}
}

func (s *l1stub) NotifyPortFree(sim.Time, *sim.Port) {}

// recorder captures Recorder callbacks for assertions.
type recorder struct {
	reads, writes int
	payloads      []core.Decision
	lines         [][]byte
	headerBytes   int
}

func (r *recorder) RemoteRead(int)  { r.reads++ }
func (r *recorder) RemoteWrite(int) { r.writes++ }
func (r *recorder) Payload(line []byte, d core.Decision) {
	r.lines = append(r.lines, append([]byte(nil), line...))
	r.payloads = append(r.payloads, d)
}
func (r *recorder) Header(n int) { r.headerBytes += n }

// testbed wires two GPUs' RDMA engines over a bus, each backed by one DRAM
// channel standing in for the local L2 complex.
type testbed struct {
	engine *sim.Engine
	part   *sim.Partition
	space  *mem.Space
	bus    *fabric.Bus
	rdmas  [2]*Engine
	drams  [2]*mem.DRAM
	l1s    [2]*l1stub
	rec    *recorder
}

func newTestbed(t *testing.T, policy func(gpu int) core.Policy) *testbed {
	t.Helper()
	tb := &testbed{
		engine: sim.NewEngine(),
		rec:    &recorder{},
	}
	tb.part = tb.engine.Partition(0)
	tb.space = mem.NewSpace(2)
	tb.bus = fabric.NewBus("bus", tb.part, fabric.DefaultConfig())

	for g := 0; g < 2; g++ {
		g := g
		tb.drams[g] = mem.NewDRAM("DRAM", tb.part, tb.space, mem.DefaultDRAMConfig())
		tb.l1s[g] = newL1Stub("L1")
		tb.rdmas[g] = New("RDMA", tb.part, g, policy(g), tb.rec)
		tb.rdmas[g].OwnerOf = tb.space.GPUOf
		tb.rdmas[g].L2Router = func(uint64) *sim.Port { return tb.drams[g].Top }
		tb.rdmas[g].RemotePort = func(gpu int) *sim.Port { return tb.rdmas[gpu].ToFabric }

		l1conn := sim.NewDirectConnection("l1conn", tb.part, 1)
		l1conn.Plug(tb.l1s[g].port)
		l1conn.Plug(tb.rdmas[g].ToL1)
		l2conn := sim.NewDirectConnection("l2conn", tb.part, 1)
		l2conn.Plug(tb.rdmas[g].ToL2)
		l2conn.Plug(tb.drams[g].Top)
		tb.bus.Attach(tb.rdmas[g].ToFabric, tb.part)
	}
	return tb
}

func compressibleLine() []byte {
	line := make([]byte, comp.LineSize)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(line[i*8:], 1<<50+uint64(i*3))
	}
	return line
}

// remoteAddr returns a line-aligned address owned by GPU 1.
func remoteAddr(s *mem.Space) uint64 {
	for p := uint64(0); ; p++ {
		addr := p * mem.PageSize
		if s.GPUOf(addr) == 1 {
			return addr
		}
	}
}

func TestRemoteReadRoundTrip(t *testing.T) {
	tb := newTestbed(t, func(int) core.Policy { return core.NewStatic(comp.BDI) })
	addr := remoteAddr(tb.space)
	want := compressibleLine()
	tb.space.Write(addr, want)

	req := mem.NewReadReq(tb.l1s[0].port, tb.rdmas[0].ToL1, addr, comp.LineSize)
	tb.l1s[0].port.Send(0, req)
	if err := tb.engine.Run(); err != nil {
		t.Fatal(err)
	}
	rsp, ok := tb.l1s[0].reads[req.ID]
	if !ok {
		t.Fatal("no response")
	}
	if !bytes.Equal(rsp.Data, want) {
		t.Errorf("data mismatch:\n got %x\nwant %x", rsp.Data, want)
	}
	if tb.rec.reads != 1 {
		t.Errorf("recorded %d remote reads", tb.rec.reads)
	}
	if len(tb.rec.payloads) != 1 {
		t.Fatalf("recorded %d payloads", len(tb.rec.payloads))
	}
	if tb.rec.payloads[0].Alg != comp.BDI {
		t.Errorf("payload compressed with %v, want BDI", tb.rec.payloads[0].Alg)
	}
	// Header accounting: ReadReq (16) + DataReady (4).
	if tb.rec.headerBytes != 20 {
		t.Errorf("header bytes = %d, want 20", tb.rec.headerBytes)
	}
}

func TestRemoteWriteRoundTrip(t *testing.T) {
	tb := newTestbed(t, func(int) core.Policy { return core.NewStatic(comp.BDI) })
	addr := remoteAddr(tb.space)
	data := compressibleLine()

	req := mem.NewWriteReq(tb.l1s[0].port, tb.rdmas[0].ToL1, addr, data)
	tb.l1s[0].port.Send(0, req)
	if err := tb.engine.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.l1s[0].acks[req.ID]; !ok {
		t.Fatal("no ack")
	}
	if got := tb.space.Read(addr, comp.LineSize); !bytes.Equal(got, data) {
		t.Error("remote write not applied")
	}
	if tb.rec.writes != 1 {
		t.Errorf("recorded %d remote writes", tb.rec.writes)
	}
	if tb.rec.payloads[0].Alg != comp.BDI {
		t.Errorf("write payload alg = %v", tb.rec.payloads[0].Alg)
	}
	if tb.rec.headerBytes != 20 { // WriteReq 16 + WriteACK 4
		t.Errorf("header bytes = %d, want 20", tb.rec.headerBytes)
	}
}

func TestIncompressiblePayloadShipsRawAndBypassesDecompressor(t *testing.T) {
	tb := newTestbed(t, func(int) core.Policy { return core.NewStatic(comp.BDI) })
	addr := remoteAddr(tb.space)
	// Random-ish line BDI cannot compress.
	line := make([]byte, comp.LineSize)
	for i := range line {
		line[i] = byte(i*37 + 11)
	}
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(line[i*8:], 0xDEADBEEF12345678+uint64(i)*0x1111111111111111)
	}
	tb.space.Write(addr, line)

	req := mem.NewReadReq(tb.l1s[0].port, tb.rdmas[0].ToL1, addr, comp.LineSize)
	tb.l1s[0].port.Send(0, req)
	if err := tb.engine.Run(); err != nil {
		t.Fatal(err)
	}
	rsp, ok := tb.l1s[0].reads[req.ID]
	if !ok {
		t.Fatal("no response")
	}
	if !bytes.Equal(rsp.Data, line) {
		t.Error("data mismatch")
	}
	d := tb.rec.payloads[0]
	if d.Alg != comp.None {
		t.Errorf("incompressible payload shipped as %v", d.Alg)
	}
	if d.DecompressionCycles != 0 {
		t.Error("raw payload charged decompression latency")
	}
}

func TestCompressionReducesWireBytes(t *testing.T) {
	run := func(policy func(int) core.Policy) uint64 {
		tb := newTestbed(t, policy)
		addr := remoteAddr(tb.space)
		tb.space.Write(addr, compressibleLine())
		for i := 0; i < 20; i++ {
			req := mem.NewReadReq(tb.l1s[0].port, tb.rdmas[0].ToL1, addr+uint64(i%2)*64, comp.LineSize)
			tb.l1s[0].port.Send(tb.engine.Now(), req)
			if err := tb.engine.Run(); err != nil {
				t.Fatal(err)
			}
		}
		return tb.bus.BytesSent
	}
	raw := run(func(int) core.Policy { return core.Uncompressed{} })
	compressed := run(func(int) core.Policy { return core.NewStatic(comp.BDI) })
	if compressed >= raw {
		t.Errorf("BDI traffic %d not below raw traffic %d", compressed, raw)
	}
	// 20 lines compressed from 64 B to ≈18 B payloads: expect a large gap.
	if float64(compressed) > 0.6*float64(raw) {
		t.Errorf("traffic reduction too small: %d vs %d", compressed, raw)
	}
}

func TestCompressionLatencyDelaysResponse(t *testing.T) {
	respTime := func(policy func(int) core.Policy) sim.Time {
		tb := newTestbed(t, policy)
		addr := remoteAddr(tb.space)
		tb.space.Write(addr, compressibleLine())
		req := mem.NewReadReq(tb.l1s[0].port, tb.rdmas[0].ToL1, addr, comp.LineSize)
		tb.l1s[0].port.Send(0, req)
		if err := tb.engine.Run(); err != nil {
			t.Fatal(err)
		}
		return tb.l1s[0].times[req.ID]
	}
	raw := respTime(func(int) core.Policy { return core.Uncompressed{} })
	slow := respTime(func(int) core.Policy { return core.NewStatic(comp.CPackZ) })
	// C-Pack+Z adds 16 compression + 9 decompression cycles, but also
	// shortens the payload transfer. Verify the codec latency is actually
	// modeled: the response cannot be 25 cycles earlier than raw minus the
	// transfer savings (raw payload 64 B = 4 cycles vs compressed ≈ 2).
	if slow < raw {
		saved := raw - slow
		if saved > 3 { // max possible transfer saving
			t.Errorf("C-Pack+Z response at %d vs raw %d: latency not charged", slow, raw)
		}
	}
	if slow > raw+40 {
		t.Errorf("C-Pack+Z response at %d vs raw %d: too slow", slow, raw)
	}
}

func TestAdaptivePolicyOverRDMA(t *testing.T) {
	tb := newTestbed(t, func(int) core.Policy {
		return core.NewAdaptive(core.Config{Lambda: 6, SampleCount: 3, RunLength: 5})
	})
	addr := remoteAddr(tb.space)
	tb.space.Write(addr, compressibleLine())
	var reqs []*mem.ReadReq
	for i := 0; i < 30; i++ {
		req := mem.NewReadReq(tb.l1s[0].port, tb.rdmas[0].ToL1, addr, comp.LineSize)
		tb.l1s[0].port.Send(tb.engine.Now(), req)
		reqs = append(reqs, req)
		if err := tb.engine.Run(); err != nil {
			t.Fatal(err)
		}
	}
	want := compressibleLine()
	for _, r := range reqs {
		rsp, ok := tb.l1s[0].reads[r.ID]
		if !ok {
			t.Fatalf("request %d lost", r.ID)
		}
		if !bytes.Equal(rsp.Data, want) {
			t.Fatalf("request %d data mismatch", r.ID)
		}
	}
	// After sampling, BDI should be selected for this data.
	sawBDI := false
	for _, d := range tb.rec.payloads {
		if !d.Sampling && d.Alg == comp.BDI {
			sawBDI = true
		}
	}
	if !sawBDI {
		t.Error("adaptive policy never ran BDI in the running phase")
	}
}

func TestPartialLinePayloadShipsRaw(t *testing.T) {
	tb := newTestbed(t, func(int) core.Policy { return core.NewStatic(comp.FPC) })
	addr := remoteAddr(tb.space)
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	req := mem.NewWriteReq(tb.l1s[0].port, tb.rdmas[0].ToL1, addr, data)
	tb.l1s[0].port.Send(0, req)
	if err := tb.engine.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.l1s[0].acks[req.ID]; !ok {
		t.Fatal("no ack")
	}
	if got := tb.space.Read(addr, 8); !bytes.Equal(got, data) {
		t.Error("partial write not applied")
	}
}

func TestManyOutstandingRequestsAllComplete(t *testing.T) {
	tb := newTestbed(t, func(int) core.Policy { return core.NewAdaptive(core.Config{Lambda: 6}) })
	addr := remoteAddr(tb.space)
	var reads []*mem.ReadReq
	var writes []*mem.WriteReq
	for i := 0; i < 200; i++ {
		lineAddr := addr + uint64(i%32)*64
		if i%3 == 0 {
			w := mem.NewWriteReq(tb.l1s[0].port, tb.rdmas[0].ToL1, lineAddr, compressibleLine())
			tb.l1s[0].port.Send(tb.engine.Now(), w)
			writes = append(writes, w)
		} else {
			r := mem.NewReadReq(tb.l1s[0].port, tb.rdmas[0].ToL1, lineAddr, comp.LineSize)
			tb.l1s[0].port.Send(tb.engine.Now(), r)
			reads = append(reads, r)
		}
	}
	if err := tb.engine.Run(); err != nil {
		t.Fatal(err)
	}
	for _, r := range reads {
		if _, ok := tb.l1s[0].reads[r.ID]; !ok {
			t.Fatalf("read %d lost", r.ID)
		}
	}
	for _, w := range writes {
		if _, ok := tb.l1s[0].acks[w.ID]; !ok {
			t.Fatalf("write %d lost", w.ID)
		}
	}
}

// Sec. V: because the Comp Alg field travels with every packet, GPUs can
// run entirely different compression algorithms without exchanging any
// configuration. GPU 0 compresses with FPC while GPU 1 uses BDI; traffic in
// both directions must stay correct.
func TestHeterogeneousPoliciesPerGPU(t *testing.T) {
	tb := newTestbed(t, func(gpu int) core.Policy {
		if gpu == 0 {
			return core.NewStatic(comp.FPC)
		}
		return core.NewStatic(comp.BDI)
	})
	addr1 := remoteAddr(tb.space) // owned by GPU 1
	// An address owned by GPU 0.
	var addr0 uint64
	for p := uint64(0); ; p++ {
		if tb.space.GPUOf(p*mem.PageSize) == 0 {
			addr0 = p * mem.PageSize
			break
		}
	}
	want := compressibleLine()
	tb.space.Write(addr0, want)
	tb.space.Write(addr1, want)

	// GPU 0 reads GPU 1's line (GPU 1 compresses the response with BDI);
	// GPU 1 reads GPU 0's line (GPU 0 compresses with FPC).
	r01 := mem.NewReadReq(tb.l1s[0].port, tb.rdmas[0].ToL1, addr1, comp.LineSize)
	r10 := mem.NewReadReq(tb.l1s[1].port, tb.rdmas[1].ToL1, addr0, comp.LineSize)
	tb.l1s[0].port.Send(0, r01)
	tb.l1s[1].port.Send(0, r10)
	if err := tb.engine.Run(); err != nil {
		t.Fatal(err)
	}
	if got := tb.l1s[0].reads[r01.ID]; got == nil || !bytes.Equal(got.Data, want) {
		t.Error("GPU0 read via BDI-compressing owner failed")
	}
	if got := tb.l1s[1].reads[r10.ID]; got == nil || !bytes.Equal(got.Data, want) {
		t.Error("GPU1 read via FPC-compressing owner failed")
	}
	// Both algorithms must appear in the recorded decisions.
	algs := map[comp.Algorithm]bool{}
	for _, d := range tb.rec.payloads {
		algs[d.Alg] = true
	}
	if !algs[comp.BDI] {
		t.Error("BDI never used")
	}
	// The compressible test line compresses under both codecs; FPC is the
	// one GPU 0 applies to its outgoing payload.
	if !algs[comp.FPC] && !algs[comp.None] {
		t.Error("FPC/None never used")
	}
}

func TestNopRecorder(t *testing.T) {
	var r NopRecorder
	r.RemoteRead(0)
	r.RemoteWrite(0)
	r.Payload(nil, core.Decision{})
	r.Header(4)
	// New must substitute a NopRecorder when given nil.
	engine := sim.NewEngine()
	e := New("R", engine.Partition(0), 0, nil, nil)
	if e.Rec == nil {
		t.Fatal("nil recorder not substituted")
	}
	e.Rec.Header(1) // must not panic
}
