package rdma

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mgpucompress/internal/comp"
)

// The packed header sizes must equal the byte sizes charged on the fabric.
func TestWireHeaderSizesMatchAccounting(t *testing.T) {
	cases := []struct {
		h    Header
		want int
	}{
		{Header{Type: MsgRead, Seq: 1, Addr: 0x123456789AB, Length: 64}, ReadReqHeaderBytes},
		{Header{Type: MsgDataReady, Seq: 2, CompAlg: comp.BDI}, DataReadyHeaderBytes},
		{Header{Type: MsgWrite, Seq: 3, Addr: 0xFFF, CompAlg: comp.FPC, Length: 64}, WriteReqHeaderBytes},
		{Header{Type: MsgWriteACK, Seq: 4}, WriteACKHeaderBytes},
	}
	for _, c := range cases {
		buf, err := EncodeHeader(c.h)
		if err != nil {
			t.Fatalf("%v: %v", c.h.Type, err)
		}
		if len(buf) != c.want {
			t.Errorf("%v header = %d bytes, want %d", c.h.Type, len(buf), c.want)
		}
	}
}

// Property: encode/decode is the identity for every valid header.
func TestWireHeaderRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := Header{
			Type:    MsgType(rng.Intn(4)),
			Seq:     uint16(rng.Uint32()),
			Addr:    rng.Uint64() & addrMask,
			Length:  rng.Uint32(),
			CompAlg: comp.Algorithm(rng.Intn(5)),
		}
		// Fields not carried by the type are dropped on the wire.
		switch h.Type {
		case MsgDataReady:
			h.Addr, h.Length = 0, 0
		case MsgWriteACK:
			h.Addr, h.Length, h.CompAlg = 0, 0, 0
		case MsgRead:
			h.CompAlg = 0
		}
		buf, err := EncodeHeader(h)
		if err != nil {
			return false
		}
		got, err := DecodeHeader(buf)
		if err != nil {
			return false
		}
		return got == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestWireHeaderRejectsOversizedFields(t *testing.T) {
	if _, err := EncodeHeader(Header{Type: MsgRead, Addr: 1 << 48}); err == nil {
		t.Error("49-bit address accepted")
	}
	if _, err := EncodeHeader(Header{Type: MsgDataReady, CompAlg: 16}); err == nil {
		t.Error("5-bit Comp Alg accepted")
	}
	if _, err := EncodeHeader(Header{Type: MsgType(9)}); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestWireDecodeTruncatedErrors(t *testing.T) {
	buf, err := EncodeHeader(Header{Type: MsgRead, Seq: 7, Addr: 0x1000, Length: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeHeader(buf[:4]); err == nil {
		t.Error("truncated Read header decoded")
	}
	if _, err := DecodeHeader(nil); err == nil {
		t.Error("empty header decoded")
	}
}

// The struct messages produce headers consistent with their fields.
func TestMessageHeaderExtraction(t *testing.T) {
	r := &ReadReq{Addr: 0xABCDE0, N: 64}
	r.ID = 0x1234
	h := r.Header()
	if h.Type != MsgRead || h.Seq != 0x1234 || h.Addr != 0xABCDE0 || h.Length != 64 {
		t.Errorf("ReadReq header = %+v", h)
	}
	buf, err := EncodeHeader(h)
	if err != nil || len(buf) != ReadReqHeaderBytes {
		t.Fatalf("encode: %v, %d bytes", err, len(buf))
	}
	back, err := DecodeHeader(buf)
	if err != nil || back != h {
		t.Errorf("round trip %+v != %+v", back, h)
	}

	d := &DataReady{RspTo: 77, Payload: Payload{Alg: comp.CPackZ}}
	if hd := d.Header(); hd.Type != MsgDataReady || hd.Seq != 77 || hd.CompAlg != comp.CPackZ {
		t.Errorf("DataReady header = %+v", hd)
	}
	w := &WriteReq{Addr: 0x99, Payload: Payload{Alg: comp.None, RawLen: 64}}
	w.ID = 5
	if hw := w.Header(); hw.Type != MsgWrite || hw.CompAlg != comp.None || hw.Length != 64 {
		t.Errorf("WriteReq header = %+v", hw)
	}
	a := &WriteACK{RspTo: 9}
	if ha := a.Header(); ha.Type != MsgWriteACK || ha.Seq != 9 {
		t.Errorf("WriteACK header = %+v", ha)
	}
}

func TestMsgTypeString(t *testing.T) {
	for _, tt := range []MsgType{MsgRead, MsgDataReady, MsgWrite, MsgWriteACK} {
		if tt.String() == "" {
			t.Error("unnamed message type")
		}
	}
	if MsgType(9).String() != "MsgType(9)" {
		t.Error("unknown type string")
	}
}
