package rdma

import (
	"fmt"
	"hash/crc32"

	"mgpucompress/internal/bitstream"
	"mgpucompress/internal/comp"
)

// Bit-accurate packing of the Fig. 4 message headers. The simulator routes
// Go structs for speed, but these encoders define the exact wire layout —
// every header byte the fabric-size accounting charges corresponds to real
// bits here, and tests assert the two never drift apart.
//
//	Read Req    MsgType(4) MsgID(16) PhyAddr(48) Length(32) Reserved(28)
//	Data Ready  MsgType(4) RspID(16) CompAlg(4)  Reserved(8)
//	Write Req   MsgType(4) MsgID(16) PhyAddr(48) CompAlg(4) Length(32) Reserved(24)
//	Write ACK   MsgType(4) RspID(16) Reserved(12)
//	NACK        MsgType(4) RspID(16) CompAlg(4)  Reserved(8)
//
// The NACK is this codebase's reliability extension (not in Fig. 4): a
// receiver that fails the CRC32C payload check rejects the transfer and
// reports the offending Comp Alg back to the compressing endpoint.

// MsgType is the 4-bit wire message type.
type MsgType uint8

// Fig. 4 message types, plus the NACK reliability extension.
const (
	MsgRead MsgType = iota
	MsgDataReady
	MsgWrite
	MsgWriteACK
	MsgNACK
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgRead:
		return "Read"
	case MsgDataReady:
		return "Data-Ready"
	case MsgWrite:
		return "Write"
	case MsgWriteACK:
		return "Write-ACK"
	case MsgNACK:
		return "NACK"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Header is the decoded form of any Fig. 4 header.
type Header struct {
	Type    MsgType
	Seq     uint16 // MsgID / RspID: 16-bit sequence for out-of-order fulfillment
	Addr    uint64 // 48-bit physical address (Read/Write)
	Length  uint32 // payload length in bytes (Read/Write)
	CompAlg comp.Algorithm
}

const addrMask = (uint64(1) << 48) - 1

// EncodeHeader packs the header into its exact Fig. 4 byte layout.
func EncodeHeader(h Header) ([]byte, error) {
	if h.Addr&^addrMask != 0 {
		return nil, fmt.Errorf("rdma: address %#x exceeds 48 bits", h.Addr)
	}
	if uint8(h.CompAlg) > 15 {
		return nil, fmt.Errorf("rdma: Comp Alg %d exceeds 4 bits", h.CompAlg)
	}
	w := bitstream.NewWriter()
	w.WriteBits(uint64(h.Type), 4)
	w.WriteBits(uint64(h.Seq), 16)
	switch h.Type {
	case MsgRead:
		w.WriteBits(h.Addr, 48)
		w.WriteBits(uint64(h.Length), 32)
		w.WriteBits(0, 28) // reserved
	case MsgDataReady, MsgNACK:
		w.WriteBits(uint64(h.CompAlg), 4)
		w.WriteBits(0, 8) // reserved
	case MsgWrite:
		w.WriteBits(h.Addr, 48)
		w.WriteBits(uint64(h.CompAlg), 4)
		w.WriteBits(uint64(h.Length), 32)
		w.WriteBits(0, 24) // reserved
	case MsgWriteACK:
		w.WriteBits(0, 12) // reserved
	default:
		return nil, fmt.Errorf("rdma: unknown message type %v", h.Type)
	}
	return w.Bytes(), nil
}

// DecodeHeader unpacks a Fig. 4 header.
func DecodeHeader(data []byte) (Header, error) {
	r := bitstream.NewReader(data)
	t, err := r.ReadBits(4)
	if err != nil {
		return Header{}, err
	}
	seq, err := r.ReadBits(16)
	if err != nil {
		return Header{}, err
	}
	h := Header{Type: MsgType(t), Seq: uint16(seq)}
	switch h.Type {
	case MsgRead:
		if h.Addr, err = r.ReadBits(48); err != nil {
			return Header{}, err
		}
		l, err := r.ReadBits(32)
		if err != nil {
			return Header{}, err
		}
		h.Length = uint32(l)
		if _, err := r.ReadBits(28); err != nil {
			return Header{}, err
		}
	case MsgDataReady, MsgNACK:
		alg, err := r.ReadBits(4)
		if err != nil {
			return Header{}, err
		}
		h.CompAlg = comp.Algorithm(alg)
		if _, err := r.ReadBits(8); err != nil {
			return Header{}, err
		}
	case MsgWrite:
		if h.Addr, err = r.ReadBits(48); err != nil {
			return Header{}, err
		}
		alg, err := r.ReadBits(4)
		if err != nil {
			return Header{}, err
		}
		h.CompAlg = comp.Algorithm(alg)
		l, err := r.ReadBits(32)
		if err != nil {
			return Header{}, err
		}
		h.Length = uint32(l)
		if _, err := r.ReadBits(24); err != nil {
			return Header{}, err
		}
	case MsgWriteACK:
		if _, err := r.ReadBits(12); err != nil {
			return Header{}, err
		}
	default:
		return Header{}, fmt.Errorf("rdma: unknown wire message type %d", t)
	}
	return h, nil
}

// Header returns the decoded Fig. 4 header of a ReadReq.
func (m *ReadReq) Header() Header {
	return Header{Type: MsgRead, Seq: uint16(m.ID), Addr: m.Addr & addrMask, Length: uint32(m.N)}
}

// Header returns the decoded Fig. 4 header of a DataReady.
func (m *DataReady) Header() Header {
	return Header{Type: MsgDataReady, Seq: uint16(m.RspTo), CompAlg: m.Payload.Alg}
}

// Header returns the decoded Fig. 4 header of a WriteReq.
func (m *WriteReq) Header() Header {
	return Header{Type: MsgWrite, Seq: uint16(m.ID), Addr: m.Addr & addrMask,
		CompAlg: m.Payload.Alg, Length: uint32(m.Payload.RawLen)}
}

// Header returns the decoded Fig. 4 header of a WriteACK.
func (m *WriteACK) Header() Header {
	return Header{Type: MsgWriteACK, Seq: uint16(m.RspTo)}
}

// Header returns the decoded header of a NACK.
func (m *NACK) Header() Header {
	return Header{Type: MsgNACK, Seq: uint16(m.RspTo), CompAlg: m.Alg}
}

// CRCTrailerBytes is the size of the CRC32C trailer appended to every
// payload-bearing wire message when the reliability guard is enabled. The
// trailer is charged to the message's fabric size only under an enabled
// guard, so fault-free runs keep their exact Fig. 4 byte accounting.
const CRCTrailerBytes = 4

// crcTable is the Castagnoli polynomial table shared by all engines.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// PayloadCRC computes the CRC32C of the payload's wire bytes (the encoded
// bitstream for compressed payloads, the raw line otherwise).
func PayloadCRC(p Payload) uint32 {
	return crc32.Checksum(p.wireData(), crcTable)
}
