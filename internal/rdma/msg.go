// Package rdma implements the per-GPU Remote Direct Memory Access engine
// (Fig. 3) and the inter-GPU wire protocol of Fig. 4. The RDMA engine is
// where the paper's compression happens: outgoing payloads (Data-Ready and
// Write messages) pass through a core.Policy, the chosen algorithm is
// carried in the 4-bit Comp Alg header field, and receivers either
// decompress or — when Comp Alg is 0 — bypass the decompressor entirely.
package rdma

import (
	"mgpucompress/internal/comp"
	"mgpucompress/internal/sim"
)

// Header sizes in bytes, from Fig. 4. Only the payload is ever compressed;
// headers always travel in full.
const (
	ReadReqHeaderBytes   = 16 // MsgType(4) MsgID(16) PhyAddr(48) Length(32) Reserved(28)
	DataReadyHeaderBytes = 4  // MsgType(4) RspID(16) CompAlg(4) Reserved(8)
	WriteReqHeaderBytes  = 16 // MsgType(4) MsgID(16) PhyAddr(48) CompAlg(4) Length(32) Reserved(24)
	WriteACKHeaderBytes  = 4  // MsgType(4) RspID(16) Reserved(12)
	NACKHeaderBytes      = 4  // MsgType(4) RspID(16) CompAlg(4) Reserved(8)
)

// ReadReq asks the owner GPU for N bytes at Addr.
type ReadReq struct {
	sim.MsgMeta
	Addr uint64
	N    int
}

// Meta implements sim.Msg.
func (m *ReadReq) Meta() *sim.MsgMeta { return &m.MsgMeta }

// Payload is a possibly-compressed line carried by DataReady and WriteReq
// messages.
type Payload struct {
	// Alg is the Comp Alg field: comp.None means Raw holds the bytes and
	// the receiver bypasses the decompressor.
	Alg comp.Algorithm
	// Enc is the compressed encoding (valid when Alg != comp.None).
	Enc comp.Encoded
	// Raw holds the uncompressed bytes (valid when Alg == comp.None).
	Raw []byte
	// RawLen is the original payload length in bytes.
	RawLen int
	// CRC is the CRC32C of the wire data, computed by the sender when the
	// reliability guard is enabled (0 otherwise). It models the 4-byte
	// trailer; receivers recompute and compare before accepting.
	CRC uint32
}

// WireBytes is the payload's size on the fabric.
func (p Payload) WireBytes() int {
	if p.Alg == comp.None {
		return len(p.Raw)
	}
	return p.Enc.WireBytes()
}

// wireData returns the bytes that travel on the fabric: the encoded
// bitstream for compressed payloads, the raw line otherwise.
func (p Payload) wireData() []byte {
	if p.Alg == comp.None {
		return p.Raw
	}
	return p.Enc.Data
}

// corrupt flips one wire-data bit chosen by pick, replacing the payload's
// data with a modified clone so the sender's retransmission copy stays
// intact. It reports false when there is no data to corrupt.
func (p *Payload) corrupt(pick uint64) bool {
	data := p.wireData()
	if len(data) == 0 {
		return false
	}
	clone := append([]byte(nil), data...)
	bit := pick % uint64(len(clone)*8)
	clone[bit/8] ^= 1 << (bit % 8)
	if p.Alg == comp.None {
		p.Raw = clone
	} else {
		p.Enc.Data = clone
	}
	return true
}

// Decode returns the original bytes, decompressing if needed.
func (p Payload) Decode() ([]byte, error) {
	if p.Alg == comp.None {
		return p.Raw, nil
	}
	return comp.Decode(p.Enc)
}

// DataReady answers a ReadReq.
type DataReady struct {
	sim.MsgMeta
	RspTo   uint64
	Addr    uint64
	Payload Payload
}

// Meta implements sim.Msg.
func (m *DataReady) Meta() *sim.MsgMeta { return &m.MsgMeta }

// WriteReq carries data to store at Addr on the owner GPU.
type WriteReq struct {
	sim.MsgMeta
	Addr    uint64
	Payload Payload
}

// Meta implements sim.Msg.
func (m *WriteReq) Meta() *sim.MsgMeta { return &m.MsgMeta }

// WriteACK acknowledges a WriteReq.
type WriteACK struct {
	sim.MsgMeta
	RspTo uint64
}

// Meta implements sim.Msg.
func (m *WriteACK) Meta() *sim.MsgMeta { return &m.MsgMeta }

// NACK rejects a payload whose CRC check failed, reporting the Comp Alg of
// the offending payload so the compressing endpoint can attribute the
// failure (comp.None = link fault on a raw payload, codec otherwise).
type NACK struct {
	sim.MsgMeta
	RspTo uint64
	Alg   comp.Algorithm
}

// Meta implements sim.Msg.
func (m *NACK) Meta() *sim.MsgMeta { return &m.MsgMeta }

// FaultInjectable marks the RDMA wire messages as legal fault-injection
// targets (they sit under the guard's CRC/NACK/retry protocol). The methods
// satisfy internal/fault's structural Injectable interface; control traffic
// such as kernel launches never implements it and is never injected.
func (m *ReadReq) FaultInjectable()   {}
func (m *DataReady) FaultInjectable() {}
func (m *WriteReq) FaultInjectable()  {}
func (m *WriteACK) FaultInjectable()  {}
func (m *NACK) FaultInjectable()      {}

// CorruptCopy implements fault.Corruptible: a copy of the message with one
// payload bit flipped. The original — still held by the sender for
// retransmission — is untouched.
func (m *DataReady) CorruptCopy(pick uint64) (sim.Msg, bool) {
	c := *m
	if !c.Payload.corrupt(pick) {
		return nil, false
	}
	return &c, true
}

// CorruptCopy implements fault.Corruptible.
func (m *WriteReq) CorruptCopy(pick uint64) (sim.Msg, bool) {
	c := *m
	if !c.Payload.corrupt(pick) {
		return nil, false
	}
	return &c, true
}
