// Package rdma implements the per-GPU Remote Direct Memory Access engine
// (Fig. 3) and the inter-GPU wire protocol of Fig. 4. The RDMA engine is
// where the paper's compression happens: outgoing payloads (Data-Ready and
// Write messages) pass through a core.Policy, the chosen algorithm is
// carried in the 4-bit Comp Alg header field, and receivers either
// decompress or — when Comp Alg is 0 — bypass the decompressor entirely.
package rdma

import (
	"mgpucompress/internal/comp"
	"mgpucompress/internal/sim"
)

// Header sizes in bytes, from Fig. 4. Only the payload is ever compressed;
// headers always travel in full.
const (
	ReadReqHeaderBytes   = 16 // MsgType(4) MsgID(16) PhyAddr(48) Length(32) Reserved(28)
	DataReadyHeaderBytes = 4  // MsgType(4) RspID(16) CompAlg(4) Reserved(8)
	WriteReqHeaderBytes  = 16 // MsgType(4) MsgID(16) PhyAddr(48) CompAlg(4) Length(32) Reserved(24)
	WriteACKHeaderBytes  = 4  // MsgType(4) RspID(16) Reserved(12)
)

// ReadReq asks the owner GPU for N bytes at Addr.
type ReadReq struct {
	sim.MsgMeta
	Addr uint64
	N    int
}

// Meta implements sim.Msg.
func (m *ReadReq) Meta() *sim.MsgMeta { return &m.MsgMeta }

// Payload is a possibly-compressed line carried by DataReady and WriteReq
// messages.
type Payload struct {
	// Alg is the Comp Alg field: comp.None means Raw holds the bytes and
	// the receiver bypasses the decompressor.
	Alg comp.Algorithm
	// Enc is the compressed encoding (valid when Alg != comp.None).
	Enc comp.Encoded
	// Raw holds the uncompressed bytes (valid when Alg == comp.None).
	Raw []byte
	// RawLen is the original payload length in bytes.
	RawLen int
}

// WireBytes is the payload's size on the fabric.
func (p Payload) WireBytes() int {
	if p.Alg == comp.None {
		return len(p.Raw)
	}
	return p.Enc.WireBytes()
}

// Decode returns the original bytes, decompressing if needed.
func (p Payload) Decode() ([]byte, error) {
	if p.Alg == comp.None {
		return p.Raw, nil
	}
	return comp.Decode(p.Enc)
}

// DataReady answers a ReadReq.
type DataReady struct {
	sim.MsgMeta
	RspTo   uint64
	Addr    uint64
	Payload Payload
}

// Meta implements sim.Msg.
func (m *DataReady) Meta() *sim.MsgMeta { return &m.MsgMeta }

// WriteReq carries data to store at Addr on the owner GPU.
type WriteReq struct {
	sim.MsgMeta
	Addr    uint64
	Payload Payload
}

// Meta implements sim.Msg.
func (m *WriteReq) Meta() *sim.MsgMeta { return &m.MsgMeta }

// WriteACK acknowledges a WriteReq.
type WriteACK struct {
	sim.MsgMeta
	RspTo uint64
}

// Meta implements sim.Msg.
func (m *WriteACK) Meta() *sim.MsgMeta { return &m.MsgMeta }
