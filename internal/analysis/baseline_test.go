package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

func testAnalyzers() []*Analyzer {
	return []*Analyzer{
		{Name: "alpha", ID: "T001", Doc: "test"},
		{Name: "beta", ID: "T002", Doc: "test"},
	}
}

func findingsOf(name string, n int) []Finding {
	out := make([]Finding, n)
	for i := range out {
		out[i] = Finding{Analyzer: name}
	}
	return out
}

// TestMakeBaselineCoversAllAnalyzers: even finding-free analyzers get an
// explicit zero budget.
func TestMakeBaselineCoversAllAnalyzers(t *testing.T) {
	res := &Result{
		Findings:   findingsOf("alpha", 2),
		Suppressed: findingsOf("beta", 3),
	}
	b := MakeBaseline(res, testAnalyzers())
	if b.Version != BaselineVersion {
		t.Errorf("version %d, want %d", b.Version, BaselineVersion)
	}
	if got := b.Analyzers["alpha"]; got != (BaselineEntry{Findings: 2}) {
		t.Errorf("alpha = %+v", got)
	}
	if got := b.Analyzers["beta"]; got != (BaselineEntry{Suppressions: 3}) {
		t.Errorf("beta = %+v", got)
	}
}

// TestBaselineCheckDirections: growth fails, shrinkage and equality pass.
func TestBaselineCheckDirections(t *testing.T) {
	committed := Baseline{Version: BaselineVersion, Analyzers: map[string]BaselineEntry{
		"alpha": {Findings: 1, Suppressions: 2},
	}}

	equal := Baseline{Version: BaselineVersion, Analyzers: map[string]BaselineEntry{
		"alpha": {Findings: 1, Suppressions: 2},
	}}
	if v := committed.Check(equal); len(v) != 0 {
		t.Errorf("equal counts flagged: %v", v)
	}

	shrunk := Baseline{Version: BaselineVersion, Analyzers: map[string]BaselineEntry{
		"alpha": {},
	}}
	if v := committed.Check(shrunk); len(v) != 0 {
		t.Errorf("shrunk counts flagged: %v", v)
	}

	grown := Baseline{Version: BaselineVersion, Analyzers: map[string]BaselineEntry{
		"alpha": {Findings: 2, Suppressions: 3},
		"gamma": {Suppressions: 1}, // absent from committed: budget zero
	}}
	v := committed.Check(grown)
	if len(v) != 3 {
		t.Fatalf("got %d violations, want 3: %v", len(v), v)
	}
	joined := strings.Join(v, "\n")
	for _, want := range []string{"alpha: 2 findings", "alpha: 3 lint:ignore suppressions", "gamma: 1 lint:ignore suppressions"} {
		if !strings.Contains(joined, want) {
			t.Errorf("violations missing %q:\n%s", want, joined)
		}
	}
}

// TestBaselineRoundTripFile: write → read preserves the budget; a version
// mismatch is an error that names the regeneration command.
func TestBaselineRoundTripFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	in := Baseline{Version: BaselineVersion, Analyzers: map[string]BaselineEntry{
		"alpha": {Findings: 1},
	}}
	if err := WriteBaseline(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Analyzers["alpha"] != in.Analyzers["alpha"] {
		t.Errorf("round trip lost data: %+v", out)
	}

	stale := in
	stale.Version = BaselineVersion - 1
	if err := WriteBaseline(path, stale); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaseline(path); err == nil || !strings.Contains(err.Error(), "make lint-baseline") {
		t.Errorf("version mismatch error = %v, want mention of make lint-baseline", err)
	}
}
