// Package detmapfix is the detmap analyzer fixture: every determinism bug
// class the analyzer covers, next to the sanctioned sorted idioms it must
// not flag.
package detmapfix

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// bad emits in raw map-iteration order: every statement is a finding.
func bad(m map[string]int, w *strings.Builder, enc *json.Encoder) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to \"out\" in map-iteration order"
	}
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "fmt.Fprintf inside range over map"
	}
	for k := range m {
		w.WriteString(k) // want "WriteString inside range over map emits bytes in map-iteration order"
	}
	for _, v := range m {
		enc.Encode(v) // want "Encode inside range over map emits bytes in map-iteration order"
	}
	return out
}

// good is the sanctioned idiom: collect the keys, sort, then emit.
func good(m map[string]int, w *strings.Builder) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// sortedAfter appends structs in map order but sorts the slice before it
// is consumed — the trace.Log.Pairs shape — and must not be flagged.
func sortedAfter(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sum accumulates commutatively; iteration order cannot be observed.
func sum(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

// perIteration appends to a slice born inside the loop body; its order
// does not outlive the iteration.
func perIteration(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var row []int
		row = append(row, vs...)
		n += len(row)
	}
	return n
}
