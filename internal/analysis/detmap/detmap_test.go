package detmap_test

import (
	"testing"

	"mgpucompress/internal/analysis"
	"mgpucompress/internal/analysis/detmap"
)

func TestDetmapFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/detmapfix", detmap.Analyzer)
}
