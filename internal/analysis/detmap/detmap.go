// Package detmap flags map iteration whose body emits data in iteration
// order — the classic artifact-nondeterminism bug. Go randomizes map
// iteration, so a range over a map that appends to an outer slice or
// writes to a builder/io.Writer/JSON encoder produces different bytes on
// every run, which breaks the repository's byte-identical-artifact
// guarantee (jobs=1 vs jobs=N, resumed vs simulated).
//
// The sanctioned idiom — collect the keys, sort, then range over the
// sorted slice — is recognized: an append target that is later passed to a
// sort.* or slices.Sort* call in the same function is not reported.
package detmap

import (
	"go/ast"
	"go/types"

	"mgpucompress/internal/analysis"
)

// Analyzer is the detmap check.
var Analyzer = &analysis.Analyzer{
	Name: "detmap",
	ID:   "MGL002",
	Doc:  "map iteration order must not reach slices, writers, or encoders unsorted",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Body)
			}
			return true
		})
	}
}

// checkFunc inspects the map-range statements whose immediate enclosing
// function is body. Nested function literals get their own call from run,
// so they are skipped here except when deciding what a loop body writes.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	sorted := sortTargets(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.TypeOf(rs.X); t == nil || !isMap(t) {
			return true
		}
		checkRangeBody(pass, rs, sorted)
		return true
	})
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// sortTargets collects every variable that is an argument of a sorting
// call anywhere in the function: appending to one of these in map order is
// fine, because the order is re-established before the slice is consumed.
func sortTargets(pass *analysis.Pass, body *ast.BlockStmt) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if v := analysis.RootVar(pass, arg); v != nil {
				out[v] = true
			}
		}
		return true
	})
	return out
}

// writerMethods are method names whose invocation emits bytes in call
// order.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "WriteTo": true, "Encode": true,
}

func checkRangeBody(pass *analysis.Pass, rs *ast.RangeStmt, sorted map[*types.Var]bool) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// append(target, ...) growing a slice declared outside the loop.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin && id.Name == "append" && len(call.Args) > 0 {
				v := analysis.RootVar(pass, call.Args[0])
				if v != nil && v.Pos() < rs.Pos() && !sorted[v] {
					pass.Reportf(call.Pos(),
						"append to %q in map-iteration order; sort the keys first (or sort %q before it is consumed)",
						v.Name(), v.Name())
				}
				return true
			}
		}
		fn := analysis.Callee(pass, call)
		if fn == nil {
			return true
		}
		// fmt.Fprint* — the first argument is an io.Writer by signature.
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
			(fn.Name() == "Fprint" || fn.Name() == "Fprintf" || fn.Name() == "Fprintln") {
			pass.Reportf(call.Pos(), "fmt.%s inside range over map writes output in map-iteration order; sort the keys first", fn.Name())
			return true
		}
		// Method writes: builders, buffers, encoders, io.Writers.
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !writerMethods[fn.Name()] {
			return true
		}
		recv := pass.TypeOf(sel.X)
		if recv == nil {
			return true
		}
		if isWriterType(recv) {
			pass.Reportf(call.Pos(), "%s.%s inside range over map emits bytes in map-iteration order; sort the keys first",
				types.TypeString(recv, types.RelativeTo(pass.Pkg)), fn.Name())
		}
		return true
	})
}

func isWriterType(t types.Type) bool {
	if analysis.IsNamed(t, "strings", "Builder") ||
		analysis.IsNamed(t, "bytes", "Buffer") ||
		analysis.IsNamed(t, "encoding/json", "Encoder") {
		return true
	}
	if types.Implements(t, analysis.IoWriter) {
		return true
	}
	if _, ok := t.Underlying().(*types.Pointer); !ok {
		if types.Implements(types.NewPointer(t), analysis.IoWriter) {
			return true
		}
	}
	return false
}
