package wallclock_test

import (
	"testing"

	"mgpucompress/internal/analysis"
	"mgpucompress/internal/analysis/wallclock"
)

func TestWallclockFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/sim", wallclock.Analyzer)
}

// TestWallclockFaultFixture: the fault-injection package family is part of
// the deterministic domain — injector randomness must be seed-derived.
func TestWallclockFaultFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/fault", wallclock.Analyzer)
}

// TestWallclockAllowsOrchestration checks the zero-diagnostic fixture: the
// sweep package family may read the host clock.
func TestWallclockAllowsOrchestration(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/sweep", wallclock.Analyzer)
}

// TestWallclockServeFixture: the sweep service persists byte-stable
// artifacts, so it sits inside the deterministic domain — bare host-clock
// reads are flagged, and pacing-only uses need a justified //lint:ignore.
func TestWallclockServeFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/serve", wallclock.Analyzer)
}

func TestDeterministicDomain(t *testing.T) {
	for path, want := range map[string]bool{
		"mgpucompress/internal/sim":       true,
		"mgpucompress/internal/comp":      true,
		"mgpucompress/internal/workloads": true,
		"mgpucompress/internal/fault":     true,
		"mgpucompress/internal/serve":     true,
		"mgpucompress/internal/sweep":     false,
		"mgpucompress/internal/runner":    false,
		"mgpucompress/internal/analysis":  false,
		"mgpucompress/cmd/reproduce":      false,
	} {
		if got := wallclock.InDeterministicPackage(path); got != want {
			t.Errorf("InDeterministicPackage(%q) = %v, want %v", path, got, want)
		}
	}
}
