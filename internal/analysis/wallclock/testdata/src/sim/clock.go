// Package sim is the wallclock fixture for the deterministic domain: its
// import path carries the internal/.../sim segments, so host-clock reads
// and global randomness are findings here.
package sim

import (
	"math/rand"
	"time"
)

func clocky() time.Duration {
	t := time.Now()      // want "time.Now in deterministic package"
	d := time.Since(t)   // want "time.Since in deterministic package"
	time.Sleep(d)        // want "time.Sleep in deterministic package"
	return time.Until(t) // want "time.Until in deterministic package"
}

func randy() int64 {
	rand.Shuffle(3, func(i, j int) {}) // want "package-global math/rand.Shuffle"
	return rand.Int63()                // want "package-global math/rand.Int63"
}

// seeded builds a private stream from an injected seed: the sanctioned
// idiom, never flagged.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}
