// Package serve is the wallclock fixture for the sweep-service domain: the
// daemon's persisted artifacts must be pure functions of the job keys, so a
// bare host-clock read is flagged, while pacing-only uses carry an explicit
// //lint:ignore justification — the suppression path this fixture proves.
package serve

import "time"

// recordStamp would leak wall time into a journal record: flagged.
func recordStamp() int64 {
	return time.Now().UnixNano() // want "time.Now in deterministic package"
}

// backoff paces a worker restart; the delay never reaches a record, so the
// justified suppression keeps it legal.
func backoff(d time.Duration) {
	//lint:ignore wallclock restart pacing is host-side orchestration; it never feeds result records
	time.Sleep(d)
}

// sinceStart would couple a progress artifact to the host scheduler: the
// Since form is flagged like Now.
func sinceStart(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since in deterministic package"
}
