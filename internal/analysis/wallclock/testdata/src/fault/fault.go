// Package fault is the wallclock fixture for the fault-injection domain:
// injected faults must derive from the job seed, never the host clock or a
// shared global stream, or same-seed replay stops being byte-identical.
package fault

import (
	"math/rand"
	"time"
)

func sneakySeed() int64 {
	return time.Now().UnixNano() // want "time.Now in deterministic package"
}

func globalDraw() float64 {
	return rand.Float64() // want "package-global math/rand.Float64"
}

// perLink builds a private stream from the link-derived seed: the sanctioned
// injector idiom, never flagged.
func perLink(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}
