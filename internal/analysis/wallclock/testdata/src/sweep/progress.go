// Package sweep is the wallclock allowlist fixture: orchestration packages
// are outside the deterministic domain, so progress timing against the
// host clock is legal and this fixture expects zero diagnostics.
package sweep

import "time"

// Elapsed measures wall time for a progress line.
func Elapsed(start time.Time) time.Duration { return time.Since(start) }
