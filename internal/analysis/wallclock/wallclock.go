// Package wallclock flags wall-clock time and global randomness inside the
// simulator's deterministic domain. Simulated time must advance only
// through the event engine, and every random stream must be seeded from
// the sweep-derived per-job seed: a time.Now or a package-global rand.Intn
// in these packages silently couples artifacts to the host scheduler.
//
// The deterministic domain is the sim-clock package family (sim, comp,
// fabric, gpu, mem, rdma, stats, workloads, energy, core, cache, platform,
// bitstream, trace under internal/) plus internal/serve: the sweep service
// persists journals and results files whose bytes must be pure functions of
// the job keys, so any wall-clock read there needs an explicit
// //lint:ignore justification (the supervisor's restart pacing and the
// client's poll pacing are the allowlisted cases — host-side orchestration
// that never feeds a result record). Orchestration packages — notably
// internal/sweep, whose progress reporting legitimately measures wall time
// — are outside the domain and stay legal.
package wallclock

import (
	"go/ast"

	"mgpucompress/internal/analysis"
)

// Analyzer is the wallclock check.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  "no wall-clock time or unseeded global randomness in deterministic packages",
	Run:  run,
}

// deterministic is the sim-clock package family, matched as path segments
// under an internal/ segment. serve is included because its persisted
// artifacts (batch journals and results files) carry the same byte-identity
// contract as the simulator: wall time may pace the daemon, never leak into
// a record.
var deterministic = map[string]bool{
	"sim": true, "comp": true, "fabric": true, "gpu": true, "mem": true,
	"rdma": true, "stats": true, "workloads": true, "energy": true,
	"core": true, "cache": true, "platform": true, "bitstream": true,
	"trace": true, "fault": true, "serve": true,
}

// bannedTime are the time package functions that read or wait on the host
// clock.
var bannedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// allowedRand are the explicit-seeding constructors: building a private,
// seeded stream is exactly what deterministic code should do.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

// InDeterministicPackage reports whether the import path belongs to the
// sim-clock domain.
func InDeterministicPackage(path string) bool {
	if !analysis.PathHasSegment(path, "internal") {
		return false
	}
	for seg := range deterministic {
		if analysis.PathHasSegment(path, seg) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) {
	if !InDeterministicPackage(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if bannedTime[fn.Name()] {
					pass.Reportf(call.Pos(),
						"time.%s in deterministic package %s: simulated time must come from the sim engine, not the host clock",
						fn.Name(), pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				if analysis.IsPkgFunc(fn, fn.Pkg().Path(), fn.Name()) && !allowedRand[fn.Name()] {
					pass.Reportf(call.Pos(),
						"package-global %s.%s in deterministic package %s: use rand.New(rand.NewSource(seed)) with the sweep-derived job seed",
						fn.Pkg().Path(), fn.Name(), pass.Pkg.Path())
				}
			}
			return true
		})
	}
}
