// Package wallclock flags direct nondeterministic-sink calls — wall-clock
// time, global randomness, environment reads — inside the simulator's
// deterministic domain. Simulated time must advance only through the event
// engine, and every random stream must be seeded from the sweep-derived
// per-job seed: a time.Now or a package-global rand.Intn in these packages
// silently couples artifacts to the host scheduler.
//
// Since mgpulint v2 this analyzer is a thin client of puretaint: the sink
// table (which time/rand/os functions are nondeterministic, which rand
// constructors are the sanctioned idiom) lives there, once, and the
// deterministic-domain definition lives in analysis.InDeterministicDomain.
// wallclock reports the direct calls — the precise, actionable "this line
// reads the clock" finding — while puretaint reports transitive chains
// that leave the domain. Together they cover every call path; separately
// each finding has one unambiguous owner.
//
// The deterministic domain is the sim-clock package family plus
// internal/serve: the sweep service persists journals and results files
// whose bytes must be pure functions of the job keys, so any wall-clock
// read there needs an explicit //lint:ignore justification (the
// supervisor's restart pacing and the client's poll pacing are the
// allowlisted cases — host-side orchestration that never feeds a result
// record). Orchestration packages — notably internal/sweep, whose progress
// reporting legitimately measures wall time — are outside the domain and
// stay legal.
package wallclock

import (
	"go/ast"

	"mgpucompress/internal/analysis"
	"mgpucompress/internal/analysis/puretaint"
)

// Analyzer is the wallclock check.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	ID:   "MGL005",
	Doc:  "no direct wall-clock, unseeded-global-randomness, or environment reads in deterministic packages",
	Run:  run,
}

// InDeterministicPackage reports whether the import path belongs to the
// sim-clock domain. It forwards to the shared definition in the analysis
// package; callers and tests keep the historical name.
func InDeterministicPackage(path string) bool {
	return analysis.InDeterministicDomain(path)
}

func run(pass *analysis.Pass) {
	if !analysis.InDeterministicDomain(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sink, isSink := puretaint.ClassifySink(analysis.Callee(pass, call))
			if !isSink {
				return true
			}
			switch sink.Kind {
			case puretaint.SinkTime:
				pass.Reportf(call.Pos(),
					"time.%s in deterministic package %s: simulated time must come from the sim engine, not the host clock",
					sink.Name, pass.Pkg.Path())
			case puretaint.SinkRand:
				pass.Reportf(call.Pos(),
					"package-global %s.%s in deterministic package %s: use rand.New(rand.NewSource(seed)) with the sweep-derived job seed",
					sink.PkgPath, sink.Name, pass.Pkg.Path())
			case puretaint.SinkEnv:
				pass.Reportf(call.Pos(),
					"%s in deterministic package %s: environment reads make artifacts host-dependent; plumb configuration explicitly",
					sink.Display(), pass.Pkg.Path())
			}
			return true
		})
	}
}
