package puretaint_test

import (
	"go/token"
	"go/types"
	"testing"

	"mgpucompress/internal/analysis"
	"mgpucompress/internal/analysis/puretaint"
)

// TestPuretaintFixture is the acceptance fixture: a 3-deep transitive
// time.Now chain through an out-of-domain helper package is caught at the
// boundary call, while the identical chain behind a seeded-PRNG parameter
// stays clean. The loader pulls the util dependency in automatically and
// RunAll analyzes it first, so the facts exist when sim is visited.
func TestPuretaintFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/sim", puretaint.Analyzer)
}

// TestUtilPackageSilent: the helper package itself is outside the
// deterministic domain, so analyzing it directly produces facts but no
// findings.
func TestUtilPackageSilent(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/util", puretaint.Analyzer)
}

// TestClassifySink pins the sink table: the explicit-generator
// constructors must stay non-sinks (they are the sanctioned idiom) and
// methods must never classify.
func TestClassifySink(t *testing.T) {
	mk := func(pkgPath, name string) *types.Func {
		pkg := types.NewPackage(pkgPath, pkgPath)
		sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
		return types.NewFunc(token.NoPos, pkg, name, sig)
	}
	for _, tc := range []struct {
		pkg, name string
		want      bool
		display   string
	}{
		{"time", "Now", true, "time.Now"},
		{"time", "Sleep", true, "time.Sleep"},
		{"time", "Duration", false, ""},
		{"math/rand", "Int63", true, "math/rand.Int63"},
		{"math/rand", "New", false, ""},
		{"math/rand", "NewSource", false, ""},
		{"math/rand/v2", "IntN", true, "math/rand/v2.IntN"},
		{"math/rand/v2", "NewPCG", false, ""},
		{"os", "Getenv", true, "os.Getenv"},
		{"os", "ReadFile", false, ""},
		{"fmt", "Sprintf", false, ""},
	} {
		s, ok := puretaint.ClassifySink(mk(tc.pkg, tc.name))
		if ok != tc.want {
			t.Errorf("ClassifySink(%s.%s) = %v, want %v", tc.pkg, tc.name, ok, tc.want)
			continue
		}
		if ok && s.Display() != tc.display {
			t.Errorf("ClassifySink(%s.%s).Display() = %q, want %q", tc.pkg, tc.name, s.Display(), tc.display)
		}
	}
	if _, ok := puretaint.ClassifySink(nil); ok {
		t.Error("ClassifySink(nil) classified")
	}
}
