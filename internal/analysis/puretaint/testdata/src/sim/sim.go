// Package sim is the in-domain side of the puretaint fixture: its import
// path carries internal/.../sim segments, so calls into tainted helpers
// from the util fixture package are findings here — at the boundary call,
// with the full chain in the message.
package sim

import (
	"math/rand"
	"time"

	"mgpucompress/internal/analysis/puretaint/testdata/src/util"
)

func stampIt() int64 {
	return util.Stamp() // want "call to util\.Stamp reaches nondeterministic sink time\.Now \(Stamp → step2 → step3 → time\.Now\)"
}

func drawIt() int64 {
	return util.Draw() // want "call to util\.Draw reaches nondeterministic sink math/rand\.Int63"
}

// seededIt threads an explicit generator through the same 3-deep chain:
// clean, to any depth.
func seededIt(seed int64) int64 {
	return util.Seeded(rand.New(rand.NewSource(seed)))
}

func homeIt() string {
	return util.Home() // want "call to util\.Home reaches nondeterministic sink os\.Getenv"
}

func pureIt() int64 { return util.Pure(41) }

// localHop demonstrates that a same-package hop before the boundary is
// still caught: the boundary call inside localHelper is the finding site.
func localHop() int64 { return localHelper() }

func localHelper() int64 {
	return util.Stamp() // want "call to util\.Stamp reaches nondeterministic sink time\.Now"
}

// direct sink calls belong to wallclock, not puretaint — no want here
// because only puretaint runs over this fixture; wallclock's own fixtures
// assert the direct form.
func directOwnedByWallclock() time.Time { return time.Now() }
