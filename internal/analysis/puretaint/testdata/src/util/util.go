// Package util is the out-of-domain helper package for the puretaint
// fixture: its import path has no deterministic segment, so nothing is
// reported here — but Tainted facts are exported for its reachable-sink
// functions, and the sim fixture package imports them.
package util

import (
	"math/rand"
	"os"
	"time"
)

// Stamp → step2 → step3 → time.Now: a 3-deep transitive chain to the host
// clock. No findings in this package (outside the domain), but Stamp,
// step2, and step3 all carry Tainted facts.
func Stamp() int64 { return step2() }

func step2() int64 { return step3() }

func step3() int64 { return time.Now().UnixNano() }

// Draw → draw2 → draw3 → rand.Int63: the same shape through the shared
// global generator.
func Draw() int64 { return draw2() }

func draw2() int64 { return draw3() }

func draw3() int64 { return rand.Int63() }

// Seeded → seeded2 → seeded3 → r.Int63: the identical chain behind an
// injected, seeded generator parameter. Methods on explicit generator
// values are not sinks, so none of these are tainted.
func Seeded(r *rand.Rand) int64 { return seeded2(r) }

func seeded2(r *rand.Rand) int64 { return seeded3(r) }

func seeded3(r *rand.Rand) int64 { return r.Int63() }

// Home reads the environment one frame down.
func Home() string { return home() }

func home() string { return os.Getenv("HOME") }

// Pure is untainted: arithmetic only.
func Pure(x int64) int64 { return x * 2 }
