// Package puretaint is a whole-program taint analysis over the call graph:
// it marks every function that can transitively reach a nondeterministic
// sink — a host-clock read, a package-global math/rand draw, or an
// environment read — and reports, inside the deterministic domain, every
// call whose callee carries that taint. It subsumes the direct-call check
// that wallclock performs (wallclock is now a thin client of this
// package's sink table) and closes its blind spot: a deterministic package
// calling a helper in a non-deterministic package that calls time.Now two
// frames down was previously invisible.
//
// Propagation is by object facts (analysis/facts.go): analyzing a package
// exports a Tainted fact for each of its reachable-sink functions, and
// importing packages — analyzed later, in dependency order — pick the
// facts up through the shared type-checker objects. Within a package the
// analysis runs to a fixed point, so local recursion and helper chains of
// any depth are covered. Taint flows only through direct calls: a
// nondeterministic function smuggled through a function value or interface
// is not tracked (the repo's hot paths are monomorphic, and detmap guards
// the remaining map-iteration channel).
//
// The sanctioned idiom stays invisible by construction: a function that
// draws from an injected *rand.Rand (or rand/v2 equivalent) parameter is
// not tainted, because method calls on explicit generator values are not
// sinks — only the package-global convenience functions and the host
// clock are. This is exactly the seeding discipline DESIGN.md §7
// prescribes, now enforced to any call depth.
package puretaint

import (
	"go/ast"
	"go/types"
	"strings"

	"mgpucompress/internal/analysis"
)

// Analyzer is the puretaint check.
var Analyzer = &analysis.Analyzer{
	Name:      "puretaint",
	ID:        "MGL006",
	Doc:       "no call path from deterministic packages may reach a nondeterministic sink (wall clock, global rand, environment)",
	FactTypes: []analysis.Fact{(*Tainted)(nil)},
	Run:       run,
}

// Tainted is the object fact exported for every function that can reach a
// nondeterministic sink through direct calls.
type Tainted struct {
	// Sink is the display name of the reached sink, e.g. "time.Now".
	Sink string
	// Path is a sample call chain from the function to the sink,
	// e.g. "Jitter → backoff → time.Now".
	Path string
	// Depth is the number of calls on that chain (1 = calls the sink
	// directly).
	Depth int
}

// AFact marks Tainted as a fact type.
func (*Tainted) AFact() {}

// SinkKind classifies nondeterministic sinks.
type SinkKind int

// The sink classes.
const (
	SinkTime SinkKind = iota // host clock reads and waits
	SinkRand                 // package-global math/rand draws
	SinkEnv                  // process-environment reads
)

// Sink is one classified nondeterministic entry point.
type Sink struct {
	Kind    SinkKind
	PkgPath string // "time", "math/rand", "math/rand/v2", "os"
	Name    string // function name within the package
}

// Display renders the sink as it appears in messages, e.g. "time.Now".
func (s Sink) Display() string { return s.PkgPath + "." + s.Name }

// bannedTime are the time package functions that read or wait on the host
// clock. This table (with the rand and env tables below) is the single
// source of truth for nondeterminism sinks: wallclock consumes it too.
var bannedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// allowedRand are the explicit-seeding constructors: building a private,
// seeded stream is exactly what deterministic code should do, so they are
// not sinks.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
	"NewZipf": true,
}

// bannedEnv are the os package functions that read host state a result
// record must never depend on.
var bannedEnv = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
	"Hostname": true, "Getpid": true,
}

// ClassifySink reports whether fn is a nondeterministic sink and, if so,
// which one. Methods are never sinks: drawing from an explicit generator
// value (rand.Rand, rand/v2.Rand) is the sanctioned deterministic idiom.
func ClassifySink(fn *types.Func) (Sink, bool) {
	if fn == nil || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
		return Sink{}, false
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch path {
	case "time":
		if bannedTime[name] {
			return Sink{Kind: SinkTime, PkgPath: path, Name: name}, true
		}
	case "math/rand", "math/rand/v2":
		if !allowedRand[name] {
			return Sink{Kind: SinkRand, PkgPath: path, Name: name}, true
		}
	case "os":
		if bannedEnv[name] {
			return Sink{Kind: SinkEnv, PkgPath: path, Name: name}, true
		}
	}
	return Sink{}, false
}

// callSite is one resolved call inside a function body, in source order.
type callSite struct {
	pos    ast.Node
	callee *types.Func
	sink   Sink
	isSink bool
}

// funcInfo is the per-function working state.
type funcInfo struct {
	fn    *types.Func
	calls []callSite
	taint *Tainted
}

func run(pass *analysis.Pass) {
	// Phase 1: collect every function declaration and its resolved calls,
	// in source order. Calls inside function literals are attributed to
	// the enclosing declaration — the literal runs on some call path
	// through it.
	var funcs []*funcInfo
	byObj := map[*types.Func]*funcInfo{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.ObjectOf(fd.Name).(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{fn: fn}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := analysis.Callee(pass, call)
				if callee == nil {
					return true
				}
				cs := callSite{pos: call, callee: callee}
				if s, isSink := ClassifySink(callee); isSink {
					cs.sink, cs.isSink = s, true
				}
				fi.calls = append(fi.calls, cs)
				return true
			})
			funcs = append(funcs, fi)
			byObj[fn] = fi
		}
	}

	// Phase 2: seed taint from direct sinks and from imported facts about
	// out-of-package callees, then run the local fixed point so taint
	// crosses same-package helper chains and recursion.
	for _, fi := range funcs {
		for _, cs := range fi.calls {
			if cs.isSink {
				fi.taint = &Tainted{
					Sink:  cs.sink.Display(),
					Path:  fi.fn.Name() + " → " + cs.sink.Display(),
					Depth: 1,
				}
				break
			}
			if _, local := byObj[cs.callee]; local {
				continue
			}
			var t Tainted
			if pass.ImportObjectFact(cs.callee, &t) {
				fi.taint = &Tainted{
					Sink:  t.Sink,
					Path:  fi.fn.Name() + " → " + t.Path,
					Depth: t.Depth + 1,
				}
				break
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range funcs {
			if fi.taint != nil {
				continue
			}
			for _, cs := range fi.calls {
				callee, local := byObj[cs.callee]
				if !local || callee.taint == nil {
					continue
				}
				fi.taint = &Tainted{
					Sink:  callee.taint.Sink,
					Path:  fi.fn.Name() + " → " + callee.taint.Path,
					Depth: callee.taint.Depth + 1,
				}
				changed = true
				break
			}
		}
	}

	// Phase 3: export facts so importers see the taint.
	for _, fi := range funcs {
		if fi.taint != nil {
			pass.ExportObjectFact(fi.fn, fi.taint)
		}
	}

	// Phase 4: report, but only inside the deterministic domain, and only
	// calls whose tainted callee lives outside it. Chains through
	// deterministic packages are already reported at their own origin —
	// wallclock flags the direct sink call, this analyzer the boundary
	// crossing — so each chain surfaces exactly once.
	if !analysis.InDeterministicDomain(pass.Pkg.Path()) {
		return
	}
	for _, fi := range funcs {
		for _, cs := range fi.calls {
			if cs.isSink {
				continue // wallclock's finding
			}
			var t Tainted
			if local, ok := byObj[cs.callee]; ok {
				if local.taint == nil {
					continue
				}
				t = *local.taint
			} else if !pass.ImportObjectFact(cs.callee, &t) {
				continue
			}
			calleePkg := ""
			if cs.callee.Pkg() != nil {
				calleePkg = cs.callee.Pkg().Path()
			}
			if analysis.InDeterministicDomain(calleePkg) {
				continue // reported at its origin inside the domain
			}
			pass.Reportf(cs.pos.Pos(),
				"call to %s reaches nondeterministic sink %s (%s) in deterministic package %s",
				calleeName(cs.callee), t.Sink, t.Path, pass.Pkg.Path())
		}
	}
}

// calleeName renders a callee for messages: pkg.Func or Type.Method.
func calleeName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		t := recv.Type().String()
		if i := strings.LastIndexByte(t, '.'); i >= 0 {
			t = t[i+1:]
		}
		return t + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
