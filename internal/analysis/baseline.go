package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// The suppression-budget baseline: a committed JSON file recording, per
// analyzer, how many findings and how many //lint:ignore-suppressed
// diagnostics the tree carries. CI compares the current run against it
// and fails when either count GROWS — new findings and new suppressions
// both need review — while counts may always shrink (and `make
// lint-baseline` re-records the smaller numbers). This is what lets a new
// analyzer land against an imperfect tree without a flag day: existing
// debt is budgeted, new debt is rejected.

// BaselineEntry is one analyzer's budget.
type BaselineEntry struct {
	Findings     int `json:"findings"`
	Suppressions int `json:"suppressions"`
}

// Baseline is the committed budget file (lint-baseline.json).
type Baseline struct {
	Version   int                      `json:"version"`
	Analyzers map[string]BaselineEntry `json:"analyzers"`
}

// BaselineVersion is the current file format version.
const BaselineVersion = 2

// MakeBaseline derives the baseline a Result implies. Every analyzer is
// present, even at zero, so a future regression in a currently-clean
// analyzer diffs against an explicit budget of 0.
func MakeBaseline(res *Result, analyzers []*Analyzer) Baseline {
	b := Baseline{Version: BaselineVersion, Analyzers: map[string]BaselineEntry{}}
	for _, a := range analyzers {
		b.Analyzers[a.Name] = BaselineEntry{}
	}
	for _, f := range res.Findings {
		e := b.Analyzers[f.Analyzer]
		e.Findings++
		b.Analyzers[f.Analyzer] = e
	}
	for _, f := range res.Suppressed {
		e := b.Analyzers[f.Analyzer]
		e.Suppressions++
		b.Analyzers[f.Analyzer] = e
	}
	return b
}

// Check compares the current counts against the committed budget and
// returns one violation string per analyzer whose findings or
// suppressions grew. Analyzers absent from the committed file have budget
// zero.
func (committed Baseline) Check(current Baseline) []string {
	var names []string
	for name := range current.Analyzers {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []string
	for _, name := range names {
		cur := current.Analyzers[name]
		base := committed.Analyzers[name] // zero value when absent
		if cur.Findings > base.Findings {
			out = append(out, fmt.Sprintf("%s: %d findings exceed the baseline budget of %d",
				name, cur.Findings, base.Findings))
		}
		if cur.Suppressions > base.Suppressions {
			out = append(out, fmt.Sprintf("%s: %d lint:ignore suppressions exceed the baseline budget of %d (new suppressions need a baseline update via `make lint-baseline`)",
				name, cur.Suppressions, base.Suppressions))
		}
	}
	return out
}

// ReadBaseline loads a committed baseline file.
func ReadBaseline(path string) (Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Baseline{}, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return Baseline{}, fmt.Errorf("analysis: parsing baseline %s: %w", path, err)
	}
	if b.Version != BaselineVersion {
		return Baseline{}, fmt.Errorf("analysis: baseline %s has version %d, want %d (regenerate with `make lint-baseline`)", path, b.Version, BaselineVersion)
	}
	return b, nil
}

// WriteBaseline writes the baseline canonically (sorted keys, fixed
// indentation) so the committed file is byte-stable.
func WriteBaseline(path string, b Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
