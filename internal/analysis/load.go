package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Dir        string
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	// deps are the directly imported module-internal packages, in sorted
	// import-path order. RunAll walks them to analyze the dependency
	// closure imports-first, which is what makes cross-package facts sound.
	deps []*Package
}

// Loader parses and type-checks packages of the enclosing module using only
// the standard library: module-internal imports are resolved from source
// (recursively, memoized), everything else through the compiler's export
// data. Test files are excluded — the invariants mgpulint polices concern
// the artifact-producing library code.
type Loader struct {
	ModuleRoot string
	ModulePath string

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle guard
}

// NewLoader builds a loader for the module whose go.mod governs dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "gc", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// findModule walks up from dir to the nearest go.mod and extracts the
// module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", abs)
		}
	}
}

// LoadDir loads the package in one directory (absolute or relative to the
// process working directory).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleRoot)
	}
	path := l.ModulePath
	if rel != "." {
		path += "/" + filepath.ToSlash(rel)
	}
	return l.load(path)
}

// Expand resolves command-line patterns into package directories: a literal
// directory, or dir/... for the tree below it. Directories named testdata
// (and hidden or underscore-prefixed ones) are skipped by /... walks, same
// as the go tool, but can still be named literally — that is how the
// analyzer fixtures are linted on purpose.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if abs, err := filepath.Abs(d); err == nil && !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		base, rec := strings.CutSuffix(pat, "...")
		base = strings.TrimSuffix(base, "/")
		if base == "" {
			base = "."
		}
		if !rec {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// Load loads every pattern and returns the packages in deterministic
// (directory) order.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	dirs, err := l.Expand(patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(dirs))
	for _, d := range dirs {
		pkg, err := l.LoadDir(d)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// load type-checks the package at an import path inside the module.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := &types.Config{Importer: importerFunc(l.resolve)}
	tpkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Dir:        dir,
		ImportPath: path,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	// Record module-internal direct imports: they were loaded from source
	// by resolve during Check, so the memo table has them all by now.
	var depPaths []string
	for _, imp := range tpkg.Imports() {
		p := imp.Path()
		if p == l.ModulePath || strings.HasPrefix(p, l.ModulePath+"/") {
			depPaths = append(depPaths, p)
		}
	}
	sort.Strings(depPaths)
	for _, p := range depPaths {
		if dep, ok := l.pkgs[p]; ok {
			pkg.deps = append(pkg.deps, dep)
		}
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// resolve imports module-internal packages from source and everything else
// (the standard library) from compiler export data.
func (l *Loader) resolve(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
