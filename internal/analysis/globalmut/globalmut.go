// Package globalmut flags mutable package-level state in the deterministic
// domain — the precise hazard class that breaks partition-parallel
// execution. A serial simulation can get away with a package var that
// accumulates across calls; the moment independent partitions (or the
// sweep engine's parallel jobs) run concurrently, that var becomes a race
// or, worse, a silent cross-run coupling that perturbs byte-identical
// artifacts without tripping the race detector.
//
// Three shapes are reported inside deterministic packages:
//
//   - writes to package-level vars from function bodies: assignments,
//     ++/--, element and field stores (table[k] = v, cfg.Field = v), and
//     writes through a package-level pointer. Initialization is exempt:
//     package-level var initializers and init functions run once, before
//     any concurrency, and are how lookup tables are legitimately built.
//
//   - calls to pointer-receiver methods on package-level vars: the
//     canonical lazily-initialized cache (globalOnce.Do, globalMap.Store)
//     and shared counters (counter.Add(1)) mutate through a method, not an
//     assignment, and are exactly as dangerous.
//
//   - method values binding a pointer-receiver method of a package-level
//     var (f := global.Advance): the capture outlives the expression and
//     hides the mutation at every later call site.
//
// The analysis is per-package and syntactic over resolved objects — it
// does not chase pointers that escape — but combined with puretaint
// (nondeterministic inputs) and detmap (map-order leaks) it closes the
// determinism triangle: no hidden inputs, no order leaks, no shared
// mutable state.
package globalmut

import (
	"go/ast"
	"go/types"

	"mgpucompress/internal/analysis"
)

// Analyzer is the globalmut check.
var Analyzer = &analysis.Analyzer{
	Name: "globalmut",
	ID:   "MGL007",
	Doc:  "no mutable package-level state in deterministic packages: partition-parallel runs share it",
	Run:  run,
}

func run(pass *analysis.Pass) {
	if !analysis.InDeterministicDomain(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name == "init" && fd.Recv == nil {
				continue // one-shot initialization before any concurrency
			}
			checkBody(pass, fd.Body)
		}
	}
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	// Method-value detection needs to know which selectors are call
	// targets, so collect those first.
	callFuns := map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			callFuns[ast.Unparen(call.Fun)] = true
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				reportWrite(pass, lhs)
			}
		case *ast.IncDecStmt:
			reportWrite(pass, n.X)
		case *ast.SelectorExpr:
			sel, ok := pass.Info.Selections[n]
			if !ok || sel.Kind() != types.MethodVal {
				return true
			}
			fn, ok := sel.Obj().(*types.Func)
			if !ok || !pointerReceiver(fn) {
				return true
			}
			v := pkgLevelBase(pass, n.X)
			if v == nil {
				return true
			}
			if callFuns[n] {
				pass.Reportf(n.Pos(),
					"pointer-receiver method call %s.%s on package-level var %s in deterministic package %s: partition-parallel runs share this state",
					v.Name(), fn.Name(), v.Name(), pass.Pkg.Path())
			} else {
				pass.Reportf(n.Pos(),
					"method value %s.%s captures package-level var %s in deterministic package %s; the mutation escapes to every call site",
					v.Name(), fn.Name(), v.Name(), pass.Pkg.Path())
			}
		}
		return true
	})
}

// reportWrite flags lhs when its base resolves to a package-level var.
func reportWrite(pass *analysis.Pass, lhs ast.Expr) {
	base := ast.Unparen(lhs)
	through := ""
	for {
		switch e := base.(type) {
		case *ast.SelectorExpr:
			through = "field of "
			base = ast.Unparen(e.X)
			continue
		case *ast.IndexExpr:
			through = "element of "
			base = ast.Unparen(e.X)
			continue
		case *ast.StarExpr:
			through = "target of package-level pointer "
			base = ast.Unparen(e.X)
			continue
		}
		break
	}
	id, ok := base.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	v := pkgLevelVar(pass, id)
	if v == nil {
		return
	}
	if through == "" {
		pass.Reportf(lhs.Pos(),
			"write to package-level var %s in deterministic package %s: partition-parallel runs share this state",
			v.Name(), pass.Pkg.Path())
		return
	}
	pass.Reportf(lhs.Pos(),
		"write to %s%s in deterministic package %s: partition-parallel runs share this state",
		through, v.Name(), pass.Pkg.Path())
}

// pkgLevelVar resolves id to a package-level variable of the package under
// analysis, or nil.
func pkgLevelVar(pass *analysis.Pass, id *ast.Ident) *types.Var {
	v, ok := pass.ObjectOf(id).(*types.Var)
	if !ok || v.Pkg() != pass.Pkg {
		return nil
	}
	if v.Parent() != pass.Pkg.Scope() {
		return nil
	}
	return v
}

// pkgLevelBase resolves the leftmost identifier of a selector chain to a
// package-level var, or nil. Used for method receivers: global.Add(1) and
// global.sub.Add(1) both root at global.
func pkgLevelBase(pass *analysis.Pass, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
			continue
		case *ast.Ident:
			return pkgLevelVar(pass, x)
		}
		return nil
	}
}

// pointerReceiver reports whether fn's receiver is a pointer (the shape
// that can mutate).
func pointerReceiver(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	_, ok := recv.Type().Underlying().(*types.Pointer)
	if ok {
		return true
	}
	_, ok = recv.Type().(*types.Pointer)
	return ok
}
