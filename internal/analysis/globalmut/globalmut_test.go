package globalmut_test

import (
	"testing"

	"mgpucompress/internal/analysis"
	"mgpucompress/internal/analysis/globalmut"
)

func TestGlobalmutFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/sim", globalmut.Analyzer)
}

// TestGlobalmutScope: orchestration packages are outside the deterministic
// domain — the same shapes are silent there.
func TestGlobalmutScope(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/sweep", globalmut.Analyzer)
}
