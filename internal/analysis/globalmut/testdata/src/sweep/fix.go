// Package sweep is the out-of-domain fixture: orchestration packages may
// keep mutable process-level state (progress counters, memo caches), so
// nothing here is a finding.
package sweep

var progress int

func bump() { progress++ }
