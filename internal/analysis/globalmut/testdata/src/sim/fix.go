// Package sim is the globalmut fixture: its import path carries the
// internal/.../sim segments, so mutable package-level state is a finding.
package sim

import "sync/atomic"

var counter int

var table = map[string]int{"a": 1}

var seq atomic.Uint64

var cursor *int

type gauge struct{ v float64 }

func (g *gauge) Set(v float64) { g.v = v }

func (g gauge) Get() float64 { return g.v }

var shared gauge

// lookup is built once in init and read-only afterwards: the sanctioned
// shape for package-level tables.
var lookup map[string]int

func init() {
	lookup = make(map[string]int) // initialization before concurrency: legal
	lookup["x"] = 1               // legal for the same reason
	counter = 0                   // legal here, hazardous anywhere else
}

func bump() {
	counter++ // want "write to package-level var counter"
}

func assign() {
	counter = 7 // want "write to package-level var counter"
}

func put(k string) {
	table[k] = 2 // want "write to element of table"
}

func retarget(p *int) {
	cursor = p // want "write to package-level var cursor"
}

func derefWrite() {
	*cursor = 3 // want "write to target of package-level pointer cursor"
}

func next() uint64 {
	return seq.Add(1) // want "pointer-receiver method call seq.Add on package-level var seq"
}

func setShared() {
	shared.Set(1.0) // want "pointer-receiver method call shared.Set on package-level var shared"
}

func fieldWrite() {
	shared.v = 2 // want "write to field of shared"
}

func methodValue() func(float64) {
	return shared.Set // want "method value shared.Set captures package-level var shared"
}

// Legal shapes below: locals, value receivers, reads.

func local() int {
	x := 0
	x++
	m := map[string]int{}
	m["k"] = 1
	return x + m["k"] + counter + lookup["x"] // reads are fine
}

func valueReceiver() float64 {
	return shared.Get() // value receiver cannot mutate the global
}

func shadowed() {
	counter := 0 // a local shadowing the global
	counter++
	_ = counter
}
