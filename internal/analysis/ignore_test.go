package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadIgnoreFixture loads the ignorecases fixture package.
func loadIgnoreFixture(t *testing.T) *Package {
	t.Helper()
	l, err := NewLoader("testdata/src/ignorecases")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load([]string{"testdata/src/ignorecases"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	return pkgs[0]
}

// markerLines maps each "MARKER:name" comment in the fixture to its line
// number, so the test asserts positions without hard-coding line numbers.
func markerLines(t *testing.T, file string) map[string]int {
	t.Helper()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]int{}
	for i, line := range strings.Split(string(data), "\n") {
		if idx := strings.Index(line, "MARKER:"); idx >= 0 {
			name := strings.Fields(line[idx+len("MARKER:"):])[0]
			out[name] = i + 1
		}
	}
	return out
}

// TestIgnoreSuppressionShapes runs the full suppression pipeline over the
// ignorecases fixture: trailing directives, line-above directives,
// multi-analyzer lists, and the "all" catch-all suppress; a reason-less
// directive, a directive naming another analyzer, and a directive two
// lines up do not.
func TestIgnoreSuppressionShapes(t *testing.T) {
	pkg := loadIgnoreFixture(t)
	res := RunAll([]*Package{pkg}, []*Analyzer{panicAny})

	file := pkg.Fset.Position(pkg.Files[0].Pos()).Filename
	markers := markerLines(t, file)
	for _, want := range []string{"noReason", "wrongAnalyzer", "tooFar"} {
		if _, ok := markers[want]; !ok {
			t.Fatalf("fixture lost its MARKER:%s comment", want)
		}
	}

	gotLines := map[int]bool{}
	for _, f := range res.Findings {
		gotLines[f.Line] = true
	}
	if len(res.Findings) != len(markers) {
		t.Errorf("got %d findings, want %d: %v", len(res.Findings), len(markers), res.Findings)
	}
	for name, line := range markers {
		if !gotLines[line] {
			t.Errorf("panic at %s (line %d) was suppressed; its directive is malformed or misplaced and must not be honored", name, line)
		}
	}

	// trailing, above, multi, catchAll: suppressed but still counted, so the
	// baseline can budget them.
	if len(res.Suppressed) != 4 {
		t.Errorf("got %d suppressed findings, want 4: %v", len(res.Suppressed), res.Suppressed)
	}
	for _, f := range res.Suppressed {
		if markers["noReason"] == f.Line || markers["wrongAnalyzer"] == f.Line || markers["tooFar"] == f.Line {
			t.Errorf("line %d both suppressed and malformed: %v", f.Line, f)
		}
	}
}

// TestCollectIgnoresMultiAnalyzer: a comma list registers every named
// analyzer on the directive's line.
func TestCollectIgnoresMultiAnalyzer(t *testing.T) {
	pkg := loadIgnoreFixture(t)
	idx := collectIgnores(pkg)

	file := pkg.Fset.Position(pkg.Files[0].Pos()).Filename
	lines := idx[file]
	if lines == nil {
		t.Fatalf("no directives collected for %s", file)
	}
	var multiLine int
	for line, names := range lines {
		for _, n := range names {
			if n == "otherzzz" {
				multiLine = line
			}
		}
	}
	if multiLine == 0 {
		t.Fatal("multi-analyzer directive not collected")
	}
	both := lines[multiLine]
	if len(both) != 2 || both[0] != "panicany" || both[1] != "otherzzz" {
		t.Errorf("multi directive registered %v, want [panicany otherzzz]", both)
	}

	// The directive suppresses both named analyzers on the line below, and
	// nothing else.
	below := token.Position{Filename: file, Line: multiLine + 1}
	for _, name := range []string{"panicany", "otherzzz"} {
		if !idx.suppressed(name, below) {
			t.Errorf("suppressed(%q, line %d) = false, want true", name, multiLine+1)
		}
	}
	if idx.suppressed("detmap", below) {
		t.Error("unnamed analyzer suppressed by a multi directive")
	}
	if idx.suppressed("panicany", token.Position{Filename: file, Line: multiLine + 2}) {
		t.Error("directive reached two lines down")
	}
	if idx.suppressed("panicany", token.Position{Filename: filepath.Join("other", "file.go"), Line: multiLine + 1}) {
		t.Error("directive leaked across files")
	}
}

// TestReasonlessDirectiveRejected: the reason is the audit trail; a bare
// //lint:ignore analyzer line must not appear in the index at all.
func TestReasonlessDirectiveRejected(t *testing.T) {
	pkg := loadIgnoreFixture(t)
	idx := collectIgnores(pkg)

	file := pkg.Fset.Position(pkg.Files[0].Pos()).Filename
	markers := markerLines(t, file)
	noReasonLine := markers["noReason"]
	if noReasonLine == 0 {
		t.Fatal("fixture lost its MARKER:noReason comment")
	}
	// The malformed directive sits on the line above the marker.
	if names := idx[file][noReasonLine-1]; len(names) != 0 {
		t.Errorf("reason-less directive was collected: %v", names)
	}
	if idx.suppressed("panicany", token.Position{Filename: file, Line: noReasonLine}) {
		t.Error("reason-less directive suppressed a finding")
	}
}
