package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"reflect"
	"sort"
)

// This file is the cross-package fact layer, modeled on
// golang.org/x/tools/go/analysis facts. An analyzer visiting package P may
// attach a Fact to an object (typically a *types.Func or *types.Var)
// declared in P; when a package importing P is analyzed later, the same
// analyzer can import that fact through the object, which the loader
// guarantees is the identical types.Object (module-internal imports are
// type-checked from source into one shared universe, never from export
// data). Run visits packages in dependency order, so by the time a package
// is analyzed every fact about its imports already exists. This is what
// turns the per-package AST checks into whole-program analyses: puretaint
// propagates nondeterminism through the call graph with object facts, and
// lockorder aggregates per-function lock-acquisition facts into a global
// ordering check.

// Fact is a datum attached to an object or package by one analyzer and
// visible to later passes of the same analyzer. Implementations must be
// pointer types and must be declared in the analyzer's FactTypes. A fact
// must not be mutated after export.
type Fact interface {
	// AFact is a marker method: it does nothing, but restricts the
	// interface to types that opted in.
	AFact()
}

// ObjectFact pairs an object with a fact attached to it.
type ObjectFact struct {
	Obj  types.Object
	Fact Fact
}

// PackageFact pairs a package with a fact attached to it.
type PackageFact struct {
	Pkg  *types.Package
	Fact Fact
}

// factKey identifies one fact slot: one analyzer holds at most one fact of
// a kind per object (or package).
type factKey struct {
	analyzer string
	obj      types.Object
	pkg      *types.Package
	typ      reflect.Type
}

// factStore holds every exported fact of one Run invocation, across all
// analyzers and packages.
type factStore struct {
	m map[factKey]Fact
}

func newFactStore() *factStore {
	return &factStore{m: map[factKey]Fact{}}
}

// validFactType checks that fact is a declared pointer fact type of a.
func validFactType(a *Analyzer, fact Fact) reflect.Type {
	t := reflect.TypeOf(fact)
	if t == nil || t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("analysis: %s: fact %T is not a pointer type", a.Name, fact))
	}
	for _, ft := range a.FactTypes {
		if reflect.TypeOf(ft) == t {
			return t
		}
	}
	panic(fmt.Sprintf("analysis: %s: fact type %T is not declared in FactTypes", a.Name, fact))
}

// copyFact copies the stored fact's value into the caller's pointer.
func copyFact(dst, src Fact) {
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(src).Elem())
}

func (s *factStore) exportObject(a *Analyzer, obj types.Object, fact Fact) {
	if obj == nil {
		panic(fmt.Sprintf("analysis: %s: ExportObjectFact with nil object", a.Name))
	}
	s.m[factKey{analyzer: a.Name, obj: obj, typ: validFactType(a, fact)}] = fact
}

func (s *factStore) importObject(a *Analyzer, obj types.Object, fact Fact) bool {
	if obj == nil {
		return false
	}
	got, ok := s.m[factKey{analyzer: a.Name, obj: obj, typ: validFactType(a, fact)}]
	if !ok {
		return false
	}
	copyFact(fact, got)
	return true
}

func (s *factStore) exportPackage(a *Analyzer, pkg *types.Package, fact Fact) {
	if pkg == nil {
		panic(fmt.Sprintf("analysis: %s: ExportPackageFact with nil package", a.Name))
	}
	s.m[factKey{analyzer: a.Name, pkg: pkg, typ: validFactType(a, fact)}] = fact
}

func (s *factStore) importPackage(a *Analyzer, pkg *types.Package, fact Fact) bool {
	if pkg == nil {
		return false
	}
	got, ok := s.m[factKey{analyzer: a.Name, pkg: pkg, typ: validFactType(a, fact)}]
	if !ok {
		return false
	}
	copyFact(fact, got)
	return true
}

// allObjectFacts returns the analyzer's object facts sorted by object
// position then name — a deterministic order for whole-program passes.
func (s *factStore) allObjectFacts(a *Analyzer) []ObjectFact {
	var out []ObjectFact
	for k, f := range s.m {
		if k.analyzer == a.Name && k.obj != nil {
			out = append(out, ObjectFact{Obj: k.obj, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Obj.Pos() != out[j].Obj.Pos() {
			return out[i].Obj.Pos() < out[j].Obj.Pos()
		}
		return objectKey(out[i].Obj) < objectKey(out[j].Obj)
	})
	return out
}

// allPackageFacts returns the analyzer's package facts sorted by package
// path.
func (s *factStore) allPackageFacts(a *Analyzer) []PackageFact {
	var out []PackageFact
	for k, f := range s.m {
		if k.analyzer == a.Name && k.pkg != nil {
			out = append(out, PackageFact{Pkg: k.pkg, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pkg.Path() < out[j].Pkg.Path() })
	return out
}

func objectKey(obj types.Object) string {
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	return pkg + "." + obj.Name()
}

// ExportObjectFact attaches fact to obj for this analyzer. The object
// should be declared in the package being analyzed; later packages that
// reach the same object (through the shared type-checker universe) can
// import it.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	p.facts.exportObject(p.Analyzer, obj, fact)
}

// ImportObjectFact copies the fact previously exported on obj into fact
// and reports whether one existed. The fact argument selects the fact type
// and receives the value.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	return p.facts.importObject(p.Analyzer, obj, fact)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.facts.exportPackage(p.Analyzer, p.Pkg, fact)
}

// ImportPackageFact copies the fact previously exported on pkg into fact
// and reports whether one existed.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	return p.facts.importPackage(p.Analyzer, pkg, fact)
}

// Finish is the whole-program pass handed to Analyzer.Finish after every
// package has been analyzed: it sees all accumulated facts and may report
// findings anywhere in the analyzed closure (positions resolve through the
// loader's shared FileSet). Findings land in the package owning the file;
// //lint:ignore directives apply as usual.
type Finish struct {
	Analyzer *Analyzer
	Fset     *token.FileSet

	facts  *factStore
	report func(Diagnostic)
}

// Reportf records a whole-program finding at pos.
func (f *Finish) Reportf(pos token.Pos, format string, args ...any) {
	f.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Position resolves a token.Pos against the shared FileSet.
func (f *Finish) Position(pos token.Pos) token.Position { return f.Fset.Position(pos) }

// AllObjectFacts lists this analyzer's object facts in deterministic order.
func (f *Finish) AllObjectFacts() []ObjectFact { return f.facts.allObjectFacts(f.Analyzer) }

// AllPackageFacts lists this analyzer's package facts in deterministic
// order.
func (f *Finish) AllPackageFacts() []PackageFact { return f.facts.allPackageFacts(f.Analyzer) }
