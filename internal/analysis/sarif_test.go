package analysis

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestWriteSARIFShape: the emitted log is valid JSON with the rule table,
// result-to-rule indices, and content fingerprints a SARIF consumer keys
// on — and byte-stable across runs.
func TestWriteSARIFShape(t *testing.T) {
	analyzers := testAnalyzers()
	findings := []Finding{
		{File: "a.go", Line: 3, Column: 1, Analyzer: "beta", ID: "T002", Message: "m1", Package: "p", Fingerprint: "feed"},
		{File: "b.go", Line: 9, Column: 2, Analyzer: "alpha", ID: "T001", Message: "m2", Package: "p", Fingerprint: "beef"},
	}

	var buf bytes.Buffer
	if err := WriteSARIF(&buf, analyzers, findings); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q, %d runs", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "mgpulint" || len(run.Tool.Driver.Rules) != 2 {
		t.Fatalf("driver %q with %d rules", run.Tool.Driver.Name, len(run.Tool.Driver.Rules))
	}
	if len(run.Results) != 2 {
		t.Fatalf("%d results, want 2", len(run.Results))
	}
	r0 := run.Results[0]
	if r0.RuleID != "T002" || r0.RuleIndex != 1 {
		t.Errorf("result 0 ruleId=%q index=%d, want T002/1", r0.RuleID, r0.RuleIndex)
	}
	if r0.PartialFingerprints["mgpulint/v1"] != "feed" {
		t.Errorf("fingerprint %v", r0.PartialFingerprints)
	}
	loc := r0.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "a.go" || loc.Region.StartLine != 3 || loc.Region.StartColumn != 1 {
		t.Errorf("location %+v", loc)
	}

	var again bytes.Buffer
	if err := WriteSARIF(&again, analyzers, findings); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("SARIF output is not byte-stable")
	}
}

// TestFingerprintStability: the fingerprint ignores line numbers (pure
// movement keeps identity) but distinguishes message and analyzer.
func TestFingerprintStability(t *testing.T) {
	base := Finding{Analyzer: "alpha", Package: "p", File: "/x/a.go", Message: "m"}
	moved := base
	moved.Line = 99
	moved.File = "/other/prefix/a.go" // same basename: still the same site
	if fingerprint(base) != fingerprint(moved) {
		t.Error("fingerprint changed on pure movement")
	}
	diffMsg := base
	diffMsg.Message = "m2"
	if fingerprint(base) == fingerprint(diffMsg) {
		t.Error("fingerprint collision across messages")
	}
	diffAnalyzer := base
	diffAnalyzer.Analyzer = "beta"
	if fingerprint(base) == fingerprint(diffAnalyzer) {
		t.Error("fingerprint collision across analyzers")
	}
	if len(fingerprint(base)) != 16 {
		t.Errorf("fingerprint length %d, want 16", len(fingerprint(base)))
	}
}
