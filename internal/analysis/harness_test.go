package analysis

import (
	"go/ast"
	"strings"
	"testing"
)

// panicAny is a minimal analyzer for exercising the harness itself: it
// flags every call to the panic builtin.
var panicAny = &Analyzer{
	Name: "panicany",
	Doc:  "test analyzer: flags every panic call",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					pass.Reportf(call.Pos(), "call to panic")
				}
				return true
			})
		}
	},
}

func checkFixture(t *testing.T, dir string) []error {
	t.Helper()
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	return CheckFixture(l, dir, panicAny)
}

// TestWrongWantFails: a fixture whose expectation never matches must fail
// twice over — the diagnostic is unexpected and the want is unmatched.
func TestWrongWantFails(t *testing.T) {
	errs := checkFixture(t, "testdata/src/harnessbad")
	if len(errs) != 2 {
		t.Fatalf("CheckFixture(harnessbad) returned %d errors, want 2: %v", len(errs), errs)
	}
	var haveUnexpected, haveUnmatched bool
	for _, e := range errs {
		if strings.Contains(e.Error(), "unexpected diagnostic") {
			haveUnexpected = true
		}
		if strings.Contains(e.Error(), "no diagnostic matching") {
			haveUnmatched = true
		}
	}
	if !haveUnexpected || !haveUnmatched {
		t.Errorf("missing error classes in %v", errs)
	}
}

// TestEmptyFixturePasses: no diagnostics against no wants is a pass.
func TestEmptyFixturePasses(t *testing.T) {
	if errs := checkFixture(t, "testdata/src/harnessempty"); len(errs) != 0 {
		t.Fatalf("CheckFixture(harnessempty) = %v, want none", errs)
	}
}

// TestIgnoreDirective: a well-formed //lint:ignore suppresses, a
// reason-less one does not.
func TestIgnoreDirective(t *testing.T) {
	if errs := checkFixture(t, "testdata/src/harnessignore"); len(errs) != 0 {
		t.Fatalf("CheckFixture(harnessignore) = %v, want none", errs)
	}
}

func TestPathHasSegment(t *testing.T) {
	cases := []struct {
		path, seg string
		want      bool
	}{
		{"mgpucompress/internal/sim", "sim", true},
		{"mgpucompress/internal/sim", "internal", true},
		{"mgpucompress/internal/simulate", "sim", false},
		{"sim", "sim", true},
		{"mgpucompress/internal/analysis/testdata/src/sim", "sim", true},
		{"", "sim", false},
	}
	for _, c := range cases {
		if got := PathHasSegment(c.path, c.seg); got != c.want {
			t.Errorf("PathHasSegment(%q, %q) = %v, want %v", c.path, c.seg, got, c.want)
		}
	}
}
