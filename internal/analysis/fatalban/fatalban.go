// Package fatalban keeps process-killing calls out of internal/ library
// packages. A log.Fatal or os.Exit inside the library tears the process
// down without unwinding, so deferred work — most critically the sweep
// journal flush that makes interrupted experiment runs resumable — never
// happens. Errors must propagate to the command layer, which owns the
// exit.
//
// panic is permitted only as a static assertion: its argument must be a
// constant, or a fmt.Sprintf/Sprint/Sprintln call whose first argument is
// constant (an identifiable invariant message). Panicking with a dynamic
// value — panic(err) above all — launders a propagatable error into a
// crash and is reported.
package fatalban

import (
	"go/ast"
	"go/types"

	"mgpucompress/internal/analysis"
)

// Analyzer is the fatalban check.
var Analyzer = &analysis.Analyzer{
	Name: "fatalban",
	ID:   "MGL004",
	Doc:  "internal/ packages must propagate errors, not exit the process or panic with dynamic values",
	Run:  run,
}

func run(pass *analysis.Pass) {
	if !analysis.PathHasSegment(pass.Pkg.Path(), "internal") {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin && id.Name == "panic" {
					checkPanic(pass, call)
					return true
				}
			}
			fn := analysis.Callee(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "os" && analysis.IsPkgFunc(fn, "os", "Exit"):
				pass.Reportf(call.Pos(), "os.Exit in library package %s kills the process before deferred work (journal flush) runs; return an error", pass.Pkg.Path())
			case fn.Pkg().Path() == "log" && isFatalName(fn.Name()):
				pass.Reportf(call.Pos(), "log.%s in library package %s exits without unwinding; return an error and let the command layer exit", fn.Name(), pass.Pkg.Path())
			}
			return true
		})
	}
}

func isFatalName(name string) bool {
	return name == "Fatal" || name == "Fatalf" || name == "Fatalln"
}

func checkPanic(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	arg := ast.Unparen(call.Args[0])
	if tv, ok := pass.Info.Types[arg]; ok && tv.Value != nil {
		return // constant assertion message
	}
	if inner, ok := arg.(*ast.CallExpr); ok {
		fn := analysis.Callee(pass, inner)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
			(fn.Name() == "Sprintf" || fn.Name() == "Sprint" || fn.Name() == "Sprintln") &&
			len(inner.Args) > 0 {
			if tv, ok := pass.Info.Types[ast.Unparen(inner.Args[0])]; ok && tv.Value != nil {
				return // assertion with constant format and dynamic details
			}
		}
	}
	pass.Reportf(call.Pos(), "panic with dynamic value in library package %s: propagate an error instead (assertion panics need a constant message or constant-format fmt.Sprintf)", pass.Pkg.Path())
}
