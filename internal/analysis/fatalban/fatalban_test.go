package fatalban_test

import (
	"testing"

	"mgpucompress/internal/analysis"
	"mgpucompress/internal/analysis/fatalban"
)

func TestFatalbanFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/fatalfix", fatalban.Analyzer)
}
