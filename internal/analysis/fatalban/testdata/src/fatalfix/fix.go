// Package fatalfix is the fatalban fixture: process-killing calls and
// dynamic-value panics are findings; constant-message assertion panics are
// the sanctioned escape hatch for broken invariants.
package fatalfix

import (
	"errors"
	"fmt"
	"log"
	"os"
)

var errBad = errors.New("bad")

func dynPanic(err error) {
	panic(err) // want "panic with dynamic value in library package"
}

func dynPanicValue(code int) {
	panic(code) // want "panic with dynamic value in library package"
}

func dynPanicErrorf(n int) {
	panic(fmt.Errorf("n = %d", n)) // want "panic with dynamic value in library package"
}

func exit() {
	os.Exit(1) // want "os.Exit in library package"
}

func fatal() {
	log.Fatalf("no: %v", errBad) // want "log.Fatalf in library package"
}

// assert shows the two permitted panic shapes: a constant message, and a
// constant-format fmt.Sprintf carrying dynamic detail.
func assert(n int) {
	if n < 0 {
		panic("fatalfix: n must be non-negative")
	}
	if n > 10 {
		panic(fmt.Sprintf("fatalfix: n out of range: %d", n))
	}
}
