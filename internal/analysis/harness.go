package analysis

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// This file is the fixture harness: analyzer test packages live under
// testdata/src/<name>/ and annotate the lines where diagnostics are
// expected with
//
//	// want "regexp" ["regexp" ...]
//
// CheckFixture runs one analyzer over one fixture package and returns a
// deterministic list of mismatches — unexpected diagnostics, unmatched
// expectations, or bad regexps. RunFixture adapts that to a *testing.T.
// Keeping the core t-free lets harness_test.go assert that a fixture with a
// wrong expectation really fails (an analyzer matching nothing must not
// pass silently).

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one // want clause.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// CheckFixture loads the fixture package rooted at dir with the loader and
// compares the analyzer's diagnostics against its // want comments.
// //lint:ignore directives are honored, so suppression itself is testable
// in fixtures.
func CheckFixture(l *Loader, dir string, a *Analyzer) []error {
	pkg, err := l.LoadDir(dir)
	if err != nil {
		return []error{err}
	}
	var errs []error
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				ms := wantRE.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					errs = append(errs, fmt.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text))
					continue
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						errs = append(errs, fmt.Errorf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err))
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	findings := Run([]*Package{pkg}, []*Analyzer{a})
	for _, f := range findings {
		if exp := matchWant(wants, f); exp == nil {
			errs = append(errs, fmt.Errorf("%s: unexpected diagnostic: %s", posString(f.Position), f.Message))
		}
	}
	for _, w := range wants {
		if !w.used {
			errs = append(errs, fmt.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re))
		}
	}
	sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
	return errs
}

// matchWant claims the first unused expectation on the finding's line whose
// regexp matches its message.
func matchWant(wants []*expectation, f Finding) *expectation {
	for _, w := range wants {
		if !w.used && w.file == f.File && w.line == f.Line && w.re.MatchString(f.Message) {
			w.used = true
			return w
		}
	}
	return nil
}

func posString(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}

// RunFixture is the test entry point: it fails t with every mismatch
// CheckFixture found in the fixture at dir.
func RunFixture(t *testing.T, dir string, a *Analyzer) {
	t.Helper()
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range CheckFixture(l, dir, a) {
		t.Error(e)
	}
}
