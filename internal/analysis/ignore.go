package analysis

import (
	"go/token"
	"strings"
)

// ignoreIndex records, per file and line, which analyzers are suppressed by
// a //lint:ignore comment. A directive suppresses findings on its own line
// (trailing comment) and on the line immediately below (standalone comment
// above the statement) — the two places such comments are written.
type ignoreIndex map[string]map[int][]string

// collectIgnores scans a package's comments for ignore directives of the
// form:
//
//	//lint:ignore analyzer[,analyzer...] reason
//
// A directive without a reason is malformed and deliberately does not
// suppress anything: the reason is the audit trail.
func collectIgnores(pkg *Package) ignoreIndex {
	idx := ignoreIndex{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue // no reason given: not honored
				}
				pos := pkg.Fset.Position(c.Slash)
				lines := idx[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					idx[pos.Filename] = lines
				}
				names := strings.Split(fields[0], ",")
				lines[pos.Line] = append(lines[pos.Line], names...)
			}
		}
	}
	return idx
}

// suppressed reports whether a finding by the named analyzer at pos is
// covered by a directive on the same line or the line above.
func (idx ignoreIndex) suppressed(analyzer string, pos token.Position) bool {
	lines, ok := idx[pos.Filename]
	if !ok {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}
