package errdrop_test

import (
	"testing"

	"mgpucompress/internal/analysis"
	"mgpucompress/internal/analysis/errdrop"
)

func TestErrdropFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/runner", errdrop.Analyzer)
}
