// Package runner is the errdrop fixture. Its directory name puts it in the
// analyzer's scope (the orchestration layer); dropped error results are
// findings, explicit discards and never-failing writers are not.
package runner

import (
	"fmt"
	"hash/fnv"
	"io"
	"strings"
)

func drop(w io.Writer) {
	fmt.Fprintf(w, "hello") // want "error result of fmt.Fprintf is dropped"
}

func dropMethod(w io.Writer, b []byte) {
	w.Write(b) // want "error result of Write is dropped"
}

func dropFuncValue(f func() error) {
	f() // want "error result of call is dropped"
}

func handled(w io.Writer, b []byte) error {
	if _, err := w.Write(b); err != nil {
		return err
	}
	_, _ = w.Write(b) // explicit discard is visible and legal

	var sb strings.Builder
	sb.WriteString("x")       // strings.Builder never fails: allowlisted
	fmt.Fprintf(&sb, "%d", 7) // Fprintf into a Builder cannot fail either

	h := fnv.New64a()
	h.Write(b) // hash.Hash.Write is documented to never fail

	fmt.Println(sb.String(), h.Sum64()) // stdout progress is allowlisted
	return nil
}
