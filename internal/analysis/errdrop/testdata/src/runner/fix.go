// Package runner is the errdrop fixture. Its directory name puts it in the
// analyzer's scope (the orchestration layer); dropped error results —
// call statements, all-blank assignments, and deferred calls — are
// findings; never-failing writers and assignments that bind a value are
// not.
package runner

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"strings"
)

func drop(w io.Writer) {
	fmt.Fprintf(w, "hello") // want "error result of fmt.Fprintf is dropped"
}

func dropMethod(w io.Writer, b []byte) {
	w.Write(b) // want "error result of Write is dropped"
}

func dropFuncValue(f func() error) {
	f() // want "error result of call is dropped"
}

func blankDiscard(c io.Closer, w io.Writer, b []byte) {
	_ = c.Close()     // want "error result of Close is discarded with a blank assignment"
	_, _ = w.Write(b) // want "error result of Write is discarded with a blank assignment"
}

func deferredDrop(c io.Closer) {
	defer c.Close() // want "error result of deferred Close is dropped"
}

func deferredJoin(c io.Closer) (err error) {
	// The sanctioned shape: the deferred close error joins the return.
	defer func() { err = errors.Join(err, c.Close()) }()
	return nil
}

func handled(w io.Writer, b []byte) error {
	if _, err := w.Write(b); err != nil {
		return err
	}
	n, _ := w.Write(b) // binding a value is evidence the call was considered

	var sb strings.Builder
	sb.WriteString("x")       // strings.Builder never fails: allowlisted
	fmt.Fprintf(&sb, "%d", 7) // Fprintf into a Builder cannot fail either

	h := fnv.New64a()
	h.Write(b) // hash.Hash.Write is documented to never fail

	fmt.Println(sb.String(), h.Sum64(), n) // stdout progress is allowlisted
	return nil
}
