// Package errdrop flags silently dropped error results in the
// orchestration layer (internal/runner and internal/sweep). Those are the
// packages where a swallowed error turns into a corrupt or un-resumable
// sweep journal, a missing artifact row, or a run that "succeeded" with
// half its jobs failed.
//
// Three drop shapes are reported:
//
//   - a call statement whose error result vanishes: f(); w.Write(b)
//
//   - an assignment that binds every result to blank: _ = f() and
//     _, _ = g(). These used to be the sanctioned opt-out, but an opt-out
//     that needs no justification is just a quieter bug: the close error
//     swallowed by `_ = f.Close()` is exactly the write-not-flushed signal
//     a journal consumer needed. An assignment that binds at least one
//     non-blank result (n, _ := w.Write(b)) stays legal — a used value is
//     evidence the call was considered.
//
//   - a deferred call whose error result has nowhere to go: defer
//     f.Close(). The fix is the named-return join idiom
//     (defer func() { err = errors.Join(err, f.Close()) }()), which the
//     orchestration layer now uses for every writable artifact.
//
// A justified //lint:ignore errdrop directive remains the explicit
// discard for the rare genuinely-uninteresting error. Calls that are
// documented never to fail are allowlisted: methods on strings.Builder
// and bytes.Buffer, hash.Hash writes, fmt printing to standard output,
// and fmt.Fprint* into a Builder or Buffer.
package errdrop

import (
	"go/ast"
	"go/types"

	"mgpucompress/internal/analysis"
)

// Analyzer is the errdrop check.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	ID:   "MGL003",
	Doc:  "internal/runner and internal/sweep must not ignore error results, including _ = discards and deferred calls",
	Run:  run,
}

// scoped reports whether the package is part of the orchestration layer.
func scoped(path string) bool {
	return analysis.PathHasSegment(path, "internal") &&
		(analysis.PathHasSegment(path, "runner") || analysis.PathHasSegment(path, "sweep"))
}

func run(pass *analysis.Pass) {
	if !scoped(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call := droppedCall(pass, stmt.X); call != nil {
					pass.Reportf(call.Pos(), "error result of %s is dropped; handle it or suppress with a justified //lint:ignore errdrop", describe(pass, call))
				}
			case *ast.AssignStmt:
				if !allBlank(stmt.Lhs) || len(stmt.Rhs) != 1 {
					return true
				}
				if call := droppedCall(pass, stmt.Rhs[0]); call != nil {
					pass.Reportf(stmt.Pos(), "error result of %s is discarded with a blank assignment; handle it or suppress with a justified //lint:ignore errdrop", describe(pass, call))
				}
			case *ast.DeferStmt:
				if call := droppedCall(pass, stmt.Call); call != nil {
					pass.Reportf(stmt.Pos(), "error result of deferred %s is dropped; join it into a named return (defer func() { err = errors.Join(err, ...) }())", describe(pass, call))
				}
			}
			return true
		})
	}
}

// droppedCall returns the call expression when e is a call whose error
// result is being ignored and the callee is not allowlisted.
func droppedCall(pass *analysis.Pass, e ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok || !returnsError(sig) || allowlisted(pass, call) {
		return nil
	}
	return call
}

// allBlank reports whether every assignment target is the blank
// identifier.
func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		t := res.At(i).Type()
		if _, isIface := t.Underlying().(*types.Interface); isIface && types.Implements(t, errorType) {
			return true
		}
	}
	return false
}

func allowlisted(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.Callee(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	// fmt.Print* go to standard output (progress lines); fmt.Fprint* are
	// fine when the sink is an in-memory builder or buffer that cannot
	// fail.
	if fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) > 0 {
				t := pass.TypeOf(call.Args[0])
				return analysis.IsNamed(t, "strings", "Builder") || analysis.IsNamed(t, "bytes", "Buffer")
			}
		}
		return false
	}
	// Methods on never-failing receivers.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := pass.Info.Selections[sel]; ok {
			recv := s.Recv()
			if analysis.IsNamed(recv, "strings", "Builder") ||
				analysis.IsNamed(recv, "bytes", "Buffer") ||
				analysis.TypeInPackage(recv, "hash") {
				return true
			}
		}
	}
	return false
}

func describe(pass *analysis.Pass, call *ast.CallExpr) string {
	if fn := analysis.Callee(pass, call); fn != nil {
		if fn.Pkg() != nil && fn.Type().(*types.Signature).Recv() == nil {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return "call"
}
