// Package errdrop flags silently dropped error results in the
// orchestration layer (internal/runner and internal/sweep). Those are the
// packages where a swallowed error turns into a corrupt or un-resumable
// sweep journal, a missing artifact row, or a run that "succeeded" with
// half its jobs failed. An error must be handled or explicitly discarded
// with `_ =` — the blank assignment is the visible, greppable opt-out.
//
// Calls that are documented never to fail are allowlisted: methods on
// strings.Builder and bytes.Buffer, hash.Hash writes, fmt printing to
// standard output, and fmt.Fprint* into a Builder or Buffer. Deferred
// calls (defer f.Close()) are likewise not reported.
package errdrop

import (
	"go/ast"
	"go/types"

	"mgpucompress/internal/analysis"
)

// Analyzer is the errdrop check.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc:  "internal/runner and internal/sweep must not ignore error results",
	Run:  run,
}

// scoped reports whether the package is part of the orchestration layer.
func scoped(path string) bool {
	return analysis.PathHasSegment(path, "internal") &&
		(analysis.PathHasSegment(path, "runner") || analysis.PathHasSegment(path, "sweep"))
}

func run(pass *analysis.Pass) {
	if !scoped(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
			if !ok || !returnsError(sig) || allowlisted(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(), "error result of %s is dropped; handle it or discard explicitly with _ =", describe(pass, call))
			return true
		})
	}
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		t := res.At(i).Type()
		if _, isIface := t.Underlying().(*types.Interface); isIface && types.Implements(t, errorType) {
			return true
		}
	}
	return false
}

func allowlisted(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.Callee(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	// fmt.Print* go to standard output (progress lines); fmt.Fprint* are
	// fine when the sink is an in-memory builder or buffer that cannot
	// fail.
	if fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) > 0 {
				t := pass.TypeOf(call.Args[0])
				return analysis.IsNamed(t, "strings", "Builder") || analysis.IsNamed(t, "bytes", "Buffer")
			}
		}
		return false
	}
	// Methods on never-failing receivers.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := pass.Info.Selections[sel]; ok {
			recv := s.Recv()
			if analysis.IsNamed(recv, "strings", "Builder") ||
				analysis.IsNamed(recv, "bytes", "Buffer") ||
				analysis.TypeInPackage(recv, "hash") {
				return true
			}
		}
	}
	return false
}

func describe(pass *analysis.Pass, call *ast.CallExpr) string {
	if fn := analysis.Callee(pass, call); fn != nil {
		if fn.Pkg() != nil && fn.Type().(*types.Signature).Recv() == nil {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return "call"
}
