package analysis

import (
	"go/types"
	"strings"
	"testing"
)

// markFact is the test fact: a value big enough to prove the import is a
// copy, not a shared pointer.
type markFact struct{ N int }

func (*markFact) AFact() {}

type pkgMark struct{ Tag string }

func (*pkgMark) AFact() {}

// loadFactFixture loads factroot and its factleaf dependency. Only
// factroot is requested; RunAll must pull factleaf in as part of the
// dependency closure.
func loadFactFixture(t *testing.T) []*Package {
	t.Helper()
	l, err := NewLoader("testdata/src/factroot")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load([]string{"testdata/src/factroot"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || !strings.HasSuffix(pkgs[0].ImportPath, "factroot") {
		t.Fatalf("loaded %v, want just factroot", pkgs)
	}
	return pkgs
}

// TestObjectFactPropagation: a fact exported on factleaf.Leaf while
// analyzing factleaf is importable — by value — when the same analyzer
// later analyzes factroot, and a fact never exported reports absence.
func TestObjectFactPropagation(t *testing.T) {
	type seen struct {
		leafOK, otherOK bool
		leaf            markFact
	}
	var got seen
	a := &Analyzer{
		Name:      "factprop",
		Doc:       "test analyzer: propagates a mark from factleaf to factroot",
		FactTypes: []Fact{(*markFact)(nil)},
		Run: func(pass *Pass) {
			switch {
			case strings.HasSuffix(pass.Pkg.Path(), "factleaf"):
				leaf := pass.Pkg.Scope().Lookup("Leaf")
				if leaf == nil {
					t.Error("factleaf.Leaf not found")
					return
				}
				pass.ExportObjectFact(leaf, &markFact{N: 42})
			case strings.HasSuffix(pass.Pkg.Path(), "factroot"):
				var dep *types.Package
				for _, imp := range pass.Pkg.Imports() {
					if strings.HasSuffix(imp.Path(), "factleaf") {
						dep = imp
					}
				}
				if dep == nil {
					t.Error("factroot does not import factleaf")
					return
				}
				got.leafOK = pass.ImportObjectFact(dep.Scope().Lookup("Leaf"), &got.leaf)
				var absent markFact
				got.otherOK = pass.ImportObjectFact(dep.Scope().Lookup("Other"), &absent)
			}
		},
	}
	RunAll(loadFactFixture(t), []*Analyzer{a})
	if !got.leafOK {
		t.Fatal("fact exported on factleaf.Leaf was not importable from factroot")
	}
	if got.leaf.N != 42 {
		t.Errorf("imported fact = %+v, want N=42", got.leaf)
	}
	if got.otherOK {
		t.Error("import succeeded for an object that never had a fact")
	}
}

// TestPackageFactAndFinish: package facts round-trip across packages, and
// the Finish pass enumerates everything in deterministic order.
func TestPackageFactAndFinish(t *testing.T) {
	var imported pkgMark
	var importedOK bool
	var finishObjs, finishPkgs int
	a := &Analyzer{
		Name:      "pkgfacts",
		Doc:       "test analyzer: package facts and the Finish enumeration",
		FactTypes: []Fact{(*markFact)(nil), (*pkgMark)(nil)},
		Run: func(pass *Pass) {
			switch {
			case strings.HasSuffix(pass.Pkg.Path(), "factleaf"):
				pass.ExportPackageFact(&pkgMark{Tag: "leaf"})
				pass.ExportObjectFact(pass.Pkg.Scope().Lookup("Leaf"), &markFact{N: 1})
				pass.ExportObjectFact(pass.Pkg.Scope().Lookup("Other"), &markFact{N: 2})
			case strings.HasSuffix(pass.Pkg.Path(), "factroot"):
				for _, imp := range pass.Pkg.Imports() {
					if strings.HasSuffix(imp.Path(), "factleaf") {
						importedOK = pass.ImportPackageFact(imp, &imported)
					}
				}
			}
		},
		Finish: func(fin *Finish) {
			objs := fin.AllObjectFacts()
			finishObjs = len(objs)
			// Deterministic order: by position, and both factleaf functions
			// live in one file with Leaf first.
			if len(objs) == 2 && objs[0].Obj.Name() != "Leaf" {
				t.Errorf("AllObjectFacts order: got %s first, want Leaf", objs[0].Obj.Name())
			}
			finishPkgs = len(fin.AllPackageFacts())
		},
	}
	RunAll(loadFactFixture(t), []*Analyzer{a})
	if !importedOK || imported.Tag != "leaf" {
		t.Errorf("package fact import = (%v, %+v), want (true, Tag=leaf)", importedOK, imported)
	}
	if finishObjs != 2 || finishPkgs != 1 {
		t.Errorf("Finish saw %d object facts and %d package facts, want 2 and 1", finishObjs, finishPkgs)
	}
}

// TestUndeclaredFactPanics: exporting a fact type missing from FactTypes
// is a programming error and must panic loudly.
func TestUndeclaredFactPanics(t *testing.T) {
	pkgs := loadFactFixture(t)
	a := &Analyzer{
		Name: "badfacts",
		Doc:  "test analyzer: exports an undeclared fact type",
		Run: func(pass *Pass) {
			defer func() {
				if recover() == nil {
					t.Error("ExportObjectFact with undeclared type did not panic")
				}
			}()
			pass.ExportObjectFact(pass.Pkg.Scope().Lookup("Root"), &markFact{})
		},
	}
	RunAll(pkgs, []*Analyzer{a})
}

// TestFactsIsolatedByAnalyzer: two analyzers sharing a fact type do not
// see each other's facts.
func TestFactsIsolatedByAnalyzer(t *testing.T) {
	var crossSeen bool
	writer := &Analyzer{
		Name:      "factwriter",
		Doc:       "test analyzer: exports",
		FactTypes: []Fact{(*markFact)(nil)},
		Run: func(pass *Pass) {
			if strings.HasSuffix(pass.Pkg.Path(), "factleaf") {
				pass.ExportObjectFact(pass.Pkg.Scope().Lookup("Leaf"), &markFact{N: 7})
			}
		},
	}
	reader := &Analyzer{
		Name:      "factreader",
		Doc:       "test analyzer: must not see factwriter's facts",
		FactTypes: []Fact{(*markFact)(nil)},
		Run: func(pass *Pass) {
			if strings.HasSuffix(pass.Pkg.Path(), "factroot") {
				for _, imp := range pass.Pkg.Imports() {
					if strings.HasSuffix(imp.Path(), "factleaf") {
						var f markFact
						crossSeen = crossSeen || pass.ImportObjectFact(imp.Scope().Lookup("Leaf"), &f)
					}
				}
			}
		},
	}
	RunAll(loadFactFixture(t), []*Analyzer{writer, reader})
	if crossSeen {
		t.Error("facts leaked between analyzers")
	}
}
