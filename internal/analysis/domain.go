package analysis

// The deterministic domain is the set of packages whose outputs are
// contractually byte-identical across runs, worker counts, and goroutine
// interleavings: the sim-clock family plus internal/serve, whose persisted
// journals and results files are pure functions of the job keys. Several
// analyzers scope to it (wallclock, puretaint, globalmut), so the
// definition lives here — one source of truth instead of a copy per
// analyzer.

// deterministicSegments is the sim-clock package family, matched as path
// segments under an internal/ segment. serve is included because its
// persisted artifacts (batch journals and results files) carry the same
// byte-identity contract as the simulator: wall time may pace the daemon,
// never leak into a record. Orchestration packages — notably
// internal/sweep, whose progress reporting legitimately measures wall time
// — are outside the domain.
var deterministicSegments = map[string]bool{
	"sim": true, "comp": true, "fabric": true, "gpu": true, "mem": true,
	"rdma": true, "stats": true, "workloads": true, "energy": true,
	"core": true, "cache": true, "platform": true, "bitstream": true,
	"trace": true, "fault": true, "serve": true,
}

// InDeterministicDomain reports whether the import path belongs to the
// deterministic domain.
func InDeterministicDomain(path string) bool {
	if !PathHasSegment(path, "internal") {
		return false
	}
	for seg := range deterministicSegments {
		if PathHasSegment(path, seg) {
			return true
		}
	}
	return false
}
