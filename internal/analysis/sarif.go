package analysis

import (
	"encoding/json"
	"io"
)

// SARIF 2.1.0 emission: the minimal, schema-valid subset that GitHub code
// scanning and SARIF viewers consume. One run, one tool, one rule per
// analyzer (keyed by its stable ID), one result per finding with the
// finding's content fingerprint carried in partialFingerprints so result
// matching survives line drift.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	Name             string       `json:"name"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID              string            `json:"ruleId"`
	RuleIndex           int               `json:"ruleIndex"`
	Level               string            `json:"level"`
	Message             sarifMessage      `json:"message"`
	Locations           []sarifLocation   `json:"locations"`
	PartialFingerprints map[string]string `json:"partialFingerprints"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF renders the findings as a SARIF 2.1.0 log. Findings must
// already be sorted (Run guarantees it), so the output is byte-stable.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, findings []Finding) error {
	rules := make([]sarifRule, 0, len(analyzers))
	index := map[string]int{}
	for i, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.ID,
			Name:             a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
		index[a.Name] = i
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:    f.ID,
			RuleIndex: index[f.Analyzer],
			Level:     "error",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Column},
				},
			}},
			PartialFingerprints: map[string]string{"mgpulint/v1": f.Fingerprint},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "mgpulint", InformationURI: "https://example.invalid/mgpulint", Rules: rules}},
			Results: results,
		}},
	})
}
