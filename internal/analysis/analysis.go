// Package analysis is a small, stdlib-only static-analysis framework for
// this repository: the machinery behind cmd/mgpulint. It plays the role
// golang.org/x/tools/go/analysis plays for general Go code, specialized to
// the determinism invariants the paper reproduction depends on (byte
// identical artifacts for any worker count, simulated time decoupled from
// wall time, fully propagated errors so sweep journals flush).
//
// An Analyzer inspects one type-checked package at a time and reports
// Diagnostics. The Loader (load.go) type-checks the module with go/parser
// and go/types only — no external dependencies, per DESIGN's stdlib rule.
// Since mgpulint v2 the framework is whole-program: packages are analyzed
// in dependency order and analyzers may attach Facts to objects and
// packages (facts.go) that downstream packages import, which is how
// puretaint propagates nondeterminism transitively and lockorder compares
// lock orderings across package boundaries. Fixture testing with
// // want "regexp" comments lives in harness.go, //lint:ignore suppression
// in ignore.go, and machine-readable output (SARIF, suppression-budget
// baselines) in sarif.go and baseline.go.
package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in findings and //lint:ignore comments.
	Name string
	// ID is the stable rule identifier (MGL001...) used in SARIF output and
	// baselines. It never changes once assigned, even if the analyzer is
	// renamed.
	ID string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// FactTypes lists the pointer fact types this analyzer may export;
	// exporting an undeclared type panics (a programming error).
	FactTypes []Fact
	// Run inspects one package through the Pass and reports findings.
	Run func(*Pass)
	// Finish, if non-nil, runs once after every package: a whole-program
	// pass over the accumulated facts (lock-order consistency is checked
	// here, because no single package sees every acquisition site).
	Finish func(*Finish)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	facts  *factStore
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of e, or nil when the type checker has none.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf resolves an identifier to its object (definition or use).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.Defs[id]; o != nil {
		return o
	}
	return p.Info.Uses[id]
}

// Diagnostic is one finding inside a package, pre-position-resolution.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is one resolved finding, ready to print.
type Finding struct {
	Position    token.Position `json:"-"`
	File        string         `json:"file"`
	Line        int            `json:"line"`
	Column      int            `json:"column"`
	Analyzer    string         `json:"analyzer"`
	ID          string         `json:"id"`
	Message     string         `json:"message"`
	Package     string         `json:"package"`
	Fingerprint string         `json:"fingerprint"`
}

// String renders the finding in the canonical file:line: [analyzer] form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Column, f.Analyzer, f.Message)
}

// fingerprint derives the finding's stable identity: analyzer, package,
// file base name, and message — deliberately not the line number, so pure
// movement (an edit above the finding) does not change identity, which
// keeps baselines and SARIF result-matching stable across refactors.
func fingerprint(f Finding) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00%s", f.Analyzer, f.Package, filepath.Base(f.File), f.Message)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Result is everything one Run produced: the surviving findings plus the
// diagnostics that //lint:ignore directives suppressed. Suppressions are
// first-class because the baseline gate budgets them: CI fails when the
// suppression count grows, so silencing an analyzer is as visible in
// review as a new finding.
type Result struct {
	Findings   []Finding
	Suppressed []Finding
}

// Run applies every analyzer to every package and returns the surviving
// findings. It is the compatibility wrapper over RunAll.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	return RunAll(pkgs, analyzers).Findings
}

// RunAll applies every analyzer to the dependency closure of pkgs in
// topological (imports-first) order, so facts about a package exist before
// any importer is analyzed. Findings are only reported for the requested
// packages — dependencies pulled in for fact computation stay silent —
// and are sorted by file, line, column, analyzer, message: a deterministic
// report for a tool that polices determinism.
func RunAll(pkgs []*Package, analyzers []*Analyzer) *Result {
	res := &Result{}
	if len(pkgs) == 0 {
		return res
	}
	requested := make(map[*Package]bool, len(pkgs))
	for _, p := range pkgs {
		requested[p] = true
	}
	ordered := topoOrder(pkgs)

	facts := newFactStore()
	// fileOwner maps each analyzed file to its package's reporting context,
	// so Finish passes can attribute whole-program findings (and honor the
	// file's //lint:ignore directives).
	type owner struct {
		pkg       *Package
		ignores   ignoreIndex
		requested bool
	}
	fileOwner := map[string]owner{}

	var out, suppressed []Finding
	record := func(a *Analyzer, pkg *Package, ignores ignoreIndex, wanted bool) func(Diagnostic) {
		return func(d Diagnostic) {
			if !wanted {
				return
			}
			pos := pkg.Fset.Position(d.Pos)
			f := Finding{
				Position: pos,
				File:     pos.Filename,
				Line:     pos.Line,
				Column:   pos.Column,
				Analyzer: a.Name,
				ID:       a.ID,
				Message:  d.Message,
				Package:  pkg.ImportPath,
			}
			f.Fingerprint = fingerprint(f)
			if ignores.suppressed(a.Name, pos) {
				suppressed = append(suppressed, f)
				return
			}
			out = append(out, f)
		}
	}

	for _, pkg := range ordered {
		ignores := collectIgnores(pkg)
		wanted := requested[pkg]
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			fileOwner[name] = owner{pkg: pkg, ignores: ignores, requested: wanted}
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				facts:    facts,
			}
			pass.report = record(a, pkg, ignores, wanted)
			a.Run(pass)
		}
	}

	// Whole-program passes: findings resolve to their owning package by
	// file name.
	fset := pkgs[0].Fset
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		fin := &Finish{Analyzer: a, Fset: fset, facts: facts}
		fin.report = func(d Diagnostic) {
			pos := fset.Position(d.Pos)
			o, ok := fileOwner[pos.Filename]
			if !ok || !o.requested {
				return
			}
			f := Finding{
				Position: pos,
				File:     pos.Filename,
				Line:     pos.Line,
				Column:   pos.Column,
				Analyzer: a.Name,
				ID:       a.ID,
				Message:  d.Message,
				Package:  o.pkg.ImportPath,
			}
			f.Fingerprint = fingerprint(f)
			if o.ignores.suppressed(a.Name, pos) {
				suppressed = append(suppressed, f)
				return
			}
			out = append(out, f)
		}
		a.Finish(fin)
	}

	sortFindings(out)
	sortFindings(suppressed)
	res.Findings = out
	res.Suppressed = suppressed
	return res
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// topoOrder expands pkgs to their module-internal dependency closure and
// returns it imports-first: every package appears after all packages it
// imports. Roots are visited in the caller's order and dependencies in
// sorted import-path order, so the result is deterministic.
func topoOrder(pkgs []*Package) []*Package {
	var ordered []*Package
	visited := map[*Package]bool{}
	var visit func(p *Package)
	visit = func(p *Package) {
		if visited[p] {
			return
		}
		visited[p] = true
		for _, d := range p.deps {
			visit(d)
		}
		ordered = append(ordered, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return ordered
}

// PathHasSegment reports whether one of path's slash-separated segments
// equals seg. Analyzers use it to scope themselves to package families
// ("internal", "sim", "sweep") without hard-coding the module path, which
// also keeps testdata fixtures — whose import paths live under
// internal/analysis/... — inside the scoped domain.
func PathHasSegment(path, seg string) bool {
	for len(path) > 0 {
		i := 0
		for i < len(path) && path[i] != '/' {
			i++
		}
		if path[:i] == seg {
			return true
		}
		if i == len(path) {
			break
		}
		path = path[i+1:]
	}
	return false
}
