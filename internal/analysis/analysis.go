// Package analysis is a small, stdlib-only static-analysis framework for
// this repository: the machinery behind cmd/mgpulint. It plays the role
// golang.org/x/tools/go/analysis plays for general Go code, specialized to
// the determinism invariants the paper reproduction depends on (byte
// identical artifacts for any worker count, simulated time decoupled from
// wall time, fully propagated errors so sweep journals flush).
//
// An Analyzer inspects one type-checked package at a time and reports
// Diagnostics. The Loader (load.go) type-checks the module with go/parser
// and go/types only — no external dependencies, per DESIGN's stdlib rule.
// Fixture testing with // want "regexp" comments lives in harness.go, and
// //lint:ignore suppression in ignore.go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in findings and //lint:ignore comments.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects one package through the Pass and reports findings.
	Run func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of e, or nil when the type checker has none.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf resolves an identifier to its object (definition or use).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.Defs[id]; o != nil {
		return o
	}
	return p.Info.Uses[id]
}

// Diagnostic is one finding inside a package, pre-position-resolution.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is one resolved finding, ready to print.
type Finding struct {
	Position token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Column   int            `json:"column"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
	Package  string         `json:"package"`
}

// String renders the finding in the canonical file:line: [analyzer] form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Column, f.Analyzer, f.Message)
}

// Run applies every analyzer to every package and returns the surviving
// findings: //lint:ignore-suppressed diagnostics are dropped, the rest are
// sorted by file, line, column, analyzer, message — a deterministic report
// for a tool that polices determinism.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			pass.report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if ignores.suppressed(a.Name, pos) {
					return
				}
				out = append(out, Finding{
					Position: pos,
					File:     pos.Filename,
					Line:     pos.Line,
					Column:   pos.Column,
					Analyzer: a.Name,
					Message:  d.Message,
					Package:  pkg.ImportPath,
				})
			}
			a.Run(pass)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

// PathHasSegment reports whether one of path's slash-separated segments
// equals seg. Analyzers use it to scope themselves to package families
// ("internal", "sim", "sweep") without hard-coding the module path, which
// also keeps testdata fixtures — whose import paths live under
// internal/analysis/... — inside the scoped domain.
func PathHasSegment(path, seg string) bool {
	for len(path) > 0 {
		i := 0
		for i < len(path) && path[i] != '/' {
			i++
		}
		if path[:i] == seg {
			return true
		}
		if i == len(path) {
			break
		}
		path = path[i+1:]
	}
	return false
}
