// Package lockorder records lock-acquisition order facts per function and
// reports inconsistent pairwise orderings across the concurrent service
// layer (internal/sweep, internal/serve) — the classic ABBA deadlock
// shape, caught statically. The supervisor, store, and engine already
// take multiple mutexes; a future refactor that nests them in opposite
// orders on two paths would deadlock only under load, long after CI.
//
// The analysis runs in three layers:
//
//  1. Per function, every sync.Mutex/sync.RWMutex acquisition is resolved
//     to a stable lock identity: the receiver type and field path for
//     struct-held locks ("serve.Service.mu") or the qualified name for
//     package-level locks ("serve.poolMu"). Distinct instances of one
//     type share an identity — lock discipline is a per-type property.
//
//  2. An Acquires object fact — the transitive set of lock identities a
//     function may take — is exported for every function and imported at
//     call sites, so "holds A, calls g, g locks B somewhere below" records
//     the pair (A, B) even when g lives in another package. Within a
//     package the summaries run to a fixed point; across packages the
//     facts flow along the dependency order RunAll guarantees.
//
//  3. A whole-program Finish pass folds every package's recorded pairs
//     (a Pairs package fact) into one order graph and reports each pair
//     observed in both directions, pointing every site of the rarer
//     direction at a witness site of the other — the actionable line to
//     change is almost always the minority one.
//
// The walk is syntactic and flow-insensitive over each body (statement
// order approximates execution order; deferred unlocks hold to function
// end), which can overreport across exclusive branches — a //lint:ignore
// with the invariant that makes the order safe is the escape hatch.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"mgpucompress/internal/analysis"
)

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name:      "lockorder",
	ID:        "MGL008",
	Doc:       "lock pairs must be acquired in one consistent order across internal/sweep, internal/serve and internal/sim",
	FactTypes: []analysis.Fact{(*Acquires)(nil), (*Pairs)(nil)},
	Run:       run,
	Finish:    finish,
}

// Acquires is the object fact exported for every function that may take a
// lock, directly or through its callees.
type Acquires struct {
	// Locks are the lock identities, sorted.
	Locks []string
}

// AFact marks Acquires as a fact type.
func (*Acquires) AFact() {}

// Pair is one ordered acquisition: Second was (or may be) taken while
// First was held.
type Pair struct {
	First  string
	Second string
	Pos    token.Pos
	Func   string
}

// Pairs is the package fact accumulating every ordered acquisition
// observed in one package.
type Pairs struct {
	List []Pair
}

// AFact marks Pairs as a fact type.
func (*Pairs) AFact() {}

// scoped reports whether pairs are recorded and reported for the package:
// the concurrent service layer, plus the parallel simulation kernel since
// its windowed run loop holds engine-level state while calling into
// partition code.
func scoped(path string) bool {
	return analysis.PathHasSegment(path, "internal") &&
		(analysis.PathHasSegment(path, "sweep") ||
			analysis.PathHasSegment(path, "serve") ||
			analysis.PathHasSegment(path, "sim"))
}

// lockCall classifies a call as Lock/RLock (acquire) or Unlock/RUnlock
// (release) on a sync mutex, returning the lock identity.
func lockCall(pass *analysis.Pass, call *ast.CallExpr) (id string, acquire, release bool) {
	fn := analysis.Callee(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false, false
	}
	rt := recv.Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return "", false, false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return "", false, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	id = lockIdentity(pass, sel.X)
	if id == "" {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return id, true, false
	case "Unlock", "RUnlock":
		return id, false, true
	}
	return "", false, false
}

// lockIdentity names the lock denoted by expr: "pkg.Type.fieldpath" when
// the base is a variable of a named type (any instance), "pkg.varname"
// for a package-level lock var. Locks it cannot name (map elements, call
// results) return "" and are not tracked.
func lockIdentity(pass *analysis.Pass, expr ast.Expr) string {
	var fields []string
	e := ast.Unparen(expr)
	for {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			break
		}
		fields = append([]string{sel.Sel.Name}, fields...)
		e = ast.Unparen(sel.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	obj := pass.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok {
		// A package qualifier: pkg.lockVar — fields[0] is the var name.
		if pkg, isPkg := obj.(*types.PkgName); isPkg && len(fields) >= 1 {
			return pkg.Imported().Name() + "." + strings.Join(fields, ".")
		}
		return ""
	}
	if v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		// Package-level lock (possibly with a field path below it).
		return v.Pkg().Name() + "." + strings.Join(append([]string{v.Name()}, fields...), ".")
	}
	// Local or receiver var: identify by its named type.
	t := v.Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || len(fields) == 0 {
		return ""
	}
	return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + strings.Join(fields, ".")
}

// funcState is the per-function working state of one package pass.
type funcState struct {
	fn       *types.Func
	body     *ast.BlockStmt
	direct   map[string]bool // locks acquired in this body
	callees  []*types.Func   // resolved callees, for the fixed point
	acquires map[string]bool // transitive closure
}

func run(pass *analysis.Pass) {
	var funcs []*funcState
	byObj := map[*types.Func]*funcState{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.ObjectOf(fd.Name).(*types.Func)
			if !ok {
				continue
			}
			fs := &funcState{fn: fn, body: fd.Body, direct: map[string]bool{}, acquires: map[string]bool{}}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, acq, _ := lockCall(pass, call); acq && id != "" {
					fs.direct[id] = true
					fs.acquires[id] = true
					return true
				}
				if callee := analysis.Callee(pass, call); callee != nil {
					fs.callees = append(fs.callees, callee)
				}
				return true
			})
			funcs = append(funcs, fs)
			byObj[fn] = fs
		}
	}

	// Transitive acquires: imported facts seed out-of-package callees, the
	// local fixed point closes same-package chains.
	for changed := true; changed; {
		changed = false
		for _, fs := range funcs {
			for _, callee := range fs.callees {
				if local, ok := byObj[callee]; ok {
					for id := range local.acquires {
						if !fs.acquires[id] {
							fs.acquires[id] = true
							changed = true
						}
					}
					continue
				}
				var a Acquires
				if pass.ImportObjectFact(callee, &a) {
					for _, id := range a.Locks {
						if !fs.acquires[id] {
							fs.acquires[id] = true
							changed = true
						}
					}
				}
			}
		}
	}
	for _, fs := range funcs {
		if len(fs.acquires) == 0 {
			continue
		}
		locks := make([]string, 0, len(fs.acquires))
		for id := range fs.acquires {
			locks = append(locks, id)
		}
		sort.Strings(locks)
		pass.ExportObjectFact(fs.fn, &Acquires{Locks: locks})
	}

	// Pair recording: walk each scoped function linearly, tracking the
	// held set.
	if !scoped(pass.Pkg.Path()) {
		return
	}
	var pairs []Pair
	for _, fs := range funcs {
		pairs = append(pairs, recordPairs(pass, fs, byObj)...)
	}
	if len(pairs) > 0 {
		pass.ExportPackageFact(&Pairs{List: pairs})
	}
}

// recordPairs replays one body in source order and emits an ordered Pair
// for every lock (or lock-taking call) under a held lock.
func recordPairs(pass *analysis.Pass, fs *funcState, byObj map[*types.Func]*funcState) []Pair {
	// Deferred calls run at return: their unlocks must not release the
	// held set mid-walk, and their acquisitions pair against function-end
	// state no walk position models well — skip them entirely.
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(fs.body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})

	var pairs []Pair
	held := map[string]token.Pos{} // lock id → acquisition site
	var order []string             // held, in acquisition order
	name := fs.fn.Name()
	ast.Inspect(fs.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || deferred[call] {
			return true
		}
		if id, acq, rel := lockCall(pass, call); id != "" && (acq || rel) {
			if rel {
				if _, ok := held[id]; ok {
					delete(held, id)
					for i, h := range order {
						if h == id {
							order = append(order[:i], order[i+1:]...)
							break
						}
					}
				}
				return true
			}
			for _, h := range order {
				if h != id {
					pairs = append(pairs, Pair{First: h, Second: id, Pos: call.Pos(), Func: name})
				}
			}
			if _, already := held[id]; !already {
				held[id] = call.Pos()
				order = append(order, id)
			}
			return true
		}
		if len(order) == 0 {
			return true
		}
		callee := analysis.Callee(pass, call)
		if callee == nil {
			return true
		}
		var acquired []string
		if local, ok := byObj[callee]; ok {
			for id := range local.acquires {
				acquired = append(acquired, id)
			}
			sort.Strings(acquired)
		} else {
			var a Acquires
			if pass.ImportObjectFact(callee, &a) {
				acquired = a.Locks
			}
		}
		for _, h := range order {
			for _, id := range acquired {
				if h != id {
					pairs = append(pairs, Pair{First: h, Second: id, Pos: call.Pos(), Func: name})
				}
			}
		}
		return true
	})
	return pairs
}

// finish folds every package's pairs into one order graph and reports
// inversions.
func finish(fin *analysis.Finish) {
	type key struct{ a, b string }
	sites := map[key][]Pair{}
	for _, pf := range fin.AllPackageFacts() {
		ps, ok := pf.Fact.(*Pairs)
		if !ok {
			continue
		}
		for _, p := range ps.List {
			sites[key{p.First, p.Second}] = append(sites[key{p.First, p.Second}], p)
		}
	}
	reported := map[key]bool{}
	keys := make([]key, 0, len(sites))
	for k := range sites {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	for _, k := range keys {
		rev := key{k.b, k.a}
		if reported[k] || reported[rev] {
			continue
		}
		revSites, inverted := sites[rev]
		if !inverted {
			continue
		}
		reported[k], reported[rev] = true, true
		fwd := sites[k]
		// Report the minority direction against a witness from the
		// majority; on a tie report both directions.
		switch {
		case len(fwd) < len(revSites):
			reportDir(fin, fwd, revSites[0])
		case len(revSites) < len(fwd):
			reportDir(fin, revSites, fwd[0])
		default:
			reportDir(fin, fwd, revSites[0])
			reportDir(fin, revSites, fwd[0])
		}
	}
}

func reportDir(fin *analysis.Finish, minority []Pair, witness Pair) {
	w := fin.Position(witness.Pos)
	for _, p := range minority {
		fin.Reportf(p.Pos,
			"%s acquires %s while holding %s, but %s takes them in the opposite order (%s:%d); pick one order",
			p.Func, p.Second, p.First, witness.Func, w.Filename, w.Line)
	}
}
