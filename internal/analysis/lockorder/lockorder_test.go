package lockorder_test

import (
	"testing"

	"mgpucompress/internal/analysis"
	"mgpucompress/internal/analysis/lockorder"
)

// TestLockorderFixture covers the full pipeline: per-function acquisition
// tracking, local callee summaries, cross-package Acquires facts (through
// the store fixture package), and the whole-program inversion report with
// minority-direction selection.
func TestLockorderFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/serve", lockorder.Analyzer)
}

// TestStorePackageSilent: the dependency package is out of scope — facts,
// but no findings, even though it takes locks.
func TestStorePackageSilent(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/store", lockorder.Analyzer)
}
