// Package store is the out-of-scope dependency of the lockorder fixture:
// no pairs are recorded or reported here, but Acquires facts are exported
// for its lock-taking functions so the serve fixture package sees, at its
// call sites, which locks a call may take.
package store

import "sync"

// Store holds an exported lock so the serve fixture can also acquire it
// directly.
type Store struct {
	Mu   sync.Mutex
	rows int
}

// Mutate locks the store; importers calling this under their own lock
// record the (caller-lock, store.Store.Mu) pair through the Acquires fact.
func (s *Store) Mutate() {
	s.Mu.Lock()
	s.rows++
	s.Mu.Unlock()
}
