// Package serve is the lockorder fixture: its import path carries the
// internal/.../serve segments, so acquisition pairs are recorded here and
// inverted orders are findings. The store import exercises cross-package
// Acquires facts.
package serve

import (
	"sync"

	"mgpucompress/internal/analysis/lockorder/testdata/src/store"
)

type Service struct{ mu sync.Mutex }

type Journal struct{ mu sync.Mutex }

// ab and abToo establish the majority order Service.mu → Journal.mu; the
// consistent sites are never findings.
func ab(s *Service, j *Journal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.mu.Lock()
	j.mu.Unlock()
}

func abToo(s *Service, j *Journal) {
	s.mu.Lock()
	lockJournal(j) // the pair flows through the local callee's summary
	s.mu.Unlock()
}

func lockJournal(j *Journal) {
	j.mu.Lock()
	j.mu.Unlock()
}

// ba inverts the order: the minority site is the finding, pointed at a
// majority witness.
func ba(s *Service, j *Journal) {
	j.mu.Lock()
	s.mu.Lock() // want "ba acquires serve\.Service\.mu while holding serve\.Journal\.mu, but ab takes them in the opposite order"
	s.mu.Unlock()
	j.mu.Unlock()
}

// usesStore and invertedStore conflict through a cross-package fact: the
// tie (one site each way) reports both directions.
func usesStore(sv *Service, st *store.Store) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	st.Mutate() // want "usesStore acquires store\.Store\.Mu while holding serve\.Service\.mu, but invertedStore takes them in the opposite order"
}

func invertedStore(sv *Service, st *store.Store) {
	st.Mu.Lock()
	sv.mu.Lock() // want "invertedStore acquires serve\.Service\.mu while holding store\.Store\.Mu, but usesStore takes them in the opposite order"
	sv.mu.Unlock()
	st.Mu.Unlock()
}

// consistent never inverts: one direction only, no finding.
type Registry struct{ mu sync.Mutex }

func consistent(s *Service, r *Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.mu.Lock()
	r.mu.Unlock()
}

// release really releases: after Unlock the next acquisition is not a
// pair.
func release(s *Service, j *Journal) {
	s.mu.Lock()
	s.mu.Unlock()
	j.mu.Lock()
	j.mu.Unlock()
}
