package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Helpers shared by the analyzers: resolving callees, classifying receiver
// types, and a synthesized io.Writer so implements-checks work even in
// packages that never import io.

// IoWriter is the io.Writer interface, built from scratch so analyzers can
// ask types.Implements without the analyzed package importing io.
var IoWriter = func() *types.Interface {
	params := types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte])))
	results := types.NewTuple(
		types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
		types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type()),
	)
	sig := types.NewSignatureType(nil, nil, nil, params, results, false)
	iface := types.NewInterfaceType([]*types.Func{types.NewFunc(token.NoPos, nil, "Write", sig)}, nil)
	iface.Complete()
	return iface
}()

// Callee resolves the function or method a call invokes, or nil for calls
// through function values, builtins, and conversions.
func Callee(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Qualified identifier: pkg.Func.
		fn, _ := pass.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

// IsPkgFunc reports whether fn is the package-level function pkgPath.name.
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// NamedType returns the (pointer-stripped) named type of t, or nil.
func NamedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// IsNamed reports whether t (or *t) is the named type pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	n := NamedType(t)
	return n != nil && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// TypeInPackage reports whether t's named type is declared in a package
// whose import path has the prefix. Used to classify e.g. every hash.*
// interface at once.
func TypeInPackage(t types.Type, pathPrefix string) bool {
	n := NamedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	p := n.Obj().Pkg().Path()
	return p == pathPrefix || len(p) > len(pathPrefix) && p[:len(pathPrefix)] == pathPrefix && p[len(pathPrefix)] == '/'
}

// RootVar resolves the variable an expression denotes: the object behind a
// plain identifier, or the field object behind a selector. It is the
// identity analyzers key on when tracking a value across statements.
func RootVar(pass *Pass, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := pass.ObjectOf(e).(*types.Var)
		return v
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[e]; ok {
			v, _ := sel.Obj().(*types.Var)
			return v
		}
		v, _ := pass.ObjectOf(e.Sel).(*types.Var)
		return v
	}
	return nil
}
