// Package factroot imports factleaf; analyzing it exercises cross-package
// fact import through the shared type-checker universe.
package factroot

import "mgpucompress/internal/analysis/testdata/src/factleaf"

// Root forces the factleaf import to be used.
func Root() int { return factleaf.Leaf() + factleaf.Other() }
