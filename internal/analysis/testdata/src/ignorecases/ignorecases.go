// Package ignorecases exercises the //lint:ignore directive parser. The
// companion test (ignore_test.go) runs the panicany test analyzer over
// this file and asserts exactly which panics survive: every shape of
// directive placement and malformation is represented here.
package ignorecases

func trailing() {
	panic("x") //lint:ignore panicany a trailing directive suppresses its own line
}

func above() {
	//lint:ignore panicany a standalone directive covers the line below
	panic("x")
}

func multi() {
	//lint:ignore panicany,otherzzz one directive may name several analyzers
	panic("x")
}

func noReason() {
	//lint:ignore panicany
	panic("x") // MARKER:noReason — reason missing, directive not honored
}

func wrongAnalyzer() {
	//lint:ignore detmap the directive names a different analyzer
	panic("x") // MARKER:wrongAnalyzer
}

func tooFar() {
	//lint:ignore panicany the directive is two lines up: not honored
	_ = 0
	panic("x") // MARKER:tooFar
}

func catchAll() {
	//lint:ignore all the reserved name all suppresses every analyzer
	panic("x")
}
