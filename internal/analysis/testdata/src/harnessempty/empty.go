// Package harnessempty has no findings and no want comments: the harness
// must accept an empty diagnostic set against an empty expectation set.
package harnessempty

func calm() int { return 1 }
