// Package harnessbad carries a deliberately wrong want expectation:
// harness_test asserts that CheckFixture fails on it, guarding against a
// harness (or analyzer) that silently matches nothing.
package harnessbad

func boom() {
	panic("x") // want "this message never appears"
}
