// Package factleaf is the dependency end of the fact-propagation fixture:
// facts exported on its objects must be importable from factroot.
package factleaf

// Leaf carries an object fact in the test.
func Leaf() int { return 1 }

// Other carries no fact: importing a fact for it must report absence.
func Other() int { return 2 }
