// Package harnessignore exercises //lint:ignore suppression end to end:
// the directive swallows the diagnostic, so the fixture expects none.
package harnessignore

func boom() {
	//lint:ignore panicany suppression itself is under test here
	panic("x")
}

// noReason is malformed (no reason after the analyzer name), so it does
// NOT suppress; the diagnostic is still expected.
func noReason() {
	//lint:ignore panicany
	panic("y") // want "call to panic"
}
