// Package atomfix is the atomicmix fixture: fields and package variables
// that mix sync/atomic with plain access are findings; consistently atomic
// or consistently plain access is not.
package atomfix

import "sync/atomic"

type counter struct {
	n     uint64
	safe  uint64
	plain uint64
}

var global int64

func (c *counter) inc() {
	atomic.AddUint64(&c.n, 1)
	atomic.AddUint64(&c.safe, 1)
	c.plain++ // never touched atomically: fine
}

func (c *counter) read() uint64 {
	return c.n // want "field \"n\" is accessed plainly here but atomically at"
}

func (c *counter) readSafe() uint64 {
	return atomic.LoadUint64(&c.safe)
}

func bumpGlobal() { atomic.AddInt64(&global, 1) }

func readGlobal() int64 {
	return global // want "package variable \"global\" is accessed plainly here but atomically at"
}

// newCounter's composite literal is construction, not publication: the
// keyed initialization of an atomically-used field is not a finding.
func newCounter() *counter {
	return &counter{n: 0, safe: 0}
}
