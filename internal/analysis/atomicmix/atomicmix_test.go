package atomicmix_test

import (
	"testing"

	"mgpucompress/internal/analysis"
	"mgpucompress/internal/analysis/atomicmix"
)

func TestAtomicmixFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata/src/atomfix", atomicmix.Analyzer)
}
