// Package atomicmix flags variables that are accessed through sync/atomic
// in one place and by plain read or write in another. Mixed access is a
// data race even when it "works" locally — exactly the message-ID race
// this repository already fixed once — and the race detector only catches
// it when the schedule cooperates; the type system never does.
//
// Tracked variables are struct fields and package-level variables (the
// shapes shared across goroutines). Composite-literal initialization is
// not counted as a plain access: construction happens before the value is
// published.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"mgpucompress/internal/analysis"
)

// Analyzer is the atomicmix check.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	ID:   "MGL001",
	Doc:  "a variable accessed with sync/atomic must never be accessed plainly",
	Run:  run,
}

func run(pass *analysis.Pass) {
	atomicAt := map[*types.Var][]token.Pos{} // first atomic access sites
	viaAtomic := map[*ast.Ident]bool{}       // idents consumed by atomic calls

	// Pass 1: find &v arguments of sync/atomic calls.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" ||
				fn.Type().(*types.Signature).Recv() != nil || len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			target := ast.Unparen(addr.X)
			v := analysis.RootVar(pass, target)
			if v == nil || !tracked(v) {
				return true
			}
			atomicAt[v] = append(atomicAt[v], call.Pos())
			switch t := target.(type) {
			case *ast.Ident:
				viaAtomic[t] = true
			case *ast.SelectorExpr:
				viaAtomic[t.Sel] = true
			}
			return true
		})
	}
	if len(atomicAt) == 0 {
		return
	}

	// Pass 2: every other use of those variables is a plain access.
	type plain struct {
		pos token.Pos
		v   *types.Var
	}
	var plains []plain
	for _, f := range pass.Files {
		inComposite := map[*ast.Ident]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if cl, ok := n.(*ast.CompositeLit); ok {
				for _, elt := range cl.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							inComposite[id] = true
						}
					}
				}
			}
			id, ok := n.(*ast.Ident)
			if !ok || viaAtomic[id] || inComposite[id] {
				return true
			}
			v, ok := pass.Info.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			if _, isAtomic := atomicAt[v]; isAtomic {
				plains = append(plains, plain{pos: id.Pos(), v: v})
			}
			return true
		})
	}
	sort.Slice(plains, func(i, j int) bool { return plains[i].pos < plains[j].pos })
	for _, p := range plains {
		first := atomicAt[p.v][0]
		pass.Reportf(p.pos, "%s %q is accessed plainly here but atomically at %s: every access must go through sync/atomic",
			kind(p.v), p.v.Name(), pass.Fset.Position(first))
	}
}

// tracked limits the check to variables that outlive a single goroutine's
// stack frame: struct fields and package-level variables.
func tracked(v *types.Var) bool {
	if v.IsField() {
		return true
	}
	scope := v.Parent()
	return scope != nil && v.Pkg() != nil && scope == v.Pkg().Scope()
}

func kind(v *types.Var) string {
	if v.IsField() {
		return "field"
	}
	return "package variable"
}
