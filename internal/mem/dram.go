package mem

import (
	"fmt"

	"mgpucompress/internal/metrics"
	"mgpucompress/internal/sim"
)

// DRAMConfig sets the channel timing. The defaults approximate one HBM
// channel of the R9 Nano: 512 GB/s aggregate over 32 channels at 1 GHz is
// 16 B/cycle/channel, i.e. a 64 B line every 4 cycles, with ~120 cycles of
// access latency.
type DRAMConfig struct {
	AccessLatency    sim.Time // cycles from dequeue to data
	CyclesPerLine    sim.Time // minimum spacing between line services
	MaxPendingWrites int      // writes buffered before back-pressure
	MaxPendingReads  int
	PortBufferBytes  int
}

// DefaultDRAMConfig returns the R9 Nano-like defaults.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{
		AccessLatency:    120,
		CyclesPerLine:    4,
		MaxPendingWrites: 64,
		MaxPendingReads:  64,
		PortBufferBytes:  16 * 1024,
	}
}

// DRAM models one memory channel. It services requests in order at a fixed
// line rate and applies the functional read/write on the Space when each
// request completes, so the data a response carries is exact.
type DRAM struct {
	sim.ComponentBase
	part   *sim.Partition
	ticker *sim.Ticker
	cfg    DRAMConfig
	space  *Space

	// Top is the single request/response port.
	Top *sim.Port

	busyUntil sim.Time
	inflight  int

	// Stats
	Reads  uint64
	Writes uint64
}

// RegisterMetrics exposes the channel counters under prefix (e.g.
// "gpu0/dram_1").
func (d *DRAM) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.CounterFunc(prefix+"/reads", func() uint64 { return d.Reads })
	reg.CounterFunc(prefix+"/writes", func() uint64 { return d.Writes })
}

// NewDRAM builds a channel controller bound to space.
func NewDRAM(name string, part *sim.Partition, space *Space, cfg DRAMConfig) *DRAM {
	d := &DRAM{
		ComponentBase: sim.NewComponentBase(name),
		part:          part,
		cfg:           cfg,
		space:         space,
	}
	d.Top = sim.NewPort(d, name+".Top", cfg.PortBufferBytes)
	d.ticker = sim.NewTicker(part, d)
	return d
}

// NotifyRecv implements sim.Component.
func (d *DRAM) NotifyRecv(now sim.Time, _ *sim.Port) { d.ticker.TickNow(now) }

// NotifyPortFree implements sim.Component.
func (d *DRAM) NotifyPortFree(now sim.Time, _ *sim.Port) { d.ticker.TickNow(now) }

// dramDoneEvent fires when an access completes and its response can be sent.
type dramDoneEvent struct {
	sim.EventBase
	req sim.Msg
}

// Handle implements sim.Handler: ticks dequeue requests, done events send
// responses.
func (d *DRAM) Handle(e sim.Event) error {
	switch evt := e.(type) {
	case *sim.TickEvent:
		d.tick(e.Time())
		return nil
	case dramDoneEvent:
		return d.complete(e.Time(), evt.req)
	default:
		return fmt.Errorf("%s: unexpected event %T", d.Name(), e)
	}
}

func (d *DRAM) tick(now sim.Time) {
	for {
		if now < d.busyUntil {
			d.ticker.TickAt(d.busyUntil)
			return
		}
		msg := d.Top.Peek()
		if msg == nil {
			return
		}
		switch msg.(type) {
		case *ReadReq:
			if d.inflight >= d.cfg.MaxPendingReads {
				return
			}
		case *WriteReq:
			if d.inflight >= d.cfg.MaxPendingWrites {
				return
			}
		default:
			panic(fmt.Sprintf("%s: unexpected message %T", d.Name(), msg))
		}
		d.Top.Retrieve(now)
		d.inflight++
		d.busyUntil = now + d.cfg.CyclesPerLine
		d.part.Schedule(dramDoneEvent{
			EventBase: sim.NewEventBase(now+d.cfg.AccessLatency, d),
			req:       msg,
		})
	}
}

func (d *DRAM) complete(now sim.Time, msg sim.Msg) error {
	d.inflight--
	switch req := msg.(type) {
	case *ReadReq:
		d.Reads++
		data := d.space.Read(req.Addr, req.N)
		rsp := NewDataReady(d.Top, req.Src, req.ID, req.Addr, data)
		if !d.Top.Send(now, rsp) {
			return fmt.Errorf("%s: response rejected by connection", d.Name())
		}
	case *WriteReq:
		d.Writes++
		d.space.Write(req.Addr, req.Data)
		ack := NewWriteACK(d.Top, req.Src, req.ID, req.Addr)
		if !d.Top.Send(now, ack) {
			return fmt.Errorf("%s: ack rejected by connection", d.Name())
		}
	}
	d.ticker.TickNow(now)
	return nil
}
