package mem

import (
	"testing"

	"mgpucompress/internal/sim"
)

type portOwner struct {
	sim.ComponentBase
}

func (portOwner) Handle(sim.Event) error         { return nil }
func (portOwner) NotifyRecv(sim.Time, *sim.Port) {}
func (portOwner) NotifyPortFree(sim.Time, *sim.Port) {
}

func TestMessageWireSizesMatchFig4(t *testing.T) {
	o := &portOwner{ComponentBase: sim.NewComponentBase("o")}
	src := sim.NewPort(o, "src", 0)
	dst := sim.NewPort(o, "dst", 0)

	// Fig. 4 header sizes: ReadReq 128 bits, DataReady 32 bits + payload,
	// WriteReq 128 bits + payload, WriteACK 32 bits.
	if r := NewReadReq(src, dst, 0x1000, 64); r.Bytes != 16 {
		t.Errorf("ReadReq = %d bytes, want 16", r.Bytes)
	}
	payload := make([]byte, 64)
	if d := NewDataReady(src, dst, 7, 0x1000, payload); d.Bytes != 4+64 {
		t.Errorf("DataReady = %d bytes, want 68", d.Bytes)
	}
	if w := NewWriteReq(src, dst, 0x1000, payload); w.Bytes != 16+64 {
		t.Errorf("WriteReq = %d bytes, want 80", w.Bytes)
	}
	if a := NewWriteACK(src, dst, 7, 0x1000); a.Bytes != 4 {
		t.Errorf("WriteACK = %d bytes, want 4", a.Bytes)
	}
}

func TestMessageRouting(t *testing.T) {
	o := &portOwner{ComponentBase: sim.NewComponentBase("o")}
	src := sim.NewPort(o, "src", 0)
	dst := sim.NewPort(o, "dst", 0)
	r := NewReadReq(src, dst, 0xABC, 64)
	if r.Src != src || r.Dst != dst || r.Addr != 0xABC || r.N != 64 {
		t.Error("ReadReq fields wrong")
	}
	d := NewDataReady(src, dst, 42, 0xABC, []byte{1})
	if d.RspTo != 42 || len(d.Data) != 1 {
		t.Error("DataReady fields wrong")
	}
	// Meta must return the embedded metadata (same pointer across calls).
	if d.Meta() != d.Meta() || d.Meta().Dst != dst {
		t.Error("Meta inconsistent")
	}
}

func TestPartialPayloadSizes(t *testing.T) {
	o := &portOwner{ComponentBase: sim.NewComponentBase("o")}
	src := sim.NewPort(o, "src", 0)
	dst := sim.NewPort(o, "dst", 0)
	for _, n := range []int{1, 4, 17, 63} {
		w := NewWriteReq(src, dst, 0, make([]byte, n))
		if w.Bytes != 16+n {
			t.Errorf("WriteReq(%d) = %d bytes", n, w.Bytes)
		}
		d := NewDataReady(src, dst, 1, 0, make([]byte, n))
		if d.Bytes != 4+n {
			t.Errorf("DataReady(%d) = %d bytes", n, d.Bytes)
		}
	}
}
