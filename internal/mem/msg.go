package mem

import "mgpucompress/internal/sim"

// Header sizes in bytes, from the message formats of Fig. 4. The same
// framing is used intra-GPU for consistency; only inter-GPU messages cross
// the compressing RDMA path.
const (
	ReadReqHeaderBytes   = 16 // 4+16+48+32+28 bits = 128
	WriteReqHeaderBytes  = 16 // 4+16+48+4+32+24 bits = 128
	DataReadyHeaderBytes = 4  // 4+16+4+8 bits = 32
	WriteACKHeaderBytes  = 4  // 4+16+12 bits = 32
)

// AccessKind distinguishes loads from stores in statistics.
type AccessKind int

// Access kinds.
const (
	Load AccessKind = iota
	Store
)

// ReadReq asks for n bytes at Addr.
type ReadReq struct {
	sim.MsgMeta
	Addr uint64
	N    int
}

// Meta implements sim.Msg.
func (m *ReadReq) Meta() *sim.MsgMeta { return &m.MsgMeta }

// NewReadReq builds a read request with correct wire size.
func NewReadReq(src, dst *sim.Port, addr uint64, n int) *ReadReq {
	r := &ReadReq{Addr: addr, N: n}
	r.Src, r.Dst, r.Bytes = src, dst, ReadReqHeaderBytes
	return r
}

// WriteReq carries Data to be stored at Addr.
type WriteReq struct {
	sim.MsgMeta
	Addr uint64
	Data []byte
}

// Meta implements sim.Msg.
func (m *WriteReq) Meta() *sim.MsgMeta { return &m.MsgMeta }

// NewWriteReq builds a write request with correct wire size (header plus
// uncompressed payload; the RDMA layer replaces the payload size when it
// compresses).
func NewWriteReq(src, dst *sim.Port, addr uint64, data []byte) *WriteReq {
	w := &WriteReq{Addr: addr, Data: data}
	w.Src, w.Dst, w.Bytes = src, dst, WriteReqHeaderBytes+len(data)
	return w
}

// DataReady answers a ReadReq with the requested bytes.
type DataReady struct {
	sim.MsgMeta
	RspTo uint64 // ID of the ReadReq
	Addr  uint64
	Data  []byte
}

// Meta implements sim.Msg.
func (m *DataReady) Meta() *sim.MsgMeta { return &m.MsgMeta }

// NewDataReady builds a read response.
func NewDataReady(src, dst *sim.Port, rspTo uint64, addr uint64, data []byte) *DataReady {
	d := &DataReady{RspTo: rspTo, Addr: addr, Data: data}
	d.Src, d.Dst, d.Bytes = src, dst, DataReadyHeaderBytes+len(data)
	return d
}

// WriteACK acknowledges a WriteReq.
type WriteACK struct {
	sim.MsgMeta
	RspTo uint64
	Addr  uint64
}

// Meta implements sim.Msg.
func (m *WriteACK) Meta() *sim.MsgMeta { return &m.MsgMeta }

// NewWriteACK builds a write acknowledgment.
func NewWriteACK(src, dst *sim.Port, rspTo uint64, addr uint64) *WriteACK {
	a := &WriteACK{RspTo: rspTo, Addr: addr}
	a.Src, a.Dst, a.Bytes = src, dst, WriteACKHeaderBytes
	return a
}
