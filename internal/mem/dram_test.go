package mem

import (
	"bytes"
	"testing"

	"mgpucompress/internal/sim"
)

// requester is a minimal component that fires requests at a DRAM channel
// and records responses.
type requester struct {
	sim.ComponentBase
	port      *sim.Port
	responses []sim.Msg
	recvTimes []sim.Time
}

func newRequester(name string) *requester {
	r := &requester{ComponentBase: sim.NewComponentBase(name)}
	r.port = sim.NewPort(r, name+".port", 0)
	return r
}

func (r *requester) Handle(sim.Event) error { return nil }

func (r *requester) NotifyRecv(now sim.Time, p *sim.Port) {
	for {
		m := p.Retrieve(now)
		if m == nil {
			return
		}
		r.responses = append(r.responses, m)
		r.recvTimes = append(r.recvTimes, now)
	}
}

func (r *requester) NotifyPortFree(sim.Time, *sim.Port) {}

func buildDRAMTestbench(t *testing.T, cfg DRAMConfig) (*sim.Engine, *Space, *DRAM, *requester) {
	t.Helper()
	engine := sim.NewEngine()
	part := engine.Partition(0)
	space := NewSpace(4)
	dram := NewDRAM("DRAM", part, space, cfg)
	req := newRequester("req")
	conn := sim.NewDirectConnection("link", part, 1)
	conn.Plug(dram.Top)
	conn.Plug(req.port)
	return engine, space, dram, req
}

func TestDRAMReadReturnsData(t *testing.T) {
	engine, space, dram, req := buildDRAMTestbench(t, DefaultDRAMConfig())
	space.Write(256, []byte{1, 2, 3, 4})

	r := NewReadReq(req.port, dram.Top, 256, 64)
	req.port.Send(0, r)
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if len(req.responses) != 1 {
		t.Fatalf("got %d responses", len(req.responses))
	}
	rsp, ok := req.responses[0].(*DataReady)
	if !ok {
		t.Fatalf("response is %T", req.responses[0])
	}
	if rsp.RspTo != r.ID {
		t.Errorf("RspTo = %d, want %d", rsp.RspTo, r.ID)
	}
	if !bytes.Equal(rsp.Data[:4], []byte{1, 2, 3, 4}) {
		t.Errorf("data = %v", rsp.Data[:4])
	}
	// Latency: 1 (link) + 120 (access) + 1 (link back) = 122.
	if got := req.recvTimes[0]; got != 122 {
		t.Errorf("response at %d, want 122", got)
	}
	if dram.Reads != 1 || dram.Writes != 0 {
		t.Errorf("counters = %d/%d", dram.Reads, dram.Writes)
	}
}

func TestDRAMWriteAppliesAndAcks(t *testing.T) {
	engine, space, dram, req := buildDRAMTestbench(t, DefaultDRAMConfig())
	data := []byte{9, 8, 7, 6, 5}
	w := NewWriteReq(req.port, dram.Top, 512, data)
	req.port.Send(0, w)
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if len(req.responses) != 1 {
		t.Fatalf("got %d responses", len(req.responses))
	}
	if _, ok := req.responses[0].(*WriteACK); !ok {
		t.Fatalf("response is %T", req.responses[0])
	}
	if got := space.Read(512, 5); !bytes.Equal(got, data) {
		t.Errorf("memory = %v, want %v", got, data)
	}
	if dram.Writes != 1 {
		t.Errorf("write counter = %d", dram.Writes)
	}
}

func TestDRAMThroughputLimit(t *testing.T) {
	cfg := DefaultDRAMConfig()
	cfg.AccessLatency = 10
	cfg.CyclesPerLine = 4
	engine, _, dram, req := buildDRAMTestbench(t, cfg)

	const n = 16
	for i := 0; i < n; i++ {
		req.port.Send(0, NewReadReq(req.port, dram.Top, uint64(i*64), 64))
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if len(req.responses) != n {
		t.Fatalf("got %d responses, want %d", len(req.responses), n)
	}
	// Service rate is one line per 4 cycles: the last response cannot
	// arrive before (n-1)*4 + access + links.
	minLast := sim.Time((n-1)*4 + 10 + 2)
	if got := req.recvTimes[n-1]; got < minLast {
		t.Errorf("last response at %d, violates line rate (min %d)", got, minLast)
	}
	// And the channel must not be slower than ~1 line/4cy plus constants.
	if got := req.recvTimes[n-1]; got > minLast+8 {
		t.Errorf("last response at %d, too slow (expected ≈%d)", got, minLast)
	}
}

func TestDRAMInflightLimitBackpressure(t *testing.T) {
	cfg := DefaultDRAMConfig()
	cfg.AccessLatency = 100
	cfg.CyclesPerLine = 1
	cfg.MaxPendingReads = 2
	engine, _, dram, req := buildDRAMTestbench(t, cfg)

	for i := 0; i < 6; i++ {
		req.port.Send(0, NewReadReq(req.port, dram.Top, uint64(i*64), 64))
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if len(req.responses) != 6 {
		t.Fatalf("got %d responses, want 6", len(req.responses))
	}
	// With only 2 in flight and 100-cycle access, batches of 2 complete
	// roughly every 100 cycles: the last response must be after 300.
	if got := req.recvTimes[5]; got < 300 {
		t.Errorf("last response at %d: inflight limit not enforced", got)
	}
}

func TestDRAMRejectsUnknownMessage(t *testing.T) {
	engine, _, dram, req := buildDRAMTestbench(t, DefaultDRAMConfig())
	ack := NewWriteACK(req.port, dram.Top, 1, 0)
	req.port.Send(0, ack)
	defer func() {
		if recover() == nil {
			t.Error("unknown message type did not panic")
		}
	}()
	_ = engine.Run()
}
