package mem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInterleaveCoversAllControllers(t *testing.T) {
	s := NewSpace(4)
	seen := make(map[int]bool)
	for p := uint64(0); p < 32; p++ {
		addr := p * PageSize
		g, c := s.GPUOf(addr), s.ChannelOf(addr)
		if g < 0 || g >= 4 || c < 0 || c >= 8 {
			t.Fatalf("page %d mapped to GPU %d channel %d", p, g, c)
		}
		gc := s.GlobalChannelOf(addr)
		if gc != g*8+c {
			t.Fatalf("global channel inconsistent: %d vs %d/%d", gc, g, c)
		}
		if seen[gc] {
			t.Fatalf("controller %d hit twice in first 32 pages", gc)
		}
		seen[gc] = true
	}
	if len(seen) != 32 {
		t.Fatalf("first 32 pages covered %d controllers, want 32", len(seen))
	}
}

func TestInterleaveRotatesGPUsFirst(t *testing.T) {
	// Consecutive pages must rotate across GPUs (fine-grained NUMA spread).
	s := NewSpace(4)
	for p := uint64(0); p < 16; p++ {
		if g := s.GPUOf(p * PageSize); g != int(p%4) {
			t.Errorf("page %d on GPU %d, want %d", p, g, p%4)
		}
	}
	// Addresses within one page stay on one GPU.
	if s.GPUOf(100) != s.GPUOf(PageSize-1) {
		t.Error("intra-page addresses split across GPUs")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	s := NewSpace(4)
	data := []byte("hello, multi-GPU world")
	addr := uint64(PageSize*3 + 100)
	s.Write(addr, data)
	if got := s.Read(addr, len(data)); !bytes.Equal(got, data) {
		t.Errorf("Read = %q, want %q", got, data)
	}
}

func TestReadUnwrittenMemoryIsZero(t *testing.T) {
	s := NewSpace(4)
	got := s.Read(1<<30, 128)
	for _, b := range got {
		if b != 0 {
			t.Fatal("unwritten memory not zero")
		}
	}
}

func TestWriteAcrossPageBoundary(t *testing.T) {
	s := NewSpace(4)
	data := make([]byte, 3*PageSize)
	rng := rand.New(rand.NewSource(1))
	rng.Read(data)
	addr := uint64(PageSize - 17)
	s.Write(addr, data)
	if got := s.Read(addr, len(data)); !bytes.Equal(got, data) {
		t.Error("cross-page write round trip failed")
	}
}

func TestReadLineAligns(t *testing.T) {
	s := NewSpace(4)
	s.WriteUint32(128, 0xDEADBEEF)
	line := s.ReadLine(130) // unaligned address within the line
	if len(line) != LineSize {
		t.Fatalf("line length %d", len(line))
	}
	if got := s.ReadUint32(128); got != 0xDEADBEEF {
		t.Errorf("ReadUint32 = %#x", got)
	}
	if line[0] != 0xEF || line[1] != 0xBE {
		t.Error("ReadLine did not align down")
	}
}

func TestUint64RoundTrip(t *testing.T) {
	s := NewSpace(4)
	s.WriteUint64(4096*7+8, 0x0123456789ABCDEF)
	if got := s.ReadUint64(4096*7 + 8); got != 0x0123456789ABCDEF {
		t.Errorf("ReadUint64 = %#x", got)
	}
}

func TestAllocStripedIsContiguous(t *testing.T) {
	s := NewSpace(4)
	b := s.AllocStriped(3 * PageSize)
	for off := uint64(0); off < 3*PageSize; off += 1000 {
		if b.Addr(off) != b.Base()+off {
			t.Fatalf("striped buffer not contiguous at %d", off)
		}
	}
}

func TestAllocOnGPUOwnership(t *testing.T) {
	s := NewSpace(4)
	for gpu := 0; gpu < 4; gpu++ {
		b := s.AllocOnGPU(gpu, 10*PageSize)
		for off := uint64(0); off < b.Size(); off += 512 {
			if g := s.GPUOf(b.Addr(off)); g != gpu {
				t.Fatalf("GPU-%d buffer offset %d landed on GPU %d", gpu, off, g)
			}
		}
	}
}

func TestAllocationsNeverOverlap(t *testing.T) {
	s := NewSpace(4)
	type region struct{ buf Buffer }
	var regions []region
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 40; i++ {
		size := uint64(rng.Intn(5*PageSize) + 1)
		var b Buffer
		if rng.Intn(2) == 0 {
			b = s.AllocStriped(size)
		} else {
			b = s.AllocOnGPU(rng.Intn(4), size)
		}
		regions = append(regions, region{b})
	}
	// Write a distinct marker into each buffer, then verify none clobbered.
	for i, r := range regions {
		marker := make([]byte, r.buf.Size())
		for j := range marker {
			marker[j] = byte(i + 1)
		}
		r.buf.Write(0, marker)
	}
	for i, r := range regions {
		got := r.buf.Read(0, int(r.buf.Size()))
		for j, b := range got {
			if b != byte(i+1) {
				t.Fatalf("buffer %d byte %d clobbered (got %d)", i, j, b)
			}
		}
	}
}

func TestBufferLogicalReadWrite(t *testing.T) {
	s := NewSpace(4)
	b := s.AllocOnGPU(2, 3*PageSize)
	data := make([]byte, 2*PageSize+300)
	rng := rand.New(rand.NewSource(3))
	rng.Read(data)
	b.Write(100, data)
	if got := b.Read(100, len(data)); !bytes.Equal(got, data) {
		t.Error("buffer logical round trip failed")
	}
}

func TestBufferAddrPanicsOutOfRange(t *testing.T) {
	s := NewSpace(4)
	b := s.AllocOnGPU(0, 100)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Addr did not panic")
		}
	}()
	b.Addr(100)
}

// Property: Buffer.Addr is injective within a buffer and all addresses are
// owned by the right GPU.
func TestBufferAddressingProperty(t *testing.T) {
	s := NewSpace(4)
	f := func(gpuRaw uint8, pagesRaw uint8, offsets []uint16) bool {
		gpu := int(gpuRaw % 4)
		pages := uint64(pagesRaw%8) + 1
		b := s.AllocOnGPU(gpu, pages*PageSize)
		seen := make(map[uint64]bool)
		for _, o := range offsets {
			off := uint64(o) % (pages * PageSize)
			a := b.Addr(off)
			if s.GPUOf(a) != gpu {
				return false
			}
			if seen[a] {
				continue // same offset may repeat in input
			}
			seen[a] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
