// Package mem models the multi-GPU global memory: a byte-accurate backing
// store with 4 KB pages interleaved across the 32 memory controllers (8 per
// GPU, Table VII), the intra-GPU memory request/response messages, and the
// DRAM channel timing model.
//
// The simulator is functional-first: data always lives in the Space, and the
// cache/fabric components model timing around it. This keeps the bytes that
// cross the inter-GPU fabric — which drive all compression results — exact,
// while the timing model supplies contention and latency.
package mem

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Layout constants from Table VII.
const (
	PageSize      = 4096
	LineSize      = 64
	DefaultGPUs   = 4
	ChannelsPerPU = 8
)

// Space is the global interleaved physical address space shared by the
// GPUs. Pages are interleaved so that consecutive 4 KB pages rotate first
// across GPUs and then across each GPU's eight channels, utilizing all 32
// controllers for streaming accesses.
type Space struct {
	numGPUs int

	mu    sync.RWMutex
	pages map[uint64][]byte

	// bump allocators: one striped, one per GPU
	nextPage    uint64
	nextGPUPage []uint64
}

// NewSpace creates a space for numGPUs GPUs.
func NewSpace(numGPUs int) *Space {
	if numGPUs <= 0 {
		panic("mem: numGPUs must be positive")
	}
	s := &Space{
		numGPUs:     numGPUs,
		pages:       make(map[uint64][]byte),
		nextGPUPage: make([]uint64, numGPUs),
	}
	for g := range s.nextGPUPage {
		s.nextGPUPage[g] = uint64(g) // first page owned by GPU g
	}
	return s
}

// NumGPUs returns the number of GPUs sharing the space.
func (s *Space) NumGPUs() int { return s.numGPUs }

// GPUOf returns the GPU that owns addr (page-interleaved).
func (s *Space) GPUOf(addr uint64) int {
	return int((addr / PageSize) % uint64(s.numGPUs))
}

// ChannelOf returns the owning GPU's DRAM channel index for addr.
func (s *Space) ChannelOf(addr uint64) int {
	return int((addr / PageSize) / uint64(s.numGPUs) % ChannelsPerPU)
}

// GlobalChannelOf returns the controller index in [0, numGPUs×8).
func (s *Space) GlobalChannelOf(addr uint64) int {
	return s.GPUOf(addr)*ChannelsPerPU + s.ChannelOf(addr)
}

// Alloc reserves size bytes of page-aligned, GPU-striped memory and returns
// the base address. Striped buffers rotate across all GPUs at 4 KB
// granularity, the default placement for shared data.
func (s *Space) Alloc(size uint64) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	pages := (size + PageSize - 1) / PageSize
	base := s.nextPage * PageSize
	s.nextPage += pages
	// Keep per-GPU allocators ahead of the striped region.
	for g := range s.nextGPUPage {
		for s.nextGPUPage[g] < s.nextPage {
			s.nextGPUPage[g] += uint64(s.numGPUs)
		}
	}
	return base
}

// AllocOnGPU reserves size bytes owned entirely by one GPU. The pages are
// not contiguous (ownership is page-interleaved) but the returned handle
// exposes them as a contiguous logical buffer via GPUStride.
//
// The address of logical offset x is base + (x/PageSize)*GPUStride() +
// x%PageSize; use the Buffer type to avoid doing this by hand.
func (s *Space) AllocOnGPU(gpu int, size uint64) Buffer {
	if gpu < 0 || gpu >= s.numGPUs {
		panic(fmt.Sprintf("mem: AllocOnGPU(%d) out of range", gpu))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	pages := (size + PageSize - 1) / PageSize
	firstPage := s.nextGPUPage[gpu]
	s.nextGPUPage[gpu] += pages * uint64(s.numGPUs)
	// Advance the striped allocator past this region so they never collide.
	if end := firstPage + pages*uint64(s.numGPUs); s.nextPage < end {
		s.nextPage = end
		for g := range s.nextGPUPage {
			for s.nextGPUPage[g] < s.nextPage {
				s.nextGPUPage[g] += uint64(s.numGPUs)
			}
		}
	}
	return Buffer{space: s, base: firstPage * PageSize, size: size, stride: uint64(s.numGPUs) * PageSize}
}

// AllocStriped returns the striped allocation as a Buffer for a uniform
// interface with AllocOnGPU.
func (s *Space) AllocStriped(size uint64) Buffer {
	return Buffer{space: s, base: s.Alloc(size), size: size, stride: PageSize}
}

func (s *Space) page(addr uint64, create bool) []byte {
	id := addr / PageSize
	s.mu.RLock()
	p := s.pages[id]
	s.mu.RUnlock()
	if p != nil || !create {
		return p
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p = s.pages[id]; p == nil {
		p = make([]byte, PageSize)
		s.pages[id] = p
	}
	return p
}

// Read copies n bytes starting at addr into a fresh slice. Unwritten memory
// reads as zero.
func (s *Space) Read(addr uint64, n int) []byte {
	out := make([]byte, n)
	off := 0
	for off < n {
		p := s.page(addr+uint64(off), false)
		inPage := int((addr + uint64(off)) % PageSize)
		chunk := min(n-off, PageSize-inPage)
		if p != nil {
			copy(out[off:off+chunk], p[inPage:inPage+chunk])
		}
		off += chunk
	}
	return out
}

// Write stores data at addr.
func (s *Space) Write(addr uint64, data []byte) {
	off := 0
	for off < len(data) {
		p := s.page(addr+uint64(off), true)
		inPage := int((addr + uint64(off)) % PageSize)
		chunk := min(len(data)-off, PageSize-inPage)
		copy(p[inPage:inPage+chunk], data[off:off+chunk])
		off += chunk
	}
}

// ReadLine reads the 64-byte line containing addr (aligned down).
func (s *Space) ReadLine(addr uint64) []byte {
	return s.Read(addr&^uint64(LineSize-1), LineSize)
}

// ReadUint32 reads a little-endian uint32.
func (s *Space) ReadUint32(addr uint64) uint32 {
	return binary.LittleEndian.Uint32(s.Read(addr, 4))
}

// WriteUint32 writes a little-endian uint32.
func (s *Space) WriteUint32(addr uint64, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	s.Write(addr, b[:])
}

// ReadUint64 reads a little-endian uint64.
func (s *Space) ReadUint64(addr uint64) uint64 {
	return binary.LittleEndian.Uint64(s.Read(addr, 8))
}

// WriteUint64 writes a little-endian uint64.
func (s *Space) WriteUint64(addr uint64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	s.Write(addr, b[:])
}

// Buffer is a logical buffer whose pages may be spread across the
// interleaved space: logical offsets map to addresses page by page with a
// fixed stride. A striped buffer has stride = PageSize (contiguous); a
// GPU-local buffer has stride = numGPUs × PageSize.
type Buffer struct {
	space  *Space
	base   uint64
	size   uint64
	stride uint64
}

// Base returns the address of logical offset 0.
func (b Buffer) Base() uint64 { return b.base }

// Size returns the logical size in bytes.
func (b Buffer) Size() uint64 { return b.size }

// Addr translates a logical offset to a physical address.
func (b Buffer) Addr(off uint64) uint64 {
	if off >= b.size {
		panic(fmt.Sprintf("mem: buffer offset %d beyond size %d", off, b.size))
	}
	return b.base + off/PageSize*b.stride + off%PageSize
}

// Read copies n logical bytes starting at off.
func (b Buffer) Read(off uint64, n int) []byte {
	out := make([]byte, 0, n)
	for n > 0 {
		chunk := min(n, int(PageSize-off%PageSize))
		out = append(out, b.space.Read(b.Addr(off), chunk)...)
		off += uint64(chunk)
		n -= chunk
	}
	return out
}

// Write stores data at logical offset off.
func (b Buffer) Write(off uint64, data []byte) {
	for len(data) > 0 {
		chunk := min(len(data), int(PageSize-off%PageSize))
		b.space.Write(b.Addr(off), data[:chunk])
		off += uint64(chunk)
		data = data[chunk:]
	}
}
