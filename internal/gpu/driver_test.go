package gpu

import (
	"testing"

	"mgpucompress/internal/mem"
	"mgpucompress/internal/sim"
)

func TestDriverRejectsInvalidKernels(t *testing.T) {
	engine := sim.NewEngine()
	part := engine.Partition(0)
	space := mem.NewSpace(4)
	d := NewDriver("Driver", part, space)

	if err := d.Launch(&Kernel{Name: "k", NumWorkgroups: 0,
		Program: func(int) [][]Op { return nil }}); err == nil {
		t.Error("zero-workgroup kernel accepted")
	}
	if err := d.Launch(&Kernel{Name: "k", NumWorkgroups: 1}); err == nil {
		t.Error("program-less kernel accepted")
	}
}

func TestDriverNoCUs(t *testing.T) {
	engine := sim.NewEngine()
	part := engine.Partition(0)
	space := mem.NewSpace(4)
	d := NewDriver("Driver", part, space)
	// A CP with no CUs attached.
	cp := NewCommandProcessor("CP", part, 0)
	d.CPPorts = []*sim.Port{cp.ToFabric}
	err := d.Launch(&Kernel{Name: "k", NumWorkgroups: 1,
		Program: func(int) [][]Op { return nil }})
	if err == nil {
		t.Error("launch with zero CUs accepted")
	}
}

func TestControlMessageSizes(t *testing.T) {
	// Launch commands and completion interrupts are small header-only
	// messages; their sizes are asserted because they enter the fabric
	// traffic accounting.
	if LaunchCmdBytes != 16 || KernelDoneBytes != 4 {
		t.Errorf("control message sizes changed: %d/%d", LaunchCmdBytes, KernelDoneBytes)
	}
	var lc LaunchCmd
	if lc.Meta() == nil {
		t.Error("LaunchCmd has no metadata")
	}
	var kd KernelDone
	if kd.Meta() == nil {
		t.Error("KernelDone has no metadata")
	}
}

// In-package end-to-end launch: driver -> command processor -> CU over a
// direct control connection, with a memory stub standing in for the cache
// hierarchy. Args are empty so no RDMA is involved.
func TestDriverLaunchFlow(t *testing.T) {
	engine := sim.NewEngine()
	part := engine.Partition(0)
	space := mem.NewSpace(4)
	d := NewDriver("Driver", part, space)

	stub := newMemStub(part, 10)
	memConn := sim.NewDirectConnection("cumem", part, 1)
	memConn.Plug(stub.Top)
	var cps []*CommandProcessor
	for g := 0; g < 2; g++ {
		cp := NewCommandProcessor("CP", part, g)
		for i := 0; i < 2; i++ {
			cu := NewCU("CU", part, DefaultCUConfig())
			memConn.Plug(cu.ToL1)
			cu.SetL1(stub.Top)
			cp.CUs = append(cp.CUs, cu)
		}
		cps = append(cps, cp)
		d.CPPorts = append(d.CPPorts, cp.ToFabric)
	}
	ctrl := sim.NewDirectConnection("ctrl", part, 2)
	ctrl.Plug(d.Ctrl)
	for _, cp := range cps {
		ctrl.Plug(cp.ToFabric)
	}
	invalidated := 0
	d.InvalidateL1s = func() { invalidated++ }

	k := &Kernel{
		Name: "probe", NumWorkgroups: 12,
		Program: func(wg int) [][]Op {
			data := make([]byte, 64)
			data[0] = byte(wg + 1)
			return [][]Op{{
				ComputeOp{Cycles: 5},
				WriteOp{Addr: uint64(wg) * 64, Data: data},
			}}
		},
	}
	if err := d.Launch(k); err != nil {
		t.Fatal(err)
	}
	if d.KernelsLaunched != 1 {
		t.Errorf("KernelsLaunched = %d", d.KernelsLaunched)
	}
	if invalidated != 1 {
		t.Errorf("L1 invalidations = %d, want 1 (kernel boundary)", invalidated)
	}
	for wg := 0; wg < 12; wg++ {
		if got := stub.space.Read(uint64(wg)*64, 1)[0]; got != byte(wg+1) {
			t.Errorf("wg %d marker = %d", wg, got)
		}
	}
	// Workgroups must spread across both CPs (round-robin over all CUs).
	var retired [2]uint64
	for g, cp := range cps {
		for _, cu := range cp.CUs {
			retired[g] += cu.WGsRetired
		}
	}
	if retired[0] != 6 || retired[1] != 6 {
		t.Errorf("retired split = %v, want 6/6", retired)
	}

	// A second launch reuses the same machinery.
	if err := d.Launch(k); err != nil {
		t.Fatal(err)
	}
	if d.KernelsLaunched != 2 || invalidated != 2 {
		t.Errorf("second launch bookkeeping: %d kernels, %d invalidations",
			d.KernelsLaunched, invalidated)
	}
}

// Launching with args requires arg buffers and an RDMA destination; the
// driver must write one padded line per GPU and wait for the acks.
func TestDriverArgWrites(t *testing.T) {
	engine := sim.NewEngine()
	part := engine.Partition(0)
	space := mem.NewSpace(4)
	d := NewDriver("Driver", part, space)

	stub := newMemStub(part, 5) // stands in for the host RDMA path
	memConn := sim.NewDirectConnection("mem", part, 1)
	memConn.Plug(stub.Top)
	memConn.Plug(d.ToRDMA)
	d.RDMAPort = stub.Top

	cp := NewCommandProcessor("CP", part, 0)
	cu := NewCU("CU", part, DefaultCUConfig())
	memConn.Plug(cu.ToL1)
	cu.SetL1(stub.Top)
	cp.CUs = []*CU{cu}
	d.CPPorts = []*sim.Port{cp.ToFabric}
	ctrl := sim.NewDirectConnection("ctrl", part, 2)
	ctrl.Plug(d.Ctrl)
	ctrl.Plug(cp.ToFabric)
	d.ArgBuffers = []mem.Buffer{space.AllocOnGPU(0, 4096)}

	args := []byte{1, 2, 3, 4, 5} // will be padded to one 64-byte line
	k := &Kernel{
		Name: "argk", NumWorkgroups: 1, Args: args,
		Program: func(int) [][]Op { return [][]Op{{ComputeOp{Cycles: 1}}} },
	}
	if err := d.Launch(k); err != nil {
		t.Fatal(err)
	}
	if d.ArgBytesWritten != 64 {
		t.Errorf("ArgBytesWritten = %d, want 64", d.ArgBytesWritten)
	}
	// The stub owns the functional memory on this path.
	got := stub.space.Read(d.ArgBuffers[0].Addr(0), 5)
	for i, b := range args {
		if got[i] != b {
			t.Errorf("arg byte %d = %d, want %d", i, got[i], b)
		}
	}
}
