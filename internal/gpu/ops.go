// Package gpu models the compute side of the simulated multi-GPU system:
// compute units executing wavefront operation streams, per-GPU command
// processors, and the host driver that presents the four GPUs as a single
// logical device (Sec. II) — dispatching each kernel's workgroups
// round-robin across all CUs of all GPUs (Sec. VI-A) and shipping kernel
// argument blocks over the same fabric that carries inter-GPU data
// (Sec. VI-B).
//
// Instead of executing GCN3 machine code, workloads express each kernel as
// per-wavefront operation streams (compute delays, coalesced line reads and
// writes, barriers) over real addresses with real data. See DESIGN.md for
// why this substitution preserves the paper's measurements.
package gpu

import "fmt"

// Op is a single wavefront-level operation.
type Op interface{ isOp() }

// ComputeOp models ALU work: the wavefront stays busy for Cycles.
type ComputeOp struct {
	Cycles int
}

func (ComputeOp) isOp() {}

// ReadOp is a coalesced memory read of N bytes at Addr (normally one
// 64-byte line). The wavefront blocks until the data returns; if Then is
// non-nil it is invoked with the data and may emit follow-up operations,
// which execute before the rest of the wavefront's stream. This is how
// data-dependent kernels (e.g. gradient averaging) are expressed.
type ReadOp struct {
	Addr uint64
	N    int
	Then func(data []byte) []Op
}

func (ReadOp) isOp() {}

// WriteOp is a posted memory write. The wavefront continues immediately;
// the workgroup only completes once every posted write is acknowledged.
type WriteOp struct {
	Addr uint64
	Data []byte
}

func (WriteOp) isOp() {}

// BarrierOp synchronizes all wavefronts of the workgroup: every wavefront
// must reach the barrier and all of the workgroup's posted writes must be
// acknowledged before any wavefront proceeds (s_barrier + s_waitcnt).
type BarrierOp struct{}

func (BarrierOp) isOp() {}

// Kernel describes one device-wide launch.
type Kernel struct {
	// Name identifies the kernel in traces.
	Name string
	// NumWorkgroups is the grid size in workgroups.
	NumWorkgroups int
	// Program returns the operation streams of workgroup wg, one per
	// wavefront. It is called when the workgroup is activated on a CU.
	Program func(wg int) [][]Op
	// Args is the kernel argument block the driver writes into each GPU's
	// memory before the launch. Pointers, sizes and padding dominate these
	// bytes, which is exactly the zero-heavy launch metadata the paper
	// observes dominating BS traffic.
	Args []byte
}

// Validate checks the kernel is well-formed.
func (k *Kernel) Validate() error {
	if k.NumWorkgroups <= 0 {
		return fmt.Errorf("gpu: kernel %q has %d workgroups", k.Name, k.NumWorkgroups)
	}
	if k.Program == nil {
		return fmt.Errorf("gpu: kernel %q has no program", k.Name)
	}
	return nil
}
