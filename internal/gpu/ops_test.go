package gpu

import "testing"

func TestKernelValidate(t *testing.T) {
	ok := &Kernel{Name: "k", NumWorkgroups: 1, Program: func(int) [][]Op { return nil }}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid kernel rejected: %v", err)
	}
	noWG := &Kernel{Name: "k", NumWorkgroups: 0, Program: func(int) [][]Op { return nil }}
	if err := noWG.Validate(); err == nil {
		t.Error("kernel with zero workgroups accepted")
	}
	noProg := &Kernel{Name: "k", NumWorkgroups: 1}
	if err := noProg.Validate(); err == nil {
		t.Error("kernel without program accepted")
	}
}

func TestOpTypesImplementOp(t *testing.T) {
	var _ Op = ComputeOp{}
	var _ Op = ReadOp{}
	var _ Op = WriteOp{}
	var _ Op = BarrierOp{}
}
