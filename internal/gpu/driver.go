package gpu

import (
	"fmt"

	"mgpucompress/internal/mem"
	"mgpucompress/internal/metrics"
	"mgpucompress/internal/sim"
	"mgpucompress/internal/trace"
)

// Control message sizes on the fabric, in bytes. Launch commands and
// completion interrupts are header-only messages framed like the Fig. 4
// requests/responses.
const (
	LaunchCmdBytes  = 16
	KernelDoneBytes = 4
)

// LaunchCmd tells a GPU's command processor to run workgroups of a kernel.
// The kernel structure itself travels out of band (like a pre-loaded code
// object); the argument block was already written into GPU memory through
// the compressing fabric path.
type LaunchCmd struct {
	sim.MsgMeta
	Kernel *Kernel
	WGs    []int
	Seq    int
}

// Meta implements sim.Msg.
func (m *LaunchCmd) Meta() *sim.MsgMeta { return &m.MsgMeta }

// KernelDone signals that a GPU finished all its workgroups of a launch.
type KernelDone struct {
	sim.MsgMeta
	GPU int
	Seq int
}

// Meta implements sim.Msg.
func (m *KernelDone) Meta() *sim.MsgMeta { return &m.MsgMeta }

// CommandProcessor receives launch commands for one GPU and feeds the GPU's
// CUs round-robin.
type CommandProcessor struct {
	sim.ComponentBase
	part *sim.Partition
	GPU  int

	// ToFabric is the CP's bus endpoint.
	ToFabric *sim.Port

	CUs []*CU

	driverPort  *sim.Port
	outstanding int
	seq         int
	nextCU      int
	pendingDone bool
}

// NewCommandProcessor builds a CP for gpu.
func NewCommandProcessor(name string, part *sim.Partition, gpu int) *CommandProcessor {
	cp := &CommandProcessor{
		ComponentBase: sim.NewComponentBase(name),
		part:          part,
		GPU:           gpu,
	}
	cp.ToFabric = sim.NewPort(cp, name+".ToFabric", 4*1024)
	return cp
}

// Handle implements sim.Handler.
func (cp *CommandProcessor) Handle(e sim.Event) error {
	return fmt.Errorf("%s: unexpected event %T", cp.Name(), e)
}

// NotifyRecv implements sim.Component: dispatch launches immediately.
func (cp *CommandProcessor) NotifyRecv(now sim.Time, p *sim.Port) {
	for {
		msg := p.Retrieve(now)
		if msg == nil {
			return
		}
		cmd, ok := msg.(*LaunchCmd)
		if !ok {
			panic(fmt.Sprintf("%s: unexpected message %T", cp.Name(), msg))
		}
		cp.driverPort = cmd.Src
		cp.seq = cmd.Seq
		cp.outstanding = len(cmd.WGs)
		if cp.outstanding == 0 {
			cp.signalDone(now)
			continue
		}
		for _, wg := range cmd.WGs {
			cu := cp.CUs[cp.nextCU%len(cp.CUs)]
			cp.nextCU++
			cu.OnWGDone = cp.wgDone
			cu.Assign(now, cmd.Kernel, wg)
		}
	}
}

// NotifyPortFree implements sim.Component: retry a completion signal that
// could not enter the fabric.
func (cp *CommandProcessor) NotifyPortFree(now sim.Time, _ *sim.Port) {
	if cp.pendingDone {
		cp.signalDone(now)
	}
}

func (cp *CommandProcessor) wgDone(int) {
	cp.outstanding--
	if cp.outstanding == 0 {
		cp.signalDone(cp.part.Now())
	}
}

func (cp *CommandProcessor) signalDone(now sim.Time) {
	done := &KernelDone{GPU: cp.GPU, Seq: cp.seq}
	done.Src, done.Dst, done.Bytes = cp.ToFabric, cp.driverPort, KernelDoneBytes
	cp.part.AssignMsgID(done)
	if !cp.ToFabric.Send(now, done) {
		cp.pendingDone = true
		return
	}
	cp.pendingDone = false
}

// Driver is the host runtime: it owns kernel launches, writes argument
// blocks into each GPU's memory through its own RDMA engine (so the
// metadata rides the same compressed fabric path as data), and synchronizes
// kernel boundaries.
type Driver struct {
	sim.ComponentBase
	part  *sim.Partition
	space *mem.Space

	// Ctrl is the driver's bus endpoint for launch/done control traffic.
	Ctrl *sim.Port
	// ToRDMA connects to the host RDMA's L1-side port for arg writes.
	ToRDMA *sim.Port

	// CPPorts maps GPU index to its command processor's fabric port.
	CPPorts []*sim.Port
	// RDMAPort is the host RDMA's ToL1 port (destination for arg writes).
	RDMAPort *sim.Port
	// InvalidateL1s is called at every kernel boundary, modeling the GCN
	// L1 invalidation between kernels.
	InvalidateL1s func()

	// ArgBuffers holds one per-GPU argument buffer, allocated by the
	// platform.
	ArgBuffers []mem.Buffer

	seq         int
	kernel      *Kernel
	assignments [][]int
	pendingAcks int
	pendingDone int
	launchErr   error

	// Spans, when non-nil, receives one kernel-track span per launch.
	Spans *trace.Recorder

	// Stats
	KernelsLaunched uint64
	ArgBytesWritten uint64
}

// RegisterMetrics exposes the driver counters under prefix (conventionally
// "driver").
func (d *Driver) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.CounterFunc(prefix+"/kernels_launched", func() uint64 { return d.KernelsLaunched })
	reg.CounterFunc(prefix+"/arg_bytes_written", func() uint64 { return d.ArgBytesWritten })
}

// NewDriver builds the host driver.
func NewDriver(name string, part *sim.Partition, space *mem.Space) *Driver {
	d := &Driver{
		ComponentBase: sim.NewComponentBase(name),
		part:          part,
		space:         space,
	}
	d.Ctrl = sim.NewPort(d, name+".Ctrl", 4*1024)
	d.ToRDMA = sim.NewPort(d, name+".ToRDMA", 8*1024)
	return d
}

// Handle implements sim.Handler.
func (d *Driver) Handle(e sim.Event) error {
	return fmt.Errorf("%s: unexpected event %T", d.Name(), e)
}

// NotifyPortFree implements sim.Component.
func (d *Driver) NotifyPortFree(sim.Time, *sim.Port) {}

// NotifyRecv implements sim.Component.
func (d *Driver) NotifyRecv(now sim.Time, p *sim.Port) {
	for {
		msg := p.Retrieve(now)
		if msg == nil {
			return
		}
		switch rsp := msg.(type) {
		case *mem.WriteACK:
			d.pendingAcks--
			if d.pendingAcks == 0 {
				d.broadcastLaunch(now)
			}
		case *KernelDone:
			if rsp.Seq != d.seq {
				panic(fmt.Sprintf("%s: stale completion for launch %d (current %d)", d.Name(), rsp.Seq, d.seq))
			}
			d.pendingDone--
			if d.pendingDone == 0 {
				d.finishKernel()
			}
		default:
			panic(fmt.Sprintf("%s: unexpected message %T", d.Name(), msg))
		}
	}
}

// Launch starts a kernel across all GPUs and runs the engine until it
// completes. It must be called from host code (outside event handlers).
func (d *Driver) Launch(k *Kernel) error {
	if err := k.Validate(); err != nil {
		return err
	}
	numGPUs := len(d.CPPorts)
	totalCUs := 0
	cusPerGPU := make([]int, numGPUs)
	for g, port := range d.CPPorts {
		cp := port.Component().(*CommandProcessor)
		cusPerGPU[g] = len(cp.CUs)
		totalCUs += len(cp.CUs)
	}
	if totalCUs == 0 {
		return fmt.Errorf("gpu: no CUs available")
	}

	// Round-robin workgroups across all CUs of all GPUs (Sec. VI-A): the
	// CU for workgroup i is i mod totalCUs; its GPU gets the workgroup.
	d.assignments = make([][]int, numGPUs)
	cuToGPU := make([]int, 0, totalCUs)
	for g := 0; g < numGPUs; g++ {
		for i := 0; i < cusPerGPU[g]; i++ {
			cuToGPU = append(cuToGPU, g)
		}
	}
	for wg := 0; wg < k.NumWorkgroups; wg++ {
		g := cuToGPU[wg%totalCUs]
		d.assignments[g] = append(d.assignments[g], wg)
	}

	d.seq++
	d.kernel = k
	d.pendingDone = numGPUs
	d.launchErr = nil
	d.KernelsLaunched++

	now := d.part.Now()
	d.pendingAcks = 0
	if len(k.Args) > 0 {
		d.writeArgs(now, k)
	}
	if d.pendingAcks == 0 {
		d.broadcastLaunch(now)
	}
	if err := d.part.Engine().Run(); err != nil {
		return err
	}
	if d.pendingDone != 0 {
		return fmt.Errorf("gpu: kernel %q deadlocked with %d GPUs outstanding", k.Name, d.pendingDone)
	}
	// The kernel boundary: invalidate L1s from host code, once every
	// partition has reached its barrier. finishKernel only pauses the run,
	// so the invalidation never races a still-draining partition window.
	if d.InvalidateL1s != nil {
		d.InvalidateL1s()
	}
	if d.Spans != nil {
		d.Spans.Record(trace.Span{
			Track: "kernel",
			Name:  k.Name,
			Cat:   "kernel",
			Start: now,
			End:   d.part.Engine().Now(),
		})
	}
	return d.launchErr
}

// writeArgs writes the argument block into each GPU's argument buffer via
// the host RDMA, padded to whole cache lines (the padding zeros are real
// bytes on the wire).
func (d *Driver) writeArgs(now sim.Time, k *Kernel) {
	padded := append([]byte(nil), k.Args...)
	for len(padded)%mem.LineSize != 0 {
		padded = append(padded, 0)
	}
	for g := range d.CPPorts {
		buf := d.ArgBuffers[g]
		if uint64(len(padded)) > buf.Size() {
			panic(fmt.Sprintf("gpu: args of %d bytes exceed arg buffer %d", len(padded), buf.Size()))
		}
		for off := 0; off < len(padded); off += mem.LineSize {
			addr := buf.Addr(uint64(off))
			w := mem.NewWriteReq(d.ToRDMA, d.RDMAPort, addr, padded[off:off+mem.LineSize])
			d.part.AssignMsgID(w)
			if !d.ToRDMA.Send(now, w) {
				panic("gpu: driver RDMA rejected arg write")
			}
			d.pendingAcks++
			d.ArgBytesWritten += mem.LineSize
		}
	}
}

func (d *Driver) broadcastLaunch(now sim.Time) {
	for g, port := range d.CPPorts {
		cmd := &LaunchCmd{Kernel: d.kernel, WGs: d.assignments[g], Seq: d.seq}
		cmd.Src, cmd.Dst, cmd.Bytes = d.Ctrl, port, LaunchCmdBytes
		d.part.AssignMsgID(cmd)
		if !d.Ctrl.Send(now, cmd) {
			panic("gpu: driver control port rejected launch")
		}
	}
}

func (d *Driver) finishKernel() {
	d.part.Pause()
}
