package gpu

import (
	"fmt"

	"mgpucompress/internal/mem"
	"mgpucompress/internal/metrics"
	"mgpucompress/internal/sim"
)

// CUConfig parameterizes a compute unit.
type CUConfig struct {
	// IssueWidth is the number of memory operations a CU can issue per
	// cycle.
	IssueWidth int
	// MaxResidentWGs bounds the workgroups active on the CU at once.
	MaxResidentWGs  int
	PortBufferBytes int
}

// DefaultCUConfig returns GCN3-like defaults.
func DefaultCUConfig() CUConfig {
	return CUConfig{IssueWidth: 1, MaxResidentWGs: 4, PortBufferBytes: 8 * 1024}
}

type wavefront struct {
	wg    *wgInstance
	queue []Op
	// busyUntil is set by ComputeOps.
	busyUntil sim.Time
	waiting   bool // blocked on an outstanding read
	atBarrier bool
	done      bool
}

type wgInstance struct {
	id            int
	kernel        *Kernel
	waves         []*wavefront
	pendingWrites int
	doneWaves     int
}

func (wg *wgInstance) complete() bool {
	return wg.doneWaves == len(wg.waves) && wg.pendingWrites == 0
}

// CU is one compute unit. It executes the operation streams of its resident
// workgroups, interleaving wavefronts to hide memory latency the way a real
// GPU's SIMD scheduler does.
type CU struct {
	sim.ComponentBase
	part   *sim.Partition
	ticker *sim.Ticker
	cfg    CUConfig

	// ToL1 connects to the CU's private L1 vector cache.
	ToL1  *sim.Port
	l1Dst *sim.Port

	queue  []*wgInstance // assigned, waiting for a resident slot
	active []*wgInstance

	pendingReads  map[uint64]*wavefront
	pendingWrites map[uint64]*wgInstance

	// OnWGDone is called (same cycle) when a workgroup retires.
	OnWGDone func(wg int)

	rrIndex int

	// Stats
	WGsRetired      uint64
	MemReadsIssued  uint64
	MemWritesIssued uint64
	ComputeCycles   uint64
}

// RegisterMetrics exposes the CU counters under prefix (e.g. "gpu0/cu_3").
func (c *CU) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.CounterFunc(prefix+"/wgs_retired", func() uint64 { return c.WGsRetired })
	reg.CounterFunc(prefix+"/mem_reads_issued", func() uint64 { return c.MemReadsIssued })
	reg.CounterFunc(prefix+"/mem_writes_issued", func() uint64 { return c.MemWritesIssued })
	reg.CounterFunc(prefix+"/compute_cycles", func() uint64 { return c.ComputeCycles })
}

// NewCU builds a compute unit.
func NewCU(name string, part *sim.Partition, cfg CUConfig) *CU {
	if cfg.IssueWidth <= 0 {
		cfg.IssueWidth = 1
	}
	if cfg.MaxResidentWGs <= 0 {
		cfg.MaxResidentWGs = 4
	}
	c := &CU{
		ComponentBase: sim.NewComponentBase(name),
		part:          part,
		cfg:           cfg,
		pendingReads:  make(map[uint64]*wavefront),
		pendingWrites: make(map[uint64]*wgInstance),
	}
	c.ToL1 = sim.NewPort(c, name+".ToL1", cfg.PortBufferBytes)
	c.ticker = sim.NewTicker(part, c)
	return c
}

// Assign queues a workgroup on this CU. Called by the command processor.
func (c *CU) Assign(now sim.Time, k *Kernel, wg int) {
	inst := &wgInstance{id: wg, kernel: k}
	c.queue = append(c.queue, inst)
	c.ticker.TickNow(now)
}

// Idle reports whether the CU has no work at all.
func (c *CU) Idle() bool {
	return len(c.queue) == 0 && len(c.active) == 0
}

// NotifyRecv implements sim.Component.
func (c *CU) NotifyRecv(now sim.Time, _ *sim.Port) { c.ticker.TickNow(now) }

// NotifyPortFree implements sim.Component.
func (c *CU) NotifyPortFree(now sim.Time, _ *sim.Port) { c.ticker.TickNow(now) }

// Handle implements sim.Handler.
func (c *CU) Handle(e sim.Event) error {
	switch e.(type) {
	case *sim.TickEvent:
		return c.tick(e.Time())
	default:
		return fmt.Errorf("%s: unexpected event %T", c.Name(), e)
	}
}

func (c *CU) tick(now sim.Time) error {
	c.drainResponses(now)
	c.activateWGs(now)
	c.issue(now)
	c.retireWGs(now)
	c.scheduleNext(now)
	return nil
}

func (c *CU) drainResponses(now sim.Time) {
	for {
		msg := c.ToL1.Retrieve(now)
		if msg == nil {
			return
		}
		switch rsp := msg.(type) {
		case *mem.DataReady:
			wf, ok := c.pendingReads[rsp.RspTo]
			if !ok {
				panic(fmt.Sprintf("%s: data for unknown read %d", c.Name(), rsp.RspTo))
			}
			delete(c.pendingReads, rsp.RspTo)
			wf.waiting = false
			// The completed op is still at the head of the queue; pop it
			// and splice in its continuation.
			op := wf.queue[0].(ReadOp)
			wf.queue = wf.queue[1:]
			if op.Then != nil {
				cont := op.Then(rsp.Data)
				if len(cont) > 0 {
					wf.queue = append(append([]Op{}, cont...), wf.queue...)
				}
			}
		case *mem.WriteACK:
			wg, ok := c.pendingWrites[rsp.RspTo]
			if !ok {
				panic(fmt.Sprintf("%s: ack for unknown write %d", c.Name(), rsp.RspTo))
			}
			delete(c.pendingWrites, rsp.RspTo)
			wg.pendingWrites--
		default:
			panic(fmt.Sprintf("%s: unexpected response %T", c.Name(), msg))
		}
	}
}

func (c *CU) activateWGs(now sim.Time) {
	for len(c.active) < c.cfg.MaxResidentWGs && len(c.queue) > 0 {
		inst := c.queue[0]
		c.queue = c.queue[1:]
		streams := inst.kernel.Program(inst.id)
		if len(streams) == 0 {
			// Degenerate empty workgroup: retires immediately.
			c.WGsRetired++
			if c.OnWGDone != nil {
				c.OnWGDone(inst.id)
			}
			continue
		}
		for _, ops := range streams {
			inst.waves = append(inst.waves, &wavefront{wg: inst, queue: ops})
		}
		c.active = append(c.active, inst)
	}
}

// issue executes up to IssueWidth operations, rotating across wavefronts.
func (c *CU) issue(now sim.Time) {
	var waves []*wavefront
	for _, wg := range c.active {
		for _, wf := range wg.waves {
			if !wf.done && !wf.waiting && !wf.atBarrier && wf.busyUntil <= now {
				waves = append(waves, wf)
			}
		}
	}
	if len(waves) == 0 {
		return
	}
	issued := 0
	for i := 0; i < len(waves) && issued < c.cfg.IssueWidth; i++ {
		wf := waves[(c.rrIndex+i)%len(waves)]
		if c.step(now, wf) {
			issued++
		}
	}
	c.rrIndex++
}

// step executes one operation of the wavefront; reports whether an issue
// slot was consumed.
func (c *CU) step(now sim.Time, wf *wavefront) bool {
	if len(wf.queue) == 0 {
		wf.done = true
		wf.wg.doneWaves++
		return false
	}
	switch op := wf.queue[0].(type) {
	case ComputeOp:
		wf.queue = wf.queue[1:]
		if op.Cycles > 0 {
			wf.busyUntil = now + sim.Time(op.Cycles)
			c.ComputeCycles += uint64(op.Cycles)
		}
		return true
	case ReadOp:
		req := mem.NewReadReq(c.ToL1, c.l1Top(), op.Addr, op.N)
		c.part.AssignMsgID(req)
		if !c.ToL1.Send(now, req) {
			return false
		}
		c.MemReadsIssued++
		c.pendingReads[req.ID] = wf
		wf.waiting = true // op popped when the data returns
		return true
	case WriteOp:
		req := mem.NewWriteReq(c.ToL1, c.l1Top(), op.Addr, op.Data)
		c.part.AssignMsgID(req)
		if !c.ToL1.Send(now, req) {
			return false
		}
		c.MemWritesIssued++
		wf.queue = wf.queue[1:]
		wf.wg.pendingWrites++
		c.pendingWrites[req.ID] = wf.wg
		return true
	case BarrierOp:
		wf.atBarrier = true
		c.tryReleaseBarrier(wf.wg)
		return false
	default:
		panic(fmt.Sprintf("%s: unknown op %T", c.Name(), op))
	}
}

func (c *CU) tryReleaseBarrier(wg *wgInstance) {
	if wg.pendingWrites > 0 {
		return
	}
	for _, wf := range wg.waves {
		if !wf.done && !wf.atBarrier {
			return
		}
	}
	for _, wf := range wg.waves {
		if wf.atBarrier {
			wf.atBarrier = false
			wf.queue = wf.queue[1:] // pop the barrier
		}
	}
}

func (c *CU) retireWGs(now sim.Time) {
	kept := c.active[:0]
	for _, wg := range c.active {
		// Barriers may become releasable when the last write drains.
		c.tryReleaseBarrier(wg)
		// Wavefronts whose queue emptied outside step().
		for _, wf := range wg.waves {
			if !wf.done && len(wf.queue) == 0 && !wf.waiting {
				wf.done = true
				wg.doneWaves++
			}
		}
		if wg.complete() {
			c.WGsRetired++
			if c.OnWGDone != nil {
				c.OnWGDone(wg.id)
			}
			continue
		}
		kept = append(kept, wg)
	}
	c.active = kept
}

// scheduleNext decides when the CU needs to run again.
func (c *CU) scheduleNext(now sim.Time) {
	if len(c.queue) > 0 {
		c.ticker.TickLater(now)
		return
	}
	next := sim.TimeInf
	anyReady := false
	for _, wg := range c.active {
		for _, wf := range wg.waves {
			if wf.done || wf.waiting || wf.atBarrier {
				continue
			}
			if wf.busyUntil > now {
				if wf.busyUntil < next {
					next = wf.busyUntil
				}
			} else {
				anyReady = true
			}
		}
	}
	if anyReady {
		c.ticker.TickLater(now)
	} else if next != sim.TimeInf {
		c.ticker.TickAt(next)
	}
	// Otherwise everything is waiting on memory or barriers; responses
	// re-tick via NotifyRecv.
}

// l1Top returns the destination port for memory operations.
func (c *CU) l1Top() *sim.Port {
	conn := c.ToL1.Connection()
	if conn == nil {
		panic(fmt.Sprintf("%s: ToL1 not connected", c.Name()))
	}
	if c.l1Dst == nil {
		panic(fmt.Sprintf("%s: L1 destination not set", c.Name()))
	}
	return c.l1Dst
}

// SetL1 points the CU at its L1 cache's top port.
func (c *CU) SetL1(p *sim.Port) { c.l1Dst = p }
