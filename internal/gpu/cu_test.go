package gpu

import (
	"bytes"
	"testing"

	"mgpucompress/internal/mem"
	"mgpucompress/internal/sim"
)

// memStub is a single-component memory that answers every request after a
// fixed latency, standing in for the whole cache hierarchy in CU unit
// tests.
type memStub struct {
	sim.ComponentBase
	part    *sim.Partition
	space   *mem.Space
	latency sim.Time
	Top     *sim.Port
	reads   int
	writes  int
}

func newMemStub(part *sim.Partition, latency sim.Time) *memStub {
	s := &memStub{
		ComponentBase: sim.NewComponentBase("memstub"),
		part:          part,
		space:         mem.NewSpace(1),
		latency:       latency,
	}
	s.Top = sim.NewPort(s, "memstub.Top", 0)
	return s
}

type stubRspEvent struct {
	sim.EventBase
	rsp sim.Msg
}

func (s *memStub) Handle(e sim.Event) error {
	evt := e.(stubRspEvent)
	if !s.Top.Send(e.Time(), evt.rsp) {
		panic("memstub: send failed")
	}
	return nil
}

func (s *memStub) NotifyRecv(now sim.Time, p *sim.Port) {
	for {
		m := p.Retrieve(now)
		if m == nil {
			return
		}
		var rsp sim.Msg
		switch req := m.(type) {
		case *mem.ReadReq:
			s.reads++
			rsp = mem.NewDataReady(s.Top, req.Src, req.ID, req.Addr, s.space.Read(req.Addr, req.N))
		case *mem.WriteReq:
			s.writes++
			s.space.Write(req.Addr, req.Data)
			rsp = mem.NewWriteACK(s.Top, req.Src, req.ID, req.Addr)
		}
		s.part.AssignMsgID(rsp)
		s.part.Schedule(stubRspEvent{
			EventBase: sim.NewEventBase(now+s.latency, s),
			rsp:       rsp,
		})
	}
}

func (s *memStub) NotifyPortFree(sim.Time, *sim.Port) {}

func cuBench(t *testing.T, cfg CUConfig) (*sim.Engine, *CU, *memStub) {
	t.Helper()
	engine := sim.NewEngine()
	part := engine.Partition(0)
	cu := NewCU("CU", part, cfg)
	stub := newMemStub(part, 50)
	conn := sim.NewDirectConnection("conn", part, 1)
	conn.Plug(cu.ToL1)
	conn.Plug(stub.Top)
	cu.SetL1(stub.Top)
	return engine, cu, stub
}

func runWG(t *testing.T, engine *sim.Engine, cu *CU, k *Kernel, wgs int) {
	t.Helper()
	done := 0
	cu.OnWGDone = func(int) { done++ }
	for wg := 0; wg < wgs; wg++ {
		cu.Assign(engine.Now(), k, wg)
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if done != wgs {
		t.Fatalf("%d/%d workgroups retired", done, wgs)
	}
}

func TestCUExecutesSequentialOps(t *testing.T) {
	engine, cu, stub := cuBench(t, DefaultCUConfig())
	stub.space.Write(0, []byte{1, 2, 3, 4})
	k := &Kernel{
		Name: "seq", NumWorkgroups: 1,
		Program: func(int) [][]Op {
			return [][]Op{{
				ReadOp{Addr: 0, N: 64, Then: func(d []byte) []Op {
					out := append([]byte(nil), d...)
					out[0] = 99
					return []Op{
						ComputeOp{Cycles: 10},
						WriteOp{Addr: 64, Data: out},
					}
				}},
			}}
		},
	}
	runWG(t, engine, cu, k, 1)
	got := stub.space.Read(64, 4)
	if !bytes.Equal(got, []byte{99, 2, 3, 4}) {
		t.Errorf("result = %v", got)
	}
	if cu.MemReadsIssued != 1 || cu.MemWritesIssued != 1 {
		t.Errorf("issued %d reads %d writes", cu.MemReadsIssued, cu.MemWritesIssued)
	}
	if cu.WGsRetired != 1 {
		t.Errorf("retired %d", cu.WGsRetired)
	}
}

func TestCUInterleavesWavefrontsToHideLatency(t *testing.T) {
	// 8 wavefronts each doing 4 dependent 50-cycle reads. Serial time
	// would be ≈ 8×4×52; an interleaving CU overlaps them so total is
	// ≈ 4×52 plus issue overhead.
	engine, cu, _ := cuBench(t, DefaultCUConfig())
	k := &Kernel{
		Name: "overlap", NumWorkgroups: 1,
		Program: func(int) [][]Op {
			streams := make([][]Op, 8)
			for w := range streams {
				addr := uint64(w) * 64
				var chain func(n int) []Op
				chain = func(n int) []Op {
					if n == 0 {
						return nil
					}
					return []Op{ReadOp{Addr: addr, N: 64, Then: func([]byte) []Op {
						return chain(n - 1)
					}}}
				}
				streams[w] = chain(4)
			}
			return streams
		},
	}
	runWG(t, engine, cu, k, 1)
	serial := sim.Time(8 * 4 * 52)
	if engine.Now() >= serial/2 {
		t.Errorf("took %d cycles; wavefronts not interleaved (serial ≈ %d)", engine.Now(), serial)
	}
}

func TestCUIssueWidthLimits(t *testing.T) {
	// 16 independent single-read wavefronts on a CU that issues 1 memory
	// op per cycle: the 16th read cannot issue before cycle 16.
	cfg := DefaultCUConfig()
	cfg.IssueWidth = 1
	engine, cu, stub := cuBench(t, cfg)
	k := &Kernel{
		Name: "width", NumWorkgroups: 1,
		Program: func(int) [][]Op {
			streams := make([][]Op, 16)
			for w := range streams {
				streams[w] = []Op{ReadOp{Addr: uint64(w) * 64, N: 64}}
			}
			return streams
		},
	}
	runWG(t, engine, cu, k, 1)
	if stub.reads != 16 {
		t.Fatalf("%d reads", stub.reads)
	}
	// Last read issued at ≥ cycle 16, response 50 later.
	if engine.Now() < 16+50 {
		t.Errorf("finished at %d: issue width not enforced", engine.Now())
	}
}

func TestCUResidencyLimitQueuesWGs(t *testing.T) {
	cfg := DefaultCUConfig()
	cfg.MaxResidentWGs = 1
	engine, cu, _ := cuBench(t, cfg)
	var order []int
	cu.OnWGDone = func(wg int) { order = append(order, wg) }
	k := &Kernel{
		Name: "resident", NumWorkgroups: 3,
		Program: func(int) [][]Op {
			return [][]Op{{
				ReadOp{Addr: 0, N: 64},
				ComputeOp{Cycles: 20},
			}}
		},
	}
	for wg := 0; wg < 3; wg++ {
		cu.Assign(0, k, wg)
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 {
		t.Fatalf("retired %d", len(order))
	}
	for i, wg := range order {
		if wg != i {
			t.Errorf("retirement order %v not FIFO with residency 1", order)
		}
	}
}

func TestCUPostedWritesHoldWGCompletion(t *testing.T) {
	// A workgroup with only posted writes must not retire before the acks.
	engine, cu, stub := cuBench(t, DefaultCUConfig())
	var doneAt sim.Time
	cu.OnWGDone = func(int) { doneAt = engine.Now() }
	k := &Kernel{
		Name: "posted", NumWorkgroups: 1,
		Program: func(int) [][]Op {
			return [][]Op{{
				WriteOp{Addr: 0, Data: make([]byte, 64)},
				WriteOp{Addr: 64, Data: make([]byte, 64)},
			}}
		},
	}
	cu.Assign(0, k, 0)
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if stub.writes != 2 {
		t.Fatalf("%d writes", stub.writes)
	}
	// Write acks return after ≥ 50-cycle latency.
	if doneAt < 50 {
		t.Errorf("workgroup retired at %d, before write acks", doneAt)
	}
}

func TestCUBarrierWithThreeWavefronts(t *testing.T) {
	engine, cu, stub := cuBench(t, DefaultCUConfig())
	marker := func(b byte) []byte {
		d := make([]byte, 64)
		d[0] = b
		return d
	}
	k := &Kernel{
		Name: "barrier3", NumWorkgroups: 1,
		Program: func(int) [][]Op {
			mk := func(pre int, addr uint64, b byte) []Op {
				return []Op{
					ComputeOp{Cycles: pre},
					WriteOp{Addr: addr, Data: marker(b)},
					BarrierOp{},
					ReadOp{Addr: 0, N: 64, Then: func(d []byte) []Op {
						// After the barrier every wavefront must see wf0's
						// write at address 0.
						if d[0] != 1 {
							panic("barrier violated")
						}
						return nil
					}},
				}
			}
			return [][]Op{
				mk(100, 0, 1),
				mk(5, 64, 2),
				mk(1, 128, 3),
			}
		},
	}
	runWG(t, engine, cu, k, 1)
	if stub.space.Read(0, 1)[0] != 1 || stub.space.Read(64, 1)[0] != 2 {
		t.Error("writes lost")
	}
}

func TestCUEmptyWorkgroupRetiresImmediately(t *testing.T) {
	engine, cu, _ := cuBench(t, DefaultCUConfig())
	k := &Kernel{
		Name: "empty", NumWorkgroups: 1,
		Program: func(int) [][]Op { return nil },
	}
	runWG(t, engine, cu, k, 1)
	if cu.WGsRetired != 1 {
		t.Error("empty workgroup not retired")
	}
	if !cu.Idle() {
		t.Error("CU not idle")
	}
}

func TestCUManyWGsAcrossAssignBatches(t *testing.T) {
	engine, cu, stub := cuBench(t, DefaultCUConfig())
	k := &Kernel{
		Name: "many", NumWorkgroups: 20,
		Program: func(wg int) [][]Op {
			d := make([]byte, 64)
			d[0] = byte(wg + 1)
			return [][]Op{{WriteOp{Addr: uint64(wg) * 64, Data: d}}}
		},
	}
	runWG(t, engine, cu, k, 20)
	for wg := 0; wg < 20; wg++ {
		if got := stub.space.Read(uint64(wg)*64, 1)[0]; got != byte(wg+1) {
			t.Errorf("wg %d marker = %d", wg, got)
		}
	}
}
