package platform

import (
	"fmt"
	"strings"
)

// Stats aggregates the platform's hardware counters after a run — the
// hit rates, access counts and utilizations a simulator user reaches for
// first when a number looks off.
type Stats struct {
	ExecCycles uint64

	L1Hits, L1Misses, L1Coalesced, L1Bypassed uint64
	L2Hits, L2Misses                          uint64
	DRAMReads, DRAMWrites                     uint64

	RDMAReadsSent, RDMAWritesSent     uint64
	RDMAReadsServed, RDMAWritesServed uint64

	WGsRetired     uint64
	MemOpsIssued   uint64
	FabricBytes    uint64
	FabricMessages uint64
	FabricUtil     float64

	RemoteCacheHits, RemoteCacheMisses uint64
	HasRemoteCache                     bool
}

// CollectStats gathers counters from every component.
func (p *Platform) CollectStats() Stats {
	s := Stats{
		ExecCycles:     uint64(p.ExecCycles()),
		FabricBytes:    p.Bus.TotalBytes(),
		FabricMessages: p.Bus.TotalMessages(),
		FabricUtil:     p.Bus.Utilization(p.ExecCycles()),
	}
	for _, dev := range p.GPUs {
		for _, l1 := range dev.L1s {
			s.L1Hits += l1.Hits
			s.L1Misses += l1.Misses
			s.L1Coalesced += l1.Coalesced
			s.L1Bypassed += l1.Bypassed
		}
		for _, l2 := range dev.L2s {
			s.L2Hits += l2.Hits
			s.L2Misses += l2.Misses
		}
		for _, d := range dev.DRAMs {
			s.DRAMReads += d.Reads
			s.DRAMWrites += d.Writes
		}
		for _, cu := range dev.CUs {
			s.WGsRetired += cu.WGsRetired
			s.MemOpsIssued += cu.MemReadsIssued + cu.MemWritesIssued
		}
		s.RDMAReadsSent += dev.RDMA.ReadsSent
		s.RDMAWritesSent += dev.RDMA.WritesSent
		s.RDMAReadsServed += dev.RDMA.ReadsServed
		s.RDMAWritesServed += dev.RDMA.WritesServed
		if dev.RemoteCache != nil {
			s.HasRemoteCache = true
			s.RemoteCacheHits += dev.RemoteCache.Hits
			s.RemoteCacheMisses += dev.RemoteCache.Misses
		}
	}
	// The host RDMA's kernel-argument writes are served by GPU RDMAs too.
	s.RDMAReadsSent += p.HostRDMA.ReadsSent
	s.RDMAWritesSent += p.HostRDMA.WritesSent
	s.RDMAReadsServed += p.HostRDMA.ReadsServed
	s.RDMAWritesServed += p.HostRDMA.WritesServed
	return s
}

func rate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// L1HitRate is hits over lookups (bypassed remote accesses excluded).
func (s Stats) L1HitRate() float64 { return rate(s.L1Hits, s.L1Misses) }

// L2HitRate is hits over lookups.
func (s Stats) L2HitRate() float64 { return rate(s.L2Hits, s.L2Misses) }

// String renders the counter report.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "exec cycles        %d\n", s.ExecCycles)
	fmt.Fprintf(&sb, "workgroups retired %d   CU memory ops %d\n", s.WGsRetired, s.MemOpsIssued)
	fmt.Fprintf(&sb, "L1: %d hits / %d misses (%.1f%%), %d coalesced, %d remote bypasses\n",
		s.L1Hits, s.L1Misses, 100*s.L1HitRate(), s.L1Coalesced, s.L1Bypassed)
	if s.HasRemoteCache {
		fmt.Fprintf(&sb, "L1.5 (remote): %d hits / %d misses (%.1f%%)\n",
			s.RemoteCacheHits, s.RemoteCacheMisses, 100*rate(s.RemoteCacheHits, s.RemoteCacheMisses))
	}
	fmt.Fprintf(&sb, "L2: %d hits / %d misses (%.1f%%)\n", s.L2Hits, s.L2Misses, 100*s.L2HitRate())
	fmt.Fprintf(&sb, "DRAM: %d reads, %d writes\n", s.DRAMReads, s.DRAMWrites)
	fmt.Fprintf(&sb, "RDMA: sent %d reads / %d writes, served %d reads / %d writes\n",
		s.RDMAReadsSent, s.RDMAWritesSent, s.RDMAReadsServed, s.RDMAWritesServed)
	fmt.Fprintf(&sb, "fabric: %d messages, %d bytes, %.0f%% busy\n",
		s.FabricMessages, s.FabricBytes, 100*s.FabricUtil)
	return sb.String()
}
