package platform

import (
	"fmt"
	"strings"

	"mgpucompress/internal/metrics"
)

// Stats aggregates the platform's hardware counters after a run — the
// hit rates, access counts and utilizations a simulator user reaches for
// first when a number looks off. It is a view over a metrics.Snapshot: every
// field is derived from registry samples, so it can never disagree with a
// -metrics-out file from the same run.
type Stats struct {
	ExecCycles uint64 `json:"exec_cycles"`

	L1Hits      uint64 `json:"l1_hits"`
	L1Misses    uint64 `json:"l1_misses"`
	L1Coalesced uint64 `json:"l1_coalesced"`
	L1Bypassed  uint64 `json:"l1_bypassed"`
	L2Hits      uint64 `json:"l2_hits"`
	L2Misses    uint64 `json:"l2_misses"`
	DRAMReads   uint64 `json:"dram_reads"`
	DRAMWrites  uint64 `json:"dram_writes"`

	RDMAReadsSent    uint64 `json:"rdma_reads_sent"`
	RDMAWritesSent   uint64 `json:"rdma_writes_sent"`
	RDMAReadsServed  uint64 `json:"rdma_reads_served"`
	RDMAWritesServed uint64 `json:"rdma_writes_served"`

	WGsRetired     uint64  `json:"wgs_retired"`
	MemOpsIssued   uint64  `json:"mem_ops_issued"`
	FabricBytes    uint64  `json:"fabric_bytes"`
	FabricMessages uint64  `json:"fabric_messages"`
	FabricUtil     float64 `json:"fabric_util"`

	RemoteCacheHits   uint64 `json:"remote_cache_hits,omitempty"`
	RemoteCacheMisses uint64 `json:"remote_cache_misses,omitempty"`
	HasRemoteCache    bool   `json:"has_remote_cache,omitempty"`
}

// StatsFromSnapshot derives the aggregate view from a metrics snapshot,
// using the registry's hierarchical paths ("gpu1/l2_0/hits") via glob
// aggregation.
func StatsFromSnapshot(s metrics.Snapshot) Stats {
	st := Stats{
		ExecCycles: uint64(s.Value("sim/cycles")),

		L1Hits:      uint64(s.SumMatch("gpu*/l1_*/hits")),
		L1Misses:    uint64(s.SumMatch("gpu*/l1_*/misses")),
		L1Coalesced: uint64(s.SumMatch("gpu*/l1_*/coalesced")),
		L1Bypassed:  uint64(s.SumMatch("gpu*/l1_*/bypassed")),
		L2Hits:      uint64(s.SumMatch("gpu*/l2_*/hits")),
		L2Misses:    uint64(s.SumMatch("gpu*/l2_*/misses")),
		DRAMReads:   uint64(s.SumMatch("gpu*/dram_*/reads")),
		DRAMWrites:  uint64(s.SumMatch("gpu*/dram_*/writes")),

		// "*/rdma/..." covers the per-GPU engines and the host engine.
		RDMAReadsSent:    uint64(s.SumMatch("*/rdma/reads_sent")),
		RDMAWritesSent:   uint64(s.SumMatch("*/rdma/writes_sent")),
		RDMAReadsServed:  uint64(s.SumMatch("*/rdma/reads_served")),
		RDMAWritesServed: uint64(s.SumMatch("*/rdma/writes_served")),

		WGsRetired: uint64(s.SumMatch("gpu*/cu_*/wgs_retired")),
		MemOpsIssued: uint64(s.SumMatch("gpu*/cu_*/mem_reads_issued") +
			s.SumMatch("gpu*/cu_*/mem_writes_issued")),
		FabricBytes:    uint64(s.Value("fabric/bytes")),
		FabricMessages: uint64(s.Value("fabric/messages")),

		RemoteCacheHits:   uint64(s.SumMatch("gpu*/l15/hits")),
		RemoteCacheMisses: uint64(s.SumMatch("gpu*/l15/misses")),
		HasRemoteCache:    s.CountMatch("gpu*/l15/hits") > 0,
	}
	// Same expression the fabrics use (busy/elapsed, averaged over links),
	// with the divisions in the same order so the floats match bit for bit.
	if cycles := s.Value("sim/cycles"); cycles > 0 {
		if links := s.Value("fabric/links"); links > 0 {
			st.FabricUtil = s.Value("fabric/busy_cycles") / cycles / links
		}
	}
	return st
}

// CollectStats gathers the counters from the platform's metric registry.
func (p *Platform) CollectStats() Stats {
	return StatsFromSnapshot(p.Metrics.Snapshot())
}

// directStats walks the component structs and sums their counter fields —
// the pre-registry aggregation path, kept as a test oracle proving the
// snapshot view neither drops nor double counts anything.
func (p *Platform) directStats() Stats {
	s := Stats{
		ExecCycles:     uint64(p.ExecCycles()),
		FabricBytes:    p.Bus.TotalBytes(),
		FabricMessages: p.Bus.TotalMessages(),
		FabricUtil:     p.Bus.Utilization(p.ExecCycles()),
	}
	for _, dev := range p.GPUs {
		for _, l1 := range dev.L1s {
			s.L1Hits += l1.Hits
			s.L1Misses += l1.Misses
			s.L1Coalesced += l1.Coalesced
			s.L1Bypassed += l1.Bypassed
		}
		for _, l2 := range dev.L2s {
			s.L2Hits += l2.Hits
			s.L2Misses += l2.Misses
		}
		for _, d := range dev.DRAMs {
			s.DRAMReads += d.Reads
			s.DRAMWrites += d.Writes
		}
		for _, cu := range dev.CUs {
			s.WGsRetired += cu.WGsRetired
			s.MemOpsIssued += cu.MemReadsIssued + cu.MemWritesIssued
		}
		s.RDMAReadsSent += dev.RDMA.ReadsSent
		s.RDMAWritesSent += dev.RDMA.WritesSent
		s.RDMAReadsServed += dev.RDMA.ReadsServed
		s.RDMAWritesServed += dev.RDMA.WritesServed
		if dev.RemoteCache != nil {
			s.HasRemoteCache = true
			s.RemoteCacheHits += dev.RemoteCache.Hits
			s.RemoteCacheMisses += dev.RemoteCache.Misses
		}
	}
	// The host RDMA's kernel-argument writes are served by GPU RDMAs too.
	s.RDMAReadsSent += p.HostRDMA.ReadsSent
	s.RDMAWritesSent += p.HostRDMA.WritesSent
	s.RDMAReadsServed += p.HostRDMA.ReadsServed
	s.RDMAWritesServed += p.HostRDMA.WritesServed
	return s
}

func rate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// L1HitRate is hits over lookups (bypassed remote accesses excluded).
func (s Stats) L1HitRate() float64 { return rate(s.L1Hits, s.L1Misses) }

// L2HitRate is hits over lookups.
func (s Stats) L2HitRate() float64 { return rate(s.L2Hits, s.L2Misses) }

// String renders the counter report.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "exec cycles        %d\n", s.ExecCycles)
	fmt.Fprintf(&sb, "workgroups retired %d   CU memory ops %d\n", s.WGsRetired, s.MemOpsIssued)
	fmt.Fprintf(&sb, "L1: %d hits / %d misses (%.1f%%), %d coalesced, %d remote bypasses\n",
		s.L1Hits, s.L1Misses, 100*s.L1HitRate(), s.L1Coalesced, s.L1Bypassed)
	if s.HasRemoteCache {
		fmt.Fprintf(&sb, "L1.5 (remote): %d hits / %d misses (%.1f%%)\n",
			s.RemoteCacheHits, s.RemoteCacheMisses, 100*rate(s.RemoteCacheHits, s.RemoteCacheMisses))
	}
	fmt.Fprintf(&sb, "L2: %d hits / %d misses (%.1f%%)\n", s.L2Hits, s.L2Misses, 100*s.L2HitRate())
	fmt.Fprintf(&sb, "DRAM: %d reads, %d writes\n", s.DRAMReads, s.DRAMWrites)
	fmt.Fprintf(&sb, "RDMA: sent %d reads / %d writes, served %d reads / %d writes\n",
		s.RDMAReadsSent, s.RDMAWritesSent, s.RDMAReadsServed, s.RDMAWritesServed)
	fmt.Fprintf(&sb, "fabric: %d messages, %d bytes, %.0f%% busy\n",
		s.FabricMessages, s.FabricBytes, 100*s.FabricUtil)
	return sb.String()
}
