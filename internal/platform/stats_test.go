package platform

import (
	"bytes"
	"encoding/json"
	"testing"

	"mgpucompress/internal/core"
	"mgpucompress/internal/mem"
	"mgpucompress/internal/trace"
)

// runCopy builds a platform under cfg, runs one copy kernel, and returns it.
func runCopy(t *testing.T, cfg Config) *Platform {
	t.Helper()
	p, _ := Build(cfg)
	const lines = 64
	src := p.Space.AllocStriped(lines * mem.LineSize)
	dst := p.Space.AllocStriped(lines * mem.LineSize)
	data := make([]byte, lines*mem.LineSize)
	for i := range data {
		data[i] = byte(i / mem.LineSize)
	}
	src.Write(0, data)
	if err := p.Driver.Launch(copyKernel(src, dst, lines, 8)); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCollectStatsMatchesDirectAggregation is the no-double-counting proof:
// the snapshot-derived view must equal a direct walk over the component
// counter fields, including the float utilization bit for bit.
func TestCollectStatsMatchesDirectAggregation(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"bus", func(*Config) {}},
		{"crossbar", func(c *Config) { c.Fabric.Topology = "crossbar" }},
		{"remote-cache", func(c *Config) {
			rc := RemoteCacheConfig()
			c.RemoteCache = &rc
		}},
		{"adaptive", func(c *Config) {
			c.NewPolicy = func(int) core.Policy { return core.NewAdaptive(core.Config{}) }
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			tc.mut(&cfg)
			p := runCopy(t, cfg)
			got := p.CollectStats()
			want := p.directStats()
			if got != want {
				t.Errorf("snapshot view diverges from direct aggregation:\n got  %+v\n want %+v", got, want)
			}
		})
	}
}

func TestStatsJSONRoundTrip(t *testing.T) {
	p := runCopy(t, testConfig())
	s1 := p.CollectStats()
	b1, err := json.Marshal(s1)
	if err != nil {
		t.Fatal(err)
	}
	var s2 Stats
	if err := json.Unmarshal(b1, &s2); err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Errorf("round trip mismatch:\n  %+v\n  %+v", s1, s2)
	}
	b2, err := json.Marshal(s2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("re-marshal differs:\n  %s\n  %s", b1, b2)
	}
}

func TestAdaptivePhaseSpansRecorded(t *testing.T) {
	cfg := testConfig()
	cfg.Spans = &trace.Recorder{}
	cfg.NewPolicy = func(int) core.Policy {
		return core.NewAdaptive(core.Config{SampleCount: 2, RunLength: 8})
	}
	p := runCopy(t, cfg)
	p.FinishTrace()

	var phases, kernels int
	for _, s := range p.Spans.Spans() {
		if s.End <= s.Start {
			t.Errorf("span %+v is not forward in time", s)
		}
		switch s.Cat {
		case "phase":
			phases++
		case "kernel":
			kernels++
		}
	}
	if phases == 0 {
		t.Error("no controller phase spans recorded")
	}
	if kernels != 1 {
		t.Errorf("kernel spans = %d, want 1", kernels)
	}

	// FinishTrace must be idempotent: a second call adds nothing.
	n := len(p.Spans.Spans())
	p.FinishTrace()
	if len(p.Spans.Spans()) != n {
		t.Error("second FinishTrace appended spans")
	}
}
