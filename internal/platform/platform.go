// Package platform assembles the full simulated system of Fig. 3: four
// R9 Nano-class GPUs (compute units, private L1 vector caches, eight L2
// banks and eight DRAM channels each, and an RDMA engine) around a shared
// PCIe-like bus fabric, plus the host driver and its own RDMA engine for
// kernel argument traffic.
package platform

import (
	"fmt"

	"mgpucompress/internal/cache"
	"mgpucompress/internal/comp"
	"mgpucompress/internal/core"
	"mgpucompress/internal/energy"
	"mgpucompress/internal/fabric"
	"mgpucompress/internal/fault"
	"mgpucompress/internal/gpu"
	"mgpucompress/internal/mem"
	"mgpucompress/internal/metrics"
	"mgpucompress/internal/rdma"
	"mgpucompress/internal/sim"
	"mgpucompress/internal/trace"
)

// Config parameterizes the platform. Zero fields take Table VII defaults at
// a reduced test scale (4 CUs per GPU); set CUsPerGPU to 64 for the paper's
// full R9 Nano scale.
type Config struct {
	NumGPUs   int
	CUsPerGPU int
	// L2Banks is the number of L2 banks and DRAM channels per GPU.
	L2Banks int
	CU      gpu.CUConfig
	L1      cache.Config
	L2      cache.Config
	DRAM    mem.DRAMConfig
	Fabric  fabric.Config
	// NewPolicy builds the compression policy for each compressing
	// endpoint: GPUs 0..NumGPUs-1 and the host (index NumGPUs). Nil means
	// no compression anywhere.
	NewPolicy func(unit int) core.Policy
	// NewRecorder builds the RDMA traffic observer for each compressing
	// endpoint (same unit numbering as NewPolicy). Each unit's recorder is
	// only ever invoked from that unit's partition, so per-unit recorders
	// need no locking even under SimCores > 1; merge them in unit order
	// after the run for a deterministic total. Nil means no recording.
	NewRecorder func(unit int) rdma.Recorder
	// SimCores is the number of OS threads the simulation engine may use
	// to advance partitions concurrently (0 or 1 = serial). Results are
	// byte-identical across any SimCores value.
	SimCores int
	// FixedLookahead, when nonzero, pins the engine's window width to this
	// many cycles instead of the default adaptive widening. Results are
	// byte-identical either way; the knob exists to benchmark the window
	// scheduler (see cmd/benchreport) and must not exceed the minimum
	// cross-partition link latency (the fabric's LinkLatency).
	FixedLookahead sim.Time
	// ArgBufferBytes sizes the per-GPU kernel-argument buffer.
	ArgBufferBytes uint64
	// RemoteCache, when non-nil, inserts a per-GPU cache for REMOTE data
	// between the L1s and the RDMA engine — the "new cache level for
	// remote data" of Arunkumar et al.'s MCM-GPU design, which the paper
	// discusses as related work. It is invalidated at kernel boundaries
	// like the L1s. Nil (the default) reproduces the paper's system,
	// which does not cache remote data.
	RemoteCache *cache.Config
	// Metrics is the registry every component registers into at
	// construction. Nil means the platform creates a private one, so
	// CollectStats always works.
	Metrics *metrics.Registry
	// Spans, when non-nil, receives kernel launches and adaptive
	// controller phases as trace spans.
	Spans *trace.Recorder
	// Fault is the fault-injection profile. When enabled, the fabric
	// injects faults into RDMA wire traffic, every RDMA engine runs the
	// CRC/NACK/retry guard, adaptive controllers degrade on repeated
	// integrity failures, and the fault/guard metric paths are registered.
	// The zero profile leaves the platform byte-identical to a build
	// without the fault layer.
	Fault fault.Profile
	// FaultSeed seeds the injector's per-link PRNG streams (sweep-derived,
	// never wall clock).
	FaultSeed int64
}

// RemoteCacheConfig returns a reasonable L1.5 geometry for the extension:
// 128 KB, 8-way per GPU.
func RemoteCacheConfig() cache.Config {
	return cache.Config{
		SizeBytes:       128 * 1024,
		Ways:            8,
		LineSize:        mem.LineSize,
		HitLatency:      8,
		IssueWidth:      4,
		MaxMSHR:         32,
		PortBufferBytes: 8 * 1024,
	}
}

// DefaultConfig returns the test-scale configuration.
func DefaultConfig() Config {
	return Config{
		NumGPUs:        4,
		CUsPerGPU:      4,
		L2Banks:        mem.ChannelsPerPU,
		CU:             gpu.DefaultCUConfig(),
		L1:             cache.L1Config(),
		L2:             cache.L2Config(),
		DRAM:           mem.DefaultDRAMConfig(),
		Fabric:         fabric.DefaultConfig(),
		ArgBufferBytes: 4096,
	}
}

// FullConfig returns the paper-scale configuration (64 CUs per GPU).
func FullConfig() Config {
	cfg := DefaultConfig()
	cfg.CUsPerGPU = 64
	return cfg
}

// Device groups one GPU's components.
type Device struct {
	Index int
	CUs   []*gpu.CU
	L1s   []*cache.Cache
	L2s   []*cache.Cache
	DRAMs []*mem.DRAM
	RDMA  *rdma.Engine
	CP    *gpu.CommandProcessor
	// RemoteCache is the optional L1.5 for remote data (nil when the
	// platform reproduces the paper's configuration).
	RemoteCache *cache.Cache
}

// Partitions is the typed partition map of a built platform: one partition
// per GPU plus the hub. The engine's conservative parallel scheduler
// advances these concurrently under SimCores > 1; all cross-partition
// traffic rides the fabric links, whose latency is the lookahead window.
type Partitions struct {
	// GPUs[g] hosts GPU g's CUs, caches, DRAM channels, RDMA engine and
	// command processor.
	GPUs []*sim.Partition
	// Hub hosts the shared side: the fabric arbiter, the host driver and
	// the host RDMA engine.
	Hub *sim.Partition
}

// Platform is the assembled multi-GPU system.
type Platform struct {
	Engine   *sim.Engine
	Parts    Partitions
	Space    *mem.Space
	Bus      fabric.Fabric
	Driver   *gpu.Driver
	HostRDMA *rdma.Engine
	GPUs     []*Device
	// Metrics is the registry holding every component's counters; it is
	// never nil after New.
	Metrics *metrics.Registry
	// Spans is the trace recorder handed in via Config (nil when tracing
	// is off).
	Spans  *trace.Recorder
	phases []*phaseTracker
	// seenPolicies dedupes instrumentation when Config.NewPolicy hands the
	// same controller instance to several endpoints (the adaptive-global
	// policy): a shared controller is registered once, under the first
	// unit's prefix, instead of once per endpoint.
	seenPolicies map[core.Policy]bool
	cfg          Config
}

// phaseTracker turns a controller's phase-transition callbacks into
// contiguous spans on one timeline track. It reads time from the unit's
// own partition: transitions fire inside that partition's event handlers.
type phaseTracker struct {
	part  *sim.Partition
	spans *trace.Recorder
	track string
	start sim.Time
	name  string
}

func (t *phaseTracker) transition(sampling bool, selected comp.Algorithm) {
	now := t.part.Now()
	t.close(now)
	t.start = now
	if sampling {
		t.name = "sampling"
	} else {
		t.name = "run:" + selected.String()
	}
}

func (t *phaseTracker) close(now sim.Time) {
	if t.name != "" && now > t.start {
		t.spans.Record(trace.Span{
			Track: t.track, Name: t.name, Cat: "phase",
			Start: t.start, End: now,
		})
	}
}

// FinishTrace closes the still-open controller phase spans at the current
// simulated time. Call it once, after the last kernel completes and before
// exporting the trace.
func (p *Platform) FinishTrace() {
	now := p.Engine.Now()
	for _, t := range p.phases {
		t.close(now)
		t.name = ""
	}
}

// partitionOf returns the partition hosting compressing endpoint unit:
// GPU partitions for 0..NumGPUs-1, the hub for the host (index NumGPUs).
func (p *Platform) partitionOf(unit int) *sim.Partition {
	if unit == p.cfg.NumGPUs {
		return p.Parts.Hub
	}
	return p.Parts.GPUs[unit]
}

// instrumentPolicy registers an adaptive controller's metrics under
// ctrl<unit> and, when tracing, tracks its phases as spans.
func (p *Platform) instrumentPolicy(unit int, pol core.Policy) {
	type registrar interface {
		RegisterMetrics(*metrics.Registry, string)
	}
	type hooked interface {
		SetPhaseHook(core.PhaseHook)
	}
	prefix := fmt.Sprintf("ctrl%d", unit)
	if r, ok := pol.(registrar); ok {
		if p.seenPolicies == nil {
			p.seenPolicies = make(map[core.Policy]bool)
		}
		if p.seenPolicies[pol] {
			return // shared controller, already instrumented
		}
		p.seenPolicies[pol] = true
		r.RegisterMetrics(p.Metrics, prefix)
	}
	if p.cfg.Fault.Enabled() {
		type integrity interface {
			RegisterIntegrityMetrics(*metrics.Registry, string)
		}
		if ir, ok := pol.(integrity); ok {
			ir.RegisterIntegrityMetrics(p.Metrics, prefix)
		}
		if dk, ok := pol.(interface{ SetDegradeK(int) }); ok {
			dk.SetDegradeK(p.cfg.Fault.Degrade())
		}
	}
	if h, ok := pol.(hooked); ok && p.Spans != nil {
		t := &phaseTracker{
			part:  p.partitionOf(unit),
			spans: p.Spans,
			track: prefix,
			name:  "sampling", // adaptive controllers start sampling at t=0
		}
		p.phases = append(p.phases, t)
		h.SetPhaseHook(t.transition)
	}
}

// Build constructs and wires the platform, returning it together with its
// typed partition map. Each GPU's components live on their own partition;
// the fabric, driver and host RDMA share the hub partition. With
// cfg.SimCores > 1 the engine advances the partitions concurrently, and
// the run is byte-identical to a serial one.
func Build(cfg Config) (*Platform, Partitions) {
	base := DefaultConfig()
	if cfg.NumGPUs == 0 {
		cfg.NumGPUs = base.NumGPUs
	}
	if cfg.CUsPerGPU == 0 {
		cfg.CUsPerGPU = base.CUsPerGPU
	}
	if cfg.L2Banks == 0 {
		cfg.L2Banks = base.L2Banks
	}
	if cfg.CU.IssueWidth == 0 {
		cfg.CU = base.CU
	}
	if cfg.L1.SizeBytes == 0 {
		cfg.L1 = base.L1
	}
	if cfg.L2.SizeBytes == 0 {
		cfg.L2 = base.L2
	}
	if cfg.DRAM.AccessLatency == 0 {
		cfg.DRAM = base.DRAM
	}
	// Fabric defaults are per-field: the old wholesale fallback silently
	// replaced a partially-set Config (losing, say, a Topology choice made
	// without a BytesPerCycle override). Anything still invalid after
	// defaulting is rejected by Validate below instead of being normalized
	// away.
	if cfg.Fabric.BytesPerCycle == 0 {
		cfg.Fabric.BytesPerCycle = base.Fabric.BytesPerCycle
	}
	if cfg.Fabric.OutBufferBytes == 0 {
		cfg.Fabric.OutBufferBytes = base.Fabric.OutBufferBytes
	}
	if cfg.Fabric.LinkLatency == 0 {
		cfg.Fabric.LinkLatency = base.Fabric.LinkLatency
	}
	if cfg.Fabric.Topology == "" {
		cfg.Fabric.Topology = base.Fabric.Topology
	}
	if cfg.Fabric.BaseClass == energy.OnChip {
		// The zero value selects the paper's MCM fabric (Sec. VII-B).
		cfg.Fabric.BaseClass = base.Fabric.BaseClass
	}
	if cfg.ArgBufferBytes == 0 {
		cfg.ArgBufferBytes = base.ArgBufferBytes
	}
	if cfg.NewRecorder == nil {
		cfg.NewRecorder = func(int) rdma.Recorder { return rdma.NopRecorder{} }
	}
	if cfg.SimCores < 1 {
		cfg.SimCores = 1
	}
	// The switched topologies size their switch graph from the GPU count;
	// the fabric maps owner-partition indices 0..NumGPUs-1 to GPU nodes and
	// the hub partition to the host switch, so Nodes always mirrors NumGPUs.
	cfg.Fabric.Nodes = cfg.NumGPUs
	if err := cfg.Fabric.Validate(); err != nil {
		// User-facing layers (runner.Options.Validate, the CLIs) reject bad
		// shapes with an error first; reaching Build with one is a wiring
		// bug.
		panic(fmt.Sprintf("platform: %v", err))
	}

	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}

	// Fault layer: one injector shared by the fabric, guards on every RDMA
	// engine, and the fault/* metric paths — all strictly gated on an
	// enabled profile so that fault-free runs keep byte-identical
	// snapshots.
	var injector *fault.Injector
	if cfg.Fault.Enabled() {
		injector = fault.NewInjector(cfg.Fault, cfg.FaultSeed)
		cfg.Fabric.Fault = injector
	}

	engOpts := []sim.Option{
		sim.WithPartitions(cfg.NumGPUs + 1),
		sim.WithCores(cfg.SimCores),
	}
	if cfg.FixedLookahead > 0 {
		engOpts = append(engOpts, sim.WithLookahead(cfg.FixedLookahead))
	}
	p := &Platform{
		Engine:  sim.NewEngine(engOpts...),
		Metrics: cfg.Metrics,
		Spans:   cfg.Spans,
		cfg:     cfg,
	}
	for g := 0; g < cfg.NumGPUs; g++ {
		p.Parts.GPUs = append(p.Parts.GPUs, p.Engine.Partition(g))
	}
	p.Parts.Hub = p.Engine.Partition(cfg.NumGPUs)
	p.Space = mem.NewSpace(cfg.NumGPUs)
	p.Bus = fabric.New("Fabric", p.Parts.Hub, cfg.Fabric)
	if injector != nil {
		injector.RegisterMetrics(p.Metrics, "fault")
	}
	p.Driver = gpu.NewDriver("Driver", p.Parts.Hub, p.Space)
	p.Driver.Spans = cfg.Spans

	p.Engine.RegisterMetrics(p.Metrics, "sim")
	p.Bus.RegisterMetrics(p.Metrics, "fabric")
	p.Driver.RegisterMetrics(p.Metrics, "driver")

	policy := func(unit int) core.Policy {
		var pol core.Policy = core.Uncompressed{}
		if cfg.NewPolicy != nil {
			pol = cfg.NewPolicy(unit)
		}
		p.instrumentPolicy(unit, pol)
		return pol
	}

	// Host RDMA: carries the driver's kernel-argument writes.
	p.HostRDMA = rdma.New("Host.RDMA", p.Parts.Hub, cfg.NumGPUs,
		policy(cfg.NumGPUs), cfg.NewRecorder(cfg.NumGPUs))
	p.HostRDMA.OwnerOf = p.Space.GPUOf
	p.HostRDMA.L2Router = func(addr uint64) *sim.Port {
		panic(fmt.Sprintf("platform: request for address %#x routed into the host", addr))
	}
	p.HostRDMA.RegisterMetrics(p.Metrics, "host/rdma")
	p.enableGuard(p.HostRDMA, "host/rdma")

	for g := 0; g < cfg.NumGPUs; g++ {
		p.GPUs = append(p.GPUs, p.buildGPU(g, policy(g)))
	}

	// RemotePort directories.
	remote := func(unit int) *sim.Port {
		if unit == cfg.NumGPUs {
			return p.HostRDMA.ToFabric
		}
		return p.GPUs[unit].RDMA.ToFabric
	}
	p.HostRDMA.RemotePort = remote
	for _, dev := range p.GPUs {
		dev.RDMA.RemotePort = remote
	}

	// Bus endpoints: per paper, the CPU and GPUs arbitrate round-robin.
	// Attach order fixes the fabric's round-robin and outbox-drain order,
	// so it is part of the deterministic schedule.
	p.Bus.Attach(p.HostRDMA.ToFabric, p.Parts.Hub)
	p.Bus.Attach(p.Driver.Ctrl, p.Parts.Hub)
	for _, dev := range p.GPUs {
		p.Bus.Attach(dev.RDMA.ToFabric, p.Parts.GPUs[dev.Index])
		p.Bus.Attach(dev.CP.ToFabric, p.Parts.GPUs[dev.Index])
	}

	// Driver wiring.
	hostConn := sim.NewDirectConnection("Host.conn", p.Parts.Hub, 1)
	hostConn.Plug(p.Driver.ToRDMA)
	hostConn.Plug(p.HostRDMA.ToL1)
	p.Driver.RDMAPort = p.HostRDMA.ToL1
	for _, dev := range p.GPUs {
		p.Driver.CPPorts = append(p.Driver.CPPorts, dev.CP.ToFabric)
		p.Driver.ArgBuffers = append(p.Driver.ArgBuffers,
			p.Space.AllocOnGPU(dev.Index, cfg.ArgBufferBytes))
	}
	p.Driver.InvalidateL1s = func() {
		for _, dev := range p.GPUs {
			for _, l1 := range dev.L1s {
				l1.Invalidate()
			}
			if dev.RemoteCache != nil {
				dev.RemoteCache.Invalidate()
			}
		}
	}
	return p, p.Parts
}

func (p *Platform) buildGPU(g int, policy core.Policy) *Device {
	cfg := p.cfg
	part := p.Parts.GPUs[g]
	name := fmt.Sprintf("GPU%d", g)
	// mpfx is the GPU's metric-path prefix ("gpu0", "gpu1", ...).
	mpfx := fmt.Sprintf("gpu%d", g)
	dev := &Device{Index: g}

	dev.RDMA = rdma.New(name+".RDMA", part, g, policy, cfg.NewRecorder(g))
	dev.RDMA.OwnerOf = p.Space.GPUOf
	dev.RDMA.RegisterMetrics(p.Metrics, mpfx+"/rdma")
	p.enableGuard(dev.RDMA, mpfx+"/rdma")

	// DRAM channels and L2 banks.
	dramConn := sim.NewDirectConnection(name+".dram", part, 2)
	for ch := 0; ch < cfg.L2Banks; ch++ {
		d := mem.NewDRAM(fmt.Sprintf("%s.DRAM%d", name, ch), part, p.Space, cfg.DRAM)
		d.RegisterMetrics(p.Metrics, fmt.Sprintf("%s/dram_%d", mpfx, ch))
		dev.DRAMs = append(dev.DRAMs, d)
		l2 := cache.New(fmt.Sprintf("%s.L2_%d", name, ch), part, p.Space, cfg.L2)
		l2.RegisterMetrics(p.Metrics, fmt.Sprintf("%s/l2_%d", mpfx, ch))
		dev.L2s = append(dev.L2s, l2)
		dramConn.Plug(l2.Bottom)
		dramConn.Plug(d.Top)
		dramTop := d.Top
		l2.Router = func(uint64) *sim.Port { return dramTop }
	}

	// Intra-GPU crossbar: L1 bottoms, L2 tops, and the RDMA's two local
	// ports.
	xbar := sim.NewDirectConnection(name+".xbar", part, 3)
	for _, l2 := range dev.L2s {
		xbar.Plug(l2.Top)
	}
	xbar.Plug(dev.RDMA.ToL1)
	xbar.Plug(dev.RDMA.ToL2)
	dev.RDMA.L2Router = func(addr uint64) *sim.Port {
		return dev.L2s[p.Space.ChannelOf(addr)].Top
	}

	// Optional remote cache (L1.5) between the L1s and the RDMA engine.
	// Its top and bottom ports both live on the intra-GPU crossbar: L1s
	// route remote addresses to rc.Top, and rc misses go to the RDMA.
	remotePort := dev.RDMA.ToL1
	if cfg.RemoteCache != nil {
		rcCfg := *cfg.RemoteCache
		rcCfg.Cacheable = func(addr uint64) bool { return p.Space.GPUOf(addr) != g }
		rc := cache.New(name+".L1_5", part, p.Space, rcCfg)
		// Metric path "l15", not "l1_5": keeps the remote cache out of the
		// "l1_*" glob that aggregates the per-CU L1s.
		rc.RegisterMetrics(p.Metrics, mpfx+"/l15")
		rc.Router = func(uint64) *sim.Port { return dev.RDMA.ToL1 }
		xbar.Plug(rc.Top)
		xbar.Plug(rc.Bottom)
		dev.RemoteCache = rc
		remotePort = rc.Top
	}

	// CUs and their private L1 vector caches.
	cuConn := sim.NewDirectConnection(name+".cu", part, 1)
	l1cfg := cfg.L1
	l1cfg.Cacheable = func(addr uint64) bool { return p.Space.GPUOf(addr) == g }
	for i := 0; i < cfg.CUsPerGPU; i++ {
		l1 := cache.New(fmt.Sprintf("%s.L1_%d", name, i), part, p.Space, l1cfg)
		l1.RegisterMetrics(p.Metrics, fmt.Sprintf("%s/l1_%d", mpfx, i))
		l1.Router = func(addr uint64) *sim.Port {
			if p.Space.GPUOf(addr) == g {
				return dev.L2s[p.Space.ChannelOf(addr)].Top
			}
			return remotePort
		}
		xbar.Plug(l1.Bottom)
		cu := gpu.NewCU(fmt.Sprintf("%s.CU%d", name, i), part, cfg.CU)
		cu.RegisterMetrics(p.Metrics, fmt.Sprintf("%s/cu_%d", mpfx, i))
		cuConn.Plug(cu.ToL1)
		cuConn.Plug(l1.Top)
		cu.SetL1(l1.Top)
		dev.CUs = append(dev.CUs, cu)
		dev.L1s = append(dev.L1s, l1)
	}

	dev.CP = gpu.NewCommandProcessor(name+".CP", part, g)
	dev.CP.CUs = dev.CUs
	return dev
}

// enableGuard arms one RDMA engine's reliability protocol when the fault
// profile is on, and registers its guard counters under prefix.
func (p *Platform) enableGuard(e *rdma.Engine, prefix string) {
	if !p.cfg.Fault.Enabled() {
		return
	}
	e.Guard = &rdma.GuardConfig{
		TimeoutCycles: sim.Time(p.cfg.Fault.Timeout()),
		MaxAttempts:   p.cfg.Fault.Attempts(),
	}
	e.Spans = p.cfg.Spans
	e.RegisterGuardMetrics(p.Metrics, prefix)
}

// TotalCUs returns the number of CUs across all GPUs.
func (p *Platform) TotalCUs() int {
	n := 0
	for _, dev := range p.GPUs {
		n += len(dev.CUs)
	}
	return n
}

// ExecCycles returns the current simulated time, i.e. the execution time in
// cycles at 1 GHz.
func (p *Platform) ExecCycles() sim.Time { return p.Engine.Now() }
