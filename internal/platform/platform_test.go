package platform

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"mgpucompress/internal/comp"
	"mgpucompress/internal/core"
	"mgpucompress/internal/fabric"
	"mgpucompress/internal/gpu"
	"mgpucompress/internal/mem"
	"mgpucompress/internal/rdma"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.CUsPerGPU = 2
	return cfg
}

// copyKernel builds a kernel where each workgroup copies `lines` cache
// lines from src to dst, one wavefront per workgroup.
func copyKernel(src, dst mem.Buffer, lines, wgs int) *gpu.Kernel {
	perWG := lines / wgs
	return &gpu.Kernel{
		Name:          "copy",
		NumWorkgroups: wgs,
		Args:          make([]byte, 32),
		Program: func(wg int) [][]gpu.Op {
			var ops []gpu.Op
			for i := 0; i < perWG; i++ {
				line := wg*perWG + i
				off := uint64(line * mem.LineSize)
				srcAddr := src.Addr(off)
				dstAddr := dst.Addr(off)
				ops = append(ops, gpu.ReadOp{
					Addr: srcAddr,
					N:    mem.LineSize,
					Then: func(data []byte) []gpu.Op {
						return []gpu.Op{
							gpu.ComputeOp{Cycles: 4},
							gpu.WriteOp{Addr: dstAddr, Data: data},
						}
					},
				})
			}
			return [][]gpu.Op{ops}
		},
	}
}

func TestPlatformCopyKernelMovesDataCorrectly(t *testing.T) {
	p, _ := Build(testConfig())
	const lines = 64
	src := p.Space.AllocStriped(lines * mem.LineSize)
	dst := p.Space.AllocStriped(lines * mem.LineSize)
	want := make([]byte, lines*mem.LineSize)
	for i := range want {
		want[i] = byte(i * 7)
	}
	src.Write(0, want)

	if err := p.Driver.Launch(copyKernel(src, dst, lines, 8)); err != nil {
		t.Fatal(err)
	}
	got := dst.Read(0, len(want))
	if !bytes.Equal(got, want) {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("first mismatch at byte %d: got %d want %d", i, got[i], want[i])
			}
		}
	}
	if p.ExecCycles() == 0 {
		t.Error("kernel completed in zero time")
	}
}

func TestPlatformGeneratesRemoteTraffic(t *testing.T) {
	rec := &countingRecorder{}
	cfg := testConfig()
	cfg.NewRecorder = func(int) rdma.Recorder { return rec }
	p, _ := Build(cfg)
	const lines = 64
	src := p.Space.AllocStriped(lines * mem.LineSize)
	dst := p.Space.AllocStriped(lines * mem.LineSize)
	if err := p.Driver.Launch(copyKernel(src, dst, lines, 8)); err != nil {
		t.Fatal(err)
	}
	// With data striped across 4 GPUs and workgroups round-robin across
	// all CUs, roughly 3/4 of accesses are remote.
	if rec.reads == 0 || rec.writes == 0 {
		t.Errorf("no remote traffic recorded: %d reads, %d writes", rec.reads, rec.writes)
	}
	if p.Bus.TotalBytes() == 0 {
		t.Error("nothing crossed the fabric")
	}
	// Kernel args were written over the fabric too.
	if p.Driver.ArgBytesWritten == 0 {
		t.Error("no kernel-argument traffic")
	}
}

type countingRecorder struct {
	reads, writes, payloads int
}

func (r *countingRecorder) RemoteRead(int)                { r.reads++ }
func (r *countingRecorder) RemoteWrite(int)               { r.writes++ }
func (r *countingRecorder) Payload([]byte, core.Decision) { r.payloads++ }
func (r *countingRecorder) Header(int)                    {}

var _ rdma.Recorder = (*countingRecorder)(nil)

func TestPlatformCompressionReducesExecTimeOnCompressibleData(t *testing.T) {
	run := func(newPolicy func(int) core.Policy) (cycles, wireBytes uint64) {
		cfg := testConfig()
		cfg.NewPolicy = newPolicy
		p, _ := Build(cfg)
		const lines = 256
		src := p.Space.AllocStriped(lines * mem.LineSize)
		dst := p.Space.AllocStriped(lines * mem.LineSize)
		// Highly compressible content: small deltas around a base.
		data := make([]byte, lines*mem.LineSize)
		for i := 0; i < len(data); i += 8 {
			binary.LittleEndian.PutUint64(data[i:], 1<<40+uint64(i%256))
		}
		src.Write(0, data)
		if err := p.Driver.Launch(copyKernel(src, dst, lines, 16)); err != nil {
			t.Fatal(err)
		}
		if got := dst.Read(0, len(data)); !bytes.Equal(got, data) {
			t.Fatal("copy corrupted data")
		}
		return uint64(p.ExecCycles()), p.Bus.TotalBytes()
	}
	rawCycles, rawBytes := run(nil)
	bdiCycles, bdiBytes := run(func(int) core.Policy { return core.NewStatic(comp.BDI) })
	if bdiBytes >= rawBytes {
		t.Errorf("BDI bytes %d not below raw %d", bdiBytes, rawBytes)
	}
	if bdiCycles >= rawCycles {
		t.Errorf("BDI cycles %d not below raw %d on a fabric-bound workload", bdiCycles, rawCycles)
	}
}

func TestPlatformSequentialKernelLaunches(t *testing.T) {
	p, _ := Build(testConfig())
	const lines = 32
	a := p.Space.AllocStriped(lines * mem.LineSize)
	b := p.Space.AllocStriped(lines * mem.LineSize)
	c := p.Space.AllocStriped(lines * mem.LineSize)
	want := make([]byte, lines*mem.LineSize)
	for i := range want {
		want[i] = byte(255 - i%251)
	}
	a.Write(0, want)
	if err := p.Driver.Launch(copyKernel(a, b, lines, 4)); err != nil {
		t.Fatal(err)
	}
	t1 := p.ExecCycles()
	if err := p.Driver.Launch(copyKernel(b, c, lines, 4)); err != nil {
		t.Fatal(err)
	}
	if p.ExecCycles() <= t1 {
		t.Error("second kernel did not advance time")
	}
	if got := c.Read(0, len(want)); !bytes.Equal(got, want) {
		t.Error("chained kernels corrupted data")
	}
	if p.Driver.KernelsLaunched != 2 {
		t.Errorf("KernelsLaunched = %d", p.Driver.KernelsLaunched)
	}
}

func TestPlatformBarrierOrdersIntraWGPhases(t *testing.T) {
	p, _ := Build(testConfig())
	buf := p.Space.AllocOnGPU(0, mem.PageSize)
	// Wavefront 0 writes a value; after the barrier, wavefront 1 reads it
	// and stores a transformed copy. Without the barrier this would race.
	k := &gpu.Kernel{
		Name:          "barrier",
		NumWorkgroups: 1,
		Program: func(int) [][]gpu.Op {
			data := make([]byte, mem.LineSize)
			for i := range data {
				data[i] = 0xAB
			}
			w0 := []gpu.Op{
				gpu.ComputeOp{Cycles: 50},
				gpu.WriteOp{Addr: buf.Addr(0), Data: data},
				gpu.BarrierOp{},
			}
			w1 := []gpu.Op{
				gpu.BarrierOp{},
				gpu.ReadOp{Addr: buf.Addr(0), N: mem.LineSize, Then: func(d []byte) []gpu.Op {
					out := make([]byte, mem.LineSize)
					for i, v := range d {
						out[i] = v ^ 0xFF
					}
					return []gpu.Op{gpu.WriteOp{Addr: buf.Addr(mem.LineSize), Data: out}}
				}},
			}
			return [][]gpu.Op{w0, w1}
		},
	}
	if err := p.Driver.Launch(k); err != nil {
		t.Fatal(err)
	}
	got := buf.Read(mem.LineSize, mem.LineSize)
	for i, v := range got {
		if v != 0xAB^0xFF {
			t.Fatalf("byte %d = %#x: barrier did not order write before read", i, v)
		}
	}
}

func TestPlatformWorkgroupsSpreadAcrossAllGPUs(t *testing.T) {
	p, _ := Build(testConfig())
	buf := p.Space.AllocStriped(mem.PageSize * 8)
	k := &gpu.Kernel{
		Name:          "spread",
		NumWorkgroups: 32,
		Program: func(wg int) [][]gpu.Op {
			data := make([]byte, mem.LineSize)
			data[0] = byte(wg + 1)
			return [][]gpu.Op{{
				gpu.WriteOp{Addr: buf.Addr(uint64(wg) * mem.LineSize), Data: data},
			}}
		},
	}
	if err := p.Driver.Launch(k); err != nil {
		t.Fatal(err)
	}
	for wg := 0; wg < 32; wg++ {
		if got := buf.Read(uint64(wg)*mem.LineSize, 1)[0]; got != byte(wg+1) {
			t.Errorf("workgroup %d did not run (marker %d)", wg, got)
		}
	}
	// Every GPU must have retired some workgroups.
	for _, dev := range p.GPUs {
		retired := uint64(0)
		for _, cu := range dev.CUs {
			retired += cu.WGsRetired
		}
		if retired == 0 {
			t.Errorf("GPU %d retired no workgroups", dev.Index)
		}
	}
}

func TestPlatformL1CachingReducesSecondKernelTraffic(t *testing.T) {
	// Two identical read-only kernels on local data: within a kernel,
	// repeated reads of the same line hit L1.
	p, _ := Build(testConfig())
	buf := p.Space.AllocOnGPU(0, mem.PageSize)
	k := &gpu.Kernel{
		Name:          "reread",
		NumWorkgroups: 1,
		Program: func(int) [][]gpu.Op {
			var ops []gpu.Op
			for i := 0; i < 10; i++ {
				ops = append(ops, gpu.ReadOp{Addr: buf.Addr(0), N: mem.LineSize})
			}
			return [][]gpu.Op{ops}
		},
	}
	if err := p.Driver.Launch(k); err != nil {
		t.Fatal(err)
	}
	hits := uint64(0)
	for _, dev := range p.GPUs {
		for _, l1 := range dev.L1s {
			hits += l1.Hits
		}
	}
	if hits < 8 {
		t.Errorf("L1 hits = %d, want ≥8 for 10 reads of one line", hits)
	}
}

// The simulator must be fully deterministic: identical configurations give
// bit-identical cycle counts and traffic.
func TestPlatformDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		p, _ := Build(testConfig())
		const lines = 128
		src := p.Space.AllocStriped(lines * mem.LineSize)
		dst := p.Space.AllocStriped(lines * mem.LineSize)
		data := make([]byte, lines*mem.LineSize)
		for i := range data {
			data[i] = byte(i*13 + 7)
		}
		src.Write(0, data)
		if err := p.Driver.Launch(copyKernel(src, dst, lines, 16)); err != nil {
			t.Fatal(err)
		}
		return uint64(p.ExecCycles()), p.Bus.TotalBytes()
	}
	c1, b1 := run()
	c2, b2 := run()
	if c1 != c2 || b1 != b2 {
		t.Errorf("nondeterministic: run1 = (%d cy, %d B), run2 = (%d cy, %d B)", c1, b1, c2, b2)
	}
}

// Paper-scale smoke test: 4 GPUs × 64 CUs.
func TestPlatformFullScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale platform")
	}
	cfg := FullConfig()
	p, _ := Build(cfg)
	if p.TotalCUs() != 256 {
		t.Fatalf("TotalCUs = %d, want 256", p.TotalCUs())
	}
	const lines = 1024
	src := p.Space.AllocStriped(lines * mem.LineSize)
	dst := p.Space.AllocStriped(lines * mem.LineSize)
	data := make([]byte, lines*mem.LineSize)
	for i := range data {
		data[i] = byte(i % 251)
	}
	src.Write(0, data)
	if err := p.Driver.Launch(copyKernel(src, dst, lines, 256)); err != nil {
		t.Fatal(err)
	}
	if got := dst.Read(0, len(data)); !bytes.Equal(got, data) {
		t.Error("full-scale copy corrupted data")
	}
}

// The crossbar topology must run the same workloads correctly.
func TestPlatformCrossbarTopology(t *testing.T) {
	cfg := testConfig()
	cfg.Fabric.Topology = fabric.TopologyCrossbar
	p, _ := Build(cfg)
	const lines = 64
	src := p.Space.AllocStriped(lines * mem.LineSize)
	dst := p.Space.AllocStriped(lines * mem.LineSize)
	data := make([]byte, lines*mem.LineSize)
	for i := range data {
		data[i] = byte(i * 3)
	}
	src.Write(0, data)
	if err := p.Driver.Launch(copyKernel(src, dst, lines, 8)); err != nil {
		t.Fatal(err)
	}
	if got := dst.Read(0, len(data)); !bytes.Equal(got, data) {
		t.Error("crossbar copy corrupted data")
	}
	if p.Bus.TotalBytes() == 0 {
		t.Error("no crossbar traffic")
	}
}

// The remote-cache extension (Arunkumar et al.'s L1.5) must preserve
// correctness and absorb repeated remote reads.
func TestPlatformRemoteCacheExtension(t *testing.T) {
	cfg := testConfig()
	rc := RemoteCacheConfig()
	cfg.RemoteCache = &rc
	rec := &countingRecorder{}
	cfg.NewRecorder = func(int) rdma.Recorder { return rec }
	p, _ := Build(cfg)

	// A buffer on GPU 3, read repeatedly by workgroups running everywhere.
	buf := p.Space.AllocOnGPU(3, mem.PageSize)
	data := make([]byte, mem.LineSize)
	for i := range data {
		data[i] = byte(i)
	}
	buf.Write(0, data)
	k := &gpu.Kernel{
		Name: "reread-remote", NumWorkgroups: 16,
		Program: func(int) [][]gpu.Op {
			var ops []gpu.Op
			for i := 0; i < 8; i++ {
				ops = append(ops, gpu.ReadOp{Addr: buf.Addr(0), N: mem.LineSize})
			}
			return [][]gpu.Op{ops}
		},
	}
	if err := p.Driver.Launch(k); err != nil {
		t.Fatal(err)
	}
	// 16 WGs × 8 reads = 128 accesses; 12 WGs run on GPUs 0-2 (remote).
	// With the remote cache, each remote GPU fetches the line roughly once,
	// so far fewer than 96 remote reads cross the fabric.
	if rec.reads > 24 {
		t.Errorf("remote reads = %d; remote cache not absorbing re-reads", rec.reads)
	}
	hits := uint64(0)
	for _, dev := range p.GPUs {
		if dev.RemoteCache != nil {
			hits += dev.RemoteCache.Hits
		}
	}
	if hits == 0 {
		t.Error("remote cache recorded no hits")
	}
	// And the data read must still be correct end to end.
	got := p.Space.Read(buf.Addr(0), mem.LineSize)
	if !bytes.Equal(got, data) {
		t.Error("data corrupted")
	}
}

// All workload-style traffic must stay correct with the remote cache on.
func TestPlatformRemoteCacheCorrectness(t *testing.T) {
	cfg := testConfig()
	rc := RemoteCacheConfig()
	cfg.RemoteCache = &rc
	p, _ := Build(cfg)
	const lines = 64
	src := p.Space.AllocStriped(lines * mem.LineSize)
	dst := p.Space.AllocStriped(lines * mem.LineSize)
	want := make([]byte, lines*mem.LineSize)
	for i := range want {
		want[i] = byte(i*11 + 3)
	}
	src.Write(0, want)
	if err := p.Driver.Launch(copyKernel(src, dst, lines, 8)); err != nil {
		t.Fatal(err)
	}
	if got := dst.Read(0, len(want)); !bytes.Equal(got, want) {
		t.Error("copy corrupted with remote cache enabled")
	}
}

// Timing-model validation against an analytical bound: a fabric-saturating
// kernel cannot finish faster than total_bytes / bus_bandwidth, and a
// healthy simulator should land within a modest factor of that bound.
func TestPlatformExecTimeRespectsBandwidthBound(t *testing.T) {
	p, _ := Build(testConfig())
	const lines = 512
	src := p.Space.AllocStriped(lines * mem.LineSize)
	dst := p.Space.AllocStriped(lines * mem.LineSize)
	data := make([]byte, lines*mem.LineSize)
	for i := range data {
		data[i] = byte(i*7 + 1)
	}
	src.Write(0, data)
	if err := p.Driver.Launch(copyKernel(src, dst, lines, 32)); err != nil {
		t.Fatal(err)
	}
	bound := p.Bus.TotalBytes() / 20 // 20 B/cycle
	got := uint64(p.ExecCycles())
	if got < bound {
		t.Fatalf("exec %d cycles beats the bus bandwidth bound %d", got, bound)
	}
	if got > bound*3 {
		t.Errorf("exec %d cycles is %.1fx the bandwidth bound %d: fabric not the bottleneck?",
			got, float64(got)/float64(bound), bound)
	}
	// Sanity: a fabric-bound run keeps the bus busy most of the time.
	if u := p.Bus.Utilization(p.ExecCycles()); u < 0.5 {
		t.Errorf("bus utilization %.2f too low for a saturating kernel", u)
	}
}

func TestPlatformStatsReport(t *testing.T) {
	p, _ := Build(testConfig())
	const lines = 64
	src := p.Space.AllocStriped(lines * mem.LineSize)
	dst := p.Space.AllocStriped(lines * mem.LineSize)
	data := make([]byte, lines*mem.LineSize)
	for i := range data {
		data[i] = byte(i)
	}
	src.Write(0, data)
	if err := p.Driver.Launch(copyKernel(src, dst, lines, 8)); err != nil {
		t.Fatal(err)
	}
	s := p.CollectStats()
	if s.ExecCycles == 0 || s.WGsRetired != 8 {
		t.Errorf("stats = %+v", s)
	}
	if s.MemOpsIssued != 2*lines {
		t.Errorf("mem ops = %d, want %d", s.MemOpsIssued, 2*lines)
	}
	// Every remote read sent must have been served somewhere.
	if s.RDMAReadsSent != s.RDMAReadsServed {
		t.Errorf("reads sent %d != served %d", s.RDMAReadsSent, s.RDMAReadsServed)
	}
	if s.RDMAWritesSent != s.RDMAWritesServed {
		t.Errorf("writes sent %d != served %d", s.RDMAWritesSent, s.RDMAWritesServed)
	}
	// DRAM sees each line at least once (write-through).
	if s.DRAMWrites < lines {
		t.Errorf("DRAM writes = %d, want ≥%d", s.DRAMWrites, lines)
	}
	if s.FabricUtil <= 0 || s.FabricUtil > 1 {
		t.Errorf("fabric utilization = %v", s.FabricUtil)
	}
	out := s.String()
	for _, want := range []string{"L1:", "L2:", "DRAM:", "RDMA:", "fabric:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if s.L1HitRate() < 0 || s.L1HitRate() > 1 || s.L2HitRate() < 0 || s.L2HitRate() > 1 {
		t.Error("hit rates out of range")
	}
}
