package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mgpucompress/internal/comp"
)

func TestByteEntropyExtremes(t *testing.T) {
	zeros := make([]byte, 4096)
	if e := ByteEntropy(zeros); e != 0 {
		t.Errorf("entropy of zeros = %v, want 0", e)
	}
	uniform := make([]byte, 256*16)
	for i := range uniform {
		uniform[i] = byte(i % 256)
	}
	if e := ByteEntropy(uniform); math.Abs(e-1.0) > 1e-12 {
		t.Errorf("entropy of uniform bytes = %v, want 1", e)
	}
	if e := ByteEntropy(nil); e != 0 {
		t.Errorf("entropy of empty = %v, want 0", e)
	}
}

func TestByteEntropyTwoSymbols(t *testing.T) {
	// 50/50 two symbols: 1 bit per byte = 0.125 normalized.
	data := make([]byte, 1000)
	for i := range data {
		if i%2 == 0 {
			data[i] = 0xAA
		} else {
			data[i] = 0x55
		}
	}
	if e := ByteEntropy(data); math.Abs(e-0.125) > 1e-12 {
		t.Errorf("entropy = %v, want 0.125", e)
	}
}

func TestByteEntropyRandomIsHigh(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 64*1024)
	rng.Read(data)
	if e := ByteEntropy(data); e < 0.99 {
		t.Errorf("entropy of random data = %v, want ≈1", e)
	}
}

// Property: entropy is always in [0, 1] and invariant under permutation.
func TestByteEntropyBoundsProperty(t *testing.T) {
	f := func(data []byte) bool {
		e := ByteEntropy(data)
		if e < 0 || e > 1+1e-12 {
			return false
		}
		// reverse is a permutation
		rev := make([]byte, len(data))
		for i, b := range data {
			rev[len(data)-1-i] = b
		}
		return math.Abs(ByteEntropy(rev)-e) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTrafficAccounting(t *testing.T) {
	var tr Traffic
	line := make([]byte, comp.LineSize)
	tr.AddLine(line, 1, true)   // compressed to 1 byte
	tr.AddLine(line, 64, false) // raw
	if tr.Lines != 2 || tr.CompressedLines != 1 {
		t.Errorf("lines = %d/%d", tr.CompressedLines, tr.Lines)
	}
	if tr.UncompressedPayloadBytes != 128 || tr.PayloadBytes != 65 {
		t.Errorf("payload accounting = %d/%d", tr.PayloadBytes, tr.UncompressedPayloadBytes)
	}
	want := 128.0 / 65.0
	if math.Abs(tr.CompressionRatio()-want) > 1e-12 {
		t.Errorf("ratio = %v, want %v", tr.CompressionRatio(), want)
	}
	tr.HeaderBytes = 35
	if tr.TotalBytes() != 100 {
		t.Errorf("TotalBytes = %d, want 100", tr.TotalBytes())
	}
	if tr.MeanEntropy() != 0 {
		t.Errorf("mean entropy of zero lines = %v", tr.MeanEntropy())
	}
}

func TestTrafficEmptyRatio(t *testing.T) {
	var tr Traffic
	if tr.CompressionRatio() != 1 {
		t.Errorf("empty ratio = %v, want 1", tr.CompressionRatio())
	}
}

func TestSeriesCollectsUpToLimit(t *testing.T) {
	s := NewSeries(3)
	line := make([]byte, comp.LineSize)
	for i := 0; i < 5; i++ {
		s.Observe(line)
	}
	if len(s.Samples) != 3 || !s.Full() {
		t.Fatalf("collected %d samples, want 3", len(s.Samples))
	}
	smp := s.Samples[0]
	if smp.Entropy != 0 {
		t.Errorf("zero-line entropy = %v", smp.Entropy)
	}
	// A zero line compresses to 1 byte under every codec.
	for _, alg := range []comp.Algorithm{comp.FPC, comp.BDI, comp.CPackZ} {
		if smp.Size[alg] != 1 {
			t.Errorf("%v zero-line wire size = %d, want 1", alg, smp.Size[alg])
		}
	}
	if s.Samples[2].Index != 2 {
		t.Errorf("sample index = %d, want 2", s.Samples[2].Index)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Max() != 0 || h.Percentile(50) != 0 {
		t.Error("empty histogram should report zeros")
	}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Add(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 3 {
		t.Errorf("Mean = %v, want 3", h.Mean())
	}
	if h.Max() != 5 {
		t.Errorf("Max = %v, want 5", h.Max())
	}
	if p := h.Percentile(50); p != 3 {
		t.Errorf("P50 = %v, want 3", p)
	}
	if p := h.Percentile(100); p != 5 {
		t.Errorf("P100 = %v, want 5", p)
	}
	if p := h.Percentile(0); p != 1 {
		t.Errorf("P0 = %v, want 1", p)
	}
}

func TestFormatKilo(t *testing.T) {
	cases := []struct {
		n    uint64
		want string
	}{
		{0, "0"},
		{999, "0"},
		{49000, "49"},
		{3522000, "3,522"},
		{5464123, "5,464"},
	}
	for _, c := range cases {
		if got := FormatKilo(c.n); got != c.want {
			t.Errorf("FormatKilo(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestAggregateEntropyDiffersFromPerLine(t *testing.T) {
	// 64 lines, each filled with one distinct byte value: per-line entropy
	// is 0 but the aggregate distribution is uniform over 64 symbols
	// (6 bits/byte = 0.75 normalized). This is why Table V's AES entropy
	// (0.96) can exceed the per-line ceiling log2(64)/8.
	var tr Traffic
	for v := 0; v < 64; v++ {
		line := make([]byte, comp.LineSize)
		for i := range line {
			line[i] = byte(v)
		}
		tr.AddLine(line, comp.LineSize, false)
	}
	if m := tr.MeanEntropy(); m != 0 {
		t.Errorf("per-line mean entropy = %v, want 0", m)
	}
	if a := tr.Entropy(); math.Abs(a-0.75) > 1e-9 {
		t.Errorf("aggregate entropy = %v, want 0.75", a)
	}
}

func TestAggregateEntropyEmptyIsZero(t *testing.T) {
	var tr Traffic
	if tr.Entropy() != 0 {
		t.Error("empty aggregate entropy nonzero")
	}
}

func TestAggregateEntropyRandomNearOne(t *testing.T) {
	var tr Traffic
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1024; i++ {
		line := make([]byte, comp.LineSize)
		rng.Read(line)
		tr.AddLine(line, comp.LineSize, false)
	}
	if a := tr.Entropy(); a < 0.99 {
		t.Errorf("aggregate entropy of random lines = %v, want ≈1", a)
	}
	// Per-line mean is capped by the 64-byte window.
	if m := tr.MeanEntropy(); m > 0.75 {
		t.Errorf("per-line mean = %v exceeds the 64-byte ceiling", m)
	}
}
