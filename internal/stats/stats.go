// Package stats provides the measurement machinery behind the paper's
// characterization: byte-level Shannon entropy (Table V, Fig. 1), traffic
// counters, compression-ratio accounting, and time series of consecutive
// inter-GPU transfers.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"mgpucompress/internal/comp"
)

// ByteEntropy computes the Shannon entropy of data at byte granularity,
// normalized to [0, 1] (bits of entropy per byte, divided by 8). This is
// the entropy measure of Table V and Fig. 1b/1d.
func ByteEntropy(data []byte) float64 {
	if len(data) == 0 {
		return 0
	}
	var counts [256]int
	for _, b := range data {
		counts[b]++
	}
	n := float64(len(data))
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h / 8
}

// Traffic accumulates inter-GPU traffic for one simulation run.
type Traffic struct {
	// RemoteReads and RemoteWrites count remote line accesses (Table V
	// reports them in thousands).
	RemoteReads  uint64
	RemoteWrites uint64
	// HeaderBytes and PayloadBytes decompose the bytes that crossed the
	// fabric. UncompressedPayloadBytes is what the payload would have been
	// without compression; the traffic reduction of Fig. 5/6 follows.
	HeaderBytes              uint64
	PayloadBytes             uint64
	UncompressedPayloadBytes uint64
	// Messages counts fabric messages by header type.
	Messages uint64
	// EntropySum accumulates per-line entropy to report the average
	// (Fig. 1 granularity).
	EntropySum   float64
	EntropyLines uint64
	// ByteCounts is the aggregate byte histogram of all transferred
	// payloads; Table V's entropy column is computed from it. A 64-byte
	// line can expose at most log2(64)/8 = 0.75 of entropy on its own, so
	// per-line averaging cannot reach the paper's 0.96 for AES — the
	// aggregate distribution is the right granularity for Table V.
	ByteCounts [256]uint64
	// CompressedLines / Lines count payload-bearing transfers.
	Lines           uint64
	CompressedLines uint64
}

// AddLine records one payload-bearing transfer: the line's entropy, its raw
// size, and its on-wire size after policy processing.
func (t *Traffic) AddLine(line []byte, wireBytes int, compressed bool) {
	t.EntropySum += ByteEntropy(line)
	t.EntropyLines++
	for _, b := range line {
		t.ByteCounts[b]++
	}
	t.Lines++
	if compressed {
		t.CompressedLines++
	}
	t.UncompressedPayloadBytes += uint64(len(line))
	t.PayloadBytes += uint64(wireBytes)
}

// Merge folds o into t. The runner shards traffic accounting per
// compressing endpoint and merges the shards in unit order after the run;
// the fixed order makes the float EntropySum total deterministic for any
// degree of simulation parallelism.
func (t *Traffic) Merge(o *Traffic) {
	t.RemoteReads += o.RemoteReads
	t.RemoteWrites += o.RemoteWrites
	t.HeaderBytes += o.HeaderBytes
	t.PayloadBytes += o.PayloadBytes
	t.UncompressedPayloadBytes += o.UncompressedPayloadBytes
	t.Messages += o.Messages
	t.EntropySum += o.EntropySum
	t.EntropyLines += o.EntropyLines
	for i, c := range o.ByteCounts {
		t.ByteCounts[i] += c
	}
	t.Lines += o.Lines
	t.CompressedLines += o.CompressedLines
}

// MeanEntropy returns the average per-line byte entropy (the Fig. 1
// measure).
func (t *Traffic) MeanEntropy() float64 {
	if t.EntropyLines == 0 {
		return 0
	}
	return t.EntropySum / float64(t.EntropyLines)
}

// Entropy returns the normalized Shannon entropy of the aggregate byte
// distribution of everything transferred — the Table V measure.
func (t *Traffic) Entropy() float64 {
	var total uint64
	for _, c := range t.ByteCounts {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range t.ByteCounts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h / 8
}

// TotalBytes is everything that crossed the fabric.
func (t *Traffic) TotalBytes() uint64 { return t.HeaderBytes + t.PayloadBytes }

// CompressionRatio is uncompressed payload over compressed payload
// (Sec. IV-B definition).
func (t *Traffic) CompressionRatio() float64 {
	if t.PayloadBytes == 0 {
		return 1
	}
	return float64(t.UncompressedPayloadBytes) / float64(t.PayloadBytes)
}

// Sample is one point of the Fig. 1 time series: the entropy of one
// inter-GPU transfer and the per-codec compressed sizes in bytes.
type Sample struct {
	Index   int
	Entropy float64
	// Size holds the compressed size in bytes per algorithm.
	Size map[comp.Algorithm]int
}

// Series collects the first N payload transfers of a run, reproducing the
// "500 consecutive inter-GPU data accesses" of Fig. 1.
type Series struct {
	Limit   int
	Samples []Sample
	codecs  []comp.Compressor
}

// NewSeries collects up to limit samples.
func NewSeries(limit int) *Series {
	return &Series{Limit: limit, codecs: comp.AllCompressors()}
}

// Full reports whether the series reached its limit.
func (s *Series) Full() bool { return len(s.Samples) >= s.Limit }

// Observe adds one transfer to the series (no-op when full). Every codec is
// run on the line so the figure can compare them on identical data.
func (s *Series) Observe(line []byte) {
	if s.Full() {
		return
	}
	smp := Sample{
		Index:   len(s.Samples),
		Entropy: ByteEntropy(line),
		Size:    make(map[comp.Algorithm]int, len(s.codecs)),
	}
	for _, c := range s.codecs {
		// The figure only needs sizes, so the exact size-only estimator
		// avoids materializing a bitstream per codec per transfer.
		smp.Size[c.Algorithm()] = (c.CompressedBits(line) + 7) / 8
	}
	s.Samples = append(s.Samples, smp)
}

// Histogram is a simple named distribution used in reports.
type Histogram struct {
	values []float64
}

// Add appends a value.
func (h *Histogram) Add(v float64) { h.values = append(h.values, v) }

// Count returns the number of values.
func (h *Histogram) Count() int { return len(h.values) }

// Mean returns the arithmetic mean, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if len(h.values) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range h.values {
		s += v
	}
	return s / float64(len(h.values))
}

// Percentile returns the p-th percentile (0..100) by nearest-rank, or 0
// when empty.
func (h *Histogram) Percentile(p float64) float64 {
	if len(h.values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), h.values...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Merge appends all of o's values into h.
func (h *Histogram) Merge(o *Histogram) {
	h.values = append(h.values, o.values...)
}

// MarshalJSON encodes the histogram as its value slice so run metrics
// survive the sweep journal's JSON round trip.
func (h Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(h.values)
}

// UnmarshalJSON restores a histogram serialized by MarshalJSON.
func (h *Histogram) UnmarshalJSON(b []byte) error {
	return json.Unmarshal(b, &h.values)
}

// Max returns the maximum, or 0 when empty.
func (h *Histogram) Max() float64 {
	m := 0.0
	for i, v := range h.values {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum, or 0 when empty.
func (h *Histogram) Min() float64 {
	m := 0.0
	for i, v := range h.values {
		if i == 0 || v < m {
			m = v
		}
	}
	return m
}

// Sum returns the total of all values.
func (h *Histogram) Sum() float64 {
	s := 0.0
	for _, v := range h.values {
		s += v
	}
	return s
}

// FormatKilo renders a count the way Table V does (in thousands, with a
// thousands separator for readability).
func FormatKilo(n uint64) string {
	k := n / 1000
	if k >= 1000 {
		return fmt.Sprintf("%d,%03d", k/1000, k%1000)
	}
	return fmt.Sprintf("%d", k)
}
