// Package metrics is the unified observability layer of the simulator: a
// typed, allocation-light registry in which every component — the event
// engine, the fabric, caches, DRAM channels, RDMA engines, compression
// controllers — registers its counters under a hierarchical slash-separated
// path ("gpu1/l2_0/hits", "fabric/bytes", "ctrl3/sampling_rounds") at
// construction time.
//
// A Snapshot freezes every registered metric into a sorted, JSON-stable
// sample list. Because components register closures over the same counter
// fields they already maintain, a snapshot equals the hand-aggregated stats
// by construction — there is exactly one source of truth per counter, so
// the reporting layers (platform.Stats, runner.Result, sweep journals)
// cannot double count.
//
// Determinism contract: snapshots of equal simulations marshal to identical
// bytes. Sample order is the sorted path order (never map order), values
// are pure functions of the simulation, and the registry records no wall
// time.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
)

// Metric kinds as they appear in Sample.Kind.
const (
	KindCounter = "counter"
	KindGauge   = "gauge"
	KindDist    = "dist"
)

// Counter is a monotonically increasing count.
type Counter struct{ n uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.n += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Gauge is an instantaneous value.
type Gauge struct{ v float64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add adjusts the value by d.
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// DistValue is the frozen summary of a distribution.
type DistValue struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// Mean returns Sum/Count (0 when empty).
func (d DistValue) Mean() float64 {
	if d.Count == 0 {
		return 0
	}
	return d.Sum / float64(d.Count)
}

// Distribution accumulates observations into a constant-space summary.
type Distribution struct{ d DistValue }

// Observe folds one value in.
func (t *Distribution) Observe(v float64) {
	if t.d.Count == 0 || v < t.d.Min {
		t.d.Min = v
	}
	if t.d.Count == 0 || v > t.d.Max {
		t.d.Max = v
	}
	t.d.Count++
	t.d.Sum += v
}

// Value returns the current summary.
func (t *Distribution) Value() DistValue { return t.d }

// Sample is one metric frozen at snapshot time. For counters and gauges the
// measurement is Value; for distributions it is Dist (Value then carries the
// sum, so aggregation helpers work uniformly).
type Sample struct {
	Path  string     `json:"path"`
	Kind  string     `json:"kind"`
	Value float64    `json:"value"`
	Dist  *DistValue `json:"dist,omitempty"`
}

// Registry maps hierarchical paths to metrics. It is not safe for
// concurrent use: like the simulation engine, it belongs to a single
// simulation goroutine. The zero value is not usable; call NewRegistry.
type Registry struct {
	paths []string
	read  map[string]func() Sample
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{read: make(map[string]func() Sample)}
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int { return len(r.paths) }

func (r *Registry) register(p, kind string, read func() Sample) {
	if p == "" || strings.HasPrefix(p, "/") || strings.HasSuffix(p, "/") {
		panic(fmt.Sprintf("metrics: invalid path %q", p))
	}
	if _, dup := r.read[p]; dup {
		panic(fmt.Sprintf("metrics: duplicate path %q", p))
	}
	r.paths = append(r.paths, p)
	r.read[p] = read
}

// Counter registers and returns an owned counter at p.
func (r *Registry) Counter(p string) *Counter {
	c := &Counter{}
	r.CounterFunc(p, c.Value)
	return c
}

// CounterFunc registers a counter read through fn — the form components use
// to expose a counter field they already maintain, keeping one source of
// truth per count.
func (r *Registry) CounterFunc(p string, fn func() uint64) {
	r.register(p, KindCounter, func() Sample {
		return Sample{Path: p, Kind: KindCounter, Value: float64(fn())}
	})
}

// Gauge registers and returns an owned gauge at p.
func (r *Registry) Gauge(p string) *Gauge {
	g := &Gauge{}
	r.GaugeFunc(p, g.Value)
	return g
}

// GaugeFunc registers a gauge read through fn.
func (r *Registry) GaugeFunc(p string, fn func() float64) {
	r.register(p, KindGauge, func() Sample {
		return Sample{Path: p, Kind: KindGauge, Value: fn()}
	})
}

// Distribution registers and returns an owned distribution at p.
func (r *Registry) Distribution(p string) *Distribution {
	d := &Distribution{}
	r.DistributionFunc(p, d.Value)
	return d
}

// DistributionFunc registers a distribution read through fn.
func (r *Registry) DistributionFunc(p string, fn func() DistValue) {
	r.register(p, KindDist, func() Sample {
		d := fn()
		return Sample{Path: p, Kind: KindDist, Value: d.Sum, Dist: &d}
	})
}

// Snapshot freezes every metric into a path-sorted sample list.
func (r *Registry) Snapshot() Snapshot {
	paths := append([]string(nil), r.paths...)
	sort.Strings(paths)
	s := make(Snapshot, 0, len(paths))
	for _, p := range paths {
		s = append(s, r.read[p]())
	}
	return s
}

// Snapshot is a path-sorted, JSON-round-trippable view of a registry at one
// instant. Equal simulations produce byte-identical marshals regardless of
// worker count or scheduling.
type Snapshot []Sample

// Get returns the sample at path, if present.
func (s Snapshot) Get(path string) (Sample, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i].Path >= path })
	if i < len(s) && s[i].Path == path {
		return s[i], true
	}
	return Sample{}, false
}

// Value returns the measurement at path (0 when absent).
func (s Snapshot) Value(path string) float64 {
	smp, ok := s.Get(path)
	if !ok {
		return 0
	}
	return smp.Value
}

// match reports whether a sample path matches a slash-structured glob
// pattern ("gpu*/l1_*/hits"); a '*' never crosses a path separator.
func match(pattern, p string) bool {
	ok, err := path.Match(pattern, p)
	return err == nil && ok
}

// SumMatch sums the measurements of every sample whose path matches the
// glob pattern (for distributions, their sums).
func (s Snapshot) SumMatch(pattern string) float64 {
	total := 0.0
	for _, smp := range s {
		if match(pattern, smp.Path) {
			total += smp.Value
		}
	}
	return total
}

// CountMatch returns how many sample paths match the glob pattern.
func (s Snapshot) CountMatch(pattern string) int {
	n := 0
	for _, smp := range s {
		if match(pattern, smp.Path) {
			n++
		}
	}
	return n
}

// Diff returns the samples of s that are new or changed relative to prev —
// the incremental form a live stream sends per event instead of repeating
// the whole registry. Both snapshots must be path-sorted (as Registry
// produces them); the result preserves s's path order, so streaming a
// sequence of diffs is as deterministic as streaming the snapshots
// themselves. A metric absent from s but present in prev is simply omitted:
// registries only grow, so deletion does not occur in practice.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	var out Snapshot
	i := 0
	for _, smp := range s {
		for i < len(prev) && prev[i].Path < smp.Path {
			i++
		}
		if i < len(prev) && prev[i].Path == smp.Path && sampleEqual(prev[i], smp) {
			continue
		}
		out = append(out, smp)
	}
	return out
}

func sampleEqual(a, b Sample) bool {
	if a.Kind != b.Kind || a.Value != b.Value {
		return false
	}
	switch {
	case a.Dist == nil && b.Dist == nil:
		return true
	case a.Dist == nil || b.Dist == nil:
		return false
	default:
		return *a.Dist == *b.Dist
	}
}

// WriteJSON writes the snapshot as indented JSON with a trailing newline —
// the -metrics-out file format. The bytes are a pure function of the
// snapshot, so equal runs diff clean.
func (s Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}
