package metrics

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sort"
	"testing"
)

func TestCounterGaugeDistribution(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a/count")
	g := r.Gauge("a/gauge")
	d := r.Distribution("a/dist")

	c.Inc()
	c.Add(4)
	g.Set(2.5)
	for _, v := range []float64{3, 1, 2} {
		d.Observe(v)
	}

	s := r.Snapshot()
	if got := s.Value("a/count"); got != 5 {
		t.Errorf("counter = %v, want 5", got)
	}
	if got := s.Value("a/gauge"); got != 2.5 {
		t.Errorf("gauge = %v, want 2.5", got)
	}
	smp, ok := s.Get("a/dist")
	if !ok || smp.Dist == nil {
		t.Fatalf("missing dist sample: %+v", smp)
	}
	want := DistValue{Count: 3, Sum: 6, Min: 1, Max: 3}
	if *smp.Dist != want {
		t.Errorf("dist = %+v, want %+v", *smp.Dist, want)
	}
	if smp.Dist.Mean() != 2 {
		t.Errorf("mean = %v, want 2", smp.Dist.Mean())
	}
}

func TestFuncMetricsReadLive(t *testing.T) {
	r := NewRegistry()
	n := uint64(0)
	r.CounterFunc("live/count", func() uint64 { return n })
	r.GaugeFunc("live/gauge", func() float64 { return float64(n) * 0.5 })

	n = 8
	s := r.Snapshot()
	if got := s.Value("live/count"); got != 8 {
		t.Errorf("CounterFunc read %v, want 8 (must read the live variable)", got)
	}
	if got := s.Value("live/gauge"); got != 4 {
		t.Errorf("GaugeFunc read %v, want 4", got)
	}
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	for _, p := range []string{"z/last", "a/first", "m/mid", "a/second"} {
		r.Counter(p)
	}
	s := r.Snapshot()
	if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i].Path < s[j].Path }) {
		t.Errorf("snapshot not sorted by path: %+v", s)
	}
	if len(s) != 4 || r.Len() != 4 {
		t.Errorf("len = %d / %d, want 4", len(s), r.Len())
	}
}

func TestDuplicatePathPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("dup/path")
	r.Counter("dup/path")
}

func TestInvalidPathPanics(t *testing.T) {
	for _, p := range []string{"", "/lead", "trail/"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("path %q did not panic", p)
				}
			}()
			NewRegistry().Counter(p)
		}()
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("gpu0/l1_0/hits").Add(10)
	r.Gauge("fabric/util").Set(0.375)
	d := r.Distribution("gpu0/rdma/read_latency")
	d.Observe(100)
	d.Observe(260)

	s1 := r.Snapshot()
	b1, err := json.Marshal(s1)
	if err != nil {
		t.Fatal(err)
	}
	var s2 Snapshot
	if err := json.Unmarshal(b1, &s2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("round trip mismatch:\n  %+v\n  %+v", s1, s2)
	}
	b2, err := json.Marshal(s2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("re-marshal differs:\n  %s\n  %s", b1, b2)
	}

	var buf1, buf2 bytes.Buffer
	if err := s1.WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Error("WriteJSON is not deterministic across snapshots of the same state")
	}
}

func TestMatchHelpers(t *testing.T) {
	r := NewRegistry()
	r.Counter("gpu0/l1_0/hits").Add(1)
	r.Counter("gpu0/l1_1/hits").Add(2)
	r.Counter("gpu1/l1_0/hits").Add(4)
	r.Counter("gpu0/l15/hits").Add(100) // remote cache: must not match l1_*
	r.Counter("gpu0/l2_0/hits").Add(200)
	s := r.Snapshot()

	if got := s.SumMatch("gpu*/l1_*/hits"); got != 7 {
		t.Errorf("SumMatch(l1) = %v, want 7", got)
	}
	if got := s.CountMatch("gpu*/l1_*/hits"); got != 3 {
		t.Errorf("CountMatch(l1) = %v, want 3", got)
	}
	if got := s.SumMatch("gpu*/l15/hits"); got != 100 {
		t.Errorf("SumMatch(l15) = %v, want 100", got)
	}
	if got := s.SumMatch("nothing/*"); got != 0 {
		t.Errorf("SumMatch(none) = %v, want 0", got)
	}
	if _, ok := s.Get("gpu0/l1_0/hits"); !ok {
		t.Error("Get missed an existing path")
	}
	if _, ok := s.Get("absent"); ok {
		t.Error("Get found an absent path")
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("serve/jobs_ok")
	b := r.Counter("serve/jobs_failed")
	d := r.Distribution("serve/job_ticks")
	a.Inc()
	d.Observe(3)
	prev := r.Snapshot()

	// Nothing changed: the diff is empty.
	if diff := r.Snapshot().Diff(prev); len(diff) != 0 {
		t.Fatalf("no-change Diff = %+v, want empty", diff)
	}

	a.Inc()
	d.Observe(5)
	_ = b // unchanged counter must not appear
	diff := r.Snapshot().Diff(prev)
	if len(diff) != 2 {
		t.Fatalf("Diff has %d samples, want 2: %+v", len(diff), diff)
	}
	if diff[0].Path != "serve/job_ticks" || diff[1].Path != "serve/jobs_ok" {
		t.Fatalf("Diff paths = %q, %q; want path order preserved", diff[0].Path, diff[1].Path)
	}
	if diff[1].Value != 2 {
		t.Fatalf("diffed counter value = %v, want 2", diff[1].Value)
	}
	if diff[0].Dist == nil || diff[0].Dist.Count != 2 || diff[0].Dist.Sum != 8 {
		t.Fatalf("diffed dist = %+v, want count 2 sum 8", diff[0].Dist)
	}

	// A diff against an empty snapshot is the full snapshot (first event).
	if full := r.Snapshot().Diff(nil); len(full) != r.Len() {
		t.Fatalf("Diff(nil) has %d samples, want %d", len(full), r.Len())
	}
}
