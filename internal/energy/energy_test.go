package energy

import (
	"math"
	"testing"

	"mgpucompress/internal/comp"
)

func TestLinkClassPJPerBitOrdering(t *testing.T) {
	// Sec. II: energy per bit rises with integration distance.
	classes := []LinkClass{OnChip, MCM, Board, Node}
	for i := 1; i < len(classes); i++ {
		if classes[i].PJPerBit() <= classes[i-1].PJPerBit() {
			t.Errorf("%v (%v pJ/b) should cost more than %v (%v pJ/b)",
				classes[i], classes[i].PJPerBit(), classes[i-1], classes[i-1].PJPerBit())
		}
	}
	if MCM.PJPerBit() < 1 || MCM.PJPerBit() > 2 {
		t.Errorf("MCM pJ/b = %v, want within the paper's 1-2 range", MCM.PJPerBit())
	}
	if Node.PJPerBit() != 250 {
		t.Errorf("Node pJ/b = %v, want 250", Node.PJPerBit())
	}
}

func TestMeterAccumulates(t *testing.T) {
	m := NewMeter(MCM)
	m.AddTransfer(64) // 512 bits × 1.5 pJ/b = 768 pJ
	if math.Abs(m.FabricPJ-768) > 1e-9 {
		t.Errorf("FabricPJ = %v, want 768", m.FabricPJ)
	}
	m.AddCodec(36.9)
	m.AddCodec(1.3)
	if math.Abs(m.CodecPJ-38.2) > 1e-9 {
		t.Errorf("CodecPJ = %v, want 38.2", m.CodecPJ)
	}
	if math.Abs(m.TotalPJ()-(768+38.2)) > 1e-9 {
		t.Errorf("TotalPJ = %v", m.TotalPJ())
	}
}

func TestCodecEnergyNegligibleVsBoardTransfer(t *testing.T) {
	// Sec. VII-B: 1.3-40 pJ per block is negligible against the ~10 pJ/b
	// board-level transfer cost of a 512-bit block (≈5120 pJ).
	transfer := 512 * Board.PJPerBit()
	for _, c := range comp.AllCompressors() {
		if e := c.Cost().BlockEnergyPJ(); e > transfer/100 {
			t.Errorf("%v block energy %v pJ not negligible vs %v pJ transfer",
				c.Algorithm(), e, transfer)
		}
	}
}

func TestAreaOverheadPercentSecVIIC(t *testing.T) {
	// Sec. VII-C: BDI 4.35e-4 %, C-Pack+Z 2.06e-3 %, FPC 1.19e-2 %.
	cases := []struct {
		alg  comp.Algorithm
		want float64
	}{
		{comp.BDI, 4.35e-4},
		{comp.CPackZ, 2.06e-3},
		{comp.FPC, 1.19e-2},
	}
	for _, c := range cases {
		got := AreaOverheadPercent(c.alg)
		if math.Abs(got-c.want)/c.want > 0.02 { // within 2 %
			t.Errorf("AreaOverheadPercent(%v) = %.3e, want %.3e", c.alg, got, c.want)
		}
	}
}

func TestLinkClassString(t *testing.T) {
	if OnChip.String() == "" || MCM.String() == "" || Board.String() == "" || Node.String() == "" {
		t.Error("link classes must have names")
	}
	if LinkClass(99).String() != "unknown" {
		t.Error("unknown link class")
	}
}
