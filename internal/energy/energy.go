// Package energy models the energy consumption of the inter-GPU
// communication fabric and the compression hardware (Sec. VII-B), plus the
// 7 nm area-overhead arithmetic of Sec. VII-C.
package energy

import "mgpucompress/internal/comp"

// LinkClass categorizes the fabric by integration level (Sec. II).
type LinkClass int

// The four integration levels the paper discusses.
const (
	OnChip LinkClass = iota
	MCM              // inter-die, on-package
	Board            // inter-package / board / socket (NVLink, PCIe)
	Node             // inter-system (InfiniBand)
)

// String names the link class.
func (c LinkClass) String() string {
	switch c {
	case OnChip:
		return "on-chip"
	case MCM:
		return "MCM (inter-die)"
	case Board:
		return "board (inter-package)"
	case Node:
		return "node (inter-system)"
	default:
		return "unknown"
	}
}

// PJPerBit returns the transfer energy per bit for the link class, using
// the midpoints of the ranges quoted in Sec. II: MCM 1-2 pJ/b, board
// 10-12 pJ/b, node ≈250 pJ/b. The paper's Fig. 7 uses the MCM class.
func (c LinkClass) PJPerBit() float64 {
	switch c {
	case OnChip:
		return 0.1
	case MCM:
		return 1.5
	case Board:
		return 11
	case Node:
		return 250
	default:
		return 0
	}
}

// Meter accumulates the two energy components of Fig. 7: fabric transfer
// energy (signal toggles, proportional to bits moved) and the energy of the
// compressor/decompressor circuits.
type Meter struct {
	Link LinkClass
	// FabricPJ is the accumulated link transfer energy in pJ.
	FabricPJ float64
	// CodecPJ is the accumulated compression hardware energy in pJ.
	CodecPJ float64
}

// NewMeter creates a meter for the given link class.
func NewMeter(link LinkClass) *Meter { return &Meter{Link: link} }

// AddTransfer charges the fabric energy for n bytes on the wire.
func (m *Meter) AddTransfer(n int) {
	m.FabricPJ += float64(n*8) * m.Link.PJPerBit()
}

// AddCodec charges compression-hardware energy in pJ.
func (m *Meter) AddCodec(pj float64) { m.CodecPJ += pj }

// TotalPJ is the combined fabric + codec energy.
func (m *Meter) TotalPJ() float64 { return m.FabricPJ + m.CodecPJ }

// R9Nano7nmAreaMM2 is the paper's estimate of an R9 Nano die shrunk to
// 7 nm (Sec. VII-C).
const R9Nano7nmAreaMM2 = 37.25

// AreaOverheadPercent reproduces the Sec. VII-C calculation: the
// compressor+decompressor area of alg as a percentage of the 7 nm R9 Nano
// die.
func AreaOverheadPercent(alg comp.Algorithm) float64 {
	areaMM2 := comp.CostOf(alg).AreaUM2 / 1e6
	return areaMM2 / R9Nano7nmAreaMM2 * 100
}
