package sweep

import (
	"strings"
	"testing"
)

func TestCanonicalFixedOrder(t *testing.T) {
	k := JobKey{Workload: "SC", Policy: "adaptive", Lambda: 0.5, Scale: 4}
	want := "wl=SC|pol=adaptive|lam=0.5|scale=4|cus=0|gpus=0|topo=|link=0" +
		"|rc=false|bpc=0|char=false|series=0|samp=0|runlen=0"
	if got := k.Canonical(); got != want {
		t.Fatalf("Canonical() = %q, want %q", got, want)
	}
	k.Candidates = []string{"FPC", "BDI"}
	if got := k.Canonical(); !strings.HasSuffix(got, "|cand=FPC,BDI") {
		t.Fatalf("Canonical() with candidates = %q, want |cand= suffix", got)
	}
}

func TestFingerprintStableAndDiscriminating(t *testing.T) {
	a := JobKey{Workload: "SC", Policy: "bdi", Scale: 4}
	b := JobKey{Workload: "SC", Policy: "bdi", Scale: 4}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("equal keys must share a fingerprint")
	}
	if len(a.Fingerprint()) != 16 {
		t.Fatalf("fingerprint %q is not 16 hex chars", a.Fingerprint())
	}
	variants := []JobKey{
		{Workload: "FIR", Policy: "bdi", Scale: 4},
		{Workload: "SC", Policy: "fpc", Scale: 4},
		{Workload: "SC", Policy: "bdi", Scale: 8},
		{Workload: "SC", Policy: "bdi", Scale: 4, Characterize: true},
		{Workload: "SC", Policy: "bdi", Scale: 4, RemoteCache: true},
		{Workload: "SC", Policy: "bdi", Scale: 4, Candidates: []string{"FPC"}},
	}
	seen := map[string]string{a.Fingerprint(): a.Canonical()}
	for _, v := range variants {
		fp := v.Fingerprint()
		if prev, ok := seen[fp]; ok {
			t.Errorf("fingerprint collision: %q vs %q", prev, v.Canonical())
		}
		seen[fp] = v.Canonical()
	}
}

func TestSeedDeterministicAndDomainSeparated(t *testing.T) {
	k := JobKey{Workload: "MT", Policy: "adaptive", Lambda: 1}
	if k.Seed() != k.Seed() {
		t.Fatal("Seed must be deterministic")
	}
	if k.Seed() < 0 {
		t.Fatalf("Seed() = %d, want non-negative", k.Seed())
	}
	other := JobKey{Workload: "MT", Policy: "adaptive", Lambda: 2}
	if k.Seed() == other.Seed() {
		t.Fatal("distinct keys should get distinct seeds")
	}
}

func TestDedupPreservesFirstOccurrenceOrder(t *testing.T) {
	a := JobKey{Workload: "A"}
	b := JobKey{Workload: "B"}
	c := JobKey{Workload: "C"}
	got := Dedup([]JobKey{a, b, a, c, b, a})
	if len(got) != 3 {
		t.Fatalf("Dedup kept %d keys, want 3", len(got))
	}
	for i, want := range []string{"A", "B", "C"} {
		if got[i].Workload != want {
			t.Errorf("Dedup[%d].Workload = %q, want %q", i, got[i].Workload, want)
		}
	}
}

func TestSortCanonical(t *testing.T) {
	keys := []JobKey{{Workload: "MT"}, {Workload: "AES"}, {Workload: "FIR"}}
	SortCanonical(keys)
	for i := 1; i < len(keys); i++ {
		if keys[i-1].Canonical() >= keys[i].Canonical() {
			t.Fatalf("keys not sorted at %d: %q >= %q", i,
				keys[i-1].Canonical(), keys[i].Canonical())
		}
	}
}

func TestStringAbbreviation(t *testing.T) {
	k := JobKey{Workload: "SC", Policy: "none"}
	if got := k.String(); got != "SC" {
		t.Fatalf("baseline String() = %q, want %q", got, "SC")
	}
	k = JobKey{Workload: "SC", Policy: "adaptive", Lambda: 0.5, SampleCount: 7, RunLength: 300}
	s := k.String()
	for _, want := range []string{"SC", "adaptive", "0.5", "geom=7/300"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}
