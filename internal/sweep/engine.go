package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Config parameterizes an Engine.
type Config[R any] struct {
	// Workers bounds the number of jobs simulating concurrently
	// (default GOMAXPROCS; 1 = serial).
	Workers int
	// Run executes one job. It must be safe for concurrent use and
	// deterministic in the key (use JobKey.Seed for any randomness).
	Run func(JobKey) (R, error)
	// Journal, when non-nil, receives one JSONL record per completed job.
	// Writes are serialized; the caller owns the writer's lifetime.
	//
	// Durability policy: each record is written in a single Write call and,
	// when the writer implements Flusher (a *bufio.Writer around a file),
	// flushed to the OS before the job is reported complete — killing the
	// process (SIGKILL included) can truncate at most the record being
	// written, never lose an already-completed line, and Resume tolerates a
	// truncated tail. The engine does not fsync: an OS or power crash may
	// drop the tail of the file, which resuming repairs by re-running the
	// missing jobs.
	Journal io.Writer
	// OnProgress, when non-nil, is called with a stats snapshot after every
	// job completes (from the completing worker's goroutine, serialized).
	OnProgress func(Progress)
}

// Progress is a snapshot of the engine's counters.
type Progress struct {
	// Scheduled counts unique jobs entered into the engine (simulated,
	// resumed, or in flight). Completed counts those finished.
	Scheduled int
	Completed int
	// Simulated jobs actually ran; CacheHits were served from a completed
	// or in-flight entry; Resumed were preloaded from a journal.
	Simulated int
	CacheHits int
	Resumed   int
	// Failed counts jobs whose Run returned an error.
	Failed int
	// Elapsed is the wall time since the engine was created.
	Elapsed time.Duration
}

// String renders the counters the way progress lines print them. Failed
// jobs appear only when there are any, so the historical format (which
// predates the counter) stays byte-stable for clean sweeps.
func (p Progress) String() string {
	s := fmt.Sprintf("%d/%d jobs (%d simulated, %d cache hits, %d resumed",
		p.Completed, p.Scheduled, p.Simulated, p.CacheHits, p.Resumed)
	if p.Failed > 0 {
		s += fmt.Sprintf(", %d failed", p.Failed)
	}
	return s + fmt.Sprintf(") in %s", p.Elapsed.Round(time.Millisecond))
}

// Record is one line of the JSONL journal.
type Record struct {
	Fingerprint string          `json:"fingerprint"`
	Seed        int64           `json:"seed"`
	Key         JobKey          `json:"key"`
	Result      json.RawMessage `json:"result"`
}

// job is one cache entry; done is closed once res/err are final.
type job[R any] struct {
	done chan struct{}
	key  JobKey
	res  R
	err  error
}

// CompletedJob pairs a finished job's key with its result, for callers that
// want to walk everything the engine has produced (metrics export, audits).
type CompletedJob[R any] struct {
	Key    JobKey
	Result R
}

// Engine schedules jobs across a worker pool with a fingerprint-keyed memo
// cache and an optional resumable JSONL journal. All methods are safe for
// concurrent use.
type Engine[R any] struct {
	run        func(JobKey) (R, error)
	sem        chan struct{}
	journal    io.Writer
	journalMu  sync.Mutex
	onProgress func(Progress)

	mu    sync.Mutex
	jobs  map[string]*job[R]
	stats Progress
	start time.Time
}

// New builds an engine. Config.Run is required.
func New[R any](cfg Config[R]) *Engine[R] {
	if cfg.Run == nil {
		panic("sweep: Config.Run is required")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine[R]{
		run:        cfg.Run,
		sem:        make(chan struct{}, workers),
		journal:    cfg.Journal,
		onProgress: cfg.OnProgress,
		jobs:       make(map[string]*job[R]),
		start:      time.Now(),
	}
}

// Get returns the result for the key, running it at most once per process:
// concurrent callers of the same fingerprint share one execution, and later
// callers are served from the cache.
func (e *Engine[R]) Get(key JobKey) (R, error) {
	fp := key.Fingerprint()
	e.mu.Lock()
	if j, ok := e.jobs[fp]; ok {
		e.stats.CacheHits++
		e.mu.Unlock()
		<-j.done
		return j.res, j.err
	}
	j := &job[R]{done: make(chan struct{}), key: key}
	e.jobs[fp] = j
	e.stats.Scheduled++
	e.mu.Unlock()

	e.sem <- struct{}{}
	j.res, j.err = e.run(key)
	<-e.sem

	if j.err == nil && e.journal != nil {
		if werr := e.writeRecord(fp, key, j.res); werr != nil {
			// A journal failure must not corrupt the in-memory result, but
			// silently losing resumability would be worse: fail the job.
			j.err = fmt.Errorf("sweep: journal %s: %w", fp, werr)
		}
	}

	e.mu.Lock()
	e.stats.Completed++
	if j.err != nil {
		e.stats.Failed++
	} else {
		e.stats.Simulated++
	}
	snap := e.snapshotLocked()
	e.mu.Unlock()
	close(j.done)
	if e.onProgress != nil {
		e.onProgress(snap)
	}
	return j.res, j.err
}

// GetAll fans the keys out across the worker pool and returns their results
// in key order (the determinism contract: assembly order never depends on
// scheduling). The first error in key order is returned after every job has
// settled; duplicate keys are served by the cache.
func (e *Engine[R]) GetAll(keys []JobKey) ([]R, error) {
	out := make([]R, len(keys))
	errs := make([]error, len(keys))
	var wg sync.WaitGroup
	for i, k := range keys {
		wg.Add(1)
		go func(i int, k JobKey) {
			defer wg.Done()
			out[i], errs[i] = e.Get(k)
		}(i, k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Prefetch is GetAll for its cache side effect only.
func (e *Engine[R]) Prefetch(keys []JobKey) error {
	_, err := e.GetAll(keys)
	return err
}

// Completed returns every successfully finished job, sorted by the key's
// canonical form so the listing is independent of scheduling order. Jobs
// still in flight and jobs that failed are omitted.
func (e *Engine[R]) Completed() []CompletedJob[R] {
	e.mu.Lock()
	fps := make([]string, 0, len(e.jobs))
	for fp := range e.jobs {
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	jobs := make([]*job[R], 0, len(fps))
	for _, fp := range fps {
		jobs = append(jobs, e.jobs[fp])
	}
	e.mu.Unlock()
	out := make([]CompletedJob[R], 0, len(jobs))
	for _, j := range jobs {
		select {
		case <-j.done:
			if j.err == nil {
				out = append(out, CompletedJob[R]{Key: j.key, Result: j.res})
			}
		default: // still running
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Key.Canonical() < out[j].Key.Canonical()
	})
	return out
}

// JobState describes one cache entry as seen by Lookup.
type JobState[R any] struct {
	Key JobKey
	// Done reports whether the job has settled; Result and Err are only
	// meaningful when it has.
	Done   bool
	Result R
	Err    error
}

// Lookup reports the state of the fingerprint's cache entry without
// scheduling anything: the second return is false when the engine has never
// seen the fingerprint. This is the service-layer hook behind
// GET /v1/jobs/{fingerprint} — a read-only probe that distinguishes
// "unknown", "in flight", and "settled" without triggering a simulation.
func (e *Engine[R]) Lookup(fingerprint string) (JobState[R], bool) {
	e.mu.Lock()
	j, ok := e.jobs[fingerprint]
	e.mu.Unlock()
	if !ok {
		return JobState[R]{}, false
	}
	st := JobState[R]{Key: j.key}
	select {
	case <-j.done:
		st.Done, st.Result, st.Err = true, j.res, j.err
	default: // still running
	}
	return st, true
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine[R]) Stats() Progress {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.snapshotLocked()
}

func (e *Engine[R]) snapshotLocked() Progress {
	p := e.stats
	p.Elapsed = time.Since(e.start)
	return p
}

func (e *Engine[R]) writeRecord(fp string, key JobKey, res R) error {
	payload, err := json.Marshal(res)
	if err != nil {
		return err
	}
	line, err := json.Marshal(Record{
		Fingerprint: fp,
		Seed:        key.Seed(),
		Key:         key,
		Result:      payload,
	})
	if err != nil {
		return err
	}
	e.journalMu.Lock()
	defer e.journalMu.Unlock()
	if _, err := e.journal.Write(append(line, '\n')); err != nil {
		return err
	}
	if f, ok := e.journal.(Flusher); ok {
		return f.Flush()
	}
	return nil
}

// Flusher is the subset of bufio.Writer the engine uses to push buffered
// journal bytes to the OS after every record (see Config.Journal).
type Flusher interface{ Flush() error }

// maxRecordBytes bounds one journal line; a Fig. 1 series with 500 samples
// marshals well under this.
const maxRecordBytes = 64 << 20

// Resume replays a JSONL journal into the cache: every intact record
// becomes a completed entry, so a subsequent Get of the same fingerprint is
// served without re-running. Corrupt or truncated lines — the tail of a
// killed sweep — are skipped, not fatal. Returns the number of jobs loaded.
func (e *Engine[R]) Resume(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), maxRecordBytes)
	loaded := 0
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue // partial tail line from an interrupted run
		}
		// Distrust the stored fingerprint: recompute from the key so a
		// journal written by an older key schema cannot poison the cache.
		fp := rec.Key.Fingerprint()
		if rec.Fingerprint != fp {
			continue
		}
		var res R
		if err := json.Unmarshal(rec.Result, &res); err != nil {
			continue
		}
		j := &job[R]{done: make(chan struct{}), key: rec.Key, res: res}
		close(j.done)
		e.mu.Lock()
		if _, ok := e.jobs[fp]; !ok {
			e.jobs[fp] = j
			e.stats.Scheduled++
			e.stats.Completed++
			e.stats.Resumed++
			loaded++
		}
		e.mu.Unlock()
	}
	return loaded, sc.Err()
}
