// Package sweep is the experiment-orchestration engine: it schedules
// simulation jobs across a bounded worker pool, memoizes results by job
// fingerprint so shared runs are simulated exactly once per process, and
// streams completed results to a JSONL journal so an interrupted sweep can
// be resumed by replaying the file.
//
// The engine is deliberately simulator-agnostic: it knows nothing about the
// runner or the platform. A job is identified by a canonical JobKey; what a
// job *does* is an injected function, and the result type is a type
// parameter. internal/runner provides the binding to the simulator.
//
// Determinism contract: the engine never reorders results — fan-out calls
// return results in the caller's key order — and every job derives its seed
// from its fingerprint, so a 1-worker sweep and a 16-worker sweep produce
// identical artifacts.
package sweep

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// JobKey canonically identifies one simulation run. The zero value of every
// field means "the paper's default"; keys should be normalized by the layer
// that constructs them (e.g. policy "" vs "none") so that equal runs hash
// equally.
type JobKey struct {
	// Workload is the Table IV benchmark abbreviation (AES, BS, ...).
	Workload string `json:"workload"`
	// Policy is the compression policy spec ("none", "fpc", "bdi",
	// "cpackz", "adaptive", "dynamic").
	Policy string `json:"policy,omitempty"`
	// Lambda is the adaptive λ of Eq. (1).
	Lambda float64 `json:"lambda,omitempty"`
	// Scale is the workload input scale.
	Scale int `json:"scale,omitempty"`
	// CUsPerGPU overrides the platform CU count (0 = default).
	CUsPerGPU int `json:"cus,omitempty"`
	// NumGPUs overrides the GPU count (0 = the paper's 4).
	NumGPUs int `json:"gpus,omitempty"`
	// Topology selects the fabric implementation ("" = shared bus).
	Topology string `json:"topology,omitempty"`
	// Link is the fabric energy class (energy.LinkClass ordinal; 0 = MCM
	// default).
	Link int `json:"link,omitempty"`
	// RemoteCache enables the L1.5 remote-data cache extension.
	RemoteCache bool `json:"remote_cache,omitempty"`
	// FabricBytesPerCycle overrides the link width (0 = 20 B/cycle).
	FabricBytesPerCycle int `json:"fabric_bpc,omitempty"`
	// Characterize runs every codec on every transferred line (Tables V/VI).
	Characterize bool `json:"characterize,omitempty"`
	// SeriesLimit collects the first N transfers as a Fig. 1 series.
	SeriesLimit int `json:"series_limit,omitempty"`

	// SampleCount, RunLength and Candidates select a custom adaptive
	// controller configuration (ablations). Candidates are algorithm names
	// in canonical order; empty means the paper's candidate set.
	SampleCount int      `json:"sample_count,omitempty"`
	RunLength   int      `json:"run_length,omitempty"`
	Candidates  []string `json:"candidates,omitempty"`

	// SeedOverride pins the job's seed instead of deriving it from the
	// fingerprint (0 = derive). It participates in the canonical form only
	// when set, so keys predating the field keep their fingerprints.
	SeedOverride int64 `json:"seed_override,omitempty"`

	// FaultProfile is the canonical fault-injection profile string
	// (fault.Profile.Canonical(); "" = no injection). Like SeedOverride it
	// joins the canonical form only when set, preserving pre-existing
	// fingerprints for fault-free jobs.
	FaultProfile string `json:"fault_profile,omitempty"`

	// SimCores is the engine worker count for the conservative parallel
	// simulation core (0/1 = serial). It is an execution knob, not part of
	// the job's identity: results are byte-identical for any value, so it is
	// deliberately EXCLUDED from Canonical and Fingerprint — a serial journal
	// resumes a parallel sweep and vice versa. The JSON tag still carries it
	// to a sweepd daemon so remote execution honors the caller's setting.
	SimCores int `json:"sim_cores,omitempty"`
}

// Canonical returns the canonical textual form of the key: every field in a
// fixed order, independent of how the key was built. It is the preimage of
// Fingerprint and doubles as a human-readable job description.
func (k JobKey) Canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "wl=%s|pol=%s|lam=%g|scale=%d|cus=%d|gpus=%d|topo=%s|link=%d",
		k.Workload, k.Policy, k.Lambda, k.Scale, k.CUsPerGPU, k.NumGPUs, k.Topology, k.Link)
	fmt.Fprintf(&b, "|rc=%t|bpc=%d|char=%t|series=%d|samp=%d|runlen=%d",
		k.RemoteCache, k.FabricBytesPerCycle, k.Characterize, k.SeriesLimit,
		k.SampleCount, k.RunLength)
	if len(k.Candidates) > 0 {
		b.WriteString("|cand=")
		b.WriteString(strings.Join(k.Candidates, ","))
	}
	if k.SeedOverride != 0 {
		fmt.Fprintf(&b, "|seed=%d", k.SeedOverride)
	}
	if k.FaultProfile != "" {
		fmt.Fprintf(&b, "|fault=%s", k.FaultProfile)
	}
	return b.String()
}

// Fingerprint returns the 64-bit FNV-1a hash of the canonical form as fixed
// width hex. It is the cache key, the journal correlation ID, and the basis
// of the per-job seed.
func (k JobKey) Fingerprint() string {
	h := fnv.New64a()
	h.Write([]byte(k.Canonical()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// Seed derives the deterministic per-job seed from the fingerprint. Two
// sweeps — or two shards of one sweep on different machines — always hand a
// given job the same seed, so stochastic components reproduce regardless of
// scheduling. The seed basis is domain-separated from Fingerprint so the
// two values are not trivially equal. A SeedOverride short-circuits the
// derivation.
func (k JobKey) Seed() int64 {
	if k.SeedOverride != 0 {
		return k.SeedOverride
	}
	h := fnv.New64a()
	h.Write([]byte("seed/"))
	h.Write([]byte(k.Canonical()))
	return int64(h.Sum64() & (1<<63 - 1)) // keep it non-negative for rand sources
}

// String abbreviates the key for progress lines: benchmark, policy and the
// non-default knobs.
func (k JobKey) String() string {
	var parts []string
	parts = append(parts, k.Workload)
	if k.Policy != "" && k.Policy != "none" {
		p := k.Policy
		if k.Lambda != 0 {
			p += fmt.Sprintf(" λ=%g", k.Lambda)
		}
		parts = append(parts, p)
	}
	if k.Characterize {
		parts = append(parts, "characterize")
	}
	if k.SeriesLimit > 0 {
		parts = append(parts, fmt.Sprintf("series=%d", k.SeriesLimit))
	}
	if len(k.Candidates) > 0 {
		parts = append(parts, "cand="+strings.Join(k.Candidates, ","))
	}
	if k.SampleCount > 0 || k.RunLength > 0 {
		parts = append(parts, fmt.Sprintf("geom=%d/%d", k.SampleCount, k.RunLength))
	}
	if k.FaultProfile != "" {
		parts = append(parts, "fault="+k.FaultProfile)
	}
	return strings.Join(parts, " ")
}

// Dedup returns the keys with fingerprint duplicates removed, preserving
// first-occurrence order. Artifact plans overlap heavily (Fig. 7 re-uses
// every Fig. 5 and Fig. 6 run); Dedup sizes the real work.
func Dedup(keys []JobKey) []JobKey {
	seen := make(map[string]bool, len(keys))
	out := keys[:0:0]
	for _, k := range keys {
		fp := k.Fingerprint()
		if seen[fp] {
			continue
		}
		seen[fp] = true
		out = append(out, k)
	}
	return out
}

// SortCanonical orders keys by their canonical form. Useful when a caller
// wants a stable on-disk plan independent of construction order.
func SortCanonical(keys []JobKey) {
	sort.Slice(keys, func(i, j int) bool {
		return keys[i].Canonical() < keys[j].Canonical()
	})
}
