package sweep

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// countingRun returns a run function that records how many times each
// fingerprint was actually executed.
func countingRun(calls *sync.Map) func(JobKey) (string, error) {
	return func(k JobKey) (string, error) {
		c, _ := calls.LoadOrStore(k.Fingerprint(), new(atomic.Int64))
		c.(*atomic.Int64).Add(1)
		return "result:" + k.Workload, nil
	}
}

func totalCalls(calls *sync.Map) int64 {
	var n int64
	calls.Range(func(_, v any) bool {
		n += v.(*atomic.Int64).Load()
		return true
	})
	return n
}

func TestGetMemoizes(t *testing.T) {
	var calls sync.Map
	e := New(Config[string]{Workers: 4, Run: countingRun(&calls)})
	k := JobKey{Workload: "SC"}
	for i := 0; i < 5; i++ {
		res, err := e.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if res != "result:SC" {
			t.Fatalf("Get() = %q", res)
		}
	}
	if n := totalCalls(&calls); n != 1 {
		t.Fatalf("run executed %d times, want 1", n)
	}
	st := e.Stats()
	if st.Simulated != 1 || st.CacheHits != 4 || st.Scheduled != 1 {
		t.Fatalf("stats = %+v, want 1 simulated / 4 cache hits / 1 scheduled", st)
	}
}

func TestConcurrentGetsShareOneExecution(t *testing.T) {
	var calls sync.Map
	e := New(Config[string]{Workers: 8, Run: countingRun(&calls)})
	k := JobKey{Workload: "MT"}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.Get(k); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if n := totalCalls(&calls); n != 1 {
		t.Fatalf("run executed %d times under concurrency, want 1", n)
	}
}

func TestGetAllPreservesKeyOrder(t *testing.T) {
	var calls sync.Map
	e := New(Config[string]{Workers: 8, Run: countingRun(&calls)})
	var keys []JobKey
	for i := 0; i < 20; i++ {
		keys = append(keys, JobKey{Workload: fmt.Sprintf("W%02d", i)})
	}
	res, err := e.GetAll(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if want := "result:" + keys[i].Workload; r != want {
			t.Fatalf("res[%d] = %q, want %q", i, r, want)
		}
	}
}

func TestSerialAndParallelAgree(t *testing.T) {
	var keys []JobKey
	for i := 0; i < 16; i++ {
		keys = append(keys, JobKey{Workload: fmt.Sprintf("W%02d", i), Scale: i % 3})
	}
	run := func(k JobKey) (string, error) { return k.Canonical(), nil }
	serial := New(Config[string]{Workers: 1, Run: run})
	parallel := New(Config[string]{Workers: 8, Run: run})
	a, err := serial.GetAll(keys)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.GetAll(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("res[%d]: serial %q != parallel %q", i, a[i], b[i])
		}
	}
}

func TestErrorPropagatesFirstInKeyOrder(t *testing.T) {
	boom := errors.New("boom")
	e := New(Config[string]{Workers: 4, Run: func(k JobKey) (string, error) {
		if strings.HasPrefix(k.Workload, "BAD") {
			return "", fmt.Errorf("%s: %w", k.Workload, boom)
		}
		return "ok", nil
	}})
	keys := []JobKey{{Workload: "OK1"}, {Workload: "BAD1"}, {Workload: "BAD2"}}
	_, err := e.GetAll(keys)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("GetAll error = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "BAD1") {
		t.Fatalf("GetAll error = %v, want the first failure in key order (BAD1)", err)
	}
	if st := e.Stats(); st.Failed != 2 {
		t.Fatalf("stats.Failed = %d, want 2", st.Failed)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	var journal bytes.Buffer
	var calls sync.Map
	first := New(Config[string]{Workers: 2, Run: countingRun(&calls), Journal: &journal})
	keys := []JobKey{{Workload: "SC"}, {Workload: "MT"}, {Workload: "FIR"}}
	want, err := first.GetAll(keys)
	if err != nil {
		t.Fatal(err)
	}
	if n := totalCalls(&calls); n != 3 {
		t.Fatalf("first engine ran %d jobs, want 3", n)
	}

	// A fresh engine resumed from the journal must serve every key without
	// touching its run function.
	second := New(Config[string]{Workers: 2, Run: func(JobKey) (string, error) {
		t.Error("resumed engine must not re-run jobs")
		return "", errors.New("unreachable")
	}})
	loaded, err := second.Resume(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 3 {
		t.Fatalf("Resume loaded %d jobs, want 3", loaded)
	}
	got, err := second.GetAll(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resumed res[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	st := second.Stats()
	if st.Resumed != 3 || st.Simulated != 0 {
		t.Fatalf("stats = %+v, want 3 resumed / 0 simulated", st)
	}
}

func TestResumeSkipsTruncatedTailAndBadFingerprints(t *testing.T) {
	var journal bytes.Buffer
	e := New(Config[string]{Workers: 1, Journal: &journal,
		Run: func(k JobKey) (string, error) { return "v:" + k.Workload, nil }})
	if _, err := e.GetAll([]JobKey{{Workload: "A"}, {Workload: "B"}}); err != nil {
		t.Fatal(err)
	}

	// Simulate a kill mid-write (truncated tail) plus a stale record whose
	// stored fingerprint no longer matches its key.
	lines := journal.Bytes()
	corrupted := append([]byte{}, lines...)
	corrupted = append(corrupted, []byte(`{"fingerprint":"0000000000000000","seed":1,"key":{"workload":"C"},"result":"\"v:C\""}`+"\n")...)
	corrupted = append(corrupted, []byte(`{"fingerprint":"12`)...) // truncated

	fresh := New(Config[string]{Workers: 1,
		Run: func(k JobKey) (string, error) { return "rerun:" + k.Workload, nil }})
	loaded, err := fresh.Resume(bytes.NewReader(corrupted))
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 2 {
		t.Fatalf("Resume loaded %d jobs, want 2 (bad records skipped)", loaded)
	}
	// The skipped record must fall through to a real run.
	res, err := fresh.Get(JobKey{Workload: "C"})
	if err != nil {
		t.Fatal(err)
	}
	if res != "rerun:C" {
		t.Fatalf("poisoned record served from cache: got %q", res)
	}
}

// failWriter fails after n successful writes.
type failWriter struct {
	n int
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

func TestJournalWriteFailureFailsTheJob(t *testing.T) {
	e := New(Config[string]{Workers: 1, Journal: &failWriter{n: 1},
		Run: func(k JobKey) (string, error) { return "ok", nil }})
	if _, err := e.Get(JobKey{Workload: "A"}); err != nil {
		t.Fatalf("first job should journal fine: %v", err)
	}
	_, err := e.Get(JobKey{Workload: "B"})
	if err == nil || !strings.Contains(err.Error(), "journal") {
		t.Fatalf("Get after journal failure = %v, want journal error", err)
	}
}

func TestProgressCallbackCounts(t *testing.T) {
	var mu sync.Mutex
	var snaps []Progress
	e := New(Config[string]{Workers: 1,
		Run: func(k JobKey) (string, error) { return "ok", nil },
		OnProgress: func(p Progress) {
			mu.Lock()
			snaps = append(snaps, p)
			mu.Unlock()
		}})
	if err := e.Prefetch([]JobKey{{Workload: "A"}, {Workload: "B"}}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(snaps) != 2 {
		t.Fatalf("OnProgress fired %d times, want 2", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if last.Completed != 2 || last.Simulated != 2 {
		t.Fatalf("final progress = %+v, want 2 completed / 2 simulated", last)
	}
	if !strings.Contains(last.String(), "2/2 jobs") {
		t.Fatalf("Progress.String() = %q", last.String())
	}
}

func TestJournalFlushedPerRecord(t *testing.T) {
	// A buffered journal writer must be flushed record by record: after
	// every completed job the underlying sink — not just the bufio buffer —
	// holds that job's line, so a SIGKILL between jobs loses nothing.
	var sink bytes.Buffer
	bw := bufio.NewWriterSize(&sink, 1<<20) // large: nothing reaches sink without Flush
	e := New(Config[string]{Workers: 1, Journal: bw,
		Run: func(k JobKey) (string, error) { return "v:" + k.Workload, nil }})
	for i, k := range []JobKey{{Workload: "A"}, {Workload: "B"}, {Workload: "C"}} {
		if _, err := e.Get(k); err != nil {
			t.Fatal(err)
		}
		if got := bytes.Count(sink.Bytes(), []byte("\n")); got != i+1 {
			t.Fatalf("after job %d the sink holds %d journal lines, want %d (per-record flush)", i+1, got, i+1)
		}
	}
}

func TestProgressStringIncludesFailed(t *testing.T) {
	clean := Progress{Scheduled: 4, Completed: 4, Simulated: 3, CacheHits: 1}
	if got := clean.String(); strings.Contains(got, "failed") {
		t.Fatalf("Progress.String() with Failed==0 = %q, must stay byte-stable without a failed clause", got)
	}
	failing := Progress{Scheduled: 4, Completed: 4, Simulated: 2, CacheHits: 1, Failed: 2}
	if got := failing.String(); !strings.Contains(got, "2 failed") {
		t.Fatalf("Progress.String() = %q, want the failed counter visible", got)
	}
}

func TestLookupStates(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	e := New(Config[string]{Workers: 2, Run: func(k JobKey) (string, error) {
		if k.Workload == "SLOW" {
			close(started)
			<-release
		}
		if k.Workload == "BAD" {
			return "", errors.New("boom")
		}
		return "v:" + k.Workload, nil
	}})

	if _, ok := e.Lookup(JobKey{Workload: "A"}.Fingerprint()); ok {
		t.Fatal("Lookup of an unseen fingerprint must report ok=false")
	}

	slow := JobKey{Workload: "SLOW"}
	go func() { _, _ = e.Get(slow) }()
	<-started
	if st, ok := e.Lookup(slow.Fingerprint()); !ok || st.Done {
		t.Fatalf("Lookup(in flight) = %+v, %v; want known and not done", st, ok)
	}
	close(release)

	good := JobKey{Workload: "A"}
	if _, err := e.Get(good); err != nil {
		t.Fatal(err)
	}
	if st, ok := e.Lookup(good.Fingerprint()); !ok || !st.Done || st.Err != nil || st.Result != "v:A" {
		t.Fatalf("Lookup(done) = %+v, %v", st, ok)
	}

	bad := JobKey{Workload: "BAD"}
	if _, err := e.Get(bad); err == nil {
		t.Fatal("BAD job should fail")
	}
	if st, ok := e.Lookup(bad.Fingerprint()); !ok || !st.Done || st.Err == nil {
		t.Fatalf("Lookup(failed) = %+v, %v; want settled with error", st, ok)
	}
}

func TestNewPanicsWithoutRun(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New without Run must panic")
		}
	}()
	New(Config[string]{})
}
