package runner

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"

	"mgpucompress/internal/core"
	"mgpucompress/internal/sweep"
	"mgpucompress/internal/workloads"
)

func exportKeys() []sweep.JobKey {
	var keys []sweep.JobKey
	for _, b := range []string{"MT", "FIR"} {
		for _, pol := range []core.PolicyID{core.PolicyNone, core.PolicyAdaptive} {
			keys = append(keys, Key(b, Options{
				Scale: workloads.ScaleTiny, CUsPerGPU: 2, Policy: pol, Lambda: 6,
			}))
		}
	}
	return keys
}

func sweepMetricsBytes(t *testing.T, jobs int) []byte {
	t.Helper()
	s := NewSweep(SweepConfig{Jobs: jobs})
	if err := s.Prefetch(exportKeys()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSweepMetricsExportDeterministic is the artifact-determinism gate: the
// metrics file is byte-identical whether the sweep ran serially, in
// parallel, or in another process entirely.
func TestSweepMetricsExportDeterministic(t *testing.T) {
	serial := sweepMetricsBytes(t, 1)
	parallel := sweepMetricsBytes(t, 4)
	if !bytes.Equal(serial, parallel) {
		t.Error("sweep metrics differ between jobs=1 and jobs=4")
	}
	rerun := sweepMetricsBytes(t, 4)
	if !bytes.Equal(parallel, rerun) {
		t.Error("sweep metrics differ between identical reruns")
	}
	// The file must parse back and list jobs in canonical order.
	var entries []struct {
		Key         string          `json:"key"`
		Fingerprint string          `json:"fingerprint"`
		Snapshot    json.RawMessage `json:"snapshot"`
	}
	if err := json.Unmarshal(serial, &entries); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}
	if len(entries) != len(exportKeys()) {
		t.Fatalf("exported %d jobs, want %d", len(entries), len(exportKeys()))
	}
	if !sort.SliceIsSorted(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key }) {
		t.Error("exported jobs are not in canonical key order")
	}
}

// TestResultExports checks the single-run export surface: a sorted snapshot
// and a Chrome-loadable trace with the expected span categories.
func TestResultExports(t *testing.T) {
	m, err := Run("FIR", Options{
		Scale: workloads.ScaleTiny, CUsPerGPU: 2,
		Policy: core.PolicyAdaptive, Lambda: 6, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	var mbuf bytes.Buffer
	if err := m.WriteMetrics(&mbuf); err != nil {
		t.Fatal(err)
	}
	var samples []struct {
		Path string `json:"path"`
	}
	if err := json.Unmarshal(mbuf.Bytes(), &samples); err != nil {
		t.Fatalf("metrics snapshot is not valid JSON: %v", err)
	}
	if !sort.SliceIsSorted(samples, func(i, j int) bool { return samples[i].Path < samples[j].Path }) {
		t.Error("snapshot paths are not sorted")
	}
	paths := make(map[string]bool, len(samples))
	for _, s := range samples {
		paths[s.Path] = true
	}
	for _, want := range []string{
		"sim/cycles", "fabric/bytes", "traffic/remote_reads",
		"energy/fabric_pj", "energy/codec_pj", "ctrl0/sampling_rounds",
	} {
		if !paths[want] {
			t.Errorf("snapshot is missing %q", want)
		}
	}

	var tbuf bytes.Buffer
	if err := m.WriteTrace(&tbuf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			Cat   string `json:"cat,omitempty"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tbuf.Bytes(), &doc); err != nil {
		t.Fatalf("trace file is not valid Chrome JSON: %v", err)
	}
	cats := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "X" {
			cats[ev.Cat]++
		}
	}
	for _, want := range []string{"kernel", "phase", "stage", "transfer"} {
		if cats[want] == 0 {
			t.Errorf("trace has no %q spans (got %v)", want, cats)
		}
	}
}
