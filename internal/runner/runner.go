// Package runner executes (workload, policy) experiments on the simulated
// platform and collects every measurement the paper reports: remote access
// counts and entropy (Table V), per-codec compression ratios and pattern
// mixes (Tables V and VI), transfer time series (Fig. 1), normalized
// traffic and execution time (Figs. 5 and 6), and energy (Fig. 7).
package runner

import (
	"fmt"

	"mgpucompress/internal/comp"
	"mgpucompress/internal/core"
	"mgpucompress/internal/energy"
	"mgpucompress/internal/fabric"
	"mgpucompress/internal/platform"
	"mgpucompress/internal/stats"
	"mgpucompress/internal/trace"
	"mgpucompress/internal/workloads"
)

// Options configures one experiment run.
type Options struct {
	// Scale is the workload input scale.
	Scale workloads.Scale
	// CUsPerGPU overrides the platform CU count (0 = default).
	CUsPerGPU int
	// Policy is one of "none", "fpc", "bdi", "cpackz", "adaptive".
	Policy string
	// Lambda is the adaptive λ.
	Lambda float64
	// Characterize additionally runs every codec on every transferred
	// line, filling PerCodec ratios and pattern histograms (Tables V/VI).
	// It does not affect timing: characterization is measurement-only.
	Characterize bool
	// SeriesLimit, when positive, collects the first N payload transfers
	// as a Fig. 1-style time series.
	SeriesLimit int
	// Link selects the fabric energy class (default MCM).
	Link energy.LinkClass
	// Topology selects the fabric implementation (default: the paper's
	// shared bus). The crossbar is an extension for the topology ablation.
	Topology fabric.Topology
	// RemoteCache enables the L1.5 remote-data cache extension
	// (Arunkumar et al.), off in the paper's configuration.
	RemoteCache bool
	// NumGPUs overrides the GPU count (default 4, the paper's system).
	NumGPUs int
	// Trace records every fabric transfer for timeline analysis.
	Trace bool
	// FabricBytesPerCycle overrides the link width (0 = the paper's
	// 20 B/cycle, i.e. 160 Gb/s at 1 GHz).
	FabricBytesPerCycle int
	// Adaptive, when non-nil, runs the adaptive controller with a fully
	// custom configuration (sampling geometry, candidate set) on every
	// compressing endpoint; Policy then only labels the run. Used by the
	// ablation studies.
	Adaptive *core.Config
	// Seed rebases the workload's input-generation random streams
	// (workloads.Seeder). Zero keeps each workload's fixed default stream;
	// sweeps set the JobKey-derived seed so every job's inputs are a pure
	// function of its fingerprint.
	Seed int64
}

// CodecStats aggregates one codec's behaviour over all transferred lines.
type CodecStats struct {
	CompressedBytes uint64
	Patterns        comp.PatternHistogram
}

// Metrics is the result of one run.
type Metrics struct {
	Workload string
	Policy   string

	ExecCycles  uint64
	FabricBytes uint64 // everything on the bus, headers and control included
	Traffic     stats.Traffic

	// CodecEnergyPJ is the compression-hardware energy actually spent by
	// the policy; FabricEnergyPJ is the link transfer energy.
	CodecEnergyPJ  float64
	FabricEnergyPJ float64

	// PerCodec holds characterization results (Characterize mode).
	PerCodec map[comp.Algorithm]*CodecStats

	// Series is the Fig. 1 time series (SeriesLimit mode).
	Series *stats.Series

	// ReadLatency aggregates the end-to-end remote read latency (cycles)
	// across every RDMA engine.
	ReadLatency stats.Histogram

	// TraceLog holds the fabric transfer timeline (Trace mode).
	TraceLog *trace.Log

	// Platform holds the aggregated hardware counters of the run.
	Platform platform.Stats
}

// TotalEnergyPJ is the Fig. 7 quantity: fabric plus codec energy.
func (m *Metrics) TotalEnergyPJ() float64 { return m.FabricEnergyPJ + m.CodecEnergyPJ }

// CompressionRatio returns the achieved payload compression ratio.
func (m *Metrics) CompressionRatio() float64 { return m.Traffic.CompressionRatio() }

// CodecRatio returns the characterization compression ratio for one codec
// (Table V columns).
func (m *Metrics) CodecRatio(alg comp.Algorithm) float64 {
	cs, ok := m.PerCodec[alg]
	if !ok || cs.CompressedBytes == 0 {
		return 1
	}
	return float64(m.Traffic.UncompressedPayloadBytes) / float64(cs.CompressedBytes)
}

// recorder implements rdma.Recorder.
type recorder struct {
	opts    Options
	codecs  []comp.Compressor
	traffic stats.Traffic
	energy  float64
	per     map[comp.Algorithm]*CodecStats
	series  *stats.Series
}

func newRecorder(opts Options) *recorder {
	r := &recorder{opts: opts, per: make(map[comp.Algorithm]*CodecStats)}
	if opts.Characterize {
		r.codecs = comp.AllCompressors()
		for _, c := range r.codecs {
			r.per[c.Algorithm()] = &CodecStats{}
		}
	}
	if opts.SeriesLimit > 0 {
		r.series = stats.NewSeries(opts.SeriesLimit)
	}
	return r
}

func (r *recorder) RemoteRead(int)  { r.traffic.RemoteReads++ }
func (r *recorder) RemoteWrite(int) { r.traffic.RemoteWrites++ }
func (r *recorder) Header(n int)    { r.traffic.HeaderBytes += uint64(n) }

func (r *recorder) Payload(line []byte, d core.Decision) {
	r.traffic.AddLine(line, d.WireBytes(), d.Alg != comp.None)
	r.energy += d.CodecEnergyPJ
	if len(line) == comp.LineSize {
		for _, c := range r.codecs {
			enc := c.Compress(line)
			cs := r.per[c.Algorithm()]
			cs.CompressedBytes += uint64(enc.WireBytes())
			cs.Patterns.Add(enc.Patterns)
		}
		if r.series != nil {
			r.series.Observe(line)
		}
	}
}

// Run executes the named workload under the options and returns the
// metrics.
func Run(abbrev string, opts Options) (*Metrics, error) {
	if opts.Scale == 0 {
		opts.Scale = workloads.ScaleSmall
	}
	if opts.Policy == "" {
		opts.Policy = "none"
	}
	w, err := workloads.ByAbbrev(abbrev, opts.Scale)
	if err != nil {
		return nil, err
	}
	if opts.Seed != 0 {
		if s, ok := w.(workloads.Seeder); ok {
			s.SetSeed(opts.Seed)
		}
	}

	rec := newRecorder(opts)
	cfg := platform.DefaultConfig()
	if opts.CUsPerGPU > 0 {
		cfg.CUsPerGPU = opts.CUsPerGPU
	}
	if opts.Topology != "" {
		cfg.Fabric.Topology = opts.Topology
	}
	if opts.RemoteCache {
		rc := platform.RemoteCacheConfig()
		cfg.RemoteCache = &rc
	}
	if opts.NumGPUs > 0 {
		cfg.NumGPUs = opts.NumGPUs
	}
	if opts.FabricBytesPerCycle > 0 {
		cfg.Fabric.BytesPerCycle = opts.FabricBytesPerCycle
	}
	var traceLog *trace.Log
	if opts.Trace {
		traceLog = &trace.Log{Cap: 1 << 20}
		cfg.Fabric.Trace = traceLog
	}
	cfg.Recorder = rec
	if opts.Adaptive != nil {
		acfg := *opts.Adaptive
		cfg.NewPolicy = func(int) core.Policy { return core.NewAdaptive(acfg) }
	} else if opts.Policy != "none" {
		// Validate the spec here, where the error can propagate; the
		// factory itself cannot fail per endpoint.
		newPolicy, err := core.PolicyFactory(opts.Policy, opts.Lambda)
		if err != nil {
			return nil, fmt.Errorf("runner: %s: %w", abbrev, err)
		}
		cfg.NewPolicy = func(int) core.Policy { return newPolicy() }
	}
	p := platform.New(cfg)

	if err := w.Setup(p); err != nil {
		return nil, fmt.Errorf("runner: %s setup: %w", abbrev, err)
	}
	if err := w.Run(p); err != nil {
		return nil, fmt.Errorf("runner: %s run: %w", abbrev, err)
	}
	if err := w.Verify(p); err != nil {
		return nil, fmt.Errorf("runner: %s verify: %w", abbrev, err)
	}

	m := &Metrics{
		Workload:      abbrev,
		Policy:        opts.Policy,
		ExecCycles:    uint64(p.ExecCycles()),
		FabricBytes:   p.Bus.TotalBytes(),
		Traffic:       rec.traffic,
		CodecEnergyPJ: rec.energy,
		PerCodec:      rec.per,
		Series:        rec.series,
		TraceLog:      traceLog,
	}
	link := opts.Link
	if link == energy.OnChip {
		// The zero value selects the paper's MCM fabric (Sec. VII-B).
		link = energy.MCM
	}
	m.FabricEnergyPJ = float64(m.FabricBytes*8) * link.PJPerBit()
	for _, dev := range p.GPUs {
		m.ReadLatency.Merge(&dev.RDMA.ReadLatency)
	}
	m.ReadLatency.Merge(&p.HostRDMA.ReadLatency)
	m.Platform = p.CollectStats()
	return m, nil
}

// PolicyNames lists the policy specs in the order Figs. 5-7 present them.
func PolicyNames() []string { return []string{"none", "fpc", "bdi", "cpackz"} }

// Benchmarks lists the Table IV abbreviations in paper order.
func Benchmarks() []string {
	return []string{"AES", "BS", "FIR", "GD", "KM", "MT", "SC"}
}
