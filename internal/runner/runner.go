// Package runner executes (workload, policy) experiments on the simulated
// platform and collects every measurement the paper reports: remote access
// counts and entropy (Table V), per-codec compression ratios and pattern
// mixes (Tables V and VI), transfer time series (Fig. 1), normalized
// traffic and execution time (Figs. 5 and 6), and energy (Fig. 7).
package runner

import (
	"fmt"

	"mgpucompress/internal/comp"
	"mgpucompress/internal/core"
	"mgpucompress/internal/energy"
	"mgpucompress/internal/fabric"
	"mgpucompress/internal/fault"
	"mgpucompress/internal/metrics"
	"mgpucompress/internal/platform"
	"mgpucompress/internal/rdma"
	"mgpucompress/internal/sim"
	"mgpucompress/internal/stats"
	"mgpucompress/internal/trace"
	"mgpucompress/internal/workloads"
)

// Options configures one experiment run.
type Options struct {
	// Scale is the workload input scale.
	Scale workloads.Scale
	// CUsPerGPU overrides the platform CU count (0 = default).
	CUsPerGPU int
	// Policy selects the compression policy (zero value = PolicyNone).
	// CLIs parse user strings with core.ParsePolicy at the flag boundary.
	Policy core.PolicyID
	// Lambda is the adaptive λ.
	Lambda float64
	// Characterize additionally runs every codec on every transferred
	// line, filling PerCodec ratios and pattern histograms (Tables V/VI).
	// It does not affect timing: characterization is measurement-only.
	Characterize bool
	// SeriesLimit, when positive, collects the first N payload transfers
	// as a Fig. 1-style time series.
	SeriesLimit int
	// Link selects the fabric energy class (default MCM).
	Link energy.LinkClass
	// Topology selects the fabric implementation (default: the paper's
	// shared bus). The crossbar is an extension for the topology ablation.
	Topology fabric.Topology
	// RemoteCache enables the L1.5 remote-data cache extension
	// (Arunkumar et al.), off in the paper's configuration.
	RemoteCache bool
	// NumGPUs overrides the GPU count (default 4, the paper's system).
	NumGPUs int
	// Trace records every fabric transfer for timeline analysis.
	Trace bool
	// FabricBytesPerCycle overrides the link width (0 = the paper's
	// 20 B/cycle, i.e. 160 Gb/s at 1 GHz).
	FabricBytesPerCycle int
	// Adaptive, when non-nil, runs the adaptive controller with a fully
	// custom configuration (sampling geometry, candidate set) on every
	// compressing endpoint; Policy then only labels the run. Used by the
	// ablation studies.
	Adaptive *core.Config
	// Seed rebases the workload's input-generation random streams
	// (workloads.Seeder). Zero keeps each workload's fixed default stream;
	// sweeps set the JobKey-derived seed so every job's inputs are a pure
	// function of its fingerprint.
	Seed int64
	// Fault configures deterministic fault injection on the inter-GPU
	// fabric (zero value = off). When enabled it also arms the RDMA
	// reliability guard (CRC trailers, NACK/retry/timeout) and the
	// controller's degradation rule.
	Fault fault.Profile
	// SimCores is the number of OS threads the simulation engine may use
	// to advance platform partitions concurrently (0 or 1 = serial).
	// Results are byte-identical across any SimCores value. Runs that
	// capture ordered streams (Trace, SeriesLimit) are forced serial.
	SimCores int
	// FixedLookahead, when positive, pins the engine's window width to this
	// many cycles instead of the default adaptive widening — the PR 8
	// scheduling baseline. Results are byte-identical either way; only
	// windows-per-run changes. Used by cmd/benchreport's window-scheduling
	// table. Must not exceed the fabric link latency.
	FixedLookahead int
}

// Validate reports the first configuration error, consolidating the checks
// that used to be scattered across Run, the CLIs and the sweep layer. A zero
// Options is valid.
func (o Options) Validate() error {
	if o.Scale < 0 {
		return fmt.Errorf("negative workload scale %d", o.Scale)
	}
	if !o.Policy.Valid() {
		return fmt.Errorf("invalid policy %v", o.Policy)
	}
	if o.Lambda < 0 {
		return fmt.Errorf("negative lambda %g", o.Lambda)
	}
	if o.CUsPerGPU < 0 {
		return fmt.Errorf("negative CUs per GPU %d", o.CUsPerGPU)
	}
	if o.NumGPUs != 0 && o.NumGPUs < 2 {
		return fmt.Errorf("NumGPUs = %d: a multi-GPU system needs at least 2", o.NumGPUs)
	}
	if o.SeriesLimit < 0 {
		return fmt.Errorf("negative series limit %d", o.SeriesLimit)
	}
	if o.FabricBytesPerCycle < 0 {
		return fmt.Errorf("negative fabric bytes/cycle %d", o.FabricBytesPerCycle)
	}
	if o.SimCores < 0 {
		return fmt.Errorf("negative sim cores %d", o.SimCores)
	}
	if o.FixedLookahead < 0 {
		return fmt.Errorf("negative fixed lookahead %d", o.FixedLookahead)
	}
	switch o.Topology {
	case "", fabric.TopologyBus, fabric.TopologyCrossbar, fabric.TopologyRing, fabric.TopologyTree:
	case fabric.TopologyMesh:
		n := o.NumGPUs
		if n == 0 {
			n = platform.DefaultConfig().NumGPUs
		}
		if _, _, err := fabric.MeshDims(n); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown topology %q", o.Topology)
	}
	if o.Policy == core.PolicyAdaptiveGlobal && o.FixedLookahead > 0 {
		// The shared controller observes transfers from every partition, so
		// the window placement becomes part of the observation order; pinning
		// it would make FixedLookahead result-bearing instead of a pure
		// scheduling knob.
		return fmt.Errorf("policy adaptive-global does not support FixedLookahead")
	}
	if o.Link < energy.OnChip || o.Link > energy.Node {
		return fmt.Errorf("invalid link class %d", o.Link)
	}
	if o.Adaptive != nil && o.Policy != core.PolicyNone && o.Policy != core.PolicyAdaptive {
		return fmt.Errorf("Adaptive config conflicts with policy %v", o.Policy)
	}
	if err := o.Fault.Validate(); err != nil {
		return fmt.Errorf("fault profile: %w", err)
	}
	return nil
}

// CodecStats aggregates one codec's behaviour over all transferred lines.
type CodecStats struct {
	CompressedBytes uint64                `json:"compressed_bytes"`
	Patterns        comp.PatternHistogram `json:"patterns"`
}

// Result is the outcome of one run: the paper-facing measurements, the
// aggregated platform counters, and the full metrics snapshot they are
// views over.
type Result struct {
	Workload string `json:"workload"`
	Policy   string `json:"policy"`

	ExecCycles  uint64        `json:"exec_cycles"`
	FabricBytes uint64        `json:"fabric_bytes"` // everything on the bus, headers and control included
	Traffic     stats.Traffic `json:"traffic"`

	// CodecEnergyPJ is the compression-hardware energy actually spent by
	// the policy; FabricEnergyPJ is the link transfer energy.
	CodecEnergyPJ  float64 `json:"codec_energy_pj"`
	FabricEnergyPJ float64 `json:"fabric_energy_pj"`

	// PerCodec holds characterization results (Characterize mode).
	PerCodec map[comp.Algorithm]*CodecStats `json:"per_codec,omitempty"`

	// Series is the Fig. 1 time series (SeriesLimit mode).
	Series *stats.Series `json:"series,omitempty"`

	// ReadLatency aggregates the end-to-end remote read latency (cycles)
	// across every RDMA engine. In-memory only: the sample list is too
	// large to journal, and its aggregates live in the snapshot
	// ("*/rdma/read_latency").
	ReadLatency stats.Histogram `json:"-"`

	// TraceLog holds the fabric transfer timeline (Trace mode) and Spans
	// the phase/kernel/workload span timeline. Both export to Chrome trace
	// JSON via WriteTraceFile; neither is journaled.
	TraceLog *trace.Log      `json:"-"`
	Spans    *trace.Recorder `json:"-"`

	// Platform holds the aggregated hardware counters of the run.
	Platform platform.Stats `json:"platform"`

	// Snapshot is the full metric registry at end of run, sorted by path.
	// Platform (and every other aggregate) is derived from it.
	Snapshot metrics.Snapshot `json:"snapshot,omitempty"`
}

// TotalEnergyPJ is the Fig. 7 quantity: fabric plus codec energy.
func (m *Result) TotalEnergyPJ() float64 { return m.FabricEnergyPJ + m.CodecEnergyPJ }

// CompressionRatio returns the achieved payload compression ratio.
func (m *Result) CompressionRatio() float64 { return m.Traffic.CompressionRatio() }

// CodecRatio returns the characterization compression ratio for one codec
// (Table V columns).
func (m *Result) CodecRatio(alg comp.Algorithm) float64 {
	cs, ok := m.PerCodec[alg]
	if !ok || cs.CompressedBytes == 0 {
		return 1
	}
	return float64(m.Traffic.UncompressedPayloadBytes) / float64(cs.CompressedBytes)
}

// recorder implements rdma.Recorder for one compressing endpoint. Each
// unit gets its own shard, touched only from that unit's partition, so
// recording needs no locking even when the engine runs partitions on
// several cores.
type recorder struct {
	codecs  []comp.Compressor
	traffic stats.Traffic
	energy  float64
	per     map[comp.Algorithm]*CodecStats
	series  *stats.Series
	scratch []byte // characterization encode buffer, reused across lines
}

// recorderSet is the per-unit sharding of the run's traffic accounting.
// Totals are folded in unit order, which makes the float sums (energy,
// entropy) a pure function of each unit's deterministic local stream —
// i.e. identical for any SimCores value.
type recorderSet struct {
	shards []*recorder
}

func newRecorderSet(opts Options, units int) *recorderSet {
	s := &recorderSet{}
	// SeriesLimit captures a globally ordered transfer stream, so those
	// runs are forced serial (SimCores=1) and the shards may share one
	// series sink.
	var series *stats.Series
	if opts.SeriesLimit > 0 {
		series = stats.NewSeries(opts.SeriesLimit)
	}
	for u := 0; u < units; u++ {
		r := &recorder{per: make(map[comp.Algorithm]*CodecStats), series: series}
		if opts.Characterize {
			r.codecs = comp.AllCompressors()
			for _, c := range r.codecs {
				r.per[c.Algorithm()] = &CodecStats{}
			}
		}
		s.shards = append(s.shards, r)
	}
	return s
}

// forUnit hands out the unit's shard to the platform.
func (s *recorderSet) forUnit(unit int) *recorder { return s.shards[unit] }

// traffic merges the shards' traffic accounting in unit order.
func (s *recorderSet) trafficTotal() stats.Traffic {
	var t stats.Traffic
	for _, r := range s.shards {
		t.Merge(&r.traffic)
	}
	return t
}

// energyTotal merges codec energy in unit order (float sum: the fixed
// order keeps it deterministic).
func (s *recorderSet) energyTotal() float64 {
	e := 0.0
	for _, r := range s.shards {
		e += r.energy
	}
	return e
}

// perTotal merges the characterization results in unit order.
func (s *recorderSet) perTotal() map[comp.Algorithm]*CodecStats {
	total := make(map[comp.Algorithm]*CodecStats)
	for _, r := range s.shards {
		for alg, cs := range r.per {
			t, ok := total[alg]
			if !ok {
				t = &CodecStats{}
				total[alg] = t
			}
			t.CompressedBytes += cs.CompressedBytes
			t.Patterns.Add(cs.Patterns)
		}
	}
	return total
}

func (s *recorderSet) series() *stats.Series { return s.shards[0].series }

// registerMetrics publishes the merged traffic accounting under
// "traffic/*" so the snapshot carries the paper's Table V quantities.
// Snapshots are taken after the run, so the lazy merge is race-free.
func (s *recorderSet) registerMetrics(reg *metrics.Registry) {
	reg.CounterFunc("traffic/remote_reads", func() uint64 { return s.trafficTotal().RemoteReads })
	reg.CounterFunc("traffic/remote_writes", func() uint64 { return s.trafficTotal().RemoteWrites })
	reg.CounterFunc("traffic/header_bytes", func() uint64 { return s.trafficTotal().HeaderBytes })
	reg.CounterFunc("traffic/payload_bytes", func() uint64 { return s.trafficTotal().PayloadBytes })
	reg.CounterFunc("traffic/uncompressed_payload_bytes", func() uint64 { return s.trafficTotal().UncompressedPayloadBytes })
	reg.CounterFunc("traffic/messages", func() uint64 { return s.trafficTotal().Messages })
}

func (r *recorder) RemoteRead(int)  { r.traffic.RemoteReads++ }
func (r *recorder) RemoteWrite(int) { r.traffic.RemoteWrites++ }
func (r *recorder) Header(n int)    { r.traffic.HeaderBytes += uint64(n) }

func (r *recorder) Payload(line []byte, d core.Decision) {
	r.traffic.AddLine(line, d.WireBytes(), d.Alg != comp.None)
	r.energy += d.CodecEnergyPJ
	if len(line) == comp.LineSize {
		for _, c := range r.codecs {
			// Characterization needs sizes and pattern histograms but never
			// ships the encoding, so the bitstream lands in a reused buffer.
			enc := c.CompressInto(r.scratch[:0], line)
			r.scratch = enc.Data
			cs := r.per[c.Algorithm()]
			cs.CompressedBytes += uint64(enc.WireBytes())
			cs.Patterns.Add(enc.Patterns)
		}
		if r.series != nil {
			r.series.Observe(line)
		}
	}
}

// Run executes the named workload under the options and returns the result.
func Run(abbrev string, opts Options) (*Result, error) {
	if opts.Scale == 0 {
		opts.Scale = workloads.ScaleSmall
	}
	if err := opts.Validate(); err != nil {
		return nil, fmt.Errorf("runner: %s: %w", abbrev, err)
	}
	w, err := workloads.ByAbbrev(abbrev, opts.Scale)
	if err != nil {
		return nil, err
	}
	if opts.Seed != 0 {
		if s, ok := w.(workloads.Seeder); ok {
			s.SetSeed(opts.Seed)
		}
	}

	// Ordered-stream captures are serial by construction: a transfer time
	// series and a trace file reflect one global interleaving, so those
	// runs pin the engine to one core. The adaptive-global policy shares
	// one controller across every partition and is serialized for the same
	// reason. Everything else may parallelize.
	if opts.Trace || opts.SeriesLimit > 0 || opts.Policy == core.PolicyAdaptiveGlobal {
		opts.SimCores = 1
	}

	reg := metrics.NewRegistry()
	spans := &trace.Recorder{}

	link := opts.Link
	if link == energy.OnChip {
		// The zero value selects the paper's MCM fabric (Sec. VII-B).
		link = energy.MCM
	}

	cfg := platform.DefaultConfig()
	cfg.Metrics = reg
	cfg.Spans = spans
	if opts.CUsPerGPU > 0 {
		cfg.CUsPerGPU = opts.CUsPerGPU
	}
	if opts.Topology != "" {
		cfg.Fabric.Topology = opts.Topology
	}
	// The fabric prices endpoint links (and, on the single-hop fabrics,
	// every transfer) at the selected class; switched topologies layer
	// board/node tiers on their long hops via Fabric.EnergyPJ.
	cfg.Fabric.BaseClass = link
	if opts.RemoteCache {
		rc := platform.RemoteCacheConfig()
		cfg.RemoteCache = &rc
	}
	if opts.NumGPUs > 0 {
		cfg.NumGPUs = opts.NumGPUs
	}
	if opts.FabricBytesPerCycle > 0 {
		cfg.Fabric.BytesPerCycle = opts.FabricBytesPerCycle
	}
	var traceLog *trace.Log
	if opts.Trace {
		traceLog = &trace.Log{Cap: 1 << 20}
		cfg.Fabric.Trace = traceLog
	}
	cfg.SimCores = opts.SimCores
	cfg.FixedLookahead = sim.Time(opts.FixedLookahead)
	recs := newRecorderSet(opts, cfg.NumGPUs+1)
	recs.registerMetrics(reg)
	cfg.NewRecorder = func(unit int) rdma.Recorder { return recs.forUnit(unit) }
	if opts.Fault.Enabled() {
		cfg.Fault = opts.Fault
		// Faults must be a pure function of the job fingerprint: reuse the
		// workload seed, with a fixed fallback when the run keeps the
		// default input streams.
		cfg.FaultSeed = opts.Seed
		if cfg.FaultSeed == 0 {
			cfg.FaultSeed = 0x6d677075 // "mgpu"
		}
	}
	if opts.Adaptive != nil {
		acfg := *opts.Adaptive
		cfg.NewPolicy = func(int) core.Policy { return core.NewAdaptive(acfg) }
	} else if opts.Policy != core.PolicyNone {
		// Validate already vetted the ID; the factory cannot fail per
		// endpoint.
		newPolicy, err := core.PolicyFactory(opts.Policy, opts.Lambda)
		if err != nil {
			return nil, fmt.Errorf("runner: %s: %w", abbrev, err)
		}
		cfg.NewPolicy = func(int) core.Policy { return newPolicy() }
	}
	p, _ := platform.Build(cfg)

	// Lazily evaluated at snapshot time, after the run has accumulated. The
	// fabric owns the accounting: single-hop fabrics price TotalBytes at the
	// base class (bit-identical to the pre-topology arithmetic), switched
	// ones sum per-hop, per-class bytes.
	reg.GaugeFunc("energy/fabric_pj", p.Bus.EnergyPJ)
	reg.GaugeFunc("energy/codec_pj", func() float64 { return recs.energyTotal() })

	stage := func(name string, fn func(*platform.Platform) error) error {
		start := p.Engine.Now()
		err := fn(p)
		spans.Record(trace.Span{
			Track: "workload", Name: name, Cat: "stage",
			Start: start, End: p.Engine.Now(),
		})
		return err
	}
	if err := stage("setup", w.Setup); err != nil {
		return nil, fmt.Errorf("runner: %s setup: %w", abbrev, err)
	}
	if err := stage("run", w.Run); err != nil {
		return nil, fmt.Errorf("runner: %s run: %w", abbrev, err)
	}
	if err := stage("verify", w.Verify); err != nil {
		return nil, fmt.Errorf("runner: %s verify: %w", abbrev, err)
	}
	p.FinishTrace()

	m := &Result{
		Workload:      abbrev,
		Policy:        opts.Policy.String(),
		ExecCycles:    uint64(p.ExecCycles()),
		FabricBytes:   p.Bus.TotalBytes(),
		Traffic:       recs.trafficTotal(),
		CodecEnergyPJ: recs.energyTotal(),
		PerCodec:      recs.perTotal(),
		Series:        recs.series(),
		TraceLog:      traceLog,
		Spans:         spans,
	}
	m.FabricEnergyPJ = p.Bus.EnergyPJ()
	for _, dev := range p.GPUs {
		m.ReadLatency.Merge(&dev.RDMA.ReadLatency)
	}
	m.ReadLatency.Merge(&p.HostRDMA.ReadLatency)
	// One snapshot feeds every aggregate view, so the journal, the stats
	// report and a -metrics-out file can never disagree.
	m.Snapshot = reg.Snapshot()
	m.Platform = platform.StatsFromSnapshot(m.Snapshot)
	return m, nil
}

// PolicyNames lists the policy specs in the order Figs. 5-7 present them.
func PolicyNames() []string { return []string{"none", "fpc", "bdi", "cpackz"} }

// Benchmarks lists the Table IV abbreviations in paper order.
func Benchmarks() []string {
	return []string{"AES", "BS", "FIR", "GD", "KM", "MT", "SC"}
}
