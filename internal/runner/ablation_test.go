package runner

import (
	"strings"
	"testing"

	"mgpucompress/internal/comp"
	"mgpucompress/internal/core"
	"mgpucompress/internal/energy"
	"mgpucompress/internal/fabric"
	"mgpucompress/internal/workloads"
)

func TestSamplingAblation(t *testing.T) {
	rows, err := SamplingAblation("MT", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("got %d rows, want 9", len(rows))
	}
	for _, r := range rows {
		if r.Traffic <= 0 || r.Traffic > 1.2 {
			t.Errorf("samples=%d run=%d traffic=%.3f out of range", r.SampleCount, r.RunLength, r.Traffic)
		}
		// MT is uniformly compressible: every configuration must help.
		if r.Traffic > 0.9 {
			t.Errorf("samples=%d run=%d traffic=%.3f: no reduction on MT", r.SampleCount, r.RunLength, r.Traffic)
		}
	}
	out := FormatSamplingAblation("MT", rows)
	if !strings.Contains(out, "Sampling-phase ablation") {
		t.Error("format malformed")
	}
}

func TestOnOffAblation(t *testing.T) {
	rows, err := OnOffAblation([]string{"AES"}, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		// On incompressible AES, the on/off controller must spend (much)
		// less codec energy than the always-on static configuration, which
		// compresses every line in vain.
		if r.OnOffEnergyPJ >= r.StaticEnergyPJ {
			t.Errorf("%v: on/off codec energy %.0f pJ not below static %.0f pJ",
				r.Alg, r.OnOffEnergyPJ, r.StaticEnergyPJ)
		}
		if r.OnOffEnergyPJ > 0.25*r.StaticEnergyPJ {
			t.Errorf("%v: on/off energy %.0f pJ should be a small fraction of static %.0f pJ",
				r.Alg, r.OnOffEnergyPJ, r.StaticEnergyPJ)
		}
		if r.OnOffTime > 1.05 {
			t.Errorf("%v: on/off exec time %.3f should stay ≈1 on AES", r.Alg, r.OnOffTime)
		}
	}
	out := FormatOnOffAblation(rows)
	if !strings.Contains(out, "on/off") {
		t.Error("format malformed")
	}
	// sanity on codec set
	algs := map[comp.Algorithm]bool{}
	for _, r := range rows {
		algs[r.Alg] = true
	}
	if len(algs) != 3 {
		t.Error("ablation missing codecs")
	}
}

func TestLinkClassAblation(t *testing.T) {
	rows, err := LinkClassAblation("MT", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	// Savings must grow (or at least not shrink) with link distance: the
	// codec-energy overhead is fixed while the transfer energy scales.
	for i := 1; i < len(rows); i++ {
		if rows[i].SavingPercent < rows[i-1].SavingPercent-0.5 {
			t.Errorf("saving on %v (%.1f%%) below %v (%.1f%%)",
				rows[i].Link, rows[i].SavingPercent, rows[i-1].Link, rows[i-1].SavingPercent)
		}
	}
	for _, r := range rows {
		if r.SavingPercent < 5 {
			t.Errorf("%v saving %.1f%%: MT should save plenty", r.Link, r.SavingPercent)
		}
		if r.BaselinePJ <= r.CompressedPJ {
			t.Errorf("%v: no absolute energy saving", r.Link)
		}
	}
	if rows[0].Link != energy.MCM {
		t.Error("first row should be the paper's MCM class")
	}
	out := FormatLinkClassAblation("MT", rows)
	if !strings.Contains(out, "Fabric-class") {
		t.Error("format malformed")
	}
}

func TestExtensionAblation(t *testing.T) {
	rows, err := ExtensionAblation([]string{"MT", "AES"}, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		for name, v := range map[string]float64{
			"adaptive traffic": r.AdaptiveTraffic, "bpc traffic": r.BPCTraffic,
			"dynamic traffic": r.DynamicTraffic, "adaptive time": r.AdaptiveTime,
			"bpc time": r.BPCTime, "dynamic time": r.DynamicTime,
		} {
			if v <= 0 || v > 1.3 {
				t.Errorf("%s %s = %.3f out of range", r.Benchmark, name, v)
			}
		}
	}
	// MT is uniformly compressible: every variant must reduce traffic.
	for _, r := range rows {
		if r.Benchmark != "MT" {
			continue
		}
		if r.AdaptiveTraffic > 0.9 || r.BPCTraffic > 0.9 || r.DynamicTraffic > 0.9 {
			t.Errorf("MT extension traffic not reduced: %+v", r)
		}
		// BPC's delta/bit-plane transform excels on MT's byte-range pixel
		// data: the extended candidate set must not do worse than the
		// paper's set.
		if r.BPCTraffic > r.AdaptiveTraffic+0.02 {
			t.Errorf("MT: +BPC traffic %.3f worse than adaptive %.3f", r.BPCTraffic, r.AdaptiveTraffic)
		}
	}
	out := FormatExtensionAblation(rows)
	if !strings.Contains(out, "Extension ablation") {
		t.Error("format malformed")
	}
}

func TestDynamicPolicyEndToEnd(t *testing.T) {
	for _, b := range []string{"MT", "AES"} {
		opts := Options{Scale: workloads.ScaleTiny, CUsPerGPU: 2, Policy: core.PolicyDynamic}
		m, err := Run(b, opts)
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if m.ExecCycles == 0 {
			t.Errorf("%s: empty metrics", b)
		}
	}
}

func TestTopologyAblation(t *testing.T) {
	rows, err := TopologyAblation([]string{"MT"}, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(fabric.Topologies()); len(rows) != want {
		t.Fatalf("got %d rows, want one per topology (%d)", len(rows), want)
	}
	var bus, xbar TopologyRow
	for _, r := range rows {
		switch r.Topology {
		case fabric.TopologyBus:
			bus = r
		case fabric.TopologyCrossbar:
			xbar = r
		}
		if r.BaseCycles == 0 {
			t.Errorf("%s: empty base run", r.Topology)
		}
	}
	// The crossbar itself must be faster than the bus.
	if xbar.BaseCycles >= bus.BaseCycles {
		t.Errorf("crossbar base %d not faster than bus %d", xbar.BaseCycles, bus.BaseCycles)
	}
	// Compression must help on the bus, and help less (relatively) on the
	// contention-free crossbar.
	if bus.CompressionSpeedup <= 1.05 {
		t.Errorf("bus compression speedup = %.2f, want >1.05", bus.CompressionSpeedup)
	}
	if xbar.CompressionSpeedup > bus.CompressionSpeedup+0.02 {
		t.Errorf("crossbar speedup %.2f exceeds bus speedup %.2f: contention story broken",
			xbar.CompressionSpeedup, bus.CompressionSpeedup)
	}
	out := FormatTopologyAblation(rows)
	if !strings.Contains(out, "Topology ablation") {
		t.Error("format malformed")
	}
}

func TestRemoteCacheAblation(t *testing.T) {
	rows, err := RemoteCacheAblation([]string{"SC"}, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	// SC re-reads halo lines heavily: the remote cache must cut traffic,
	// and so must compression; the combination must not be worse than the
	// better single mechanism (they compose).
	if r.RemoteCacheTraffic >= 0.95 {
		t.Errorf("remote cache traffic = %.3f: no absorption on SC", r.RemoteCacheTraffic)
	}
	if r.CompressionTraffic >= 0.95 {
		t.Errorf("compression traffic = %.3f: no reduction on SC", r.CompressionTraffic)
	}
	best := r.RemoteCacheTraffic
	if r.CompressionTraffic < best {
		best = r.CompressionTraffic
	}
	if r.BothTraffic > best+0.05 {
		t.Errorf("combined traffic %.3f worse than best single %.3f", r.BothTraffic, best)
	}
	out := FormatRemoteCacheAblation(rows)
	if !strings.Contains(out, "Remote-cache") {
		t.Error("format malformed")
	}
}

func TestScalabilityAblation(t *testing.T) {
	rows, err := ScalabilityAblation("MT", tinyOpts(), []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.CompressionSpeedup < 1.0 {
			t.Errorf("%d GPUs: compression slowdown %.2f", r.NumGPUs, r.CompressionSpeedup)
		}
		if r.TrafficReduction <= 0 {
			t.Errorf("%d GPUs: no traffic reduction", r.NumGPUs)
		}
	}
	out := FormatScalabilityAblation(rows)
	if !strings.Contains(out, "Scalability") {
		t.Error("format malformed")
	}
}

func TestBandwidthAblation(t *testing.T) {
	rows, err := BandwidthAblation("MT", tinyOpts(), []int{5, 20, 160})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Traffic reduction is width-independent (same bytes either way).
	for _, r := range rows {
		if r.TrafficReduction < 0.2 {
			t.Errorf("%d B/cy: traffic reduction %.2f too small", r.BytesPerCycle, r.TrafficReduction)
		}
	}
	// Compression's speedup must shrink as the link widens: on a slow link
	// (5 B/cy) it is large; on an ultra-wide 160 B/cy link, ≈none.
	if !(rows[0].Speedup > rows[1].Speedup && rows[1].Speedup > rows[2].Speedup-0.02) {
		t.Errorf("speedups %v not decreasing with link width",
			[]float64{rows[0].Speedup, rows[1].Speedup, rows[2].Speedup})
	}
	if rows[0].Speedup < 1.3 {
		t.Errorf("slow-link speedup %.2f too small", rows[0].Speedup)
	}
	if rows[2].Speedup > 1.25 {
		t.Errorf("fast-link speedup %.2f too large (link no longer bottleneck)", rows[2].Speedup)
	}
	out := FormatBandwidthAblation("MT", rows)
	if !strings.Contains(out, "Link-bandwidth") {
		t.Error("format malformed")
	}
}
