package runner

import (
	"fmt"
	"io"

	"mgpucompress/internal/comp"
	"mgpucompress/internal/core"
	"mgpucompress/internal/energy"
	"mgpucompress/internal/fabric"
	"mgpucompress/internal/fault"
	"mgpucompress/internal/sweep"
	"mgpucompress/internal/workloads"
)

// This file binds the generic internal/sweep engine to the simulator: it
// maps sweep.JobKey to runner.Options (and back), and exposes every table,
// figure and ablation as a method on Sweep so all artifacts produced by one
// process share a single memoized job cache — a (workload, policy) run that
// several artifacts need is simulated exactly once.

// SweepConfig parameterizes a Sweep.
type SweepConfig struct {
	// Jobs bounds concurrent simulations (default GOMAXPROCS; 1 = serial).
	Jobs int
	// Journal, when non-nil, receives one JSONL record per completed job;
	// feed it back through Resume to skip finished jobs after a crash.
	Journal io.Writer
	// OnProgress is called after every completed job.
	OnProgress func(sweep.Progress)
	// Trace records fabric transfers on every job for WriteTraceFile.
	// It is applied when a job executes, after key normalization, so it
	// never perturbs fingerprints (tracing is measurement-only).
	Trace bool
	// Run, when non-nil, replaces the local simulator as the job executor —
	// the seam the -server client mode uses to execute jobs on a remote
	// sweepd daemon while keeping the local memo cache, journaling and
	// deterministic assembly order. It must honor the same contract as the
	// simulator: the result is a pure function of the key.
	Run func(sweep.JobKey) (*Result, error)
}

// Sweep schedules simulation jobs through the orchestration engine.
type Sweep struct {
	eng   *sweep.Engine[*Result]
	trace bool
}

// NewSweep builds a sweep session.
func NewSweep(cfg SweepConfig) *Sweep {
	s := &Sweep{trace: cfg.Trace}
	run := s.executeJob
	if cfg.Run != nil {
		run = cfg.Run
	}
	s.eng = sweep.New(sweep.Config[*Result]{
		Workers:    cfg.Jobs,
		Run:        run,
		Journal:    cfg.Journal,
		OnProgress: cfg.OnProgress,
	})
	return s
}

// Result returns the (memoized) result for one job.
func (s *Sweep) Result(k sweep.JobKey) (*Result, error) { return s.eng.Get(k) }

// All runs the keys across the worker pool, returning results in key order.
func (s *Sweep) All(keys []sweep.JobKey) ([]*Result, error) { return s.eng.GetAll(keys) }

// Prefetch warms the cache with the keys (the parallel phase of
// cmd/reproduce; artifact assembly afterwards is pure cache hits).
func (s *Sweep) Prefetch(keys []sweep.JobKey) error { return s.eng.Prefetch(keys) }

// Resume replays a JSONL journal written by a previous run; loaded jobs are
// served from the cache instead of re-simulating.
func (s *Sweep) Resume(r io.Reader) (int, error) { return s.eng.Resume(r) }

// Stats snapshots the engine counters.
func (s *Sweep) Stats() sweep.Progress { return s.eng.Stats() }

// Completed lists every finished job with its key, sorted by canonical form
// (independent of scheduling), for the metrics/trace exporters.
func (s *Sweep) Completed() []sweep.CompletedJob[*Result] { return s.eng.Completed() }

// Key builds the normalized JobKey for one benchmark run under the options.
// Normalization (zero scale, the OnChip→MCM link default) keeps equal runs
// on equal fingerprints no matter how callers spell them.
func Key(bench string, opts Options) sweep.JobKey {
	k := sweep.JobKey{
		Workload:            bench,
		Policy:              opts.Policy.String(),
		Lambda:              opts.Lambda,
		Scale:               int(opts.Scale),
		CUsPerGPU:           opts.CUsPerGPU,
		NumGPUs:             opts.NumGPUs,
		Topology:            string(opts.Topology),
		Link:                int(opts.Link),
		RemoteCache:         opts.RemoteCache,
		FabricBytesPerCycle: opts.FabricBytesPerCycle,
		Characterize:        opts.Characterize,
		SeriesLimit:         opts.SeriesLimit,
		SeedOverride:        opts.Seed,
		FaultProfile:        opts.Fault.Canonical(),
		SimCores:            opts.SimCores,
	}
	if opts.Adaptive != nil {
		k.Policy = core.PolicyAdaptive.String()
		k.Lambda = opts.Adaptive.Lambda
		k.SampleCount = opts.Adaptive.SampleCount
		k.RunLength = opts.Adaptive.RunLength
		for _, c := range opts.Adaptive.Candidates {
			k.Candidates = append(k.Candidates, c.Algorithm().String())
		}
	}
	if k.Scale == 0 {
		k.Scale = int(workloads.ScaleSmall)
	}
	if energy.LinkClass(k.Link) == energy.OnChip {
		k.Link = int(energy.MCM) // Run treats the zero value as MCM
	}
	return k
}

// RunJob executes one simulation job straight from its key, without a sweep
// session (and so without tracing). It is the executor a resident daemon
// binds to the serve service: stateless, safe for concurrent use, and a pure
// function of the key like executeJob itself.
func RunJob(k sweep.JobKey) (*Result, error) {
	return (&Sweep{}).executeJob(k)
}

// executeJob is the engine's run function: the inverse of Key.
func (s *Sweep) executeJob(k sweep.JobKey) (*Result, error) {
	pol, err := core.ParsePolicy(k.Policy)
	if err != nil {
		return nil, fmt.Errorf("runner: job %s: %w", k.Fingerprint(), err)
	}
	opts := Options{
		Scale:               workloads.Scale(k.Scale),
		CUsPerGPU:           k.CUsPerGPU,
		Policy:              pol,
		Lambda:              k.Lambda,
		Characterize:        k.Characterize,
		SeriesLimit:         k.SeriesLimit,
		Link:                energy.LinkClass(k.Link),
		Topology:            fabric.Topology(k.Topology),
		RemoteCache:         k.RemoteCache,
		NumGPUs:             k.NumGPUs,
		FabricBytesPerCycle: k.FabricBytesPerCycle,
		// The seed is derived from the key's fingerprint (or pinned by
		// SeedOverride), not a scheduling artifact: equal jobs always
		// generate identical inputs, and distinct jobs draw from
		// domain-separated streams.
		Seed: k.Seed(),
		// Tracing is a sweep-level switch, applied after normalization so
		// it never reaches the fingerprint.
		Trace: s.trace,
		// SimCores likewise rides outside the fingerprint: it changes how
		// fast a job runs, never what it computes.
		SimCores: k.SimCores,
	}
	if k.FaultProfile != "" {
		prof, err := fault.Parse(k.FaultProfile)
		if err != nil {
			return nil, fmt.Errorf("runner: job %s: %w", k.Fingerprint(), err)
		}
		opts.Fault = prof
	}
	if k.SampleCount > 0 || k.RunLength > 0 || len(k.Candidates) > 0 {
		cands, err := compressorsFor(k.Candidates)
		if err != nil {
			return nil, err
		}
		opts.Adaptive = &core.Config{
			Lambda:      k.Lambda,
			SampleCount: k.SampleCount,
			RunLength:   k.RunLength,
			Candidates:  cands,
		}
	}
	return Run(k.Workload, opts)
}

// compressorsFor instantiates fresh codecs from canonical algorithm names.
func compressorsFor(names []string) ([]comp.Compressor, error) {
	if len(names) == 0 {
		return nil, nil
	}
	out := make([]comp.Compressor, 0, len(names))
	for _, name := range names {
		alg, err := algByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, comp.NewCompressor(alg))
	}
	return out, nil
}

func algByName(name string) (comp.Algorithm, error) {
	for _, alg := range []comp.Algorithm{comp.FPC, comp.BDI, comp.CPackZ, comp.BPC} {
		if alg.String() == name {
			return alg, nil
		}
	}
	return comp.None, fmt.Errorf("runner: unknown codec %q in job key", name)
}

// ---------------------------------------------------------------------------
// Artifact plans
// ---------------------------------------------------------------------------

// Fig1Benchmarks lists the Fig. 1 series benchmarks (the paper uses SC and
// FIR).
func Fig1Benchmarks() []string { return []string{"SC", "FIR"} }

// Fig1Samples is the series length the paper plots.
const Fig1Samples = 500

// characterizationKeys enumerates the Characterize runs shared by Table V,
// Table VI and any future characterization artifact.
func characterizationKeys(o ExpOptions) []sweep.JobKey {
	keys := make([]sweep.JobKey, 0, len(Benchmarks()))
	for _, b := range Benchmarks() {
		opts := o.base()
		opts.Characterize = true
		keys = append(keys, Key(b, opts))
	}
	return keys
}

// fig1Key is the series-collection run for one benchmark.
func fig1Key(bench string, n int, o ExpOptions) sweep.JobKey {
	opts := o.base()
	opts.SeriesLimit = n
	return Key(bench, opts)
}

// normalizedKeys enumerates, for every benchmark, the uncompressed baseline
// followed by one run per policy spec: stride len(specs)+1 per benchmark.
func normalizedKeys(specs []policySpec, o ExpOptions) []sweep.JobKey {
	var keys []sweep.JobKey
	for _, b := range Benchmarks() {
		keys = append(keys, Key(b, o.base()))
		for _, spec := range specs {
			opts := o.base()
			opts.Policy = spec.policy
			opts.Lambda = spec.lambda
			keys = append(keys, Key(b, opts))
		}
	}
	return keys
}

// ReproducePlan enumerates every simulation cmd/reproduce needs — Tables V
// and VI, Fig. 1 (SC, FIR), and Figs. 5-7 — deduplicated by fingerprint.
// Prefetching the plan runs the whole reproduction at full parallelism;
// assembling the artifacts afterwards is pure cache hits.
func ReproducePlan(o ExpOptions) []sweep.JobKey {
	var keys []sweep.JobKey
	keys = append(keys, characterizationKeys(o)...)
	for _, bench := range Fig1Benchmarks() {
		keys = append(keys, fig1Key(bench, Fig1Samples, o))
	}
	keys = append(keys, normalizedKeys(allSpecs(), o)...)
	return sweep.Dedup(keys)
}

// allSpecs is the union of the static (Fig. 5) and adaptive (Fig. 6) policy
// specs — exactly the Fig. 7 bar set.
func allSpecs() []policySpec {
	return append(append([]policySpec{}, staticSpecs...), adaptiveSpecs...)
}
