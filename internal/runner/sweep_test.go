package runner

import (
	"bytes"
	"encoding/json"
	"testing"

	"mgpucompress/internal/core"
	"mgpucompress/internal/energy"
	"mgpucompress/internal/workloads"
)

func tinySweep(jobs int) *Sweep {
	return NewSweep(SweepConfig{Jobs: jobs})
}

func TestKeyNormalization(t *testing.T) {
	// Every spelling of "the default baseline run" must share a fingerprint.
	bare := Key("SC", Options{})
	spelled := Key("SC", Options{Policy: core.PolicyNone, Scale: workloads.ScaleSmall, Link: energy.MCM})
	if bare.Fingerprint() != spelled.Fingerprint() {
		t.Fatalf("default-run spellings diverge:\n  %s\n  %s", bare.Canonical(), spelled.Canonical())
	}

	// An adaptive run via the policy string and via a default-geometry custom
	// config are the same simulation, so they must share a key.
	viaPolicy := Key("SC", Options{Policy: core.PolicyAdaptive, Lambda: 6})
	viaConfig := Key("SC", Options{Adaptive: &core.Config{Lambda: 6}})
	if viaPolicy.Fingerprint() != viaConfig.Fingerprint() {
		t.Fatalf("adaptive spellings diverge:\n  %s\n  %s",
			viaPolicy.Canonical(), viaConfig.Canonical())
	}

	// A custom sampling geometry is a different simulation and must not
	// collide with the default.
	custom := Key("SC", Options{Adaptive: &core.Config{Lambda: 6, SampleCount: 7, RunLength: 300}})
	if custom.Fingerprint() == viaPolicy.Fingerprint() {
		t.Fatal("custom geometry must not share the default adaptive fingerprint")
	}
}

func TestReproducePlanIsDeduplicated(t *testing.T) {
	o := tinyOpts()
	plan := ReproducePlan(o)
	seen := make(map[string]bool, len(plan))
	for _, k := range plan {
		fp := k.Fingerprint()
		if seen[fp] {
			t.Fatalf("duplicate job in plan: %s", k.Canonical())
		}
		seen[fp] = true
	}
	// The plan must cover the characterization runs and the Fig. 1 series.
	for _, k := range characterizationKeys(o) {
		if !seen[k.Fingerprint()] {
			t.Errorf("plan missing characterization run %s", k.Canonical())
		}
	}
	for _, b := range Fig1Benchmarks() {
		if !seen[fig1Key(b, Fig1Samples, o).Fingerprint()] {
			t.Errorf("plan missing Fig. 1 series for %s", b)
		}
	}
}

func TestSweepSharesCharacterizationRuns(t *testing.T) {
	s := tinySweep(4)
	o := tinyOpts()
	if _, err := s.TableV(o); err != nil {
		t.Fatal(err)
	}
	after5 := s.Stats().Simulated
	if want := len(Benchmarks()); after5 != want {
		t.Fatalf("Table V simulated %d jobs, want %d", after5, want)
	}
	// Table VI re-uses every characterization run: zero new simulations.
	if _, err := s.TableVI(o); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Simulated; got != after5 {
		t.Fatalf("Table VI re-simulated: %d -> %d jobs", after5, got)
	}
}

func TestSweepFig7ReusesFig5AndFig6Runs(t *testing.T) {
	s := tinySweep(4)
	o := tinyOpts()
	if _, err := s.Fig5(o); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fig6(o); err != nil {
		t.Fatal(err)
	}
	before := s.Stats().Simulated
	// Fig. 5 ran baseline+static, Fig. 6 baseline+adaptive (baseline shared).
	if want := len(Benchmarks()) * (1 + len(staticSpecs) + len(adaptiveSpecs)); before != want {
		t.Fatalf("Fig. 5+6 simulated %d jobs, want %d", before, want)
	}
	rows, err := s.Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Simulated; got != before {
		t.Fatalf("Fig. 7 re-simulated: %d -> %d jobs", before, got)
	}
	if want := len(Benchmarks()) * len(allSpecs()); len(rows) != want {
		t.Fatalf("Fig. 7 returned %d rows, want %d", len(rows), want)
	}
}

func TestSweepParallelMatchesSerial(t *testing.T) {
	o := tinyOpts()

	serial := tinySweep(1)
	rowsV1, err := serial.TableV(o)
	if err != nil {
		t.Fatal(err)
	}
	fig5s1, err := serial.Fig5(o)
	if err != nil {
		t.Fatal(err)
	}

	par := tinySweep(8)
	rowsV8, err := par.TableV(o)
	if err != nil {
		t.Fatal(err)
	}
	fig5s8, err := par.Fig5(o)
	if err != nil {
		t.Fatal(err)
	}

	// The determinism contract: formatted artifacts are byte-identical no
	// matter how many workers simulated them.
	if a, b := FormatTableV(rowsV1), FormatTableV(rowsV8); a != b {
		t.Errorf("Table V differs between -jobs 1 and -jobs 8:\n%s\n---\n%s", a, b)
	}
	f := func(rows []NormalizedResult) string {
		return FormatNormalized("Fig. 5", "traffic", rows) + FormatNormalized("Fig. 5", "time", rows)
	}
	if a, b := f(fig5s1), f(fig5s8); a != b {
		t.Errorf("Fig. 5 differs between -jobs 1 and -jobs 8:\n%s\n---\n%s", a, b)
	}
}

func TestSweepResumeSkipsFinishedJobs(t *testing.T) {
	o := tinyOpts()
	var journal bytes.Buffer

	first := NewSweep(SweepConfig{Jobs: 4, Journal: &journal})
	rows1, err := first.TableV(o)
	if err != nil {
		t.Fatal(err)
	}

	// A fresh process resuming from the journal must rebuild Table V from
	// the JSONL records alone — zero re-simulation, identical bytes. This
	// exercises the full Result JSON round trip (histograms included).
	second := tinySweep(4)
	loaded, err := second.Resume(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if want := len(Benchmarks()); loaded != want {
		t.Fatalf("Resume loaded %d jobs, want %d", loaded, want)
	}
	rows2, err := second.TableV(o)
	if err != nil {
		t.Fatal(err)
	}
	if st := second.Stats(); st.Simulated != 0 {
		t.Fatalf("resumed sweep simulated %d jobs, want 0", st.Simulated)
	}
	if a, b := FormatTableV(rows1), FormatTableV(rows2); a != b {
		t.Errorf("resumed Table V differs:\n%s\n---\n%s", a, b)
	}
}

func TestResultJSONRoundTripStable(t *testing.T) {
	// The journal stores Result as JSON; resume feeds them back through the
	// same formatters. marshal(unmarshal(marshal(m))) must equal marshal(m)
	// or resumed artifacts would drift from simulated ones.
	m, err := Run("MT", Options{Scale: workloads.ScaleTiny, CUsPerGPU: 2, Policy: core.PolicyAdaptive, Characterize: true})
	if err != nil {
		t.Fatal(err)
	}
	first, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("Result JSON not stable under round trip:\n%s\n---\n%s", first, second)
	}
}
