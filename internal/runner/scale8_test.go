package runner

import (
	"testing"

	"mgpucompress/internal/core"
	"mgpucompress/internal/workloads"
)

// Every workload must run and verify on 2- and 8-GPU systems, not just the
// paper's 4 (the platform and workloads are parametric in GPU count).
func TestWorkloadsAcrossGPUCounts(t *testing.T) {
	for _, n := range []int{2, 8} {
		for _, b := range Benchmarks() {
			opts := Options{Scale: workloads.ScaleTiny, CUsPerGPU: 2, NumGPUs: n,
				Policy: core.PolicyAdaptive, Lambda: 6}
			if _, err := Run(b, opts); err != nil {
				t.Errorf("%s at %d GPUs: %v", b, n, err)
			}
		}
	}
}
