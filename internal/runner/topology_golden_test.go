package runner

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"mgpucompress/internal/core"
	"mgpucompress/internal/fabric"
	"mgpucompress/internal/workloads"
)

var updateTopologyGolden = flag.Bool("update", false, "rewrite the per-topology golden digests")

// goldenOptions is the pinned workload behind the committed digests: the
// quickstart-scale SC run with a fixed input seed, adaptive λ=6, 8 GPUs.
// Everything that reaches the metric snapshot is pinned, so the digests
// only move when simulated behaviour moves.
func goldenOptions(topo fabric.Topology) Options {
	return Options{
		Scale:     workloads.ScaleTiny,
		CUsPerGPU: 2,
		NumGPUs:   8,
		Policy:    core.PolicyAdaptive,
		Lambda:    6,
		Seed:      42,
		Topology:  topo,
	}
}

func snapshotDigest(t *testing.T, topo fabric.Topology) string {
	t.Helper()
	res, err := Run("SC", goldenOptions(topo))
	if err != nil {
		t.Fatalf("%s: %v", topo, err)
	}
	var buf bytes.Buffer
	if err := res.Snapshot.WriteJSON(&buf); err != nil {
		t.Fatalf("%s: serializing snapshot: %v", topo, err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

// TestTopologyGoldenDigests pins the full metric snapshot of one seed-pinned
// workload on every topology. A digest moving means simulated behaviour
// changed on that interconnect — which must be an intentional, reviewed
// change. Regenerate with:
//
//	go test ./internal/runner -run TestTopologyGoldenDigests -update
func TestTopologyGoldenDigests(t *testing.T) {
	golden := filepath.Join("testdata", "topology_digests.json")

	got := map[string]string{}
	for _, topo := range fabric.Topologies() {
		got[string(topo)] = snapshotDigest(t, topo)
	}

	if *updateTopologyGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}

	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden digests (run with -update): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing %s: %v", golden, err)
	}

	var topos []string
	for k := range want {
		topos = append(topos, k)
	}
	sort.Strings(topos)
	if len(want) != len(got) {
		t.Errorf("golden file has %d topologies, run produced %d (run with -update?)", len(want), len(got))
	}
	for _, topo := range topos {
		if got[topo] != want[topo] {
			t.Errorf("%s: snapshot digest %s, golden %s — simulated behaviour changed on this topology (run with -update if intentional)",
				topo, got[topo], want[topo])
		}
	}
}

// TestSwitchedTopologiesAcrossGPUCounts: the switched fabrics must build and
// complete a verified workload at every target platform size, including the
// 64-GPU hierarchical configurations, and stay byte-identical between the
// serial and parallel engines at each size.
func TestSwitchedTopologiesAcrossGPUCounts(t *testing.T) {
	counts := []int{8, 16, 64}
	if testing.Short() {
		counts = []int{8, 16}
	}
	for _, topo := range []fabric.Topology{fabric.TopologyRing, fabric.TopologyMesh, fabric.TopologyTree} {
		for _, n := range counts {
			opts := goldenOptions(topo)
			opts.NumGPUs = n
			res, err := Run("SC", opts)
			if err != nil {
				t.Errorf("%s at %d GPUs: %v", topo, n, err)
				continue
			}
			var serial bytes.Buffer
			if err := res.Snapshot.WriteJSON(&serial); err != nil {
				t.Fatal(err)
			}
			opts.SimCores = 8
			par, err := Run("SC", opts)
			if err != nil {
				t.Errorf("%s at %d GPUs, 8 cores: %v", topo, n, err)
				continue
			}
			var parallel bytes.Buffer
			if err := par.Snapshot.WriteJSON(&parallel); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
				t.Errorf("%s at %d GPUs: parallel metric snapshot diverged from serial", topo, n)
			}
		}
	}
}
