package runner

import (
	"fmt"
	"sort"
	"strings"

	"mgpucompress/internal/comp"
	"mgpucompress/internal/core"
	"mgpucompress/internal/energy"
	"mgpucompress/internal/fabric"
	"mgpucompress/internal/fault"
	"mgpucompress/internal/stats"
	"mgpucompress/internal/workloads"
)

// ExpOptions parameterizes a whole experiment (one table or figure).
type ExpOptions struct {
	Scale     workloads.Scale
	CUsPerGPU int
	// Seed pins every job's input-generation seed (0 = derive each job's
	// seed from its key fingerprint). Pinning changes the job fingerprints,
	// so a seeded experiment never collides with an unseeded journal.
	Seed int64
	// Fault applies a fault-injection profile to every job (zero = off;
	// like Seed, it changes the job fingerprints when set).
	Fault fault.Profile
	// SimCores sets every job's engine worker count (0/1 = serial). Unlike
	// Seed and Fault it never reaches the fingerprints: results are
	// byte-identical for any value.
	SimCores int
	// Topology selects the interconnect for every job ("" = shared bus);
	// NumGPUs the endpoint count (0 = the paper's 4). Both reach the job
	// fingerprints, so experiments on different fabrics never share runs.
	Topology fabric.Topology
	NumGPUs  int
}

func (o ExpOptions) base() Options {
	return Options{Scale: o.Scale, CUsPerGPU: o.CUsPerGPU, Seed: o.Seed, Fault: o.Fault,
		SimCores: o.SimCores, Topology: o.Topology, NumGPUs: o.NumGPUs}
}

// ---------------------------------------------------------------------------
// Table V: Inter-GPU Data Characteristics
// ---------------------------------------------------------------------------

// TableVRow is one benchmark row of Table V.
type TableVRow struct {
	Benchmark string
	Reads     uint64
	Writes    uint64
	Entropy   float64
	Ratio     map[comp.Algorithm]float64
}

// TableV characterizes every benchmark's inter-GPU traffic: remote access
// counts, aggregate byte entropy, and the compression ratio each codec
// would achieve on the transferred payloads. The characterization runs are
// shared with TableVI through the sweep cache.
func (s *Sweep) TableV(o ExpOptions) ([]TableVRow, error) {
	ms, err := s.All(characterizationKeys(o))
	if err != nil {
		return nil, err
	}
	rows := make([]TableVRow, 0, len(ms))
	for i, b := range Benchmarks() {
		m := ms[i]
		row := TableVRow{
			Benchmark: b,
			Reads:     m.Traffic.RemoteReads,
			Writes:    m.Traffic.RemoteWrites,
			Entropy:   m.Traffic.Entropy(),
			Ratio:     make(map[comp.Algorithm]float64, 3),
		}
		for _, alg := range []comp.Algorithm{comp.BDI, comp.FPC, comp.CPackZ} {
			row.Ratio[alg] = m.CodecRatio(alg)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// TableV runs the characterization on a fresh single-use sweep.
func TableV(o ExpOptions) ([]TableVRow, error) { return NewSweep(SweepConfig{}).TableV(o) }

// FormatTableV renders Table V the way the paper prints it.
func FormatTableV(rows []TableVRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE V: Inter-GPU Data Characteristics\n")
	fmt.Fprintf(&b, "%-6s %10s %10s %8s %8s %8s %10s\n",
		"Bench.", "Read(K)", "Write(K)", "Entropy", "BDI", "FPC", "C-Pack+Z")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %10s %10s %8.2f %8.2f %8.2f %10.2f\n",
			r.Benchmark, stats.FormatKilo(r.Reads), stats.FormatKilo(r.Writes),
			r.Entropy, r.Ratio[comp.BDI], r.Ratio[comp.FPC], r.Ratio[comp.CPackZ])
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table VI: top detected patterns
// ---------------------------------------------------------------------------

// TableVIRow is one (algorithm, benchmark) cell: the top-3 detected
// patterns with their shares.
type TableVIRow struct {
	Algorithm comp.Algorithm
	Benchmark string
	Top       []comp.PatternShare
}

// TableVI reports the three most detected patterns by each compression
// algorithm for each benchmark, reusing TableV's characterization runs when
// both artifacts share a sweep.
func (s *Sweep) TableVI(o ExpOptions) ([]TableVIRow, error) {
	ms, err := s.All(characterizationKeys(o))
	if err != nil {
		return nil, err
	}
	var rows []TableVIRow
	for i, b := range Benchmarks() {
		for _, alg := range []comp.Algorithm{comp.FPC, comp.CPackZ, comp.BDI} {
			rows = append(rows, TableVIRow{
				Algorithm: alg,
				Benchmark: b,
				Top:       ms[i].PerCodec[alg].Patterns.Top(3),
			})
		}
	}
	return rows, nil
}

// TableVI runs the pattern characterization on a fresh single-use sweep.
func TableVI(o ExpOptions) ([]TableVIRow, error) { return NewSweep(SweepConfig{}).TableVI(o) }

// FormatTableVI renders Table VI.
func FormatTableVI(rows []TableVIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE VI: Three most detected patterns by compression algorithms\n")
	byAlg := map[comp.Algorithm][]TableVIRow{}
	for _, r := range rows {
		byAlg[r.Algorithm] = append(byAlg[r.Algorithm], r)
	}
	for _, alg := range []comp.Algorithm{comp.FPC, comp.CPackZ, comp.BDI} {
		fmt.Fprintf(&b, "%s:\n", alg)
		for _, r := range byAlg[alg] {
			var cells []string
			for _, t := range r.Top {
				cells = append(cells, fmt.Sprintf("(%d) %4.1f%%", t.Pattern, t.Share*100))
			}
			fmt.Fprintf(&b, "  %-4s %s\n", r.Benchmark, strings.Join(cells, "  "))
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig. 1: compressed size and entropy over consecutive transfers
// ---------------------------------------------------------------------------

// Fig1 collects the first n consecutive inter-GPU payload transfers of a
// benchmark (the paper uses SC and FIR, n = 500) with per-codec compressed
// sizes and per-transfer entropy.
func (s *Sweep) Fig1(benchmark string, n int, o ExpOptions) (*stats.Series, error) {
	m, err := s.Result(fig1Key(benchmark, n, o))
	if err != nil {
		return nil, err
	}
	return m.Series, nil
}

// Fig1 collects the series on a fresh single-use sweep.
func Fig1(benchmark string, n int, o ExpOptions) (*stats.Series, error) {
	return NewSweep(SweepConfig{}).Fig1(benchmark, n, o)
}

// FormatFig1 renders the series as columns (index, entropy, sizes).
func FormatFig1(benchmark string, s *stats.Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 1 (%s): %d consecutive inter-GPU transfers\n", benchmark, len(s.Samples))
	fmt.Fprintf(&b, "%6s %8s %6s %6s %10s\n", "xfer", "entropy", "FPC", "BDI", "C-Pack+Z")
	for _, smp := range s.Samples {
		fmt.Fprintf(&b, "%6d %8.3f %6d %6d %10d\n",
			smp.Index, smp.Entropy, smp.Size[comp.FPC], smp.Size[comp.BDI], smp.Size[comp.CPackZ])
	}
	return b.String()
}

// SummarizeFig1Phases splits the series into two halves and reports each
// codec's mean compressed size per half — the phase-change signature the
// paper discusses.
func SummarizeFig1Phases(s *stats.Series) map[comp.Algorithm][2]float64 {
	out := map[comp.Algorithm][2]float64{}
	if len(s.Samples) == 0 {
		return out
	}
	half := len(s.Samples) / 2
	for _, alg := range []comp.Algorithm{comp.FPC, comp.BDI, comp.CPackZ} {
		var sums [2]float64
		var counts [2]int
		for i, smp := range s.Samples {
			h := 0
			if i >= half {
				h = 1
			}
			sums[h] += float64(smp.Size[alg])
			counts[h]++
		}
		var means [2]float64
		for h := 0; h < 2; h++ {
			if counts[h] > 0 {
				means[h] = sums[h] / float64(counts[h])
			}
		}
		out[alg] = means
	}
	return out
}

// ---------------------------------------------------------------------------
// Figs. 5 and 6: normalized traffic and execution time
// ---------------------------------------------------------------------------

// NormalizedResult is one bar of Figs. 5/6/7: a policy's traffic, exec time
// and energy relative to no compression.
type NormalizedResult struct {
	Benchmark string
	Policy    string
	Traffic   float64
	ExecTime  float64
	Energy    float64
}

// normalize folds one benchmark's (baseline, per-spec) results into the
// Fig. 5/6/7 bars.
func normalize(benchmark string, specs []policySpec, base *Result, ms []*Result) []NormalizedResult {
	out := make([]NormalizedResult, 0, len(specs))
	for i, spec := range specs {
		m := ms[i]
		out = append(out, NormalizedResult{
			Benchmark: benchmark,
			Policy:    spec.label,
			Traffic:   float64(m.FabricBytes) / float64(base.FabricBytes),
			ExecTime:  float64(m.ExecCycles) / float64(base.ExecCycles),
			Energy:    m.TotalEnergyPJ() / base.TotalEnergyPJ(),
		})
	}
	return out
}

type policySpec struct {
	label  string
	policy core.PolicyID
	lambda float64
}

var staticSpecs = []policySpec{
	{"FPC", core.PolicyFPC, 0},
	{"BDI", core.PolicyBDI, 0},
	{"C-Pack+Z", core.PolicyCPackZ, 0},
}

var adaptiveSpecs = []policySpec{
	{"Adaptive λ=0", core.PolicyAdaptive, 0},
	{"Adaptive λ=6", core.PolicyAdaptive, 6},
	{"Adaptive λ=32", core.PolicyAdaptive, 32},
}

// Fig5 measures inter-GPU traffic and execution time for the static
// compression algorithms, normalized to no compression.
func (s *Sweep) Fig5(o ExpOptions) ([]NormalizedResult, error) {
	return s.runAll(staticSpecs, o)
}

// Fig6 measures the adaptive algorithm across λ values.
func (s *Sweep) Fig6(o ExpOptions) ([]NormalizedResult, error) {
	return s.runAll(adaptiveSpecs, o)
}

// Fig7 measures normalized energy for static and adaptive policies. Every
// run is shared with Fig5 and Fig6 through the sweep cache.
func (s *Sweep) Fig7(o ExpOptions) ([]NormalizedResult, error) {
	return s.runAll(allSpecs(), o)
}

// Fig5 measures the static codecs on a fresh single-use sweep.
func Fig5(o ExpOptions) ([]NormalizedResult, error) { return NewSweep(SweepConfig{}).Fig5(o) }

// Fig6 measures the adaptive λ sweep on a fresh single-use sweep.
func Fig6(o ExpOptions) ([]NormalizedResult, error) { return NewSweep(SweepConfig{}).Fig6(o) }

// Fig7 measures normalized energy on a fresh single-use sweep.
func Fig7(o ExpOptions) ([]NormalizedResult, error) { return NewSweep(SweepConfig{}).Fig7(o) }

// runAll fans every benchmark's baseline and per-spec runs out across the
// worker pool in one batch, then assembles the bars in canonical
// (benchmark, spec) order regardless of completion order.
func (s *Sweep) runAll(specs []policySpec, o ExpOptions) ([]NormalizedResult, error) {
	ms, err := s.All(normalizedKeys(specs, o))
	if err != nil {
		return nil, err
	}
	stride := len(specs) + 1 // baseline first, then one run per spec
	var out []NormalizedResult
	for i, b := range Benchmarks() {
		group := ms[i*stride : (i+1)*stride]
		out = append(out, normalize(b, specs, group[0], group[1:])...)
	}
	return out, nil
}

// FormatNormalized renders Fig. 5/6/7 results as a bench × policy matrix of
// the chosen metric ("traffic", "time" or "energy").
func FormatNormalized(title, metric string, rows []NormalizedResult) string {
	policies := orderedPolicies(rows)
	byKey := map[string]NormalizedResult{}
	benchSet := map[string]bool{}
	for _, r := range rows {
		byKey[r.Benchmark+"|"+r.Policy] = r
		benchSet[r.Benchmark] = true
	}
	var benches []string
	for _, b := range Benchmarks() {
		if benchSet[b] {
			benches = append(benches, b)
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (normalized %s, 1.00 = no compression)\n", title, metric)
	fmt.Fprintf(&sb, "%-6s", "Bench")
	for _, p := range policies {
		fmt.Fprintf(&sb, " %14s", p)
	}
	sb.WriteString("\n")
	sums := make([]float64, len(policies))
	for _, b := range benches {
		fmt.Fprintf(&sb, "%-6s", b)
		for i, p := range policies {
			r := byKey[b+"|"+p]
			v := pick(metric, r)
			sums[i] += v
			fmt.Fprintf(&sb, " %14.3f", v)
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "%-6s", "gmean*")
	for i := range policies {
		fmt.Fprintf(&sb, " %14.3f", sums[i]/float64(len(benches)))
	}
	sb.WriteString("   (*arithmetic mean)\n")
	return sb.String()
}

func pick(metric string, r NormalizedResult) float64 {
	switch metric {
	case "traffic":
		return r.Traffic
	case "time":
		return r.ExecTime
	default:
		return r.Energy
	}
}

func orderedPolicies(rows []NormalizedResult) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range rows {
		if !seen[r.Policy] {
			seen[r.Policy] = true
			out = append(out, r.Policy)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Sec. VII-C: area overhead
// ---------------------------------------------------------------------------

// FormatAreaOverhead renders the Sec. VII-C area calculation.
func FormatAreaOverhead() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sec. VII-C: area overhead vs a %.2f mm² 7nm R9 Nano die\n",
		energy.R9Nano7nmAreaMM2)
	algs := []comp.Algorithm{comp.BDI, comp.CPackZ, comp.FPC}
	sort.Slice(algs, func(i, j int) bool {
		return energy.AreaOverheadPercent(algs[i]) < energy.AreaOverheadPercent(algs[j])
	})
	for _, alg := range algs {
		fmt.Fprintf(&sb, "  %-9s %8.0f µm²  -> %.2e %%\n",
			alg, comp.CostOf(alg).AreaUM2, energy.AreaOverheadPercent(alg))
	}
	return sb.String()
}
