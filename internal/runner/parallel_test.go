package runner

import (
	"bytes"
	"runtime"
	"testing"

	"mgpucompress/internal/core"
	"mgpucompress/internal/workloads"
)

// snapshotBytes runs one workload and returns the serialized full metrics
// snapshot — every counter of every component, traffic accounting, energy
// gauges — plus the scalar results that must survive parallel execution.
func snapshotBytes(t *testing.T, abbrev string, opts Options) []byte {
	t.Helper()
	m, err := Run(abbrev, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Snapshot.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelMatchesSerial is the end-to-end differential gate of the
// conservative parallel engine: a full platform run — CUs, caches, DRAM,
// RDMA with an adaptive policy, the shared fabric — must produce a
// byte-identical metrics snapshot for -sim-cores 1, 2 and 8, under any
// GOMAXPROCS. Run it with -race to also catch unsynchronized sharing.
func TestParallelMatchesSerial(t *testing.T) {
	opts := Options{
		Scale:     workloads.ScaleTiny,
		CUsPerGPU: 2,
		Policy:    core.PolicyAdaptive,
		SimCores:  1,
	}
	for _, abbrev := range []string{"SC", "MT"} {
		want := snapshotBytes(t, abbrev, opts)
		for _, procs := range []int{1, runtime.GOMAXPROCS(0)} {
			prev := runtime.GOMAXPROCS(procs)
			for _, cores := range []int{2, 8} {
				o := opts
				o.SimCores = cores
				if got := snapshotBytes(t, abbrev, o); !bytes.Equal(got, want) {
					t.Errorf("%s: -sim-cores %d (GOMAXPROCS=%d) snapshot diverged from serial", abbrev, cores, procs)
				}
			}
			runtime.GOMAXPROCS(prev)
		}
	}
}
