package runner

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"mgpucompress/internal/trace"
)

// This file is the observability export surface: it turns a Result (or a
// whole Sweep) into the -metrics-out and -trace-out artifacts. Both formats
// are deterministic — a sweep exported at jobs=1 and jobs=16, or exported
// twice, produces byte-identical files — because snapshots are sorted by
// metric path and completed jobs are listed in canonical key order.

// TraceProcess folds the run's span timeline — controller phases, kernels,
// workload stages, and (in Trace mode) fabric transfers — into one Chrome
// trace process.
func (m *Result) TraceProcess(name string) trace.Process {
	p := trace.Process{Name: name}
	if m.Spans != nil {
		p.Spans = append(p.Spans, m.Spans.Spans()...)
	}
	if m.TraceLog != nil {
		p.Spans = append(p.Spans, m.TraceLog.Spans()...)
	}
	return p
}

// WriteTrace exports the run as Chrome trace-event JSON (load it at
// chrome://tracing or ui.perfetto.dev).
func (m *Result) WriteTrace(w io.Writer) error {
	return trace.ExportChrome(w, []trace.Process{m.TraceProcess(m.Workload)})
}

// WriteMetrics exports the run's full metric snapshot as sorted JSON.
func (m *Result) WriteMetrics(w io.Writer) error { return m.Snapshot.WriteJSON(w) }

// WriteTraceFile is WriteTrace to a file path.
func (m *Result) WriteTraceFile(path string) error {
	return writeFile(path, m.WriteTrace)
}

// WriteMetricsFile is WriteMetrics to a file path.
func (m *Result) WriteMetricsFile(path string) error {
	return writeFile(path, m.WriteMetrics)
}

// sweepMetricsEntry is one completed job in a sweep metrics file.
type sweepMetricsEntry struct {
	Key         string          `json:"key"`
	Fingerprint string          `json:"fingerprint"`
	Snapshot    json.RawMessage `json:"snapshot"`
}

// WriteMetrics exports every completed job's snapshot, ordered by canonical
// key. The bytes are a pure function of the completed job set: scheduling,
// worker count and cache hits leave no imprint.
func (s *Sweep) WriteMetrics(w io.Writer) error {
	jobs := s.Completed()
	entries := make([]sweepMetricsEntry, 0, len(jobs))
	for _, j := range jobs {
		snap, err := json.MarshalIndent(j.Result.Snapshot, "    ", "  ")
		if err != nil {
			return err
		}
		entries = append(entries, sweepMetricsEntry{
			Key:         j.Key.Canonical(),
			Fingerprint: j.Key.Fingerprint(),
			Snapshot:    snap,
		})
	}
	b, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// WriteTrace exports every completed job as one Chrome trace process named
// by its canonical key, in canonical order.
func (s *Sweep) WriteTrace(w io.Writer) error {
	jobs := s.Completed()
	procs := make([]trace.Process, 0, len(jobs))
	for _, j := range jobs {
		procs = append(procs, j.Result.TraceProcess(j.Key.Canonical()))
	}
	return trace.ExportChrome(w, procs)
}

// WriteMetricsFile is WriteMetrics to a file path.
func (s *Sweep) WriteMetricsFile(path string) error {
	return writeFile(path, s.WriteMetrics)
}

// WriteTraceFile is WriteTrace to a file path.
func (s *Sweep) WriteTraceFile(path string) error {
	return writeFile(path, s.WriteTrace)
}

func writeFile(path string, write func(io.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, f.Close()) }()
	if err := write(f); err != nil {
		return fmt.Errorf("runner: writing %s: %w", path, err)
	}
	return nil
}
