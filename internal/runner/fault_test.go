package runner

import (
	"encoding/json"
	"strings"
	"testing"

	"mgpucompress/internal/core"
	"mgpucompress/internal/fault"
	"mgpucompress/internal/workloads"
)

func mustParseProfile(t *testing.T, s string) fault.Profile {
	t.Helper()
	p, err := fault.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFaultOffSnapshotHasNoFaultPaths: a disabled profile must not register
// a single fault/guard metric — the off configuration stays byte-identical
// to a build that never heard of fault injection.
func TestFaultOffSnapshotHasNoFaultPaths(t *testing.T) {
	m, err := Run("MT", Options{Scale: workloads.ScaleTiny})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range m.Snapshot {
		for _, frag := range []string{"fault/", "/crc_errors", "/retries", "/nacks", "/stale_drops", "/timeouts", "/degraded_phases"} {
			if strings.Contains(s.Path, frag) {
				t.Errorf("fault-off snapshot contains %q", s.Path)
			}
		}
	}
}

// TestFaultRunsAreDeterministic is the deterministic-replay guarantee: the
// quickstart configuration run twice under an aggressive fault profile must
// produce byte-identical results, and the faults must actually bite.
func TestFaultRunsAreDeterministic(t *testing.T) {
	opts := Options{
		Scale:  workloads.ScaleTiny,
		Policy: core.PolicyAdaptive,
		Lambda: 6,
		Fault:  mustParseProfile(t, "aggressive"),
	}
	run := func() (*Result, []byte) {
		m, err := Run("MT", opts)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return m, data
	}
	m, a := run()
	_, b := run()
	if string(a) != string(b) {
		t.Fatal("same fault profile and seed produced different metrics")
	}

	injected := m.Snapshot.Value("fault/injected")
	if injected == 0 {
		t.Error("aggressive profile injected nothing")
	}
	var recovered float64
	for _, s := range m.Snapshot {
		if strings.HasSuffix(s.Path, "/retries") || strings.HasSuffix(s.Path, "/crc_errors") {
			recovered += s.Value
		}
	}
	if recovered == 0 {
		t.Error("faults were injected but never detected or retried")
	}
}

// TestFaultSeedChangesInjection: the same profile under a different seed
// must inject a different fault sequence.
func TestFaultSeedChangesInjection(t *testing.T) {
	run := func(seed int64) []byte {
		m, err := Run("MT", Options{
			Scale:  workloads.ScaleTiny,
			Policy: core.PolicyAdaptive,
			Lambda: 6,
			Seed:   seed,
			Fault:  mustParseProfile(t, "aggressive"),
		})
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if string(run(1)) == string(run(2)) {
		t.Fatal("different seeds produced identical faulty runs")
	}
}

// TestFaultProfileEntersJobFingerprint: the profile participates in the
// sweep key exactly when enabled, and survives the Key -> executeJob round
// trip.
func TestFaultProfileEntersJobFingerprint(t *testing.T) {
	base := Options{Scale: workloads.ScaleTiny}
	clean := Key("MT", base)
	if clean.FaultProfile != "" {
		t.Errorf("fault-off key carries profile %q", clean.FaultProfile)
	}

	faulty := base
	faulty.Fault = mustParseProfile(t, "light")
	fk := Key("MT", faulty)
	if fk.FaultProfile == "" || fk.Fingerprint() == clean.Fingerprint() {
		t.Fatal("fault profile did not change the job fingerprint")
	}
	// Spelling the preset explicitly lands on the same fingerprint.
	expl := base
	expl.Fault = mustParseProfile(t, "corrupt=0.01,drop=0.005,delay=0.02,delaycycles=64")
	if Key("MT", expl).Fingerprint() != fk.Fingerprint() {
		t.Error("preset and explicit spelling of one profile diverge")
	}

	s := NewSweep(SweepConfig{Jobs: 1})
	m, err := s.Result(fk)
	if err != nil {
		t.Fatal(err)
	}
	if m.Snapshot.Value("fault/injected") == 0 {
		t.Error("sweep-executed faulty job injected nothing")
	}
}
