package runner

import (
	"math"
	"strings"
	"testing"

	"mgpucompress/internal/comp"
	"mgpucompress/internal/core"
	"mgpucompress/internal/workloads"
)

func tinyOpts() ExpOptions {
	return ExpOptions{Scale: workloads.ScaleTiny, CUsPerGPU: 2}
}

func TestRunProducesMetrics(t *testing.T) {
	m, err := Run("MT", Options{Scale: workloads.ScaleTiny, CUsPerGPU: 2, Policy: core.PolicyBDI})
	if err != nil {
		t.Fatal(err)
	}
	if m.ExecCycles == 0 || m.FabricBytes == 0 {
		t.Error("empty metrics")
	}
	if m.Traffic.RemoteReads == 0 || m.Traffic.RemoteWrites == 0 {
		t.Error("no remote accesses recorded")
	}
	if m.CodecEnergyPJ <= 0 {
		t.Error("no codec energy under BDI policy")
	}
	if m.FabricEnergyPJ <= 0 {
		t.Error("no fabric energy")
	}
	if m.CompressionRatio() <= 1 {
		t.Errorf("MT under BDI should compress, ratio = %v", m.CompressionRatio())
	}
}

func TestRunUnknownInputs(t *testing.T) {
	if _, err := Run("NOPE", Options{Scale: workloads.ScaleTiny}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestCharacterizationRatios(t *testing.T) {
	opts := Options{Scale: workloads.ScaleTiny, CUsPerGPU: 2, Characterize: true}
	m, err := Run("MT", opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []comp.Algorithm{comp.FPC, comp.BDI, comp.CPackZ} {
		r := m.CodecRatio(alg)
		if r < 1.5 || r > 4 {
			t.Errorf("MT %v ratio = %.2f, want byte-range data ≈2.7-3.1", alg, r)
		}
		if m.PerCodec[alg].Patterns.Total() == 0 {
			t.Errorf("%v pattern histogram empty", alg)
		}
	}
	// Paper ordering for MT: FPC > BDI > C-Pack+Z.
	if !(m.CodecRatio(comp.FPC) > m.CodecRatio(comp.BDI) &&
		m.CodecRatio(comp.BDI) > m.CodecRatio(comp.CPackZ)) {
		t.Errorf("MT ratio ordering: FPC=%.2f BDI=%.2f CP=%.2f, want FPC>BDI>CP",
			m.CodecRatio(comp.FPC), m.CodecRatio(comp.BDI), m.CodecRatio(comp.CPackZ))
	}
}

func TestTableVShapes(t *testing.T) {
	rows, err := TableV(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("TableV has %d rows", len(rows))
	}
	byBench := map[string]TableVRow{}
	for _, r := range rows {
		byBench[r.Benchmark] = r
	}

	// AES: nearly incompressible, entropy ≈ 1 (paper 0.96).
	aes := byBench["AES"]
	if aes.Entropy < 0.85 {
		t.Errorf("AES entropy = %.2f, want ≈0.96", aes.Entropy)
	}
	for alg, r := range aes.Ratio {
		if r > 1.2 {
			t.Errorf("AES %v ratio = %.2f, want ≈1", alg, r)
		}
	}

	// BS: very low entropy, C-Pack+Z > FPC >> BDI (paper 37 > 32 > 10).
	bs := byBench["BS"]
	if bs.Entropy > 0.15 {
		t.Errorf("BS entropy = %.2f, want ≈0.02", bs.Entropy)
	}
	if !(bs.Ratio[comp.CPackZ] > bs.Ratio[comp.FPC] && bs.Ratio[comp.FPC] > bs.Ratio[comp.BDI]) {
		t.Errorf("BS ratio ordering: CP=%.1f FPC=%.1f BDI=%.1f, want CP>FPC>BDI",
			bs.Ratio[comp.CPackZ], bs.Ratio[comp.FPC], bs.Ratio[comp.BDI])
	}
	if bs.Ratio[comp.CPackZ] < 5 {
		t.Errorf("BS C-Pack+Z ratio = %.1f, want large", bs.Ratio[comp.CPackZ])
	}

	// FIR: BDI best, FPC worst ≈ 1 (paper 2.41 / 1.00 / 1.73). At the tiny
	// test scale the fixed-size setup table carries extra weight, so BDI
	// only needs to be within noise of C-Pack+Z here; the scale-4 bench
	// reproduces the full ordering.
	fir := byBench["FIR"]
	if !(fir.Ratio[comp.BDI] > fir.Ratio[comp.FPC] && fir.Ratio[comp.CPackZ] > fir.Ratio[comp.FPC]) {
		t.Errorf("FIR ratios: BDI=%.2f CP=%.2f FPC=%.2f, want BDI,CP > FPC",
			fir.Ratio[comp.BDI], fir.Ratio[comp.CPackZ], fir.Ratio[comp.FPC])
	}
	if fir.Ratio[comp.BDI] < fir.Ratio[comp.CPackZ]-0.15 {
		t.Errorf("FIR BDI ratio %.2f too far below C-Pack+Z %.2f",
			fir.Ratio[comp.BDI], fir.Ratio[comp.CPackZ])
	}
	if fir.Ratio[comp.FPC] > 1.35 {
		t.Errorf("FIR FPC ratio = %.2f, want ≈1.0", fir.Ratio[comp.FPC])
	}

	// KM: C-Pack+Z > FPC >> BDI (paper 7.8 / 5.6 / 1.4).
	km := byBench["KM"]
	if !(km.Ratio[comp.CPackZ] > km.Ratio[comp.BDI] && km.Ratio[comp.FPC] > km.Ratio[comp.BDI]) {
		t.Errorf("KM ratios: CP=%.2f FPC=%.2f BDI=%.2f, want CP,FPC > BDI",
			km.Ratio[comp.CPackZ], km.Ratio[comp.FPC], km.Ratio[comp.BDI])
	}

	// SC: BDI > C-Pack+Z > FPC ≈ 1 (paper 2.69 / 1.82 / 1.03).
	sc := byBench["SC"]
	if !(sc.Ratio[comp.BDI] > sc.Ratio[comp.CPackZ] && sc.Ratio[comp.CPackZ] > sc.Ratio[comp.FPC]) {
		t.Errorf("SC ratio ordering: BDI=%.2f CP=%.2f FPC=%.2f, want BDI>CP>FPC",
			sc.Ratio[comp.BDI], sc.Ratio[comp.CPackZ], sc.Ratio[comp.FPC])
	}

	// MT: reads ≈ writes.
	mt := byBench["MT"]
	rw := float64(mt.Reads) / float64(mt.Writes)
	if rw < 0.7 || rw > 1.4 {
		t.Errorf("MT read/write = %.2f, want ≈1", rw)
	}

	out := FormatTableV(rows)
	if !strings.Contains(out, "TABLE V") || !strings.Contains(out, "AES") {
		t.Error("FormatTableV output malformed")
	}
}

func TestTableVIShapes(t *testing.T) {
	rows, err := TableVI(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 21 { // 7 benchmarks × 3 algorithms
		t.Fatalf("TableVI has %d rows", len(rows))
	}
	find := func(alg comp.Algorithm, bench string) TableVIRow {
		for _, r := range rows {
			if r.Algorithm == alg && r.Benchmark == bench {
				return r
			}
		}
		t.Fatalf("row %v/%s missing", alg, bench)
		return TableVIRow{}
	}
	// AES under FPC: dominated by uncompressed lines (pattern 9).
	if top := find(comp.FPC, "AES").Top; len(top) == 0 || top[0].Pattern != 9 {
		t.Errorf("AES/FPC top pattern = %v, want 9 (uncompressed)", top)
	}
	// BS under C-Pack+Z: dominated by zero words/blocks (patterns 1/2).
	if top := find(comp.CPackZ, "BS").Top; len(top) == 0 || (top[0].Pattern != 1 && top[0].Pattern != 2) {
		t.Errorf("BS/C-Pack+Z top pattern = %v, want zero word/block", top)
	}
	// MT under BDI: dominated by base4-delta1 (pattern 6).
	if top := find(comp.BDI, "MT").Top; len(top) == 0 || top[0].Pattern != 6 {
		t.Errorf("MT/BDI top pattern = %v, want 6 (base4 delta1)", top)
	}
	out := FormatTableVI(rows)
	if !strings.Contains(out, "TABLE VI") {
		t.Error("FormatTableVI output malformed")
	}
}

func TestFig1SeriesAndPhases(t *testing.T) {
	s, err := Fig1("FIR", 300, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Samples) != 300 {
		t.Fatalf("collected %d samples", len(s.Samples))
	}
	phases := SummarizeFig1Phases(s)
	// Phase 1 (index table): FPC compresses, BDI cannot.
	// Phase 2 (sensor data): BDI compresses, FPC cannot.
	fpc, bdi := phases[comp.FPC], phases[comp.BDI]
	if !(fpc[0] < bdi[0]) {
		t.Errorf("FIR phase 1: FPC mean %.1f B, BDI %.1f B — want FPC smaller", fpc[0], bdi[0])
	}
	if !(bdi[1] < fpc[1]) {
		t.Errorf("FIR phase 2: BDI mean %.1f B, FPC %.1f B — want BDI smaller", bdi[1], fpc[1])
	}
	out := FormatFig1("FIR", s)
	if !strings.Contains(out, "Fig. 1") {
		t.Error("FormatFig1 malformed")
	}
}

func TestFig5StaticCompressionShapes(t *testing.T) {
	rows, err := Fig5(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	get := func(bench, policy string) NormalizedResult {
		for _, r := range rows {
			if r.Benchmark == bench && r.Policy == policy {
				return r
			}
		}
		t.Fatalf("missing %s/%s", bench, policy)
		return NormalizedResult{}
	}
	// BS: traffic collapses under C-Pack+Z and execution time drops.
	bs := get("BS", "C-Pack+Z")
	if bs.Traffic > 0.6 {
		t.Errorf("BS C-Pack+Z traffic = %.2f, want large reduction", bs.Traffic)
	}
	if bs.ExecTime > 1.0 {
		t.Errorf("BS C-Pack+Z exec time = %.2f, want speedup", bs.ExecTime)
	}
	// AES: no codec helps; traffic stays ≈1.
	for _, p := range []string{"FPC", "BDI", "C-Pack+Z"} {
		r := get("AES", p)
		if r.Traffic < 0.9 {
			t.Errorf("AES %s traffic = %.2f, want ≈1 (incompressible)", p, r.Traffic)
		}
	}
	// SC: BDI beats FPC on traffic.
	if !(get("SC", "BDI").Traffic < get("SC", "FPC").Traffic) {
		t.Error("SC: BDI should reduce traffic more than FPC")
	}
	out := FormatNormalized("Fig. 5", "traffic", rows)
	if !strings.Contains(out, "Fig. 5") {
		t.Error("FormatNormalized malformed")
	}
}

func TestFig6AdaptiveShapes(t *testing.T) {
	rows, err := Fig6(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	get := func(bench, policy string) NormalizedResult {
		for _, r := range rows {
			if r.Benchmark == bench && r.Policy == policy {
				return r
			}
		}
		t.Fatalf("missing %s/%s", bench, policy)
		return NormalizedResult{}
	}
	// λ=0 minimizes traffic in aggregate (Sec. VII-A2). At the tiny test
	// scale a 307-transfer adaptive cycle can straddle a workload phase
	// change, so individual benchmarks carry sampling staleness noise;
	// the aggregate claim is the paper's.
	var s0, s6, s32 float64
	for _, b := range Benchmarks() {
		s0 += get(b, "Adaptive λ=0").Traffic
		s6 += get(b, "Adaptive λ=6").Traffic
		s32 += get(b, "Adaptive λ=32").Traffic
	}
	if s0 > s6+0.1 || s0 > s32+0.1 {
		t.Errorf("λ=0 aggregate traffic %.3f not minimal (λ=6 %.3f, λ=32 %.3f)", s0, s6, s32)
	}
	// Adaptive must never blow up AES: bypass keeps exec time ≈1.
	for _, p := range []string{"Adaptive λ=0", "Adaptive λ=6", "Adaptive λ=32"} {
		r := get("AES", p)
		if r.ExecTime > 1.1 {
			t.Errorf("AES %s exec time = %.2f, want ≈1 (bypass)", p, r.ExecTime)
		}
	}
	// On average, λ=6 must reduce traffic and not slow things down.
	var tSum, eSum float64
	for _, b := range Benchmarks() {
		r := get(b, "Adaptive λ=6")
		tSum += r.Traffic
		eSum += r.ExecTime
	}
	n := float64(len(Benchmarks()))
	if tSum/n > 0.85 {
		t.Errorf("adaptive λ=6 mean traffic = %.2f, want clear reduction", tSum/n)
	}
	if eSum/n > 1.0 {
		t.Errorf("adaptive λ=6 mean exec time = %.2f, want speedup", eSum/n)
	}
}

func TestFig7EnergyShapes(t *testing.T) {
	rows, err := Fig7(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	get := func(bench, policy string) NormalizedResult {
		for _, r := range rows {
			if r.Benchmark == bench && r.Policy == policy {
				return r
			}
		}
		t.Fatalf("missing %s/%s", bench, policy)
		return NormalizedResult{}
	}
	// AES with a static codec adds energy overhead (paper: >1).
	if r := get("AES", "C-Pack+Z"); r.Energy < 1.0 {
		t.Errorf("AES C-Pack+Z energy = %.3f, want ≥1 (overhead on incompressible data)", r.Energy)
	}
	// Adaptive λ=6 saves energy on average.
	var sum float64
	for _, b := range Benchmarks() {
		sum += get(b, "Adaptive λ=6").Energy
	}
	mean := sum / float64(len(Benchmarks()))
	if mean > 0.9 {
		t.Errorf("adaptive λ=6 mean energy = %.2f, want clear saving (paper: 0.55)", mean)
	}
	// BS saves the most energy.
	if r := get("BS", "Adaptive λ=6"); r.Energy > 0.5 {
		t.Errorf("BS adaptive energy = %.2f, want large saving", r.Energy)
	}
	if math.IsNaN(mean) {
		t.Error("energy is NaN")
	}
}

func TestFormatAreaOverhead(t *testing.T) {
	out := FormatAreaOverhead()
	for _, want := range []string{"BDI", "FPC", "C-Pack+Z", "37.25"} {
		if !strings.Contains(out, want) {
			t.Errorf("area overhead output missing %q", want)
		}
	}
}

// Under fabric congestion, compression must reduce the end-to-end remote
// read latency despite adding codec cycles: queueing dominates.
func TestCompressionReducesRemoteReadLatencyUnderLoad(t *testing.T) {
	base, err := Run("SC", Options{Scale: workloads.ScaleTiny, CUsPerGPU: 2})
	if err != nil {
		t.Fatal(err)
	}
	bdi, err := Run("SC", Options{Scale: workloads.ScaleTiny, CUsPerGPU: 2, Policy: core.PolicyBDI})
	if err != nil {
		t.Fatal(err)
	}
	if base.ReadLatency.Count() == 0 || bdi.ReadLatency.Count() == 0 {
		t.Fatal("no latency samples")
	}
	if bdi.ReadLatency.Mean() >= base.ReadLatency.Mean() {
		t.Errorf("BDI mean read latency %.0f not below baseline %.0f",
			bdi.ReadLatency.Mean(), base.ReadLatency.Mean())
	}
	if base.ReadLatency.Percentile(95) < base.ReadLatency.Percentile(50) {
		t.Error("latency percentiles inconsistent")
	}
}

func TestRunWithTraceOption(t *testing.T) {
	m, err := Run("MT", Options{Scale: workloads.ScaleTiny, CUsPerGPU: 2, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.TraceLog == nil || len(m.TraceLog.Transfers()) == 0 {
		t.Fatal("no trace recorded")
	}
	// The trace's byte total must match the fabric accounting exactly.
	var total uint64
	for _, tr := range m.TraceLog.Transfers() {
		total += uint64(tr.Bytes)
	}
	if total != m.FabricBytes {
		t.Errorf("trace bytes %d != fabric bytes %d", total, m.FabricBytes)
	}
	if !strings.Contains(m.TraceLog.Summary(100, 3), "busiest flows") {
		t.Error("summary malformed")
	}
}

func TestPolicyNamesAndPick(t *testing.T) {
	names := PolicyNames()
	if len(names) != 4 || names[0] != "none" {
		t.Errorf("PolicyNames = %v", names)
	}
	r := NormalizedResult{Traffic: 1, ExecTime: 2, Energy: 3}
	if pick("traffic", r) != 1 || pick("time", r) != 2 || pick("energy", r) != 3 {
		t.Error("pick broken")
	}
}

// Fabric conservation: every wire message any engine sent is delivered
// exactly once. The delivered-message census must equal the sum of
// requests, responses and control messages implied by the RDMA counters
// and the kernel count.
func TestFabricMessageConservation(t *testing.T) {
	m, err := Run("MT", Options{Scale: workloads.ScaleTiny, CUsPerGPU: 2, Policy: core.PolicyBDI, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	s := m.Platform
	kernels := uint64(1) // MT launches exactly one kernel
	numGPUs := uint64(4)
	// reads and writes each produce a request and a response; every kernel
	// produces one LaunchCmd and one KernelDone per GPU.
	want := 2*s.RDMAReadsSent + 2*s.RDMAWritesSent + 2*kernels*numGPUs
	if s.FabricMessages != want {
		t.Errorf("fabric delivered %d messages, conservation predicts %d", s.FabricMessages, want)
	}
	// And the trace agrees message for message.
	if uint64(len(m.TraceLog.Transfers())) != s.FabricMessages {
		t.Errorf("trace has %d transfers, fabric delivered %d",
			len(m.TraceLog.Transfers()), s.FabricMessages)
	}
}
