package runner

import (
	"testing"

	"mgpucompress/internal/core"
	"mgpucompress/internal/energy"
	"mgpucompress/internal/fabric"
)

func TestOptionsValidate(t *testing.T) {
	for _, tc := range []struct {
		name    string
		opts    Options
		wantErr bool
	}{
		{"zero value", Options{}, false},
		{"full valid", Options{
			Policy: core.PolicyAdaptive, Lambda: 6, CUsPerGPU: 8, NumGPUs: 8,
			Topology: fabric.TopologyCrossbar, Link: energy.Node,
			SeriesLimit: 500, FabricBytesPerCycle: 40,
		}, false},
		{"adaptive config with matching policy", Options{
			Policy: core.PolicyAdaptive, Adaptive: &core.Config{Lambda: 6},
		}, false},
		{"adaptive config with none policy", Options{
			Adaptive: &core.Config{Lambda: 6},
		}, false},
		{"negative scale", Options{Scale: -1}, true},
		{"invalid policy", Options{Policy: core.PolicyID(99)}, true},
		{"negative policy", Options{Policy: core.PolicyID(-1)}, true},
		{"negative lambda", Options{Lambda: -0.5}, true},
		{"negative CUs", Options{CUsPerGPU: -2}, true},
		{"single GPU", Options{NumGPUs: 1}, true},
		{"negative series limit", Options{SeriesLimit: -1}, true},
		{"negative link width", Options{FabricBytesPerCycle: -20}, true},
		{"unknown topology", Options{Topology: "torus"}, true},
		{"invalid link class", Options{Link: energy.Node + 1}, true},
		{"adaptive config conflicts with static policy", Options{
			Policy: core.PolicyBDI, Adaptive: &core.Config{Lambda: 6},
		}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if (err != nil) != tc.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestRunRejectsInvalidOptions(t *testing.T) {
	if _, err := Run("MT", Options{NumGPUs: 1}); err == nil {
		t.Error("Run accepted a single-GPU system")
	}
	if _, err := Run("MT", Options{Policy: core.PolicyID(42)}); err == nil {
		t.Error("Run accepted an invalid policy ID")
	}
}
