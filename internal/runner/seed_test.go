package runner

import (
	"encoding/json"
	"testing"

	"mgpucompress/internal/workloads"
)

func marshalRun(t *testing.T, opts Options) []byte {
	t.Helper()
	m, err := Run("AES", opts)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRunSeedDeterminism: two runs under the same Options.Seed must yield
// identical metrics (the AES input is high-entropy, so the byte histogram
// in Traffic would expose any divergence); a different seed must not.
func TestRunSeedDeterminism(t *testing.T) {
	opts := Options{Scale: workloads.ScaleTiny, Seed: 7}
	a := marshalRun(t, opts)
	b := marshalRun(t, opts)
	if string(a) != string(b) {
		t.Fatal("same seed produced different metrics")
	}
	opts.Seed = 8
	if c := marshalRun(t, opts); string(a) == string(c) {
		t.Fatal("different seeds produced identical metrics")
	}
}

// TestSweepJobsSeedFromFingerprint: the sweep path derives Options.Seed
// from the JobKey fingerprint, so two independent engines executing the
// same key simulate byte-identical inputs and agree exactly.
func TestSweepJobsSeedFromFingerprint(t *testing.T) {
	k := Key("AES", Options{Scale: workloads.ScaleTiny})
	if k.Seed() == 0 {
		t.Fatal("JobKey seed is zero; sweep jobs would fall back to the default stream")
	}
	run := func() []byte {
		s := NewSweep(SweepConfig{Jobs: 1})
		m, err := s.Result(k)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if string(run()) != string(run()) {
		t.Fatal("two engines disagree on the same job key")
	}
}
