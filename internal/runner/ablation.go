package runner

import (
	"fmt"
	"strings"

	"mgpucompress/internal/comp"
	"mgpucompress/internal/core"
	"mgpucompress/internal/energy"
	"mgpucompress/internal/fabric"
	"mgpucompress/internal/sweep"
)

// This file holds ablation studies for the design choices the paper makes
// but does not sweep: the sampling-phase geometry (7 samples / 300-transfer
// running phase), the single-codec on/off degenerate mode of Sec. V, and
// the fabric integration level of Sec. II. Every study runs through the
// sweep engine: each builds its job keys up front, fans them out across the
// worker pool in one batch, and assembles rows in canonical order, so
// studies sharing runs (e.g. the uncompressed baseline) simulate them once
// per Sweep.

// customAdaptiveKey builds the job key for a custom adaptive configuration.
func customAdaptiveKey(bench string, o ExpOptions, cfg core.Config) sweep.JobKey {
	opts := o.base()
	opts.Adaptive = &cfg
	return Key(bench, opts)
}

// adaptiveKey is the paper's adaptive controller at λ=6 under extra options.
func adaptiveKey(bench string, opts Options) sweep.JobKey {
	opts.Policy = core.PolicyAdaptive
	opts.Lambda = core.DefaultLambda
	return Key(bench, opts)
}

// SamplingAblationRow measures one (sampleCount, runLength) configuration.
type SamplingAblationRow struct {
	SampleCount int
	RunLength   int
	Traffic     float64 // normalized to no compression
	ExecTime    float64
}

// samplingGeometries is the swept (sampleCount, runLength) grid.
var samplingGeometries = func() [][2]int {
	var g [][2]int
	for _, sc := range []int{3, 7, 15} {
		for _, rl := range []int{100, 300, 1000} {
			g = append(g, [2]int{sc, rl})
		}
	}
	return g
}()

// SamplingAblation sweeps the sampling-phase geometry on one benchmark,
// normalized to the uncompressed baseline. The paper fixes 7 samples per
// 300 transfers "achieving a balance between sampling accuracy and
// efficiency" (Sec. V); this quantifies that balance.
func (s *Sweep) SamplingAblation(bench string, o ExpOptions) ([]SamplingAblationRow, error) {
	keys := []sweep.JobKey{Key(bench, o.base())}
	for _, g := range samplingGeometries {
		keys = append(keys, customAdaptiveKey(bench, o, core.Config{
			Lambda:      core.DefaultLambda,
			SampleCount: g[0],
			RunLength:   g[1],
		}))
	}
	ms, err := s.All(keys)
	if err != nil {
		return nil, err
	}
	base := ms[0]
	rows := make([]SamplingAblationRow, 0, len(samplingGeometries))
	for i, g := range samplingGeometries {
		m := ms[1+i]
		rows = append(rows, SamplingAblationRow{
			SampleCount: g[0],
			RunLength:   g[1],
			Traffic:     float64(m.FabricBytes) / float64(base.FabricBytes),
			ExecTime:    float64(m.ExecCycles) / float64(base.ExecCycles),
		})
	}
	return rows, nil
}

// SamplingAblation sweeps the geometry on a fresh single-use sweep.
func SamplingAblation(bench string, o ExpOptions) ([]SamplingAblationRow, error) {
	return NewSweep(SweepConfig{}).SamplingAblation(bench, o)
}

// FormatSamplingAblation renders the sweep.
func FormatSamplingAblation(bench string, rows []SamplingAblationRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sampling-phase ablation on %s (normalized to no compression)\n", bench)
	fmt.Fprintf(&sb, "%8s %8s %10s %10s\n", "samples", "run", "traffic", "time")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%8d %8d %10.3f %10.3f\n", r.SampleCount, r.RunLength, r.Traffic, r.ExecTime)
	}
	return sb.String()
}

// OnOffAblationRow compares one codec used statically versus under the
// single-candidate adaptive ("on/off") controller of Sec. V.
type OnOffAblationRow struct {
	Benchmark      string
	Alg            comp.Algorithm
	StaticTime     float64 // normalized exec time
	OnOffTime      float64
	StaticEnergyPJ float64 // codec energy, absolute
	OnOffEnergyPJ  float64
}

var onOffAlgs = []comp.Algorithm{comp.FPC, comp.BDI, comp.CPackZ}

// OnOffAblation shows that even with a single codec integrated, the
// adaptive scheme pays for itself by switching the circuit off on
// incompressible phases.
func (s *Sweep) OnOffAblation(benches []string, o ExpOptions) ([]OnOffAblationRow, error) {
	var keys []sweep.JobKey
	for _, b := range benches {
		keys = append(keys, Key(b, o.base()))
		for _, alg := range onOffAlgs {
			staticOpts := o.base()
			switch alg {
			case comp.FPC:
				staticOpts.Policy = core.PolicyFPC
			case comp.BDI:
				staticOpts.Policy = core.PolicyBDI
			case comp.CPackZ:
				staticOpts.Policy = core.PolicyCPackZ
			}
			keys = append(keys, Key(b, staticOpts))
			keys = append(keys, customAdaptiveKey(b, o, core.Config{
				Lambda:     core.DefaultLambda,
				Candidates: []comp.Compressor{comp.NewCompressor(alg)},
			}))
		}
	}
	ms, err := s.All(keys)
	if err != nil {
		return nil, err
	}
	stride := 1 + 2*len(onOffAlgs)
	var rows []OnOffAblationRow
	for i, b := range benches {
		group := ms[i*stride : (i+1)*stride]
		base := group[0]
		for j, alg := range onOffAlgs {
			st, oo := group[1+2*j], group[2+2*j]
			rows = append(rows, OnOffAblationRow{
				Benchmark:      b,
				Alg:            alg,
				StaticTime:     float64(st.ExecCycles) / float64(base.ExecCycles),
				OnOffTime:      float64(oo.ExecCycles) / float64(base.ExecCycles),
				StaticEnergyPJ: st.CodecEnergyPJ,
				OnOffEnergyPJ:  oo.CodecEnergyPJ,
			})
		}
	}
	return rows, nil
}

// OnOffAblation runs the comparison on a fresh single-use sweep.
func OnOffAblation(benches []string, o ExpOptions) ([]OnOffAblationRow, error) {
	return NewSweep(SweepConfig{}).OnOffAblation(benches, o)
}

// FormatOnOffAblation renders the on/off comparison.
func FormatOnOffAblation(rows []OnOffAblationRow) string {
	var sb strings.Builder
	sb.WriteString("Single-codec on/off ablation (Sec. V): static vs adaptive single-candidate\n")
	fmt.Fprintf(&sb, "%-6s %-9s %12s %12s %16s %16s\n",
		"Bench", "Codec", "static time", "on/off time", "static codec pJ", "on/off codec pJ")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-6s %-9s %12.3f %12.3f %16.0f %16.0f\n",
			r.Benchmark, r.Alg, r.StaticTime, r.OnOffTime, r.StaticEnergyPJ, r.OnOffEnergyPJ)
	}
	return sb.String()
}

// LinkClassRow reports adaptive λ=6 energy savings for one fabric class.
type LinkClassRow struct {
	Link          energy.LinkClass
	BaselinePJ    float64
	CompressedPJ  float64
	SavingPercent float64
}

// LinkClassAblation recomputes Fig. 7's energy saving across the
// integration levels of Sec. II: the fabric transfer energy scales with
// pJ/b while the codec overhead stays fixed, so savings grow with distance.
func (s *Sweep) LinkClassAblation(bench string, o ExpOptions) ([]LinkClassRow, error) {
	links := []energy.LinkClass{energy.MCM, energy.Board, energy.Node}
	var keys []sweep.JobKey
	for _, link := range links {
		baseOpts := o.base()
		baseOpts.Link = link
		keys = append(keys, Key(bench, baseOpts))
		opts := o.base()
		opts.Link = link
		keys = append(keys, adaptiveKey(bench, opts))
	}
	ms, err := s.All(keys)
	if err != nil {
		return nil, err
	}
	rows := make([]LinkClassRow, 0, len(links))
	for i, link := range links {
		base, m := ms[2*i], ms[2*i+1]
		rows = append(rows, LinkClassRow{
			Link:          link,
			BaselinePJ:    base.TotalEnergyPJ(),
			CompressedPJ:  m.TotalEnergyPJ(),
			SavingPercent: 100 * (1 - m.TotalEnergyPJ()/base.TotalEnergyPJ()),
		})
	}
	return rows, nil
}

// LinkClassAblation runs the sweep on a fresh single-use sweep.
func LinkClassAblation(bench string, o ExpOptions) ([]LinkClassRow, error) {
	return NewSweep(SweepConfig{}).LinkClassAblation(bench, o)
}

// FormatLinkClassAblation renders the link-class sweep.
func FormatLinkClassAblation(bench string, rows []LinkClassRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fabric-class ablation on %s (adaptive λ=6)\n", bench)
	fmt.Fprintf(&sb, "%-22s %14s %14s %10s\n", "link", "baseline nJ", "adaptive nJ", "saving")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-22s %14.1f %14.1f %9.1f%%\n",
			r.Link, r.BaselinePJ/1e3, r.CompressedPJ/1e3, r.SavingPercent)
	}
	return sb.String()
}

// ExtensionRow compares the paper's adaptive controller against the two
// extensions: the BPC-augmented candidate set (related work, Kim et al.)
// and congestion-driven dynamic λ (the dynamic selection Sec. V leaves
// out).
type ExtensionRow struct {
	Benchmark       string
	AdaptiveTraffic float64
	BPCTraffic      float64
	DynamicTraffic  float64
	AdaptiveTime    float64
	BPCTime         float64
	DynamicTime     float64
}

// ExtensionAblation measures the extensions on the given benchmarks.
func (s *Sweep) ExtensionAblation(benches []string, o ExpOptions) ([]ExtensionRow, error) {
	var keys []sweep.JobKey
	for _, b := range benches {
		keys = append(keys, Key(b, o.base()))
		keys = append(keys, adaptiveKey(b, o.base()))
		keys = append(keys, customAdaptiveKey(b, o, core.Config{
			Lambda:     core.DefaultLambda,
			Candidates: comp.ExtendedCompressors(),
		}))
		dynOpts := o.base()
		dynOpts.Policy = core.PolicyDynamic
		keys = append(keys, Key(b, dynOpts))
	}
	ms, err := s.All(keys)
	if err != nil {
		return nil, err
	}
	const stride = 4
	rows := make([]ExtensionRow, 0, len(benches))
	for i, b := range benches {
		group := ms[i*stride : (i+1)*stride]
		base := group[0]
		norm := func(m *Result) (float64, float64) {
			return float64(m.FabricBytes) / float64(base.FabricBytes),
				float64(m.ExecCycles) / float64(base.ExecCycles)
		}
		row := ExtensionRow{Benchmark: b}
		row.AdaptiveTraffic, row.AdaptiveTime = norm(group[1])
		row.BPCTraffic, row.BPCTime = norm(group[2])
		row.DynamicTraffic, row.DynamicTime = norm(group[3])
		rows = append(rows, row)
	}
	return rows, nil
}

// ExtensionAblation runs the comparison on a fresh single-use sweep.
func ExtensionAblation(benches []string, o ExpOptions) ([]ExtensionRow, error) {
	return NewSweep(SweepConfig{}).ExtensionAblation(benches, o)
}

// FormatExtensionAblation renders the extension comparison.
func FormatExtensionAblation(rows []ExtensionRow) string {
	var sb strings.Builder
	sb.WriteString("Extension ablation: adaptive λ=6 vs +BPC candidate vs dynamic λ\n")
	fmt.Fprintf(&sb, "%-6s | %9s %9s %9s | %9s %9s %9s\n",
		"Bench", "adpt trf", "+BPC trf", "dyn trf", "adpt t", "+BPC t", "dyn t")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-6s | %9.3f %9.3f %9.3f | %9.3f %9.3f %9.3f\n",
			r.Benchmark, r.AdaptiveTraffic, r.BPCTraffic, r.DynamicTraffic,
			r.AdaptiveTime, r.BPCTime, r.DynamicTime)
	}
	return sb.String()
}

// TopologyRow compares one interconnect (bus, crossbar, ring, mesh or
// tree) with and without adaptive compression.
type TopologyRow struct {
	Benchmark string
	Topology  fabric.Topology
	// Cycles without / with adaptive λ=6 compression.
	BaseCycles     uint64
	AdaptiveCycles uint64
	// Speedup from compression on this topology.
	CompressionSpeedup float64
}

// TopologyAblation quantifies how much of compression's win comes from
// relieving fabric contention: on the richer crossbar, the same traffic
// reduction buys less time, while the switched topologies (ring, mesh,
// tree) add multi-hop serialization that compression relieves at every hop.
func (s *Sweep) TopologyAblation(benches []string, o ExpOptions) ([]TopologyRow, error) {
	topos := fabric.Topologies()
	var keys []sweep.JobKey
	for _, b := range benches {
		for _, topo := range topos {
			baseOpts := o.base()
			baseOpts.Topology = topo
			keys = append(keys, Key(b, baseOpts))
			opts := o.base()
			opts.Topology = topo
			keys = append(keys, adaptiveKey(b, opts))
		}
	}
	ms, err := s.All(keys)
	if err != nil {
		return nil, err
	}
	var rows []TopologyRow
	for i, b := range benches {
		for j, topo := range topos {
			base, m := ms[(i*len(topos)+j)*2], ms[(i*len(topos)+j)*2+1]
			rows = append(rows, TopologyRow{
				Benchmark:          b,
				Topology:           topo,
				BaseCycles:         base.ExecCycles,
				AdaptiveCycles:     m.ExecCycles,
				CompressionSpeedup: float64(base.ExecCycles) / float64(m.ExecCycles),
			})
		}
	}
	return rows, nil
}

// TopologyAblation runs the comparison on a fresh single-use sweep.
func TopologyAblation(benches []string, o ExpOptions) ([]TopologyRow, error) {
	return NewSweep(SweepConfig{}).TopologyAblation(benches, o)
}

// FormatTopologyAblation renders the topology comparison.
func FormatTopologyAblation(rows []TopologyRow) string {
	var sb strings.Builder
	sb.WriteString("Topology ablation: compression speedup per interconnect\n")
	fmt.Fprintf(&sb, "%-6s %-10s %14s %14s %10s\n",
		"Bench", "topology", "base cycles", "adaptive cyc", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-6s %-10s %14d %14d %9.2fx\n",
			r.Benchmark, r.Topology, r.BaseCycles, r.AdaptiveCycles, r.CompressionSpeedup)
	}
	return sb.String()
}

// RemoteCacheRow compares four configurations of one benchmark: the paper's
// baseline, compression alone (adaptive λ=6), the L1.5 remote cache alone
// (Arunkumar et al.), and both combined.
type RemoteCacheRow struct {
	Benchmark string
	// Normalized execution time (1.00 = neither mechanism).
	Compression float64
	RemoteCache float64
	Both        float64
	// Normalized fabric traffic.
	CompressionTraffic float64
	RemoteCacheTraffic float64
	BothTraffic        float64
}

// RemoteCacheAblation quantifies how the two bandwidth mechanisms compose:
// the remote cache removes repeat transfers, compression shrinks the rest.
func (s *Sweep) RemoteCacheAblation(benches []string, o ExpOptions) ([]RemoteCacheRow, error) {
	variantKey := func(b string, policy core.PolicyID, rc bool) sweep.JobKey {
		opts := o.base()
		opts.Policy = policy
		opts.Lambda = core.DefaultLambda
		opts.RemoteCache = rc
		return Key(b, opts)
	}
	var keys []sweep.JobKey
	for _, b := range benches {
		keys = append(keys,
			variantKey(b, core.PolicyNone, false),
			variantKey(b, core.PolicyAdaptive, false),
			variantKey(b, core.PolicyNone, true),
			variantKey(b, core.PolicyAdaptive, true))
	}
	ms, err := s.All(keys)
	if err != nil {
		return nil, err
	}
	const stride = 4
	rows := make([]RemoteCacheRow, 0, len(benches))
	for i, b := range benches {
		group := ms[i*stride : (i+1)*stride]
		base := group[0]
		norm := func(m *Result) (float64, float64) {
			return float64(m.ExecCycles) / float64(base.ExecCycles),
				float64(m.FabricBytes) / float64(base.FabricBytes)
		}
		row := RemoteCacheRow{Benchmark: b}
		row.Compression, row.CompressionTraffic = norm(group[1])
		row.RemoteCache, row.RemoteCacheTraffic = norm(group[2])
		row.Both, row.BothTraffic = norm(group[3])
		rows = append(rows, row)
	}
	return rows, nil
}

// RemoteCacheAblation runs the composition study on a fresh single-use
// sweep.
func RemoteCacheAblation(benches []string, o ExpOptions) ([]RemoteCacheRow, error) {
	return NewSweep(SweepConfig{}).RemoteCacheAblation(benches, o)
}

// FormatRemoteCacheAblation renders the composition study.
func FormatRemoteCacheAblation(rows []RemoteCacheRow) string {
	var sb strings.Builder
	sb.WriteString("Remote-cache (L1.5) × compression ablation (normalized, 1.00 = neither)\n")
	fmt.Fprintf(&sb, "%-6s | %9s %9s %9s | %9s %9s %9s\n",
		"Bench", "compr t", "cache t", "both t", "compr trf", "cache trf", "both trf")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-6s | %9.3f %9.3f %9.3f | %9.3f %9.3f %9.3f\n",
			r.Benchmark, r.Compression, r.RemoteCache, r.Both,
			r.CompressionTraffic, r.RemoteCacheTraffic, r.BothTraffic)
	}
	return sb.String()
}

// ScalabilityRow measures one GPU-count configuration.
type ScalabilityRow struct {
	Benchmark string
	NumGPUs   int
	// Speedup of adaptive λ=6 compression over no compression at this
	// GPU count.
	CompressionSpeedup float64
	// TrafficReduction is 1 − (compressed / baseline fabric bytes).
	TrafficReduction float64
}

// ScalabilityAblation sweeps the GPU count: more GPUs mean a larger remote
// fraction on the same shared bus, so compression's leverage grows.
func (s *Sweep) ScalabilityAblation(bench string, o ExpOptions, gpuCounts []int) ([]ScalabilityRow, error) {
	var keys []sweep.JobKey
	for _, n := range gpuCounts {
		baseOpts := o.base()
		baseOpts.NumGPUs = n
		keys = append(keys, Key(bench, baseOpts))
		opts := o.base()
		opts.NumGPUs = n
		keys = append(keys, adaptiveKey(bench, opts))
	}
	ms, err := s.All(keys)
	if err != nil {
		return nil, err
	}
	rows := make([]ScalabilityRow, 0, len(gpuCounts))
	for i, n := range gpuCounts {
		base, m := ms[2*i], ms[2*i+1]
		rows = append(rows, ScalabilityRow{
			Benchmark:          bench,
			NumGPUs:            n,
			CompressionSpeedup: float64(base.ExecCycles) / float64(m.ExecCycles),
			TrafficReduction:   1 - float64(m.FabricBytes)/float64(base.FabricBytes),
		})
	}
	return rows, nil
}

// ScalabilityAblation runs the GPU-count sweep on a fresh single-use sweep.
func ScalabilityAblation(bench string, o ExpOptions, gpuCounts []int) ([]ScalabilityRow, error) {
	return NewSweep(SweepConfig{}).ScalabilityAblation(bench, o, gpuCounts)
}

// FormatScalabilityAblation renders the GPU-count sweep.
func FormatScalabilityAblation(rows []ScalabilityRow) string {
	var sb strings.Builder
	sb.WriteString("Scalability ablation: adaptive compression vs GPU count\n")
	fmt.Fprintf(&sb, "%-6s %8s %12s %16s\n", "Bench", "GPUs", "speedup", "traffic saved")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-6s %8d %11.2fx %15.1f%%\n",
			r.Benchmark, r.NumGPUs, r.CompressionSpeedup, 100*r.TrafficReduction)
	}
	return sb.String()
}

// BandwidthRow measures compression's value at one link width.
type BandwidthRow struct {
	BytesPerCycle int
	GbPerSec      float64
	// Normalized to the uncompressed baseline at the SAME link width.
	Speedup          float64
	TrafficReduction float64
	// BaseBusUtilization shows whether the link was the bottleneck.
	BaseCycles uint64
}

// BandwidthAblation sweeps the inter-GPU link width. The Sec. II taxonomy
// spans 12.5 GB/s InfiniBand to TB/s on-die links; this quantifies where
// along that range link compression stops buying execution time (it always
// buys energy).
func (s *Sweep) BandwidthAblation(bench string, o ExpOptions, widths []int) ([]BandwidthRow, error) {
	var keys []sweep.JobKey
	for _, w := range widths {
		baseOpts := o.base()
		baseOpts.FabricBytesPerCycle = w
		keys = append(keys, Key(bench, baseOpts))
		opts := o.base()
		opts.FabricBytesPerCycle = w
		keys = append(keys, adaptiveKey(bench, opts))
	}
	ms, err := s.All(keys)
	if err != nil {
		return nil, err
	}
	rows := make([]BandwidthRow, 0, len(widths))
	for i, w := range widths {
		base, m := ms[2*i], ms[2*i+1]
		rows = append(rows, BandwidthRow{
			BytesPerCycle:    w,
			GbPerSec:         float64(w) * 8, // at 1 GHz
			Speedup:          float64(base.ExecCycles) / float64(m.ExecCycles),
			TrafficReduction: 1 - float64(m.FabricBytes)/float64(base.FabricBytes),
			BaseCycles:       base.ExecCycles,
		})
	}
	return rows, nil
}

// BandwidthAblation runs the link-width sweep on a fresh single-use sweep.
func BandwidthAblation(bench string, o ExpOptions, widths []int) ([]BandwidthRow, error) {
	return NewSweep(SweepConfig{}).BandwidthAblation(bench, o, widths)
}

// FormatBandwidthAblation renders the link-width sweep.
func FormatBandwidthAblation(bench string, rows []BandwidthRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Link-bandwidth ablation on %s (adaptive λ=6 vs none at each width)\n", bench)
	fmt.Fprintf(&sb, "%10s %10s %12s %16s %14s\n", "B/cycle", "Gb/s", "speedup", "traffic saved", "base cycles")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%10d %10.0f %11.2fx %15.1f%% %14d\n",
			r.BytesPerCycle, r.GbPerSec, r.Speedup, 100*r.TrafficReduction, r.BaseCycles)
	}
	return sb.String()
}
