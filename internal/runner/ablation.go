package runner

import (
	"fmt"
	"strings"

	"mgpucompress/internal/comp"
	"mgpucompress/internal/core"
	"mgpucompress/internal/energy"
	"mgpucompress/internal/fabric"
	"mgpucompress/internal/platform"
	"mgpucompress/internal/workloads"
)

// This file holds ablation studies for the design choices the paper makes
// but does not sweep: the sampling-phase geometry (7 samples / 300-transfer
// running phase), the single-codec on/off degenerate mode of Sec. V, and
// the fabric integration level of Sec. II.

// SamplingAblationRow measures one (sampleCount, runLength) configuration.
type SamplingAblationRow struct {
	SampleCount int
	RunLength   int
	Traffic     float64 // normalized to no compression
	ExecTime    float64
}

// runCustomAdaptive runs a benchmark with a fully custom adaptive config on
// every compressing endpoint.
func runCustomAdaptive(bench string, o ExpOptions, cfg core.Config) (*Metrics, error) {
	w, err := workloads.ByAbbrev(bench, o.Scale)
	if err != nil {
		return nil, err
	}
	rec := newRecorder(Options{})
	pcfg := platform.DefaultConfig()
	if o.CUsPerGPU > 0 {
		pcfg.CUsPerGPU = o.CUsPerGPU
	}
	pcfg.Recorder = rec
	pcfg.NewPolicy = func(int) core.Policy { return core.NewAdaptive(cfg) }
	p := platform.New(pcfg)
	if err := w.Setup(p); err != nil {
		return nil, err
	}
	if err := w.Run(p); err != nil {
		return nil, err
	}
	if err := w.Verify(p); err != nil {
		return nil, err
	}
	return &Metrics{
		Workload:      bench,
		Policy:        "adaptive(custom)",
		ExecCycles:    uint64(p.ExecCycles()),
		FabricBytes:   p.Bus.TotalBytes(),
		Traffic:       rec.traffic,
		CodecEnergyPJ: rec.energy,
	}, nil
}

// SamplingAblation sweeps the sampling-phase geometry on one benchmark,
// normalized to the uncompressed baseline. The paper fixes 7 samples per
// 300 transfers "achieving a balance between sampling accuracy and
// efficiency" (Sec. V); this quantifies that balance.
func SamplingAblation(bench string, o ExpOptions) ([]SamplingAblationRow, error) {
	base, err := Run(bench, o.base())
	if err != nil {
		return nil, err
	}
	var rows []SamplingAblationRow
	for _, sc := range []int{3, 7, 15} {
		for _, rl := range []int{100, 300, 1000} {
			m, err := runCustomAdaptive(bench, o, core.Config{
				Lambda:      core.DefaultLambda,
				SampleCount: sc,
				RunLength:   rl,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, SamplingAblationRow{
				SampleCount: sc,
				RunLength:   rl,
				Traffic:     float64(m.FabricBytes) / float64(base.FabricBytes),
				ExecTime:    float64(m.ExecCycles) / float64(base.ExecCycles),
			})
		}
	}
	return rows, nil
}

// FormatSamplingAblation renders the sweep.
func FormatSamplingAblation(bench string, rows []SamplingAblationRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sampling-phase ablation on %s (normalized to no compression)\n", bench)
	fmt.Fprintf(&sb, "%8s %8s %10s %10s\n", "samples", "run", "traffic", "time")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%8d %8d %10.3f %10.3f\n", r.SampleCount, r.RunLength, r.Traffic, r.ExecTime)
	}
	return sb.String()
}

// OnOffAblationRow compares one codec used statically versus under the
// single-candidate adaptive ("on/off") controller of Sec. V.
type OnOffAblationRow struct {
	Benchmark      string
	Alg            comp.Algorithm
	StaticTime     float64 // normalized exec time
	OnOffTime      float64
	StaticEnergyPJ float64 // codec energy, absolute
	OnOffEnergyPJ  float64
}

// OnOffAblation shows that even with a single codec integrated, the
// adaptive scheme pays for itself by switching the circuit off on
// incompressible phases.
func OnOffAblation(benches []string, o ExpOptions) ([]OnOffAblationRow, error) {
	var rows []OnOffAblationRow
	for _, b := range benches {
		base, err := Run(b, o.base())
		if err != nil {
			return nil, err
		}
		for _, alg := range []comp.Algorithm{comp.FPC, comp.BDI, comp.CPackZ} {
			staticOpts := o.base()
			staticOpts.Policy = strings.ToLower(strings.ReplaceAll(alg.String(), "-", ""))
			switch alg {
			case comp.FPC:
				staticOpts.Policy = "fpc"
			case comp.BDI:
				staticOpts.Policy = "bdi"
			case comp.CPackZ:
				staticOpts.Policy = "cpackz"
			}
			st, err := Run(b, staticOpts)
			if err != nil {
				return nil, err
			}
			oo, err := runCustomAdaptive(b, o, core.Config{
				Lambda:     core.DefaultLambda,
				Candidates: []comp.Compressor{comp.NewCompressor(alg)},
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, OnOffAblationRow{
				Benchmark:      b,
				Alg:            alg,
				StaticTime:     float64(st.ExecCycles) / float64(base.ExecCycles),
				OnOffTime:      float64(oo.ExecCycles) / float64(base.ExecCycles),
				StaticEnergyPJ: st.CodecEnergyPJ,
				OnOffEnergyPJ:  oo.CodecEnergyPJ,
			})
		}
	}
	return rows, nil
}

// FormatOnOffAblation renders the on/off comparison.
func FormatOnOffAblation(rows []OnOffAblationRow) string {
	var sb strings.Builder
	sb.WriteString("Single-codec on/off ablation (Sec. V): static vs adaptive single-candidate\n")
	fmt.Fprintf(&sb, "%-6s %-9s %12s %12s %16s %16s\n",
		"Bench", "Codec", "static time", "on/off time", "static codec pJ", "on/off codec pJ")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-6s %-9s %12.3f %12.3f %16.0f %16.0f\n",
			r.Benchmark, r.Alg, r.StaticTime, r.OnOffTime, r.StaticEnergyPJ, r.OnOffEnergyPJ)
	}
	return sb.String()
}

// LinkClassRow reports adaptive λ=6 energy savings for one fabric class.
type LinkClassRow struct {
	Link          energy.LinkClass
	BaselinePJ    float64
	CompressedPJ  float64
	SavingPercent float64
}

// LinkClassAblation recomputes Fig. 7's energy saving across the
// integration levels of Sec. II: the fabric transfer energy scales with
// pJ/b while the codec overhead stays fixed, so savings grow with distance.
func LinkClassAblation(bench string, o ExpOptions) ([]LinkClassRow, error) {
	var rows []LinkClassRow
	for _, link := range []energy.LinkClass{energy.MCM, energy.Board, energy.Node} {
		baseOpts := o.base()
		baseOpts.Link = link
		base, err := Run(bench, baseOpts)
		if err != nil {
			return nil, err
		}
		opts := o.base()
		opts.Link = link
		opts.Policy = "adaptive"
		opts.Lambda = core.DefaultLambda
		m, err := Run(bench, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, LinkClassRow{
			Link:          link,
			BaselinePJ:    base.TotalEnergyPJ(),
			CompressedPJ:  m.TotalEnergyPJ(),
			SavingPercent: 100 * (1 - m.TotalEnergyPJ()/base.TotalEnergyPJ()),
		})
	}
	return rows, nil
}

// FormatLinkClassAblation renders the link-class sweep.
func FormatLinkClassAblation(bench string, rows []LinkClassRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fabric-class ablation on %s (adaptive λ=6)\n", bench)
	fmt.Fprintf(&sb, "%-22s %14s %14s %10s\n", "link", "baseline nJ", "adaptive nJ", "saving")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-22s %14.1f %14.1f %9.1f%%\n",
			r.Link, r.BaselinePJ/1e3, r.CompressedPJ/1e3, r.SavingPercent)
	}
	return sb.String()
}

// ExtensionRow compares the paper's adaptive controller against the two
// extensions: the BPC-augmented candidate set (related work, Kim et al.)
// and congestion-driven dynamic λ (the dynamic selection Sec. V leaves
// out).
type ExtensionRow struct {
	Benchmark       string
	AdaptiveTraffic float64
	BPCTraffic      float64
	DynamicTraffic  float64
	AdaptiveTime    float64
	BPCTime         float64
	DynamicTime     float64
}

// ExtensionAblation measures the extensions on the given benchmarks.
func ExtensionAblation(benches []string, o ExpOptions) ([]ExtensionRow, error) {
	var rows []ExtensionRow
	for _, b := range benches {
		base, err := Run(b, o.base())
		if err != nil {
			return nil, err
		}
		adaptOpts := o.base()
		adaptOpts.Policy = "adaptive"
		adaptOpts.Lambda = core.DefaultLambda
		adapt, err := Run(b, adaptOpts)
		if err != nil {
			return nil, err
		}
		bpcM, err := runCustomAdaptive(b, o, core.Config{
			Lambda:     core.DefaultLambda,
			Candidates: comp.ExtendedCompressors(),
		})
		if err != nil {
			return nil, err
		}
		dynOpts := o.base()
		dynOpts.Policy = "dynamic"
		dyn, err := Run(b, dynOpts)
		if err != nil {
			return nil, err
		}
		norm := func(m *Metrics) (float64, float64) {
			return float64(m.FabricBytes) / float64(base.FabricBytes),
				float64(m.ExecCycles) / float64(base.ExecCycles)
		}
		row := ExtensionRow{Benchmark: b}
		row.AdaptiveTraffic, row.AdaptiveTime = norm(adapt)
		row.BPCTraffic, row.BPCTime = norm(bpcM)
		row.DynamicTraffic, row.DynamicTime = norm(dyn)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatExtensionAblation renders the extension comparison.
func FormatExtensionAblation(rows []ExtensionRow) string {
	var sb strings.Builder
	sb.WriteString("Extension ablation: adaptive λ=6 vs +BPC candidate vs dynamic λ\n")
	fmt.Fprintf(&sb, "%-6s | %9s %9s %9s | %9s %9s %9s\n",
		"Bench", "adpt trf", "+BPC trf", "dyn trf", "adpt t", "+BPC t", "dyn t")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-6s | %9.3f %9.3f %9.3f | %9.3f %9.3f %9.3f\n",
			r.Benchmark, r.AdaptiveTraffic, r.BPCTraffic, r.DynamicTraffic,
			r.AdaptiveTime, r.BPCTime, r.DynamicTime)
	}
	return sb.String()
}

// TopologyRow compares the shared bus against the crossbar extension, with
// and without adaptive compression.
type TopologyRow struct {
	Benchmark string
	Topology  fabric.Topology
	// Cycles without / with adaptive λ=6 compression.
	BaseCycles     uint64
	AdaptiveCycles uint64
	// Speedup from compression on this topology.
	CompressionSpeedup float64
}

// TopologyAblation quantifies how much of compression's win comes from
// relieving fabric contention: on the richer crossbar, the same traffic
// reduction buys less time.
func TopologyAblation(benches []string, o ExpOptions) ([]TopologyRow, error) {
	var rows []TopologyRow
	for _, b := range benches {
		for _, topo := range []fabric.Topology{fabric.TopologyBus, fabric.TopologyCrossbar} {
			baseOpts := o.base()
			baseOpts.Topology = topo
			base, err := Run(b, baseOpts)
			if err != nil {
				return nil, err
			}
			opts := o.base()
			opts.Topology = topo
			opts.Policy = "adaptive"
			opts.Lambda = core.DefaultLambda
			m, err := Run(b, opts)
			if err != nil {
				return nil, err
			}
			rows = append(rows, TopologyRow{
				Benchmark:          b,
				Topology:           topo,
				BaseCycles:         base.ExecCycles,
				AdaptiveCycles:     m.ExecCycles,
				CompressionSpeedup: float64(base.ExecCycles) / float64(m.ExecCycles),
			})
		}
	}
	return rows, nil
}

// FormatTopologyAblation renders the topology comparison.
func FormatTopologyAblation(rows []TopologyRow) string {
	var sb strings.Builder
	sb.WriteString("Topology ablation: compression speedup on bus vs crossbar\n")
	fmt.Fprintf(&sb, "%-6s %-10s %14s %14s %10s\n",
		"Bench", "topology", "base cycles", "adaptive cyc", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-6s %-10s %14d %14d %9.2fx\n",
			r.Benchmark, r.Topology, r.BaseCycles, r.AdaptiveCycles, r.CompressionSpeedup)
	}
	return sb.String()
}

// RemoteCacheRow compares four configurations of one benchmark: the paper's
// baseline, compression alone (adaptive λ=6), the L1.5 remote cache alone
// (Arunkumar et al.), and both combined.
type RemoteCacheRow struct {
	Benchmark string
	// Normalized execution time (1.00 = neither mechanism).
	Compression float64
	RemoteCache float64
	Both        float64
	// Normalized fabric traffic.
	CompressionTraffic float64
	RemoteCacheTraffic float64
	BothTraffic        float64
}

// RemoteCacheAblation quantifies how the two bandwidth mechanisms compose:
// the remote cache removes repeat transfers, compression shrinks the rest.
func RemoteCacheAblation(benches []string, o ExpOptions) ([]RemoteCacheRow, error) {
	var rows []RemoteCacheRow
	for _, b := range benches {
		variant := func(policy string, rc bool) (*Metrics, error) {
			opts := o.base()
			opts.Policy = policy
			opts.Lambda = core.DefaultLambda
			opts.RemoteCache = rc
			return Run(b, opts)
		}
		base, err := variant("none", false)
		if err != nil {
			return nil, err
		}
		compr, err := variant("adaptive", false)
		if err != nil {
			return nil, err
		}
		cached, err := variant("none", true)
		if err != nil {
			return nil, err
		}
		both, err := variant("adaptive", true)
		if err != nil {
			return nil, err
		}
		norm := func(m *Metrics) (float64, float64) {
			return float64(m.ExecCycles) / float64(base.ExecCycles),
				float64(m.FabricBytes) / float64(base.FabricBytes)
		}
		row := RemoteCacheRow{Benchmark: b}
		row.Compression, row.CompressionTraffic = norm(compr)
		row.RemoteCache, row.RemoteCacheTraffic = norm(cached)
		row.Both, row.BothTraffic = norm(both)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatRemoteCacheAblation renders the composition study.
func FormatRemoteCacheAblation(rows []RemoteCacheRow) string {
	var sb strings.Builder
	sb.WriteString("Remote-cache (L1.5) × compression ablation (normalized, 1.00 = neither)\n")
	fmt.Fprintf(&sb, "%-6s | %9s %9s %9s | %9s %9s %9s\n",
		"Bench", "compr t", "cache t", "both t", "compr trf", "cache trf", "both trf")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-6s | %9.3f %9.3f %9.3f | %9.3f %9.3f %9.3f\n",
			r.Benchmark, r.Compression, r.RemoteCache, r.Both,
			r.CompressionTraffic, r.RemoteCacheTraffic, r.BothTraffic)
	}
	return sb.String()
}

// ScalabilityRow measures one GPU-count configuration.
type ScalabilityRow struct {
	Benchmark string
	NumGPUs   int
	// Speedup of adaptive λ=6 compression over no compression at this
	// GPU count.
	CompressionSpeedup float64
	// TrafficReduction is 1 − (compressed / baseline fabric bytes).
	TrafficReduction float64
}

// ScalabilityAblation sweeps the GPU count: more GPUs mean a larger remote
// fraction on the same shared bus, so compression's leverage grows.
func ScalabilityAblation(bench string, o ExpOptions, gpuCounts []int) ([]ScalabilityRow, error) {
	var rows []ScalabilityRow
	for _, n := range gpuCounts {
		baseOpts := o.base()
		baseOpts.NumGPUs = n
		base, err := Run(bench, baseOpts)
		if err != nil {
			return nil, err
		}
		opts := o.base()
		opts.NumGPUs = n
		opts.Policy = "adaptive"
		opts.Lambda = core.DefaultLambda
		m, err := Run(bench, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScalabilityRow{
			Benchmark:          bench,
			NumGPUs:            n,
			CompressionSpeedup: float64(base.ExecCycles) / float64(m.ExecCycles),
			TrafficReduction:   1 - float64(m.FabricBytes)/float64(base.FabricBytes),
		})
	}
	return rows, nil
}

// FormatScalabilityAblation renders the GPU-count sweep.
func FormatScalabilityAblation(rows []ScalabilityRow) string {
	var sb strings.Builder
	sb.WriteString("Scalability ablation: adaptive compression vs GPU count\n")
	fmt.Fprintf(&sb, "%-6s %8s %12s %16s\n", "Bench", "GPUs", "speedup", "traffic saved")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-6s %8d %11.2fx %15.1f%%\n",
			r.Benchmark, r.NumGPUs, r.CompressionSpeedup, 100*r.TrafficReduction)
	}
	return sb.String()
}

// BandwidthRow measures compression's value at one link width.
type BandwidthRow struct {
	BytesPerCycle int
	GbPerSec      float64
	// Normalized to the uncompressed baseline at the SAME link width.
	Speedup          float64
	TrafficReduction float64
	// BaseBusUtilization shows whether the link was the bottleneck.
	BaseCycles uint64
}

// BandwidthAblation sweeps the inter-GPU link width. The Sec. II taxonomy
// spans 12.5 GB/s InfiniBand to TB/s on-die links; this quantifies where
// along that range link compression stops buying execution time (it always
// buys energy).
func BandwidthAblation(bench string, o ExpOptions, widths []int) ([]BandwidthRow, error) {
	var rows []BandwidthRow
	for _, w := range widths {
		baseOpts := o.base()
		baseOpts.FabricBytesPerCycle = w
		base, err := Run(bench, baseOpts)
		if err != nil {
			return nil, err
		}
		opts := o.base()
		opts.FabricBytesPerCycle = w
		opts.Policy = "adaptive"
		opts.Lambda = core.DefaultLambda
		m, err := Run(bench, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, BandwidthRow{
			BytesPerCycle:    w,
			GbPerSec:         float64(w) * 8, // at 1 GHz
			Speedup:          float64(base.ExecCycles) / float64(m.ExecCycles),
			TrafficReduction: 1 - float64(m.FabricBytes)/float64(base.FabricBytes),
			BaseCycles:       base.ExecCycles,
		})
	}
	return rows, nil
}

// FormatBandwidthAblation renders the link-width sweep.
func FormatBandwidthAblation(bench string, rows []BandwidthRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Link-bandwidth ablation on %s (adaptive λ=6 vs none at each width)\n", bench)
	fmt.Fprintf(&sb, "%10s %10s %12s %16s %14s\n", "B/cycle", "Gb/s", "speedup", "traffic saved", "base cycles")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%10d %10.0f %11.2fx %15.1f%% %14d\n",
			r.BytesPerCycle, r.GbPerSec, r.Speedup, 100*r.TrafficReduction, r.BaseCycles)
	}
	return sb.String()
}
