package core

import (
	"fmt"
	"math"

	"mgpucompress/internal/metrics"
)

// This file implements the extension the paper leaves on the table in
// Sec. V: "We select the lambda value statically ... thereby avoiding the
// additional complexity of dynamic selection." DynamicAdaptive supplies
// that dynamic selection.
//
// Eq. (1)'s λ is an exchange rate between codec cycles and payload bits: if
// codec latency is fully exposed, one cycle costs the fabric's full
// bandwidth (160 bits at 20 B/cycle); if the link is congested, latency
// hides behind queueing and compression ratio is all that matters. The
// controller therefore observes its RDMA engine's output-queue depth — a
// purely local congestion signal — and recomputes λ at every sampling
// phase:
//
//	λ = λmax / (1 + k·avgQueueDepth)
//
// deep queues → λ→0 (chase ratio), idle link → λ→λmax (chase latency).

// CongestionObserver is implemented by policies that want a congestion
// signal from the transport. The RDMA engine calls it before each transfer
// with the number of messages waiting in its fabric output queue.
type CongestionObserver interface {
	ObserveCongestion(queuedMessages int)
}

// DynamicConfig parameterizes DynamicAdaptive.
type DynamicConfig struct {
	// MaxLambda is λ when the link is completely idle. Default 32 (the
	// largest value the paper sweeps).
	MaxLambda float64
	// Sensitivity is k in the formula above. Default 1.
	Sensitivity float64
	// SampleCount and RunLength follow the adaptive defaults.
	SampleCount int
	RunLength   int
}

func (c *DynamicConfig) fillDefaults() {
	if c.MaxLambda <= 0 {
		c.MaxLambda = 32
	}
	if c.Sensitivity <= 0 {
		c.Sensitivity = 1
	}
	if c.SampleCount <= 0 {
		c.SampleCount = DefaultSampleCount
	}
	if c.RunLength <= 0 {
		c.RunLength = DefaultRunLength
	}
}

// DynamicAdaptive is an adaptive policy whose λ follows link congestion.
type DynamicAdaptive struct {
	cfg   DynamicConfig
	inner *Adaptive

	queueSum   float64
	queueObs   uint64
	transfers  int
	lambdaHist []float64
}

// NewDynamicAdaptive builds the dynamic-λ policy.
func NewDynamicAdaptive(cfg DynamicConfig) *DynamicAdaptive {
	cfg.fillDefaults()
	d := &DynamicAdaptive{cfg: cfg}
	d.inner = NewAdaptive(Config{
		Lambda:      cfg.MaxLambda, // idle until told otherwise
		SampleCount: cfg.SampleCount,
		RunLength:   cfg.RunLength,
	})
	d.lambdaHist = append(d.lambdaHist, cfg.MaxLambda)
	return d
}

// Name implements Policy.
func (d *DynamicAdaptive) Name() string { return "Adaptive λ=dynamic" }

// ObserveCongestion implements CongestionObserver.
func (d *DynamicAdaptive) ObserveCongestion(queued int) {
	d.queueSum += float64(queued)
	d.queueObs++
}

// Lambda returns the λ currently in force.
func (d *DynamicAdaptive) Lambda() float64 { return d.inner.cfg.Lambda }

// LambdaHistory returns λ at each completed recalibration, oldest first.
func (d *DynamicAdaptive) LambdaHistory() []float64 {
	return append([]float64(nil), d.lambdaHist...)
}

// Process implements Policy.
func (d *DynamicAdaptive) Process(line []byte) Decision {
	// Recalibrate λ at the boundary into each sampling phase.
	period := d.cfg.SampleCount + d.cfg.RunLength
	if d.transfers%period == 0 && d.transfers > 0 {
		d.recalibrate()
	}
	d.transfers++
	return d.inner.Process(line)
}

func (d *DynamicAdaptive) recalibrate() {
	avg := 0.0
	if d.queueObs > 0 {
		avg = d.queueSum / float64(d.queueObs)
	}
	lambda := d.cfg.MaxLambda / (1 + d.cfg.Sensitivity*avg)
	if math.IsNaN(lambda) || lambda < 0 {
		lambda = 0
	}
	d.inner.cfg.Lambda = lambda
	d.lambdaHist = append(d.lambdaHist, lambda)
	d.queueSum, d.queueObs = 0, 0
}

// Selected exposes the inner controller's choice.
func (d *DynamicAdaptive) Selected() (alg fmt.Stringer, sampling bool) {
	a, s := d.inner.Selected()
	return a, s
}

// SetPhaseHook forwards the phase observer to the inner controller.
func (d *DynamicAdaptive) SetPhaseHook(h PhaseHook) { d.inner.SetPhaseHook(h) }

// ObserveIntegrity forwards the transport's integrity signal to the inner
// controller (IntegrityObserver).
func (d *DynamicAdaptive) ObserveIntegrity(ok bool) { d.inner.ObserveIntegrity(ok) }

// SetDegradeK forwards the degradation threshold to the inner controller.
func (d *DynamicAdaptive) SetDegradeK(k int) { d.inner.SetDegradeK(k) }

// RegisterIntegrityMetrics forwards to the inner controller.
func (d *DynamicAdaptive) RegisterIntegrityMetrics(reg *metrics.Registry, prefix string) {
	d.inner.RegisterIntegrityMetrics(reg, prefix)
}

// RegisterMetrics exposes the inner controller's counters plus the
// dynamic-λ recalibration count under prefix.
func (d *DynamicAdaptive) RegisterMetrics(reg *metrics.Registry, prefix string) {
	d.inner.RegisterMetrics(reg, prefix)
	reg.CounterFunc(prefix+"/recalibrations", func() uint64 {
		// lambdaHist starts with the initial λ; only later entries are
		// recalibrations.
		return uint64(len(d.lambdaHist) - 1)
	})
}
