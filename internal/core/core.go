// Package core implements the paper's primary contribution: the adaptive
// inter-GPU compression scheme (Sec. V). The controller alternates between a
// short sampling phase — every candidate codec compresses the same transfers
// and a penalty function picks a winner by outcome voting — and a long
// running phase during which only the selected codec (or no codec at all)
// touches the data.
//
// The penalty function is Eq. (1) of the paper:
//
//	P = N + λ(Lc + Ld)
//
// where N is the compressed size in bits and Lc/Ld are the compression and
// decompression latencies in cycles. λ trades bandwidth for latency: λ=0
// always maximizes compression ratio, large λ prefers fast codecs (BDI), and
// the paper finds λ=6 the best balance.
package core

import (
	"fmt"

	"mgpucompress/internal/comp"
	"mgpucompress/internal/metrics"
)

// Defaults from Sec. V / Sec. VII-A2 of the paper.
const (
	DefaultSampleCount = 7
	DefaultRunLength   = 300
	DefaultLambda      = 6.0
)

// Decision describes how the policy handled one cache-line transfer.
type Decision struct {
	// Alg is the wire algorithm: the value of the message Comp Alg field.
	// None means the payload ships raw and the receiver bypasses the
	// decompressor.
	Alg comp.Algorithm
	// Enc is the encoding actually shipped. For Alg == None, Enc.Bits is
	// comp.LineBits and Enc.Data holds the raw line.
	Enc comp.Encoded
	// CompressionCycles is the latency added at the sender before the
	// payload can enter the fabric.
	CompressionCycles int
	// DecompressionCycles is the latency added at the receiver before the
	// data is usable.
	DecompressionCycles int
	// CodecEnergyPJ is the compressor+decompressor energy spent on this
	// transfer, including codecs that ran but lost (sampling phase).
	CodecEnergyPJ float64
	// Sampling reports whether the transfer was part of a sampling phase.
	Sampling bool
}

// WireBytes returns the payload size on the fabric for this decision.
func (d Decision) WireBytes() int { return d.Enc.WireBytes() }

// Policy decides, per transfer, how to compress a cache line.
type Policy interface {
	// Name identifies the policy in reports (e.g. "BDI", "Adaptive λ=6").
	Name() string
	// Process handles one 64-byte line transfer.
	Process(line []byte) Decision
}

// Uncompressed is the baseline policy: every line ships raw.
type Uncompressed struct{}

// Name implements Policy.
func (Uncompressed) Name() string { return "None" }

// Process implements Policy.
func (Uncompressed) Process(line []byte) Decision {
	return Decision{Alg: comp.None, Enc: rawLine(line)}
}

func rawLine(line []byte) comp.Encoded {
	return comp.Encoded{
		Alg:          comp.None,
		Bits:         comp.LineBits,
		Data:         append([]byte(nil), line...),
		Uncompressed: true,
	}
}

// Static always runs a single codec (Sec. VII-A1). If the codec cannot
// shrink a line, the line ships raw — the compression latency and energy
// were still spent, but the receiver skips decompression (Comp Alg = 0).
type Static struct {
	c comp.Compressor
}

// NewStatic builds a static policy around the codec for alg.
func NewStatic(alg comp.Algorithm) *Static {
	c := comp.NewCompressor(alg)
	if c == nil {
		panic(fmt.Sprintf("core: no compressor for %v", alg))
	}
	return &Static{c: c}
}

// Name implements Policy.
func (s *Static) Name() string { return s.c.Algorithm().String() }

// Process implements Policy.
func (s *Static) Process(line []byte) Decision {
	enc := s.c.Compress(line)
	cost := s.c.Cost()
	d := Decision{
		CompressionCycles: cost.CompressionCycles,
		CodecEnergyPJ:     cost.CompressionEnergyPJ(),
	}
	if enc.Uncompressed {
		// No space saved: ship raw, receiver bypasses the decompressor.
		d.Alg = comp.None
		d.Enc = enc
		return d
	}
	d.Alg = s.c.Algorithm()
	d.Enc = enc
	d.DecompressionCycles = cost.DecompressionCycles
	d.CodecEnergyPJ += cost.DecompressionEnergyPJ()
	return d
}

// Config parameterizes the adaptive policy.
type Config struct {
	// Lambda is λ in Eq. (1). Default 6.
	Lambda float64
	// SampleCount is the number of sampled transfers per phase (default 7).
	SampleCount int
	// RunLength is the number of transfers in the running phase (default
	// 300).
	RunLength int
	// Candidates are the codecs to choose from. Default: FPC, BDI,
	// C-Pack+Z. The paper notes the scheme also works with a single codec,
	// degenerating into an on/off decision; that is supported by passing
	// one candidate.
	Candidates []comp.Compressor
	// DegradeK is the graceful-degradation threshold: after K consecutive
	// codec-attributed integrity failures (ObserveIntegrity(false) from the
	// transport's reliability guard) the controller forces bypass for its
	// next running phase. Default 3.
	DegradeK int
}

func (c *Config) fillDefaults() {
	if c.Lambda < 0 {
		c.Lambda = 0
	}
	if c.SampleCount <= 0 {
		c.SampleCount = DefaultSampleCount
	}
	if c.RunLength <= 0 {
		c.RunLength = DefaultRunLength
	}
	if len(c.Candidates) == 0 {
		c.Candidates = comp.AllCompressors()
	}
	if c.DegradeK <= 0 {
		c.DegradeK = 3
	}
}

// IntegrityObserver is implemented by policies that react to end-to-end
// payload integrity outcomes. The RDMA engine's reliability guard calls it
// with false for every codec-attributed CRC failure (a NACK naming a
// nonzero Comp Alg) and true when a compressed transfer completes cleanly.
type IntegrityObserver interface {
	ObserveIntegrity(ok bool)
}

// PhaseHook observes the controller's phase transitions: it fires when a
// sampling phase closes (sampling=false, with the algorithm selected for the
// running phase) and when a running phase ends (sampling=true). The platform
// uses it to record phase spans on the trace timeline.
type PhaseHook func(sampling bool, selected comp.Algorithm)

// Adaptive is the paper's adaptive compression controller.
type Adaptive struct {
	cfg Config

	// phase state
	sampling   bool
	phasePos   int
	votes      []int     // per candidate index; last slot = bypass (None)
	votePen    []float64 // cumulative penalty, used to break ties
	selected   int       // candidate index, len(candidates) = bypass
	selections []comp.Algorithm

	processed uint64
	hook      PhaseHook

	// integrity / graceful-degradation state
	integFails     int  // consecutive codec-attributed failures
	degradePending bool // force bypass at the next sampling-phase close
	degradedPhases uint64

	// maxCompressionCycles is the sampling-phase latency: the paper notes
	// that running all codecs concurrently costs the slowest codec's
	// latency.
	maxCompressionCycles int
}

// NewAdaptive builds an adaptive policy. A zero Config selects the paper's
// defaults (λ=6, 7 samples, 300-transfer running phase, all three codecs).
func NewAdaptive(cfg Config) *Adaptive {
	cfg.fillDefaults()
	a := &Adaptive{
		cfg:      cfg,
		sampling: true,
		votes:    make([]int, len(cfg.Candidates)+1),
		votePen:  make([]float64, len(cfg.Candidates)+1),
		selected: len(cfg.Candidates),
	}
	for _, c := range cfg.Candidates {
		if l := c.Cost().CompressionCycles; l > a.maxCompressionCycles {
			a.maxCompressionCycles = l
		}
	}
	return a
}

// Name implements Policy.
func (a *Adaptive) Name() string {
	return fmt.Sprintf("Adaptive λ=%g", a.cfg.Lambda)
}

// Penalty evaluates Eq. (1) for a compressed size in bits and codec
// latencies in cycles.
func Penalty(lambda float64, bits, compCycles, decompCycles int) float64 {
	return float64(bits) + lambda*float64(compCycles+decompCycles)
}

// Selected returns the algorithm currently chosen for the running phase
// (comp.None when bypassing), and whether the controller is sampling.
func (a *Adaptive) Selected() (comp.Algorithm, bool) {
	if a.selected == len(a.cfg.Candidates) {
		return comp.None, a.sampling
	}
	return a.cfg.Candidates[a.selected].Algorithm(), a.sampling
}

// SelectionHistory returns the algorithm chosen after each completed
// sampling phase, in order.
func (a *Adaptive) SelectionHistory() []comp.Algorithm {
	return append([]comp.Algorithm(nil), a.selections...)
}

// SetPhaseHook installs the phase-transition observer.
func (a *Adaptive) SetPhaseHook(h PhaseHook) { a.hook = h }

// SetDegradeK overrides the degradation threshold after construction (the
// fault profile's degradek knob reaches the controller this way).
func (a *Adaptive) SetDegradeK(k int) {
	if k > 0 {
		a.cfg.DegradeK = k
	}
}

// ObserveIntegrity implements IntegrityObserver. K consecutive failures arm
// graceful degradation: the next sampling phase closes on bypass regardless
// of the votes, so the following running phase ships every line raw while
// the (possibly faulty) compression path sits out. The event is counted in
// DegradedPhases.
func (a *Adaptive) ObserveIntegrity(ok bool) {
	if ok {
		a.integFails = 0
		return
	}
	a.integFails++
	if a.integFails >= a.cfg.DegradeK && !a.degradePending {
		a.degradePending = true
		a.degradedPhases++
		a.integFails = 0
	}
}

// DegradedPhases returns how many running phases were forced to bypass by
// integrity failures.
func (a *Adaptive) DegradedPhases() uint64 { return a.degradedPhases }

// Process implements Policy.
func (a *Adaptive) Process(line []byte) Decision {
	a.processed++
	if a.sampling {
		return a.processSample(line)
	}
	return a.processRunning(line)
}

func (a *Adaptive) processSample(line []byte) Decision {
	nCand := len(a.cfg.Candidates)

	// Run every candidate on this transfer; all compressors run
	// concurrently in hardware, so the added latency is the slowest
	// compressor, and every compressor burns its compression energy. The
	// penalty function consumes only the compressed size, so candidates run
	// through the exact size-only estimator (CompressedBits(line) ==
	// Compress(line).Bits, including the fallback to LineBits) and no
	// losing bitstream is ever materialized; only the winner is encoded.
	energy := 0.0
	bestIdx := nCand // bypass
	bestBits := comp.LineBits
	bestPen := Penalty(a.cfg.Lambda, comp.LineBits, 0, 0)
	for i, c := range a.cfg.Candidates {
		cost := c.Cost()
		energy += cost.CompressionEnergyPJ()
		bits := c.CompressedBits(line)
		pen := Penalty(a.cfg.Lambda, bits, cost.CompressionCycles, cost.DecompressionCycles)
		if pen < bestPen {
			bestPen, bestIdx, bestBits = pen, i, bits
		}
		a.votePen[i] += pen
	}
	a.votePen[nCand] += Penalty(a.cfg.Lambda, comp.LineBits, 0, 0)
	a.votes[bestIdx]++

	// The sampled transfer itself ships with the per-sample winner.
	d := Decision{Sampling: true, CompressionCycles: a.maxCompressionCycles, CodecEnergyPJ: energy}
	if bestIdx == nCand || bestBits == comp.LineBits {
		d.Alg = comp.None
		d.Enc = rawLine(line)
	} else {
		winner := a.cfg.Candidates[bestIdx]
		d.Alg = winner.Algorithm()
		d.Enc = winner.Compress(line)
		d.DecompressionCycles = winner.Cost().DecompressionCycles
		d.CodecEnergyPJ += winner.Cost().DecompressionEnergyPJ()
	}

	a.phasePos++
	if a.phasePos >= a.cfg.SampleCount {
		a.closeSamplingPhase()
	}
	return d
}

// closeSamplingPhase tallies the outcome votes (Sec. V: the codec that wins
// the most samples is selected; cumulative penalty breaks ties) and enters
// the running phase.
func (a *Adaptive) closeSamplingPhase() {
	best := 0
	for i := 1; i < len(a.votes); i++ {
		if a.votes[i] > a.votes[best] ||
			(a.votes[i] == a.votes[best] && a.votePen[i] < a.votePen[best]) {
			best = i
		}
	}
	if a.degradePending {
		// Graceful degradation: repeated integrity failures overrule the
		// votes and force bypass for the upcoming running phase. Sampling
		// resumes normally afterwards.
		best = len(a.cfg.Candidates)
		a.degradePending = false
	}
	a.selected = best
	if best == len(a.cfg.Candidates) {
		a.selections = append(a.selections, comp.None)
	} else {
		a.selections = append(a.selections, a.cfg.Candidates[best].Algorithm())
	}
	a.sampling = false
	a.phasePos = 0
	for i := range a.votes {
		a.votes[i] = 0
		a.votePen[i] = 0
	}
	if a.hook != nil {
		a.hook(false, a.selections[len(a.selections)-1])
	}
}

func (a *Adaptive) processRunning(line []byte) Decision {
	var d Decision
	if a.selected == len(a.cfg.Candidates) {
		// Bypass: the compression circuitry is off for this phase.
		d = Decision{Alg: comp.None, Enc: rawLine(line)}
	} else {
		c := a.cfg.Candidates[a.selected]
		cost := c.Cost()
		enc := c.Compress(line)
		d = Decision{
			CompressionCycles: cost.CompressionCycles,
			CodecEnergyPJ:     cost.CompressionEnergyPJ(),
		}
		if enc.Uncompressed {
			d.Alg = comp.None
			d.Enc = enc
		} else {
			d.Alg = c.Algorithm()
			d.Enc = enc
			d.DecompressionCycles = cost.DecompressionCycles
			d.CodecEnergyPJ += cost.DecompressionEnergyPJ()
		}
	}
	a.phasePos++
	if a.phasePos >= a.cfg.RunLength {
		a.sampling = true
		a.phasePos = 0
		if a.hook != nil {
			a.hook(true, comp.None)
		}
	}
	return d
}

// RegisterMetrics exposes the controller's counters under prefix
// ("ctrl2/transfers", "ctrl2/sampling_rounds", ...). The closures read the
// same fields the accessors above read, so snapshot values always equal the
// hand-queried ones.
func (a *Adaptive) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.CounterFunc(prefix+"/transfers", func() uint64 { return a.processed })
	reg.CounterFunc(prefix+"/sampling_rounds", func() uint64 {
		return uint64(len(a.selections))
	})
	reg.CounterFunc(prefix+"/bypass_rounds", func() uint64 {
		n := uint64(0)
		for _, alg := range a.selections {
			if alg == comp.None {
				n++
			}
		}
		return n
	})
	reg.GaugeFunc(prefix+"/lambda", func() float64 { return a.cfg.Lambda })
}

// RegisterIntegrityMetrics exposes the degradation counter under prefix. It
// is split from RegisterMetrics because registered paths shape snapshot
// bytes: the path exists only when the fault layer is enabled, keeping
// fault-free snapshots byte-identical to pre-guard builds.
func (a *Adaptive) RegisterIntegrityMetrics(reg *metrics.Registry, prefix string) {
	reg.CounterFunc(prefix+"/degraded_phases", func() uint64 { return a.degradedPhases })
}

// PolicyFactory validates id once and returns a constructor that builds
// a fresh policy instance per compressing endpoint. Splitting validation
// from construction lets callers surface the invalid-policy error where it
// can propagate, instead of panicking inside a platform.Config.NewPolicy
// closure that has no error path.
func PolicyFactory(id PolicyID, lambda float64) (func() Policy, error) {
	switch id {
	case PolicyNone:
		return func() Policy { return Uncompressed{} }, nil
	case PolicyFPC:
		return func() Policy { return NewStatic(comp.FPC) }, nil
	case PolicyBDI:
		return func() Policy { return NewStatic(comp.BDI) }, nil
	case PolicyCPackZ:
		return func() Policy { return NewStatic(comp.CPackZ) }, nil
	case PolicyAdaptive:
		return func() Policy { return NewAdaptive(Config{Lambda: lambda}) }, nil
	case PolicyDynamic:
		return func() Policy { return NewDynamicAdaptive(DynamicConfig{}) }, nil
	case PolicyAdaptiveGlobal:
		// Global codec selection: the factory closure captures one shared
		// controller, so every endpoint it is handed to observes and obeys
		// the same selection state. Callers must serialize the simulation
		// (the runner forces SimCores=1 for this policy).
		shared := NewAdaptive(Config{Lambda: lambda})
		return func() Policy { return shared }, nil
	default:
		return nil, fmt.Errorf("core: invalid policy %v", id)
	}
}

// PolicyFor builds the policy selected by id (with the given λ for the
// adaptive controller). It is the single entry point used by the
// command-line tools.
func PolicyFor(id PolicyID, lambda float64) (Policy, error) {
	factory, err := PolicyFactory(id, lambda)
	if err != nil {
		return nil, err
	}
	return factory(), nil
}
