package core_test

import (
	"encoding/binary"
	"fmt"

	"mgpucompress/internal/comp"
	"mgpucompress/internal/core"
)

// The adaptive controller samples seven transfers, votes, then locks the
// winner in for the running phase — and bypasses compression when a later
// sampling phase sees incompressible data.
func ExampleAdaptive() {
	ctl := core.NewAdaptive(core.Config{Lambda: 6, SampleCount: 7, RunLength: 10})

	ldr := make([]byte, comp.LineSize)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(ldr[i*8:], 1<<42+uint64(i*7))
	}
	for i := 0; i < 7; i++ {
		ctl.Process(ldr)
	}
	alg, _ := ctl.Selected()
	fmt.Println("after sampling low-dynamic-range data:", alg)

	d := ctl.Process(ldr)
	fmt.Printf("running phase ships %d-byte payloads tagged %v\n", d.WireBytes(), d.Alg)
	// Output:
	// after sampling low-dynamic-range data: BDI
	// running phase ships 18-byte payloads tagged BDI
}

// Eq. (1): P = N + λ(Lc + Ld).
func ExamplePenalty() {
	// BDI compressed a line to 140 bits; λ=6 charges its 2+1 cycles.
	fmt.Println(core.Penalty(6, 140, 2, 1))
	// The bypass candidate: 512 bits, no codec latency.
	fmt.Println(core.Penalty(6, 512, 0, 0))
	// Output:
	// 158
	// 512
}
