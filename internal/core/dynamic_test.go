package core

import (
	"bytes"
	"math/rand"
	"testing"

	"mgpucompress/internal/comp"
)

func TestDynamicAdaptiveDefaults(t *testing.T) {
	d := NewDynamicAdaptive(DynamicConfig{})
	if d.Lambda() != 32 {
		t.Errorf("initial λ = %v, want MaxLambda 32", d.Lambda())
	}
	if d.Name() == "" {
		t.Error("no name")
	}
}

func TestDynamicLambdaDropsUnderCongestion(t *testing.T) {
	d := NewDynamicAdaptive(DynamicConfig{SampleCount: 3, RunLength: 7})
	line := ldrLine(1<<50, 3)
	// Phase 1: no congestion observed -> λ stays at max after recalibration.
	for i := 0; i < 10; i++ {
		d.ObserveCongestion(0)
		d.Process(line)
	}
	d.Process(line) // crosses the period boundary, triggers recalibration
	if d.Lambda() != 32 {
		t.Errorf("idle link λ = %v, want 32", d.Lambda())
	}
	// Phase 2: deep queues -> λ collapses toward 0.
	for i := 0; i < 10; i++ {
		d.ObserveCongestion(20)
		d.Process(line)
	}
	d.Process(line)
	if d.Lambda() > 3 {
		t.Errorf("congested link λ = %v, want ≈32/21", d.Lambda())
	}
	if h := d.LambdaHistory(); len(h) < 3 {
		t.Errorf("λ history too short: %v", h)
	}
}

func TestDynamicLambdaRecovers(t *testing.T) {
	d := NewDynamicAdaptive(DynamicConfig{SampleCount: 3, RunLength: 7})
	line := zeroLine()
	for i := 0; i < 11; i++ {
		d.ObserveCongestion(50)
		d.Process(line)
	}
	low := d.Lambda()
	for i := 0; i < 10; i++ {
		d.ObserveCongestion(0)
		d.Process(line)
	}
	d.Process(line)
	if d.Lambda() <= low {
		t.Errorf("λ did not recover: %v -> %v", low, d.Lambda())
	}
}

func TestDynamicAdaptiveDecisionsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := NewDynamicAdaptive(DynamicConfig{SampleCount: 3, RunLength: 5})
	for i := 0; i < 500; i++ {
		var line []byte
		switch i % 3 {
		case 0:
			line = randLine(rng)
		case 1:
			line = ldrLine(rng.Uint64(), 5)
		default:
			line = zeroLine()
		}
		d.ObserveCongestion(rng.Intn(10))
		dec := d.Process(line)
		var got []byte
		if dec.Alg == comp.None {
			got = dec.Enc.Data
		} else {
			var err error
			got, err = comp.NewCompressor(dec.Alg).Decompress(dec.Enc)
			if err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
		}
		if !bytes.Equal(got, line) {
			t.Fatalf("iteration %d: round trip mismatch", i)
		}
	}
}

func TestPolicyForDynamic(t *testing.T) {
	p, err := PolicyFor(PolicyDynamic, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(CongestionObserver); !ok {
		t.Error("dynamic policy does not observe congestion")
	}
}
