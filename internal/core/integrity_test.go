package core

import (
	"testing"

	"mgpucompress/internal/comp"
	"mgpucompress/internal/metrics"
)

// phase runs the controller through one sampling phase and one full running
// phase, returning the running-phase decisions.
func phase(a *Adaptive, cfg Config, line []byte) []Decision {
	for i := 0; i < cfg.SampleCount; i++ {
		a.Process(line)
	}
	out := make([]Decision, 0, cfg.RunLength)
	for i := 0; i < cfg.RunLength; i++ {
		out = append(out, a.Process(line))
	}
	return out
}

// TestDegradationForcesBypassPhase: after DegradeK consecutive
// codec-attributed failures, the next running phase bypasses compression
// entirely, then later phases recover.
func TestDegradationForcesBypassPhase(t *testing.T) {
	cfg := Config{Lambda: 6, SampleCount: 2, RunLength: 4}
	a := NewAdaptive(cfg)
	line := ldrLine(1<<40, 3) // compressible: a healthy phase selects a codec

	for i := 0; i < 3; i++ { // default DegradeK
		a.ObserveIntegrity(false)
	}
	if a.DegradedPhases() != 1 {
		t.Fatalf("DegradedPhases = %d after K failures, want 1", a.DegradedPhases())
	}

	degraded := phase(a, cfg, line)
	for i, d := range degraded {
		if d.Sampling {
			t.Fatalf("decision %d still sampling", i)
		}
		if d.Alg != comp.None {
			t.Fatalf("degraded phase decision %d used %v, want bypass", i, d.Alg)
		}
	}

	recovered := phase(a, cfg, line)
	sawCodec := false
	for _, d := range recovered {
		if d.Alg != comp.None {
			sawCodec = true
		}
	}
	if !sawCodec {
		t.Error("controller did not recover after the degraded phase")
	}
	if a.DegradedPhases() != 1 {
		t.Errorf("DegradedPhases = %d after recovery, want still 1", a.DegradedPhases())
	}
}

// TestIntegritySuccessResetsFailureCount: a clean completion between
// failures prevents degradation.
func TestIntegritySuccessResetsFailureCount(t *testing.T) {
	a := NewAdaptive(Config{SampleCount: 2, RunLength: 4})
	for _, ok := range []bool{false, false, true, false, false} {
		a.ObserveIntegrity(ok)
	}
	if a.DegradedPhases() != 0 {
		t.Errorf("DegradedPhases = %d, want 0: success did not reset the counter", a.DegradedPhases())
	}
	a.ObserveIntegrity(false) // third consecutive failure
	if a.DegradedPhases() != 1 {
		t.Errorf("DegradedPhases = %d, want 1", a.DegradedPhases())
	}
}

// TestSetDegradeK: the profile's degradek knob lowers the threshold after
// construction; non-positive values are ignored.
func TestSetDegradeK(t *testing.T) {
	cfg := Config{SampleCount: 2, RunLength: 4}
	a := NewAdaptive(cfg)
	a.SetDegradeK(1)
	a.ObserveIntegrity(false)
	if a.DegradedPhases() != 1 {
		t.Errorf("DegradedPhases = %d with K=1 after one failure, want 1", a.DegradedPhases())
	}
	phase(a, cfg, zeroLine()) // clear the pending degradation at the boundary
	a.SetDegradeK(0)          // ignored
	a.ObserveIntegrity(false)
	if a.DegradedPhases() != 2 {
		t.Errorf("DegradedPhases = %d, want 2 (K stayed 1)", a.DegradedPhases())
	}
}

// TestDegradationDoesNotRetriggerWhilePending: failures beyond K before the
// next phase boundary count one degradation, not several.
func TestDegradationDoesNotRetriggerWhilePending(t *testing.T) {
	a := NewAdaptive(Config{SampleCount: 2, RunLength: 4})
	for i := 0; i < 9; i++ {
		a.ObserveIntegrity(false)
	}
	if a.DegradedPhases() != 1 {
		t.Errorf("DegradedPhases = %d after 9 failures in one window, want 1", a.DegradedPhases())
	}
}

// TestIntegrityMetricsAndDynamicForwarding: DynamicAdaptive forwards the
// whole integrity surface to its inner controller.
func TestIntegrityMetricsAndDynamicForwarding(t *testing.T) {
	d := NewDynamicAdaptive(DynamicConfig{SampleCount: 2, RunLength: 4})
	reg := metrics.NewRegistry()
	d.RegisterIntegrityMetrics(reg, "ctrl")
	d.SetDegradeK(2)
	d.ObserveIntegrity(false)
	d.ObserveIntegrity(false)
	if got := reg.Snapshot().Value("ctrl/degraded_phases"); got != 1 {
		t.Errorf("ctrl/degraded_phases = %v, want 1", got)
	}
}
