package core

import "fmt"

// PolicyID enumerates the compression policies the runner and CLIs can
// select. It replaces the previous stringly-typed policy spec: string forms
// exist only at flag and JSON boundaries, where ParsePolicy and String round
// trip through the names below.
type PolicyID int

// The supported policies.
const (
	// PolicyNone ships every line raw (the paper's baseline).
	PolicyNone PolicyID = iota
	// PolicyFPC always runs FPC (static, Sec. VII-A1).
	PolicyFPC
	// PolicyBDI always runs BDI.
	PolicyBDI
	// PolicyCPackZ always runs C-Pack+Z.
	PolicyCPackZ
	// PolicyAdaptive is the paper's adaptive controller (Sec. V): one
	// independent controller per compressing endpoint, i.e. per-link codec
	// selection.
	PolicyAdaptive
	// PolicyDynamic is the dynamic-λ extension.
	PolicyDynamic
	// PolicyAdaptiveGlobal shares ONE adaptive controller across every
	// compressing endpoint — global codec selection, the counterpoint the
	// paper never evaluates against its per-link scheme. Because the shared
	// controller is observed from every partition, the runner forces such
	// runs onto a single engine core; results are a pure function of the
	// inputs but, unlike every other policy, not meaningfully parallel.
	PolicyAdaptiveGlobal

	policyCount // sentinel; keep last
)

var policyNames = [policyCount]string{
	PolicyNone:           "none",
	PolicyFPC:            "fpc",
	PolicyBDI:            "bdi",
	PolicyCPackZ:         "cpackz",
	PolicyAdaptive:       "adaptive",
	PolicyDynamic:        "dynamic",
	PolicyAdaptiveGlobal: "adaptive-global",
}

// Valid reports whether p is one of the declared policies.
func (p PolicyID) Valid() bool { return p >= 0 && p < policyCount }

// String returns the canonical lower-case name ParsePolicy accepts.
func (p PolicyID) String() string {
	if !p.Valid() {
		return fmt.Sprintf("PolicyID(%d)", int(p))
	}
	return policyNames[p]
}

// ParsePolicy converts a policy name ("none", "fpc", "bdi", "cpackz",
// "adaptive", "dynamic") to its PolicyID. It is the inverse of String.
func ParsePolicy(s string) (PolicyID, error) {
	for id, name := range policyNames {
		if s == name {
			return PolicyID(id), nil
		}
	}
	return 0, fmt.Errorf("core: unknown policy %q (want none|fpc|bdi|cpackz|adaptive|dynamic|adaptive-global)", s)
}
