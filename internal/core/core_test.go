package core

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"mgpucompress/internal/comp"
)

func zeroLine() []byte { return make([]byte, comp.LineSize) }

func randLine(rng *rand.Rand) []byte {
	l := make([]byte, comp.LineSize)
	rng.Read(l)
	return l
}

func ldrLine(base uint64, step int) []byte {
	l := make([]byte, comp.LineSize)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(l[i*8:], base+uint64(i*step))
	}
	return l
}

func narrowLine() []byte {
	l := make([]byte, comp.LineSize)
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(l[i*4:], uint32(i%7))
	}
	return l
}

func TestUncompressedPolicy(t *testing.T) {
	p := Uncompressed{}
	if p.Name() != "None" {
		t.Errorf("Name = %q", p.Name())
	}
	rng := rand.New(rand.NewSource(1))
	line := randLine(rng)
	d := p.Process(line)
	if d.Alg != comp.None || d.Enc.Bits != comp.LineBits {
		t.Errorf("raw policy produced alg=%v bits=%d", d.Alg, d.Enc.Bits)
	}
	if d.CompressionCycles != 0 || d.DecompressionCycles != 0 || d.CodecEnergyPJ != 0 {
		t.Error("raw policy charged codec costs")
	}
	if !bytes.Equal(d.Enc.Data, line) {
		t.Error("raw policy altered payload")
	}
}

func TestStaticPolicyCompressibleLine(t *testing.T) {
	p := NewStatic(comp.BDI)
	d := p.Process(ldrLine(1<<40, 3))
	if d.Alg != comp.BDI {
		t.Fatalf("Alg = %v, want BDI", d.Alg)
	}
	cost := comp.CostOf(comp.BDI)
	if d.CompressionCycles != cost.CompressionCycles {
		t.Errorf("compression cycles = %d", d.CompressionCycles)
	}
	if d.DecompressionCycles != cost.DecompressionCycles {
		t.Errorf("decompression cycles = %d", d.DecompressionCycles)
	}
	want := cost.BlockEnergyPJ()
	if d.CodecEnergyPJ != want {
		t.Errorf("energy = %v, want %v", d.CodecEnergyPJ, want)
	}
	if d.Enc.Bits >= comp.LineBits {
		t.Errorf("compressible line not compressed: %d bits", d.Enc.Bits)
	}
}

func TestStaticPolicyIncompressibleLineBypassesDecompression(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := NewStatic(comp.BDI)
	var d Decision
	for i := 0; i < 10; i++ { // random lines are incompressible for BDI
		d = p.Process(randLine(rng))
		if d.Alg == comp.None {
			break
		}
	}
	if d.Alg != comp.None {
		t.Skip("random lines unexpectedly compressible")
	}
	cost := comp.CostOf(comp.BDI)
	if d.CompressionCycles != cost.CompressionCycles {
		t.Error("compression latency must still be paid on a failed attempt")
	}
	if d.DecompressionCycles != 0 {
		t.Error("receiver must bypass decompression for raw payloads")
	}
	if d.CodecEnergyPJ != cost.CompressionEnergyPJ() {
		t.Errorf("energy = %v, want compression-only %v", d.CodecEnergyPJ, cost.CompressionEnergyPJ())
	}
	if d.Enc.Bits != comp.LineBits {
		t.Errorf("raw payload bits = %d", d.Enc.Bits)
	}
}

func TestPenaltyFunction(t *testing.T) {
	// Eq. (1): P = N + λ(Lc+Ld).
	if got := Penalty(0, 128, 16, 9); got != 128 {
		t.Errorf("λ=0 penalty = %v, want 128", got)
	}
	if got := Penalty(6, 128, 16, 9); got != 128+6*25 {
		t.Errorf("λ=6 penalty = %v, want %v", got, 128+6*25)
	}
	if got := Penalty(32, 512, 0, 0); got != 512 {
		t.Errorf("bypass penalty = %v, want 512", got)
	}
}

func TestAdaptiveDefaults(t *testing.T) {
	a := NewAdaptive(Config{})
	if a.cfg.SampleCount != DefaultSampleCount || a.cfg.RunLength != DefaultRunLength {
		t.Errorf("defaults = %d/%d", a.cfg.SampleCount, a.cfg.RunLength)
	}
	if len(a.cfg.Candidates) != 3 {
		t.Errorf("default candidates = %d", len(a.cfg.Candidates))
	}
	if _, sampling := a.Selected(); !sampling {
		t.Error("controller must start in the sampling phase")
	}
}

func TestAdaptiveSelectsBDIOnLowDynamicRange(t *testing.T) {
	a := NewAdaptive(Config{Lambda: 6})
	for i := 0; i < DefaultSampleCount; i++ {
		a.Process(ldrLine(1<<50, 7))
	}
	alg, sampling := a.Selected()
	if sampling {
		t.Fatal("sampling phase did not close after 7 samples")
	}
	if alg != comp.BDI {
		t.Errorf("selected %v on low-dynamic-range data, want BDI", alg)
	}
}

func TestAdaptiveSelectsBypassOnRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewAdaptive(Config{Lambda: 6})
	for i := 0; i < DefaultSampleCount; i++ {
		a.Process(randLine(rng))
	}
	alg, _ := a.Selected()
	if alg != comp.None {
		t.Errorf("selected %v on incompressible data, want bypass", alg)
	}
	// During the running phase the bypass must not charge codec costs.
	d := a.Process(randLine(rng))
	if d.Sampling {
		t.Error("running-phase decision marked as sampling")
	}
	if d.CompressionCycles != 0 || d.CodecEnergyPJ != 0 {
		t.Error("bypass charged compression costs")
	}
}

func TestAdaptivePhaseCycle(t *testing.T) {
	a := NewAdaptive(Config{SampleCount: 3, RunLength: 5, Lambda: 6})
	var sampled, ran int
	for i := 0; i < 3+5+3+5; i++ {
		d := a.Process(zeroLine())
		if d.Sampling {
			sampled++
		} else {
			ran++
		}
	}
	if sampled != 6 || ran != 10 {
		t.Errorf("sampled=%d ran=%d, want 6/10", sampled, ran)
	}
	if h := a.SelectionHistory(); len(h) != 2 {
		t.Errorf("selection history = %v, want 2 entries", h)
	}
}

func TestAdaptiveSamplingLatencyIsMaxOfCandidates(t *testing.T) {
	a := NewAdaptive(Config{Lambda: 6})
	d := a.Process(zeroLine())
	// C-Pack+Z has the slowest compressor: 16 cycles.
	if d.CompressionCycles != 16 {
		t.Errorf("sampling latency = %d, want 16 (slowest candidate)", d.CompressionCycles)
	}
	if !d.Sampling {
		t.Error("first decision not marked sampling")
	}
}

func TestAdaptiveSamplingEnergyIncludesLosers(t *testing.T) {
	a := NewAdaptive(Config{Lambda: 6})
	d := a.Process(zeroLine())
	var compSum float64
	for _, c := range comp.AllCompressors() {
		compSum += c.Cost().CompressionEnergyPJ()
	}
	if d.CodecEnergyPJ < compSum {
		t.Errorf("sampling energy %v does not include all compressors (%v)", d.CodecEnergyPJ, compSum)
	}
}

func TestAdaptiveLambdaZeroPrefersBestRatio(t *testing.T) {
	// Narrow 32-bit words: C-Pack+Z encodes most words at 12 bits while BDI
	// needs base4-delta1 (180 bits/line); FPC does well too. λ=0 must pick
	// purely by size.
	line := narrowLine()
	sizes := map[comp.Algorithm]int{}
	for _, c := range comp.AllCompressors() {
		sizes[c.Algorithm()] = c.Compress(line).Bits
	}
	bestAlg, bestBits := comp.None, comp.LineBits
	for alg, bits := range sizes {
		if bits < bestBits {
			bestAlg, bestBits = alg, bits
		}
	}
	a := NewAdaptive(Config{Lambda: 0})
	for i := 0; i < DefaultSampleCount; i++ {
		a.Process(line)
	}
	alg, _ := a.Selected()
	if alg != bestAlg {
		t.Errorf("λ=0 selected %v, want %v (sizes %v)", alg, bestAlg, sizes)
	}
}

// twoHalfLine is compressible by FPC at 304 bits (pattern 8), by BDI at 308
// bits (base2-delta1), and not at all by C-Pack+Z: FPC wins on size, BDI on
// latency.
func twoHalfLine() []byte {
	l := make([]byte, comp.LineSize)
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(l[i*4:], uint32(i)<<16|uint32(100-i))
	}
	return l
}

func TestAdaptiveLargeLambdaPrefersFastCodec(t *testing.T) {
	// Fig. 6: with λ=32 the system strongly prefers the low-latency codec
	// (BDI), while λ=0 picks purely by compressed size (FPC here).
	line := twoHalfLine()
	fp := comp.NewFPC().Compress(line)
	bd := comp.NewBDI().Compress(line)
	if fp.Uncompressed || bd.Uncompressed || fp.Bits >= bd.Bits {
		t.Fatalf("test line invalid: fpc=%d bits (raw %v), bdi=%d bits (raw %v)",
			fp.Bits, fp.Uncompressed, bd.Bits, bd.Uncompressed)
	}

	small := NewAdaptive(Config{Lambda: 0})
	large := NewAdaptive(Config{Lambda: 32})
	for i := 0; i < DefaultSampleCount; i++ {
		small.Process(line)
		large.Process(line)
	}
	if alg, _ := small.Selected(); alg != comp.FPC {
		t.Errorf("λ=0 selected %v, want FPC (fpc=%d bits, bdi=%d bits)", alg, fp.Bits, bd.Bits)
	}
	if alg, _ := large.Selected(); alg != comp.BDI {
		t.Errorf("λ=32 selected %v, want BDI (fpc=%d bits, bdi=%d bits)", alg, fp.Bits, bd.Bits)
	}
}

func TestAdaptiveRunningPhaseFallbackToRaw(t *testing.T) {
	// Select BDI during sampling, then feed incompressible lines in the
	// running phase: transfers must ship raw with Comp Alg = None.
	rng := rand.New(rand.NewSource(4))
	a := NewAdaptive(Config{SampleCount: 3, RunLength: 10, Lambda: 6})
	for i := 0; i < 3; i++ {
		a.Process(ldrLine(1<<50, 1))
	}
	if alg, _ := a.Selected(); alg != comp.BDI {
		t.Fatalf("setup: selected %v", alg)
	}
	d := a.Process(randLine(rng))
	if d.Alg != comp.None {
		t.Errorf("incompressible running-phase line shipped as %v", d.Alg)
	}
	if d.CompressionCycles == 0 {
		t.Error("compression attempt latency not charged")
	}
	if d.DecompressionCycles != 0 {
		t.Error("receiver should bypass decompression")
	}
}

func TestAdaptiveSingleCandidateOnOff(t *testing.T) {
	// Sec. V: with one codec the scheme degenerates to on/off control.
	rng := rand.New(rand.NewSource(5))
	a := NewAdaptive(Config{
		Lambda:      6,
		SampleCount: 3,
		RunLength:   4,
		Candidates:  []comp.Compressor{comp.NewBDI()},
	})
	for i := 0; i < 3; i++ {
		a.Process(randLine(rng))
	}
	if alg, _ := a.Selected(); alg != comp.None {
		t.Errorf("on/off controller selected %v on random data, want off", alg)
	}
	// Run through the running phase and the next sampling phase with
	// compressible data: should switch on.
	for i := 0; i < 4; i++ {
		a.Process(randLine(rng))
	}
	for i := 0; i < 3; i++ {
		a.Process(ldrLine(1<<50, 2))
	}
	if alg, _ := a.Selected(); alg != comp.BDI {
		t.Errorf("on/off controller selected %v on compressible data, want BDI", alg)
	}
}

func TestAdaptiveVotingMajorityWins(t *testing.T) {
	// 4 BDI-friendly samples vs 3 incompressible: BDI must win the vote.
	rng := rand.New(rand.NewSource(6))
	a := NewAdaptive(Config{SampleCount: 7, RunLength: 5, Lambda: 6})
	for i := 0; i < 7; i++ {
		if i < 4 {
			a.Process(ldrLine(1<<50, 3))
		} else {
			a.Process(randLine(rng))
		}
	}
	if alg, _ := a.Selected(); alg != comp.BDI {
		t.Errorf("vote selected %v, want BDI (4/7 wins)", alg)
	}
}

func TestAdaptiveDecisionRoundTrips(t *testing.T) {
	// Whatever the controller decides, the receiver must be able to
	// reconstruct the line.
	rng := rand.New(rand.NewSource(7))
	a := NewAdaptive(Config{Lambda: 6})
	gens := []func() []byte{
		func() []byte { return randLine(rng) },
		func() []byte { return ldrLine(rng.Uint64(), rng.Intn(100)) },
		zeroLine,
		narrowLine,
	}
	for i := 0; i < 2000; i++ {
		line := gens[rng.Intn(len(gens))]()
		d := a.Process(line)
		var got []byte
		if d.Alg == comp.None {
			got = d.Enc.Data
		} else {
			var err error
			got, err = comp.NewCompressor(d.Alg).Decompress(d.Enc)
			if err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
		}
		if !bytes.Equal(got, line) {
			t.Fatalf("iteration %d: decision round trip mismatch (alg %v)", i, d.Alg)
		}
	}
}

func TestPolicyFor(t *testing.T) {
	for _, spec := range []string{"none", "fpc", "bdi", "cpackz", "adaptive"} {
		id, err := ParsePolicy(spec)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", spec, err)
		}
		p, err := PolicyFor(id, 6)
		if err != nil || p == nil {
			t.Errorf("PolicyFor(%q) failed: %v", spec, err)
		}
	}
	if _, err := ParsePolicy("huffman"); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := PolicyFor(PolicyID(99), 6); err == nil {
		t.Error("out-of-range policy accepted")
	}
}

func TestPolicyIDRoundTrip(t *testing.T) {
	for id := PolicyID(0); id < policyCount; id++ {
		got, err := ParsePolicy(id.String())
		if err != nil {
			t.Errorf("ParsePolicy(%v.String()): %v", id, err)
		}
		if got != id {
			t.Errorf("round trip %v -> %q -> %v", id, id.String(), got)
		}
	}
	if PolicyID(99).Valid() {
		t.Error("PolicyID(99) reported valid")
	}
	if PolicyID(-1).Valid() {
		t.Error("PolicyID(-1) reported valid")
	}
}

func TestAdaptiveVoteTieBreakByPenalty(t *testing.T) {
	// Two candidates each win half the samples (even sample count): the
	// tie must break toward the lower cumulative penalty.
	fpcLine := twoHalfLine() // FPC 304 bits, BDI 308 bits
	bdiLine := ldrLine(1<<50, 3)

	a := NewAdaptive(Config{Lambda: 0, SampleCount: 2, RunLength: 5})
	a.Process(fpcLine) // FPC wins this sample
	a.Process(bdiLine) // BDI wins this sample
	alg, sampling := a.Selected()
	if sampling {
		t.Fatal("sampling did not close")
	}
	// Cumulative penalties decide; whichever won, it must be a real codec,
	// not the bypass (both samples were compressible).
	if alg == comp.None {
		t.Errorf("tie broke to bypass on compressible data")
	}
}

func TestAdaptiveSelectionHistoryIsCopied(t *testing.T) {
	a := NewAdaptive(Config{SampleCount: 1, RunLength: 1})
	a.Process(zeroLine())
	h := a.SelectionHistory()
	if len(h) != 1 {
		t.Fatalf("history = %v", h)
	}
	h[0] = comp.Algorithm(99)
	if a.SelectionHistory()[0] == comp.Algorithm(99) {
		t.Error("SelectionHistory leaks internal state")
	}
}
