package fabric

import (
	"math/rand"
	"testing"

	"mgpucompress/internal/sim"
)

// buildSwitched constructs a switched fabric with one endpoint per GPU node,
// returning the fabric and the endpoint ports in node order.
func buildSwitched(t *testing.T, topo Topology, nodes, cores int) (*sim.Engine, *SwitchFabric, []*talker) {
	t.Helper()
	engine := sim.NewEngine(sim.WithPartitions(nodes+1), sim.WithCores(cores))
	hub := engine.Partition(nodes)
	cfg := DefaultConfig()
	cfg.Topology = topo
	cfg.Nodes = nodes
	f := New("fabric", hub, cfg).(*SwitchFabric)
	ends := make([]*talker, nodes)
	for i := range ends {
		ends[i] = newTalker("t"+string(rune('A'+i)), engine.Partition(i))
		f.Attach(ends[i].port, engine.Partition(i))
	}
	return engine, f, ends
}

// switchedTopologies is the ISSUE 10 test matrix: every switched topology at
// 4, 8 and 16 GPUs.
var switchedTopologies = []struct {
	topo  Topology
	nodes []int
}{
	{TopologyRing, []int{4, 8, 16}},
	{TopologyMesh, []int{4, 8, 16}},
	{TopologyTree, []int{4, 8, 16}},
}

// analyticHops returns the hop count the topology's routing must produce
// between GPU nodes a and b: ring shortest arc, mesh Manhattan distance,
// tree twice the levels climbed to the lowest common ancestor.
func analyticHops(topo Topology, n, a, b int) int {
	switch topo {
	case TopologyRing:
		cw := (b - a + n) % n
		if cw < n-cw {
			return cw
		}
		return n - cw
	case TopologyMesh:
		w, _, _ := MeshDims(n)
		ax, ay := a%w, a/w
		bx, by := b%w, b/w
		dx, dy := ax-bx, ay-by
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		return dx + dy
	case TopologyTree:
		sa, sb := a/4, b/4
		up := 0
		for sa != sb {
			sa, sb = sa/4, sb/4
			up++
		}
		return 2 * up
	}
	panic("unknown topology")
}

// worstHops is the analytic worst case: ring floor(n/2), mesh (w-1)+(h-1),
// tree 2*depth.
func worstHops(topo Topology, n int) int {
	switch topo {
	case TopologyRing:
		return n / 2
	case TopologyMesh:
		w, h, _ := MeshDims(n)
		return (w - 1) + (h - 1)
	case TopologyTree:
		depth := 0
		for c := (n + 3) / 4; c > 1; c = (c + 3) / 4 {
			depth++
		}
		return 2 * depth
	}
	panic("unknown topology")
}

// TestTopologyHops checks all-pairs reachability and the analytic hop-count
// formulas on the full topology matrix.
func TestTopologyHops(t *testing.T) {
	for _, tc := range switchedTopologies {
		for _, n := range tc.nodes {
			_, f, _ := buildSwitched(t, tc.topo, n, 1)
			worst := 0
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					got := f.Hops(a, b)
					if a == b {
						if got != 0 {
							t.Errorf("%s/%d: Hops(%d,%d) = %d, want 0", tc.topo, n, a, b, got)
						}
						continue
					}
					if want := analyticHops(tc.topo, n, a, b); got != want {
						t.Errorf("%s/%d: Hops(%d,%d) = %d, want %d", tc.topo, n, a, b, got, want)
					}
					if got > worst {
						worst = got
					}
				}
			}
			if want := worstHops(tc.topo, n); worst != want {
				t.Errorf("%s/%d: worst-case hops = %d, want %d", tc.topo, n, worst, want)
			}
		}
	}
}

// talker replays a preplanned send list (retrying on output-buffer
// backpressure) and counts everything it receives.
type talker struct {
	sim.ComponentBase
	part     *sim.Partition
	port     *sim.Port
	plan     []*packet
	next     int
	received int
	rxBytes  uint64
}

func newTalker(name string, part *sim.Partition) *talker {
	c := &talker{ComponentBase: sim.NewComponentBase(name), part: part}
	c.port = sim.NewPort(c, name+".port", 4*1024)
	return c
}

func (c *talker) Handle(e sim.Event) error {
	c.drain(e.Time())
	return nil
}

func (c *talker) drain(now sim.Time) {
	for c.next < len(c.plan) {
		if !c.port.Send(now, c.plan[c.next]) {
			return // output buffer full; retry on NotifyPortFree
		}
		c.next++
	}
}

func (c *talker) NotifyRecv(now sim.Time, p *sim.Port) {
	for {
		m := p.Retrieve(now)
		if m == nil {
			return
		}
		c.received++
		c.rxBytes += uint64(m.Meta().Bytes)
	}
}

func (c *talker) NotifyPortFree(now sim.Time, _ *sim.Port) { c.drain(now) }

// TestTopologyRandomTrafficNoLoss floods every topology with seeded random
// traffic and checks that every injected message is delivered: per-receiver
// counts match the plan, the fabric's own counters agree, and nothing is
// left queued in the network when the event horizon drains.
func TestTopologyRandomTrafficNoLoss(t *testing.T) {
	const msgsPerNode = 40
	for _, tc := range switchedTopologies {
		for _, n := range tc.nodes {
			engine, f, ends := buildSwitched(t, tc.topo, n, 1)
			rng := rand.New(rand.NewSource(int64(n)*1000 + int64(len(tc.topo))))
			wantRecv := make([]int, n)
			var wantBytes uint64
			total := 0
			for i, e := range ends {
				for k := 0; k < msgsPerNode; k++ {
					dst := rng.Intn(n - 1)
					if dst >= i {
						dst++ // never self
					}
					bytes := 1 + rng.Intn(200)
					e.plan = append(e.plan, pkt(ends[dst].port, bytes, k))
					wantRecv[dst]++
					wantBytes += uint64(bytes)
					total++
				}
				e.part.ScheduleTick(sim.Time(rng.Intn(32)), e)
			}
			if err := engine.Run(); err != nil {
				t.Fatalf("%s/%d: %v", tc.topo, n, err)
			}
			for i, e := range ends {
				if e.next != len(e.plan) {
					t.Errorf("%s/%d: node %d sent %d of %d planned messages", tc.topo, n, i, e.next, len(e.plan))
				}
				if e.received != wantRecv[i] {
					t.Errorf("%s/%d: node %d received %d messages, want %d", tc.topo, n, i, e.received, wantRecv[i])
				}
			}
			if got := f.TotalMessages(); got != uint64(total) {
				t.Errorf("%s/%d: fabric delivered %d messages, want %d", tc.topo, n, got, total)
			}
			if got := f.TotalBytes(); got != wantBytes {
				t.Errorf("%s/%d: fabric delivered %d bytes, want %d", tc.topo, n, got, wantBytes)
			}
			if q := f.QueuedMessages(); q != 0 {
				t.Errorf("%s/%d: %d messages still queued in the fabric", tc.topo, n, q)
			}
			if f.EnergyPJ() <= 0 {
				t.Errorf("%s/%d: no transfer energy accumulated", tc.topo, n)
			}
		}
	}
}

// TestTopologyMatrixParallelDigest runs the receive-log/metrics digest
// comparison of TestParallelMatchesSerial over the full topology x GPU-count
// matrix: serial and parallel engines must agree byte for byte.
func TestTopologyMatrixParallelDigest(t *testing.T) {
	const rounds = 10
	for _, tc := range switchedTopologies {
		for _, n := range tc.nodes {
			if testing.Short() && n > 8 {
				continue
			}
			want := runParallelDigest(t, tc.topo, n, 1, rounds)
			for _, cores := range []int{2, 8} {
				if got := runParallelDigest(t, tc.topo, n, cores, rounds); got != want {
					t.Errorf("%s/%d: cores=%d diverged from serial run", tc.topo, n, cores)
				}
			}
		}
	}
}
