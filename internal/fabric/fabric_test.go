package fabric

import (
	"testing"

	"mgpucompress/internal/sim"
)

type node struct {
	sim.ComponentBase
	port     *sim.Port
	received []sim.Msg
	times    []sim.Time
	freed    int
	// drain=false leaves messages in the input buffer to test back-pressure
	drain bool
}

func newNode(name string, bufBytes int, drain bool) *node {
	n := &node{ComponentBase: sim.NewComponentBase(name), drain: drain}
	n.port = sim.NewPort(n, name+".port", bufBytes)
	return n
}

func (n *node) Handle(sim.Event) error { return nil }

func (n *node) NotifyRecv(now sim.Time, p *sim.Port) {
	if !n.drain {
		return
	}
	for {
		m := p.Retrieve(now)
		if m == nil {
			return
		}
		n.received = append(n.received, m)
		n.times = append(n.times, now)
	}
}

func (n *node) NotifyPortFree(sim.Time, *sim.Port) { n.freed++ }

func (n *node) drainAll(now sim.Time) {
	for {
		m := n.port.Retrieve(now)
		if m == nil {
			return
		}
		n.received = append(n.received, m)
		n.times = append(n.times, now)
	}
}

type packet struct {
	sim.MsgMeta
	tag int
}

func (p *packet) Meta() *sim.MsgMeta { return &p.MsgMeta }

func pkt(dst *sim.Port, bytes, tag int) *packet {
	p := &packet{tag: tag}
	p.Dst, p.Bytes = dst, bytes
	return p
}

func setup(t *testing.T, nNodes int, cfg Config, drain bool) (*sim.Engine, *Bus, []*node) {
	t.Helper()
	engine := sim.NewEngine()
	hub := engine.Partition(0)
	bus := NewBus("bus", hub, cfg)
	nodes := make([]*node, nNodes)
	for i := range nodes {
		nodes[i] = newNode("n"+string(rune('0'+i)), 4*1024, drain)
		bus.Attach(nodes[i].port, hub)
	}
	return engine, bus, nodes
}

// lat returns the wire latency the tests must account for on each hop
// (endpoint→arbiter and arbiter→endpoint).
func lat(cfg Config) sim.Time {
	if cfg.LinkLatency <= 0 {
		return 1
	}
	return cfg.LinkLatency
}

func TestBusTransfersTakeIntegralCycles(t *testing.T) {
	cfg := DefaultConfig()
	engine, bus, nodes := setup(t, 2, cfg, true)
	L := lat(cfg)
	// Paper's example: a 62-byte message on a 20 B/cycle bus takes 4
	// cycles; the next message starts at cycle 5. Each message additionally
	// crosses the ingress and egress wire, one LinkLatency each way.
	m1 := pkt(nodes[1].port, 62, 1)
	m2 := pkt(nodes[1].port, 20, 2)
	nodes[0].port.Send(0, m1)
	nodes[0].port.Send(0, m2)
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if len(nodes[1].received) != 2 {
		t.Fatalf("delivered %d messages", len(nodes[1].received))
	}
	if nodes[1].times[0] != 2*L+4 {
		t.Errorf("first message delivered at %d, want %d", nodes[1].times[0], 2*L+4)
	}
	if nodes[1].times[1] != 2*L+5 {
		t.Errorf("second message delivered at %d, want %d (starts one bus cycle later)", nodes[1].times[1], 2*L+5)
	}
	if bus.MessagesSent != 2 || bus.BytesSent != 82 {
		t.Errorf("stats = %d msgs / %d bytes", bus.MessagesSent, bus.BytesSent)
	}
}

func TestBusSerializesConcurrentSenders(t *testing.T) {
	engine, _, nodes := setup(t, 3, DefaultConfig(), true)
	// Two senders each send a 20-byte (1-cycle) message at t=0; they
	// cannot share a cycle.
	nodes[0].port.Send(0, pkt(nodes[2].port, 20, 1))
	nodes[1].port.Send(0, pkt(nodes[2].port, 20, 2))
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if len(nodes[2].received) != 2 {
		t.Fatalf("delivered %d", len(nodes[2].received))
	}
	if nodes[2].times[0] == nodes[2].times[1] {
		t.Errorf("two messages delivered in the same cycle %d", nodes[2].times[0])
	}
}

func TestBusRoundRobinFairness(t *testing.T) {
	engine, _, nodes := setup(t, 3, DefaultConfig(), true)
	// Senders 0 and 1 each queue 10 messages for node 2. Round-robin must
	// alternate them rather than draining one queue first.
	for i := 0; i < 10; i++ {
		nodes[0].port.Send(0, pkt(nodes[2].port, 20, 0))
		nodes[1].port.Send(0, pkt(nodes[2].port, 20, 100))
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if len(nodes[2].received) != 20 {
		t.Fatalf("delivered %d", len(nodes[2].received))
	}
	// Check strict alternation over the first 10 deliveries.
	for i := 1; i < 10; i++ {
		a := nodes[2].received[i-1].(*packet).tag
		b := nodes[2].received[i].(*packet).tag
		if a == b {
			t.Fatalf("deliveries %d and %d both from sender tag %d (not round-robin)", i-1, i, a)
		}
	}
}

func TestBusOutputBufferBackpressure(t *testing.T) {
	cfg := Config{BytesPerCycle: 20, OutBufferBytes: 100}
	engine, _, nodes := setup(t, 2, cfg, true)
	ok1 := nodes[0].port.Send(0, pkt(nodes[1].port, 60, 1))
	ok2 := nodes[0].port.Send(0, pkt(nodes[1].port, 40, 2))
	ok3 := nodes[0].port.Send(0, pkt(nodes[1].port, 10, 3))
	if !ok1 || !ok2 {
		t.Fatal("sends within buffer capacity rejected")
	}
	if ok3 {
		t.Fatal("send beyond output buffer accepted")
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if nodes[0].freed == 0 {
		t.Error("sender never notified of freed space")
	}
	// Retry after drain succeeds.
	if !nodes[0].port.Send(engine.Now(), pkt(nodes[1].port, 10, 3)) {
		t.Error("retry after drain rejected")
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if len(nodes[1].received) != 3 {
		t.Errorf("delivered %d, want 3", len(nodes[1].received))
	}
}

func TestBusHeadOfLineSkipsBlockedDestination(t *testing.T) {
	cfg := DefaultConfig()
	engine := sim.NewEngine()
	hub := engine.Partition(0)
	bus := NewBus("bus", hub, cfg)
	sender := newNode("s", 4096, true)
	blocked := newNode("b", 64, false) // tiny input buffer, no drain
	open := newNode("o", 4096, true)
	other := newNode("x", 4096, true)
	for _, n := range []*node{sender, blocked, open, other} {
		bus.Attach(n.port, hub)
	}
	// Fill blocked's input buffer with one message, then queue another for
	// it, then one for the open node from a different endpoint.
	sender.port.Send(0, pkt(blocked.port, 64, 1))
	sender.port.Send(0, pkt(blocked.port, 64, 2)) // will block
	other.port.Send(0, pkt(open.port, 20, 3))     // must still get through
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if len(open.received) != 1 {
		t.Fatal("open destination starved by a blocked endpoint")
	}
	if len(blocked.received) != 0 && blocked.port.Buffered() == 0 {
		t.Fatal("test setup wrong: blocked node drained")
	}
	// Unblock: drain the input buffer; the parked message must now flow.
	blocked.drainAll(engine.Now())
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	blocked.drainAll(engine.Now())
	if len(blocked.received) != 2 {
		t.Errorf("blocked node eventually received %d, want 2", len(blocked.received))
	}
}

func TestBusUtilization(t *testing.T) {
	engine, bus, nodes := setup(t, 2, DefaultConfig(), true)
	nodes[0].port.Send(0, pkt(nodes[1].port, 200, 1)) // 10 cycles
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if bus.BusyCycles != 10 {
		t.Errorf("BusyCycles = %d, want 10 for a single 200-byte transfer", bus.BusyCycles)
	}
	want := float64(bus.BusyCycles) / float64(engine.Now())
	if u := bus.Utilization(engine.Now()); u != want {
		t.Errorf("utilization = %v, want busy/elapsed = %v", u, want)
	}
}

func TestBusZeroSizeMessagePanics(t *testing.T) {
	_, _, nodes := setup(t, 2, DefaultConfig(), true)
	defer func() {
		if recover() == nil {
			t.Error("zero-size message did not panic")
		}
	}()
	nodes[0].port.Send(0, pkt(nodes[1].port, 0, 1))
}

func TestBusUnpluggedPanics(t *testing.T) {
	_, _, nodes := setup(t, 2, DefaultConfig(), true)
	stranger := newNode("z", 0, true)
	defer func() {
		if recover() == nil {
			t.Error("unplugged destination did not panic")
		}
	}()
	nodes[0].port.Send(0, pkt(stranger.port, 20, 1))
}

func TestBusAccessors(t *testing.T) {
	cfg := DefaultConfig()
	engine, bus, nodes := setup(t, 2, cfg, true)
	if bus.QueuedMessages() != 0 {
		t.Error("fresh bus has queued messages")
	}
	nodes[0].port.Send(0, pkt(nodes[1].port, 40, 1))
	// The message reaches the arbiter once it crosses the ingress wire.
	if err := engine.RunUntil(lat(cfg)); err != nil {
		t.Fatal(err)
	}
	if bus.QueuedMessages() != 1 {
		t.Errorf("queued = %d, want 1", bus.QueuedMessages())
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if bus.TotalBytes() != 40 || bus.TotalMessages() != 1 {
		t.Errorf("accessors = %d B / %d msgs", bus.TotalBytes(), bus.TotalMessages())
	}
	if bus.Utilization(0) != 0 {
		t.Error("utilization at t=0 not zero")
	}
	var xb Crossbar
	if xb.Utilization(0) != 0 {
		t.Error("crossbar utilization at t=0 not zero")
	}
}

func TestCrossbarQueuedMessages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = TopologyCrossbar
	engine := sim.NewEngine()
	hub := engine.Partition(0)
	xbar := NewCrossbar("x", hub, cfg)
	a := newNode("a", 4096, true)
	b := newNode("b", 64, false) // blocked destination
	xbar.Attach(a.port, hub)
	xbar.Attach(b.port, hub)
	a.port.Send(0, pkt(b.port, 64, 1))
	a.port.Send(0, pkt(b.port, 64, 2))
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if xbar.QueuedMessages() != 1 {
		t.Errorf("queued = %d, want 1 (second blocked)", xbar.QueuedMessages())
	}
}
