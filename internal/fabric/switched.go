package fabric

import (
	"fmt"

	"mgpucompress/internal/energy"
	"mgpucompress/internal/metrics"
	"mgpucompress/internal/sim"
	"mgpucompress/internal/trace"
)

// SwitchFabric is the multi-hop interconnect family: a graph of per-hop
// switches (ring, 2D mesh, or radix-4 tree) living entirely on the hub
// partition, so switch-to-switch hops are ordinary hub-local events and only
// the endpoint<->switch edges cross partitions. Each GPU endpoint attaches to
// the switch of its owner partition's node; host endpoints (owner partition
// index >= Config.Nodes) attach to a dedicated host switch hanging off the
// anchor (switch 0 for ring and mesh, the root for the tree).
//
// Model:
//   - Injection: round-robin arbitration over the endpoints of each switch,
//     like the bus. A message claims its *destination's* input credit
//     end-to-end at injection, so intermediate hops never block on credits
//     and the in-network queues cannot deadlock. Output-buffer credit is
//     returned to the source at injection time over the endpoint's dedicated
//     credit link.
//   - Hops: every inter-switch link transmits one message at a time at
//     BytesPerCycle, FIFO per link; disjoint links proceed concurrently.
//     Routing is table-driven: shortest direction for the ring (ties go
//     clockwise), dimension-ordered X-then-Y for the mesh, up-to-the-common-
//     ancestor-then-down for the tree.
//   - Egress: the switch-to-owner wire of the destination endpoint is a
//     serializing link too. While a transmission occupies it, the fabric
//     publishes a next-send promise (done + LinkLatency) on that endpoint's
//     delivery link — the PR 9 promise plumbing extended to switch egress —
//     letting the parallel engine widen windows past the busy stretch.
//     Promises are suppressed while fault-delayed deliveries are
//     outstanding, exactly like the bus.
//   - Energy: each hop charges bits moved times the pJ/bit of the link's
//     class — egress wires at Config.BaseClass, ring/mesh/host links at the
//     Board tier, tree links at Board (leaf level) or Node (upper levels) —
//     so long hops on big machines are priced accordingly.
type SwitchFabric struct {
	hub
	topo     Topology
	gpuNodes int
	anchor   int // switch the host switch hangs off
	hostSw   int
	sws      []*swNode
	links    []*swLink
	next     [][]int // next[s][d] = next switch on the route from s to d
	swOf     []int   // GPU node -> switch
	parent   []int   // tree only: switch -> parent switch (-1 at the root)

	messagesSent uint64
	bytesSent    uint64
	busyCycles   uint64 // summed over inter-switch and egress links
	hopCount     uint64 // inter-switch transmissions
	bytesByClass [energy.Node + 1]uint64
}

// swNode is one switch: its attached endpoints (injection arbitration state)
// and its outgoing links keyed by neighbor switch.
type swNode struct {
	id     int
	out    map[int]*swLink
	eps    []*endpoint
	nextRR int
}

// swLink is one directed inter-switch link: FIFO queue, single transmission
// at a time.
type swLink struct {
	from, to  int
	class     energy.LinkClass
	busyUntil sim.Time
	queue     []sim.Msg
}

// NewSwitchFabric creates the switched interconnect on the hub partition.
// The configuration must pass Validate (in particular Nodes must be set);
// violations are wiring bugs and panic.
func NewSwitchFabric(name string, part *sim.Partition, cfg Config) *SwitchFabric {
	if !cfg.Topology.Switched() {
		panic(fmt.Sprintf("fabric: NewSwitchFabric called with topology %q", cfg.Topology))
	}
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("fabric: %v", err))
	}
	s := &SwitchFabric{
		hub:      newHub(name, part, cfg),
		topo:     cfg.Topology,
		gpuNodes: cfg.Nodes,
	}
	s.arb = s
	s.build()
	return s
}

// build constructs the switch graph, the node-to-switch map and the routing
// tables.
func (s *SwitchFabric) build() {
	n := s.gpuNodes
	s.swOf = make([]int, n)
	var count int // switches before the host switch
	switch s.topo {
	case TopologyRing, TopologyMesh:
		count = n
		for i := range s.swOf {
			s.swOf[i] = i
		}
		s.anchor = 0
	case TopologyTree:
		// Radix-4 grouping: leaves host 4 GPUs each, parents 4 children,
		// up to a single root (which is the anchor).
		for g := range s.swOf {
			s.swOf[g] = g / 4
		}
		levels := []int{(n + 3) / 4}
		for levels[len(levels)-1] > 1 {
			levels = append(levels, (levels[len(levels)-1]+3)/4)
		}
		for _, c := range levels {
			count += c
		}
		s.anchor = count - 1 // the root is numbered last
		s.parent = make([]int, count)
		start := 0
		for l := 0; l < len(levels); l++ {
			next := start + levels[l]
			for j := 0; j < levels[l]; j++ {
				if l == len(levels)-1 {
					s.parent[start+j] = -1
				} else {
					s.parent[start+j] = next + j/4
				}
			}
			start = next
		}
	}
	s.hostSw = count
	total := count + 1
	s.sws = make([]*swNode, total)
	for i := range s.sws {
		s.sws[i] = &swNode{id: i, out: make(map[int]*swLink)}
	}

	switch s.topo {
	case TopologyRing:
		if n == 2 {
			s.connect(0, 1, energy.Board)
		} else {
			for i := 0; i < n; i++ {
				s.connect(i, (i+1)%n, energy.Board)
			}
		}
	case TopologyMesh:
		w, h, _ := MeshDims(n)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if x+1 < w {
					s.connect(y*w+x, y*w+x+1, energy.Board)
				}
				if y+1 < h {
					s.connect(y*w+x, (y+1)*w+x, energy.Board)
				}
			}
		}
	case TopologyTree:
		leafCount := (n + 3) / 4
		for c, p := range s.parent {
			if p < 0 {
				continue
			}
			// Leaf uplinks stay on the board; links between upper switch
			// levels cross the node tier.
			class := energy.Board
			if c >= leafCount {
				class = energy.Node
			}
			s.connect(c, p, class)
		}
	}
	// The host switch hangs off the anchor over a board-class link.
	s.connect(s.hostSw, s.anchor, energy.Board)

	s.next = make([][]int, total)
	for a := 0; a < total; a++ {
		s.next[a] = make([]int, total)
		for d := 0; d < total; d++ {
			s.next[a][d] = s.hop(a, d)
		}
	}
}

// connect wires a bidirectional pair of links between switches a and b.
func (s *SwitchFabric) connect(a, b int, class energy.LinkClass) {
	ab := &swLink{from: a, to: b, class: class}
	ba := &swLink{from: b, to: a, class: class}
	s.sws[a].out[b] = ab
	s.sws[b].out[a] = ba
	s.links = append(s.links, ab, ba)
}

// hop computes the next switch on the route from a to d (-1 when a == d).
func (s *SwitchFabric) hop(a, d int) int {
	if a == d {
		return -1
	}
	if a == s.hostSw {
		return s.anchor
	}
	if d == s.hostSw {
		if a == s.anchor {
			return s.hostSw
		}
		d = s.anchor
	}
	switch s.topo {
	case TopologyRing:
		n := s.gpuNodes
		cw := (d - a + n) % n
		if cw <= n-cw {
			return (a + 1) % n // ties go clockwise
		}
		return (a - 1 + n) % n
	case TopologyMesh:
		w, _, _ := MeshDims(s.gpuNodes)
		ax, ay := a%w, a/w
		dx, dy := d%w, d/w
		switch { // dimension-ordered: resolve X before Y
		case ax < dx:
			return a + 1
		case ax > dx:
			return a - 1
		case ay < dy:
			return a + w
		default:
			return a - w
		}
	case TopologyTree:
		// If a is an ancestor of d, step down toward d; otherwise step up.
		prev := d
		for p := s.parent[d]; p >= 0; prev, p = p, s.parent[p] {
			if p == a {
				return prev
			}
		}
		return s.parent[a]
	}
	panic("unreachable")
}

// Attach implements Fabric. On top of the shared hub attachment it creates
// the endpoint's dedicated credit link and binds the endpoint to its switch.
func (s *SwitchFabric) Attach(p *sim.Port, owner *sim.Partition) {
	s.hub.Attach(p, owner)
	ep := s.byPort[p]
	ep.creditOut = s.part.Engine().Link(s.part, owner, s.cfg.LinkLatency)
	node := owner.Index()
	if owner == s.part || node >= s.gpuNodes {
		ep.sw = s.hostSw
	} else {
		ep.sw = s.swOf[node]
	}
	s.sws[ep.sw].eps = append(s.sws[ep.sw].eps, ep)
}

// Handle implements sim.Handler for the hub-side events.
func (s *SwitchFabric) Handle(e sim.Event) error {
	switch evt := e.(type) {
	case *sim.TickEvent:
		s.injectAll(e.Time())
		return nil
	case linkIngressEvent:
		evt.ep.queue = append(evt.ep.queue, evt.msg)
		s.inject(e.Time(), s.sws[evt.ep.sw])
		return nil
	case inCreditEvent:
		evt.ep.refund(evt.bytes)
		// A refund can unblock a head-of-line message at any switch.
		s.injectAll(e.Time())
		return nil
	case hopDoneEvent:
		s.pumpLink(e.Time(), evt.link)
		s.forward(e.Time(), evt.link.to, evt.msg)
		return nil
	case egressDoneEvent:
		s.egressDone(e.Time(), evt)
		return nil
	case faultDeliverEvent:
		s.pendingFaults--
		s.handOff(e.Time(), evt.msg)
		return nil
	default:
		return fmt.Errorf("fabric %s: unexpected event %T", s.Name(), e)
	}
}

// injectAll runs injection arbitration on every switch, in switch order.
func (s *SwitchFabric) injectAll(now sim.Time) {
	for _, sw := range s.sws {
		s.inject(now, sw)
	}
}

// inject admits queued messages into the network: round-robin over the
// switch's endpoints, end-to-end destination credit reserved up front,
// output credit returned to the source immediately. Injection itself is
// instantaneous — contention is modelled at the link level.
func (s *SwitchFabric) inject(now sim.Time, sw *swNode) {
	n := len(sw.eps)
	if n == 0 {
		return
	}
	for progress := true; progress; {
		progress = false
		for i := 0; i < n; i++ {
			ep := sw.eps[(sw.nextRR+i)%n]
			if len(ep.queue) == 0 {
				continue
			}
			msg := ep.queue[0]
			bytes := msg.Meta().Bytes
			if !s.byPort[msg.Meta().Dst].reserve(bytes) {
				continue // head-of-line blocked; try another endpoint
			}
			ep.queue = ep.queue[1:]
			sw.nextRR = (sw.nextRR + i + 1) % n
			s.outCredit(now, ep, bytes)
			s.forward(now, sw.id, msg)
			progress = true
			break
		}
	}
}

// forward moves a message one step: onto the next inter-switch link toward
// its destination switch, or onto the destination endpoint's egress wire.
func (s *SwitchFabric) forward(now sim.Time, at int, msg sim.Msg) {
	dst := s.byPort[msg.Meta().Dst]
	if dst.sw == at {
		dst.egrQueue = append(dst.egrQueue, msg)
		s.pumpEgress(now, dst)
		return
	}
	l := s.sws[at].out[s.next[at][dst.sw]]
	l.queue = append(l.queue, msg)
	s.pumpLink(now, l)
}

// pumpLink starts the next transmission on an idle inter-switch link. The
// message arrives at the far switch when the transmission completes (store
// and forward; the hop occupies the link for the full serialization time).
func (s *SwitchFabric) pumpLink(now sim.Time, l *swLink) {
	if l.busyUntil > now || len(l.queue) == 0 {
		return
	}
	msg := l.queue[0]
	l.queue = l.queue[1:]
	cycles := s.cycles(msg.Meta().Bytes)
	l.busyUntil = now + cycles
	s.busyCycles += uint64(cycles)
	s.hopCount++
	s.bytesByClass[l.class] += uint64(msg.Meta().Bytes)
	s.part.Schedule(hopDoneEvent{
		EventBase: sim.NewEventBase(l.busyUntil, s),
		link:      l,
		msg:       msg,
	})
}

// pumpEgress starts the next transmission on an idle egress wire and, while
// it is committed, publishes the next-send horizon on the endpoint's
// delivery link: the in-flight delivery lands at exactly done+LinkLatency
// (finish hands off at done), so the bound is tight. Suppressed while a
// fault-delayed delivery is outstanding, since it may land inside the
// horizon of a later transmission.
func (s *SwitchFabric) pumpEgress(now sim.Time, ep *endpoint) {
	if ep.egrInFlight || len(ep.egrQueue) == 0 {
		return
	}
	msg := ep.egrQueue[0]
	ep.egrQueue = ep.egrQueue[1:]
	cycles := s.cycles(msg.Meta().Bytes)
	done := now + cycles
	ep.egrInFlight = true
	s.busyCycles += uint64(cycles)
	s.bytesByClass[s.cfg.BaseClass] += uint64(msg.Meta().Bytes)
	if s.pendingFaults == 0 {
		ep.toOwner.SetNextSend(done + s.cfg.LinkLatency)
	}
	s.part.Schedule(egressDoneEvent{
		EventBase: sim.NewEventBase(done, s),
		ep:        ep,
		msg:       msg,
		start:     now,
	})
}

// egressDone completes one delivery: accounting, trace, fault routing and
// the hand-off to the destination partition.
func (s *SwitchFabric) egressDone(now sim.Time, evt egressDoneEvent) {
	msg := evt.msg
	s.messagesSent++
	s.bytesSent += uint64(msg.Meta().Bytes)
	if s.cfg.Trace != nil {
		s.cfg.Trace.Record(trace.Transfer{
			Start: evt.start,
			End:   now,
			Src:   msg.Meta().Src.Name(),
			Dst:   msg.Meta().Dst.Name(),
			Bytes: msg.Meta().Bytes,
			Kind:  fmt.Sprintf("%T", msg),
		})
	}
	s.finish(now, msg)
	evt.ep.egrInFlight = false
	s.pumpEgress(now, evt.ep)
}

// hopDoneEvent releases an inter-switch link and forwards its message.
type hopDoneEvent struct {
	sim.EventBase
	link *swLink
	msg  sim.Msg
}

// egressDoneEvent completes a transmission on an endpoint's egress wire.
type egressDoneEvent struct {
	sim.EventBase
	ep    *endpoint
	msg   sim.Msg
	start sim.Time
}

// Hops returns the number of inter-switch hops between GPU nodes a and b
// (endpoint ingress/egress wires excluded) under the fabric's routing.
func (s *SwitchFabric) Hops(a, b int) int {
	from, to := s.swOf[a], s.swOf[b]
	h := 0
	for from != to {
		from = s.next[from][to]
		h++
	}
	return h
}

// Switches returns the switch count, host switch included.
func (s *SwitchFabric) Switches() int { return len(s.sws) }

// QueuedMessages returns messages buffered anywhere in the fabric (tests).
func (s *SwitchFabric) QueuedMessages() int {
	n := 0
	for _, ep := range s.endpoints {
		n += len(ep.queue) + len(ep.egrQueue)
	}
	for _, l := range s.links {
		n += len(l.queue)
	}
	return n
}

// TotalBytes implements Fabric: bytes delivered, each message counted once
// regardless of hop count, so totals are comparable across topologies.
func (s *SwitchFabric) TotalBytes() uint64 { return s.bytesSent }

// TotalMessages implements Fabric.
func (s *SwitchFabric) TotalMessages() uint64 { return s.messagesSent }

// EnergyPJ implements Fabric: per-hop bytes priced by the class of the link
// they crossed, in fixed class order (deterministic float sum).
func (s *SwitchFabric) EnergyPJ() float64 {
	e := 0.0
	for c, b := range s.bytesByClass {
		e += float64(b*8) * energy.LinkClass(c).PJPerBit()
	}
	return e
}

// Utilization implements Fabric: mean utilization across every serializing
// link (inter-switch links plus the endpoint egress wires).
func (s *SwitchFabric) Utilization(now sim.Time) float64 {
	total := len(s.links) + len(s.endpoints)
	if now == 0 || total == 0 {
		return 0
	}
	return float64(s.busyCycles) / float64(now) / float64(total)
}

// RegisterMetrics implements Fabric: the shared counters plus the
// switched-only hops and switches paths (new topologies register new paths;
// bus and crossbar snapshots stay byte-identical).
func (s *SwitchFabric) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.CounterFunc(prefix+"/bytes", func() uint64 { return s.bytesSent })
	reg.CounterFunc(prefix+"/messages", func() uint64 { return s.messagesSent })
	reg.CounterFunc(prefix+"/busy_cycles", func() uint64 { return s.busyCycles })
	reg.GaugeFunc(prefix+"/links", func() float64 { return float64(len(s.links) + len(s.endpoints)) })
	reg.CounterFunc(prefix+"/hops", func() uint64 { return s.hopCount })
	reg.GaugeFunc(prefix+"/switches", func() float64 { return float64(len(s.sws)) })
}
