package fabric

import (
	"testing"

	"mgpucompress/internal/fault"
	"mgpucompress/internal/sim"
)

// ipacket is an injectable, corruptible test message; plain packet traffic
// (no marker) must never be touched by the injector.
type ipacket struct {
	sim.MsgMeta
	payload []byte
}

func (p *ipacket) Meta() *sim.MsgMeta { return &p.MsgMeta }
func (p *ipacket) FaultInjectable()   {}
func (p *ipacket) CorruptCopy(pick uint64) (sim.Msg, bool) {
	if len(p.payload) == 0 {
		return nil, false
	}
	c := *p
	c.payload = append([]byte(nil), p.payload...)
	bit := pick % uint64(len(c.payload)*8)
	c.payload[bit/8] ^= 1 << (bit % 8)
	return &c, true
}

func ipkt(dst *sim.Port, payload []byte) *ipacket {
	p := &ipacket{payload: payload}
	p.Dst, p.Bytes = dst, len(payload)
	return p
}

// TestBusFaultDropsInjectableOnly: with DropRate=1 every injectable message
// vanishes after burning its bus cycles, while unmarked control traffic is
// untouched.
func TestBusFaultDropsInjectableOnly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fault = fault.NewInjector(fault.Profile{DropRate: 1}, 1)
	engine, bus, nodes := setup(t, 2, cfg, true)

	nodes[0].port.Send(0, ipkt(nodes[1].port, make([]byte, 20)))
	nodes[0].port.Send(0, pkt(nodes[1].port, 20, 7))
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if len(nodes[1].received) != 1 {
		t.Fatalf("delivered %d messages, want only the control packet", len(nodes[1].received))
	}
	if _, ok := nodes[1].received[0].(*packet); !ok {
		t.Errorf("survivor is %T, want *packet", nodes[1].received[0])
	}
	// The dropped message still occupied the bus: accounting reflects the
	// transmission as sent.
	if bus.MessagesSent != 2 || bus.BytesSent != 40 {
		t.Errorf("stats = %d msgs / %d bytes, want 2 / 40", bus.MessagesSent, bus.BytesSent)
	}
	if cfg.Fault.Dropped != 1 {
		t.Errorf("Dropped = %d", cfg.Fault.Dropped)
	}
}

// TestBusFaultDelaysDelivery: a delayed message arrives exactly DelayCycles
// after its normal delivery time.
func TestBusFaultDelaysDelivery(t *testing.T) {
	arrival := func(inj *fault.Injector) sim.Time {
		cfg := DefaultConfig()
		cfg.Fault = inj
		engine, _, nodes := setup(t, 2, cfg, true)
		nodes[0].port.Send(0, ipkt(nodes[1].port, make([]byte, 20)))
		if err := engine.Run(); err != nil {
			t.Fatal(err)
		}
		if len(nodes[1].received) != 1 {
			t.Fatal("message lost")
		}
		return nodes[1].times[0]
	}
	clean := arrival(nil)
	delayed := arrival(fault.NewInjector(fault.Profile{DelayRate: 1, DelayCycles: 16}, 1))
	if delayed != clean+16 {
		t.Errorf("delayed arrival %d, want %d + 16", delayed, clean)
	}
}

// TestBusFaultCorruptionDeliversCopy: the receiver gets a one-bit-flipped
// copy; the sender's original is intact.
func TestBusFaultCorruptionDeliversCopy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fault = fault.NewInjector(fault.Profile{CorruptRate: 1}, 1)
	engine, _, nodes := setup(t, 2, cfg, true)

	orig := ipkt(nodes[1].port, []byte{0xFF, 0x00, 0xFF, 0x00})
	nodes[0].port.Send(0, orig)
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if len(nodes[1].received) != 1 {
		t.Fatal("message lost")
	}
	got, ok := nodes[1].received[0].(*ipacket)
	if !ok || got == orig {
		t.Fatal("receiver did not get a distinct copy")
	}
	if string(orig.payload) != "\xff\x00\xff\x00" {
		t.Error("sender's original payload mutated")
	}
	diff := 0
	for i := range got.payload {
		for b := 0; b < 8; b++ {
			if (got.payload[i]^orig.payload[i])>>b&1 == 1 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Errorf("%d bits flipped, want 1", diff)
	}
}

// TestBusFaultDelayedDeliveryRespectsBackpressure: a delayed redelivery into
// a full buffer must reschedule, not panic the port's flow-control check.
func TestBusFaultDelayedDeliveryRespectsBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fault = fault.NewInjector(fault.Profile{DelayRate: 1, DelayCycles: 4}, 1)
	engine := sim.NewEngine()
	hub := engine.Partition(0)
	bus := NewBus("bus", hub, cfg)
	src := newNode("src", 4*1024, true)
	// 24-byte input buffer, not drained: the delayed injectable holds its
	// credit reservation, so the control packet stays queued behind it until
	// the receiver drains.
	dst := newNode("dst", 24, false)
	bus.Attach(src.port, hub)
	bus.Attach(dst.port, hub)

	src.port.Send(0, ipkt(dst.port, make([]byte, 20))) // delayed by 4
	src.port.Send(0, pkt(dst.port, 24, 1))             // blocked on input credit
	if err := engine.RunUntil(60); err != nil {
		t.Fatal(err)
	}
	if got := dst.port.Buffered(); got != 1 {
		t.Fatalf("%d messages buffered mid-run, want 1 (the delayed injectable)", got)
	}
	dst.drainAll(engine.Now())
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	dst.drainAll(engine.Now())
	if len(dst.received) != 2 {
		t.Fatalf("delivered %d messages, want 2", len(dst.received))
	}
}

// TestCrossbarFaultInjection: the injector hooks the crossbar's delivery
// path too.
func TestCrossbarFaultInjection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fault = fault.NewInjector(fault.Profile{DropRate: 1}, 1)
	engine := sim.NewEngine()
	hub := engine.Partition(0)
	xbar := NewCrossbar("xbar", hub, cfg)
	a := newNode("a", 4*1024, true)
	b := newNode("b", 4*1024, true)
	xbar.Attach(a.port, hub)
	xbar.Attach(b.port, hub)

	a.port.Send(0, ipkt(b.port, make([]byte, 20)))
	a.port.Send(0, pkt(b.port, 20, 1))
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if len(b.received) != 1 {
		t.Fatalf("crossbar delivered %d messages, want only the control packet", len(b.received))
	}
	if cfg.Fault.Dropped != 1 {
		t.Errorf("Dropped = %d", cfg.Fault.Dropped)
	}
}
