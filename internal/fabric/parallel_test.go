package fabric

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"runtime"
	"testing"

	"mgpucompress/internal/metrics"
	"mgpucompress/internal/sim"
)

// chatter is a bus endpoint that lives on its own partition and echoes a
// fixed number of request/response rounds with every other endpoint,
// logging (time, message ID, size) for everything it receives.
type chatter struct {
	sim.ComponentBase
	part   *sim.Partition
	port   *sim.Port
	peers  []*sim.Port
	rounds int
	log    []byte
}

func newChatter(name string, part *sim.Partition, rounds int) *chatter {
	c := &chatter{ComponentBase: sim.NewComponentBase(name), part: part, rounds: rounds}
	c.port = sim.NewPort(c, name+".port", 4*1024)
	return c
}

func (c *chatter) Handle(e sim.Event) error {
	// Kick-off tick: send round 0 to every peer.
	for i, p := range c.peers {
		c.send(e.Time(), p, 0, i)
	}
	return nil
}

func (c *chatter) send(now sim.Time, dst *sim.Port, round, lane int) {
	m := &packet{tag: round}
	m.Dst, m.Bytes = dst, 20+(round+lane)%60
	if !c.port.Send(now, m) {
		panic("chatter: unbuffered send rejected")
	}
}

func (c *chatter) NotifyRecv(now sim.Time, p *sim.Port) {
	for {
		m := p.Retrieve(now)
		if m == nil {
			return
		}
		pk := m.(*packet)
		var rec [28]byte
		binary.LittleEndian.PutUint64(rec[0:], uint64(now))
		binary.LittleEndian.PutUint64(rec[8:], m.Meta().ID)
		binary.LittleEndian.PutUint64(rec[16:], uint64(m.Meta().Bytes))
		binary.LittleEndian.PutUint32(rec[24:], uint32(pk.tag))
		c.log = append(c.log, rec[:]...)
		if pk.tag+1 < c.rounds {
			c.send(now, m.Meta().Src, pk.tag+1, 0)
		}
	}
}

func (c *chatter) NotifyPortFree(sim.Time, *sim.Port) {}

// runParallelDigest builds one bus with an endpoint per partition, runs the
// all-pairs echo traffic on the given core count, and digests every
// endpoint's receive log (times and message IDs included) plus the metrics
// snapshot.
func runParallelDigest(t *testing.T, topology Topology, parts, cores, rounds int) [32]byte {
	t.Helper()
	engine := sim.NewEngine(sim.WithPartitions(parts+1), sim.WithCores(cores))
	hub := engine.Partition(parts)
	cfg := DefaultConfig()
	cfg.Topology = topology
	cfg.Nodes = parts
	f := New("fabric", hub, cfg)
	nodes := make([]*chatter, parts)
	for i := range nodes {
		nodes[i] = newChatter("n"+string(rune('0'+i)), engine.Partition(i), rounds)
		f.Attach(nodes[i].port, engine.Partition(i))
	}
	for i, n := range nodes {
		for j, peer := range nodes {
			if i != j {
				n.peers = append(n.peers, peer.port)
			}
		}
		n.part.ScheduleTick(0, n)
	}
	reg := metrics.NewRegistry()
	engine.RegisterMetrics(reg, "sim")
	f.RegisterMetrics(reg, "fabric")
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	for _, n := range nodes {
		h.Write(n.log)
	}
	var snap bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&snap); err != nil {
		t.Fatal(err)
	}
	h.Write(snap.Bytes())
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// TestParallelMatchesSerial: the conservative parallel engine must produce
// byte-identical receive logs (message IDs included) and metrics snapshots
// for any core count and any GOMAXPROCS, on every fabric topology.
func TestParallelMatchesSerial(t *testing.T) {
	const parts, rounds = 4, 50
	for _, topo := range Topologies() {
		want := runParallelDigest(t, topo, parts, 1, rounds)
		for _, procs := range []int{1, runtime.GOMAXPROCS(0)} {
			prev := runtime.GOMAXPROCS(procs)
			for _, cores := range []int{1, 2, 8} {
				if got := runParallelDigest(t, topo, parts, cores, rounds); got != want {
					t.Errorf("%s: cores=%d GOMAXPROCS=%d diverged from serial run",
						topo, cores, procs)
				}
			}
			runtime.GOMAXPROCS(prev)
		}
	}
}
