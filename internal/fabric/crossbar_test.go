package fabric

import (
	"testing"

	"mgpucompress/internal/sim"
)

func setupXbar(t *testing.T, nNodes int, cfg Config, drain bool) (*sim.Engine, *Crossbar, []*node) {
	t.Helper()
	engine := sim.NewEngine()
	hub := engine.Partition(0)
	xbar := NewCrossbar("xbar", hub, cfg)
	nodes := make([]*node, nNodes)
	for i := range nodes {
		nodes[i] = newNode("n"+string(rune('0'+i)), 4*1024, drain)
		xbar.Attach(nodes[i].port, hub)
	}
	return engine, xbar, nodes
}

func TestCrossbarDisjointPairsTransferConcurrently(t *testing.T) {
	cfg := DefaultConfig()
	engine, _, nodes := setupXbar(t, 4, cfg, true)
	L := lat(cfg)
	// 0→1 and 2→3 are disjoint: both 100-byte (5-cycle) messages must
	// finish together after the two wire hops, which a shared bus cannot do.
	nodes[0].port.Send(0, pkt(nodes[1].port, 100, 1))
	nodes[2].port.Send(0, pkt(nodes[3].port, 100, 2))
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if len(nodes[1].received) != 1 || len(nodes[3].received) != 1 {
		t.Fatal("messages lost")
	}
	if nodes[1].times[0] != 2*L+5 || nodes[3].times[0] != 2*L+5 {
		t.Errorf("delivery times %d/%d, want concurrent %d/%d",
			nodes[1].times[0], nodes[3].times[0], 2*L+5, 2*L+5)
	}
}

func TestCrossbarSerializesSharedDestination(t *testing.T) {
	engine, _, nodes := setupXbar(t, 3, DefaultConfig(), true)
	// 0→2 and 1→2 share the destination input link: serialized.
	nodes[0].port.Send(0, pkt(nodes[2].port, 100, 1))
	nodes[1].port.Send(0, pkt(nodes[2].port, 100, 2))
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if len(nodes[2].received) != 2 {
		t.Fatal("messages lost")
	}
	a, b := nodes[2].times[0], nodes[2].times[1]
	if a == b {
		t.Errorf("shared-destination transfers overlapped (%d, %d)", a, b)
	}
	if b < a+5 {
		t.Errorf("second delivery at %d after first at %d, want ≥5 cycles apart (serialized 5-cycle transfers)", b, a)
	}
}

func TestCrossbarSerializesSharedSource(t *testing.T) {
	engine, _, nodes := setupXbar(t, 3, DefaultConfig(), true)
	nodes[0].port.Send(0, pkt(nodes[1].port, 100, 1))
	nodes[0].port.Send(0, pkt(nodes[2].port, 100, 2))
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if len(nodes[1].received) != 1 || len(nodes[2].received) != 1 {
		t.Fatal("messages lost")
	}
	if nodes[2].times[0] < nodes[1].times[0]+5 {
		t.Errorf("second transfer from one source at %d, first at %d, want ≥5 cycles apart", nodes[2].times[0], nodes[1].times[0])
	}
}

func TestCrossbarBeatsBusUnderAllToAllLoad(t *testing.T) {
	run := func(topology Topology) sim.Time {
		cfg := DefaultConfig()
		cfg.Topology = topology
		engine := sim.NewEngine()
		hub := engine.Partition(0)
		f := New("f", hub, cfg)
		nodes := make([]*node, 4)
		for i := range nodes {
			nodes[i] = newNode("n"+string(rune('0'+i)), 64*1024, true)
			f.Attach(nodes[i].port, hub)
		}
		for src := 0; src < 4; src++ {
			for dst := 0; dst < 4; dst++ {
				if src == dst {
					continue
				}
				for k := 0; k < 5; k++ {
					nodes[src].port.Send(0, pkt(nodes[dst].port, 100, src*10+dst))
				}
			}
		}
		if err := engine.Run(); err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, n := range nodes {
			total += len(n.received)
		}
		if total != 60 {
			t.Fatalf("%s delivered %d messages, want 60", topology, total)
		}
		return engine.Now()
	}
	bus := run(TopologyBus)
	xbar := run(TopologyCrossbar)
	if xbar >= bus {
		t.Errorf("crossbar (%d cycles) not faster than bus (%d cycles) under all-to-all load", xbar, bus)
	}
	// 60 × 5-cycle messages on a bus = 300 cycles; a 4-port crossbar can
	// approach 4× that throughput.
	if xbar > bus*2/3 {
		t.Errorf("crossbar speedup too small: %d vs %d", xbar, bus)
	}
}

func TestCrossbarBackpressure(t *testing.T) {
	cfg := Config{BytesPerCycle: 20, OutBufferBytes: 100, Topology: TopologyCrossbar}
	engine, xbar, nodes := setupXbar(t, 2, cfg, true)
	ok1 := nodes[0].port.Send(0, pkt(nodes[1].port, 90, 1))
	ok2 := nodes[0].port.Send(0, pkt(nodes[1].port, 20, 2))
	if !ok1 {
		t.Fatal("first send rejected")
	}
	if ok2 {
		t.Fatal("overflow send accepted")
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if !nodes[0].port.Send(engine.Now(), pkt(nodes[1].port, 20, 2)) {
		t.Fatal("retry rejected after drain")
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if len(nodes[1].received) != 2 {
		t.Errorf("delivered %d, want 2", len(nodes[1].received))
	}
	if xbar.TotalBytes() != 110 || xbar.TotalMessages() != 2 {
		t.Errorf("stats %d B / %d msgs", xbar.TotalBytes(), xbar.TotalMessages())
	}
}

func TestCrossbarUtilization(t *testing.T) {
	engine, xbar, nodes := setupXbar(t, 2, Config{BytesPerCycle: 20, OutBufferBytes: 4096, Topology: TopologyCrossbar}, true)
	nodes[0].port.Send(0, pkt(nodes[1].port, 200, 1)) // 10 cycles on 1 of 2 links
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if xbar.busyCycles != 10 {
		t.Errorf("busyCycles = %d, want 10 for a single 200-byte transfer", xbar.busyCycles)
	}
	want := float64(xbar.busyCycles) / float64(engine.Now()) / 2
	if u := xbar.Utilization(engine.Now()); u != want {
		t.Errorf("utilization = %v, want busy/elapsed/links = %v", u, want)
	}
}

func TestNewSelectsTopology(t *testing.T) {
	hub := sim.NewEngine().Partition(0)
	if _, ok := New("f", hub, DefaultConfig()).(*Bus); !ok {
		t.Error("default topology is not the paper's bus")
	}
	cfg := DefaultConfig()
	cfg.Topology = TopologyCrossbar
	if _, ok := New("f", hub, cfg).(*Crossbar); !ok {
		t.Error("crossbar topology not selected")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown topology did not panic")
		}
	}()
	bad := DefaultConfig()
	bad.Topology = "torus"
	New("f", hub, bad)
}
