package fabric

import (
	"fmt"

	"mgpucompress/internal/metrics"
	"mgpucompress/internal/sim"
	"mgpucompress/internal/trace"
)

// Fabric abstracts the inter-GPU interconnect so the platform can swap the
// paper's shared bus for richer topologies. The crossbar below exists for
// the topology ablation: the paper's intro notes that "the design of the
// inter-GPU network can impact performance significantly", and comparing
// compression gains across topologies quantifies how much of the benefit
// comes from relieving bus contention.
type Fabric interface {
	// Attach connects an endpoint port, owned by a component living in
	// partition owner, to the fabric. Must be called before the simulation
	// starts; it wires the port's connection and the cross-partition links.
	Attach(p *sim.Port, owner *sim.Partition)
	// TotalBytes is everything delivered, headers and control included.
	TotalBytes() uint64
	// TotalMessages is the number of messages delivered.
	TotalMessages() uint64
	// Utilization is busy time over elapsed time (for a crossbar, averaged
	// over the output links).
	Utilization(now sim.Time) float64
	// EnergyPJ is the accumulated link transfer energy: bits moved times
	// the pJ/bit of the link class each hop crossed. Single-hop fabrics
	// (bus, crossbar) price everything at Config.BaseClass; switched
	// topologies additionally charge Board/Node tiers per inter-switch hop.
	EnergyPJ() float64
	// RegisterMetrics exposes the fabric counters under prefix
	// (conventionally "fabric"): bytes, messages, busy_cycles, links.
	// Switched topologies add hops and switches.
	RegisterMetrics(reg *metrics.Registry, prefix string)
}

// Topology names a fabric implementation.
type Topology string

// Supported topologies.
const (
	TopologyBus      Topology = "bus"      // the paper's shared bus
	TopologyCrossbar Topology = "crossbar" // extension: full crossbar
	TopologyRing     Topology = "ring"     // switched: bidirectional ring, one switch per GPU
	TopologyMesh     Topology = "mesh"     // switched: 2D mesh, dimension-ordered routing
	TopologyTree     Topology = "tree"     // switched: radix-4 hierarchical switch fabric
)

// Topologies lists every supported topology in presentation order.
func Topologies() []Topology {
	return []Topology{TopologyBus, TopologyCrossbar, TopologyRing, TopologyMesh, TopologyTree}
}

// Switched reports whether t is one of the multi-hop switch topologies.
func (t Topology) Switched() bool {
	return t == TopologyRing || t == TopologyMesh || t == TopologyTree
}

// New builds the fabric selected by cfg.Topology (default: the paper's bus)
// as a component of the hub partition part.
func New(name string, part *sim.Partition, cfg Config) Fabric {
	switch cfg.Topology {
	case TopologyCrossbar:
		return NewCrossbar(name, part, cfg)
	case TopologyRing, TopologyMesh, TopologyTree:
		return NewSwitchFabric(name, part, cfg)
	case TopologyBus, "":
		return NewBus(name, part, cfg)
	default:
		panic(fmt.Sprintf("fabric: unknown topology %q", cfg.Topology))
	}
}

// Crossbar is a non-blocking switch: every endpoint owns an input and an
// output link of BytesPerCycle each, and transfers between disjoint
// endpoint pairs proceed concurrently. A message occupies its source's
// output link and its destination's input link for the same integral
// number of cycles the bus would charge.
type Crossbar struct {
	hub
	outBusy map[*endpoint]sim.Time
	inBusy  map[*sim.Port]sim.Time
	nextRR  int

	messagesSent uint64
	bytesSent    uint64
	busyCycles   uint64 // summed over output links
}

// NewCrossbar creates the switch on the hub partition part.
func NewCrossbar(name string, part *sim.Partition, cfg Config) *Crossbar {
	c := &Crossbar{
		hub:     newHub(name, part, cfg),
		outBusy: make(map[*endpoint]sim.Time),
		inBusy:  make(map[*sim.Port]sim.Time),
	}
	c.arb = c
	return c
}

// xbarDeliverEvent completes one transfer.
type xbarDeliverEvent struct {
	sim.EventBase
	msg   sim.Msg
	start sim.Time
}

// Handle implements sim.Handler for the hub-side events.
func (c *Crossbar) Handle(e sim.Event) error {
	switch evt := e.(type) {
	case *sim.TickEvent:
		c.schedule(e.Time())
		return nil
	case linkIngressEvent:
		evt.ep.queue = append(evt.ep.queue, evt.msg)
		c.schedule(e.Time())
		return nil
	case inCreditEvent:
		evt.ep.refund(evt.bytes)
		c.schedule(e.Time())
		return nil
	case xbarDeliverEvent:
		c.messagesSent++
		c.bytesSent += uint64(evt.msg.Meta().Bytes)
		if c.cfg.Trace != nil {
			c.cfg.Trace.Record(trace.Transfer{
				Start: evt.start,
				End:   e.Time(),
				Src:   evt.msg.Meta().Src.Name(),
				Dst:   evt.msg.Meta().Dst.Name(),
				Bytes: evt.msg.Meta().Bytes,
				Kind:  fmt.Sprintf("%T", evt.msg),
			})
		}
		c.finish(e.Time(), evt.msg)
		c.schedule(e.Time())
		return nil
	case faultDeliverEvent:
		c.pendingFaults--
		c.handOff(e.Time(), evt.msg)
		return nil
	default:
		return fmt.Errorf("fabric %s: unexpected event %T", c.Name(), e)
	}
}

// schedule starts every transfer whose source output link and destination
// input link are both free, scanning sources round-robin.
func (c *Crossbar) schedule(now sim.Time) {
	n := len(c.endpoints)
	if n == 0 {
		return
	}
	started := true
	for started {
		started = false
		for i := 0; i < n; i++ {
			ep := c.endpoints[(c.nextRR+i)%n]
			if len(ep.queue) == 0 {
				continue
			}
			msg := ep.queue[0]
			dst := msg.Meta().Dst
			if c.outBusy[ep] > now || c.inBusy[dst] > now {
				continue
			}
			bytes := msg.Meta().Bytes
			if !c.byPort[dst].reserve(bytes) {
				continue
			}
			ep.queue = ep.queue[1:]
			cycles := c.cycles(bytes)
			done := now + cycles
			c.outBusy[ep] = done
			c.inBusy[dst] = done
			c.busyCycles += uint64(cycles)
			c.part.Schedule(xbarDeliverEvent{
				EventBase: sim.NewEventBase(done, c),
				msg:       msg,
				start:     now,
			})
			c.outCredit(now, ep, bytes)
			c.nextRR = (c.nextRR + i + 1) % n
			started = true
			break
		}
	}
}

// RegisterMetrics implements Fabric. The links gauge reads len(endpoints)
// lazily, so registering before Attach still reports the final endpoint
// count.
func (c *Crossbar) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.CounterFunc(prefix+"/bytes", func() uint64 { return c.bytesSent })
	reg.CounterFunc(prefix+"/messages", func() uint64 { return c.messagesSent })
	reg.CounterFunc(prefix+"/busy_cycles", func() uint64 { return c.busyCycles })
	reg.GaugeFunc(prefix+"/links", func() float64 { return float64(len(c.endpoints)) })
}

// TotalBytes implements Fabric.
func (c *Crossbar) TotalBytes() uint64 { return c.bytesSent }

// TotalMessages implements Fabric.
func (c *Crossbar) TotalMessages() uint64 { return c.messagesSent }

// EnergyPJ implements Fabric: every crossbar transfer crosses one link of
// the configured base class.
func (c *Crossbar) EnergyPJ() float64 {
	return float64(c.bytesSent*8) * c.cfg.BaseClass.PJPerBit()
}

// Utilization implements Fabric: mean output-link utilization.
func (c *Crossbar) Utilization(now sim.Time) float64 {
	if now == 0 || len(c.endpoints) == 0 {
		return 0
	}
	return float64(c.busyCycles) / float64(now) / float64(len(c.endpoints))
}

// QueuedMessages returns pending messages across endpoints (tests).
func (c *Crossbar) QueuedMessages() int {
	n := 0
	for _, ep := range c.endpoints {
		n += len(ep.queue)
	}
	return n
}
