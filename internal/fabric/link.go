package fabric

import (
	"fmt"

	"mgpucompress/internal/sim"
)

// hub is the partition-resident half shared by Bus and Crossbar: the
// endpoint table, the credit bookkeeping, and the fault-aware hand-off of
// completed transfers back to the owning partitions. The concrete fabric
// embeds it and supplies the arbitration policy.
//
// All hub state is touched only from hub-partition event handlers (or from
// Attach, before the simulation starts). Endpoint ports live in other
// partitions and are reached exclusively through sim.Remote links, so the
// fabric never reads another partition's mutable state mid-window.
type hub struct {
	sim.ComponentBase
	part *sim.Partition
	cfg  Config
	arb  sim.Handler // the concrete fabric (Bus/Crossbar)

	endpoints []*endpoint
	byPort    map[*sim.Port]*endpoint

	// pendingFaults counts fault-delayed deliveries scheduled but not yet
	// fired. While any are outstanding the bus must not raise next-send
	// bounds on its egress links: a delayed delivery may land earlier than
	// the busy horizon of a later transfer.
	pendingFaults int
}

// endpoint is the hub-side view of one attached port: its ingress queue
// (messages that crossed the wire from the owner and await arbitration) and
// the input-credit counter mirroring the destination buffer.
type endpoint struct {
	port    *sim.Port
	link    *fabricLink
	toOwner *sim.Remote
	queue   []sim.Msg
	// inCredit tracks how many bytes of the port's input buffer the hub may
	// still claim; -1 means the buffer is unbounded. Credits are reserved
	// when a transfer claims the fabric and returned by the owner-side link
	// as the component drains its port.
	inCredit int

	// Switched-fabric state (unused by bus and crossbar).
	//
	// creditOut, when non-nil, carries output-buffer credits on a dedicated
	// hub-to-owner link. Switched fabrics publish next-send promises on
	// toOwner while an egress transmission is in flight; credits for the
	// endpoint's own ingress traffic are emitted at injection time and may
	// legitimately precede that horizon, so they must ride a link the
	// promise does not cover.
	creditOut *sim.Remote
	// sw is the switch this endpoint hangs off.
	sw int
	// egrInFlight and egrQueue serialize the endpoint's egress wire:
	// messages that reached the destination switch wait here for the
	// switch-to-owner link, which moves BytesPerCycle like every other
	// link. The flag (not a busy-until time) keeps the wire occupied until
	// the completion event has actually fired: an event landing at exactly
	// the completion time must not start the next transmission first, or
	// its next-send promise would overtake the completed message's
	// hand-off.
	egrInFlight bool
	egrQueue    []sim.Msg
}

func newHub(name string, part *sim.Partition, cfg Config) hub {
	if cfg.BytesPerCycle <= 0 {
		panic("fabric: BytesPerCycle must be positive")
	}
	if cfg.LinkLatency <= 0 {
		cfg.LinkLatency = 1
	}
	return hub{
		ComponentBase: sim.NewComponentBase(name),
		part:          part,
		cfg:           cfg,
		byPort:        make(map[*sim.Port]*endpoint),
	}
}

// Attach connects a port owned by a component in partition owner to the
// fabric. It builds the owner-side link (a sim.Connection local to the
// owner) and the two sim.Remote channels carrying traffic and credits
// between the owner and the hub; the fabric's LinkLatency is the declared
// minimum latency of both, which floors the engine's adaptive window
// bounds on these links.
func (h *hub) Attach(p *sim.Port, owner *sim.Partition) {
	credit := -1
	if c := p.Capacity(); c > 0 {
		credit = c
	}
	ep := &endpoint{port: p, inCredit: credit}
	ep.toOwner = h.part.Engine().Link(h.part, owner, h.cfg.LinkLatency)
	link := &fabricLink{
		hub:  h,
		part: owner,
		port: p,
		ep:   ep,
	}
	link.toHub = h.part.Engine().Link(owner, h.part, h.cfg.LinkLatency)
	ep.link = link
	h.endpoints = append(h.endpoints, ep)
	h.byPort[p] = ep
	p.SetConnection(link)
}

// reserve claims n bytes of the destination's input credit; it reports
// false when the credit does not cover the message (head-of-line blocked).
func (ep *endpoint) reserve(n int) bool {
	if ep.inCredit < 0 {
		return true
	}
	if n > ep.inCredit {
		return false
	}
	ep.inCredit -= n
	return true
}

// refund returns a reservation that will never be delivered (fault drop).
func (ep *endpoint) refund(n int) {
	if ep.inCredit >= 0 {
		ep.inCredit += n
	}
}

// finish routes one completed transfer through the fault injector (when
// configured) and hands the survivor off toward its destination. The input
// credit was reserved at arbitration time: a dropped message refunds it, a
// delayed one keeps the reservation until the retry fires.
func (h *hub) finish(now sim.Time, msg sim.Msg) {
	if inj := h.cfg.Fault; inj != nil {
		out := inj.Apply(msg)
		if out.Msg == nil {
			h.byPort[msg.Meta().Dst].refund(msg.Meta().Bytes)
			return // dropped; the RDMA guard's timeout recovers
		}
		if out.Delay > 0 {
			h.pendingFaults++
			h.part.Schedule(faultDeliverEvent{
				EventBase: sim.NewEventBase(now+out.Delay, h.arb),
				msg:       out.Msg,
			})
			return
		}
		msg = out.Msg
	}
	h.handOff(now, msg)
}

// handOff ships a message across the egress wire to the destination's
// owner partition, where the link delivers it into the port buffer.
func (h *hub) handOff(now sim.Time, msg sim.Msg) {
	ep := h.byPort[msg.Meta().Dst]
	ep.toOwner.Schedule(linkDeliverEvent{
		EventBase: sim.NewEventBase(now+h.cfg.LinkLatency, ep.link),
		link:      ep.link,
		msg:       msg,
	})
}

// cycles returns the integral bus occupancy of a message.
func (h *hub) cycles(bytes int) sim.Time {
	c := sim.Time((bytes + h.cfg.BytesPerCycle - 1) / h.cfg.BytesPerCycle)
	if c == 0 {
		c = 1
	}
	return c
}

// outCredit returns output-buffer space to the source link once its message
// has claimed the fabric (the classic "output queue drains at arbitration"
// semantics, now with the wire latency made explicit). Switched fabrics
// route the credit over the endpoint's dedicated credit link so it is never
// constrained by an egress next-send promise on toOwner.
func (h *hub) outCredit(now sim.Time, ep *endpoint, bytes int) {
	r := ep.toOwner
	if ep.creditOut != nil {
		r = ep.creditOut
	}
	r.Schedule(outCreditEvent{
		EventBase: sim.NewEventBase(now+h.cfg.LinkLatency, ep.link),
		link:      ep.link,
		bytes:     bytes,
	})
}

// fabricLink is the owner-partition side of one fabric attachment. It
// implements sim.Connection for exactly one port: sends cross to the hub
// over a Remote, deliveries and credits come back the same way. Its only
// references into the hub are the immutable configuration and the
// Attach-time port table.
type fabricLink struct {
	hub   *hub
	part  *sim.Partition
	port  *sim.Port
	toHub *sim.Remote
	ep    *endpoint

	// outstanding counts bytes accepted into the endpoint's (modelled)
	// output buffer and not yet credited back by arbitration.
	outstanding int
	// lastUsed mirrors the hub's view of the destination buffer occupancy;
	// the difference to the port's actual usage is the credit to return.
	lastUsed int
}

// Partition implements sim.Connection.
func (l *fabricLink) Partition() *sim.Partition { return l.part }

// Plug implements sim.Connection. Fabric links are bound to their port at
// Attach time; plugging anything else is a wiring bug.
func (l *fabricLink) Plug(p *sim.Port) {
	if p != l.port {
		panic(fmt.Sprintf("fabric %s: link for %s cannot take port %s", l.hub.Name(), l.port.Name(), p.Name()))
	}
	p.SetConnection(l)
}

// Send implements sim.Connection: claim output-buffer space and put the
// message on the wire toward the hub. It reports false when the output
// buffer is full (the sender retries after NotifyPortFree).
func (l *fabricLink) Send(now sim.Time, m sim.Msg) bool {
	meta := m.Meta()
	if meta.Dst == nil {
		panic(fmt.Sprintf("fabric %s: message %d has no destination", l.hub.Name(), meta.ID))
	}
	if _, ok := l.hub.byPort[meta.Dst]; !ok {
		panic(fmt.Sprintf("fabric %s: destination port %s not attached", l.hub.Name(), meta.Dst.Name()))
	}
	n := meta.Bytes
	if n <= 0 {
		panic(fmt.Sprintf("fabric %s: message %d has no size", l.hub.Name(), meta.ID))
	}
	if max := l.hub.cfg.OutBufferBytes; max > 0 && l.outstanding+n > max {
		return false
	}
	l.outstanding += n
	meta.SendTime = now
	l.toHub.Schedule(linkIngressEvent{
		EventBase: sim.NewEventBase(now+l.hub.cfg.LinkLatency, l.hub.arb),
		ep:        l.ep,
		msg:       m,
	})
	return true
}

// NotifyBufferFree implements sim.Connection: the owning component drained
// its port, so input credit may flow back to the hub.
func (l *fabricLink) NotifyBufferFree(now sim.Time, _ *sim.Port) {
	l.reconcile(now)
}

// reconcile returns freed input-buffer bytes to the hub as credit.
func (l *fabricLink) reconcile(now sim.Time) {
	if l.port.Capacity() == 0 {
		return // unbounded buffer, no credits in play
	}
	used := l.port.UsedBytes()
	if freed := l.lastUsed - used; freed > 0 {
		l.lastUsed = used
		l.toHub.Schedule(inCreditEvent{
			EventBase: sim.NewEventBase(now+l.hub.cfg.LinkLatency, l.hub.arb),
			ep:        l.ep,
			bytes:     freed,
		})
	}
}

// Handle processes the hub-to-owner events for this link.
func (l *fabricLink) Handle(e sim.Event) error {
	switch evt := e.(type) {
	case linkDeliverEvent:
		// Count the delivery against the mirrored occupancy before Deliver:
		// the receiving component may drain the port synchronously from
		// NotifyRecv, and the freed bytes must be visible to reconcile.
		l.lastUsed += evt.msg.Meta().Bytes
		l.port.Deliver(e.Time(), evt.msg)
		l.reconcile(e.Time())
		return nil
	case outCreditEvent:
		l.outstanding -= evt.bytes
		l.port.Component().NotifyPortFree(e.Time(), l.port)
		return nil
	default:
		return fmt.Errorf("fabric %s: link %s: unexpected event %T", l.hub.Name(), l.port.Name(), e)
	}
}

// linkIngressEvent carries a message from an owner-side link onto the hub's
// ingress queue for that endpoint.
type linkIngressEvent struct {
	sim.EventBase
	ep  *endpoint
	msg sim.Msg
}

// inCreditEvent returns drained input-buffer bytes to the hub.
type inCreditEvent struct {
	sim.EventBase
	ep    *endpoint
	bytes int
}

// linkDeliverEvent lands a completed transfer in the destination port, on
// the destination's own partition.
type linkDeliverEvent struct {
	sim.EventBase
	link *fabricLink
	msg  sim.Msg
}

// outCreditEvent frees output-buffer space on the source link after its
// message claimed the fabric.
type outCreditEvent struct {
	sim.EventBase
	link  *fabricLink
	bytes int
}

// faultDeliverEvent finishes a fault-delayed delivery; the input-credit
// reservation from arbitration time is still held, so the hand-off needs no
// re-check. It is shared by the bus and the crossbar.
type faultDeliverEvent struct {
	sim.EventBase
	msg sim.Msg
}
