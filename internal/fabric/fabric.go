// Package fabric models the PCIe-like inter-GPU communication fabric of
// Sec. VI-B: a shared bus moving 20 bytes per cycle at 1 GHz (160 Gb/s,
// Table VII) on which only one message transmits at a time, each message
// occupying an integral number of cycles. Endpoints (the CPU and the four
// GPUs) arbitrate round-robin and own 4 KB output and input buffers so a
// stalled endpoint does not block the bus.
//
// The fabric is the seam between simulation partitions: arbitration runs as
// a component of the hub partition, every attached endpoint keeps a small
// link shim in its own partition, and the LinkLatency separating the two is
// the explicit minimum latency that floors the parallel engine's adaptive
// window scheduler. While a transfer occupies the bus, the arbiter also
// publishes next-send bounds on its hub-to-owner links (see arbitrate),
// letting the engine widen windows past the busy stretch.
package fabric

import (
	"fmt"

	"mgpucompress/internal/energy"
	"mgpucompress/internal/fault"
	"mgpucompress/internal/metrics"
	"mgpucompress/internal/sim"
	"mgpucompress/internal/trace"
)

// Config parameterizes the fabric.
type Config struct {
	// BytesPerCycle is the link width (paper: 20 B/cycle at 1 GHz).
	BytesPerCycle int
	// OutBufferBytes bounds each endpoint's output queue (paper: 4 KB).
	// Zero means unbounded.
	OutBufferBytes int
	// LinkLatency is the one-way wire latency, in cycles, between an
	// endpoint and the fabric arbiter (and, for switched topologies,
	// between adjacent switches). It is declared at construction and is the
	// latency floor under the parallel engine's adaptive windows, so it
	// must be at least 1 (Validate rejects smaller values).
	LinkLatency sim.Time
	// Topology selects the implementation: TopologyBus (paper, default),
	// TopologyCrossbar, or one of the switched topologies TopologyRing,
	// TopologyMesh, TopologyTree.
	Topology Topology
	// Nodes is the number of GPU endpoints the switched topologies size
	// their switch graph for: one switch per GPU for ring and mesh, radix-4
	// leaf grouping for the tree. Endpoints owned by partitions with index
	// >= Nodes (the host) attach to a dedicated host switch. Ignored by bus
	// and crossbar; platform.Build sets it to NumGPUs.
	Nodes int
	// BaseClass is the energy class of the endpoint egress links (the
	// switch-to-GPU wires), and the class of every transfer on the
	// single-hop bus and crossbar fabrics. The zero value (OnChip) is
	// normalized to the paper's MCM class by platform.Build; switched
	// topologies price their long inter-switch hops at Board/Node tiers on
	// top of this (see SwitchFabric).
	BaseClass energy.LinkClass
	// Trace, when non-nil, records every completed transfer for offline
	// timeline analysis.
	Trace *trace.Log
	// Fault, when non-nil, is consulted at every delivery and may drop,
	// delay, or corrupt injectable messages. Transfer accounting (bytes,
	// messages, busy cycles, trace records) always reflects the transmission
	// as sent: a dropped message still burned its bus cycles.
	Fault *fault.Injector
}

// DefaultConfig returns the Table VII fabric (shared bus).
func DefaultConfig() Config {
	return Config{BytesPerCycle: 20, OutBufferBytes: 4 * 1024, LinkLatency: 2,
		Topology: TopologyBus, BaseClass: energy.MCM}
}

// Validate reports the first configuration error. It replaces the silent
// normalization the constructors used to apply (LinkLatency below the
// parallel engine's one-cycle latency floor, unknown topologies falling back
// to the bus at higher layers): platform.Build calls it after per-field
// defaulting, so a partially-set Config is rejected loudly instead of being
// quietly replaced.
func (c Config) Validate() error {
	switch c.Topology {
	case "", TopologyBus, TopologyCrossbar:
	case TopologyRing, TopologyTree:
		if c.Nodes < 2 {
			return fmt.Errorf("fabric: topology %q needs Nodes >= 2, got %d", c.Topology, c.Nodes)
		}
	case TopologyMesh:
		if _, _, err := MeshDims(c.Nodes); err != nil {
			return err
		}
	default:
		return fmt.Errorf("fabric: unknown topology %q", c.Topology)
	}
	if c.BytesPerCycle <= 0 {
		return fmt.Errorf("fabric: BytesPerCycle must be positive, got %d", c.BytesPerCycle)
	}
	if c.OutBufferBytes < 0 {
		return fmt.Errorf("fabric: negative OutBufferBytes %d", c.OutBufferBytes)
	}
	if c.LinkLatency < 1 {
		return fmt.Errorf("fabric: LinkLatency %d is below the engine's one-cycle latency floor", c.LinkLatency)
	}
	if c.BaseClass < energy.OnChip || c.BaseClass > energy.Node {
		return fmt.Errorf("fabric: invalid link energy class %d", c.BaseClass)
	}
	return nil
}

// MeshDims returns the 2D grid dimensions (width >= height) the mesh
// topology uses for a power-of-two GPU count: 4 -> 2x2, 8 -> 4x2, 16 -> 4x4,
// 64 -> 8x8. Non-power-of-two counts have no rectangular power-of-two
// factorization and are rejected.
func MeshDims(nodes int) (w, h int, err error) {
	if nodes < 2 || nodes&(nodes-1) != 0 {
		return 0, 0, fmt.Errorf("fabric: mesh needs a power-of-two GPU count >= 2, got %d", nodes)
	}
	w = 1
	for w*w < nodes {
		w <<= 1
	}
	return w, nodes / w, nil
}

// Bus is the shared fabric arbiter; it lives in the hub partition and talks
// to its endpoints through per-attachment links.
type Bus struct {
	hub
	nextRR        int
	busyUntil     sim.Time
	inFlight      sim.Msg
	inFlightStart sim.Time

	// Stats
	MessagesSent uint64
	BytesSent    uint64
	BusyCycles   uint64
}

// NewBus creates the fabric on the hub partition part.
func NewBus(name string, part *sim.Partition, cfg Config) *Bus {
	b := &Bus{hub: newHub(name, part, cfg)}
	b.arb = b
	return b
}

// transferDoneEvent completes an in-flight transmission.
type transferDoneEvent struct {
	sim.EventBase
}

// Handle implements sim.Handler for the hub-side events.
func (b *Bus) Handle(e sim.Event) error {
	switch evt := e.(type) {
	case *sim.TickEvent:
		b.arbitrate(e.Time())
		return nil
	case linkIngressEvent:
		evt.ep.queue = append(evt.ep.queue, evt.msg)
		b.arbitrate(e.Time())
		return nil
	case inCreditEvent:
		evt.ep.refund(evt.bytes)
		b.arbitrate(e.Time())
		return nil
	case transferDoneEvent:
		b.completeTransfer(e.Time())
		return nil
	case faultDeliverEvent:
		b.pendingFaults--
		b.handOff(e.Time(), evt.msg)
		return nil
	default:
		return fmt.Errorf("fabric %s: unexpected event %T", b.Name(), e)
	}
}

// arbitrate starts the next transmission if the bus is idle: scan endpoints
// round-robin and pick the first whose head message fits in its
// destination's input credit.
func (b *Bus) arbitrate(now sim.Time) {
	if b.inFlight != nil || len(b.endpoints) == 0 {
		return
	}
	n := len(b.endpoints)
	for i := 0; i < n; i++ {
		ep := b.endpoints[(b.nextRR+i)%n]
		if len(ep.queue) == 0 {
			continue
		}
		msg := ep.queue[0]
		bytes := msg.Meta().Bytes
		if !b.byPort[msg.Meta().Dst].reserve(bytes) {
			continue // head-of-line blocked; try another endpoint
		}
		// Claim the bus.
		ep.queue = ep.queue[1:]
		b.nextRR = (b.nextRR + i + 1) % n
		b.inFlight = msg
		b.inFlightStart = now
		cycles := b.cycles(bytes)
		b.busyUntil = now + cycles
		b.BusyCycles += uint64(cycles)
		b.part.Schedule(transferDoneEvent{EventBase: sim.NewEventBase(b.busyUntil, b)})
		// Output space freed: credit the sender's link.
		b.outCredit(now, ep, bytes)
		// The wire is committed through busyUntil: arbitrate is a no-op while
		// a transfer is in flight, so after this claim's own credit (just
		// emitted, entry now+latency) nothing leaves the hub before the
		// transfer completes. Publish that horizon as the next-send bound of
		// every egress link — the parallel engine widens its window past the
		// hub's head events up to it. The completing transfer's delivery and
		// the next claim's credit both land at exactly busyUntil+latency, so
		// the bound is tight. Suppressed while a fault-delayed delivery is
		// outstanding, since it may land inside the horizon.
		if b.pendingFaults == 0 {
			horizon := b.busyUntil + b.cfg.LinkLatency
			for _, other := range b.endpoints {
				other.toOwner.SetNextSend(horizon)
			}
		}
		return
	}
}

func (b *Bus) completeTransfer(now sim.Time) {
	msg := b.inFlight
	b.inFlight = nil
	b.MessagesSent++
	b.BytesSent += uint64(msg.Meta().Bytes)
	if b.cfg.Trace != nil {
		b.cfg.Trace.Record(trace.Transfer{
			Start: b.inFlightStart,
			End:   now,
			Src:   msg.Meta().Src.Name(),
			Dst:   msg.Meta().Dst.Name(),
			Bytes: msg.Meta().Bytes,
			Kind:  fmt.Sprintf("%T", msg),
		})
	}
	b.finish(now, msg)
	b.arbitrate(now)
}

// Utilization returns busy cycles divided by total elapsed cycles.
func (b *Bus) Utilization(now sim.Time) float64 {
	if now == 0 {
		return 0
	}
	return float64(b.BusyCycles) / float64(now)
}

// RegisterMetrics implements Fabric. A bus is a single shared link, so the
// links gauge is constant 1 and busy_cycles/cycles is the utilization.
func (b *Bus) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.CounterFunc(prefix+"/bytes", func() uint64 { return b.BytesSent })
	reg.CounterFunc(prefix+"/messages", func() uint64 { return b.MessagesSent })
	reg.CounterFunc(prefix+"/busy_cycles", func() uint64 { return b.BusyCycles })
	reg.GaugeFunc(prefix+"/links", func() float64 { return 1 })
}

// TotalBytes implements Fabric.
func (b *Bus) TotalBytes() uint64 { return b.BytesSent }

// TotalMessages implements Fabric.
func (b *Bus) TotalMessages() uint64 { return b.MessagesSent }

// EnergyPJ implements Fabric: every bus transfer crosses one link of the
// configured base class.
func (b *Bus) EnergyPJ() float64 {
	return float64(b.BytesSent*8) * b.cfg.BaseClass.PJPerBit()
}

// QueuedMessages returns the number of messages waiting across all
// endpoints (for tests and debugging).
func (b *Bus) QueuedMessages() int {
	n := 0
	for _, ep := range b.endpoints {
		n += len(ep.queue)
	}
	if b.inFlight != nil {
		n++
	}
	return n
}
