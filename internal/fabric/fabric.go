// Package fabric models the PCIe-like inter-GPU communication fabric of
// Sec. VI-B: a shared bus moving 20 bytes per cycle at 1 GHz (160 Gb/s,
// Table VII) on which only one message transmits at a time, each message
// occupying an integral number of cycles. Endpoints (the CPU and the four
// GPUs) arbitrate round-robin and own 4 KB output and input buffers so a
// stalled endpoint does not block the bus.
package fabric

import (
	"fmt"

	"mgpucompress/internal/fault"
	"mgpucompress/internal/metrics"
	"mgpucompress/internal/sim"
	"mgpucompress/internal/trace"
)

// Config parameterizes the fabric.
type Config struct {
	// BytesPerCycle is the link width (paper: 20 B/cycle at 1 GHz).
	BytesPerCycle int
	// OutBufferBytes bounds each endpoint's output queue (paper: 4 KB).
	OutBufferBytes int
	// Topology selects the implementation: TopologyBus (paper, default)
	// or TopologyCrossbar (extension).
	Topology Topology
	// Trace, when non-nil, records every completed transfer for offline
	// timeline analysis.
	Trace *trace.Log
	// Fault, when non-nil, is consulted at every delivery and may drop,
	// delay, or corrupt injectable messages. Transfer accounting (bytes,
	// messages, busy cycles, trace records) always reflects the transmission
	// as sent: a dropped message still burned its bus cycles.
	Fault *fault.Injector
}

// DefaultConfig returns the Table VII fabric (shared bus).
func DefaultConfig() Config {
	return Config{BytesPerCycle: 20, OutBufferBytes: 4 * 1024, Topology: TopologyBus}
}

type endpoint struct {
	port      *sim.Port
	queue     []sim.Msg
	usedBytes int
}

// Bus is the shared fabric. It implements sim.Connection for the plugged
// endpoint ports.
type Bus struct {
	sim.ComponentBase
	engine *sim.Engine
	ticker *sim.Ticker
	cfg    Config

	endpoints     []*endpoint
	byPort        map[*sim.Port]*endpoint
	nextRR        int
	busyUntil     sim.Time
	inFlight      sim.Msg
	inFlightStart sim.Time

	// Stats
	MessagesSent uint64
	BytesSent    uint64
	BusyCycles   uint64
}

// NewBus creates the fabric.
func NewBus(name string, engine *sim.Engine, cfg Config) *Bus {
	if cfg.BytesPerCycle <= 0 {
		panic("fabric: BytesPerCycle must be positive")
	}
	b := &Bus{
		ComponentBase: sim.NewComponentBase(name),
		engine:        engine,
		cfg:           cfg,
		byPort:        make(map[*sim.Port]*endpoint),
	}
	b.ticker = sim.NewTicker(engine, b)
	return b
}

// Engine returns the event engine driving the bus.
func (b *Bus) Engine() *sim.Engine { return b.engine }

// Plug attaches an endpoint port to the bus.
func (b *Bus) Plug(p *sim.Port) {
	ep := &endpoint{port: p}
	b.endpoints = append(b.endpoints, ep)
	b.byPort[p] = ep
	p.SetConnection(b)
}

// Send implements sim.Connection: enqueue into the source endpoint's output
// buffer, or report false when the buffer is full (the sender retries after
// NotifyPortFree).
func (b *Bus) Send(now sim.Time, m sim.Msg) bool {
	src := m.Meta().Src
	ep, ok := b.byPort[src]
	if !ok {
		panic(fmt.Sprintf("fabric %s: source port %s not plugged in", b.Name(), src.Name()))
	}
	if _, ok := b.byPort[m.Meta().Dst]; !ok {
		panic(fmt.Sprintf("fabric %s: destination port %s not plugged in", b.Name(), m.Meta().Dst.Name()))
	}
	n := m.Meta().Bytes
	if n <= 0 {
		panic(fmt.Sprintf("fabric %s: message %d has no size", b.Name(), m.Meta().ID))
	}
	if ep.usedBytes+n > b.cfg.OutBufferBytes {
		return false
	}
	m.Meta().SendTime = now
	ep.queue = append(ep.queue, m)
	ep.usedBytes += n
	b.ticker.TickNow(now)
	return true
}

// NotifyBufferFree implements sim.Connection: a destination input buffer
// freed up, so a head-of-line-blocked transfer may now proceed.
func (b *Bus) NotifyBufferFree(now sim.Time, _ *sim.Port) {
	b.ticker.TickNow(now)
}

// transferDoneEvent completes an in-flight transmission.
type transferDoneEvent struct {
	sim.EventBase
}

// faultDeliverEvent finishes a fault-delayed delivery. It is shared by the
// bus and the crossbar; the handler is whichever fabric scheduled it.
type faultDeliverEvent struct {
	sim.EventBase
	msg sim.Msg
}

// redeliver lands a delayed message. Arriving this late, the destination's
// CanAccept reservation from arbitration time no longer holds, so the
// delivery is re-checked and pushed back a few cycles while the input
// buffer is full.
func redeliver(engine *sim.Engine, h sim.Handler, now sim.Time, msg sim.Msg) {
	if !msg.Meta().Dst.CanAccept(msg.Meta().Bytes) {
		engine.Schedule(faultDeliverEvent{
			EventBase: sim.NewEventBase(now+8, h),
			msg:       msg,
		})
		return
	}
	msg.Meta().Dst.Deliver(now, msg)
}

// deliverFaulty routes one completed transfer through the injector (when
// configured) and delivers what survives. It reports whether the message
// was delivered immediately (false: dropped or postponed).
func deliverFaulty(engine *sim.Engine, h sim.Handler, inj *fault.Injector, now sim.Time, msg sim.Msg) bool {
	if inj == nil {
		msg.Meta().Dst.Deliver(now, msg)
		return true
	}
	out := inj.Apply(msg)
	if out.Msg == nil {
		return false // dropped; the RDMA guard's timeout recovers
	}
	if out.Delay > 0 {
		engine.Schedule(faultDeliverEvent{
			EventBase: sim.NewEventBase(now+out.Delay, h),
			msg:       out.Msg,
		})
		return false
	}
	out.Msg.Meta().Dst.Deliver(now, out.Msg)
	return true
}

// Handle implements sim.Handler.
func (b *Bus) Handle(e sim.Event) error {
	switch evt := e.(type) {
	case *sim.TickEvent:
		b.arbitrate(e.Time())
		return nil
	case transferDoneEvent:
		b.completeTransfer(e.Time())
		return nil
	case faultDeliverEvent:
		redeliver(b.engine, b, e.Time(), evt.msg)
		return nil
	default:
		return fmt.Errorf("fabric %s: unexpected event %T", b.Name(), e)
	}
}

// arbitrate starts the next transmission if the bus is idle: scan endpoints
// round-robin and pick the first whose head message fits in its
// destination's input buffer.
func (b *Bus) arbitrate(now sim.Time) {
	if b.inFlight != nil || len(b.endpoints) == 0 {
		return
	}
	n := len(b.endpoints)
	for i := 0; i < n; i++ {
		ep := b.endpoints[(b.nextRR+i)%n]
		if len(ep.queue) == 0 {
			continue
		}
		msg := ep.queue[0]
		if !msg.Meta().Dst.CanAccept(msg.Meta().Bytes) {
			continue // head-of-line blocked; try another endpoint
		}
		// Claim the bus.
		ep.queue = ep.queue[1:]
		ep.usedBytes -= msg.Meta().Bytes
		b.nextRR = (b.nextRR + i + 1) % n
		b.inFlight = msg
		b.inFlightStart = now
		cycles := sim.Time((msg.Meta().Bytes + b.cfg.BytesPerCycle - 1) / b.cfg.BytesPerCycle)
		if cycles == 0 {
			cycles = 1
		}
		b.busyUntil = now + cycles
		b.BusyCycles += uint64(cycles)
		b.engine.Schedule(transferDoneEvent{EventBase: sim.NewEventBase(b.busyUntil, b)})
		// Wake the sender: output space freed.
		ep.port.Component().NotifyPortFree(now, ep.port)
		return
	}
}

func (b *Bus) completeTransfer(now sim.Time) {
	msg := b.inFlight
	b.inFlight = nil
	b.MessagesSent++
	b.BytesSent += uint64(msg.Meta().Bytes)
	if b.cfg.Trace != nil {
		b.cfg.Trace.Record(trace.Transfer{
			Start: b.inFlightStart,
			End:   now,
			Src:   msg.Meta().Src.Name(),
			Dst:   msg.Meta().Dst.Name(),
			Bytes: msg.Meta().Bytes,
			Kind:  fmt.Sprintf("%T", msg),
		})
	}
	deliverFaulty(b.engine, b, b.cfg.Fault, now, msg)
	b.arbitrate(now)
}

// Utilization returns busy cycles divided by total elapsed cycles.
func (b *Bus) Utilization(now sim.Time) float64 {
	if now == 0 {
		return 0
	}
	return float64(b.BusyCycles) / float64(now)
}

// RegisterMetrics implements Fabric. A bus is a single shared link, so the
// links gauge is constant 1 and busy_cycles/cycles is the utilization.
func (b *Bus) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.CounterFunc(prefix+"/bytes", func() uint64 { return b.BytesSent })
	reg.CounterFunc(prefix+"/messages", func() uint64 { return b.MessagesSent })
	reg.CounterFunc(prefix+"/busy_cycles", func() uint64 { return b.BusyCycles })
	reg.GaugeFunc(prefix+"/links", func() float64 { return 1 })
}

// TotalBytes implements Fabric.
func (b *Bus) TotalBytes() uint64 { return b.BytesSent }

// TotalMessages implements Fabric.
func (b *Bus) TotalMessages() uint64 { return b.MessagesSent }

// QueuedMessages returns the number of messages waiting across all
// endpoints (for tests and debugging).
func (b *Bus) QueuedMessages() int {
	n := 0
	for _, ep := range b.endpoints {
		n += len(ep.queue)
	}
	if b.inFlight != nil {
		n++
	}
	return n
}
