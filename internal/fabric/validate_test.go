package fabric

import (
	"strings"
	"testing"

	"mgpucompress/internal/energy"
)

// TestConfigValidate is the satellite-task rejection table: every invalid
// configuration that used to be silently normalized (or silently replaced by
// platform.Build's wholesale fallback) must now produce a descriptive error,
// and every supported shape must pass.
func TestConfigValidate(t *testing.T) {
	valid := func(mut func(*Config)) Config {
		c := DefaultConfig()
		if mut != nil {
			mut(&c)
		}
		return c
	}
	cases := []struct {
		name    string
		cfg     Config
		wantErr string // substring; "" = must pass
	}{
		{"default bus", valid(nil), ""},
		{"empty topology", valid(func(c *Config) { c.Topology = "" }), ""},
		{"crossbar", valid(func(c *Config) { c.Topology = TopologyCrossbar }), ""},
		{"ring 8", valid(func(c *Config) { c.Topology = TopologyRing; c.Nodes = 8 }), ""},
		{"mesh 16", valid(func(c *Config) { c.Topology = TopologyMesh; c.Nodes = 16 }), ""},
		{"tree 64", valid(func(c *Config) { c.Topology = TopologyTree; c.Nodes = 64 }), ""},
		{"zero bytes per cycle", valid(func(c *Config) { c.BytesPerCycle = 0 }), "BytesPerCycle"},
		{"negative bytes per cycle", valid(func(c *Config) { c.BytesPerCycle = -3 }), "BytesPerCycle"},
		{"zero link latency", valid(func(c *Config) { c.LinkLatency = 0 }), "latency floor"},
		{"negative out buffer", valid(func(c *Config) { c.OutBufferBytes = -1 }), "OutBufferBytes"},
		{"unknown topology", valid(func(c *Config) { c.Topology = "torus" }), "unknown topology"},
		{"mesh without nodes", valid(func(c *Config) { c.Topology = TopologyMesh }), "power-of-two"},
		{"mesh non-power-of-two", valid(func(c *Config) { c.Topology = TopologyMesh; c.Nodes = 6 }), "power-of-two"},
		{"mesh single node", valid(func(c *Config) { c.Topology = TopologyMesh; c.Nodes = 1 }), "power-of-two"},
		{"ring without nodes", valid(func(c *Config) { c.Topology = TopologyRing }), "Nodes >= 2"},
		{"tree single node", valid(func(c *Config) { c.Topology = TopologyTree; c.Nodes = 1 }), "Nodes >= 2"},
		{"invalid link class", valid(func(c *Config) { c.BaseClass = energy.Node + 1 }), "energy class"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: error containing %q, got nil", tc.name, tc.wantErr)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestMeshDims pins the grid factorization the mesh topology and its tests
// share.
func TestMeshDims(t *testing.T) {
	for _, tc := range []struct{ n, w, h int }{
		{2, 2, 1}, {4, 2, 2}, {8, 4, 2}, {16, 4, 4}, {32, 8, 4}, {64, 8, 8},
	} {
		w, h, err := MeshDims(tc.n)
		if err != nil || w != tc.w || h != tc.h {
			t.Errorf("MeshDims(%d) = (%d, %d, %v), want (%d, %d, nil)", tc.n, w, h, err, tc.w, tc.h)
		}
	}
	for _, n := range []int{0, 1, 3, 6, 12, 63} {
		if _, _, err := MeshDims(n); err == nil {
			t.Errorf("MeshDims(%d): expected error", n)
		}
	}
}

// TestNewSwitchFabricRejectsInvalidConfig: construction enforces Validate.
func TestNewSwitchFabricRejectsInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSwitchFabric accepted a non-power-of-two mesh")
		}
	}()
	cfg := DefaultConfig()
	cfg.Topology = TopologyMesh
	cfg.Nodes = 6
	NewSwitchFabric("bad", nil, cfg)
}
