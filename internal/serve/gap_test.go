package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// collectEvents drains one Client.Events stream into a slice.
func collectEvents(t *testing.T, c *Client, id string, epoch int64, after int) []Event {
	t.Helper()
	var events []Event
	if err := c.Events(id, epoch, after, func(ev Event) bool {
		events = append(events, ev)
		return true
	}); err != nil {
		t.Fatalf("Events(%s, %d, %d): %v", id, epoch, after, err)
	}
	return events
}

// TestSSEResumeSameEpoch proves the watermark protocol within one daemon
// life: a reconnect presenting the (epoch, seq) of the last event it saw
// receives exactly the events after it — no gap frame, no replay.
func TestSSEResumeSameEpoch(t *testing.T) {
	s := newTestService(t, t.TempDir(), func(c *Config[testResult]) {
		c.Workers = 1
		c.Supervisor.Workers = 1
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}

	st, err := s.Submit(BatchRequest{Keys: gateKeys()})
	if err != nil {
		t.Fatal(err)
	}
	waitBatch(t, s, st.ID)

	full := collectEvents(t, c, st.ID, 0, 0)
	if len(full) != 6 { // 5 jobs + terminal
		t.Fatalf("full stream has %d events, want 6", len(full))
	}
	for i, ev := range full {
		if ev.Epoch != s.Epoch() {
			t.Fatalf("event %d has epoch %d, want the boot epoch %d", i, ev.Epoch, s.Epoch())
		}
	}

	// Reconnect from the middle: only the suffix arrives, gap-free.
	mid := full[2]
	resumed := collectEvents(t, c, st.ID, mid.Epoch, mid.Seq)
	if len(resumed) != len(full)-mid.Seq {
		t.Fatalf("resume after seq %d got %d events, want %d", mid.Seq, len(resumed), len(full)-mid.Seq)
	}
	for i, ev := range resumed {
		if ev.Type == EventGap {
			t.Fatalf("same-epoch resume surfaced a gap: %+v", ev)
		}
		if want := full[mid.Seq+i]; ev.Seq != want.Seq || ev.Fingerprint != want.Fingerprint {
			t.Fatalf("resumed event %d = %+v, want %+v", i, ev, want)
		}
	}

	// Reconnect from the terminal event: nothing left, still no gap.
	last := full[len(full)-1]
	if tail := collectEvents(t, c, st.ID, last.Epoch, last.Seq); len(tail) != 0 {
		t.Fatalf("resume at the terminal event got %d events, want 0", len(tail))
	}

	// The ?epoch=&after= query form is equivalent to the header.
	resp, err := http.Get(ts.URL + fmt.Sprintf("/v1/batches/%s/events?epoch=%d&after=%d",
		st.ID, mid.Epoch, mid.Seq))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var viaQuery []Event
	if err := ParseSSE(resp.Body, func(ev Event) bool { viaQuery = append(viaQuery, ev); return true }); err != nil {
		t.Fatal(err)
	}
	if len(viaQuery) != len(resumed) || viaQuery[0].Seq != resumed[0].Seq {
		t.Fatalf("query-form resume got %d events from seq %d, want %d from seq %d",
			len(viaQuery), viaQuery[0].Seq, len(resumed), resumed[0].Seq)
	}
}

// TestSSEGapAcrossRestart is the satellite's acceptance case: a consumer
// reconnecting after a daemon restart presents its old watermark, and the
// daemon — which rebuilt the batch history from its journal under a new
// boot epoch — opens the stream with a gap frame instead of silently
// replaying renumbered events the client would mistake for fresh progress.
func TestSSEGapAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	s1 := newTestService(t, dir, nil)
	st, err := s1.Submit(BatchRequest{Keys: gateKeys()})
	if err != nil {
		t.Fatal(err)
	}
	waitBatch(t, s1, st.ID)

	ts1 := httptest.NewServer(s1.Handler())
	c1 := &Client{BaseURL: ts1.URL}
	before := collectEvents(t, c1, st.ID, 0, 0)
	ts1.Close()
	oldEpoch := s1.Epoch()
	last := before[len(before)-1]
	s1.Close()

	s2 := newTestService(t, dir, nil)
	if s2.Epoch() <= oldEpoch {
		t.Fatalf("restart epoch %d did not advance past %d", s2.Epoch(), oldEpoch)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	c2 := &Client{BaseURL: ts2.URL}

	got := collectEvents(t, c2, st.ID, last.Epoch, last.Seq)
	if len(got) == 0 || got[0].Type != EventGap {
		t.Fatalf("restart reconnect did not open with a gap frame: %+v", got)
	}
	gap := got[0]
	if gap.Epoch != s2.Epoch() || gap.Since != last.Seq || gap.Batch != st.ID || gap.Seq != 0 {
		t.Fatalf("gap frame = %+v, want epoch %d, since %d", gap, s2.Epoch(), last.Seq)
	}

	// After the gap frame comes the full rebuilt history, renumbered from 1
	// under the new epoch, same settled jobs as before the restart.
	history := got[1:]
	if len(history) != len(before) {
		t.Fatalf("rebuilt history has %d events, want %d", len(history), len(before))
	}
	seen := make(map[string]bool)
	for i, ev := range history {
		if ev.Seq != i+1 || ev.Epoch != s2.Epoch() {
			t.Fatalf("rebuilt event %d = seq %d epoch %d, want seq %d epoch %d",
				i, ev.Seq, ev.Epoch, i+1, s2.Epoch())
		}
		seen[ev.Fingerprint] = true
	}
	for _, ev := range before[:len(before)-1] {
		if !seen[ev.Fingerprint] {
			t.Fatalf("rebuilt history lost job %s", ev.Fingerprint)
		}
	}
	if history[len(history)-1].Type != EventBatch {
		t.Fatalf("rebuilt history does not end terminally: %+v", history[len(history)-1])
	}
}

// TestSSEGapBeyondHistory covers the other mismatch: a watermark from the
// right epoch but past anything recorded (a client that outlived a data
// wipe, or a corrupted cursor) also surfaces as a gap plus full history.
func TestSSEGapBeyondHistory(t *testing.T) {
	s := newTestService(t, t.TempDir(), nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}

	st, err := s.Submit(BatchRequest{Keys: gateKeys()})
	if err != nil {
		t.Fatal(err)
	}
	waitBatch(t, s, st.ID)

	got := collectEvents(t, c, st.ID, s.Epoch(), 99)
	if len(got) != 7 || got[0].Type != EventGap || got[0].Since != 99 {
		t.Fatalf("beyond-history reconnect = %d events, first %+v; want gap then 6 events",
			len(got), got[0])
	}

	// A malformed Last-Event-ID degrades to a fresh, gap-free subscription.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/batches/"+st.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "not-a-watermark")
	resp, err := (&http.Client{Timeout: 10 * time.Second}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fresh []Event
	if err := ParseSSE(resp.Body, func(ev Event) bool { fresh = append(fresh, ev); return true }); err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 6 || fresh[0].Type == EventGap {
		t.Fatalf("malformed watermark stream = %d events, first %+v; want the plain history", len(fresh), fresh[0])
	}
}
