package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mgpucompress/internal/sweep"
)

func TestSSERoundTrip(t *testing.T) {
	events := []Event{
		{Seq: 1, Type: EventJob, Batch: "b000001", Fingerprint: "aa", Status: JobOK},
		{Seq: 2, Type: EventJob, Batch: "b000001", Fingerprint: "bb", Status: JobFailed, Error: "boom"},
		{Seq: 3, Type: EventBatch, Batch: "b000001", State: StateDone, Jobs: 2, Completed: 2, Failed: 1},
	}
	var buf bytes.Buffer
	for _, ev := range events {
		if err := writeSSE(&buf, ev); err != nil {
			t.Fatal(err)
		}
	}
	var got []Event
	if err := ParseSSE(&buf, func(ev Event) bool { got = append(got, ev); return true }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d events, want 3", len(got))
	}
	for i := range events {
		if got[i].Seq != events[i].Seq || got[i].Type != events[i].Type ||
			got[i].Fingerprint != events[i].Fingerprint || got[i].Error != events[i].Error {
			t.Fatalf("event %d round-tripped to %+v, want %+v", i, got[i], events[i])
		}
	}

	// fn returning false stops early without error.
	var first []Event
	buf2 := bytes.Buffer{}
	for _, ev := range events {
		_ = writeSSE(&buf2, ev)
	}
	if err := ParseSSE(&buf2, func(ev Event) bool { first = append(first, ev); return false }); err != nil {
		t.Fatal(err)
	}
	if len(first) != 1 {
		t.Fatalf("early stop parsed %d events, want 1", len(first))
	}

	// A stream cut without a trailing blank line still yields its last frame.
	raw := "id: 1\nevent: job\ndata: {\"seq\":1,\"type\":\"job\",\"batch\":\"b000001\"}\n"
	var cut []Event
	if err := ParseSSE(strings.NewReader(raw), func(ev Event) bool { cut = append(cut, ev); return true }); err != nil {
		t.Fatal(err)
	}
	if len(cut) != 1 || cut[0].Seq != 1 {
		t.Fatalf("truncated stream parsed %+v", cut)
	}
}

// TestSSEOrdering is the stream half of the determinism gate: with one
// worker, events arrive in engine completion order (= the canonical plan
// order), sequence numbers are contiguous from 1, and exactly one terminal
// batch event ends the stream.
func TestSSEOrdering(t *testing.T) {
	s := newTestService(t, t.TempDir(), func(c *Config[testResult]) {
		c.Workers = 1
		c.Supervisor.Workers = 1
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	keys := gateKeys()
	st, err := s.Submit(BatchRequest{Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	waitBatch(t, s, st.ID)

	resp, err := http.Get(ts.URL + "/v1/batches/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var events []Event
	if err := ParseSSE(resp.Body, func(ev Event) bool { events = append(events, ev); return true }); err != nil {
		t.Fatal(err)
	}

	plan := sweep.Dedup(append([]sweep.JobKey(nil), keys...))
	sweep.SortCanonical(plan)
	if len(events) != len(plan)+1 {
		t.Fatalf("got %d events for %d jobs, want jobs+1", len(events), len(plan))
	}
	terminals := 0
	for i, ev := range events {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d, want contiguous from 1", i, ev.Seq)
		}
		if ev.Type == EventBatch {
			terminals++
			continue
		}
		// One worker executes the canonical plan in order, so job events
		// arrive in plan order.
		if ev.Fingerprint != plan[i].Fingerprint() {
			t.Fatalf("job event %d is %s, want %s (canonical order)", i, ev.Fingerprint, plan[i].Fingerprint())
		}
		if ev.Key != plan[i].Canonical() {
			t.Fatalf("job event %d key = %q", i, ev.Key)
		}
		if ev.Progress == nil {
			t.Fatalf("live job event %d carries no progress snapshot", i)
		}
	}
	if terminals != 1 || events[len(events)-1].Type != EventBatch {
		t.Fatalf("want exactly one terminal event, last; got %d", terminals)
	}
	last := events[len(events)-1]
	if last.State != StateDone || last.Jobs != len(plan) || last.Completed != len(plan) || last.Failed != 2 {
		t.Fatalf("terminal event = %+v", last)
	}

	// A second late subscriber gets the identical replay.
	resp2, err := http.Get(ts.URL + "/v1/batches/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var replay []Event
	if err := ParseSSE(resp2.Body, func(ev Event) bool { replay = append(replay, ev); return true }); err != nil {
		t.Fatal(err)
	}
	if len(replay) != len(events) {
		t.Fatalf("late subscriber got %d events, want %d", len(replay), len(events))
	}
	for i := range events {
		if replay[i].Seq != events[i].Seq || replay[i].Fingerprint != events[i].Fingerprint {
			t.Fatalf("replay event %d = %+v, want %+v", i, replay[i], events[i])
		}
	}
}

// TestSSELiveDelivery subscribes before any job finishes (the run function
// is gated) and watches the full stream arrive live, summaries included.
func TestSSELiveDelivery(t *testing.T) {
	gate := make(chan struct{})
	s := newTestService(t, t.TempDir(), func(c *Config[testResult]) {
		c.Workers = 1
		c.Supervisor.Workers = 1
		inner := c.Run
		c.Run = func(k sweep.JobKey) (testResult, error) {
			<-gate
			return inner(k)
		}
	})
	keys := []sweep.JobKey{testKey("AES", "fpc", 1), testKey("BS", "bdi", 2)}
	st, err := s.Submit(BatchRequest{Keys: keys})
	if err != nil {
		t.Fatal(err)
	}

	s.mu.Lock()
	b := s.batches[st.ID]
	s.mu.Unlock()
	history, live := s.subscribe(b)
	if len(history) != 0 || live == nil {
		t.Fatalf("subscribed before release: history=%d live=%v", len(history), live != nil)
	}
	close(gate)

	var events []Event
	timeout := time.After(30 * time.Second)
	for live != nil {
		select {
		case ev, open := <-live:
			if !open {
				live = nil
				break
			}
			events = append(events, ev)
		case <-timeout:
			t.Fatalf("stream never terminated; got %+v", events)
		}
	}
	if len(events) != 3 || events[2].Type != EventBatch {
		t.Fatalf("live stream = %+v, want 2 job events and a terminal", events)
	}
	for i, ev := range events[:2] {
		if ev.Type != EventJob || ev.Status != JobOK {
			t.Fatalf("live event %d = %+v", i, ev)
		}
		if ev.Summary == nil || ev.Summary.ExecCycles == 0 {
			t.Fatalf("live event %d carries no Describe summary: %+v", i, ev)
		}
	}
}

// TestHTTPEndToEnd drives the whole wire surface through the Client.
func TestHTTPEndToEnd(t *testing.T) {
	gate := make(chan struct{})
	s := newTestService(t, t.TempDir(), func(c *Config[testResult]) {
		inner := c.Run
		c.Run = func(k sweep.JobKey) (testResult, error) {
			if k.Workload == "SLOW" {
				<-gate
			}
			return inner(k)
		}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{BaseURL: ts.URL, PollInterval: 2 * time.Millisecond}

	// While a batch is running, its results are 409.
	running, err := c.Submit(BatchRequest{Tenant: "alice", Keys: []sweep.JobKey{testKey("SLOW", "", 1)}})
	if err != nil {
		t.Fatal(err)
	}
	if running.State != StateRunning {
		t.Fatalf("initial state = %+v", running)
	}
	if _, err := c.Results(running.ID); err == nil || !strings.Contains(err.Error(), "running") {
		t.Fatalf("results of running batch = %v, want conflict", err)
	}
	close(gate)
	if fin, err := c.Wait(running.ID, nil); err != nil || fin.State != StateDone {
		t.Fatalf("Wait = %+v, %v", fin, err)
	}

	// Full batch round trip, progress callback included.
	var polls int
	st, err := c.Submit(BatchRequest{Tenant: "bob", Keys: gateKeys()})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := c.Wait(st.ID, func(BatchStatus) { polls++ })
	if err != nil || fin.State != StateDone || fin.Failed != 2 {
		t.Fatalf("Wait = %+v, %v", fin, err)
	}
	if polls == 0 {
		t.Fatal("progress callback never ran")
	}

	// Downloaded results match the artifact on disk byte for byte.
	rc, err := c.Results(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	downloaded := new(bytes.Buffer)
	if _, err := downloaded.ReadFrom(rc); err != nil {
		t.Fatal(err)
	}
	rc.Close()
	want := resultsBytes(t, s.cfg.DataDir, st.ID)
	if !bytes.Equal(downloaded.Bytes(), want) {
		t.Fatal("downloaded results differ from the on-disk artifact")
	}

	// Job lookup by fingerprint.
	rec, err := c.Job(testKey("AES", "bdi", 1).Fingerprint())
	if err != nil || rec.Status != JobOK {
		t.Fatalf("Job = %+v, %v", rec, err)
	}
	if _, err := c.Job("ffffffffffffffff"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown job = %v, want 404", err)
	}

	// RunJob: success returns the payload, failure the deterministic error.
	raw, err := c.RunJob(testKey("XY", "fpc", 2))
	if err != nil || !strings.Contains(string(raw), "XY/fpc") {
		t.Fatalf("RunJob = %s, %v", raw, err)
	}
	if _, err := c.RunJob(testKey("PANIC", "", 1)); err == nil || !strings.Contains(err.Error(), "job panicked") {
		t.Fatalf("RunJob(PANIC) = %v, want the deterministic panic error", err)
	}

	// Health and error surfaces.
	h, err := c.Health()
	if err != nil || h.State != "ok" {
		t.Fatalf("Health = %+v, %v", h, err)
	}
	if _, err := c.Status("b999999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown batch = %v, want 404", err)
	}
	resp, err := http.Post(ts.URL+"/v1/batches", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed submit = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/batches", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty submit = %d, want 400", resp.StatusCode)
	}
}
