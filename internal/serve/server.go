package serve

import (
	"encoding/json"
	"io"
	"net/http"
)

// Handler returns the service's HTTP API:
//
//	POST /v1/batches                 submit a batch            → 202 BatchStatus
//	GET  /v1/batches/{id}            batch status              → 200 BatchStatus
//	GET  /v1/batches/{id}/results    results journal (JSONL)   → 200 once done
//	GET  /v1/batches/{id}/events     live SSE event stream; resumable via
//	                                 Last-Event-ID "epoch.seq" (or
//	                                 ?epoch=&after=) with gap detection
//	GET  /v1/jobs/{fingerprint}      one settled job's record  → 200 JobRecord
//	GET  /v1/healthz                 daemon health
func (s *Service[R]) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/batches", s.handleSubmit)
	mux.HandleFunc("GET /v1/batches/{id}", s.handleBatch)
	mux.HandleFunc("GET /v1/batches/{id}/results", s.handleResults)
	mux.HandleFunc("GET /v1/batches/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{fingerprint}", s.handleJob)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	return mux
}

// maxRequestBytes bounds a submission body; a full reproduction plan
// marshals well under a megabyte.
const maxRequestBytes = 32 << 20

func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(append(b, '\n')) // a client disconnect is not actionable
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, apiError{Error: msg})
}

func (s *Service[R]) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	body := http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding batch request: "+err.Error())
		return
	}
	st, err := s.Submit(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Service[R]) handleBatch(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Batch(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown batch "+r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service[R]) handleResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.Batch(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown batch "+id)
		return
	}
	if st.State == StateRunning {
		writeErr(w, http.StatusConflict, "batch "+id+" is still running")
		return
	}
	rc, err := s.Results(id)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	_, _ = io.Copy(w, rc) // a mid-stream disconnect is the client's problem
}

func (s *Service[R]) handleJob(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fingerprint")
	raw, settled, inFlight := s.Job(fp)
	switch {
	case settled:
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(append(raw, '\n')) // a client disconnect is not actionable
	case inFlight:
		writeErr(w, http.StatusAccepted, "job "+fp+" is in flight")
	default:
		writeErr(w, http.StatusNotFound, "unknown job "+fp)
	}
}

func (s *Service[R]) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	b, ok := s.batches[id]
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown batch "+id)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	// Reconnect watermark: "epoch.seq" from the standard Last-Event-ID
	// header, or split across ?epoch=&after= query parameters (the header
	// wins). No watermark means a fresh subscription.
	epoch, after := parseWatermark(r.Header.Get("Last-Event-ID"))
	if epoch == 0 && after == 0 {
		q := r.URL.Query()
		epoch, after = parseWatermark(q.Get("epoch") + "." + q.Get("after"))
	}

	history, live := s.subscribe(b)
	defer s.unsubscribe(b, live)
	if epoch == s.epoch && after <= len(history) {
		// Same daemon life and the watermark is a real position: continue
		// the stream from just past it. (Seqs are 1..len(history) in
		// append order, so the suffix is simply history[after:].)
		history = history[after:]
	} else if epoch != 0 || after != 0 {
		// The watermark does not name a point in this stream — the daemon
		// restarted and renumbered its history, or the client is ahead of
		// anything recorded. Surface the discontinuity instead of silently
		// replaying from zero, then send the full rebuilt history.
		gap := Event{Epoch: s.epoch, Type: EventGap, Batch: id, Since: after}
		if writeSSE(w, gap) != nil {
			return
		}
	}
	for _, ev := range history {
		if writeSSE(w, ev) != nil {
			return
		}
	}
	flusher.Flush()
	if live == nil {
		return // batch already terminal: the history ends with its batch event
	}
	for {
		select {
		case ev, open := <-live:
			if !open {
				return // terminal event delivered (or subscriber too slow)
			}
			if writeSSE(w, ev) != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Service[R]) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Health())
}
