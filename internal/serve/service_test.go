package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"mgpucompress/internal/sweep"
)

// testResult is the fake simulator result: a deterministic pure function of
// the job key, cheap enough to run hundreds of times in tests.
type testResult struct {
	Value string `json:"value"`
	N     int    `json:"n"`
}

// testRun is the fake simulator. Two magic workloads exercise the failure
// paths: FAIL errors, PANIC panics — both deterministically.
func testRun(k sweep.JobKey) (testResult, error) {
	switch k.Workload {
	case "FAIL":
		return testResult{}, fmt.Errorf("workload FAIL always fails")
	case "PANIC":
		panic("deliberate test panic")
	}
	return testResult{Value: k.Workload + "/" + k.Policy, N: 3*k.Scale + 1}, nil
}

// newTestService builds a service over dir with the fake simulator; mut may
// adjust the config before construction.
func newTestService(t *testing.T, dir string, mut func(*Config[testResult])) *Service[testResult] {
	t.Helper()
	cfg := Config[testResult]{
		Run:     testRun,
		DataDir: dir,
		Workers: 4,
		Describe: func(r testResult) *JobSummary {
			return &JobSummary{ExecCycles: uint64(r.N)}
		},
		Logf: t.Logf,
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

// waitBatch blocks until the batch reaches a terminal state, via its own
// event stream (no polling).
func waitBatch[R any](t *testing.T, s *Service[R], id string) BatchStatus {
	t.Helper()
	s.mu.Lock()
	b, ok := s.batches[id]
	s.mu.Unlock()
	if !ok {
		t.Fatalf("unknown batch %s", id)
	}
	history, live := s.subscribe(b)
	defer s.unsubscribe(b, live)
	for _, ev := range history {
		if ev.Type == EventBatch {
			st, _ := s.Batch(id)
			return st
		}
	}
	if live == nil {
		t.Fatalf("batch %s: no terminal event in history yet already terminal", id)
	}
	timeout := time.After(30 * time.Second)
	for {
		select {
		case ev, open := <-live:
			if !open {
				t.Fatalf("batch %s: event stream closed before terminal event", id)
			}
			if ev.Type == EventBatch {
				st, _ := s.Batch(id)
				return st
			}
		case <-timeout:
			t.Fatalf("batch %s never settled", id)
		}
	}
}

func resultsBytes(t *testing.T, dir, id string) []byte {
	t.Helper()
	b, err := os.ReadFile(dir + "/batches/" + id + "/results.jsonl")
	if err != nil {
		t.Fatalf("reading results of %s: %v", id, err)
	}
	return b
}

// gateKeys is the determinism-gate plan: ordinary jobs plus one failing and
// one panicking one, so the failure paths are inside the byte-identity
// contract too.
func gateKeys() []sweep.JobKey {
	return []sweep.JobKey{
		testKey("BS", "fpc", 2),
		testKey("AES", "bdi", 1),
		testKey("FAIL", "", 1),
		testKey("PANIC", "", 1),
		testKey("MM", "adaptive", 4),
	}
}

// TestDeterminismGate is the acceptance test of the service's central
// contract: the same key set submitted to a fresh daemon, resubmitted to a
// warm one (cache hits, different tenant, shuffled and duplicated keys), and
// resumed from a crashed daemon's partial journal yields three byte-identical
// results files.
func TestDeterminismGate(t *testing.T) {
	keys := gateKeys()

	// Fresh daemon.
	dir1 := t.TempDir()
	s1 := newTestService(t, dir1, nil)
	st, err := s1.Submit(BatchRequest{Tenant: "alice", Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitBatch(t, s1, st.ID)
	if fin.State != StateDone || fin.Jobs != 5 || fin.Completed != 5 || fin.Failed != 2 {
		t.Fatalf("fresh batch = %+v, want done, 5/5, 2 failed", fin)
	}
	fresh := resultsBytes(t, dir1, st.ID)

	// Warm resubmission: different tenant, reversed order, one duplicate key.
	shuffled := []sweep.JobKey{keys[4], keys[3], keys[2], keys[1], keys[0], keys[2]}
	before := s1.Engine().Stats()
	st2, err := s1.Submit(BatchRequest{Tenant: "bob", Keys: shuffled})
	if err != nil {
		t.Fatal(err)
	}
	fin2 := waitBatch(t, s1, st2.ID)
	if fin2.State != StateDone || fin2.Jobs != 5 {
		t.Fatalf("warm batch = %+v (the duplicate key must dedupe away)", fin2)
	}
	warm := resultsBytes(t, dir1, st2.ID)
	if !bytes.Equal(fresh, warm) {
		t.Fatalf("warm results differ from fresh:\nfresh:\n%s\nwarm:\n%s", fresh, warm)
	}
	after := s1.Engine().Stats()
	if after.Simulated != before.Simulated {
		t.Fatalf("warm resubmission resimulated %d jobs, want pure cache hits",
			after.Simulated-before.Simulated)
	}

	// Crash resume: a hand-crafted daemon directory holding the manifest and
	// a partial journal ending in a torn line — exactly what a SIGKILL
	// mid-batch leaves behind.
	dir2 := t.TempDir()
	store2, err := OpenStore(dir2)
	if err != nil {
		t.Fatal(err)
	}
	id := store2.NewBatchID()
	plan := sweep.Dedup(append([]sweep.JobKey(nil), keys...))
	sweep.SortCanonical(plan)
	if err := store2.WriteManifest(Manifest{ID: id, Tenant: "alice", Keys: plan}); err != nil {
		t.Fatal(err)
	}
	freshLines := bytes.SplitAfter(fresh, []byte("\n"))
	partial := append(append([]byte{}, freshLines[0]...), freshLines[1]...)
	partial = append(partial, []byte(`{"fingerprint":"deadbeefdeadbeef","seed":7,"ke`)...)
	if err := os.WriteFile(store2.journalPath(id), partial, 0o644); err != nil {
		t.Fatal(err)
	}

	s3 := newTestService(t, dir2, nil)
	fin3 := waitBatch(t, s3, id)
	if fin3.State != StateDone || fin3.Completed != 5 {
		t.Fatalf("resumed batch = %+v", fin3)
	}
	resumed := resultsBytes(t, dir2, id)
	if !bytes.Equal(fresh, resumed) {
		t.Fatalf("post-crash results differ from fresh:\nfresh:\n%s\nresumed:\n%s", fresh, resumed)
	}
	// The two journaled jobs must have been replayed, not resimulated.
	var replayedOK int
	for _, line := range freshLines[:2] {
		var rec JobRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Status == JobOK {
			replayedOK++
		}
	}
	if p := s3.Engine().Stats(); p.Resumed != replayedOK {
		t.Fatalf("resumed engine replayed %d jobs, want %d (the journaled successes)", p.Resumed, replayedOK)
	}
}

// TestRestartRestoresSettledBatches proves a daemon restart over a directory
// with settled batches reloads them read-only: same statuses, same result
// bytes (results files are never rewritten), jobs servable by fingerprint.
func TestRestartRestoresSettledBatches(t *testing.T) {
	dir := t.TempDir()
	keys := gateKeys()

	s1 := newTestService(t, dir, nil)
	st, err := s1.Submit(BatchRequest{Tenant: "alice", Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	waitBatch(t, s1, st.ID)
	want := resultsBytes(t, dir, st.ID)
	s1.Close()

	s2 := newTestService(t, dir, nil)
	st2, ok := s2.Batch(st.ID)
	if !ok || st2.State != StateDone || st2.Completed != 5 || st2.Failed != 2 {
		t.Fatalf("restored batch = %+v, %v", st2, ok)
	}
	if got := resultsBytes(t, dir, st.ID); !bytes.Equal(want, got) {
		t.Fatal("restart rewrote the results file")
	}
	if p := s2.Engine().Stats(); p.Simulated != 0 {
		t.Fatalf("restart resimulated %d jobs", p.Simulated)
	}

	// Every settled job is immediately servable by fingerprint.
	raw, settled, _ := s2.Job(testKey("AES", "bdi", 1).Fingerprint())
	if !settled {
		t.Fatal("settled job unknown after restart")
	}
	var rec JobRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Status != JobOK || !strings.Contains(string(rec.Result), "AES/bdi") {
		t.Fatalf("restored job record = %+v", rec)
	}

	// A third submission of the same keys on the restarted daemon is pure
	// cache: byte-identical results, zero simulations.
	st3, err := s2.Submit(BatchRequest{Tenant: "carol", Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	waitBatch(t, s2, st3.ID)
	if got := resultsBytes(t, dir, st3.ID); !bytes.Equal(want, got) {
		t.Fatal("post-restart resubmission results differ")
	}
	if p := s2.Engine().Stats(); p.Simulated != 0 {
		t.Fatalf("post-restart resubmission simulated %d jobs", p.Simulated)
	}
}

// TestPanicIsolation: a panicking job fails that job with a deterministic
// error and harms nothing else — not the batch, not other jobs, not the
// daemon.
func TestPanicIsolation(t *testing.T) {
	s := newTestService(t, t.TempDir(), nil)
	st, err := s.Submit(BatchRequest{Keys: []sweep.JobKey{
		testKey("PANIC", "", 1),
		testKey("AES", "fpc", 1),
	}})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitBatch(t, s, st.ID)
	if fin.State != StateDone || fin.Completed != 2 || fin.Failed != 1 {
		t.Fatalf("batch with panicking job = %+v", fin)
	}

	raw, settled, _ := s.Job(testKey("PANIC", "", 1).Fingerprint())
	if !settled {
		t.Fatal("panicked job not settled")
	}
	var rec JobRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Status != JobFailed || rec.Error != "job panicked: deliberate test panic" {
		t.Fatalf("panicked record = %+v, want deterministic panic error", rec)
	}

	// The panic was absorbed at the job layer: the supervisor never saw it
	// and the pool is intact.
	if sup := s.Supervisor().Stats(); sup.Panics != 0 || sup.Alive != sup.Workers || sup.GaveUp {
		t.Fatalf("supervisor stats = %+v, want untouched pool", sup)
	}

	// The daemon still serves fresh work.
	st2, err := s.Submit(BatchRequest{Keys: []sweep.JobKey{testKey("BS", "bdi", 3)}})
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitBatch(t, s, st2.ID); fin.State != StateDone || fin.Failed != 0 {
		t.Fatalf("batch after panic = %+v", fin)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newTestService(t, t.TempDir(), nil)
	if _, err := s.Submit(BatchRequest{}); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, ok := s.Batch("b999999"); ok {
		t.Fatal("unknown batch reported as known")
	}
	if _, err := s.Results("b999999"); err == nil {
		t.Fatal("results of unknown batch did not error")
	}
	if _, settled, inFlight := s.Job("ffffffffffffffff"); settled || inFlight {
		t.Fatal("unknown job reported as known")
	}
}

// TestCrossBatchDedup: the memo cache is daemon-global — a key shared by two
// batches (even across tenants) simulates once.
func TestCrossBatchDedup(t *testing.T) {
	s := newTestService(t, t.TempDir(), nil)
	shared := testKey("AES", "fpc", 2)
	st1, err := s.Submit(BatchRequest{Tenant: "alice", Keys: []sweep.JobKey{shared, testKey("BS", "", 1)}})
	if err != nil {
		t.Fatal(err)
	}
	waitBatch(t, s, st1.ID)
	st2, err := s.Submit(BatchRequest{Tenant: "bob", Keys: []sweep.JobKey{shared, testKey("MM", "", 1)}})
	if err != nil {
		t.Fatal(err)
	}
	waitBatch(t, s, st2.ID)

	p := s.Engine().Stats()
	if p.Simulated != 3 {
		t.Fatalf("simulated %d jobs for 4 submissions of 3 distinct keys", p.Simulated)
	}
	if p.CacheHits == 0 {
		t.Fatal("shared key produced no cache hit")
	}
}

// TestServiceMetricsAndHealth: the observability surface reflects the work.
func TestServiceMetricsAndHealth(t *testing.T) {
	s := newTestService(t, t.TempDir(), nil)
	st, err := s.Submit(BatchRequest{Keys: gateKeys()})
	if err != nil {
		t.Fatal(err)
	}
	waitBatch(t, s, st.ID)

	snap := s.MetricsSnapshot()
	wantCounters := map[string]float64{
		"serve/batches_submitted": 1,
		"serve/batches_done":      1,
		"serve/jobs_ok":           3,
		"serve/jobs_failed":       2,
		"serve/sup/panics":        0,
	}
	got := make(map[string]float64)
	for _, sm := range snap {
		got[sm.Path] = sm.Value
	}
	for path, want := range wantCounters {
		if got[path] != want {
			t.Fatalf("metric %s = %g, want %g (snapshot %+v)", path, got[path], want, snap)
		}
	}

	h := s.Health()
	if h.State != "ok" || h.Batches != 1 {
		t.Fatalf("health = %+v", h)
	}
	if h.Progress.Completed != 5 {
		t.Fatalf("health progress = %+v", h.Progress)
	}
	if h.Supervisor.Alive != h.Supervisor.Workers {
		t.Fatalf("health supervisor = %+v", h.Supervisor)
	}
}
