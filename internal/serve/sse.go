package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// newLineScanner builds a scanner sized for SSE frames carrying metric
// deltas.
func newLineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), maxJournalLine)
	return sc
}

// writeSSE encodes one Event as a Server-Sent-Events frame:
//
//	id: <epoch>.<seq>
//	event: <type>
//	data: <single-line JSON>
//	<blank>
//
// The id is the resume watermark in Watermark form: a standard SSE client
// replays it verbatim in the Last-Event-ID header on reconnect, which is
// exactly what the events handler needs to decide continuation vs gap.
// json.Marshal never emits raw newlines, so one data: line always suffices
// and the frame cannot be broken by event content.
func writeSSE(w io.Writer, ev Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %s\nevent: %s\ndata: %s\n\n", Watermark(ev.Epoch, ev.Seq), ev.Type, data)
	return err
}

// Watermark renders an (epoch, seq) resume position as the wire form used
// in SSE ids and Last-Event-ID headers: "<epoch>.<seq>".
func Watermark(epoch int64, seq int) string {
	return fmt.Sprintf("%d.%d", epoch, seq)
}

// parseWatermark inverts Watermark. A malformed or empty watermark parses
// as (0, 0) — indistinguishable from "no watermark", so a garbled header
// degrades to a fresh subscription rather than an error.
func parseWatermark(s string) (epoch int64, seq int) {
	var e int64
	var n int
	if _, err := fmt.Sscanf(s, "%d.%d", &e, &n); err != nil || e < 0 || n < 0 {
		return 0, 0
	}
	return e, n
}

// ParseSSE decodes a Server-Sent-Events stream of Events (the client-side
// inverse of writeSSE; also the test oracle). It reads frames until EOF
// and calls fn per event; fn returning false stops early without error.
func ParseSSE(r io.Reader, fn func(Event) bool) error {
	sc := newLineScanner(r)
	var data []byte
	flush := func() (bool, error) {
		if data == nil {
			return true, nil
		}
		var ev Event
		if err := json.Unmarshal(data, &ev); err != nil {
			return false, fmt.Errorf("serve: bad SSE data: %w", err)
		}
		data = nil
		return fn(ev), nil
	}
	for sc.Scan() {
		line := sc.Bytes()
		switch {
		case len(line) == 0: // frame boundary
			if cont, err := flush(); err != nil || !cont {
				return err
			}
		case len(line) > 6 && string(line[:6]) == "data: ":
			data = append([]byte(nil), line[6:]...)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	_, err := flush() // stream may end without a trailing blank line
	return err
}
