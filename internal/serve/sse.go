package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// newLineScanner builds a scanner sized for SSE frames carrying metric
// deltas.
func newLineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), maxJournalLine)
	return sc
}

// writeSSE encodes one Event as a Server-Sent-Events frame:
//
//	id: <seq>
//	event: <type>
//	data: <single-line JSON>
//	<blank>
//
// json.Marshal never emits raw newlines, so one data: line always suffices
// and the frame cannot be broken by event content.
func writeSSE(w io.Writer, ev Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
	return err
}

// ParseSSE decodes a Server-Sent-Events stream of Events (the client-side
// inverse of writeSSE; also the test oracle). It reads frames until EOF
// and calls fn per event; fn returning false stops early without error.
func ParseSSE(r io.Reader, fn func(Event) bool) error {
	sc := newLineScanner(r)
	var data []byte
	flush := func() (bool, error) {
		if data == nil {
			return true, nil
		}
		var ev Event
		if err := json.Unmarshal(data, &ev); err != nil {
			return false, fmt.Errorf("serve: bad SSE data: %w", err)
		}
		data = nil
		return fn(ev), nil
	}
	for sc.Scan() {
		line := sc.Bytes()
		switch {
		case len(line) == 0: // frame boundary
			if cont, err := flush(); err != nil || !cont {
				return err
			}
		case len(line) > 6 && string(line[:6]) == "data: ":
			data = append([]byte(nil), line[6:]...)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	_, err := flush() // stream may end without a trailing blank line
	return err
}
